// Tests for the motif/discord discovery utilities and the streaming
// matrix profile.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "mp/analysis.hpp"
#include "mp/cpu_reference.hpp"
#include "mp/matrix_profile.hpp"
#include "mp/streaming.hpp"
#include "tsdata/patterns.hpp"
#include "tsdata/synthetic.hpp"

namespace mpsim::mp {
namespace {

MatrixProfileResult fake_result(const std::vector<double>& values) {
  MatrixProfileResult r;
  r.segments = values.size();
  r.dims = 1;
  r.profile = values;
  r.index.assign(values.size(), 0);
  for (std::size_t j = 0; j < values.size(); ++j) {
    r.index[j] = std::int64_t(100 + j);
  }
  return r;
}

TEST(TopMotifs, ReturnsSmallestNonOverlapping) {
  //            0    1    2    3    4    5    6    7
  const auto r = fake_result({0.5, 0.1, 0.2, 9.0, 0.15, 7.0, 6.0, 8.0});
  const auto motifs = top_motifs(r, 0, 3, /*separation=*/2);
  ASSERT_EQ(motifs.size(), 3u);
  EXPECT_EQ(motifs[0].query_segment, 1u);  // 0.1
  // 0.15 at segment 4 is next (segment 2's 0.2 overlaps segment 1).
  EXPECT_EQ(motifs[1].query_segment, 4u);
  EXPECT_EQ(motifs[2].query_segment, 6u);  // 6.0 — 0.2 and 0.5 overlap used slots
  EXPECT_DOUBLE_EQ(motifs[0].distance, 0.1);
  EXPECT_EQ(motifs[0].match_segment, 101);
}

TEST(TopMotifs, SeparationOneKeepsAdjacent) {
  const auto r = fake_result({0.3, 0.1, 0.2});
  const auto motifs = top_motifs(r, 0, 3, /*separation=*/1);
  ASSERT_EQ(motifs.size(), 3u);
  EXPECT_EQ(motifs[0].query_segment, 1u);
  EXPECT_EQ(motifs[1].query_segment, 2u);
  EXPECT_EQ(motifs[2].query_segment, 0u);
}

TEST(TopDiscords, ReturnsLargestFiniteValues) {
  auto r = fake_result({0.5, 3.0, 0.2, 9.0, 1.0});
  r.profile[1] = std::numeric_limits<double>::infinity();  // unmatched-ish
  const auto discords = top_discords(r, 0, 2, /*separation=*/1);
  ASSERT_EQ(discords.size(), 2u);
  EXPECT_EQ(discords[0].query_segment, 3u);  // 9.0
  EXPECT_EQ(discords[1].query_segment, 4u);  // 1.0 (inf skipped)
}

TEST(TopMotifs, SkipsUnmatchedSegments) {
  auto r = fake_result({0.1, 0.2, 0.3});
  r.index[0] = -1;  // never matched
  const auto motifs = top_motifs(r, 0, 3, 1);
  ASSERT_EQ(motifs.size(), 2u);
  EXPECT_EQ(motifs[0].query_segment, 1u);
}

TEST(TopMotifs, RejectsBadDimension) {
  const auto r = fake_result({0.1});
  EXPECT_THROW(top_motifs(r, 5, 1, 1), Error);
}

TEST(Analysis, FindsInjectedMotifsOnRealProfile) {
  SyntheticSpec spec;
  spec.segments = 512;
  spec.dims = 2;
  spec.window = 32;
  spec.injections_per_dim = 2;
  const auto data = make_synthetic_dataset(spec);
  MatrixProfileConfig config;
  config.window = 32;
  const auto result =
      compute_matrix_profile(data.reference, data.query, config);
  const auto motifs = top_motifs(result, 0, 4, spec.window);
  ASSERT_EQ(motifs.size(), 4u);
  // Every reported motif should sit near an injected query location.
  for (const auto& motif : motifs) {
    bool near = false;
    for (const auto& inj : data.injections) {
      const auto gap = std::int64_t(motif.query_segment) -
                       std::int64_t(inj.query_position);
      if (std::llabs(gap) <= std::int64_t(spec.window)) near = true;
    }
    EXPECT_TRUE(near) << "motif at " << motif.query_segment;
  }
  // Motifs come out sorted by distance.
  for (std::size_t i = 1; i < motifs.size(); ++i) {
    EXPECT_LE(motifs[i - 1].distance, motifs[i].distance);
  }
}

TEST(KnnProfile, FirstNeighbourMatchesMatrixProfile) {
  SyntheticSpec spec;
  spec.segments = 150;
  spec.dims = 2;
  spec.window = 16;
  spec.injections_per_dim = 1;
  const auto data = make_synthetic_dataset(spec);

  const auto knn =
      knn_profile(data.reference, data.query, 16, 0, 3, /*separation=*/1);
  MatrixProfileConfig config;
  config.window = 16;
  const auto mp = compute_matrix_profile(data.reference, data.query, config);

  ASSERT_EQ(knn.size(), mp.segments * 3);
  for (std::size_t j = 0; j < mp.segments; ++j) {
    // Rank 0 is the 1-NN, i.e. the matrix profile entry (within the
    // tolerance of the different computation path).
    EXPECT_EQ(knn[j * 3 + 0].segment, mp.index_at(j, 0)) << j;
    EXPECT_NEAR(knn[j * 3 + 0].distance, mp.at(j, 0), 1e-6) << j;
    // Ranks are sorted by distance.
    EXPECT_LE(knn[j * 3 + 0].distance, knn[j * 3 + 1].distance);
    EXPECT_LE(knn[j * 3 + 1].distance, knn[j * 3 + 2].distance);
  }
}

TEST(KnnProfile, SeparationKeepsNeighboursApart) {
  const auto reference = make_noise_series(200, 1, 1.0, 8);
  const auto query = make_noise_series(60, 1, 1.0, 9);
  const std::size_t sep = 10;
  const auto knn = knn_profile(reference, query, 16, 0, 4, sep);
  const std::size_t n_q = query.segment_count(16);
  for (std::size_t j = 0; j < n_q; ++j) {
    for (std::size_t a = 0; a < 4; ++a) {
      for (std::size_t b = a + 1; b < 4; ++b) {
        const auto ia = knn[j * 4 + a].segment;
        const auto ib = knn[j * 4 + b].segment;
        if (ia < 0 || ib < 0) continue;
        EXPECT_GE(std::llabs(ia - ib), std::int64_t(sep));
      }
    }
  }
}

TEST(KnnProfile, ExclusionSkipsTrivialSelfMatches) {
  const auto series = make_noise_series(120, 1, 1.0, 10);
  const auto knn = knn_profile(series, series, 16, 0, 2, 1, /*exclusion=*/8);
  const std::size_t n = series.segment_count(16);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t r = 0; r < 2; ++r) {
      const auto idx = knn[j * 2 + r].segment;
      if (idx < 0) continue;
      EXPECT_GE(std::llabs(idx - std::int64_t(j)), 8);
    }
  }
}

TEST(KnnProfile, ValidatesArguments) {
  const auto series = make_noise_series(64, 1, 1.0, 11);
  EXPECT_THROW(knn_profile(series, series, 16, 5, 1, 1), Error);
  EXPECT_THROW(knn_profile(series, series, 16, 0, 0, 1), Error);
}

TEST(MotifDimensions, RecoversInjectedDimensionSubset) {
  // Inject the same pattern into dimensions {1, 3} at one location in
  // both series; the 2-dimensional motif's recovered subset must be
  // exactly those dimensions.
  const std::size_t m = 32;
  TimeSeries reference(400, 5), query(400, 5);
  Rng rng(12);
  for (std::size_t k = 0; k < 5; ++k) {
    for (std::size_t t = 0; t < 400; ++t) {
      reference.at(t, k) = rng.normal();
      query.at(t, k) = rng.normal();
    }
  }
  const auto pattern = sample_pattern(PatternShape::kSine, m);
  for (const std::size_t k : {1ul, 3ul}) {
    for (std::size_t t = 0; t < m; ++t) {
      reference.at(100 + t, k) = 3.0 * pattern[t];
      query.at(200 + t, k) = 3.0 * pattern[t];
    }
  }
  const auto dims = motif_dimensions(reference, query, m, 100, 200, 1);
  ASSERT_EQ(dims.size(), 2u);
  EXPECT_EQ(dims[0], 1u);
  EXPECT_EQ(dims[1], 3u);

  EXPECT_THROW(motif_dimensions(reference, query, m, 100, 200, 9), Error);
  EXPECT_THROW(motif_dimensions(reference, query, m, 500, 200, 1), Error);
}

TEST(Streaming, MatchesBatchCpuReferenceBitExact) {
  SyntheticSpec spec;
  spec.segments = 200;
  spec.dims = 3;
  spec.window = 16;
  spec.injections_per_dim = 1;
  const auto data = make_synthetic_dataset(spec);

  StreamingMatrixProfile streaming(data.reference, 16);
  streaming.append_series(data.query);
  ASSERT_EQ(streaming.segments(), data.query.segment_count(16));

  CpuReferenceConfig config;
  config.window = 16;
  const auto batch =
      compute_matrix_profile_cpu(data.reference, data.query, config);
  ASSERT_EQ(streaming.profile().size(), batch.profile.size());
  for (std::size_t e = 0; e < batch.profile.size(); ++e) {
    EXPECT_EQ(streaming.profile()[e], batch.profile[e]) << "entry " << e;
    EXPECT_EQ(streaming.index()[e], batch.index[e]) << "entry " << e;
  }
}

TEST(Streaming, IncrementalAppendsExtendTheProfile) {
  const auto reference = make_noise_series(100, 2, 1.0, 3);
  StreamingMatrixProfile streaming(reference, 16);
  EXPECT_EQ(streaming.segments(), 0u);

  const auto query = make_noise_series(40, 2, 1.0, 4);
  std::vector<double> sample(2);
  for (std::size_t t = 0; t < query.length(); ++t) {
    sample[0] = query.at(t, 0);
    sample[1] = query.at(t, 1);
    streaming.append(sample);
    const std::size_t expected = t + 1 >= 16 ? t + 1 - 16 + 1 : 0;
    EXPECT_EQ(streaming.segments(), expected);
  }
  // Earlier entries never change once emitted (reference is fixed).
  const double first = streaming.at(0, 0);
  streaming.append(sample);
  EXPECT_EQ(streaming.at(0, 0), first);
}

TEST(Streaming, ValidatesInput) {
  const auto reference = make_noise_series(100, 2, 1.0, 3);
  StreamingMatrixProfile streaming(reference, 16);
  EXPECT_THROW(streaming.append({1.0}), Error);  // wrong dimensionality
  EXPECT_THROW(StreamingMatrixProfile(reference, 2), Error);
  EXPECT_THROW(StreamingMatrixProfile(reference, 1000), Error);
}

TEST(Streaming, LongStreamMatchesBatchBitExact) {
  // >= 512 completed segments: exercises the per-dimension growable
  // columns (the old flat layout re-copied the whole profile per segment,
  // O(n^2) over a stream) and pins that the lazy flat view is still
  // bit-identical to the batch CPU reference.
  SyntheticSpec spec;
  spec.segments = 560;
  spec.dims = 2;
  spec.window = 16;
  spec.injections_per_dim = 2;
  const auto data = make_synthetic_dataset(spec);

  StreamingMatrixProfile streaming(data.reference, 16);
  streaming.append_series(data.query);
  ASSERT_GE(streaming.segments(), 512u);
  ASSERT_EQ(streaming.segments(), data.query.segment_count(16));

  CpuReferenceConfig config;
  config.window = 16;
  const auto batch =
      compute_matrix_profile_cpu(data.reference, data.query, config);
  ASSERT_EQ(streaming.profile().size(), batch.profile.size());
  for (std::size_t e = 0; e < batch.profile.size(); ++e) {
    ASSERT_EQ(streaming.profile()[e], batch.profile[e]) << "entry " << e;
    ASSERT_EQ(streaming.index()[e], batch.index[e]) << "entry " << e;
  }
  // at()/index_at() read the growable columns directly; they must agree
  // with the materialised flat view.
  for (std::size_t j = 0; j < streaming.segments(); j += 37) {
    for (std::size_t k = 0; k < streaming.dims(); ++k) {
      EXPECT_EQ(streaming.at(j, k),
                streaming.profile()[k * streaming.segments() + j]);
      EXPECT_EQ(streaming.index_at(j, k),
                streaming.index()[k * streaming.segments() + j]);
    }
  }
}

TEST(Streaming, NanSamplesMatchBatchFp64Engine) {
  // A NaN sample poisons the distances of the affected query segments;
  // std::sort on NaN-containing ranges is undefined behaviour, so the
  // streaming path sorts with the shared Bitonic network.  The result
  // must match the batch FP64 engine (which uses the same network)
  // bit-for-bit, NaN placement included.
  SyntheticSpec spec;
  spec.segments = 80;
  spec.dims = 3;
  spec.window = 16;
  spec.injections_per_dim = 1;
  auto data = make_synthetic_dataset(spec);
  TimeSeries query = data.query;
  query.at(20, 1) = std::numeric_limits<double>::quiet_NaN();
  query.at(45, 0) = std::numeric_limits<double>::quiet_NaN();

  StreamingMatrixProfile streaming(data.reference, 16);
  streaming.append_series(query);

  MatrixProfileConfig config;
  config.window = 16;
  config.mode = PrecisionMode::FP64;
  const auto batch = compute_matrix_profile(data.reference, query, config);
  ASSERT_EQ(streaming.profile().size(), batch.profile.size());
  for (std::size_t e = 0; e < batch.profile.size(); ++e) {
    const double got = streaming.profile()[e];
    const double want = batch.profile[e];
    if (std::isnan(want)) {
      ASSERT_TRUE(std::isnan(got)) << "entry " << e;
    } else {
      ASSERT_EQ(got, want) << "entry " << e;
    }
    ASSERT_EQ(streaming.index()[e], batch.index[e]) << "entry " << e;
  }
}

}  // namespace
}  // namespace mpsim::mp
