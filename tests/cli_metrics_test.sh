#!/usr/bin/env bash
# Metrics-enabled CLI leg: run mpsim_cli under deterministic fault
# injection with --metrics-out/--trace-out and validate both documents —
# the metrics JSON against the mpsim-metrics-v2 schema (including the
# fault/retry/staging counters the run must have produced) and the trace
# JSON as a Chrome-tracing array of complete ("ph": "X") events.
# Driven by CTest; $1 = build dir with the tools.
set -euo pipefail
BUILD=$1
WORK=$(mktemp -d)

cleanup() {
  status=$?
  if [ "$status" -ne 0 ]; then
    echo "cli_metrics_test FAILED (exit $status) at line ${FAILED_LINE:-?}" >&2
    for f in "$WORK"/*.log "$WORK"/*.json; do
      [ -f "$f" ] || continue
      echo "--- $f:" >&2
      cat "$f" >&2
    done
  fi
  rm -rf "$WORK"
  exit "$status"
}
trap 'FAILED_LINE=$LINENO' ERR
trap cleanup EXIT

awk 'BEGIN {
  srand(5); print "a,b";
  for (t = 0; t < 500; ++t) {
    a = sin(t / 9.0) + (rand() - 0.5) * 0.4;
    b = cos(t / 13.0) + (rand() - 0.5) * 0.4;
    printf "%.6f,%.6f\n", a, b;
  }
}' > "$WORK/ref.csv"

# Mixed mode stages both series into reduced precision (so the staging
# counters move); kernel@0:at=2 injects exactly one transient fault (the
# at= trigger fires once per device event counter), so the retry counters
# are exact, machine-independent numbers.
"$BUILD/tools/mpsim_cli" --reference="$WORK/ref.csv" --self-join \
    --window=32 --mode=Mixed --tiles=4 \
    --faults="seed=3,kernel@0:at=2" \
    --metrics-out="$WORK/metrics.json" --trace-out="$WORK/trace.json" \
    --motifs=0 > "$WORK/run.log"

grep -q "runtime metrics (counters):" "$WORK/run.log"
grep -q "runtime metrics (histograms):" "$WORK/run.log"
grep -q "metrics written to" "$WORK/run.log"
grep -q "trace written to" "$WORK/run.log"

python3 - "$WORK/metrics.json" "$WORK/trace.json" <<'EOF'
import json, sys

metrics = json.load(open(sys.argv[1]))
assert metrics["schema"] == "mpsim-metrics-v2", metrics.get("schema")
for key in ("counters", "gauges", "histograms"):
    assert key in metrics, f"missing top-level key {key!r}"

c = metrics["counters"]
assert c.get("faults.injected") == 1, c
assert c.get("faults.kernel_launch") == 1, c
assert c.get("resilient.retries") == 1, c
assert c.get("resilient.tiles_completed") == 4, c
assert c.get("resilient.attempts") == 5, c  # 4 tiles + 1 retried attempt
assert c.get("staging.misses", 0) >= 1, c
assert c.get("staging.bytes_converted", 0) > 0, c
assert any(k.startswith("kernel.") and k.endswith(".launches") and v > 0
           for k, v in c.items()), c
# v2 durability counters are registered (all zero in this non-watchdog,
# non-checkpointed run).
for key in ("resilient.checkpoint_writes", "resilient.tiles_resumed",
            "resilient.watchdog_fires", "resilient.speculative_wins",
            "resilient.speculative_losses", "resilient.tile_splits"):
    assert c.get(key, None) == 0, (key, c.get(key))

h = metrics["histograms"]
tile = h.get("resilient.tile_seconds")
assert tile is not None and tile["count"] == 5, tile
for name, data in h.items():
    assert data["count"] == sum(b["count"] for b in data["buckets"]), name
    if data["count"]:
        assert data["min"] <= data["max"], name

trace = json.load(open(sys.argv[2]))
assert isinstance(trace, list) and trace, "trace must be a non-empty array"
for ev in trace:
    assert ev["ph"] == "X", ev
    for key in ("name", "pid", "tid", "ts", "dur"):
        assert key in ev, (key, ev)
    assert ev["dur"] >= 0, ev
names = [ev["name"] for ev in trace]
assert "run_resilient" in names, names
assert "merge_tile_results" in names, names
assert sum(n.startswith("tile ") for n in names) == 5, names
print(f"metrics JSON OK ({len(c)} counters, {len(h)} histograms, "
      f"{len(trace)} trace events)")
EOF

# Sketch-prefilter decision trace: a smooth repeating workload (three
# noisy copies of one smoothed pattern — the regime the sketch bound is
# tight for) must produce real skips, and the full prefilter.* decision
# accounting plus the prefilter.miss_rate gauge must land in
# --metrics-out, self-consistent and within the configured budget.
python3 - > "$WORK/smooth.csv" <<'EOF'
import math, random
random.seed(101)
seg = 911
white = [random.gauss(0, 1.0) for _ in range(seg + 200)]
kern = [math.exp(-0.5 * (t / 15.0) ** 2) for t in range(-100, 100)]
base = [sum(w * k for w, k in zip(white[t:t + 200], kern))
        for t in range(seg)]
mean = sum(base) / seg
sd = (sum((v - mean) ** 2 for v in base) / seg) ** 0.5
base = [(v - mean) / sd for v in base]
print("a,b")
for rep in range(3):
    for t in range(seg):
        a = base[t] + random.gauss(0, 0.005)
        b = base[(t + 307) % seg] + random.gauss(0, 0.005)
        print("%.6f,%.6f" % (a, b))
EOF
"$BUILD/tools/mpsim_cli" --reference="$WORK/smooth.csv" --self-join \
    --window=400 --mode=FP16 --exclusion=100 \
    --prefilter=sketch --prefilter-budget=0.05 \
    --metrics-out="$WORK/prefilter_metrics.json" \
    --motifs=0 > "$WORK/prefilter_run.log"

python3 - "$WORK/prefilter_metrics.json" <<'EOF'
import json, sys

metrics = json.load(open(sys.argv[1]))
c = metrics["counters"]
g = metrics["gauges"]
for key in ("prefilter.blocks_total", "prefilter.blocks_skipped",
            "prefilter.blocks_verified", "prefilter.cols_skipped",
            "prefilter.cols_verified", "prefilter.cols_missed"):
    assert key in c, (key, sorted(c))
assert c["prefilter.blocks_total"] > 0, c
assert c["prefilter.cols_skipped"] > 0, "no skips on the smooth workload"
assert (c["prefilter.blocks_skipped"] + c["prefilter.blocks_verified"]
        <= c["prefilter.blocks_total"]), c
assert c["prefilter.cols_missed"] <= c["prefilter.cols_verified"], c
rate = g.get("prefilter.miss_rate")
assert rate is not None, sorted(g)
verified = c["prefilter.cols_verified"]
expected = c["prefilter.cols_missed"] / verified if verified else 0.0
assert abs(rate - expected) < 1e-12, (rate, expected)
assert rate <= 0.05, f"measured miss rate {rate} above the 0.05 budget"
print(f"prefilter metrics OK (skipped {c['prefilter.cols_skipped']} cols, "
      f"miss rate {rate})")
EOF

echo "cli metrics OK"
