#!/usr/bin/env bash
# Multi-node identity leg: the elastic coordinator must be invisible in
# the output bytes.  Three hard requirements, each byte-diffed against
# the single-node run:
#   1. an N-node run, across all 5 precision modes x both row paths;
#   2. a run killed mid-tile on N nodes and resumed on M != N nodes;
#   3. a resume whose journal was written under a *different tile grid*.
# Also checks the coordinator.* / node.* metrics counters and the node
# lifecycle spans in --trace-out.  Driven by CTest; $1 = build dir.
set -euo pipefail
BUILD=$1
WORK=$(mktemp -d)
CLI="$BUILD/tools/mpsim_cli"

cleanup() {
  status=$?
  if [ "$status" -ne 0 ]; then
    echo "cli_cluster_test FAILED (exit $status) at line ${FAILED_LINE:-?}" >&2
    for f in "$WORK"/*.log; do
      [ -f "$f" ] || continue
      echo "--- $f:" >&2
      cat "$f" >&2
    done
  fi
  rm -rf "$WORK"
  exit "$status"
}
trap 'FAILED_LINE=$LINENO' ERR
trap cleanup EXIT

awk 'BEGIN {
  srand(19); print "a,b";
  for (t = 0; t < 600; ++t) {
    a = sin(t / 9.0) + (rand() - 0.5) * 0.4;
    b = cos(t / 13.0) + (rand() - 0.5) * 0.4;
    printf "%.6f,%.6f\n", a, b;
  }
}' > "$WORK/ref.csv"

COMMON=(--reference="$WORK/ref.csv" --self-join --window=32 --devices=2
        --motifs=0)

# --- Requirement 1: N-node == single-node, all modes x both row paths.
for mode in FP64 FP32 FP16 Mixed FP16C; do
  for path in fused cooperative; do
    "$CLI" "${COMMON[@]}" --tiles=6 --mode="$mode" --row-path="$path" \
        --output="$WORK/one_${mode}_${path}.csv" \
        > "$WORK/one_${mode}_${path}.log"
    "$CLI" "${COMMON[@]}" --tiles=6 --mode="$mode" --row-path="$path" \
        --nodes=3 --output="$WORK/three_${mode}_${path}.csv" \
        > "$WORK/three_${mode}_${path}.log"
    cmp "$WORK/one_${mode}_${path}.csv" "$WORK/three_${mode}_${path}.csv"
  done
done

# --- Requirement 2: kill mid-tile on 3 nodes (sub-tile row slices in the
# journal), resume on 2 nodes.  The kill exits 130 unless the run won the
# race and completed (0); either way the resumed bytes must match.
status=0
"$CLI" "${COMMON[@]}" --tiles=6 --mode=Mixed --nodes=3 \
    --checkpoint="$WORK/elastic.ckpt" --checkpoint-interval=1 \
    --slice-rows=16 --kill-after-slices=2 \
    > "$WORK/killed.log" || status=$?
if [ "$status" -ne 0 ] && [ "$status" -ne 130 ]; then
  echo "elastic kill: expected exit 0 or 130, got $status" >&2
  exit 1
fi
[ -f "$WORK/elastic.ckpt" ]
"$CLI" "${COMMON[@]}" --tiles=6 --mode=Mixed --nodes=2 \
    --resume="$WORK/elastic.ckpt" --output="$WORK/elastic_resumed.csv" \
    > "$WORK/elastic_resumed.log"
cmp "$WORK/one_Mixed_fused.csv" "$WORK/elastic_resumed.csv"

# --- Requirement 3: the same journal re-keyed onto a *different grid*
# (tiles=6 -> tiles=4) and yet another node count.  The bytes must match
# the clean single-node run under the new grid.
"$CLI" "${COMMON[@]}" --tiles=4 --mode=Mixed \
    --output="$WORK/clean4.csv" > "$WORK/clean4.log"
"$CLI" "${COMMON[@]}" --tiles=4 --mode=Mixed --nodes=4 \
    --resume="$WORK/elastic.ckpt" --output="$WORK/regrid_resumed.csv" \
    > "$WORK/regrid_resumed.log"
cmp "$WORK/clean4.csv" "$WORK/regrid_resumed.csv"

# --- Observability: additive coordinator/node counters in the v2 metrics
# document and node lifecycle spans in the Chrome trace.
"$CLI" "${COMMON[@]}" --tiles=6 --mode=Mixed --nodes=2 --steal=off \
    --metrics-out="$WORK/metrics.json" --trace-out="$WORK/trace.json" \
    --output="$WORK/observed.csv" > "$WORK/observed.log"
cmp "$WORK/one_Mixed_fused.csv" "$WORK/observed.csv"
grep -q 'mpsim-metrics-v2' "$WORK/metrics.json"
for counter in coordinator.tiles_dispatched coordinator.steals \
               coordinator.node_crashes node.commits node.commit_conflicts; do
  grep -q "\"$counter\"" "$WORK/metrics.json"
done
grep -q '"coordinator"' "$WORK/trace.json"
grep -q '"node 0"' "$WORK/trace.json"
grep -q '"node 1"' "$WORK/trace.json"

# --- A node crash mid-run is recovered and reported, bytes unchanged.
"$CLI" "${COMMON[@]}" --tiles=6 --mode=Mixed --nodes=3 \
    --node-faults="seed=6,node_crash@1:at=1" \
    --output="$WORK/crash.csv" > "$WORK/crash.log"
cmp "$WORK/one_Mixed_fused.csv" "$WORK/crash.csv"
grep -q "node 1 crashed" "$WORK/crash.log"

echo "cli cluster OK"
