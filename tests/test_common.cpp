// Unit tests for the common utilities: RNG determinism, thread pool,
// table formatting, CLI parsing, error checks.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <mutex>
#include <set>
#include <thread>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/shutdown.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"

namespace mpsim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next_u64() == b.next_u64();
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIndexCoversRangeWithoutBias) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) counts[rng.uniform_index(10)] += 1;
  for (int c : counts) {
    EXPECT_GT(c, 9000);
    EXPECT_LT(c, 11000);
  }
}

TEST(Rng, NormalHasExpectedMoments) {
  Rng rng(5);
  double sum = 0.0, sumsq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.02);
}

TEST(Rng, ReseedReproduces) {
  Rng rng(42);
  const auto first = rng.next_u64();
  rng.reseed(42);
  EXPECT_EQ(rng.next_u64(), first);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t b, std::size_t) {
                          if (b == 0) throw Error("boom");
                        }),
      Error);
}

TEST(ThreadPool, SubmitRunsTask) {
  ThreadPool pool(2);
  std::atomic<int> value{0};
  auto f = pool.submit([&] { value = 42; });
  f.get();
  EXPECT_EQ(value.load(), 42);
}

TEST(ThreadPool, WorkerCountDefaultsPositive) {
  ThreadPool pool(0);
  EXPECT_GE(pool.worker_count(), 1u);
}

TEST(ThreadPool, ManyConcurrentParallelForsFromSubmitters) {
  // Streams call parallel_for concurrently; make sure that is safe.
  ThreadPool pool(4);
  std::atomic<long> total{0};
  std::vector<std::thread> drivers;
  for (int t = 0; t < 4; ++t) {
    drivers.emplace_back([&] {
      for (int rep = 0; rep < 50; ++rep) {
        pool.parallel_for(64, [&](std::size_t b, std::size_t e) {
          total.fetch_add(long(e - b));
        });
      }
    });
  }
  for (auto& d : drivers) d.join();
  EXPECT_EQ(total.load(), 4L * 50 * 64);
}

TEST(ThreadPool, ParallelForRebalancesLongTail) {
  // One index is ~100x more expensive than the rest.  Over-decomposed
  // chunk claiming must let the other workers drain the cheap chunks while
  // one worker is stuck, instead of pinning an equal share to each worker
  // up front.  We verify both coverage and that more than one distinct
  // thread executed chunks (i.e. the slow chunk did not serialize the run).
  ThreadPool pool(4);
  const std::size_t n = 4096;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  std::mutex ids_mutex;
  std::set<std::thread::id> ids;
  pool.parallel_for(n, [&](std::size_t b, std::size_t e) {
    {
      std::lock_guard lock(ids_mutex);
      ids.insert(std::this_thread::get_id());
    }
    for (std::size_t i = b; i < e; ++i) {
      if (i == 0) {
        // Busy-wait so the first chunk is a genuine straggler.
        const auto until =
            std::chrono::steady_clock::now() + std::chrono::milliseconds(20);
        while (std::chrono::steady_clock::now() < until) {
        }
      }
      hits[i].fetch_add(1);
    }
  });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
  // Over-decomposition guarantees more chunks than workers, so with a
  // 20ms straggler at index 0 at least one other thread must have claimed
  // work (the caller itself participates, so >= 2 is always achievable).
  EXPECT_GE(ids.size(), 2u);
}

TEST(ThreadPool, ParallelForSmallRangeRunsInline) {
  // Spans at or below the inline threshold run directly in the caller.
  ThreadPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id seen;
  pool.parallel_for(ThreadPool::kInlineMax, [&](std::size_t b, std::size_t e) {
    EXPECT_EQ(b, 0u);
    EXPECT_EQ(e, ThreadPool::kInlineMax);
    seen = std::this_thread::get_id();
  });
  EXPECT_EQ(seen, caller);
}

TEST(Table, AlignsAndCounts) {
  Table t({"a", "long-header", "c"});
  t.add_row({"1", "2", "3"});
  t.add_row({"wide-cell", "x", "y"});
  EXPECT_EQ(t.row_count(), 2u);
  const auto s = t.to_string();
  EXPECT_NE(s.find("long-header"), std::string::npos);
  EXPECT_NE(s.find("wide-cell"), std::string::npos);
}

TEST(Table, RejectsWrongArity) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(TableFormat, Helpers) {
  EXPECT_EQ(fmt_fixed(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_pct(0.5, 1), "50.0%");
  EXPECT_NE(fmt_sci(12345.0).find("e"), std::string::npos);
}

TEST(Cli, ParsesFlagsAndDefaults) {
  const char* argv[] = {"prog", "--n=128", "--mode=FP16", "--verbose"};
  CliArgs args(4, argv);
  EXPECT_EQ(args.get_int("n", 0), 128);
  EXPECT_EQ(args.get_string("mode", ""), "FP16");
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_EQ(args.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double("missing", 2.5), 2.5);
}

TEST(Cli, RejectsPositionalAndUnknown) {
  const char* bad[] = {"prog", "positional"};
  EXPECT_THROW(CliArgs(2, bad), Error);

  const char* argv[] = {"prog", "--typo=1"};
  CliArgs args(2, argv);
  EXPECT_THROW(args.check_known({"n", "mode"}), Error);
}

TEST(Cli, MalformedNumericFlagsThrowInsteadOfSilentlyTruncating) {
  // Regression: get_int/get_double used strtoll/strtod with a null endptr,
  // so "--tiles=abc" parsed as 0 and "--window=64garbage" as 64.
  const char* argv[] = {"prog", "--tiles=abc", "--window=64garbage",
                        "--slack=1.5x", "--empty="};
  CliArgs args(5, argv);
  EXPECT_THROW(args.get_int("tiles", 0), Error);
  EXPECT_THROW(args.get_int("window", 0), Error);
  EXPECT_THROW(args.get_double("slack", 0.0), Error);
  EXPECT_THROW(args.get_int("empty", 0), Error);
  EXPECT_THROW(args.get_double("empty", 0.0), Error);
  try {
    args.get_int("tiles", 0);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    // The message must name the flag and the bad value.
    EXPECT_NE(std::string(e.what()).find("--tiles=abc"), std::string::npos)
        << e.what();
  }
}

TEST(Cli, WellFormedNumericFlagsStillParse) {
  const char* argv[] = {"prog", "--a=-42", "--b=1e3", "--c=0.125",
                        "--d=+7"};
  CliArgs args(5, argv);
  EXPECT_EQ(args.get_int("a", 0), -42);
  EXPECT_DOUBLE_EQ(args.get_double("b", 0.0), 1000.0);
  EXPECT_DOUBLE_EQ(args.get_double("c", 0.0), 0.125);
  EXPECT_EQ(args.get_int("d", 0), 7);
}

TEST(Cli, ParseFlagHelpersValidateDirectly) {
  EXPECT_EQ(parse_int_flag("tiles", "16"), 16);
  EXPECT_DOUBLE_EQ(parse_double_flag("slack", "2.5"), 2.5);
  EXPECT_THROW(parse_int_flag("tiles", "1.5"), Error);
  EXPECT_THROW(parse_int_flag("tiles", "  3"), Error);
  EXPECT_THROW(parse_int_flag("tiles", "99999999999999999999999"), Error);
  EXPECT_THROW(parse_double_flag("slack", "nanx"), Error);
}

TEST(Shutdown, ExitCodeFollowsSignalConvention) {
  clear_shutdown();
  // Programmatic shutdown (tests, --kill-after-tiles): no signal recorded,
  // the historical 130 stays.
  request_shutdown();
  EXPECT_TRUE(shutdown_requested());
  EXPECT_EQ(shutdown_signal(), 0);
  EXPECT_EQ(shutdown_exit_code(), 130);
  clear_shutdown();
  EXPECT_FALSE(shutdown_requested());
  EXPECT_EQ(shutdown_signal(), 0);

  // Regression: a real SIGTERM must exit 143 (128+15), not the
  // SIGINT-flavoured 130, so orchestrators can tell the two apart.
  install_signal_handlers();
  std::raise(SIGTERM);  // first signal: graceful path, flag + signal set
  EXPECT_TRUE(shutdown_requested());
  EXPECT_EQ(shutdown_signal(), SIGTERM);
  EXPECT_EQ(shutdown_exit_code(), 128 + SIGTERM);
  clear_shutdown();

  std::raise(SIGINT);
  EXPECT_EQ(shutdown_signal(), SIGINT);
  EXPECT_EQ(shutdown_exit_code(), 130);
  clear_shutdown();
}

TEST(Error, CheckMacroThrowsWithMessage) {
  try {
    MPSIM_CHECK(1 == 2, "custom context " << 42);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("custom context 42"),
              std::string::npos);
  }
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  const double t0 = sw.seconds();
  EXPECT_GE(t0, 0.0);
  sw.reset();
  EXPECT_GE(sw.seconds(), 0.0);
}

}  // namespace
}  // namespace mpsim
