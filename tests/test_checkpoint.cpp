// Durable checkpoint/resume: the v3 slice journal round-trips bit-exactly,
// damaged or foreign journals fall back to a fresh run through a structured
// RunEvent (distinguishing missing vs corrupt vs fingerprint-mismatch), a
// killed-then-resumed computation produces the same profile/index bits as
// the uninterrupted run in every precision mode and on both row paths, and
// slices written under one tile grid re-key onto a different grid (whole
// tiles restore outright, row prefixes replay only their tail, everything
// else is discarded and recomputed).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/metrics.hpp"
#include "common/shutdown.hpp"
#include "mp/checkpoint.hpp"
#include "mp/matrix_profile.hpp"
#include "mp/tile_plan.hpp"
#include "tsdata/synthetic.hpp"

namespace mpsim::mp {
namespace {

SyntheticDataset small_dataset(std::size_t segments = 160,
                               std::size_t dims = 2,
                               std::size_t window = 16,
                               std::uint64_t seed = 21) {
  SyntheticSpec spec;
  spec.segments = segments;
  spec.dims = dims;
  spec.window = window;
  spec.injections_per_dim = 2;
  spec.seed = seed;
  return make_synthetic_dataset(spec);
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "mpsim_" + name + ".ckpt";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), std::streamsize(bytes.size()));
}

CheckpointData sample_data() {
  CheckpointData data;
  data.fingerprint = 0xfeedbeefcafe1234ULL;
  data.tile_count = 4;
  CheckpointSlice slice;
  slice.tile_index = 2;
  slice.tile_id = 2;
  slice.device = 1;
  slice.node = 3;
  slice.complete = 0;  // a mid-tile row-slice snapshot
  slice.mode = PrecisionMode::Mixed;
  slice.r_begin = 40;
  slice.r_count = 17;
  slice.q_begin = 80;
  slice.q_count = 3;
  slice.dims = 1;
  slice.profile = {0.5, 1.25, std::numeric_limits<double>::infinity()};
  slice.index = {7, -1, 3};
  slice.prefilter.blocks_total = 9;
  slice.prefilter.blocks_skipped = 4;
  slice.prefilter.cols_skipped = 12;
  data.slices.push_back(slice);
  data.events.push_back(
      {RunEvent::Kind::kRetry, 2, 1, "injected kernel fault — retry 1/3"});
  return data;
}

// ---------------------------------------------------------------------
// Journal mechanics.
// ---------------------------------------------------------------------

TEST(CheckpointJournal, RoundTripsBitExactly) {
  const std::string path = temp_path("roundtrip");
  const CheckpointData data = sample_data();
  write_checkpoint(path, data);

  const CheckpointData back = read_checkpoint(path);
  EXPECT_EQ(back.fingerprint, data.fingerprint);
  EXPECT_EQ(back.tile_count, data.tile_count);
  ASSERT_EQ(back.slices.size(), 1u);
  const CheckpointSlice& s = back.slices[0];
  EXPECT_EQ(s.tile_index, 2u);
  EXPECT_EQ(s.tile_id, 2);
  EXPECT_EQ(s.device, 1);
  EXPECT_EQ(s.node, 3);
  EXPECT_EQ(s.complete, 0);
  EXPECT_EQ(s.mode, PrecisionMode::Mixed);
  EXPECT_EQ(s.r_begin, 40u);
  EXPECT_EQ(s.r_count, 17u);
  EXPECT_EQ(s.q_begin, 80u);
  EXPECT_EQ(s.q_count, 3u);
  EXPECT_EQ(s.dims, 1u);
  EXPECT_EQ(s.profile, data.slices[0].profile);
  EXPECT_EQ(s.index, data.slices[0].index);
  EXPECT_EQ(s.prefilter.blocks_total, 9u);
  EXPECT_EQ(s.prefilter.blocks_skipped, 4u);
  EXPECT_EQ(s.prefilter.cols_skipped, 12u);
  ASSERT_EQ(back.events.size(), 1u);
  EXPECT_EQ(back.events[0].kind, RunEvent::Kind::kRetry);
  EXPECT_EQ(back.events[0].detail, data.events[0].detail);
  std::remove(path.c_str());
}

TEST(CheckpointJournal, WriteIsAtomicReplace) {
  const std::string path = temp_path("atomic");
  CheckpointData data = sample_data();
  write_checkpoint(path, data);
  // A second write replaces the journal; no .tmp file survives.
  data.slices[0].profile[0] = 0.75;
  write_checkpoint(path, data);
  EXPECT_EQ(read_checkpoint(path).slices[0].profile[0], 0.75);
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

TEST(CheckpointJournal, WriteIsDurablySynced) {
  // Regression: the tmp-write + rename used to issue no fsync at all, so
  // a crash shortly after a "successful" write could surface a zero-length
  // or stale file behind the rename.  Every write must now place two sync
  // barriers: the tmp file before the rename, the parent directory after.
  const std::string path = temp_path("durable");
  const std::uint64_t before = detail::durable_sync_count();
  write_checkpoint(path, sample_data());
  EXPECT_EQ(detail::durable_sync_count() - before, 2u);

  // Replacing an existing journal is synced the same way.
  write_checkpoint(path, sample_data());
  EXPECT_EQ(detail::durable_sync_count() - before, 4u);
  std::remove(path.c_str());
}

TEST(CheckpointJournal, ZeroLengthFileIsRejectedNotParsed) {
  // The crash shape the missing fsync produced: a present but empty
  // journal.  Resume must treat it exactly like a corrupt file.
  const std::string path = temp_path("zerolen");
  write_file(path, "");
  try {
    read_checkpoint(path);
    FAIL() << "empty journal parsed";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.reason(), CheckpointError::Reason::kCorrupt);
  }
  std::remove(path.c_str());
}

TEST(CheckpointJournal, RejectsMissingTruncatedAndCorruptFiles) {
  // Missing and damaged files raise distinct reasons: the resume fallback
  // reports them as different structured events (see ResumeFallback*).
  try {
    read_checkpoint(temp_path("nonexistent"));
    FAIL() << "missing journal parsed";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.reason(), CheckpointError::Reason::kMissing);
  }

  const std::string path = temp_path("damaged");
  write_checkpoint(path, sample_data());
  const std::string good = read_file(path);

  // Truncations anywhere (header, payload, checksum) must be rejected.
  for (const std::size_t keep :
       {std::size_t(4), good.size() / 2, good.size() - 1}) {
    write_file(path, good.substr(0, keep));
    try {
      read_checkpoint(path);
      FAIL() << "truncated journal parsed at " << keep;
    } catch (const CheckpointError& e) {
      EXPECT_EQ(e.reason(), CheckpointError::Reason::kCorrupt) << keep;
    }
  }
  // A flipped payload byte fails the checksum.
  std::string corrupt = good;
  corrupt[corrupt.size() / 2] =
      char(corrupt[corrupt.size() / 2] ^ 0x20);
  write_file(path, corrupt);
  EXPECT_THROW(read_checkpoint(path), CheckpointError);
  // A different magic is not an mpsim checkpoint at all (this also covers
  // v2 journals: the old "mpsim-ckpt-v2" magic no longer matches).
  std::string foreign = good;
  foreign[0] = 'X';
  write_file(path, foreign);
  EXPECT_THROW(read_checkpoint(path), CheckpointError);
  // Trailing garbage after the journal is rejected too (the checksum is
  // recomputed over everything before the trailer, so append + re-hash
  // could otherwise smuggle bytes past it).
  std::string padded = good;
  padded.insert(padded.size() - 8, "????");
  write_file(path, padded);
  EXPECT_THROW(read_checkpoint(path), CheckpointError);
  std::remove(path.c_str());
}

TEST(CheckpointJournal, FingerprintTracksInputsNotShape) {
  const auto a = small_dataset(120, 2, 16, 1);
  const auto b = small_dataset(120, 2, 16, 2);  // different samples
  MatrixProfileConfig config;
  config.window = 16;
  const auto fp_a = checkpoint_fingerprint(a.reference, a.query, config);
  EXPECT_EQ(fp_a, checkpoint_fingerprint(a.reference, a.query, config));
  EXPECT_NE(fp_a, checkpoint_fingerprint(b.reference, b.query, config));
  MatrixProfileConfig other = config;
  other.mode = PrecisionMode::FP16;
  EXPECT_NE(fp_a, checkpoint_fingerprint(a.reference, a.query, other));
  // The tile grid is deliberately NOT part of the fingerprint: v3 slices
  // carry absolute ranges, so a journal re-keys onto a different grid.
  other = config;
  other.tiles = 4;
  EXPECT_EQ(fp_a, checkpoint_fingerprint(a.reference, a.query, other));
  // ... but the grid DOES change reduced-precision output bits, so the
  // serve daemon's profile cache key must still separate the two.
  EXPECT_NE(profile_cache_key(a.reference, a.query, config),
            profile_cache_key(a.reference, a.query, other));
  // Non-output-affecting knobs change neither identity.
  other = config;
  other.devices = 3;
  other.row_path = RowPath::kCooperative;
  other.resilience.watchdog = true;
  EXPECT_EQ(fp_a, checkpoint_fingerprint(a.reference, a.query, other));
  EXPECT_EQ(profile_cache_key(a.reference, a.query, config),
            profile_cache_key(a.reference, a.query, other));
}

// ---------------------------------------------------------------------
// Slice re-keying: how journalled ranges map onto a changed tile grid.
// ---------------------------------------------------------------------

TEST(CheckpointSliceFit, RekeyingEdgeCases) {
  Tile tile;  // the *current* grid's tile: rows [100, 150) x cols [0, 40)
  tile.r_begin = 100;
  tile.r_count = 50;
  tile.q_begin = 0;
  tile.q_count = 40;
  const std::size_t dims = 2;

  // Exact cover — zero-width remainder — restores the tile outright.
  EXPECT_EQ(classify_slice(100, 50, 0, 40, dims, tile, dims),
            SliceFit::kComplete);
  // Proper row prefix: the tail [130, 150) replays from the prefix.
  EXPECT_EQ(classify_slice(100, 30, 0, 40, dims, tile, dims),
            SliceFit::kPrefix);
  // A slice spanning exactly past the tile's row boundary is unusable:
  // its profile is already min-merged over rows the tile does not own,
  // and row contributions cannot be un-merged.
  EXPECT_EQ(classify_slice(100, 100, 0, 40, dims, tile, dims),
            SliceFit::kNone);
  // Row origin inside the tile but not at its start: the journalled QT
  // recurrence was seeded elsewhere, so its bits are not this tile's.
  EXPECT_EQ(classify_slice(125, 25, 0, 40, dims, tile, dims),
            SliceFit::kNone);
  // Zero journalled rows carry nothing to restore.
  EXPECT_EQ(classify_slice(100, 0, 0, 40, dims, tile, dims),
            SliceFit::kNone);
  // Column subset or shift: no bit-safe sub-range can be extracted.
  EXPECT_EQ(classify_slice(100, 50, 0, 20, dims, tile, dims),
            SliceFit::kNone);
  EXPECT_EQ(classify_slice(100, 50, 8, 40, dims, tile, dims),
            SliceFit::kNone);
  // d-dimension mismatch is rejected outright.
  EXPECT_EQ(classify_slice(100, 50, 0, 40, dims + 1, tile, dims),
            SliceFit::kNone);
}

// ---------------------------------------------------------------------
// Kill + resume produces the uninterrupted run's bits.
// ---------------------------------------------------------------------

TEST(CheckpointResume, KilledRunResumesBitIdenticallyAllModesBothPaths) {
  const auto data = small_dataset();
  for (const RowPath path : {RowPath::kFused, RowPath::kCooperative}) {
    for (const PrecisionMode mode : kAllPrecisionModes) {
      MatrixProfileConfig config;
      config.window = 16;
      config.mode = mode;
      config.tiles = 4;
      config.devices = 2;
      config.row_path = path;

      const auto clean =
          compute_matrix_profile(data.reference, data.query, config);

      const std::string ckpt =
          temp_path("resume_" + to_string(mode) + "_" + to_string(path));
      config.checkpoint.write_path = ckpt;
      config.checkpoint.interval_tiles = 1;
      config.checkpoint.kill_after_tiles = 2;
      clear_shutdown();
      try {
        const auto r =
            compute_matrix_profile(data.reference, data.query, config);
        // The kill raced run completion: every tile committed before the
        // monitor saw the request.  The journal is complete either way.
        EXPECT_EQ(r.profile, clean.profile);
      } catch (const InterruptedError& e) {
        EXPECT_NE(std::string(e.what()).find("resume"), std::string::npos);
      }
      clear_shutdown();

      config.checkpoint.kill_after_tiles = 0;
      config.checkpoint.resume_path = ckpt;
      const auto resumed =
          compute_matrix_profile(data.reference, data.query, config);

      EXPECT_EQ(resumed.profile, clean.profile)
          << to_string(mode) << " " << to_string(path);
      EXPECT_EQ(resumed.index, clean.index)
          << to_string(mode) << " " << to_string(path);
      EXPECT_GT(resumed.health.resumed_tiles, 0);
      EXPECT_GT(resumed.health.checkpoint_writes, 0);
      bool saw_resume_event = false;
      for (const auto& event : resumed.health.events) {
        if (event.kind == RunEvent::Kind::kResumed) saw_resume_event = true;
      }
      EXPECT_TRUE(saw_resume_event);
      std::remove(ckpt.c_str());
    }
  }
}

TEST(CheckpointResume, MidTileSliceKillResumesBitIdentically) {
  // Sub-tile durability: kill after a handful of journalled row slices —
  // mid-tile, before every tile committed — then resume.  The journalled
  // prefix seeds its tile (the tail replays QT-only) and the final bits
  // match the uninterrupted run.
  const auto data = small_dataset(160, 2, 16, 9);
  MatrixProfileConfig config;
  config.window = 16;
  config.tiles = 2;
  const auto clean =
      compute_matrix_profile(data.reference, data.query, config);

  const std::string ckpt = temp_path("slicekill");
  config.checkpoint.write_path = ckpt;
  config.checkpoint.slice_rows = 8;
  config.checkpoint.kill_after_slices = 2;
  clear_shutdown();
  try {
    compute_matrix_profile(data.reference, data.query, config);
  } catch (const InterruptedError&) {
  }
  clear_shutdown();

  config.checkpoint.kill_after_slices = 0;
  config.checkpoint.slice_rows = 0;
  config.checkpoint.resume_path = ckpt;
  const auto resumed =
      compute_matrix_profile(data.reference, data.query, config);
  EXPECT_EQ(resumed.profile, clean.profile);
  EXPECT_EQ(resumed.index, clean.index);
  EXPECT_GT(resumed.health.partial_slices + resumed.health.resumed_tiles, 0);
  std::remove(ckpt.c_str());
}

TEST(CheckpointResume, CompletedJournalSkipsAllWork) {
  const auto data = small_dataset(120, 2, 16, 4);
  MatrixProfileConfig config;
  config.window = 16;
  config.tiles = 4;
  const std::string ckpt = temp_path("complete");
  config.checkpoint.write_path = ckpt;

  const auto first = compute_matrix_profile(data.reference, data.query,
                                            config);
  EXPECT_GT(first.health.checkpoint_writes, 0);

  config.checkpoint.resume_path = ckpt;
  const auto second = compute_matrix_profile(data.reference, data.query,
                                             config);
  EXPECT_EQ(second.health.resumed_tiles, 4);
  EXPECT_EQ(second.profile, first.profile);
  EXPECT_EQ(second.index, first.index);
  std::remove(ckpt.c_str());
}

// ---------------------------------------------------------------------
// Resume fallback: every unusable-journal class is a structured event,
// not a silent fresh start (and never an abort).
// ---------------------------------------------------------------------

int count_fallbacks(const RunHealth& health, const std::string& needle) {
  int n = 0;
  for (const auto& event : health.events) {
    if (event.kind == RunEvent::Kind::kResumeFallback &&
        event.detail.find(needle) != std::string::npos) {
      ++n;
    }
  }
  return n;
}

TEST(CheckpointResume, MissingJournalFallsBackWithStructuredEvent) {
  const auto data = small_dataset(120, 2, 16, 5);
  MatrixProfileConfig config;
  config.window = 16;
  config.tiles = 2;
  const auto clean = compute_matrix_profile(data.reference, data.query,
                                            config);

  auto& registry = MetricsRegistry::global();
  registry.reset();
  registry.set_enabled(true);
  auto& fallbacks = registry.counter("resilient.resume_fallback");
  const std::uint64_t before = fallbacks.value();

  config.checkpoint.resume_path = temp_path("never_written");
  const auto resumed = compute_matrix_profile(data.reference, data.query,
                                              config);
  EXPECT_EQ(resumed.health.resumed_tiles, 0);
  EXPECT_EQ(resumed.health.resume_fallbacks, 1);
  EXPECT_EQ(count_fallbacks(resumed.health, "is missing"), 1);
  EXPECT_EQ(fallbacks.value() - before, 1u);
  EXPECT_EQ(resumed.profile, clean.profile);
  registry.set_enabled(false);
  registry.reset();
}

TEST(CheckpointResume, CorruptJournalFallsBackWithStructuredEvent) {
  const auto data = small_dataset(120, 2, 16, 5);
  MatrixProfileConfig config;
  config.window = 16;
  config.tiles = 2;
  const auto clean = compute_matrix_profile(data.reference, data.query,
                                            config);

  const std::string ckpt = temp_path("corrupt_resume");
  MatrixProfileConfig writer = config;
  writer.checkpoint.write_path = ckpt;
  compute_matrix_profile(data.reference, data.query, writer);
  std::string bytes = read_file(ckpt);
  bytes[bytes.size() / 2] = char(bytes[bytes.size() / 2] ^ 0x01);
  write_file(ckpt, bytes);

  config.checkpoint.resume_path = ckpt;
  const auto resumed = compute_matrix_profile(data.reference, data.query,
                                              config);
  EXPECT_EQ(resumed.health.resumed_tiles, 0);
  EXPECT_EQ(resumed.health.resume_fallbacks, 1);
  EXPECT_EQ(count_fallbacks(resumed.health, "is unreadable"), 1);
  EXPECT_EQ(resumed.profile, clean.profile);
  std::remove(ckpt.c_str());
}

TEST(CheckpointResume, ForeignJournalFallsBackWithStructuredEvent) {
  const auto data = small_dataset(120, 2, 16, 5);
  const auto other = small_dataset(120, 2, 16, 6);
  MatrixProfileConfig config;
  config.window = 16;
  config.tiles = 2;
  const auto clean = compute_matrix_profile(data.reference, data.query,
                                            config);

  // Journal of a different dataset: fingerprint mismatch.
  const std::string ckpt = temp_path("foreign");
  MatrixProfileConfig other_config = config;
  other_config.checkpoint.write_path = ckpt;
  compute_matrix_profile(other.reference, other.query, other_config);

  config.checkpoint.resume_path = ckpt;
  const auto resumed = compute_matrix_profile(data.reference, data.query,
                                              config);
  EXPECT_EQ(resumed.health.resumed_tiles, 0);
  EXPECT_EQ(resumed.health.resume_fallbacks, 1);
  EXPECT_EQ(count_fallbacks(resumed.health, "fingerprint mismatch"), 1);
  EXPECT_EQ(resumed.profile, clean.profile);
  std::remove(ckpt.c_str());
}

// ---------------------------------------------------------------------
// Elastic resume: a journal written under one tile grid re-keys onto a
// different grid — and the run's bits still match the clean run's.
// ---------------------------------------------------------------------

TEST(CheckpointResume, GridChangeReusesPrefixesAndDiscardsTheRest) {
  // tiles=8 → a 4x2 grid, tiles=4 → 2x2: the column split is identical,
  // each coarse tile's rows are two fine tiles' rows.  Of each pair of
  // fine complete slices, the first is an exact row *prefix* of the
  // coarse tile (same seed origin — restorable, tail replays QT-only)
  // and the second is seeded mid-tile (unusable, discarded).
  const auto data = small_dataset(160, 2, 16, 8);
  MatrixProfileConfig fine;
  fine.window = 16;
  fine.tiles = 8;
  const std::string ckpt = temp_path("gridchange");
  fine.checkpoint.write_path = ckpt;
  compute_matrix_profile(data.reference, data.query, fine);

  MatrixProfileConfig coarse;
  coarse.window = 16;
  coarse.tiles = 4;
  const auto clean = compute_matrix_profile(data.reference, data.query,
                                            coarse);

  coarse.checkpoint.resume_path = ckpt;
  const auto resumed = compute_matrix_profile(data.reference, data.query,
                                              coarse);
  EXPECT_EQ(resumed.health.resumed_tiles, 0);
  EXPECT_EQ(resumed.health.partial_slices, 4);
  EXPECT_EQ(resumed.health.slices_discarded, 4);
  EXPECT_EQ(resumed.profile, clean.profile);
  EXPECT_EQ(resumed.index, clean.index);
  bool saw_restored = false;
  bool saw_discarded = false;
  for (const auto& event : resumed.health.events) {
    if (event.kind == RunEvent::Kind::kSliceRestored) saw_restored = true;
    if (event.kind == RunEvent::Kind::kSliceDiscarded) saw_discarded = true;
  }
  EXPECT_TRUE(saw_restored);
  EXPECT_TRUE(saw_discarded);
  std::remove(ckpt.c_str());
}

TEST(CheckpointResume, DimsMismatchedSliceIsDiscardedNotRestored) {
  const auto data = small_dataset(120, 2, 16, 4);
  MatrixProfileConfig config;
  config.window = 16;
  config.tiles = 2;
  const std::string ckpt = temp_path("dimsmismatch");
  config.checkpoint.write_path = ckpt;
  const auto clean = compute_matrix_profile(data.reference, data.query,
                                            config);

  // Rewrite the journal with one slice carrying a different per-column
  // value count (internally consistent, so the reader accepts it):
  // re-keying must reject it rather than mis-merge.
  CheckpointData journal = read_checkpoint(ckpt);
  ASSERT_EQ(journal.slices.size(), 2u);
  CheckpointSlice& widened = journal.slices[0];
  widened.dims += 1;
  widened.profile.resize(widened.q_count * widened.dims, 0.0);
  widened.index.resize(widened.q_count * widened.dims, -1);
  write_checkpoint(ckpt, journal);

  config.checkpoint.write_path.clear();
  config.checkpoint.resume_path = ckpt;
  const auto resumed = compute_matrix_profile(data.reference, data.query,
                                              config);
  EXPECT_EQ(resumed.health.resumed_tiles, 1);
  EXPECT_EQ(resumed.health.slices_discarded, 1);
  EXPECT_EQ(resumed.profile, clean.profile);
  EXPECT_EQ(resumed.index, clean.index);
  std::remove(ckpt.c_str());
}

TEST(CheckpointResume, IntervalControlsJournalCadence) {
  const auto data = small_dataset(160, 2, 16, 7);
  MatrixProfileConfig config;
  config.window = 16;
  config.tiles = 6;
  const std::string ckpt = temp_path("cadence");
  config.checkpoint.write_path = ckpt;
  config.checkpoint.interval_tiles = 2;

  const auto result = compute_matrix_profile(data.reference, data.query,
                                             config);
  // 6 commits at K=2 → 3 interval writes, plus the final flush.
  EXPECT_EQ(result.health.checkpoint_writes, 4);
  const CheckpointData journal = read_checkpoint(ckpt);
  EXPECT_EQ(journal.tile_count, 6u);
  EXPECT_EQ(journal.slices.size(), 6u);
  for (const CheckpointSlice& slice : journal.slices) {
    EXPECT_EQ(slice.complete, 1);
  }
  std::remove(ckpt.c_str());
}

}  // namespace
}  // namespace mpsim::mp
