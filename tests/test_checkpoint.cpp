// Durable checkpoint/resume: journal round-trips bit-exactly, damaged or
// foreign journals are rejected with a clear error (and a resume against
// one proceeds as a fresh run), and a killed-then-resumed computation
// produces the same profile/index bits as the uninterrupted run in every
// precision mode and on both row paths.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/shutdown.hpp"
#include "mp/checkpoint.hpp"
#include "mp/matrix_profile.hpp"
#include "tsdata/synthetic.hpp"

namespace mpsim::mp {
namespace {

SyntheticDataset small_dataset(std::size_t segments = 160,
                               std::size_t dims = 2,
                               std::size_t window = 16,
                               std::uint64_t seed = 21) {
  SyntheticSpec spec;
  spec.segments = segments;
  spec.dims = dims;
  spec.window = window;
  spec.injections_per_dim = 2;
  spec.seed = seed;
  return make_synthetic_dataset(spec);
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "mpsim_" + name + ".ckpt";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), std::streamsize(bytes.size()));
}

CheckpointData sample_data() {
  CheckpointData data;
  data.fingerprint = 0xfeedbeefcafe1234ULL;
  data.tile_count = 4;
  CheckpointTile tile;
  tile.tile_index = 2;
  tile.tile_id = 2;
  tile.device = 1;
  tile.mode = PrecisionMode::Mixed;
  tile.profile = {0.5, 1.25, std::numeric_limits<double>::infinity()};
  tile.index = {7, -1, 3};
  data.tiles.push_back(tile);
  data.events.push_back(
      {RunEvent::Kind::kRetry, 2, 1, "injected kernel fault — retry 1/3"});
  return data;
}

// ---------------------------------------------------------------------
// Journal mechanics.
// ---------------------------------------------------------------------

TEST(CheckpointJournal, RoundTripsBitExactly) {
  const std::string path = temp_path("roundtrip");
  const CheckpointData data = sample_data();
  write_checkpoint(path, data);

  const CheckpointData back = read_checkpoint(path);
  EXPECT_EQ(back.fingerprint, data.fingerprint);
  EXPECT_EQ(back.tile_count, data.tile_count);
  ASSERT_EQ(back.tiles.size(), 1u);
  EXPECT_EQ(back.tiles[0].tile_index, 2u);
  EXPECT_EQ(back.tiles[0].tile_id, 2);
  EXPECT_EQ(back.tiles[0].device, 1);
  EXPECT_EQ(back.tiles[0].mode, PrecisionMode::Mixed);
  EXPECT_EQ(back.tiles[0].profile, data.tiles[0].profile);
  EXPECT_EQ(back.tiles[0].index, data.tiles[0].index);
  ASSERT_EQ(back.events.size(), 1u);
  EXPECT_EQ(back.events[0].kind, RunEvent::Kind::kRetry);
  EXPECT_EQ(back.events[0].detail, data.events[0].detail);
  std::remove(path.c_str());
}

TEST(CheckpointJournal, WriteIsAtomicReplace) {
  const std::string path = temp_path("atomic");
  CheckpointData data = sample_data();
  write_checkpoint(path, data);
  // A second write replaces the journal; no .tmp file survives.
  data.tiles[0].profile[0] = 0.75;
  write_checkpoint(path, data);
  EXPECT_EQ(read_checkpoint(path).tiles[0].profile[0], 0.75);
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

TEST(CheckpointJournal, WriteIsDurablySynced) {
  // Regression: the tmp-write + rename used to issue no fsync at all, so
  // a crash shortly after a "successful" write could surface a zero-length
  // or stale file behind the rename.  Every write must now place two sync
  // barriers: the tmp file before the rename, the parent directory after.
  const std::string path = temp_path("durable");
  const std::uint64_t before = detail::durable_sync_count();
  write_checkpoint(path, sample_data());
  EXPECT_EQ(detail::durable_sync_count() - before, 2u);

  // Replacing an existing journal is synced the same way.
  write_checkpoint(path, sample_data());
  EXPECT_EQ(detail::durable_sync_count() - before, 4u);
  std::remove(path.c_str());
}

TEST(CheckpointJournal, ZeroLengthFileIsRejectedNotParsed) {
  // The crash shape the missing fsync produced: a present but empty
  // journal.  Resume must treat it exactly like a corrupt file.
  const std::string path = temp_path("zerolen");
  write_file(path, "");
  EXPECT_THROW(read_checkpoint(path), CheckpointError);
  std::remove(path.c_str());
}

TEST(CheckpointJournal, RejectsMissingTruncatedAndCorruptFiles) {
  EXPECT_THROW(read_checkpoint(temp_path("nonexistent")), CheckpointError);

  const std::string path = temp_path("damaged");
  write_checkpoint(path, sample_data());
  const std::string good = read_file(path);

  // Truncations anywhere (header, payload, checksum) must be rejected.
  for (const std::size_t keep :
       {std::size_t(4), good.size() / 2, good.size() - 1}) {
    write_file(path, good.substr(0, keep));
    EXPECT_THROW(read_checkpoint(path), CheckpointError) << keep;
  }
  // A flipped payload byte fails the checksum.
  std::string corrupt = good;
  corrupt[corrupt.size() / 2] =
      char(corrupt[corrupt.size() / 2] ^ 0x20);
  write_file(path, corrupt);
  EXPECT_THROW(read_checkpoint(path), CheckpointError);
  // A different magic is not an mpsim checkpoint at all.
  std::string foreign = good;
  foreign[0] = 'X';
  write_file(path, foreign);
  EXPECT_THROW(read_checkpoint(path), CheckpointError);
  // Trailing garbage after the journal is rejected too (the checksum is
  // recomputed over everything before the trailer, so append + re-hash
  // could otherwise smuggle bytes past it).
  std::string padded = good;
  padded.insert(padded.size() - 8, "????");
  write_file(path, padded);
  EXPECT_THROW(read_checkpoint(path), CheckpointError);
  std::remove(path.c_str());
}

TEST(CheckpointJournal, FingerprintTracksInputsAndShape) {
  const auto a = small_dataset(120, 2, 16, 1);
  const auto b = small_dataset(120, 2, 16, 2);  // different samples
  MatrixProfileConfig config;
  config.window = 16;
  const auto fp_a = checkpoint_fingerprint(a.reference, a.query, config);
  EXPECT_EQ(fp_a, checkpoint_fingerprint(a.reference, a.query, config));
  EXPECT_NE(fp_a, checkpoint_fingerprint(b.reference, b.query, config));
  MatrixProfileConfig other = config;
  other.tiles = 4;
  EXPECT_NE(fp_a, checkpoint_fingerprint(a.reference, a.query, other));
  other = config;
  other.mode = PrecisionMode::FP16;
  EXPECT_NE(fp_a, checkpoint_fingerprint(a.reference, a.query, other));
  // Non-output-affecting knobs do not change the identity.
  other = config;
  other.devices = 3;
  other.row_path = RowPath::kCooperative;
  other.resilience.watchdog = true;
  EXPECT_EQ(fp_a, checkpoint_fingerprint(a.reference, a.query, other));
}

// ---------------------------------------------------------------------
// Kill + resume produces the uninterrupted run's bits.
// ---------------------------------------------------------------------

TEST(CheckpointResume, KilledRunResumesBitIdenticallyAllModesBothPaths) {
  const auto data = small_dataset();
  for (const RowPath path : {RowPath::kFused, RowPath::kCooperative}) {
    for (const PrecisionMode mode : kAllPrecisionModes) {
      MatrixProfileConfig config;
      config.window = 16;
      config.mode = mode;
      config.tiles = 4;
      config.devices = 2;
      config.row_path = path;

      const auto clean =
          compute_matrix_profile(data.reference, data.query, config);

      const std::string ckpt =
          temp_path("resume_" + to_string(mode) + "_" + to_string(path));
      config.checkpoint.write_path = ckpt;
      config.checkpoint.interval_tiles = 1;
      config.checkpoint.kill_after_tiles = 2;
      clear_shutdown();
      try {
        const auto r =
            compute_matrix_profile(data.reference, data.query, config);
        // The kill raced run completion: every tile committed before the
        // monitor saw the request.  The journal is complete either way.
        EXPECT_EQ(r.profile, clean.profile);
      } catch (const InterruptedError& e) {
        EXPECT_NE(std::string(e.what()).find("resume"), std::string::npos);
      }
      clear_shutdown();

      config.checkpoint.kill_after_tiles = 0;
      config.checkpoint.resume_path = ckpt;
      const auto resumed =
          compute_matrix_profile(data.reference, data.query, config);

      EXPECT_EQ(resumed.profile, clean.profile)
          << to_string(mode) << " " << to_string(path);
      EXPECT_EQ(resumed.index, clean.index)
          << to_string(mode) << " " << to_string(path);
      EXPECT_GT(resumed.health.resumed_tiles, 0);
      EXPECT_GT(resumed.health.checkpoint_writes, 0);
      bool saw_resume_event = false;
      for (const auto& event : resumed.health.events) {
        if (event.kind == RunEvent::Kind::kResumed) saw_resume_event = true;
      }
      EXPECT_TRUE(saw_resume_event);
      std::remove(ckpt.c_str());
    }
  }
}

TEST(CheckpointResume, CompletedJournalSkipsAllWork) {
  const auto data = small_dataset(120, 2, 16, 4);
  MatrixProfileConfig config;
  config.window = 16;
  config.tiles = 4;
  const std::string ckpt = temp_path("complete");
  config.checkpoint.write_path = ckpt;

  const auto first = compute_matrix_profile(data.reference, data.query,
                                            config);
  EXPECT_GT(first.health.checkpoint_writes, 0);

  config.checkpoint.resume_path = ckpt;
  const auto second = compute_matrix_profile(data.reference, data.query,
                                             config);
  EXPECT_EQ(second.health.resumed_tiles, 4);
  EXPECT_EQ(second.profile, first.profile);
  EXPECT_EQ(second.index, first.index);
  std::remove(ckpt.c_str());
}

TEST(CheckpointResume, ForeignOrDamagedJournalStartsFresh) {
  const auto data = small_dataset(120, 2, 16, 5);
  const auto other = small_dataset(120, 2, 16, 6);
  MatrixProfileConfig config;
  config.window = 16;
  config.tiles = 2;

  const auto clean = compute_matrix_profile(data.reference, data.query,
                                            config);

  // Journal of a different dataset: fingerprint mismatch.
  const std::string ckpt = temp_path("foreign");
  MatrixProfileConfig other_config = config;
  other_config.checkpoint.write_path = ckpt;
  compute_matrix_profile(other.reference, other.query, other_config);

  config.checkpoint.resume_path = ckpt;
  const auto resumed = compute_matrix_profile(data.reference, data.query,
                                              config);
  EXPECT_EQ(resumed.health.resumed_tiles, 0);
  EXPECT_EQ(resumed.profile, clean.profile);
  bool saw_rejection = false;
  for (const auto& event : resumed.health.events) {
    if (event.kind == RunEvent::Kind::kResumed &&
        event.detail.find("rejected") != std::string::npos) {
      saw_rejection = true;
      EXPECT_NE(event.detail.find("different inputs"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_rejection);

  // Corrupt journal: same fresh-run path, different rejection reason.
  std::string bytes = read_file(ckpt);
  bytes[bytes.size() / 2] = char(bytes[bytes.size() / 2] ^ 0x01);
  write_file(ckpt, bytes);
  const auto after_corrupt =
      compute_matrix_profile(data.reference, data.query, config);
  EXPECT_EQ(after_corrupt.health.resumed_tiles, 0);
  EXPECT_EQ(after_corrupt.profile, clean.profile);

  // Missing journal: also a fresh run, not an abort.
  std::remove(ckpt.c_str());
  const auto after_missing =
      compute_matrix_profile(data.reference, data.query, config);
  EXPECT_EQ(after_missing.health.resumed_tiles, 0);
  EXPECT_EQ(after_missing.profile, clean.profile);
}

TEST(CheckpointResume, IntervalControlsJournalCadence) {
  const auto data = small_dataset(160, 2, 16, 7);
  MatrixProfileConfig config;
  config.window = 16;
  config.tiles = 6;
  const std::string ckpt = temp_path("cadence");
  config.checkpoint.write_path = ckpt;
  config.checkpoint.interval_tiles = 2;

  const auto result = compute_matrix_profile(data.reference, data.query,
                                             config);
  // 6 commits at K=2 → 3 interval writes, plus the final flush.
  EXPECT_EQ(result.health.checkpoint_writes, 4);
  const CheckpointData journal = read_checkpoint(ckpt);
  EXPECT_EQ(journal.tile_count, 6u);
  EXPECT_EQ(journal.tiles.size(), 6u);
  std::remove(ckpt.c_str());
}

}  // namespace
}  // namespace mpsim::mp
