#!/usr/bin/env bash
# End-to-end test of the command-line tools: generate CSVs with the
# library (via the quickstart-equivalent python-free path: mpsim_cli needs
# input files, so synthesise them here), run a profile in two precision
# modes, and diff them.  Driven by CTest; $1 = build dir with the tools.
set -euo pipefail
BUILD=$1
WORK=$(mktemp -d)

# On any failure, dump what we have so CTest logs show *why* instead of a
# bare exit code; on success just clean up.
cleanup() {
  status=$?
  if [ "$status" -ne 0 ]; then
    echo "cli_pipeline_test FAILED (exit $status) at line ${FAILED_LINE:-?}" >&2
    echo "--- build dir: $BUILD" >&2
    ls -l "$BUILD/tools" >&2 || true
    for log in "$WORK"/*.log; do
      [ -f "$log" ] || continue
      echo "--- $log:" >&2
      cat "$log" >&2
    done
  fi
  rm -rf "$WORK"
  exit "$status"
}
trap 'FAILED_LINE=$LINENO' ERR
trap cleanup EXIT

# Synthesise a small two-sensor CSV pair with an embedded repeat.
awk 'BEGIN {
  srand(7); print "a,b";
  for (t = 0; t < 500; ++t) {
    a = sin(t / 9.0) + (rand() - 0.5) * 0.4;
    b = cos(t / 13.0) + (rand() - 0.5) * 0.4;
    printf "%.6f,%.6f\n", a, b;
  }
}' > "$WORK/ref.csv"
awk 'BEGIN {
  srand(11); print "a,b";
  for (t = 0; t < 400; ++t) {
    a = sin((t + 40) / 9.0) + (rand() - 0.5) * 0.4;
    b = cos((t + 40) / 13.0) + (rand() - 0.5) * 0.4;
    printf "%.6f,%.6f\n", a, b;
  }
}' > "$WORK/qry.csv"

# Inject a NaN to exercise --repair.
sed -i '100s/.*/nan,nan/' "$WORK/qry.csv"

"$BUILD/tools/mpsim_cli" --reference="$WORK/ref.csv" \
    --query="$WORK/qry.csv" --window=32 --repair \
    --output="$WORK/fp64.csv" --motifs=2 > "$WORK/fp64.log"
grep -q "repaired 2 non-finite samples" "$WORK/fp64.log"
grep -q "top motifs" "$WORK/fp64.log"

"$BUILD/tools/mpsim_cli" --reference="$WORK/ref.csv" \
    --query="$WORK/qry.csv" --window=32 --repair --mode=Mixed \
    --tiles=4 --output="$WORK/mixed.csv" --motifs=0 > /dev/null

"$BUILD/tools/mpsim_diff" --baseline="$WORK/fp64.csv" \
    --test="$WORK/mixed.csv" --top=3 > "$WORK/diff.log"
grep -q "relative accuracy A" "$WORK/diff.log"
grep -q "1-dim" "$WORK/diff.log"

# Self-join with chains and auto-tiles must run clean too.
"$BUILD/tools/mpsim_cli" --reference="$WORK/ref.csv" --self-join \
    --window=32 --chains --auto-tiles --motifs=1 > "$WORK/self.log"
grep -q "auto-tiles:" "$WORK/self.log"

# Fault injection: transient kernel faults must be retried transparently
# and reported in the health summary, with the profile unchanged against
# a fault-free run of the *same* tiling (tiling itself moves FP64 ulps).
"$BUILD/tools/mpsim_cli" --reference="$WORK/ref.csv" \
    --query="$WORK/qry.csv" --window=32 --repair --tiles=4 \
    --output="$WORK/tiled.csv" --motifs=0 > /dev/null
"$BUILD/tools/mpsim_cli" --reference="$WORK/ref.csv" \
    --query="$WORK/qry.csv" --window=32 --repair --tiles=4 \
    --faults="seed=7,kernel@0:at=2,kernel@0:at=9" \
    --output="$WORK/faulty.csv" --motifs=0 > "$WORK/faults.log"
grep -q "run health: DEGRADED" "$WORK/faults.log"
grep -q "retry" "$WORK/faults.log"
cmp "$WORK/tiled.csv" "$WORK/faulty.csv"

echo "cli pipeline OK"
