// Tests for the resource-utilisation reporting (§V-C counterpart).
#include <gtest/gtest.h>

#include "gpusim/utilization.hpp"

namespace mpsim::gpusim {
namespace {

TEST(Utilization, StreamingKernelIsDramBound) {
  const auto spec = a100();
  KernelLedger ledger;
  KernelCost cost;
  cost.bytes_read = 8LL << 30;
  cost.bytes_written = 4LL << 30;
  ledger.record("stream", cost, modeled_seconds(spec, cost));

  const auto report = utilization(ledger, spec);
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report[0].kernel, "stream");
  // Pure streaming sustains ~bw_efficiency of peak DRAM bandwidth.
  EXPECT_NEAR(report[0].dram_fraction, spec.bw_efficiency, 0.02);
  EXPECT_LT(report[0].compute_fraction, 0.01);
  EXPECT_LT(report[0].sync_share, 0.01);
}

TEST(Utilization, SyncBoundKernelShowsSyncShare) {
  const auto spec = a100();
  KernelLedger ledger;
  KernelCost cost;
  cost.bytes_read = 1 << 20;
  cost.barrier_rounds = 1'000'000;
  ledger.record("coop", cost, modeled_seconds(spec, cost));

  const auto report = utilization(ledger, spec);
  ASSERT_EQ(report.size(), 1u);
  EXPECT_GT(report[0].sync_share, 0.9);
  EXPECT_LT(report[0].dram_fraction, 0.05);
}

TEST(Utilization, ComputeBoundKernel) {
  const auto spec = v100();
  KernelLedger ledger;
  KernelCost cost;
  cost.flops = 1LL << 40;
  cost.flop_width_bytes = 4;
  ledger.record("gemm-ish", cost, modeled_seconds(spec, cost));

  const auto report = utilization(ledger, spec);
  ASSERT_EQ(report.size(), 1u);
  EXPECT_NEAR(report[0].compute_fraction, spec.compute_efficiency, 0.02);
}

TEST(Utilization, ReportRendersAllKernels) {
  const auto spec = a100();
  KernelLedger ledger;
  KernelCost cost;
  cost.bytes_read = 1 << 28;
  ledger.record("alpha", cost, modeled_seconds(spec, cost));
  ledger.record("beta", cost, modeled_seconds(spec, cost));
  const auto text = utilization_report(ledger, spec);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("beta"), std::string::npos);
  EXPECT_NE(text.find("A100"), std::string::npos);
  EXPECT_NE(text.find("DRAM util"), std::string::npos);
}

TEST(Utilization, EmptyLedgerYieldsEmptyReport) {
  KernelLedger ledger;
  EXPECT_TRUE(utilization(ledger, a100()).empty());
}

}  // namespace
}  // namespace mpsim::gpusim
