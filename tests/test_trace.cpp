// Tests for the execution-timeline tracing and the modelled schedule.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "gpusim/trace.hpp"
#include "mp/model.hpp"

namespace mpsim {
namespace {

TEST(Timeline, TracksLaneEndsAndMakespan) {
  gpusim::Timeline timeline;
  timeline.add({"a", 0, "compute", 0.0, 1.0});
  timeline.add({"b", 0, "compute", 1.0, 0.5});
  timeline.add({"c", 1, "copy", 0.2, 2.0});
  EXPECT_DOUBLE_EQ(timeline.lane_end_seconds(0, "compute"), 1.5);
  EXPECT_DOUBLE_EQ(timeline.lane_end_seconds(0, "copy"), 0.0);
  EXPECT_DOUBLE_EQ(timeline.lane_end_seconds(1, "copy"), 2.2);
  EXPECT_DOUBLE_EQ(timeline.makespan_seconds(), 2.2);
}

TEST(Timeline, ChromeJsonIsWellFormed) {
  gpusim::Timeline timeline;
  timeline.add({"kernel", 2, "compute", 0.001, 0.002});
  const auto json = timeline.to_chrome_json();
  EXPECT_NE(json.find("\"name\": \"kernel\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"ts\": 1000"), std::string::npos);   // microseconds
  EXPECT_NE(json.find("\"dur\": 2000"), std::string::npos);
  EXPECT_EQ(json.front(), '[');
}

TEST(Timeline, EscapesQuotesBackslashesAndControlCharsInNames) {
  // Regression: event names/lanes used to be interpolated verbatim, so a
  // quote or backslash produced an invalid Chrome-trace document.
  gpusim::Timeline timeline;
  timeline.add({"tile \"3\" dist\\calc\nline", 0, "lane\"q", 0.0, 1.0});
  const auto json = timeline.to_chrome_json();
  EXPECT_NE(json.find("tile \\\"3\\\" dist\\\\calc\\nline"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"tid\": \"lane\\\"q\""), std::string::npos) << json;
  // No raw quote survives inside the name value.
  EXPECT_EQ(json.find("\"name\": \"tile \"3\""), std::string::npos) << json;
}

TEST(Timeline, QuoteBearingNamesRoundTripThroughPythonJson) {
  if (std::system("python3 -c 'pass' >/dev/null 2>&1") != 0) {
    GTEST_SKIP() << "python3 not available";
  }
  gpusim::Timeline timeline;
  timeline.add({"evil \"name\" with \\ and \t tab", 1, "copy\\lane", 0.5,
                0.25});
  timeline.add({std::string("nul\x01byte"), 0, "compute", 0.0, 1.0});
  const auto path =
      (std::filesystem::temp_directory_path() / "mpsim_trace_escape.json")
          .string();
  timeline.write_chrome_json(path);
  const std::string check =
      "python3 -c 'import json,sys; events = json.load(open(sys.argv[1])); "
      "assert len(events) == 2, events; "
      "assert events[0][\"name\"].startswith(\"evil \\\"name\\\"\"), events' " +
      path;
  EXPECT_EQ(std::system(check.c_str()), 0);
  std::remove(path.c_str());
}

TEST(Timeline, WritesToFile) {
  gpusim::Timeline timeline;
  timeline.add({"x", 0, "compute", 0.0, 1.0});
  const auto path =
      (std::filesystem::temp_directory_path() / "mpsim_trace.json").string();
  timeline.write_chrome_json(path);
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("\"x\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(ModelTimeline, LaneEventsNeverOverlap) {
  mp::ModelConfig config;
  config.spec = gpusim::a100();
  config.n_r = config.n_q = 1 << 14;
  config.dims = 16;
  config.window = 64;
  config.tiles = 12;
  config.devices = 3;
  const auto timeline = mp::model_timeline(config);
  ASSERT_FALSE(timeline.empty());

  for (std::size_t a = 0; a < timeline.events().size(); ++a) {
    for (std::size_t b = a + 1; b < timeline.events().size(); ++b) {
      const auto& x = timeline.events()[a];
      const auto& y = timeline.events()[b];
      if (x.device != y.device || x.lane != y.lane) continue;
      const bool disjoint = x.end_seconds() <= y.start_seconds + 1e-12 ||
                            y.end_seconds() <= x.start_seconds + 1e-12;
      EXPECT_TRUE(disjoint) << x.name << " overlaps " << y.name;
    }
  }
}

TEST(ModelTimeline, MakespanConsistentWithModelReport) {
  mp::ModelConfig config;
  config.spec = gpusim::v100();
  config.n_r = config.n_q = 1 << 14;
  config.dims = 32;
  config.window = 64;
  config.tiles = 16;
  config.devices = 4;
  const auto timeline = mp::model_timeline(config);
  const auto report = mp::model_matrix_profile(config);
  // The timeline serialises per-tile dependencies that the coarse model
  // overlaps away, so it can only be slower — and not wildly so.
  EXPECT_GE(timeline.makespan_seconds(),
            report.device_seconds * 0.99);
  EXPECT_LE(timeline.makespan_seconds(),
            (report.device_seconds + report.merge_seconds) * 1.5 + 0.01);
}

TEST(ModelTimeline, UsesAllDevices) {
  mp::ModelConfig config;
  config.spec = gpusim::a100();
  config.n_r = config.n_q = 1 << 13;
  config.dims = 8;
  config.window = 32;
  config.tiles = 8;
  config.devices = 4;
  const auto timeline = mp::model_timeline(config);
  for (int dev = 0; dev < 4; ++dev) {
    EXPECT_GT(timeline.lane_end_seconds(dev, "compute"), 0.0) << dev;
  }
}

}  // namespace
}  // namespace mpsim
