// Tests for the serve daemon: request parsing, response framing, the
// admission-controlled fair job queue, the cross-query caches, and an
// in-process end-to-end run over a unix-domain socket.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/shutdown.hpp"
#include "mp/checkpoint.hpp"
#include "mp/matrix_profile.hpp"
#include "serve/cache.hpp"
#include "serve/job_queue.hpp"
#include "serve/protocol.hpp"
#include "serve/render.hpp"
#include "serve/server.hpp"
#include "tsdata/io.hpp"
#include "tsdata/synthetic.hpp"

namespace mpsim::serve {
namespace {

std::string temp_file(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// ---------------------------------------------------------------------------
// Protocol

TEST(ServeProtocol, QueryDefaultsMirrorTheCli) {
  const auto req =
      parse_request("query --reference=/tmp/ref.csv --self-join --id=q7");
  EXPECT_EQ(req.verb, Request::Verb::kQuery);
  EXPECT_EQ(req.id, "q7");
  EXPECT_EQ(req.reference_path, "/tmp/ref.csv");
  EXPECT_TRUE(req.self_join);
  EXPECT_TRUE(req.query_path.empty());
  EXPECT_EQ(req.config.window, 64u);
  EXPECT_EQ(req.config.mode, PrecisionMode::FP64);
  EXPECT_EQ(req.config.tiles, 1);
  EXPECT_EQ(req.config.devices, 1);
  EXPECT_EQ(req.config.machine, "A100");
  // Self-joins default to the CLI's window/2 exclusion radius.
  EXPECT_EQ(req.config.exclusion, 32);
}

TEST(ServeProtocol, QueryParsesEveryFlag) {
  const auto req = parse_request(
      "query --reference=a.csv --query=b.csv --window=32 --mode=FP16 "
      "--tiles=4 --devices=2 --machine=V100 --exclusion=3 "
      "--row-path=cooperative");
  EXPECT_FALSE(req.self_join);
  EXPECT_EQ(req.query_path, "b.csv");
  EXPECT_EQ(req.config.window, 32u);
  EXPECT_EQ(req.config.mode, PrecisionMode::FP16);
  EXPECT_EQ(req.config.tiles, 4);
  EXPECT_EQ(req.config.devices, 2);
  EXPECT_EQ(req.config.machine, "V100");
  EXPECT_EQ(req.config.exclusion, 3);
  EXPECT_EQ(req.config.row_path, mp::RowPath::kCooperative);
}

TEST(ServeProtocol, OtherVerbsParse) {
  EXPECT_EQ(parse_request("ping").verb, Request::Verb::kPing);
  EXPECT_EQ(parse_request("stats --id=s").verb, Request::Verb::kStats);
  EXPECT_EQ(parse_request("shutdown").verb, Request::Verb::kShutdown);
}

TEST(ServeProtocol, RejectsMalformedRequests) {
  EXPECT_THROW(parse_request(""), Error);
  EXPECT_THROW(parse_request("   "), Error);
  EXPECT_THROW(parse_request("frobnicate"), Error);
  // Query without a reference series.
  EXPECT_THROW(parse_request("query --self-join"), Error);
  // Unknown flag.
  EXPECT_THROW(parse_request("query --reference=a.csv --bogus=1"), Error);
  // Neither --query nor --self-join.
  EXPECT_THROW(parse_request("query --reference=a.csv"), Error);
}

TEST(ServeProtocol, MalformedNumericFlagNamesTheFlag) {
  // The strict CLI numeric validation must surface through the daemon
  // parser: pre-fix this silently ran with window=64.
  try {
    parse_request("query --reference=a.csv --self-join --window=64garbage");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("--window=64garbage"),
              std::string::npos)
        << e.what();
  }
}

TEST(ServeProtocol, HeadersAreFramedAndEscaped) {
  const auto ok = ok_header("q1", 42, ", \"cached\": true");
  EXPECT_EQ(ok.back(), '\n');
  EXPECT_NE(ok.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(ok.find("\"id\": \"q1\""), std::string::npos);
  EXPECT_NE(ok.find("\"bytes\": 42"), std::string::npos);
  EXPECT_NE(ok.find("\"cached\": true"), std::string::npos);

  const auto err = error_header("q\"2", "bad \"flag\"\nwith \\ stuff");
  EXPECT_EQ(err.back(), '\n');
  EXPECT_NE(err.find("\"status\": \"error\""), std::string::npos);
  EXPECT_NE(err.find("\"id\": \"q\\\"2\""), std::string::npos);
  EXPECT_NE(err.find("bad \\\"flag\\\"\\nwith \\\\ stuff"),
            std::string::npos)
      << err;
  // The header must stay a single line despite the embedded newline.
  EXPECT_EQ(err.find('\n'), err.size() - 1);
}

// ---------------------------------------------------------------------------
// Job queue

std::unique_ptr<Job> make_job(const std::string& client,
                              const std::string& id) {
  auto job = std::make_unique<Job>();
  job->request = parse_request("ping --id=" + id);
  job->client = client;
  return job;
}

TEST(ServeJobQueue, AdmissionCapRejectsBeyondDepth) {
  JobQueue queue(2);
  EXPECT_TRUE(queue.submit(make_job("a", "1")));
  EXPECT_TRUE(queue.submit(make_job("a", "2")));
  EXPECT_FALSE(queue.submit(make_job("a", "3")));
  EXPECT_EQ(queue.depth(), 2u);
  // Draining a job frees a slot again.
  EXPECT_NE(queue.next(), nullptr);
  EXPECT_TRUE(queue.submit(make_job("a", "3")));
}

TEST(ServeJobQueue, RoundRobinAcrossClients) {
  JobQueue queue(16);
  // Client a bursts three jobs before b and c submit one each; fairness
  // means a cannot hold the head of the line for all three.
  ASSERT_TRUE(queue.submit(make_job("a", "a1")));
  ASSERT_TRUE(queue.submit(make_job("a", "a2")));
  ASSERT_TRUE(queue.submit(make_job("a", "a3")));
  ASSERT_TRUE(queue.submit(make_job("b", "b1")));
  ASSERT_TRUE(queue.submit(make_job("c", "c1")));
  std::vector<std::string> order;
  for (int i = 0; i < 5; ++i) {
    auto job = queue.next();
    ASSERT_NE(job, nullptr);
    order.push_back(job->request.id);
  }
  EXPECT_EQ(order,
            (std::vector<std::string>{"a1", "b1", "c1", "a2", "a3"}));
}

TEST(ServeJobQueue, DrainStopsAdmissionButFinishesAdmittedWork) {
  JobQueue queue(16);
  ASSERT_TRUE(queue.submit(make_job("a", "1")));
  ASSERT_TRUE(queue.submit(make_job("a", "2")));
  queue.drain();
  EXPECT_TRUE(queue.draining());
  EXPECT_FALSE(queue.submit(make_job("a", "3")));
  // Admitted jobs are still handed out, then nullptr ends the executors.
  EXPECT_NE(queue.next(), nullptr);
  EXPECT_NE(queue.next(), nullptr);
  EXPECT_EQ(queue.next(), nullptr);
}

TEST(ServeJobQueue, DrainWakesBlockedExecutor) {
  JobQueue queue(4);
  std::thread executor([&] {
    // Blocks until drain(); must return nullptr, not hang.
    EXPECT_EQ(queue.next(), nullptr);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.drain();
  executor.join();
}

TEST(ServeJobQueue, ConcurrentDrainLosesNoAdmittedJobAdmitsNoneAfter) {
  // The SIGTERM drain race: clients submitting full-tilt while another
  // thread drains.  Two invariants, whatever the interleaving: every
  // job submit() admitted is handed to an executor exactly once, and no
  // submit() succeeds after drain() returned.  Run many rounds — the
  // race window is a handful of instructions (this is also the soak
  // body scripts/run_sanitizers.sh leans on under TSan).
  constexpr int kRounds = 40;
  constexpr int kProducers = 4;
  constexpr int kJobsPerProducer = 32;
  for (int round = 0; round < kRounds; ++round) {
    JobQueue queue(std::size_t(kProducers * kJobsPerProducer));
    std::atomic<bool> go{false};
    std::atomic<int> admitted{0};
    std::atomic<int> executed{0};

    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        while (!go.load()) std::this_thread::yield();
        const std::string client = "c" + std::to_string(p);
        for (int j = 0; j < kJobsPerProducer; ++j) {
          if (queue.submit(make_job(client, std::to_string(j)))) {
            admitted.fetch_add(1);
          }
        }
      });
    }
    std::vector<std::thread> executors;
    for (int e = 0; e < 2; ++e) {
      executors.emplace_back([&] {
        while (queue.next() != nullptr) executed.fetch_add(1);
      });
    }

    go.store(true);
    if (round % 2 == 1) std::this_thread::yield();
    queue.drain();  // races both the producers and the executors
    for (auto& t : producers) t.join();

    // Post-drain admission is refused even while executors still run.
    EXPECT_FALSE(queue.submit(make_job("late", "late")));

    for (auto& t : executors) t.join();
    EXPECT_EQ(executed.load(), admitted.load()) << "round " << round;
    EXPECT_EQ(queue.depth(), 0u);
    EXPECT_EQ(queue.next(), nullptr);  // drained queues stay drained
  }
}

// ---------------------------------------------------------------------------
// Caches

TEST(ServeCacheTest, SeriesCacheHitsAndReloadsOnFileChange) {
  auto& reg = MetricsRegistry::global();
  reg.reset();
  reg.set_enabled(true);
  const auto path = temp_file("mpsim_serve_series.csv");
  write_csv(path, make_noise_series(128, 2, 0.5, 1));

  ServeCache cache;
  const auto first = cache.series(path);
  const auto second = cache.series(path);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(reg.counter("serve.series_cache.hits").value(), 1u);
  EXPECT_EQ(reg.counter("serve.series_cache.misses").value(), 1u);

  // Rewriting the file (different length => different size) invalidates.
  write_csv(path, make_noise_series(200, 2, 0.5, 2));
  const auto third = cache.series(path);
  EXPECT_NE(third.get(), first.get());
  EXPECT_EQ(third->length(), 200u);
  EXPECT_EQ(reg.counter("serve.series_cache.misses").value(), 2u);

  std::filesystem::remove(path);
  EXPECT_THROW(cache.series(path), Error);
  reg.reset();
  reg.set_enabled(false);
}

TEST(ServeCacheTest, SelfJoinInputAliasesReferenceAndIsReused) {
  const auto path = temp_file("mpsim_serve_input.csv");
  write_csv(path, make_noise_series(128, 1, 0.5, 3));

  ServeCache cache;
  const auto input = cache.input(path, "");
  EXPECT_EQ(input->reference.get(), input->query.get());
  const auto again = cache.input(path, "");
  EXPECT_EQ(input.get(), again.get());

  // A file change rebuilds the working set (fresh staging cache bound to
  // the reloaded series).
  write_csv(path, make_noise_series(160, 1, 0.5, 4));
  const auto rebuilt = cache.input(path, "");
  EXPECT_NE(rebuilt.get(), input.get());
  EXPECT_EQ(rebuilt->reference->length(), 160u);
  std::filesystem::remove(path);
}

TEST(ServeCacheTest, ProfileCacheStoresFindsAndEvictsFifo) {
  CacheLimits limits;
  limits.max_profiles = 2;
  ServeCache cache(limits);

  auto result = std::make_shared<mp::MatrixProfileResult>();
  result->segments = 7;
  cache.store_profile(1, result);
  cache.store_profile(2, std::make_shared<mp::MatrixProfileResult>());
  ASSERT_NE(cache.find_profile(1), nullptr);
  EXPECT_EQ(cache.find_profile(1)->segments, 7u);

  // A third insert evicts the oldest fingerprint (FIFO).
  cache.store_profile(3, std::make_shared<mp::MatrixProfileResult>());
  EXPECT_EQ(cache.find_profile(1), nullptr);
  EXPECT_NE(cache.find_profile(2), nullptr);
  EXPECT_NE(cache.find_profile(3), nullptr);
}

// ---------------------------------------------------------------------------
// End-to-end over a unix-domain socket

class RawClient {
 public:
  explicit RawClient(const std::string& socket_path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    MPSIM_CHECK(fd_ >= 0, "socket()");
    sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    MPSIM_CHECK(socket_path.size() < sizeof(addr.sun_path),
                "socket path too long");
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    MPSIM_CHECK(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                          sizeof(addr)) == 0,
                "connect('" << socket_path << "')");
  }
  ~RawClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  void send_line(const std::string& line) {
    const std::string framed = line + "\n";
    std::size_t off = 0;
    while (off < framed.size()) {
      const auto n = ::write(fd_, framed.data() + off, framed.size() - off);
      MPSIM_CHECK(n > 0, "write to daemon failed");
      off += std::size_t(n);
    }
  }

  std::string read_header() {
    std::string line;
    char c = 0;
    while (true) {
      const auto n = ::read(fd_, &c, 1);
      MPSIM_CHECK(n == 1, "daemon closed mid-header");
      if (c == '\n') return line;
      line.push_back(c);
    }
  }

  std::string read_payload(std::size_t bytes) {
    std::string payload(bytes, '\0');
    std::size_t off = 0;
    while (off < bytes) {
      const auto n = ::read(fd_, payload.data() + off, bytes - off);
      MPSIM_CHECK(n > 0, "daemon closed mid-payload");
      off += std::size_t(n);
    }
    return payload;
  }

 private:
  int fd_ = -1;
};

std::size_t payload_bytes(const std::string& header) {
  const auto pos = header.find("\"bytes\": ");
  MPSIM_CHECK(pos != std::string::npos, "no bytes field in " << header);
  return std::size_t(std::strtoull(header.c_str() + pos + 9, nullptr, 10));
}

TEST(ServeServer, EndToEndQueriesCachingAndGracefulShutdown) {
  clear_shutdown();
  auto& reg = MetricsRegistry::global();
  reg.reset();
  reg.set_enabled(true);

  const auto ref_path = temp_file("mpsim_serve_e2e_ref.csv");
  write_csv(ref_path, make_noise_series(256, 2, 0.5, 11));

  ServerOptions options;
  options.unix_socket = temp_file("mpsim_serve_e2e.sock");
  options.executors = 2;
  Server server(options);
  server.start();

  const std::string query_line =
      "query --reference=" + ref_path +
      " --self-join --window=16 --mode=FP32 --id=q1";

  {
    RawClient client(options.unix_socket);
    client.send_line("ping --id=p1");
    const auto ping = client.read_header();
    EXPECT_NE(ping.find("\"status\": \"ok\""), std::string::npos) << ping;
    EXPECT_NE(ping.find("\"id\": \"p1\""), std::string::npos) << ping;
    EXPECT_EQ(payload_bytes(ping), 0u);

    client.send_line(query_line);
    const auto header1 = client.read_header();
    ASSERT_NE(header1.find("\"status\": \"ok\""), std::string::npos)
        << header1;
    EXPECT_NE(header1.find("\"cached\": false"), std::string::npos)
        << header1;
    const auto body1 = client.read_payload(payload_bytes(header1));

    // The response body is byte-identical to an in-process run through
    // the shared formatter — the serving contract.
    const auto request = parse_request(query_line);
    const auto reference = read_csv(ref_path);
    const auto expected = serve::profile_to_csv(
        mp::compute_matrix_profile(reference, reference, request.config));
    EXPECT_EQ(body1, expected);

    // Same query again: served from the profile cache, byte-identical.
    client.send_line(query_line);
    const auto header2 = client.read_header();
    EXPECT_NE(header2.find("\"cached\": true"), std::string::npos)
        << header2;
    EXPECT_EQ(client.read_payload(payload_bytes(header2)), body1);
    EXPECT_GE(reg.counter("serve.profile_cache.hits").value(), 1u);

    // A malformed query is an error response, not a dead connection.
    client.send_line("query --reference=" + ref_path +
                     " --self-join --window=garbage --id=bad");
    const auto err = client.read_header();
    EXPECT_NE(err.find("\"status\": \"error\""), std::string::npos) << err;
    EXPECT_NE(err.find("--window=garbage"), std::string::npos) << err;

    // Stats returns the metrics document with the serve counters in it.
    client.send_line("stats --id=s1");
    const auto stats_header = client.read_header();
    const auto stats = client.read_payload(payload_bytes(stats_header));
    EXPECT_NE(stats.find("mpsim-metrics-v2"), std::string::npos);
    EXPECT_NE(stats.find("serve.requests"), std::string::npos);

    // Graceful drain through the protocol (as SIGTERM would).
    client.send_line("shutdown --id=bye");
    const auto bye = client.read_header();
    EXPECT_NE(bye.find("\"status\": \"ok\""), std::string::npos) << bye;
  }

  server.wait();
  EXPECT_TRUE(shutdown_requested());
  EXPECT_GE(server.jobs_completed(), 2u);
  // The daemon unlinks its socket on the way out.
  EXPECT_FALSE(std::filesystem::exists(options.unix_socket));

  clear_shutdown();
  reg.reset();
  reg.set_enabled(false);
  std::filesystem::remove(ref_path);
}

TEST(ServeServer, MultiNodeQueriesAreByteIdenticalToSingleNode) {
  // --nodes=2 routes query execution through the elastic coordinator;
  // the serving contract (bytes identical to the one-shot run) holds.
  clear_shutdown();
  const auto ref_path = temp_file("mpsim_serve_nodes_ref.csv");
  write_csv(ref_path, make_noise_series(256, 2, 0.5, 17));

  ServerOptions options;
  options.unix_socket = temp_file("mpsim_serve_nodes.sock");
  options.executors = 1;
  options.nodes = 2;
  Server server(options);
  server.start();

  {
    RawClient client(options.unix_socket);
    client.send_line("query --reference=" + ref_path +
                     " --self-join --window=16 --mode=Mixed --tiles=4 "
                     "--devices=2 --id=q1");
    const auto header = client.read_header();
    ASSERT_NE(header.find("\"status\": \"ok\""), std::string::npos)
        << header;
    const auto body = client.read_payload(payload_bytes(header));

    const auto request = parse_request(
        "query --reference=" + ref_path +
        " --self-join --window=16 --mode=Mixed --tiles=4 --devices=2");
    const auto reference = read_csv(ref_path);
    const auto expected = serve::profile_to_csv(
        mp::compute_matrix_profile(reference, reference, request.config));
    EXPECT_EQ(body, expected);
    client.send_line("shutdown");
  }
  server.wait();
  clear_shutdown();
  std::filesystem::remove(ref_path);
}

TEST(ServeServer, RejectsQueriesOnceQueueIsFull) {
  clear_shutdown();
  ServerOptions options;
  options.unix_socket = temp_file("mpsim_serve_full.sock");
  options.executors = 1;
  options.max_queue = 0;  // everything beyond the running job is rejected
  Server server(options);
  server.start();

  {
    RawClient client(options.unix_socket);
    client.send_line("query --reference=/nonexistent.csv --self-join "
                     "--id=q1");
    const auto header = client.read_header();
    // Depending on dispatch timing this is either an admission rejection
    // or a load error — both must be error responses on a live socket.
    EXPECT_NE(header.find("\"status\": \"error\""), std::string::npos)
        << header;
    client.send_line("ping --id=p");
    EXPECT_NE(client.read_header().find("\"status\": \"ok\""),
              std::string::npos);
    client.send_line("shutdown");
  }
  server.wait();
  clear_shutdown();
}

}  // namespace
}  // namespace mpsim::serve
