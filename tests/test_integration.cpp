// End-to-end integration tests mirroring the paper's three case studies at
// reduced scale: HPC telemetry classification (§VI-A), genome similarity
// search (§VI-B) and turbine startup detection (§VI-C).
#include <gtest/gtest.h>

#include "metrics/accuracy.hpp"
#include "metrics/classifier.hpp"
#include "mp/cpu_reference.hpp"
#include "mp/matrix_profile.hpp"
#include "mp/pan_profile.hpp"
#include "tsdata/genome.hpp"
#include "tsdata/hpc_telemetry.hpp"
#include "tsdata/turbine.hpp"

namespace mpsim {
namespace {

TEST(HpcClassification, Fp64ClassifierIsAccurate) {
  HpcTelemetrySpec spec;
  spec.length = 6000;
  spec.seed = 1;
  const auto data = make_hpc_telemetry(spec);
  const std::size_t half = spec.length / 2;
  const std::size_t window = 32;
  const TimeSeries reference = data.series.slice(0, half);
  const TimeSeries query = data.series.slice(half, spec.length - half);
  const std::vector<int> ref_labels(data.labels.begin(),
                                    data.labels.begin() + std::ptrdiff_t(half));
  const std::vector<int> qry_labels(data.labels.begin() + std::ptrdiff_t(half),
                                    data.labels.end());

  mp::MatrixProfileConfig config;
  config.window = window;
  config.mode = PrecisionMode::FP64;
  const auto result = mp::compute_matrix_profile(reference, query, config);

  // Classify on the 1-dimensional profile (best-matching sensor) and
  // evaluate on segments with well-defined (single-phase) ground truth.
  const auto predicted = metrics::nn_classify(result, 0, ref_labels, window);
  const auto truth = metrics::segment_labels(qry_labels, result.segments,
                                             window, /*pure_only=*/true);
  const auto report = metrics::evaluate_classification(
      predicted, truth, int(kHpcAppClassCount));
  EXPECT_GT(report.accuracy, 0.75);
  EXPECT_GT(report.macro_f1, 0.7);
}

TEST(HpcClassification, ReducedPrecisionStaysUseful) {
  HpcTelemetrySpec spec;
  spec.length = 4000;
  spec.seed = 2;
  const auto data = make_hpc_telemetry(spec);
  const std::size_t half = spec.length / 2;
  const std::size_t window = 32;
  const TimeSeries reference = data.series.slice(0, half);
  const TimeSeries query = data.series.slice(half, spec.length - half);
  const std::vector<int> ref_labels(data.labels.begin(),
                                    data.labels.begin() + std::ptrdiff_t(half));
  const std::vector<int> qry_labels(data.labels.begin() + std::ptrdiff_t(half),
                                    data.labels.end());

  double f1_fp64 = 0.0, f1_mixed = 0.0;
  for (PrecisionMode mode : {PrecisionMode::FP64, PrecisionMode::Mixed}) {
    mp::MatrixProfileConfig config;
    config.window = window;
    config.mode = mode;
    const auto result = mp::compute_matrix_profile(reference, query, config);
    const auto predicted = metrics::nn_classify(result, 0, ref_labels, window);
    const auto truth = metrics::segment_labels(qry_labels, result.segments,
                                               window, /*pure_only=*/true);
    const auto report = metrics::evaluate_classification(
        predicted, truth, int(kHpcAppClassCount));
    (mode == PrecisionMode::FP64 ? f1_fp64 : f1_mixed) = report.macro_f1;
  }
  // Fig. 9: the Mixed classifier loses little versus FP64.
  EXPECT_GT(f1_mixed, f1_fp64 - 0.2);
}

TEST(GenomeSearch, SharedSubstringsProduceStrongMatches) {
  GenomeSpec spec;
  spec.length = 1500;
  spec.chromosomes = 4;
  spec.shared_fraction = 1.0;
  spec.mutation_rate = 0.0;
  spec.copy_block = 300;
  const auto data = make_genome_dataset(spec);

  mp::MatrixProfileConfig config;
  config.window = 64;
  config.mode = PrecisionMode::FP64;
  const auto r =
      mp::compute_matrix_profile(data.reference, data.query, config);
  // With verbatim copies, a large fraction of query segments must find an
  // exact (distance ~0) match in the reference.
  std::size_t exact = 0;
  for (std::size_t j = 0; j < r.segments; ++j) {
    if (r.at(j, 0) < 1e-6) ++exact;
  }
  EXPECT_GT(double(exact) / double(r.segments), 0.5);
}

TEST(GenomeSearch, TilingRecoversFp16IndexRecall) {
  // Fig. 10's qualitative claim at test scale: FP16 recall (vs the FP64
  // reference) does not degrade when tiles are added, and typically gains.
  GenomeSpec spec;
  spec.length = 1200;
  spec.chromosomes = 2;
  const auto data = make_genome_dataset(spec);

  mp::CpuReferenceConfig cpu;
  cpu.window = 32;
  const auto reference =
      mp::compute_matrix_profile_cpu(data.reference, data.query, cpu);

  auto recall_with_tiles = [&](int tiles) {
    mp::MatrixProfileConfig config;
    config.window = 32;
    config.mode = PrecisionMode::FP16;
    config.tiles = tiles;
    const auto r =
        mp::compute_matrix_profile(data.reference, data.query, config);
    return metrics::recall_rate(r.index, reference.index);
  };
  const double one = recall_with_tiles(1);
  const double many = recall_with_tiles(16);
  EXPECT_GE(many + 0.02, one);
}

TEST(TurbineDetection, StartupEventsFoundAcrossModes) {
  TurbineSpec spec;
  spec.segments = 2048;
  spec.window = 128;
  // Reference contains both startup shapes; query contains P1 events.
  const auto reference = make_turbine_series(spec, 1, 3, 3);
  const auto query = make_turbine_series(spec, 2, 4, 0);

  // Expected: each query P1 event matches some reference P1 event.  Use
  // relaxed recall with the paper's 5% relaxation factor against the
  // nearest reference P1 location.
  for (PrecisionMode mode :
       {PrecisionMode::FP64, PrecisionMode::FP32, PrecisionMode::Mixed}) {
    mp::MatrixProfileConfig config;
    config.window = spec.window;
    config.mode = mode;
    const auto r =
        mp::compute_matrix_profile(reference.series, query.series, config);

    std::size_t hits = 0;
    const auto tolerance = std::int64_t(0.05 * double(spec.window));
    for (const std::size_t q : query.p1_starts) {
      const std::int64_t found = r.index[q];
      for (const std::size_t expected : reference.p1_starts) {
        if (std::llabs(found - std::int64_t(expected)) <= tolerance) {
          ++hits;
          break;
        }
      }
    }
    EXPECT_GE(double(hits) / double(query.p1_starts.size()), 0.75)
        << to_string(mode);
  }
}

TEST(TurbineDetection, MatchesPreferSameShape) {
  // A P2-only query against a reference with both shapes should match P2
  // events, not P1 events (the shapes are distinguishable, Fig. 11).
  TurbineSpec spec;
  spec.segments = 2048;
  spec.window = 128;
  const auto reference = make_turbine_series(spec, 1, 3, 3);
  const auto query = make_turbine_series(spec, 2, 0, 4);

  mp::MatrixProfileConfig config;
  config.window = spec.window;
  config.mode = PrecisionMode::FP64;
  const auto r =
      mp::compute_matrix_profile(reference.series, query.series, config);

  const auto tolerance = std::int64_t(0.25 * double(spec.window));
  std::size_t p2_hits = 0;
  for (const std::size_t q : query.p2_starts) {
    for (const std::size_t expected : reference.p2_starts) {
      if (std::llabs(r.index[q] - std::int64_t(expected)) <= tolerance) {
        ++p2_hits;
        break;
      }
    }
  }
  EXPECT_GE(double(p2_hits) / double(query.p2_starts.size()), 0.75);
}

TEST(TurbineDetection, PanProfileLocalizesStartupsAcrossScales) {
  // Window selection without domain knowledge: at every rung of the
  // window ladder the pan profile must be far lower at a startup
  // location (a real repeating event) than at idle locations, and the
  // startup's best normalized distance must be a strong match.
  TurbineSpec spec;
  spec.segments = 2048;
  spec.window = 128;  // true startup duration
  const auto reference = make_turbine_series(spec, 1, 3, 0);
  const auto query = make_turbine_series(spec, 2, 3, 0);

  const auto pan = mp::compute_pan_profile(reference.series, query.series,
                                           {32, 64, 128, 256});
  const std::size_t startup = query.p1_starts.front();
  // An idle probe well away from every embedded event.
  std::size_t idle = 0;
  for (std::size_t j = 0; j < pan.segments; ++j) {
    bool clear = true;
    for (const std::size_t p : query.p1_starts) {
      const auto gap = std::llabs(std::int64_t(j) - std::int64_t(p));
      if (gap < 512) clear = false;
    }
    if (clear) {
      idle = j;
      break;
    }
  }
  for (std::size_t w = 0; w < pan.windows.size(); ++w) {
    EXPECT_LT(pan.at(w, startup) * 2.0, pan.at(w, idle))
        << "window " << pan.windows[w];
  }
  const auto best = mp::best_window_for_segment(pan, startup);
  EXPECT_LT(best.normalized_distance, 0.25);
}

TEST(EndToEnd, MultiDeviceMultiTileReducedPrecisionPipeline) {
  // The paper's full configuration in miniature: 4 simulated A100s, 16
  // tiles, FP16C, on pattern-injected data — results must be usable and
  // the modelled makespan must beat the single-device model.
  SyntheticSpec spec;
  spec.segments = 512;
  spec.dims = 4;
  spec.window = 32;
  spec.injections_per_dim = 3;
  const auto data = make_synthetic_dataset(spec);

  mp::MatrixProfileConfig config;
  config.window = 32;
  config.mode = PrecisionMode::FP16C;
  config.tiles = 16;
  config.devices = 4;
  const auto multi =
      mp::compute_matrix_profile(data.reference, data.query, config);
  config.devices = 1;
  const auto single =
      mp::compute_matrix_profile(data.reference, data.query, config);

  EXPECT_LT(multi.modeled_device_seconds,
            single.modeled_device_seconds * 0.5);
  const double recall = metrics::embedded_motif_recall(
      multi.index, multi.segments, data.injections, 32, 0.05);
  EXPECT_GE(recall, 0.9);
}

}  // namespace
}  // namespace mpsim
