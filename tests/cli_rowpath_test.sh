#!/usr/bin/env bash
# CTest smoke leg of the fused row pipeline: run mpsim_cli once with each
# per-row execution path forced and diff the profiles byte-for-byte — the
# fused path's bit-identity contract, checked end-to-end through the CLI.
# Covers a multi-dimensional padded case (d=3), the d=1 skip-sort path,
# reduced precision, and a NaN fault-injected run.  $1 = build dir.
set -euo pipefail
BUILD=$1
WORK=$(mktemp -d)

cleanup() {
  status=$?
  if [ "$status" -ne 0 ]; then
    echo "cli_rowpath_test FAILED (exit $status) at line ${FAILED_LINE:-?}" >&2
    for log in "$WORK"/*.log; do
      [ -f "$log" ] || continue
      echo "--- $log:" >&2
      cat "$log" >&2
    done
  fi
  rm -rf "$WORK"
  exit "$status"
}
trap 'FAILED_LINE=$LINENO' ERR
trap cleanup EXIT

# Three-sensor CSV (d=3 pads the Bitonic network to 4) and a single-sensor
# projection for the d=1 path.
awk 'BEGIN {
  srand(5); print "a,b,c";
  for (t = 0; t < 400; ++t) {
    a = sin(t / 9.0) + (rand() - 0.5) * 0.4;
    b = cos(t / 13.0) + (rand() - 0.5) * 0.4;
    c = sin(t / 5.0) * 0.7 + (rand() - 0.5) * 0.3;
    printf "%.6f,%.6f,%.6f\n", a, b, c;
  }
}' > "$WORK/ref3.csv"
cut -d, -f1 "$WORK/ref3.csv" > "$WORK/ref1.csv"

run() {  # run <path> <outfile> <extra args...>
  local path=$1 out=$2
  shift 2
  "$BUILD/tools/mpsim_cli" --row-path="$path" --output="$out" "$@" \
      > "${out%.csv}.log"
}

# d=3 self-join, FP64 and FP16, both paths must agree byte-for-byte.
for mode in FP64 FP16 Mixed; do
  run fused "$WORK/f_$mode.csv" --reference="$WORK/ref3.csv" --self-join \
      --window=32 --mode="$mode" --tiles=2
  run cooperative "$WORK/c_$mode.csv" --reference="$WORK/ref3.csv" \
      --self-join --window=32 --mode="$mode" --tiles=2
  cmp "$WORK/f_$mode.csv" "$WORK/c_$mode.csv"
done

# d=1: the sort kernel is skipped on both paths.
run fused "$WORK/f_d1.csv" --reference="$WORK/ref1.csv" --self-join \
    --window=32
run cooperative "$WORK/c_d1.csv" --reference="$WORK/ref1.csv" --self-join \
    --window=32
cmp "$WORK/f_d1.csv" "$WORK/c_d1.csv"

# NaN-poisoned staged inputs: the same injector seed corrupts the same
# bytes, so the poisoned profiles must still match across paths.
for path in fused cooperative; do
  run "$path" "$WORK/${path}_nan.csv" --reference="$WORK/ref3.csv" \
      --self-join --window=32 --mode=FP16 \
      --faults="seed=9,nan@0:at=1:frac=0.05"
done
cmp "$WORK/fused_nan.csv" "$WORK/cooperative_nan.csv"

# --row-path=auto resolves to fused at this dimensionality.
run auto "$WORK/a_FP64.csv" --reference="$WORK/ref3.csv" --self-join \
    --window=32 --tiles=2
cmp "$WORK/a_FP64.csv" "$WORK/f_FP64.csv"

# --simd= is a pure performance knob: every dispatch level must produce
# byte-identical profiles (levels above the host clamp, so asking for
# avx2 is safe anywhere).  BF16 rides along to cover the AVX2 payload
# kernels; the NaN-fault FP16 run drives the vector kernels' scalar
# fallbacks through the CLI.
for mode in FP64 FP16 BF16; do
  run fused "$WORK/s_scalar_$mode.csv" --reference="$WORK/ref3.csv" \
      --self-join --window=32 --mode="$mode" --tiles=2 --simd=scalar
  for level in f16c avx2 auto; do
    run fused "$WORK/s_${level}_$mode.csv" --reference="$WORK/ref3.csv" \
        --self-join --window=32 --mode="$mode" --tiles=2 --simd="$level"
    cmp "$WORK/s_${level}_$mode.csv" "$WORK/s_scalar_$mode.csv"
  done
done
for level in scalar auto; do
  run fused "$WORK/s_${level}_nan.csv" --reference="$WORK/ref3.csv" \
      --self-join --window=32 --mode=FP16 --simd="$level" \
      --faults="seed=9,nan@0:at=1:frac=0.05"
done
cmp "$WORK/s_auto_nan.csv" "$WORK/s_scalar_nan.csv"

# The metrics JSON reports the dispatch variant each stage ran with.
run fused "$WORK/m.csv" --reference="$WORK/ref3.csv" --self-join \
    --window=32 --mode=FP16 --simd=scalar --metrics-out="$WORK/metrics.json"
for stage in dist_calc sort_scan merge precalc; do
  grep -q "\"simd.$stage.scalar\"" "$WORK/metrics.json" || {
    echo "metrics.json missing simd.$stage.scalar" >&2
    cat "$WORK/metrics.json" >&2
    exit 1
  }
done

echo "cli row-path OK"
