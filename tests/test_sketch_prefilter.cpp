// Statistical acceptance tests of the FP16 sketch prefilter
// (PrefilterMode::kSketch, mp/sketch.hpp).  The prefilter is a
// statistical gate, not a proof, so the contract under test is the
// MEASURED one: on seeded random and adversarial near-tie series the
// realized miss rate (verify-sample misses and the true profile
// disagreement against an exact run) must stay within the configured
// budget, skips must actually happen on prefilter-friendly data, the
// decision accounting must add up, and identical configurations must
// replay identical decisions bit-for-bit.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "metrics/accuracy.hpp"
#include "mp/matrix_profile.hpp"
#include "mp/sketch.hpp"
#include "tsdata/time_series.hpp"

namespace mpsim::mp {
namespace {

/// Smooth, repeating 2-dimensional series: Gaussian-smoothed seeded noise
/// (correlation length ~ sigma, so the sketch interval boxes are tight),
/// repeated `reps` times with fresh per-repeat noise so every segment has
/// a near-perfect match somewhere — the regime the prefilter is built
/// for.  Dimension b is the same base pattern cyclically shifted, keeping
/// both dimensions equally matchable.
TimeSeries smooth_repeats(std::size_t seg, std::size_t reps, double sigma,
                          double noise, std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t support = std::size_t(sigma) * 6 + 20;
  std::vector<double> white(seg + support);
  for (auto& w : white) w = rng.normal(0.0, 1.0);
  std::vector<double> kern(support);
  for (std::size_t t = 0; t < support; ++t) {
    const double u = (double(t) - double(support) / 2.0) / sigma;
    kern[t] = std::exp(-0.5 * u * u);
  }
  std::vector<double> base(seg, 0.0);
  double sum = 0.0;
  for (std::size_t t = 0; t < seg; ++t) {
    for (std::size_t u = 0; u < support; ++u) base[t] += white[t + u] * kern[u];
    sum += base[t];
  }
  const double mean = sum / double(seg);
  double ssq = 0.0;
  for (const double v : base) ssq += (v - mean) * (v - mean);
  const double inv_sd = 1.0 / std::sqrt(ssq / double(seg));
  for (auto& v : base) v = (v - mean) * inv_sd;

  const std::size_t len = seg * reps, shift = seg / 3;
  std::vector<double> data(2 * len);
  for (std::size_t t = 0; t < len; ++t) {
    data[t] = base[t % seg] + rng.normal(0.0, noise);
    data[len + t] = base[(t + shift) % seg] + rng.normal(0.0, noise);
  }
  return TimeSeries(len, 2, std::move(data));
}

MatrixProfileConfig sketch_config(std::size_t window, double budget) {
  MatrixProfileConfig config;
  config.window = window;
  config.mode = PrecisionMode::FP16;
  config.exclusion = std::int64_t(window / 4);
  config.prefilter.mode = PrefilterMode::kSketch;
  config.prefilter.budget = budget;
  return config;
}

/// Fraction of profile entries where the prefiltered run disagrees with
/// the exact run — the TRUE miss rate, of which the verify sample is an
/// estimate.  Compared bitwise: FP16 outputs are exact little numbers.
double true_miss_fraction(const MatrixProfileResult& exact,
                          const MatrixProfileResult& pre) {
  EXPECT_EQ(exact.profile.size(), pre.profile.size());
  std::size_t missed = 0;
  for (std::size_t e = 0; e < exact.profile.size(); ++e) {
    if (std::memcmp(&exact.profile[e], &pre.profile[e], sizeof(double)) !=
        0) {
      ++missed;
    }
  }
  return double(missed) / double(exact.profile.size());
}

void expect_accounting_consistent(const PrefilterStats& stats) {
  // Every scored block got exactly one decision, and the column tallies
  // can only come from skip/verify blocks.
  EXPECT_GE(stats.blocks_total,
            stats.blocks_skipped + stats.blocks_verified);
  EXPECT_LE(stats.cols_skipped,
            stats.blocks_skipped * kPrefilterColGroup);
  EXPECT_LE(stats.cols_verified,
            stats.blocks_verified * kPrefilterColGroup);
  EXPECT_LE(stats.cols_missed, stats.cols_verified);
  // The verify stride samples skippable blocks at a fixed deterministic
  // rate, so verified and skipped block counts keep that ratio.
  if (stats.blocks_skipped >= kPrefilterVerifyStride) {
    EXPECT_GE(stats.blocks_verified, 1u);
  }
}

TEST(SketchPrefilter, SkipsOnSmoothRepeatsWithinBudget) {
  const auto series = smooth_repeats(911, 3, 15.0, 0.005, 101);
  const double budget = 0.05;
  const auto pre = compute_self_join(series, sketch_config(400, budget));
  auto off = sketch_config(400, budget);
  off.prefilter.mode = PrefilterMode::kOff;
  const auto reference = compute_self_join(series, off);

  const PrefilterStats& stats = pre.prefilter;
  ASSERT_TRUE(stats.any());
  expect_accounting_consistent(stats);
  EXPECT_GT(stats.cols_skipped, 0u) << "prefilter never skipped on the "
                                       "workload built to be skippable";
  // Real win, not a technicality: a fifth of all scored columns skipped.
  EXPECT_GT(double(stats.cols_skipped),
            0.2 * double(stats.blocks_total * kPrefilterColGroup));
  EXPECT_TRUE(metrics::prefilter_within_budget(stats, budget))
      << "measured miss rate " << metrics::prefilter_miss_rate(stats)
      << " above budget " << budget;
  EXPECT_LE(true_miss_fraction(reference, pre), budget)
      << "true profile disagreement above the configured budget";
}

TEST(SketchPrefilter, NearTieAdversarialStaysWithinBudget) {
  // Heavy per-repeat noise turns every match into a near-tie: many
  // candidate correlations crowd just below the current profile entry,
  // exactly where an overconfident bound would start missing updates.
  for (const double noise : {0.15, 0.3}) {
    const auto series = smooth_repeats(911, 4, 15.0, noise, 202);
    const double budget = 0.05;
    const auto pre = compute_self_join(series, sketch_config(400, budget));
    auto off = sketch_config(400, budget);
    off.prefilter.mode = PrefilterMode::kOff;
    const auto reference = compute_self_join(series, off);

    const PrefilterStats& stats = pre.prefilter;
    ASSERT_TRUE(stats.any()) << "noise " << noise;
    expect_accounting_consistent(stats);
    EXPECT_GT(stats.cols_skipped, 0u) << "noise " << noise;
    EXPECT_TRUE(metrics::prefilter_within_budget(stats, budget))
        << "noise " << noise << " miss rate "
        << metrics::prefilter_miss_rate(stats);
    EXPECT_LE(true_miss_fraction(reference, pre), budget)
        << "noise " << noise;
  }
}

TEST(SketchPrefilter, SeededRandomSeriesNeverBreaksBudget) {
  // Plain seeded random data (no engineered structure): the prefilter may
  // or may not find anything to skip, but the budget contract and the
  // accounting identities must hold regardless.
  for (const std::uint64_t seed : {7u, 19u, 31u}) {
    Rng rng(seed);
    const std::size_t len = 1500;
    std::vector<double> data(2 * len);
    for (auto& v : data) v = rng.normal(0.0, 1.0);
    const TimeSeries series(len, 2, std::move(data));
    const double budget = 0.05;
    const auto pre = compute_self_join(series, sketch_config(128, budget));
    auto off = sketch_config(128, budget);
    off.prefilter.mode = PrefilterMode::kOff;
    const auto reference = compute_self_join(series, off);

    ASSERT_TRUE(pre.prefilter.any()) << "seed " << seed;
    expect_accounting_consistent(pre.prefilter);
    EXPECT_TRUE(metrics::prefilter_within_budget(pre.prefilter, budget))
        << "seed " << seed;
    EXPECT_LE(true_miss_fraction(reference, pre), budget) << "seed " << seed;
  }
}

TEST(SketchPrefilter, DecisionsReplayDeterministically) {
  const auto series = smooth_repeats(911, 3, 15.0, 0.005, 101);
  const auto a = compute_self_join(series, sketch_config(400, 0.05));
  const auto b = compute_self_join(series, sketch_config(400, 0.05));
  EXPECT_EQ(a.prefilter.blocks_total, b.prefilter.blocks_total);
  EXPECT_EQ(a.prefilter.blocks_skipped, b.prefilter.blocks_skipped);
  EXPECT_EQ(a.prefilter.blocks_verified, b.prefilter.blocks_verified);
  EXPECT_EQ(a.prefilter.cols_skipped, b.prefilter.cols_skipped);
  EXPECT_EQ(a.prefilter.cols_verified, b.prefilter.cols_verified);
  EXPECT_EQ(a.prefilter.cols_missed, b.prefilter.cols_missed);
  ASSERT_EQ(a.profile.size(), b.profile.size());
  EXPECT_EQ(std::memcmp(a.profile.data(), b.profile.data(),
                        a.profile.size() * sizeof(double)),
            0);
  EXPECT_EQ(a.index, b.index);
}

TEST(SketchPrefilter, TighterBudgetSkipsNoMore) {
  // A smaller miss budget widens the guard band, so it can only reduce
  // the number of skipped columns.
  const auto series = smooth_repeats(911, 3, 15.0, 0.05, 303);
  const auto loose = compute_self_join(series, sketch_config(400, 0.05));
  const auto tight = compute_self_join(series, sketch_config(400, 1e-4));
  EXPECT_LE(tight.prefilter.cols_skipped, loose.prefilter.cols_skipped);
  EXPECT_TRUE(metrics::prefilter_within_budget(tight.prefilter, 1e-4));
}

TEST(SketchPrefilter, OffModeCarriesNoStats) {
  const auto series = smooth_repeats(911, 2, 15.0, 0.05, 404);
  auto off = sketch_config(400, 0.05);
  off.prefilter.mode = PrefilterMode::kOff;
  const auto result = compute_self_join(series, off);
  EXPECT_FALSE(result.prefilter.any());
  EXPECT_EQ(metrics::prefilter_miss_rate(result.prefilter), 0.0);
  EXPECT_TRUE(metrics::prefilter_within_budget(result.prefilter, 0.0));
}

}  // namespace
}  // namespace mpsim::mp
