#!/usr/bin/env bash
# Serving leg: the mpsim_serve daemon under concurrent, mixed-precision
# load.  Asserts the full serving contract:
#   * >= 8 concurrent queries across >= 3 precision modes, self-joins and
#     AB-joins, each response byte-identical to a one-shot
#     `mpsim_cli --output` run with the same flags;
#   * repeated identical queries are served from the fingerprint-keyed
#     profile cache (counter-asserted through the stats verb), repeated
#     inputs reuse loaded series and staged conversions;
#   * malformed numeric flags come back as error responses naming the
#     flag (the strict CLI parsing surfaces through the daemon);
#   * SIGTERM drains the in-flight query (complete, byte-correct
#     response), the daemon flushes --metrics-out and exits 143;
#   * a SIGTERM'd one-shot mpsim_cli run exits 143 as well (128+signo,
#     not the historical blanket 130).
# Driven by CTest; $1 = build dir with the tools.  Needs python3.
set -euo pipefail
BUILD=$1
WORK=$(mktemp -d)
SERVE_PID=""

cleanup() {
  status=$?
  [ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2>/dev/null || true
  if [ "$status" -ne 0 ]; then
    echo "cli_serve_test FAILED (exit $status) at line ${FAILED_LINE:-?}" >&2
    for f in "$WORK"/*.log "$WORK"/*.json; do
      [ -f "$f" ] || continue
      echo "--- $f:" >&2
      cat "$f" >&2
    done
  fi
  rm -rf "$WORK"
  exit "$status"
}
trap 'FAILED_LINE=$LINENO' ERR
trap cleanup EXIT

awk 'BEGIN {
  srand(7); print "a,b";
  for (t = 0; t < 600; ++t) {
    a = sin(t / 11.0) + (rand() - 0.5) * 0.4;
    b = cos(t / 17.0) + (rand() - 0.5) * 0.4;
    printf "%.6f,%.6f\n", a, b;
  }
}' > "$WORK/ref.csv"
awk 'BEGIN {
  srand(9); print "a,b";
  for (t = 0; t < 400; ++t) {
    a = sin(t / 7.0) + (rand() - 0.5) * 0.4;
    b = cos(t / 5.0) + (rand() - 0.5) * 0.4;
    printf "%.6f,%.6f\n", a, b;
  }
}' > "$WORK/q.csv"

# The concurrent query batch: four precision modes, self- and AB-joins,
# multiple windows/tile/device counts.  The last one repeats an earlier
# (input, FP16) pair with a new window, so its staged conversions are
# cache hits, not reconversions.
QUERIES=(
  "--reference=$WORK/ref.csv --self-join --window=24 --mode=FP64"
  "--reference=$WORK/ref.csv --self-join --window=32 --mode=FP32 --tiles=2"
  "--reference=$WORK/ref.csv --self-join --window=48 --mode=FP16"
  "--reference=$WORK/ref.csv --self-join --window=24 --mode=Mixed --tiles=3 --devices=2"
  "--reference=$WORK/ref.csv --query=$WORK/q.csv --window=32 --mode=FP64"
  "--reference=$WORK/ref.csv --query=$WORK/q.csv --window=24 --mode=FP32"
  "--reference=$WORK/ref.csv --self-join --window=32 --mode=FP16 --tiles=2"
  "--reference=$WORK/ref.csv --query=$WORK/q.csv --window=48 --mode=FP16 --tiles=2 --devices=2"
  "--reference=$WORK/ref.csv --self-join --window=40 --mode=FP16"
  "--reference=$WORK/ref.csv --self-join --window=32 --mode=FP16 --prefilter=sketch --prefilter-budget=0.05"
)
# Sent while the daemon is draining after SIGTERM; must still complete.
DRAIN_QUERY="--reference=$WORK/ref.csv --self-join --window=20 --mode=FP32"

# One-shot CLI reference outputs for the byte-diffs.
for i in "${!QUERIES[@]}"; do
  # shellcheck disable=SC2086
  "$BUILD/tools/mpsim_cli" ${QUERIES[$i]} --motifs=0 \
      --output="$WORK/expected_$i.csv" > /dev/null
done
# shellcheck disable=SC2086
"$BUILD/tools/mpsim_cli" $DRAIN_QUERY --motifs=0 \
    --output="$WORK/expected_drain.csv" > /dev/null

"$BUILD/tools/mpsim_serve" --socket="$WORK/mpsim.sock" --executors=3 \
    --metrics-out="$WORK/serve_metrics.json" > "$WORK/serve.log" 2>&1 &
SERVE_PID=$!
echo "$SERVE_PID" > "$WORK/serve.pid"
for _ in $(seq 1 100); do
  [ -S "$WORK/mpsim.sock" ] && break
  sleep 0.1
done
[ -S "$WORK/mpsim.sock" ]

python3 - "$WORK" "$DRAIN_QUERY" "${QUERIES[@]}" <<'EOF'
import json, os, signal, socket, sys, threading, time

work = sys.argv[1]
drain_query = sys.argv[2]
queries = sys.argv[3:]
sock_path = work + "/mpsim.sock"


def connect():
    conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    conn.connect(sock_path)
    return conn


def rpc(conn, line):
    conn.sendall(line.encode() + b"\n")
    f = conn.makefile("rb")
    header = json.loads(f.readline())
    payload = f.read(header["bytes"]) if header["bytes"] else b""
    assert len(payload) == header["bytes"], (header, len(payload))
    return header, payload


def one_query(i, flags, results):
    conn = connect()
    try:
        results[i] = rpc(conn, f"query {flags} --id=q{i}")
    finally:
        conn.close()


# The concurrent batch: one connection per query (distinct fairness keys).
results = [None] * len(queries)
threads = [threading.Thread(target=one_query, args=(i, q, results))
           for i, q in enumerate(queries)]
for t in threads:
    t.start()
for t in threads:
    t.join()

for i, (header, payload) in enumerate(results):
    assert header["status"] == "ok", (i, header)
    assert header["id"] == f"q{i}", header
    assert header["cached"] is False, (i, header)
    expected = open(f"{work}/expected_{i}.csv", "rb").read()
    assert payload == expected, (
        f"query {i}: daemon payload ({len(payload)}B) != "
        f"mpsim_cli output ({len(expected)}B)")

modes = {h["mode"] for h, _ in results}
assert len(modes) >= 3, modes

# Sequential repeats of every query on one connection: all served from
# the profile cache, byte-identical again.
conn = connect()
for i, flags in enumerate(queries):
    header, payload = rpc(conn, f"query {flags} --id=again{i}")
    assert header["status"] == "ok", header
    assert header["cached"] is True, (i, header)
    assert payload == results[i][1], i

# Malformed numerics are error responses naming the flag, on a live
# connection.
header, _ = rpc(conn, f"query --reference={work}/ref.csv --self-join "
                      "--window=64garbage --id=bad")
assert header["status"] == "error", header
assert "--window=64garbage" in header["error"], header

# Counter assertions through the stats verb.
header, payload = rpc(conn, "stats --id=s")
stats = json.loads(payload)
assert stats["schema"] == "mpsim-metrics-v2", stats.get("schema")
c = stats["counters"]
assert c["serve.profile_cache.hits"] >= len(queries), c
assert c["serve.series_cache.hits"] >= 1, c
assert c["serve.input_cache.hits"] >= 1, c
assert c["serve.admission.admitted"] >= len(queries), c
assert c["serve.requests.query"] >= 2 * len(queries), c
assert c["serve.responses.error"] >= 1, c
assert c.get("staging.hits", 0) >= 1, c
conn.close()

# Graceful drain: fire a fresh (uncached) query and SIGTERM the daemon
# right behind it; the admitted query must still produce its complete
# response before the process exits.
conn = connect()
conn.sendall(f"query {drain_query} --id=drain\n".encode())
time.sleep(0.2)  # let the connection thread admit the query first
os.kill(int(open(work + "/serve.pid").read()), signal.SIGTERM)
f = conn.makefile("rb")
header = json.loads(f.readline())
assert header["status"] == "ok", header
assert header["cached"] is False, header
payload = f.read(header["bytes"])
assert len(payload) == header["bytes"], (header, len(payload))
open(work + "/drain_payload.csv", "wb").write(payload)
conn.close()
print(f"serve client OK ({len(queries)} concurrent + {len(queries)} cached, "
      f"modes={sorted(modes)})")
EOF

# The daemon must drain and exit 143 (128+SIGTERM), flushing its metrics.
set +e
wait "$SERVE_PID"
SERVE_STATUS=$?
set -e
SERVE_PID=""
[ "$SERVE_STATUS" -eq 143 ]
grep -q "drained after" "$WORK/serve.log"
cmp "$WORK/drain_payload.csv" "$WORK/expected_drain.csv"
python3 - "$WORK/serve_metrics.json" <<'EOF'
import json, sys
metrics = json.load(open(sys.argv[1]))
assert metrics["schema"] == "mpsim-metrics-v2", metrics.get("schema")
c = metrics["counters"]
assert c["serve.jobs_completed"] >= 19, c  # 9 computed + 9 cached + drain
assert c["serve.connections"] >= 11, c
assert c["serve.responses.ok"] >= 20, c
print(f"serve metrics OK ({len(c)} counters)")
EOF

# One-shot CLI SIGTERM leg: a hang-stalled run killed with SIGTERM must
# exit 143 (pre-fix the handler hard-exited 130 for every signal).  The
# hang stalls tile 1 in a cancellable sleep far longer than the test, so
# the kill always lands mid-run.
# shellcheck disable=SC2086
"$BUILD/tools/mpsim_cli" --reference="$WORK/ref.csv" --self-join \
    --window=32 --mode=FP32 --tiles=4 \
    --faults="seed=1,hang@0:at=1:ms=60000" \
    > "$WORK/cli_sigterm.log" 2>&1 &
CLI_PID=$!
sleep 0.5
kill -TERM "$CLI_PID"
set +e
wait "$CLI_PID"
CLI_STATUS=$?
set -e
[ "$CLI_STATUS" -eq 143 ]

echo "cli serve OK"
