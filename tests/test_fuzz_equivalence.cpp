// Randomised cross-validation: for a sweep of randomly drawn problem
// shapes (segment counts, dimensionalities, windows, tilings, devices,
// asymmetric lengths), the FP64 simulator must agree with the independent
// brute-force oracle and the CPU reference.  This is the repository's
// backstop against shape-dependent indexing bugs.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "mp/brute_force.hpp"
#include "mp/cpu_reference.hpp"
#include "mp/mass.hpp"
#include "mp/matrix_profile.hpp"
#include "tsdata/synthetic.hpp"

namespace mpsim::mp {
namespace {

struct FuzzShape {
  std::size_t n_r, n_q, dims, window;
  int tiles, devices;
};

FuzzShape draw_shape(Rng& rng) {
  FuzzShape s;
  s.window = 4 + rng.uniform_index(29);              // 4..32
  s.n_r = 2 * s.window + 3 + rng.uniform_index(150); // small but varied
  s.n_q = 2 * s.window + 3 + rng.uniform_index(150);
  s.dims = 1 + rng.uniform_index(7);                 // 1..7 (incl. non-pow2)
  s.tiles = 1 + int(rng.uniform_index(9));           // 1..9
  s.devices = 1 + int(rng.uniform_index(3));         // 1..3
  return s;
}

class FuzzEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(FuzzEquivalence, Fp64AgreesWithOracleAndReference) {
  Rng rng(5000 + std::uint64_t(GetParam()));
  const FuzzShape shape = draw_shape(rng);

  // Random noise plus a few shared structures so minima are non-trivial.
  TimeSeries reference(shape.n_r + shape.window - 1, shape.dims);
  TimeSeries query(shape.n_q + shape.window - 1, shape.dims);
  for (std::size_t k = 0; k < shape.dims; ++k) {
    for (std::size_t t = 0; t < reference.length(); ++t) {
      reference.at(t, k) = rng.normal();
    }
    for (std::size_t t = 0; t < query.length(); ++t) {
      query.at(t, k) = rng.normal();
    }
    // Copy one window from reference to query (a planted match).
    const std::size_t src = rng.uniform_index(shape.n_r);
    const std::size_t dst = rng.uniform_index(shape.n_q);
    for (std::size_t t = 0; t < shape.window; ++t) {
      query.at(dst + t, k) = reference.at(src + t, k);
    }
  }

  MatrixProfileConfig config;
  config.window = shape.window;
  config.tiles = shape.tiles;
  config.devices = shape.devices;
  const auto gpu = compute_matrix_profile(reference, query, config);

  const auto oracle =
      compute_matrix_profile_brute_force(reference, query, shape.window);
  ASSERT_EQ(gpu.profile.size(), oracle.profile.size());
  for (std::size_t e = 0; e < gpu.profile.size(); ++e) {
    EXPECT_NEAR(gpu.profile[e], oracle.profile[e],
                1e-6 * (1.0 + oracle.profile[e]))
        << "shape {nr=" << shape.n_r << " nq=" << shape.n_q
        << " d=" << shape.dims << " m=" << shape.window
        << " tiles=" << shape.tiles << "} entry " << e;
  }

  // Single-tile runs must match the CPU reference bit-for-bit.
  if (shape.tiles == 1) {
    CpuReferenceConfig cpu;
    cpu.window = shape.window;
    const auto reference_result =
        compute_matrix_profile_cpu(reference, query, cpu);
    EXPECT_EQ(gpu.profile, reference_result.profile);
    EXPECT_EQ(gpu.index, reference_result.index);
  }

  // Every fourth shape also runs the FFT-based STAMP oracle (it is the
  // slowest of the three independent algorithms).
  if (GetParam() % 4 == 0) {
    const auto stamp =
        compute_matrix_profile_stamp(reference, query, shape.window);
    for (std::size_t e = 0; e < gpu.profile.size(); ++e) {
      EXPECT_NEAR(gpu.profile[e], stamp.profile[e],
                  1e-6 * (1.0 + stamp.profile[e]))
          << "STAMP disagreement at entry " << e;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomShapes, FuzzEquivalence,
                         ::testing::Range(0, 24));

class FuzzReducedPrecision : public ::testing::TestWithParam<int> {};

TEST_P(FuzzReducedPrecision, AllModesStayInBounds) {
  // Reduced-precision runs on random shapes must never produce an
  // out-of-range index or a NaN-backed match, whatever the rounding does.
  Rng rng(9000 + std::uint64_t(GetParam()));
  const FuzzShape shape = draw_shape(rng);
  TimeSeries reference(shape.n_r + shape.window - 1, shape.dims);
  TimeSeries query(shape.n_q + shape.window - 1, shape.dims);
  const double offset = rng.uniform(0.0, 50.0);  // stress the FP16 range
  for (std::size_t k = 0; k < shape.dims; ++k) {
    for (std::size_t t = 0; t < reference.length(); ++t) {
      reference.at(t, k) = offset + rng.normal();
    }
    for (std::size_t t = 0; t < query.length(); ++t) {
      query.at(t, k) = offset + rng.normal();
    }
  }

  for (PrecisionMode mode : kExtendedPrecisionModes) {
    MatrixProfileConfig config;
    config.window = shape.window;
    config.mode = mode;
    config.tiles = shape.tiles;
    const auto r = compute_matrix_profile(reference, query, config);
    for (std::size_t e = 0; e < r.index.size(); ++e) {
      EXPECT_GE(r.index[e], -1) << to_string(mode);
      EXPECT_LT(r.index[e], std::int64_t(shape.n_r)) << to_string(mode);
      if (r.index[e] >= 0) {
        EXPECT_FALSE(std::isnan(r.profile[e])) << to_string(mode);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomShapes, FuzzReducedPrecision,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace mpsim::mp
