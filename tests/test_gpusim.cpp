// Tests for the GPU execution substrate: device memory accounting,
// streams (ordering, concurrency, error capture), kernel launches and
// cooperative groups.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "gpusim/device.hpp"
#include "gpusim/kernel.hpp"
#include "gpusim/spec.hpp"
#include "gpusim/stream.hpp"

namespace mpsim::gpusim {
namespace {

MachineSpec tiny_spec(std::size_t capacity_bytes) {
  MachineSpec spec = a100();
  spec.memory_capacity_bytes = capacity_bytes;
  return spec;
}

TEST(DeviceMemory, TracksAllocationsAndPeak) {
  Device dev(tiny_spec(1024), 0, 1);
  {
    DeviceBuffer<double> a(dev, 64);  // 512 bytes
    EXPECT_EQ(dev.bytes_in_use(), 512u);
    {
      DeviceBuffer<double> b(dev, 32);  // 256 bytes
      EXPECT_EQ(dev.bytes_in_use(), 768u);
    }
    EXPECT_EQ(dev.bytes_in_use(), 512u);
  }
  EXPECT_EQ(dev.bytes_in_use(), 0u);
  EXPECT_EQ(dev.peak_bytes(), 768u);
}

TEST(DeviceMemory, ThrowsOnCapacityExhaustion) {
  Device dev(tiny_spec(1024), 0, 1);
  DeviceBuffer<double> a(dev, 100);  // 800 bytes
  EXPECT_THROW(DeviceBuffer<double>(dev, 100), DeviceMemoryError);
  // The failed allocation must not leak accounting.
  EXPECT_EQ(dev.bytes_in_use(), 800u);
}

TEST(DeviceMemory, MoveTransfersOwnership) {
  Device dev(tiny_spec(4096), 0, 1);
  DeviceBuffer<int> a(dev, 16);
  a[3] = 42;
  DeviceBuffer<int> b = std::move(a);
  EXPECT_EQ(b[3], 42);
  EXPECT_EQ(dev.bytes_in_use(), 16 * sizeof(int));
  b = DeviceBuffer<int>(dev, 8);
  EXPECT_EQ(dev.bytes_in_use(), 8 * sizeof(int));
}

TEST(Stream, PreservesFifoOrder) {
  Device dev(a100(), 0, 1);
  Stream stream(dev);
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    stream.enqueue([&order, i] { order.push_back(i); });
  }
  stream.synchronize();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[std::size_t(i)], i);
}

TEST(Stream, RethrowsTaskErrorOnSynchronize) {
  Device dev(a100(), 0, 1);
  Stream stream(dev);
  std::atomic<bool> later_ran{false};
  stream.enqueue([] { throw Error("async failure"); });
  stream.enqueue([&] { later_ran = true; });
  EXPECT_THROW(stream.synchronize(), Error);
  EXPECT_TRUE(later_ran.load());  // queue keeps draining after an error
  stream.synchronize();           // error consumed; second sync is clean
}

TEST(Stream, FirstOfSeveralErrorsWins) {
  // Two failing tasks before synchronize: the *first* stored exception is
  // what the caller sees (CUDA-style sticky error), tasks after a failure
  // still run, and consuming the error leaves the stream clean.
  Device dev(a100(), 0, 1);
  Stream stream(dev);
  std::atomic<bool> later_ran{false};
  stream.enqueue([] { throw Error("first failure"); });
  stream.enqueue([] { throw Error("second failure"); });
  stream.enqueue([&] { later_ran = true; });
  try {
    stream.synchronize();
    FAIL() << "synchronize must rethrow the stored error";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "first failure");
  }
  EXPECT_TRUE(later_ran.load());
  EXPECT_NO_THROW(stream.synchronize());
  // The stream remains usable for fresh work — and a fresh failure is
  // reported as such, not mixed up with the consumed ones.
  stream.enqueue([] { throw Error("third failure"); });
  try {
    stream.synchronize();
    FAIL() << "synchronize must rethrow the new error";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "third failure");
  }
}

TEST(Stream, ConcurrentStreamsMakeProgress) {
  Device dev(a100(), 0, 2);
  StreamPool pool(dev, 4);
  std::atomic<int> done{0};
  for (int i = 0; i < 32; ++i) {
    pool.next().enqueue([&done] { done.fetch_add(1); });
  }
  pool.synchronize_all();
  EXPECT_EQ(done.load(), 32);
}

TEST(KernelLaunch, GridStrideCoversIndexSpace) {
  Device dev(a100(), 0, 2);
  std::vector<std::atomic<int>> hits(10000);
  launch_grid_stride(dev, nullptr, "cover", LaunchConfig{}, 10000, KernelCost{},
                     [&](std::int64_t b, std::int64_t e) {
                       for (auto i = b; i < e; ++i) {
                         hits[std::size_t(i)].fetch_add(1);
                       }
                     });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(dev.ledger().stats("cover").launches, 1);
}

TEST(KernelLaunch, AsyncOnStreamRunsAfterSynchronize) {
  Device dev(a100(), 0, 1);
  Stream stream(dev);
  std::atomic<long> sum{0};
  launch_grid_stride(dev, &stream, "sum", LaunchConfig{}, 1000, KernelCost{},
                     [&](std::int64_t b, std::int64_t e) {
                       long local = 0;
                       for (auto i = b; i < e; ++i) local += i;
                       sum.fetch_add(local);
                     });
  stream.synchronize();
  EXPECT_EQ(sum.load(), 999L * 1000 / 2);
}

TEST(KernelLaunch, CooperativeGroupsCountBarrierRounds) {
  Device dev(a100(), 0, 2);
  launch_cooperative(dev, nullptr, "coop", LaunchConfig{}, 64, 8, KernelCost{},
                     [](GroupContext& g) {
                       // 3 stages with a barrier after each.
                       for (int s = 0; s < 3; ++s) {
                         g.for_each_lane([](std::int64_t) {});
                         g.barrier();
                       }
                     });
  const auto stats = dev.ledger().stats("coop");
  EXPECT_EQ(stats.launches, 1);
  // Device-wide rounds = max over groups = 3, not 64 * 3.
  EXPECT_EQ(stats.cost.barrier_rounds, 3);
}

TEST(KernelLaunch, CooperativeLanesSeeOwnGroupIndex) {
  Device dev(a100(), 0, 2);
  std::vector<std::int64_t> group_of(32 * 4, -1);
  launch_cooperative(dev, nullptr, "idx", LaunchConfig{}, 32, 4, KernelCost{},
                     [&](GroupContext& g) {
                       g.for_each_lane([&](std::int64_t lane) {
                         group_of[std::size_t(g.group_index() * 4 + lane)] =
                             g.group_index();
                       });
                     });
  for (std::int64_t g = 0; g < 32; ++g) {
    for (std::int64_t l = 0; l < 4; ++l) {
      EXPECT_EQ(group_of[std::size_t(g * 4 + l)], g);
    }
  }
}

TEST(KernelLaunch, SharedMemoryOverCommitIsRejected) {
  // A cooperative kernel whose resident groups need more scratchpad than
  // an SM provides must fail at launch, like CUDA would.
  Device dev(a100(), 0, 1);
  // lanes=32 -> 64 resident groups/SM; 64 * 8 KiB = 512 KiB > 164 KiB.
  EXPECT_THROW(
      launch_cooperative(
          dev, nullptr, "too-big", LaunchConfig{}, 128, 32, KernelCost{},
          [](GroupContext&) {}, nullptr, std::size_t(8) << 10),
      Error);
  // A modest footprint is fine.
  launch_cooperative(
      dev, nullptr, "fits", LaunchConfig{}, 128, 32, KernelCost{},
      [](GroupContext&) {}, nullptr, 1024);
  EXPECT_EQ(dev.ledger().stats("fits").launches, 1);
}

TEST(Copies, RoundTripH2DandD2H) {
  Device dev(a100(), 0, 1);
  std::vector<double> host(256);
  std::iota(host.begin(), host.end(), 0.0);
  DeviceBuffer<double> buf(dev, 256);
  async_copy_h2d(dev, nullptr, host.data(), buf, 256);
  std::vector<double> back(256, -1.0);
  async_copy_d2h(dev, nullptr, buf, back.data(), 256);
  EXPECT_EQ(back, host);
  EXPECT_EQ(dev.ledger().stats("memcpy_h2d").cost.bytes_written,
            std::int64_t(256 * sizeof(double)));
}

TEST(Copies, OverrunIsRejected) {
  Device dev(a100(), 0, 1);
  std::vector<double> host(10);
  DeviceBuffer<double> buf(dev, 4);
  EXPECT_THROW(async_copy_h2d(dev, nullptr, host.data(), buf, 10), Error);
}

TEST(System, DividesWorkersAcrossDevices) {
  System sys(v100(), 4, 8);
  EXPECT_EQ(sys.device_count(), 4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(sys.device(i).pool().worker_count(), 2u);
    EXPECT_EQ(sys.device(i).index(), i);
  }
}

TEST(System, AtLeastOneWorkerPerDevice) {
  System sys(v100(), 8, 2);
  for (int i = 0; i < 8; ++i) {
    EXPECT_GE(sys.device(i).pool().worker_count(), 1u);
  }
}

TEST(LaunchConfig, TunedMatchesPaperThreadCounts) {
  // §IV/V-A: 163,840 threads on V100, 221,184 on A100.
  EXPECT_EQ(LaunchConfig::tuned_for(v100()).total_threads(), 163840);
  EXPECT_EQ(LaunchConfig::tuned_for(a100()).total_threads(), 221184);
}

TEST(ExtraLedger, ReceivesLaunchRecords) {
  Device dev(a100(), 0, 1);
  KernelLedger tile_ledger;
  KernelCost cost;
  cost.bytes_read = 1 << 20;
  launch_grid_stride(dev, nullptr, "k", LaunchConfig{}, 16, cost,
                     [](std::int64_t, std::int64_t) {}, &tile_ledger);
  EXPECT_EQ(tile_ledger.stats("k").launches, 1);
  EXPECT_DOUBLE_EQ(tile_ledger.stats("k").modeled_seconds,
                   dev.ledger().stats("k").modeled_seconds);
}

}  // namespace
}  // namespace mpsim::gpusim
