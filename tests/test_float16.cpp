// Tests for the software binary16 type: conversions, rounding, special
// values, arithmetic, ordering.  The encode oracle below is an independent
// frexp/nearbyint implementation of round-to-nearest-even, checked against
// the production bit-manipulation encoder across random and exhaustive
// inputs.
#include <gtest/gtest.h>

#include <bit>
#include <cfenv>
#include <cmath>
#include <cstdint>
#include <limits>

#include "common/rng.hpp"
#include "precision/float16.hpp"

namespace mpsim {
namespace {

/// Independent RNE double->binary16 oracle (the slow, obviously-correct
/// formulation).
std::uint16_t oracle_encode(double value) {
  const std::uint16_t sign = std::signbit(value) ? 0x8000 : 0;
  if (std::isnan(value)) return std::uint16_t(sign | 0x7e00);
  if (std::isinf(value)) return std::uint16_t(sign | 0x7c00);
  const double a = std::fabs(value);
  if (a == 0.0) return sign;

  int e2 = 0;
  const double f = std::frexp(a, &e2);
  int exp = e2 - 1;
  if (exp >= -14) {
    auto mant = std::uint64_t(std::nearbyint(f * 2048.0));
    if (mant == 2048) {
      mant = 1024;
      ++exp;
    }
    if (exp > 15) return std::uint16_t(sign | 0x7c00);
    return std::uint16_t(sign | std::uint16_t((exp + 15) << 10) |
                         std::uint16_t(mant - 1024));
  }
  const auto mant = std::uint64_t(std::nearbyint(std::ldexp(a, 24)));
  return std::uint16_t(sign | std::uint16_t(mant));
}

TEST(Float16, SpecialValueEncodings) {
  EXPECT_EQ(float16(0.0).bits(), 0x0000);
  EXPECT_EQ(float16(-0.0).bits(), 0x8000);
  EXPECT_EQ(float16(1.0).bits(), 0x3c00);
  EXPECT_EQ(float16(-1.0).bits(), 0xbc00);
  EXPECT_EQ(float16(2.0).bits(), 0x4000);
  EXPECT_EQ(float16(65504.0).bits(), 0x7bff);  // largest finite half
  EXPECT_EQ(float16(std::numeric_limits<double>::infinity()).bits(), 0x7c00);
  EXPECT_EQ(float16(-std::numeric_limits<double>::infinity()).bits(), 0xfc00);
  EXPECT_TRUE(isnan(float16(std::nan(""))));
}

TEST(Float16, OverflowRoundsToInfinityAtTieBoundary) {
  // 65520 is exactly halfway between 65504 and the (unrepresentable)
  // 65536; ties-to-even rounds up to infinity.
  EXPECT_EQ(float16(65519.999).bits(), 0x7bff);
  EXPECT_EQ(float16(65520.0).bits(), 0x7c00);
  EXPECT_EQ(float16(70000.0).bits(), 0x7c00);
  EXPECT_EQ(float16(-65520.0).bits(), 0xfc00);
}

TEST(Float16, SubnormalBoundaries) {
  EXPECT_DOUBLE_EQ(double(float16::denorm_min()), 0x1.0p-24);
  EXPECT_DOUBLE_EQ(double(float16::min_normal()), 0x1.0p-14);
  // Half of denorm_min ties to even (zero); anything above rounds up.
  EXPECT_EQ(float16(0x1.0p-25).bits(), 0x0000);
  EXPECT_EQ(float16(0x1.0000000000001p-25).bits(), 0x0001);
  EXPECT_EQ(float16(0x1.8p-25).bits(), 0x0001);
  // 1.5 * denorm_min ties up to 2 * denorm_min (even).
  EXPECT_EQ(float16(0x1.8p-24).bits(), 0x0002);
  // Binary64 subnormals flush to zero.
  EXPECT_EQ(float16(std::numeric_limits<double>::denorm_min()).bits(), 0);
}

TEST(Float16, TiesToEvenOnNormals) {
  // 1 + 2^-11 is exactly halfway between 1 and 1+2^-10: rounds to 1 (even).
  EXPECT_EQ(float16(1.0 + 0x1.0p-11).bits(), 0x3c00);
  // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9: rounds up (even).
  EXPECT_EQ(float16(1.0 + 3 * 0x1.0p-11).bits(), 0x3c02);
  // Slightly above the tie rounds up.
  EXPECT_EQ(float16(1.0 + 0x1.0p-11 + 0x1.0p-30).bits(), 0x3c01);
}

TEST(Float16, DecodeEncodeRoundTripsAllFinitePatterns) {
  for (std::uint32_t b = 0; b <= 0xffff; ++b) {
    const auto bits = std::uint16_t(b);
    const float16 h = float16::from_bits(bits);
    if (isnan(h)) continue;  // NaN payloads normalise
    const double v = double(h);
    EXPECT_EQ(float16::encode(v), bits) << "bits=0x" << std::hex << b;
  }
}

TEST(Float16, EncodeMatchesOracleOnRandomDoubles) {
  Rng rng(2024);
  std::fesetround(FE_TONEAREST);
  for (int i = 0; i < 200000; ++i) {
    // Mix magnitudes across the half range and beyond.
    const double mag = std::ldexp(rng.uniform(1.0, 2.0),
                                  int(rng.uniform_index(50)) - 30);
    const double v = rng.uniform() < 0.5 ? mag : -mag;
    EXPECT_EQ(float16::encode(v), oracle_encode(v)) << "v=" << v;
  }
}

TEST(Float16, EncodeMatchesOracleNearBoundaries) {
  std::fesetround(FE_TONEAREST);
  const double anchors[] = {0x1.0p-24, 0x1.0p-14, 1.0,     2048.0,
                            65504.0,   65520.0,   0x1.0p-25};
  for (double anchor : anchors) {
    for (int ulps = -8; ulps <= 8; ++ulps) {
      double v = anchor;
      for (int s = 0; s < std::abs(ulps); ++s) {
        v = std::nextafter(v, ulps > 0 ? 1e300 : -1e300);
      }
      EXPECT_EQ(float16::encode(v), oracle_encode(v)) << "v=" << v;
      EXPECT_EQ(float16::encode(-v), oracle_encode(-v)) << "v=" << -v;
    }
  }
}

TEST(Float16, ArithmeticRoundsPerOperation) {
  // 2048 + 1 = 2048 in binary16 (ulp at 2048 is 2).
  EXPECT_EQ(double(float16(2048.0) + float16(1.0)), 2048.0);
  // ... but 2048 + 2 = 2050.
  EXPECT_EQ(double(float16(2048.0) + float16(2.0)), 2050.0);
  // Multiplication rounding: 1.001 * 1.001 rounds to a representable half.
  const float16 a{1.0 + 0x1.0p-10};  // 1 + ulp
  const float16 sq = a * a;
  EXPECT_EQ(double(sq), 1.0 + 2 * 0x1.0p-10);  // cross term below half ulp
}

TEST(Float16, DivisionAndSqrt) {
  EXPECT_DOUBLE_EQ(double(float16(1.0) / float16(2.0)), 0.5);
  EXPECT_DOUBLE_EQ(double(sqrt(float16(4.0))), 2.0);
  EXPECT_TRUE(isnan(sqrt(float16(-1.0))));
  EXPECT_TRUE(isinf(float16(1.0) / float16(0.0)));
}

TEST(Float16, OverflowInArithmetic) {
  const float16 big = float16::max();
  EXPECT_TRUE(isinf(big + big));
  EXPECT_TRUE(isinf(big * float16(2.0)));
  EXPECT_FALSE(isinf(big + float16(1.0)));  // rounds back to max
}

TEST(Float16, ComparisonTotalOrderMatchesDouble) {
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    const auto a = float16::from_bits(std::uint16_t(rng.uniform_index(65536)));
    const auto b = float16::from_bits(std::uint16_t(rng.uniform_index(65536)));
    const double da = double(a), db = double(b);
    EXPECT_EQ(a < b, da < db);
    EXPECT_EQ(a > b, da > db);
    EXPECT_EQ(a <= b, da <= db);
    EXPECT_EQ(a >= b, da >= db);
    EXPECT_EQ(a == b, da == db);
    EXPECT_EQ(a != b, da != db);
  }
}

TEST(Float16, SignedZerosCompareEqual) {
  const float16 pz{0.0}, nz{-0.0};
  EXPECT_TRUE(pz == nz);
  EXPECT_FALSE(pz < nz);
  EXPECT_FALSE(nz < pz);
  EXPECT_TRUE(pz <= nz);
}

TEST(Float16, NanNeverCompares) {
  const float16 nan = float16::quiet_nan();
  const float16 one{1.0};
  EXPECT_FALSE(nan < one);
  EXPECT_FALSE(nan > one);
  EXPECT_FALSE(nan == nan);
  EXPECT_TRUE(nan != nan);
  EXPECT_FALSE(nan <= one);
  EXPECT_FALSE(one >= nan);
}

TEST(Float16, NegationFlipsSignBitOnly) {
  EXPECT_EQ((-float16(1.5)).bits(), 0xbe00);
  EXPECT_EQ((-float16(-1.5)).bits(), 0x3e00);
  EXPECT_EQ((-float16(0.0)).bits(), 0x8000);
}

TEST(Float16, AbsClearsSign) {
  EXPECT_EQ(abs(float16(-3.0)).bits(), float16(3.0).bits());
  EXPECT_EQ(abs(float16(3.0)).bits(), float16(3.0).bits());
}

TEST(Float16, FmaSingleRounding) {
  // fma(a, b, c) with an exact product that the separate ops would round:
  // a*b = 1 + 2^-11 + 2^-22 is not representable; adding c = 1 first in
  // exact arithmetic differs from rounding the product first.
  const float16 a{1.0 + 0x1.0p-11 * 2};  // 1 + 2^-10
  const float16 b = a;
  const float16 c{-1.0};
  const double exact = double(a) * double(b) + double(c);
  EXPECT_EQ(double(fma(a, b, c)), double(float16(exact)));
}

TEST(Float16, EpsilonMatchesMachinePrecision) {
  // Paper quotes eps16 = 2^-10 as the half-precision machine epsilon
  // (ulp of 1); the unit roundoff used in error bounds is 2^-11.
  EXPECT_DOUBLE_EQ(double(std::numeric_limits<float16>::epsilon()),
                   0x1.0p-10);
  EXPECT_DOUBLE_EQ(float16::epsilon(), 0x1.0p-11);
}

TEST(Float16, MonotoneEncodeOverIncreasingDoubles) {
  // Encoding must be monotone: v1 <= v2 implies half(v1) <= half(v2).
  Rng rng(99);
  for (int i = 0; i < 50000; ++i) {
    const double v1 = rng.normal(0.0, 100.0);
    const double v2 = v1 + std::fabs(rng.normal(0.0, 1.0));
    const float16 h1{v1}, h2{v2};
    EXPECT_LE(double(h1), double(h2)) << v1 << " " << v2;
  }
}

// ---- Fast-path equivalence: the table-driven decode and the branch-light
// encode_fast are the production hot path; they must be bit-exact against
// the constexpr reference decode()/encode() on EVERY input, not just on
// values that happen to occur in test data.

TEST(Float16, LutDecodeBitExactForAllPatterns) {
  // operator double() reads the 65536-entry table; decode() recomputes
  // from the bit fields.  Compare the raw binary64 bits so NaN payloads,
  // -0.0 and every subnormal are checked exactly.
  for (std::uint32_t b = 0; b <= 0xffff; ++b) {
    const auto bits = std::uint16_t(b);
    const double table = double(float16::from_bits(bits));
    const double reference = float16::decode(bits);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(table),
              std::bit_cast<std::uint64_t>(reference))
        << "bits=0x" << std::hex << b;
  }
}

TEST(Float16, FastEncodeBitExactOnAllRoundTrips) {
  // Every representable half value (including NaNs and infinities) must
  // encode back through the fast path exactly as through the reference.
  for (std::uint32_t b = 0; b <= 0xffff; ++b) {
    const auto bits = std::uint16_t(b);
    const double v = float16::decode(bits);
    EXPECT_EQ(float16::encode_fast(v), float16::encode(v))
        << "bits=0x" << std::hex << b;
  }
}

TEST(Float16, FastEncodeBitExactOnRandomBitPatterns) {
  // Uniform random binary64 bit patterns cover NaN payloads, binary64
  // subnormals, huge magnitudes and every exponent, most of which never
  // appear in round-trip data.
  Rng rng(424242);
  for (int i = 0; i < 500000; ++i) {
    const std::uint64_t hi = std::uint64_t(rng.uniform_index(1u << 22));
    const std::uint64_t mid = std::uint64_t(rng.uniform_index(1u << 21));
    const std::uint64_t lo = std::uint64_t(rng.uniform_index(1u << 21));
    const std::uint64_t pattern = (hi << 42) | (mid << 21) | lo;
    const double v = std::bit_cast<double>(pattern);
    EXPECT_EQ(float16::encode_fast(v), float16::encode(v))
        << "pattern=0x" << std::hex << pattern;
  }
}

TEST(Float16, FastEncodeBitExactOnRneMidpoints) {
  // The exact midpoint between every pair of consecutive finite halves is
  // the hardest rounding case (ties-to-even); sweep them all, both signs,
  // plus the values one binary64 ulp to either side.
  for (std::uint32_t b = 0; b < 0x7c00; ++b) {
    const double lo = float16::decode(std::uint16_t(b));
    const double hi = float16::decode(std::uint16_t(b + 1));
    const double mid = 0.5 * (lo + hi);  // exact in binary64
    for (const double v :
         {mid, std::nextafter(mid, lo), std::nextafter(mid, hi)}) {
      EXPECT_EQ(float16::encode_fast(v), float16::encode(v)) << "v=" << v;
      EXPECT_EQ(float16::encode_fast(-v), float16::encode(-v)) << "v=" << -v;
    }
  }
}

TEST(Float16, FastEncodeSpecialValues) {
  const double specials[] = {0.0,
                             -0.0,
                             std::numeric_limits<double>::infinity(),
                             -std::numeric_limits<double>::infinity(),
                             std::numeric_limits<double>::quiet_NaN(),
                             std::numeric_limits<double>::denorm_min(),
                             -std::numeric_limits<double>::denorm_min(),
                             std::numeric_limits<double>::max(),
                             0x1.0p-25,
                             -0x1.0p-25,
                             65520.0,
                             -65520.0,
                             1e300,
                             -1e300};
  for (const double v : specials) {
    EXPECT_EQ(float16::encode_fast(v), float16::encode(v)) << "v=" << v;
  }
}

// The arithmetic operators may compute in binary32 on the F16C hardware
// path.  That is only legitimate if every operator result is bit-identical
// to the binary64 software reference (rounding an operation on 11-bit
// operands through binary32 is innocuous double rounding: 24 >= 2*11+2).
// Pin it: exhaustive over all operands for sqrt, randomized pairs plus
// adversarial neighbours for + - * /.
TEST(Float16, OperatorsBitExactAgainstDoubleReference) {
  // Reference: round the binary64 result with the reference encoder, then
  // apply the operators' documented deterministic NaN rule (the first NaN
  // operand's sign with canonical payload; a NaN generated from non-NaN
  // operands keeps the default QNaN's ISA-fixed sign).
  const auto is_nan16 = [](std::uint16_t b) { return (b & 0x7fffu) > 0x7c00u; };
  const auto ref = [&](double r, std::uint16_t ab, std::uint16_t bb) {
    std::uint16_t e = float16::encode(r);
    if (is_nan16(e)) {
      auto sign = std::uint16_t(e & 0x8000u);
      if (is_nan16(ab)) {
        sign = std::uint16_t(ab & 0x8000u);
      } else if (is_nan16(bb)) {
        sign = std::uint16_t(bb & 0x8000u);
      }
      e = std::uint16_t(sign | 0x7e00u);
    }
    return e;
  };
  Rng rng(2026);
  const std::uint32_t kPairs = 400000;
  for (std::uint32_t i = 0; i < kPairs; ++i) {
    const auto ab = std::uint16_t(rng.uniform_index(1u << 16));
    const auto bb = std::uint16_t(rng.uniform_index(1u << 16));
    const float16 a = float16::from_bits(ab);
    const float16 b = float16::from_bits(bb);
    const double ad = float16::decode(ab);
    const double bd = float16::decode(bb);
    ASSERT_EQ((a + b).bits(), ref(ad + bd, ab, bb)) << ab << " + " << bb;
    ASSERT_EQ((a - b).bits(), ref(ad - bd, ab, bb)) << ab << " - " << bb;
    ASSERT_EQ((a * b).bits(), ref(ad * bd, ab, bb)) << ab << " * " << bb;
    ASSERT_EQ((a / b).bits(), ref(ad / bd, ab, bb)) << ab << " / " << bb;
  }
  // Adjacent operands stress rounding at the tie boundaries.
  for (std::uint32_t ab = 0; ab < (1u << 16); ++ab) {
    const auto bb = std::uint16_t(ab ^ 1u);
    const float16 a = float16::from_bits(std::uint16_t(ab));
    const float16 b = float16::from_bits(bb);
    const double ad = float16::decode(std::uint16_t(ab));
    const double bd = float16::decode(bb);
    ASSERT_EQ((a + b).bits(), ref(ad + bd, std::uint16_t(ab), bb)) << ab;
    ASSERT_EQ((a * b).bits(), ref(ad * bd, std::uint16_t(ab), bb)) << ab;
    ASSERT_EQ((a / b).bits(), ref(ad / bd, std::uint16_t(ab), bb)) << ab;
  }
}

TEST(Float16, SqrtBitExactForAllOperands) {
  for (std::uint32_t b = 0; b < (1u << 16); ++b) {
    const float16 x = float16::from_bits(std::uint16_t(b));
    const std::uint16_t expected =
        float16::encode(std::sqrt(float16::decode(std::uint16_t(b))));
    ASSERT_EQ(sqrt(x).bits(), expected) << "bits=" << b;
  }
}

TEST(Float16, NumericLimitsValues) {
  using L = std::numeric_limits<float16>;
  EXPECT_TRUE(L::is_specialized);
  EXPECT_TRUE(isinf(L::infinity()));
  EXPECT_TRUE(isnan(L::quiet_NaN()));
  EXPECT_DOUBLE_EQ(double(L::max()), 65504.0);
  EXPECT_DOUBLE_EQ(double(L::lowest()), -65504.0);
  EXPECT_DOUBLE_EQ(double(L::denorm_min()), 0x1.0p-24);
}

}  // namespace
}  // namespace mpsim
