// Reduced-precision behaviour tests: the accuracy ordering across the five
// modes, the effect of tiling on FP16-family accuracy (the paper's central
// claim about the tiling scheme), and practical pattern detection.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "metrics/accuracy.hpp"
#include "mp/cpu_reference.hpp"
#include "mp/matrix_profile.hpp"
#include "mp/model.hpp"
#include "tsdata/synthetic.hpp"

namespace mpsim::mp {
namespace {

struct ModeRun {
  double accuracy = 0.0;  // relative accuracy A vs FP64 CPU reference
  double recall = 0.0;    // index recall R vs FP64 CPU reference
};

ModeRun run_mode(const SyntheticDataset& data, std::size_t window,
                 PrecisionMode mode, const CpuReferenceResult& reference,
                 int tiles = 1) {
  MatrixProfileConfig config;
  config.window = window;
  config.mode = mode;
  config.tiles = tiles;
  const auto r = compute_matrix_profile(data.reference, data.query, config);
  ModeRun out;
  out.accuracy = metrics::relative_accuracy(r.profile, reference.profile);
  out.recall = metrics::recall_rate(r.index, reference.index);
  return out;
}

class ReducedPrecisionSuite : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticSpec spec;
    spec.segments = 768;
    spec.dims = 4;
    spec.window = 32;
    spec.injections_per_dim = 4;
    spec.seed = 2022;
    data_ = new SyntheticDataset(make_synthetic_dataset(spec));
    CpuReferenceConfig cpu;
    cpu.window = 32;
    reference_ = new CpuReferenceResult(
        compute_matrix_profile_cpu(data_->reference, data_->query, cpu));
  }
  static void TearDownTestSuite() {
    delete data_;
    delete reference_;
    data_ = nullptr;
    reference_ = nullptr;
  }

  static const SyntheticDataset* data_;
  static const CpuReferenceResult* reference_;
};

const SyntheticDataset* ReducedPrecisionSuite::data_ = nullptr;
const CpuReferenceResult* ReducedPrecisionSuite::reference_ = nullptr;

TEST_F(ReducedPrecisionSuite, Fp64MatchesReferenceExactly) {
  const auto run = run_mode(*data_, 32, PrecisionMode::FP64, *reference_);
  EXPECT_DOUBLE_EQ(run.accuracy, 1.0);
  EXPECT_DOUBLE_EQ(run.recall, 1.0);
}

TEST_F(ReducedPrecisionSuite, Fp32IsNearlyExact) {
  const auto run = run_mode(*data_, 32, PrecisionMode::FP32, *reference_);
  // The paper: "FP32 mode also results in a high accuracy of roughly 100%".
  EXPECT_GT(run.accuracy, 0.999);
  EXPECT_GT(run.recall, 0.95);
}

TEST_F(ReducedPrecisionSuite, AccuracyOrderingAcrossModes) {
  const auto fp32 = run_mode(*data_, 32, PrecisionMode::FP32, *reference_);
  const auto fp16 = run_mode(*data_, 32, PrecisionMode::FP16, *reference_);
  const auto mixed = run_mode(*data_, 32, PrecisionMode::Mixed, *reference_);
  const auto fp16c = run_mode(*data_, 32, PrecisionMode::FP16C, *reference_);

  // FP32 beats the half-precision family.
  EXPECT_GE(fp32.accuracy, mixed.accuracy);
  EXPECT_GE(fp32.accuracy, fp16.accuracy);
  // Higher-precision precalculation (Mixed/FP16C) beats plain FP16.
  EXPECT_GE(mixed.accuracy, fp16.accuracy);
  EXPECT_GE(fp16c.accuracy, fp16.accuracy);
  // Mixed and FP16C are nearly interchangeable (§V-B: "almost the same").
  EXPECT_NEAR(mixed.accuracy, fp16c.accuracy, 0.05);
}

TEST_F(ReducedPrecisionSuite, TilingImprovesHalfPrecisionAccuracy) {
  // The paper's Fig. 7 / §V-D: more tiles bound the QT error propagation
  // and raise FP16-family accuracy.
  const auto one = run_mode(*data_, 32, PrecisionMode::FP16, *reference_, 1);
  const auto many = run_mode(*data_, 32, PrecisionMode::FP16, *reference_, 16);
  EXPECT_GE(many.accuracy, one.accuracy);
}

TEST_F(ReducedPrecisionSuite, TilingDoesNotHurtFp64) {
  const auto one = run_mode(*data_, 32, PrecisionMode::FP64, *reference_, 1);
  const auto many = run_mode(*data_, 32, PrecisionMode::FP64, *reference_, 16);
  EXPECT_NEAR(many.accuracy, one.accuracy, 1e-9);
  EXPECT_GT(many.recall, 0.99);
}

TEST_F(ReducedPrecisionSuite, PatternDetectionSurvivesReducedPrecision) {
  // Practical accuracy (Fig. 3): every mode detects the embedded motifs
  // even when numerical accuracy degrades.
  for (PrecisionMode mode : kAllPrecisionModes) {
    MatrixProfileConfig config;
    config.window = 32;
    config.mode = mode;
    const auto r =
        compute_matrix_profile(data_->reference, data_->query, config);
    const double recall = metrics::embedded_motif_recall(
        r.index, r.segments, data_->injections, 32, 0.05);
    EXPECT_GE(recall, 0.9) << to_string(mode);
  }
}

TEST(ReducedPrecisionModel, HalfModesModelFasterThanFp64AtPaperScale) {
  // The roofline model must reproduce the paper's performance ordering at
  // the paper's problem size (n = 2^16, d = 2^6, m = 2^6 on one A100):
  // FP16-family < FP32 < FP64, with a sub-linear FP16 speedup because the
  // synchronisation-bound sort kernel barely benefits (§V-C).
  double modeled[5] = {};
  int i = 0;
  for (PrecisionMode mode : kAllPrecisionModes) {
    ModelConfig config;
    config.spec = gpusim::a100();
    config.n_r = config.n_q = 1 << 16;
    config.dims = 1 << 6;
    config.window = 1 << 6;
    config.mode = mode;
    modeled[i++] = model_matrix_profile(config).total_seconds();
  }
  const double fp64 = modeled[0], fp32 = modeled[1], fp16 = modeled[2];
  const double mixed = modeled[3], fp16c = modeled[4];
  EXPECT_GT(fp64, fp32);
  EXPECT_GT(fp32, fp16);
  // Mixed and FP16C cost essentially the same as FP16 (§V-C: the
  // precalculation difference is negligible).
  EXPECT_NEAR(mixed, fp16, 0.15 * fp16);
  EXPECT_NEAR(fp16c, fp16, 0.15 * fp16);
  // Sub-linear in the bit width: well below 4x, meaningfully above 1x
  // (the paper reports ~1.4x overall).
  EXPECT_LT(fp64 / fp16, 4.0);
  EXPECT_GT(fp64 / fp16, 1.1);
}

TEST(ReducedPrecisionModel, AnalyticModelMatchesExecutedAccounting) {
  // The analytic model and the executing engine share cost functions and
  // overlap/merge rules; on an executable problem they must agree.
  SyntheticSpec spec;
  spec.segments = 300;
  spec.dims = 4;
  spec.window = 16;
  spec.injections_per_dim = 1;
  const auto data = make_synthetic_dataset(spec);

  MatrixProfileConfig run_config;
  run_config.window = 16;
  run_config.mode = PrecisionMode::Mixed;
  run_config.tiles = 4;
  run_config.devices = 2;
  const auto executed =
      compute_matrix_profile(data.reference, data.query, run_config);

  ModelConfig model_config;
  model_config.spec = gpusim::a100();
  model_config.n_r = data.reference.segment_count(16);
  model_config.n_q = data.query.segment_count(16);
  model_config.dims = 4;
  model_config.window = 16;
  model_config.mode = PrecisionMode::Mixed;
  model_config.tiles = 4;
  model_config.devices = 2;
  const auto modeled = model_matrix_profile(model_config);

  EXPECT_NEAR(modeled.device_seconds, executed.modeled_device_seconds,
              1e-9 + 0.001 * executed.modeled_device_seconds);
  EXPECT_NEAR(modeled.merge_seconds, executed.modeled_merge_seconds,
              1e-9 + 0.001 * executed.modeled_merge_seconds);
}

TEST(ReducedPrecisionStress, FlatRegionsDegradeGracefully) {
  // Ill-conditioned input (§V-B): near-flat segments. FP16 may lose the
  // segments entirely (inv -> 0) but must not produce out-of-range
  // indices, and FP64 must stay correct.
  TimeSeries ref(512 + 31, 2), qry(512 + 31, 2);
  Rng rng(4);
  for (std::size_t k = 0; k < 2; ++k) {
    for (std::size_t t = 0; t < ref.length(); ++t) {
      // Tiny noise on a huge offset: variance cancels catastrophically.
      ref.at(t, k) = 300.0 + rng.normal(0.0, 1e-3);
      qry.at(t, k) = 300.0 + rng.normal(0.0, 1e-3);
    }
  }
  for (PrecisionMode mode :
       {PrecisionMode::FP64, PrecisionMode::FP16, PrecisionMode::FP16C}) {
    MatrixProfileConfig config;
    config.window = 32;
    config.mode = mode;
    const auto r = compute_matrix_profile(ref, qry, config);
    for (const auto idx : r.index) {
      EXPECT_GE(idx, -1);
      EXPECT_LT(idx, std::int64_t(ref.segment_count(32)));
    }
  }
}

TEST(ReducedPrecisionStress, RandomWalksAreHardForFp16ButTilesHelp) {
  // Random walks drift, so sliding means vary over a wide range — the
  // textbook stressor for the difference-of-cumulative-sums statistics.
  // FP16 degrades well below its white-noise accuracy; tiling must claw
  // accuracy back (the paper's §V-D mechanism on the hard case).
  const auto reference = make_random_walk_series(800 + 31, 2, 1.0, 61);
  const auto query = make_random_walk_series(800 + 31, 2, 1.0, 62);
  CpuReferenceConfig cpu;
  cpu.window = 32;
  const auto exact = compute_matrix_profile_cpu(reference, query, cpu);

  auto accuracy_with_tiles = [&](int tiles) {
    MatrixProfileConfig config;
    config.window = 32;
    config.mode = PrecisionMode::FP16;
    config.tiles = tiles;
    const auto r = compute_matrix_profile(reference, query, config);
    return metrics::relative_accuracy(r.profile, exact.profile);
  };
  const double one_tile = accuracy_with_tiles(1);
  const double many_tiles = accuracy_with_tiles(16);
  EXPECT_GE(many_tiles + 0.02, one_tile);

  // Mixed-precision precalculation rescues most of it even at one tile.
  MatrixProfileConfig mixed;
  mixed.window = 32;
  mixed.mode = PrecisionMode::Mixed;
  const auto rm = compute_matrix_profile(reference, query, mixed);
  EXPECT_GT(metrics::relative_accuracy(rm.profile, exact.profile),
            one_tile);
}

TEST(ReducedPrecisionStress, OverflowProducesNoBogusMatches) {
  // Values near the FP16 max overflow the precalculation sums; overflowed
  // (NaN/inf) distances must never win the min-merge.
  TimeSeries ref(256 + 15, 1), qry(256 + 15, 1);
  Rng rng(9);
  for (std::size_t t = 0; t < ref.length(); ++t) {
    ref.at(t, 0) = 60000.0 + rng.normal(0.0, 100.0);
    qry.at(t, 0) = 60000.0 + rng.normal(0.0, 100.0);
  }
  MatrixProfileConfig config;
  config.window = 16;
  config.mode = PrecisionMode::FP16;
  const auto r = compute_matrix_profile(ref, qry, config);
  for (std::size_t e = 0; e < r.profile.size(); ++e) {
    // Entries are either valid (finite, matched) or explicitly unmatched
    // (+inf / -1); never NaN, never a NaN-backed index.
    if (r.index[e] >= 0) {
      EXPECT_FALSE(std::isnan(r.profile[e])) << e;
    }
  }
}

}  // namespace
}  // namespace mpsim::mp
