// Tests for left/right matrix profiles and time-series chains.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "mp/chains.hpp"
#include "mp/matrix_profile.hpp"
#include "tsdata/synthetic.hpp"

namespace mpsim::mp {
namespace {

TEST(LeftRight, DirectionalInvariants) {
  const auto series = make_noise_series(300, 2, 1.0, 5);
  const auto p = compute_left_right_profiles(series, 16);
  for (std::size_t k = 0; k < p.dims; ++k) {
    for (std::size_t j = 0; j < p.segments; ++j) {
      const auto li = p.left_index_at(j, k);
      const auto ri = p.right_index_at(j, k);
      if (li >= 0) {
        EXPECT_LT(li, std::int64_t(j));
        EXPECT_LE(std::int64_t(j) - li, std::int64_t(p.segments));
        EXPECT_GE(std::int64_t(j) - li, 8);  // exclusion = window/2
      }
      if (ri >= 0) {
        EXPECT_GT(ri, std::int64_t(j));
        EXPECT_GE(ri - std::int64_t(j), 8);
      }
    }
    // The first segments have no left neighbour; the last none right.
    EXPECT_EQ(p.left_index_at(0, k), -1);
    EXPECT_EQ(p.right_index_at(p.segments - 1, k), -1);
  }
}

TEST(LeftRight, CombinesToTheOrdinaryProfile) {
  // min(left, right) must equal the self-join matrix profile.
  const auto series = make_noise_series(260, 2, 1.0, 6);
  const auto p = compute_left_right_profiles(series, 16);
  MatrixProfileConfig config;
  config.window = 16;
  const auto full = compute_self_join(series, config);
  for (std::size_t e = 0; e < full.profile.size(); ++e) {
    EXPECT_NEAR(std::min(p.left_profile[e], p.right_profile[e]),
                full.profile[e], 1e-9)
        << e;
  }
}

TEST(Chains, DriftingPatternFormsALongChain) {
  // The classic chain demo: a pattern that drifts a little at every
  // occurrence.  Plain motifs see increasingly dissimilar pairs; the
  // chain links each occurrence to the next.
  const std::size_t m = 32;
  const std::size_t occurrences = 8;
  const std::size_t gap = 3 * m;
  TimeSeries series(occurrences * gap + m, 1);
  Rng rng(7);
  for (std::size_t t = 0; t < series.length(); ++t) {
    series.at(t, 0) = rng.normal(0.0, 0.05);
  }
  for (std::size_t o = 0; o < occurrences; ++o) {
    const double drift = double(o) * 0.25;  // shape evolves
    for (std::size_t t = 0; t < m; ++t) {
      const double x = double(t) / double(m);
      series.at(o * gap + t, 0) +=
          std::sin(6.28318 * x) + drift * std::sin(12.56637 * x);
    }
  }

  const auto p = compute_left_right_profiles(series, m);
  const auto chain = longest_chain(p, 0);
  ASSERT_GE(chain.size(), occurrences / 2)
      << "the drifting occurrences should chain together";
  // The chain visits the embedded occurrences in order.
  for (std::size_t c = 1; c < chain.size(); ++c) {
    EXPECT_GT(chain[c], chain[c - 1]);
  }
  for (const auto link : chain) {
    const auto nearest = (std::size_t(link) + gap / 2) / gap * gap;
    EXPECT_LE(std::llabs(link - std::int64_t(nearest)), std::int64_t(m / 2))
        << "chain node " << link << " is not at an occurrence";
  }
}

TEST(Chains, AllChainsAreDisjointAndConsistent) {
  const auto series = make_noise_series(400, 1, 1.0, 9);
  const auto p = compute_left_right_profiles(series, 16);
  const auto chains = all_chains(p, 0);
  std::vector<bool> seen(p.segments, false);
  for (const auto& chain : chains) {
    EXPECT_GE(chain.size(), 2u);
    for (const auto node : chain) {
      ASSERT_GE(node, 0);
      ASSERT_LT(node, std::int64_t(p.segments));
      EXPECT_FALSE(seen[std::size_t(node)]) << "chains must not overlap";
      seen[std::size_t(node)] = true;
    }
    // Bidirectional consistency along every link.
    for (std::size_t c = 1; c < chain.size(); ++c) {
      EXPECT_EQ(p.right_index_at(std::size_t(chain[c - 1]), 0), chain[c]);
      EXPECT_EQ(p.left_index_at(std::size_t(chain[c]), 0), chain[c - 1]);
    }
  }
}

TEST(Chains, Validation) {
  const auto series = make_noise_series(100, 1, 1.0, 10);
  EXPECT_THROW(compute_left_right_profiles(series, 2), Error);
  const auto p = compute_left_right_profiles(series, 16);
  EXPECT_THROW(all_chains(p, 5), Error);
}

}  // namespace
}  // namespace mpsim::mp
