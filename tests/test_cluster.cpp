// Tests for the multi-node cluster extension: functional equivalence with
// single-node execution and the scaling behaviour of the model.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "tsdata/synthetic.hpp"

namespace mpsim::cluster {
namespace {

SyntheticDataset small_dataset() {
  SyntheticSpec spec;
  spec.segments = 256;
  spec.dims = 3;
  spec.window = 16;
  spec.injections_per_dim = 1;
  return make_synthetic_dataset(spec);
}

TEST(Cluster, MultiNodeMatchesSingleNodeResults) {
  const auto data = small_dataset();
  ClusterConfig config;
  config.window = 16;
  config.tiles = 16;
  config.devices_per_node = 2;

  config.nodes = 1;
  const auto one = compute_matrix_profile_cluster(data.reference, data.query,
                                                  config);
  config.nodes = 4;
  const auto four = compute_matrix_profile_cluster(data.reference, data.query,
                                                   config);
  EXPECT_EQ(one.result.profile, four.result.profile);
  EXPECT_EQ(one.result.index, four.result.index);
}

TEST(Cluster, ComputeTimeShrinksWithNodes) {
  const auto data = small_dataset();
  ClusterConfig config;
  config.window = 16;
  config.tiles = 16;
  config.devices_per_node = 2;

  config.nodes = 1;
  const auto one = compute_matrix_profile_cluster(data.reference, data.query,
                                                  config);
  config.nodes = 4;
  const auto four = compute_matrix_profile_cluster(data.reference, data.query,
                                                   config);
  EXPECT_LT(four.modeled_compute_seconds,
            one.modeled_compute_seconds * 0.5);
  // ...but only multi-node runs pay network time.
  EXPECT_DOUBLE_EQ(one.modeled_network_seconds, 0.0);
  EXPECT_GT(four.modeled_network_seconds, 0.0);
}

TEST(ClusterModel, NearLinearScalingAtPaperScale) {
  // A Raven-like cluster: 4 A100s per node, n=2^16, d=2^6, 64 tiles.
  ClusterConfig config;
  config.window = 1 << 6;
  config.tiles = 64;
  config.devices_per_node = 4;

  config.nodes = 1;
  const auto one = model_cluster(1 << 16, 1 << 16, 1 << 6, 1 << 6, config);
  config.nodes = 4;
  const auto four = model_cluster(1 << 16, 1 << 16, 1 << 6, 1 << 6, config);

  const double speedup = one.total_seconds() / four.total_seconds();
  EXPECT_GT(speedup, 3.0);   // near-linear
  EXPECT_LE(speedup, 4.05);  // no super-linear nonsense
}

TEST(ClusterModel, NetworkCostGrowsLogarithmically) {
  ClusterConfig config;
  config.window = 64;
  config.tiles = 64;
  config.devices_per_node = 4;

  config.nodes = 2;
  const double net2 =
      model_cluster(1 << 16, 1 << 16, 64, 64, config).network_seconds;
  config.nodes = 8;
  const double net8 =
      model_cluster(1 << 16, 1 << 16, 64, 64, config).network_seconds;
  // Binomial tree: 1 round at 2 nodes, 3 rounds at 8.
  EXPECT_NEAR(net8 / net2, 3.0, 0.01);
}

TEST(ClusterModel, InterconnectBandwidthMatters) {
  ClusterConfig fast;
  fast.window = 64;
  fast.tiles = 64;
  fast.nodes = 8;
  ClusterConfig slow = fast;
  slow.interconnect.bandwidth_gbs = 1.0;  // 10 GbE-class
  const auto f = model_cluster(1 << 18, 1 << 18, 64, 64, fast);
  const auto s = model_cluster(1 << 18, 1 << 18, 64, 64, slow);
  EXPECT_GT(s.network_seconds, f.network_seconds * 10.0);
  EXPECT_DOUBLE_EQ(s.compute_seconds, f.compute_seconds);
}

TEST(Cluster, ValidatesConfiguration) {
  const auto data = small_dataset();
  ClusterConfig config;
  config.window = 16;
  config.nodes = 0;
  EXPECT_THROW(
      compute_matrix_profile_cluster(data.reference, data.query, config),
      Error);
}

}  // namespace
}  // namespace mpsim::cluster
