// Tests for the multi-node cluster extension: functional equivalence with
// single-node execution, the scaling behaviour of the model, and the
// elastic coordinator (sharded execution, cross-node recovery, and
// grid/node-count-changing resume — all bit-identical to one node).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "cluster/cluster.hpp"
#include "cluster/coordinator.hpp"
#include "common/metrics.hpp"
#include "common/shutdown.hpp"
#include "mp/matrix_profile.hpp"
#include "tsdata/synthetic.hpp"

namespace mpsim::cluster {
namespace {

SyntheticDataset small_dataset() {
  SyntheticSpec spec;
  spec.segments = 256;
  spec.dims = 3;
  spec.window = 16;
  spec.injections_per_dim = 1;
  return make_synthetic_dataset(spec);
}

TEST(Cluster, MultiNodeMatchesSingleNodeResults) {
  const auto data = small_dataset();
  ClusterConfig config;
  config.window = 16;
  config.tiles = 16;
  config.devices_per_node = 2;

  config.nodes = 1;
  const auto one = compute_matrix_profile_cluster(data.reference, data.query,
                                                  config);
  config.nodes = 4;
  const auto four = compute_matrix_profile_cluster(data.reference, data.query,
                                                   config);
  EXPECT_EQ(one.result.profile, four.result.profile);
  EXPECT_EQ(one.result.index, four.result.index);
}

TEST(Cluster, ComputeTimeShrinksWithNodes) {
  const auto data = small_dataset();
  ClusterConfig config;
  config.window = 16;
  config.tiles = 16;
  config.devices_per_node = 2;

  config.nodes = 1;
  const auto one = compute_matrix_profile_cluster(data.reference, data.query,
                                                  config);
  config.nodes = 4;
  const auto four = compute_matrix_profile_cluster(data.reference, data.query,
                                                   config);
  EXPECT_LT(four.modeled_compute_seconds,
            one.modeled_compute_seconds * 0.5);
  // ...but only multi-node runs pay network time.
  EXPECT_DOUBLE_EQ(one.modeled_network_seconds, 0.0);
  EXPECT_GT(four.modeled_network_seconds, 0.0);
}

TEST(ClusterModel, NearLinearScalingAtPaperScale) {
  // A Raven-like cluster: 4 A100s per node, n=2^16, d=2^6, 64 tiles.
  ClusterConfig config;
  config.window = 1 << 6;
  config.tiles = 64;
  config.devices_per_node = 4;

  config.nodes = 1;
  const auto one = model_cluster(1 << 16, 1 << 16, 1 << 6, 1 << 6, config);
  config.nodes = 4;
  const auto four = model_cluster(1 << 16, 1 << 16, 1 << 6, 1 << 6, config);

  const double speedup = one.total_seconds() / four.total_seconds();
  EXPECT_GT(speedup, 3.0);   // near-linear
  EXPECT_LE(speedup, 4.05);  // no super-linear nonsense
}

TEST(ClusterModel, NetworkCostGrowsLogarithmically) {
  ClusterConfig config;
  config.window = 64;
  config.tiles = 64;
  config.devices_per_node = 4;

  config.nodes = 2;
  const double net2 =
      model_cluster(1 << 16, 1 << 16, 64, 64, config).network_seconds;
  config.nodes = 8;
  const double net8 =
      model_cluster(1 << 16, 1 << 16, 64, 64, config).network_seconds;
  // Binomial tree: 1 round at 2 nodes, 3 rounds at 8.
  EXPECT_NEAR(net8 / net2, 3.0, 0.01);
}

TEST(ClusterModel, InterconnectBandwidthMatters) {
  ClusterConfig fast;
  fast.window = 64;
  fast.tiles = 64;
  fast.nodes = 8;
  ClusterConfig slow = fast;
  slow.interconnect.bandwidth_gbs = 1.0;  // 10 GbE-class
  const auto f = model_cluster(1 << 18, 1 << 18, 64, 64, fast);
  const auto s = model_cluster(1 << 18, 1 << 18, 64, 64, slow);
  EXPECT_GT(s.network_seconds, f.network_seconds * 10.0);
  EXPECT_DOUBLE_EQ(s.compute_seconds, f.compute_seconds);
}

TEST(Cluster, ValidatesConfiguration) {
  const auto data = small_dataset();
  ClusterConfig config;
  config.window = 16;
  config.nodes = 0;
  EXPECT_THROW(
      compute_matrix_profile_cluster(data.reference, data.query, config),
      Error);
}

// ---------------------------------------------------------------------
// Elastic coordinator: simulated *nodes* running real shard schedulers.
// The hard invariant everywhere: bits identical to the single-node run.
// ---------------------------------------------------------------------

TEST(ElasticCoordinator, MatchesSingleNodeBitsAllModesBothPaths) {
  const auto data = small_dataset();
  for (const mp::RowPath path :
       {mp::RowPath::kFused, mp::RowPath::kCooperative}) {
    for (const PrecisionMode mode : kAllPrecisionModes) {
      mp::MatrixProfileConfig config;
      config.window = 16;
      config.mode = mode;
      config.tiles = 8;
      config.devices = 2;
      config.row_path = path;

      const auto one =
          mp::compute_matrix_profile(data.reference, data.query, config);

      ElasticClusterConfig elastic;
      elastic.nodes = 3;  // uneven split across the 4x2 grid
      const auto three = compute_matrix_profile_elastic(
          data.reference, data.query, config, elastic);
      EXPECT_EQ(three.profile, one.profile)
          << to_string(mode) << " " << to_string(path);
      EXPECT_EQ(three.index, one.index)
          << to_string(mode) << " " << to_string(path);
    }
  }
}

TEST(ElasticCoordinator, StealOffStillMatchesSingleNode) {
  const auto data = small_dataset();
  mp::MatrixProfileConfig config;
  config.window = 16;
  config.tiles = 8;
  config.devices = 2;
  const auto one =
      mp::compute_matrix_profile(data.reference, data.query, config);

  ElasticClusterConfig elastic;
  elastic.nodes = 2;
  elastic.steal = false;
  const auto result = compute_matrix_profile_elastic(
      data.reference, data.query, config, elastic);
  EXPECT_EQ(result.profile, one.profile);
  EXPECT_EQ(result.index, one.index);
  EXPECT_EQ(result.health.node_steals, 0);
}

TEST(ElasticCoordinator, NodeCrashRecoversBitIdentically) {
  const auto data = small_dataset();
  mp::MatrixProfileConfig config;
  config.window = 16;
  config.tiles = 8;
  config.devices = 2;
  const auto one =
      mp::compute_matrix_profile(data.reference, data.query, config);

  ElasticClusterConfig elastic;
  elastic.nodes = 3;
  elastic.node_faults = "seed=11,node_crash@1:at=1";
  const auto result = compute_matrix_profile_elastic(
      data.reference, data.query, config, elastic);
  EXPECT_EQ(result.profile, one.profile);
  EXPECT_EQ(result.index, one.index);
  EXPECT_EQ(result.health.node_crashes, 1);
  EXPECT_TRUE(result.health.degraded);
  bool saw_crash_event = false;
  for (const auto& event : result.health.events) {
    if (event.kind == mp::RunEvent::Kind::kNodeCrashed) {
      saw_crash_event = true;
      EXPECT_EQ(event.device, 1);  // the event's device slot holds the node
    }
  }
  EXPECT_TRUE(saw_crash_event);
}

TEST(ElasticCoordinator, SlowNodeIsCoveredByStealOrDuplicate) {
  const auto data = small_dataset();
  mp::MatrixProfileConfig config;
  config.window = 16;
  config.tiles = 8;
  config.devices = 2;
  const auto one =
      mp::compute_matrix_profile(data.reference, data.query, config);

  ElasticClusterConfig elastic;
  elastic.nodes = 2;
  elastic.node_faults = "seed=13,node_slow@0:every=1:ms=20";
  const auto result = compute_matrix_profile_elastic(
      data.reference, data.query, config, elastic);
  EXPECT_EQ(result.profile, one.profile);
  EXPECT_EQ(result.index, one.index);
}

TEST(ElasticCoordinator, KillMidRunResumesOnDifferentNodeCount) {
  const auto data = small_dataset();
  mp::MatrixProfileConfig config;
  config.window = 16;
  config.tiles = 8;
  config.devices = 2;
  const auto one =
      mp::compute_matrix_profile(data.reference, data.query, config);

  const std::string ckpt = testing::TempDir() + "mpsim_elastic_resume.ckpt";
  config.checkpoint.write_path = ckpt;
  config.checkpoint.kill_after_tiles = 3;
  ElasticClusterConfig elastic;
  elastic.nodes = 4;
  clear_shutdown();
  try {
    const auto raced = compute_matrix_profile_elastic(
        data.reference, data.query, config, elastic);
    // The kill raced completion — acceptable, the journal is complete.
    EXPECT_EQ(raced.profile, one.profile);
  } catch (const InterruptedError& e) {
    EXPECT_NE(std::string(e.what()).find("resume"), std::string::npos);
  }
  clear_shutdown();

  // Resume on 2 nodes instead of 4: journalled slices (base journal plus
  // any .nodeK side journals) re-key onto the new fleet.
  config.checkpoint.kill_after_tiles = 0;
  config.checkpoint.write_path.clear();
  config.checkpoint.resume_path = ckpt;
  elastic.nodes = 2;
  const auto resumed = compute_matrix_profile_elastic(
      data.reference, data.query, config, elastic);
  EXPECT_EQ(resumed.profile, one.profile);
  EXPECT_EQ(resumed.index, one.index);

  // ... and on a *different grid* with a different node count: the same
  // journal restores whatever still fits and recomputes the rest, with
  // the bits of the clean run under the new grid.
  mp::MatrixProfileConfig regrid = config;
  regrid.tiles = 4;
  regrid.checkpoint.resume_path = ckpt;
  mp::MatrixProfileConfig regrid_clean = regrid;
  regrid_clean.checkpoint.resume_path.clear();
  const auto clean4 = mp::compute_matrix_profile(data.reference, data.query,
                                                 regrid_clean);
  elastic.nodes = 3;
  const auto regridded = compute_matrix_profile_elastic(
      data.reference, data.query, regrid, elastic);
  EXPECT_EQ(regridded.profile, clean4.profile);
  EXPECT_EQ(regridded.index, clean4.index);

  for (int node = 0; node < 4; ++node) {
    std::remove((ckpt + ".node" + std::to_string(node)).c_str());
  }
  std::remove(ckpt.c_str());
}

TEST(ElasticCoordinator, CountersAreAdditiveOnTheMetricsSchema) {
  const auto data = small_dataset();
  mp::MatrixProfileConfig config;
  config.window = 16;
  config.tiles = 8;
  config.devices = 2;

  auto& registry = MetricsRegistry::global();
  registry.reset();
  registry.set_enabled(true);

  ElasticClusterConfig elastic;
  elastic.nodes = 2;
  elastic.steal = false;
  const auto result = compute_matrix_profile_elastic(
      data.reference, data.query, config, elastic);
  EXPECT_FALSE(result.profile.empty());

  // Fault-free, steal off, watchdog off: the schedule is deterministic,
  // so the new counters are exactly pinned (see scripts/check_perf.sh).
  EXPECT_EQ(registry.counter("coordinator.tiles_dispatched").value(), 8u);
  EXPECT_EQ(registry.counter("node.commits").value(), 8u);
  EXPECT_EQ(registry.counter("node.commit_conflicts").value(), 0u);
  EXPECT_EQ(registry.counter("coordinator.steals").value(), 0u);
  EXPECT_EQ(registry.counter("coordinator.duplicates").value(), 0u);
  EXPECT_EQ(registry.counter("coordinator.node_crashes").value(), 0u);
  EXPECT_EQ(registry.gauge("coordinator.nodes").value(), 2.0);
  registry.set_enabled(false);
  registry.reset();
}

TEST(ElasticCoordinator, NodeLifecycleSpansAppearInTheTimeline) {
  const auto data = small_dataset();
  mp::MatrixProfileConfig config;
  config.window = 16;
  config.tiles = 4;

  auto& registry = MetricsRegistry::global();
  registry.reset();
  registry.set_enabled(true);
  ElasticClusterConfig elastic;
  elastic.nodes = 2;
  compute_matrix_profile_elastic(data.reference, data.query, config,
                                 elastic);
  const std::string trace =
      testing::TempDir() + "mpsim_elastic_trace.json";
  registry.timeline().write_chrome_json(trace);
  std::ifstream in(trace);
  const std::string json{std::istreambuf_iterator<char>(in),
                         std::istreambuf_iterator<char>()};
  EXPECT_NE(json.find("\"coordinator\""), std::string::npos);
  EXPECT_NE(json.find("\"node 0\""), std::string::npos);
  EXPECT_NE(json.find("\"node 1\""), std::string::npos);
  std::remove(trace.c_str());
  registry.set_enabled(false);
  registry.reset();
}

TEST(ElasticCoordinator, ValidatesNodeCount) {
  const auto data = small_dataset();
  mp::MatrixProfileConfig config;
  config.window = 16;
  ElasticClusterConfig elastic;
  elastic.nodes = 0;
  EXPECT_THROW(compute_matrix_profile_elastic(data.reference, data.query,
                                              config, elastic),
               ConfigError);
  elastic.nodes = 65;  // > the journal suffix scan bound
  EXPECT_THROW(compute_matrix_profile_elastic(data.reference, data.query,
                                              config, elastic),
               ConfigError);
}

}  // namespace
}  // namespace mpsim::cluster
