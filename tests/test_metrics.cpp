// Tests for the accuracy metrics and the nearest-neighbour classifier.
#include <gtest/gtest.h>

#include <limits>

#include "common/error.hpp"
#include "metrics/accuracy.hpp"
#include "metrics/classifier.hpp"

namespace mpsim::metrics {
namespace {

TEST(RecallRate, CountsExactMatches) {
  EXPECT_DOUBLE_EQ(recall_rate({1, 2, 3, 4}, {1, 2, 3, 4}), 1.0);
  EXPECT_DOUBLE_EQ(recall_rate({1, 2, 0, 4}, {1, 2, 3, 4}), 0.75);
  EXPECT_DOUBLE_EQ(recall_rate({9, 9}, {1, 2}), 0.0);
  EXPECT_DOUBLE_EQ(recall_rate({}, {}), 1.0);
  EXPECT_THROW(recall_rate({1}, {1, 2}), Error);
}

TEST(RelativeAccuracy, PerfectAndDegraded) {
  EXPECT_DOUBLE_EQ(relative_accuracy({1.0, 2.0}, {1.0, 2.0}), 1.0);
  // 10% norm-wise error -> 90% accuracy.
  EXPECT_NEAR(relative_accuracy({1.1, 2.2}, {1.0, 2.0}), 0.9, 1e-12);
  // Total garbage clamps to zero, never negative.
  EXPECT_DOUBLE_EQ(relative_accuracy({100.0, 100.0}, {1.0, 1.0}), 0.0);
}

TEST(RelativeAccuracy, HandlesNonFiniteEntries) {
  const double inf = std::numeric_limits<double>::infinity();
  // Non-finite test values count as full error on that entry.
  EXPECT_NEAR(relative_accuracy({inf, 2.0}, {1.0, 2.0}), 1.0 - 1.0 / 3.0,
              1e-12);
  // Non-finite reference entries are skipped.
  EXPECT_DOUBLE_EQ(relative_accuracy({5.0, 2.0}, {inf, 2.0}), 1.0);
}

TEST(EmbeddedMotifRecall, AcceptsAnyInjectedReferenceSite) {
  // Two injections of the same repeating pattern: matching either
  // reference location counts as a successful retrieval.
  std::vector<Injection> injections{{0, 5, 100}, {0, 40, 200}};
  std::vector<std::int64_t> index(64, -1);
  index[5] = 200;   // matched the *other* copy
  index[40] = 200;  // matched its own copy
  EXPECT_DOUBLE_EQ(
      embedded_motif_recall(index, 64, injections, 16, 0.0), 1.0);
}

TEST(EmbeddedMotifRecall, RelaxationWidensAcceptance) {
  std::vector<Injection> injections{{0, 5, 100}};
  std::vector<std::int64_t> index(64, -1);
  index[5] = 103;  // 3 samples off
  EXPECT_DOUBLE_EQ(embedded_motif_recall(index, 64, injections, 16, 0.0), 0.0);
  // r = 25% of a 16-window -> tolerance 4.
  EXPECT_DOUBLE_EQ(embedded_motif_recall(index, 64, injections, 16, 0.25),
                   1.0);
}

TEST(EmbeddedMotifRecall, UnmatchedIndexCountsAsMiss) {
  std::vector<Injection> injections{{0, 5, 100}};
  std::vector<std::int64_t> index(64, -1);
  EXPECT_DOUBLE_EQ(embedded_motif_recall(index, 64, injections, 16, 1.0), 0.0);
}

TEST(RelaxedRecall, PerPositionTolerance) {
  std::vector<std::int64_t> index(128, -1);
  index[10] = 50;
  index[20] = 71;
  const std::vector<std::size_t> q{10, 20};
  const std::vector<std::size_t> expected{50, 60};
  EXPECT_DOUBLE_EQ(relaxed_recall(index, 128, q, expected, 100, 0.0), 0.5);
  EXPECT_DOUBLE_EQ(relaxed_recall(index, 128, q, expected, 100, 0.2), 1.0);
  EXPECT_THROW(relaxed_recall(index, 128, q, {50}, 100, 0.0), Error);
}

TEST(SegmentLabels, ReadsCentreSample) {
  std::vector<int> samples(20, 0);
  for (std::size_t t = 10; t < 20; ++t) samples[t] = 3;
  const auto labels = segment_labels(samples, 13, 8);
  EXPECT_EQ(labels[0], 0);   // centre at 4
  EXPECT_EQ(labels[12], 3);  // centre at 16
}

TEST(SegmentLabels, PureOnlyMarksBoundarySegments) {
  std::vector<int> samples(20, 0);
  for (std::size_t t = 10; t < 20; ++t) samples[t] = 3;
  const auto labels = segment_labels(samples, 13, 8, /*pure_only=*/true);
  EXPECT_EQ(labels[0], 0);    // fully inside phase 0
  EXPECT_EQ(labels[12], 3);   // fully inside phase 3
  EXPECT_EQ(labels[5], -1);   // window [5,13) spans the boundary at 10
  EXPECT_EQ(labels[9], -1);
}

TEST(Classifier, NegativeTruthIsExcluded) {
  const std::vector<int> truth{0, -1, 1, -1};
  const std::vector<int> pred{0, 1, 0, 0};
  const auto report = evaluate_classification(pred, truth, 2);
  // Only entries 0 and 2 are scored: one correct.
  EXPECT_DOUBLE_EQ(report.accuracy, 0.5);
}

TEST(Classifier, EvaluationPerfectPrediction) {
  const std::vector<int> truth{0, 1, 2, 1, 0, 2};
  const auto report = evaluate_classification(truth, truth, 3);
  EXPECT_DOUBLE_EQ(report.accuracy, 1.0);
  EXPECT_DOUBLE_EQ(report.macro_f1, 1.0);
  for (const auto& score : report.per_class) {
    EXPECT_DOUBLE_EQ(score.f1, 1.0);
  }
}

TEST(Classifier, EvaluationMixedPrediction) {
  const std::vector<int> truth{0, 0, 1, 1};
  const std::vector<int> pred{0, 1, 1, 1};
  const auto report = evaluate_classification(pred, truth, 2);
  EXPECT_DOUBLE_EQ(report.accuracy, 0.75);
  // Class 0: tp=1 fp=0 fn=1 -> p=1, r=0.5, f1=2/3.
  EXPECT_NEAR(report.per_class[0].f1, 2.0 / 3.0, 1e-12);
  // Class 1: tp=2 fp=1 fn=0 -> p=2/3, r=1, f1=0.8.
  EXPECT_NEAR(report.per_class[1].f1, 0.8, 1e-12);
  EXPECT_NEAR(report.macro_f1, (2.0 / 3.0 + 0.8) / 2.0, 1e-12);
}

TEST(Classifier, AbsentClassesExcludedFromMacroF1) {
  const std::vector<int> truth{0, 0, 0};
  const std::vector<int> pred{0, 0, 1};
  const auto report = evaluate_classification(pred, truth, 5);
  // Only class 0 appears in the truth; classes 1-4 must not dilute F1.
  EXPECT_NEAR(report.macro_f1, report.per_class[0].f1, 1e-12);
}

TEST(Classifier, NnLabelTransferUsesIndexAndCentre) {
  mp::MatrixProfileResult result;
  result.segments = 4;
  result.dims = 2;
  result.profile.assign(8, 1.0);
  result.index.assign(8, -1);
  // k=1 plane (entries 4..7) points at reference segments.
  result.index[4] = 0;
  result.index[5] = 10;
  result.index[6] = -1;  // no match
  result.index[7] = 2;

  std::vector<int> ref_labels(32, 7);
  for (std::size_t t = 12; t < 18; ++t) ref_labels[t] = 9;

  const auto labels = nn_classify(result, 1, ref_labels, 8);
  EXPECT_EQ(labels[0], 7);   // centre of segment 0 = sample 4
  EXPECT_EQ(labels[1], 9);   // centre of segment 10 = sample 14
  EXPECT_EQ(labels[2], -1);  // unmatched
  EXPECT_EQ(labels[3], 7);
  EXPECT_THROW(nn_classify(result, 2, ref_labels, 8), Error);
}

}  // namespace
}  // namespace mpsim::metrics
