// Fault injection and the resilient multi-tile scheduler: transient
// kernel faults must be retried without changing the FP64 result
// bit-for-bit, a device lost mid-run must be blacklisted and its tiles
// reassigned, an all-devices-lost run must finish on the CPU reference
// path, and NaN-poisoned reduced-precision tiles must escalate one
// precision rung and re-run.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>

#include "common/stopwatch.hpp"
#include "gpusim/cancel.hpp"
#include "gpusim/faults.hpp"
#include "gpusim/spec.hpp"
#include "mp/matrix_profile.hpp"
#include "mp/tile_merge.hpp"
#include "tsdata/synthetic.hpp"

namespace mpsim::mp {
namespace {

using gpusim::FaultInjector;
using gpusim::FaultKind;
using gpusim::FaultRule;
using gpusim::FaultSite;
using gpusim::FaultSpec;
using gpusim::parse_fault_spec;

SyntheticDataset small_dataset(std::size_t segments = 200,
                               std::size_t dims = 2,
                               std::size_t window = 16,
                               std::uint64_t seed = 31) {
  SyntheticSpec spec;
  spec.segments = segments;
  spec.dims = dims;
  spec.window = window;
  spec.injections_per_dim = 2;
  spec.seed = seed;
  return make_synthetic_dataset(spec);
}

// ---------------------------------------------------------------------
// Spec parsing.
// ---------------------------------------------------------------------

TEST(FaultSpecParsing, ParsesFullSpec) {
  const FaultSpec spec = parse_fault_spec(
      "seed=42,kernel@0:at=5,offline@1:at=12,nan:every=2:frac=0.5,"
      "copy:p=0.25,bitflip@3:at=1:frac=1.0");
  EXPECT_EQ(spec.seed, 42u);
  ASSERT_EQ(spec.rules.size(), 5u);

  EXPECT_EQ(spec.rules[0].kind, FaultKind::kKernelLaunch);
  EXPECT_EQ(spec.rules[0].device, 0);
  EXPECT_EQ(spec.rules[0].at, 5u);

  EXPECT_EQ(spec.rules[1].kind, FaultKind::kDeviceOffline);
  EXPECT_EQ(spec.rules[1].device, 1);
  EXPECT_EQ(spec.rules[1].at, 12u);

  EXPECT_EQ(spec.rules[2].kind, FaultKind::kNaNPoison);
  EXPECT_EQ(spec.rules[2].device, -1);
  EXPECT_EQ(spec.rules[2].every, 2u);
  EXPECT_DOUBLE_EQ(spec.rules[2].fraction, 0.5);

  EXPECT_EQ(spec.rules[3].kind, FaultKind::kCopy);
  EXPECT_DOUBLE_EQ(spec.rules[3].probability, 0.25);

  EXPECT_EQ(spec.rules[4].kind, FaultKind::kBitFlip);
  EXPECT_EQ(spec.rules[4].device, 3);
  EXPECT_DOUBLE_EQ(spec.rules[4].fraction, 1.0);
}

TEST(FaultSpecParsing, ParsesHangAndSlowdownRules) {
  const FaultSpec spec =
      parse_fault_spec("hang@0:at=3:ms=60000,slow@1:p=0.5:ms=25,slow:every=4");
  ASSERT_EQ(spec.rules.size(), 3u);
  EXPECT_EQ(spec.rules[0].kind, FaultKind::kHang);
  EXPECT_EQ(spec.rules[0].device, 0);
  EXPECT_EQ(spec.rules[0].at, 3u);
  EXPECT_DOUBLE_EQ(spec.rules[0].delay_ms, 60000.0);
  EXPECT_EQ(spec.rules[1].kind, FaultKind::kSlowdown);
  EXPECT_DOUBLE_EQ(spec.rules[1].delay_ms, 25.0);
  // No ms= → the kind's default (an hour-scale stall for hangs, a small
  // perturbation for slowdowns).
  EXPECT_LT(spec.rules[2].delay_ms, 0.0);
}

TEST(FaultSpecParsing, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_fault_spec("bogus:at=1"), ConfigError);
  EXPECT_THROW(parse_fault_spec("kernel@0"), ConfigError);  // no trigger
  EXPECT_THROW(parse_fault_spec("offline:at=1"), ConfigError);  // no device
  EXPECT_THROW(parse_fault_spec("kernel@0:wat=1"), ConfigError);
  EXPECT_THROW(parse_fault_spec("kernel@zero:at=1"), ConfigError);
}

// ---------------------------------------------------------------------
// Injector mechanics.
// ---------------------------------------------------------------------

TEST(FaultInjectorBasics, TransientRuleFiresAtExactEventCount) {
  FaultInjector injector;
  injector.configure("kernel@0:at=2");
  EXPECT_NO_THROW(injector.fire(FaultSite::kKernelLaunch, 0, "k"));
  EXPECT_THROW(injector.fire(FaultSite::kKernelLaunch, 0, "k"),
               TransientFaultError);
  EXPECT_NO_THROW(injector.fire(FaultSite::kKernelLaunch, 0, "k"));
  // Another device's counter is independent.
  EXPECT_NO_THROW(injector.fire(FaultSite::kKernelLaunch, 1, "k"));
  EXPECT_NO_THROW(injector.fire(FaultSite::kKernelLaunch, 1, "k"));
  ASSERT_EQ(injector.events().size(), 1u);
  EXPECT_EQ(injector.events()[0].sequence, 2u);
  EXPECT_EQ(injector.fault_count(), 1u);
}

TEST(FaultInjectorBasics, OfflineIsPermanent) {
  FaultInjector injector;
  injector.configure("offline@0:at=1");
  EXPECT_FALSE(injector.device_offline(0));
  EXPECT_THROW(injector.fire(FaultSite::kKernelLaunch, 0, "k"),
               DeviceFailedError);
  EXPECT_TRUE(injector.device_offline(0));
  EXPECT_FALSE(injector.device_offline(1));
  // Every later event on the dead device keeps failing, copies included.
  EXPECT_THROW(injector.fire(FaultSite::kKernelLaunch, 0, "k"),
               DeviceFailedError);
  EXPECT_THROW(injector.fire(FaultSite::kCopyH2D, 0, "c"),
               DeviceFailedError);
  EXPECT_NO_THROW(injector.fire(FaultSite::kKernelLaunch, 1, "k"));
}

TEST(FaultInjectorBasics, NanPoisonCorruptsRequestedFraction) {
  FaultInjector injector;
  injector.configure("seed=9,nan@0:at=1:frac=0.5");
  std::vector<double> data(100, 1.0);
  const std::size_t hit = injector.corrupt_span(0, data.data(), data.size());
  EXPECT_EQ(hit, 50u);
  std::size_t nans = 0;
  for (const double v : data) {
    if (std::isnan(v)) ++nans;
  }
  EXPECT_EQ(nans, 50u);
  // at=1 spent: a second staging event passes through untouched.
  std::vector<double> clean(100, 1.0);
  EXPECT_EQ(injector.corrupt_span(0, clean.data(), clean.size()), 0u);
}

TEST(FaultInjectorBasics, BitFlipAltersEveryChosenElement) {
  FaultInjector injector;
  injector.configure("seed=9,bitflip@0:at=1:frac=1.0");
  std::vector<double> data(64);
  for (std::size_t e = 0; e < data.size(); ++e) data[e] = double(e) + 0.5;
  const std::vector<double> before = data;
  EXPECT_EQ(injector.corrupt_span(0, data.data(), data.size()), data.size());
  for (std::size_t e = 0; e < data.size(); ++e) {
    EXPECT_NE(std::memcmp(&data[e], &before[e], sizeof(double)), 0)
        << "element " << e;
  }
}

// ---------------------------------------------------------------------
// The hard invariant: an FP64 run surviving injected transient faults
// and a permanent device loss is bit-identical to the fault-free run.
// ---------------------------------------------------------------------

TEST(ResilientScheduler, Fp64SurvivesFaultsBitIdentically) {
  const auto data = small_dataset();
  MatrixProfileConfig config;
  config.window = 16;
  config.mode = PrecisionMode::FP64;
  config.tiles = 8;
  config.devices = 2;

  const auto clean = compute_matrix_profile(data.reference, data.query,
                                            config);
  EXPECT_FALSE(clean.health.degraded);
  EXPECT_EQ(clean.health.faults_injected, 0);

  // Three transient kernel faults on device 0 plus a permanent loss of
  // device 1 partway through its kernel stream.
  FaultInjector injector;
  injector.configure(
      "seed=5,kernel@0:at=4,kernel@0:at=11,kernel@0:at=27,offline@1:at=40");
  config.fault_injector = &injector;
  const auto faulty = compute_matrix_profile(data.reference, data.query,
                                             config);

  EXPECT_EQ(faulty.profile, clean.profile);
  EXPECT_EQ(faulty.index, clean.index);

  const RunHealth& health = faulty.health;
  EXPECT_TRUE(health.degraded);
  EXPECT_GE(health.faults_injected, 4);
  EXPECT_GE(health.retries, 3);
  EXPECT_GE(health.blacklist_events, 1);
  EXPECT_GE(health.reassigned_tiles, 1);
  ASSERT_EQ(health.devices.size(), 2u);
  EXPECT_TRUE(health.devices[1].blacklisted);
  EXPECT_TRUE(health.devices[1].offline);
  EXPECT_FALSE(health.devices[0].blacklisted);
  EXPECT_FALSE(health.events.empty());
  // Typed events: the retry lines carry the tile/device they happened on.
  bool saw_retry = false;
  for (const auto& event : health.events) {
    if (event.kind == RunEvent::Kind::kRetry) {
      saw_retry = true;
      EXPECT_GE(event.tile_id, 0);
      EXPECT_GE(event.device, 0);
      EXPECT_NE(event.to_string().find("retry"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_retry);
  EXPECT_TRUE(injector.device_offline(1));
  EXPECT_EQ(health.escalations.size(), 0u);
}

TEST(ResilientScheduler, AllDevicesLostFallsBackToCpu) {
  const auto data = small_dataset(150, 2, 16, 7);
  MatrixProfileConfig config;
  config.window = 16;
  config.mode = PrecisionMode::FP64;
  config.tiles = 4;
  config.devices = 2;

  const auto clean = compute_matrix_profile(data.reference, data.query,
                                            config);

  FaultInjector injector;
  injector.configure("offline@0:at=1,offline@1:at=1");
  config.fault_injector = &injector;
  const auto faulty = compute_matrix_profile(data.reference, data.query,
                                             config);

  // The CPU reference path is bit-identical to the FP64 engine per tile,
  // so graceful degradation loses no accuracy at all.
  EXPECT_EQ(faulty.profile, clean.profile);
  EXPECT_EQ(faulty.index, clean.index);
  EXPECT_TRUE(faulty.health.degraded);
  EXPECT_GE(faulty.health.cpu_fallback_tiles, 4);
  EXPECT_EQ(faulty.health.blacklist_events, 2);
  EXPECT_TRUE(faulty.health.devices[0].offline);
  EXPECT_TRUE(faulty.health.devices[1].offline);
  // No device ran anything to completion.
  EXPECT_EQ(faulty.health.devices[0].tiles_completed, 0);
  EXPECT_EQ(faulty.health.devices[1].tiles_completed, 0);
  EXPECT_EQ(faulty.modeled_device_seconds, 0.0);
}

TEST(ResilientScheduler, CpuFallbackCanBeDisabled) {
  const auto data = small_dataset(100, 2, 16, 8);
  MatrixProfileConfig config;
  config.window = 16;
  config.tiles = 2;
  config.resilience.cpu_fallback = false;

  FaultInjector injector;
  injector.configure("offline@0:at=1");
  config.fault_injector = &injector;
  EXPECT_THROW(compute_matrix_profile(data.reference, data.query, config),
               Error);
}

// ---------------------------------------------------------------------
// Numerical self-healing: NaN-poisoned FP16 tiles escalate and re-run.
// ---------------------------------------------------------------------

TEST(ResilientScheduler, NanPoisonedFp16TileEscalates) {
  const auto data = small_dataset(150, 2, 16, 9);
  MatrixProfileConfig config;
  config.window = 16;
  config.mode = PrecisionMode::FP16;
  config.tiles = 1;
  config.resilience.escalate_precision = true;

  // Poison 20% of the first staged reference buffer: nearly every window
  // overlaps a NaN, so the whole tile profile goes non-finite.
  FaultInjector injector;
  injector.configure("seed=3,nan@0:at=1:frac=0.2");
  config.fault_injector = &injector;
  const auto result = compute_matrix_profile(data.reference, data.query,
                                             config);

  ASSERT_GE(result.health.escalations.size(), 1u);
  EXPECT_EQ(result.health.escalations[0].from, PrecisionMode::FP16);
  EXPECT_EQ(result.health.escalations[0].to, PrecisionMode::Mixed);
  EXPECT_GT(result.health.escalations[0].non_finite_fraction,
            config.resilience.non_finite_threshold);
  // The re-run is clean: the poison rule was a one-shot.
  EXPECT_LE(non_finite_fraction(result.profile),
            config.resilience.non_finite_threshold);
}

TEST(ResilientScheduler, EscalationLadderStopsAtFp64) {
  EXPECT_EQ(escalated_precision(PrecisionMode::FP16), PrecisionMode::Mixed);
  EXPECT_EQ(escalated_precision(PrecisionMode::Mixed), PrecisionMode::FP32);
  EXPECT_EQ(escalated_precision(PrecisionMode::FP32), PrecisionMode::FP64);
  EXPECT_EQ(escalated_precision(PrecisionMode::FP64), PrecisionMode::FP64);
}

TEST(ResilientScheduler, EscalationOffByDefaultKeepsReducedPrecision) {
  const auto data = small_dataset(120, 2, 16, 10);
  MatrixProfileConfig config;
  config.window = 16;
  config.mode = PrecisionMode::FP16;
  config.tiles = 1;

  FaultInjector injector;
  injector.configure("seed=3,nan@0:at=1:frac=0.2");
  config.fault_injector = &injector;
  const auto result = compute_matrix_profile(data.reference, data.query,
                                             config);
  EXPECT_EQ(result.health.escalations.size(), 0u);
}

// ---------------------------------------------------------------------
// Hangs, the watchdog, and speculative re-execution.
// ---------------------------------------------------------------------

TEST(FaultInjectorBasics, SlowdownStallsButReturns) {
  FaultInjector injector;
  injector.configure("slow@0:at=1:ms=30");
  Stopwatch sw;
  EXPECT_NO_THROW(injector.fire(FaultSite::kKernelLaunch, 0, "k"));
  EXPECT_GE(sw.seconds(), 0.025);
  ASSERT_EQ(injector.events().size(), 1u);
  EXPECT_EQ(injector.events()[0].kind, FaultKind::kSlowdown);
}

TEST(FaultInjectorBasics, HangIsCancellable) {
  FaultInjector injector;
  injector.configure("hang@0:at=1:ms=60000");
  gpusim::CancellationToken token;
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    token.cancel();
  });
  Stopwatch sw;
  EXPECT_THROW(injector.fire(FaultSite::kKernelLaunch, 0, "k", &token),
               CancelledError);
  canceller.join();
  // The minute-long stall unwound within the cancellation latency, not
  // the rule's duration.
  EXPECT_LT(sw.seconds(), 10.0);
}

TEST(FaultInjectorBasics, HangDoesNotStallOtherDevices) {
  // The stall must happen outside the injector's lock: while device 0
  // hangs, device 1's fault points keep flowing.
  FaultInjector injector;
  injector.configure("hang@0:at=1:ms=400");
  std::thread hung([&injector] {
    injector.fire(FaultSite::kKernelLaunch, 0, "k");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Stopwatch sw;
  EXPECT_NO_THROW(injector.fire(FaultSite::kKernelLaunch, 1, "k"));
  EXPECT_LT(sw.seconds(), 0.2);
  hung.join();
}

TEST(ResilientScheduler, WatchdogSpeculationBeatsHungDevice) {
  const auto data = small_dataset(160, 2, 16, 11);
  MatrixProfileConfig config;
  config.window = 16;
  config.mode = PrecisionMode::FP64;
  config.tiles = 4;
  config.devices = 2;
  config.resilience.watchdog = true;
  config.resilience.watchdog_poll_ms = 5.0;

  const auto clean = compute_matrix_profile(data.reference, data.query,
                                            config);

  // Device 0's second kernel launch stalls for a minute — without the
  // watchdog the run would take that long.  The backup on device 1 wins
  // and the hung attempt is cancelled, so the whole run stays well under
  // the stall duration.
  FaultInjector injector;
  injector.configure("hang@0:at=2:ms=60000");
  config.fault_injector = &injector;
  Stopwatch sw;
  const auto faulty = compute_matrix_profile(data.reference, data.query,
                                             config);
  EXPECT_LT(sw.seconds(), 30.0);

  EXPECT_EQ(faulty.profile, clean.profile);
  EXPECT_EQ(faulty.index, clean.index);
  EXPECT_TRUE(faulty.health.degraded);
  EXPECT_GE(faulty.health.watchdog_fires, 1);
  EXPECT_GE(faulty.health.speculative_wins + faulty.health.retries, 1);
  bool saw_fire = false;
  for (const auto& event : faulty.health.events) {
    if (event.kind == RunEvent::Kind::kWatchdogFired) {
      saw_fire = true;
      EXPECT_EQ(event.device, 0);
      EXPECT_NE(event.to_string().find("watchdog"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_fire);
}

TEST(ResilientScheduler, RepeatedHangsBlacklistTheDevice) {
  const auto data = small_dataset(160, 2, 16, 12);
  MatrixProfileConfig config;
  config.window = 16;
  config.mode = PrecisionMode::FP64;
  config.tiles = 6;
  config.devices = 2;
  config.resilience.watchdog = true;
  config.resilience.watchdog_poll_ms = 5.0;
  config.resilience.blacklist_after = 2;

  const auto clean = compute_matrix_profile(data.reference, data.query,
                                            config);

  // Every kernel launch on device 0 hangs: after blacklist_after deadline
  // overruns the device is dropped and its tiles finish on device 1.
  FaultInjector injector;
  injector.configure("hang@0:every=1:ms=60000");
  config.fault_injector = &injector;
  Stopwatch sw;
  const auto faulty = compute_matrix_profile(data.reference, data.query,
                                             config);
  EXPECT_LT(sw.seconds(), 60.0);

  EXPECT_EQ(faulty.profile, clean.profile);
  EXPECT_EQ(faulty.index, clean.index);
  EXPECT_GE(faulty.health.watchdog_fires, 2);
  ASSERT_EQ(faulty.health.devices.size(), 2u);
  EXPECT_TRUE(faulty.health.devices[0].blacklisted);
  EXPECT_FALSE(faulty.health.devices[0].offline);
  EXPECT_EQ(faulty.health.devices[0].tiles_completed, 0);
  EXPECT_GE(faulty.health.devices[1].tiles_completed, 6);
}

// ---------------------------------------------------------------------
// Memory-pressure tile splitting.
// ---------------------------------------------------------------------

TEST(ResilientScheduler, MemoryPressureSplitsTileBitIdentically) {
  const auto data = small_dataset(200, 2, 16, 13);
  MatrixProfileConfig config;
  config.window = 16;
  config.mode = PrecisionMode::FP64;
  config.tiles = 1;

  // Measure the single-tile working set on an unconstrained device, then
  // rerun with the capacity one byte short of it: the tile cannot fit and
  // must split along the row axis instead of failing.
  gpusim::MachineSpec spec = gpusim::spec_by_name("A100");
  spec.memory_capacity_bytes = 0;
  gpusim::System unlimited(spec, 1, 2);
  const auto one_tile = compute_matrix_profile(unlimited, data.reference,
                                               data.query, config);
  const std::size_t peak = unlimited.device(0).peak_bytes();
  ASSERT_GT(peak, 0u);

  // The splitter halves the row range on the planner's split_range
  // boundaries (first half takes the extra row), so one forced split of
  // the single tile is the planner's tiles=2 run (a 2x1 grid): each row
  // sub-tile restarts the QT recurrence from its own precalculation
  // exactly like a planner tile does.  That run is the bit-identity
  // baseline; the unsplit single-tile run legitimately differs, because
  // row partitioning changes where the recurrence restarts.
  MatrixProfileConfig two_tiles = config;
  two_tiles.tiles = 2;
  gpusim::System half_system(spec, 1, 2);
  const auto planner = compute_matrix_profile(half_system, data.reference,
                                              data.query, two_tiles);
  const std::size_t half_peak = half_system.device(0).peak_bytes();
  ASSERT_LT(half_peak, peak);

  // Capacity between the half-tile and full-tile working sets: the full
  // tile must split exactly once, and both halves must then fit.
  config.device_memory_bytes = half_peak + (peak - half_peak) / 2;
  const auto squeezed = compute_matrix_profile(data.reference, data.query,
                                               config);
  EXPECT_GE(squeezed.health.tile_splits, 1);
  EXPECT_TRUE(squeezed.health.degraded);
  EXPECT_EQ(squeezed.profile, planner.profile);
  EXPECT_EQ(squeezed.index, planner.index);
  EXPECT_EQ(squeezed.segments, one_tile.segments);
  bool saw_split = false;
  for (const auto& event : squeezed.health.events) {
    if (event.kind == RunEvent::Kind::kTileSplit) {
      saw_split = true;
      EXPECT_NE(event.to_string().find("memory pressure"),
                std::string::npos);
    }
  }
  EXPECT_TRUE(saw_split);
}

TEST(ResilientScheduler, HopelessMemoryPressureFallsBackToCpu) {
  const auto data = small_dataset(120, 2, 16, 14);
  MatrixProfileConfig config;
  config.window = 16;
  config.tiles = 1;
  // A few kilobytes cannot hold any sub-tile at any split depth; the
  // allocation failure ends up a normal fault and the CPU finishes.
  config.device_memory_bytes = 4096;
  const auto result = compute_matrix_profile(data.reference, data.query,
                                             config);
  EXPECT_GE(result.health.cpu_fallback_tiles, 1);

  MatrixProfileConfig unlimited = config;
  unlimited.device_memory_bytes = 0;
  const auto clean = compute_matrix_profile(data.reference, data.query,
                                            unlimited);
  EXPECT_EQ(result.profile, clean.profile);
  EXPECT_EQ(result.index, clean.index);
}

// ---------------------------------------------------------------------
// Merge semantics under corruption.
// ---------------------------------------------------------------------

TEST(TileMerge, NanTileValuesNeverDisplaceFiniteEntries) {
  // Two tiles covering the same query range: one clean, one poisoned.
  const std::size_t n_q = 4, d = 1;
  std::vector<Tile> tiles(2);
  tiles[0] = Tile{0, 4, 0, n_q, 0, 0};
  tiles[1] = Tile{4, 4, 0, n_q, 0, 1};

  std::vector<TileResult> results(2);
  results[0].profile = {1.0, 2.0, 3.0, 4.0};
  results[0].index = {0, 1, 2, 3};
  const double nan = std::numeric_limits<double>::quiet_NaN();
  results[1].profile = {nan, 0.5, nan,
                        std::numeric_limits<double>::infinity()};
  results[1].index = {4, 5, 6, 7};

  MatrixProfileResult out;
  merge_tile_results(tiles, results, n_q, d, out);
  EXPECT_EQ(out.profile[0], 1.0);  // NaN lost against finite
  EXPECT_EQ(out.index[0], 0);
  EXPECT_EQ(out.profile[1], 0.5);  // smaller finite value still wins
  EXPECT_EQ(out.index[1], 5);
  EXPECT_EQ(out.profile[2], 3.0);
  EXPECT_EQ(out.profile[3], 4.0);  // inf lost against finite

  // All-NaN column: the merge leaves the identity (+inf, -1) rather than
  // propagating NaN.
  results[0].profile[0] = nan;
  results[0].index[0] = -1;
  results[1].index[0] = -1;
  merge_tile_results(tiles, results, n_q, d, out);
  EXPECT_TRUE(std::isinf(out.profile[0]));
  EXPECT_EQ(out.index[0], -1);
}

TEST(TileMerge, NonFiniteFractionCountsNanAndInf) {
  EXPECT_DOUBLE_EQ(non_finite_fraction({}), 0.0);
  EXPECT_DOUBLE_EQ(non_finite_fraction({1.0, 2.0}), 0.0);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(non_finite_fraction({nan, inf, 1.0, 2.0}), 0.5);
}

}  // namespace
}  // namespace mpsim::mp
