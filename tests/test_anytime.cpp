// Tests for the anytime (SCRIMP-style) matrix profile engine.
#include <gtest/gtest.h>

#include <cmath>

#include "metrics/accuracy.hpp"
#include "mp/anytime.hpp"
#include "mp/cpu_reference.hpp"
#include "tsdata/synthetic.hpp"

namespace mpsim::mp {
namespace {

SyntheticDataset dataset(std::uint64_t seed = 1) {
  SyntheticSpec spec;
  spec.segments = 220;
  spec.dims = 3;
  spec.window = 16;
  spec.injections_per_dim = 2;
  spec.seed = seed;
  return make_synthetic_dataset(spec);
}

TEST(Anytime, CompletedRunMatchesCpuReferenceBitExact) {
  const auto data = dataset();
  AnytimeMatrixProfile anytime(data.reference, data.query, 16);
  anytime.finish();
  EXPECT_DOUBLE_EQ(anytime.completion(), 1.0);

  CpuReferenceConfig config;
  config.window = 16;
  const auto batch =
      compute_matrix_profile_cpu(data.reference, data.query, config);
  EXPECT_EQ(anytime.profile(), batch.profile);
  EXPECT_EQ(anytime.index(), batch.index);
}

TEST(Anytime, ProfileDecreasesMonotonically) {
  const auto data = dataset(2);
  AnytimeMatrixProfile anytime(data.reference, data.query, 16);
  std::vector<double> previous = anytime.profile();
  while (anytime.completion() < 1.0) {
    anytime.step(25);
    const auto& current = anytime.profile();
    for (std::size_t e = 0; e < current.size(); ++e) {
      EXPECT_LE(current[e], previous[e]) << "entry " << e;
    }
    previous = current;
  }
}

TEST(Anytime, PartialRunIsUpperBoundOfExact) {
  const auto data = dataset(3);
  AnytimeMatrixProfile anytime(data.reference, data.query, 16);
  anytime.step(anytime.total_diagonals() / 4);
  EXPECT_NEAR(anytime.completion(), 0.25, 0.01);

  CpuReferenceConfig config;
  config.window = 16;
  const auto exact =
      compute_matrix_profile_cpu(data.reference, data.query, config);
  for (std::size_t e = 0; e < exact.profile.size(); ++e) {
    EXPECT_GE(anytime.profile()[e], exact.profile[e] - 1e-12);
  }
}

TEST(Anytime, ConvergesFastOnAccuracy) {
  // SCRIMP's selling point: high relative accuracy long before
  // completion.  At 40% of the diagonals, A vs the exact profile should
  // already exceed 90%.
  const auto data = dataset(4);
  AnytimeMatrixProfile anytime(data.reference, data.query, 16);
  anytime.step(anytime.total_diagonals() * 4 / 10);

  CpuReferenceConfig config;
  config.window = 16;
  const auto exact =
      compute_matrix_profile_cpu(data.reference, data.query, config);
  EXPECT_GT(metrics::relative_accuracy(anytime.profile(), exact.profile),
            0.9);
}

TEST(Anytime, ConvergenceSignalDecays) {
  const auto data = dataset(5);
  AnytimeMatrixProfile anytime(data.reference, data.query, 16);
  const std::size_t chunk = anytime.total_diagonals() / 4;
  const double first = anytime.step(chunk);
  anytime.step(chunk);
  anytime.step(chunk);
  const double last = anytime.step(anytime.total_diagonals());
  EXPECT_GT(first, last);
  // A finished engine reports no further improvement.
  EXPECT_DOUBLE_EQ(anytime.step(10), 0.0);
}

TEST(Anytime, DeterministicForSameSeed) {
  const auto data = dataset(6);
  AnytimeMatrixProfile a(data.reference, data.query, 16, 42);
  AnytimeMatrixProfile b(data.reference, data.query, 16, 42);
  a.step(100);
  b.step(100);
  EXPECT_EQ(a.profile(), b.profile());
  AnytimeMatrixProfile c(data.reference, data.query, 16, 43);
  c.step(100);
  EXPECT_NE(a.profile(), c.profile());  // different diagonal order
}

TEST(Anytime, ValidatesInput) {
  const auto data = dataset(7);
  EXPECT_THROW(AnytimeMatrixProfile(data.reference, data.query, 2), Error);
  TimeSeries mismatched(data.query.length(), data.query.dims() + 1);
  EXPECT_THROW(AnytimeMatrixProfile(data.reference, mismatched, 16), Error);
}

}  // namespace
}  // namespace mpsim::mp
