// Correctness tests of the matrix-profile engines: the FP64 GPU simulator
// must agree bit-for-bit with the CPU reference (as the paper reports) and
// within tolerance with the independent brute-force oracle; multi-tile
// execution must merge to the single-tile result; self-join exclusion and
// argmin tie-breaking must hold.
#include <gtest/gtest.h>

#include <cmath>

#include "mp/brute_force.hpp"
#include "mp/cpu_reference.hpp"
#include "mp/matrix_profile.hpp"
#include "tsdata/synthetic.hpp"

namespace mpsim::mp {
namespace {

SyntheticDataset small_dataset(std::size_t segments = 256, std::size_t dims = 4,
                               std::size_t window = 16,
                               std::uint64_t seed = 11) {
  SyntheticSpec spec;
  spec.segments = segments;
  spec.dims = dims;
  spec.window = window;
  spec.injections_per_dim = 2;
  spec.seed = seed;
  return make_synthetic_dataset(spec);
}

MatrixProfileConfig fp64_config(std::size_t window) {
  MatrixProfileConfig c;
  c.window = window;
  c.mode = PrecisionMode::FP64;
  return c;
}

TEST(MatrixProfileFp64, MatchesCpuReferenceBitExact) {
  const auto data = small_dataset();
  const auto gpu = compute_matrix_profile(data.reference, data.query,
                                          fp64_config(16));
  CpuReferenceConfig cpu_config;
  cpu_config.window = 16;
  const auto cpu =
      compute_matrix_profile_cpu(data.reference, data.query, cpu_config);

  ASSERT_EQ(gpu.profile.size(), cpu.profile.size());
  for (std::size_t e = 0; e < gpu.profile.size(); ++e) {
    EXPECT_EQ(gpu.profile[e], cpu.profile[e]) << "entry " << e;
    EXPECT_EQ(gpu.index[e], cpu.index[e]) << "entry " << e;
  }
}

TEST(MatrixProfileFp64, MatchesBruteForceOracle) {
  const auto data = small_dataset(128, 3, 12, 21);
  const auto gpu = compute_matrix_profile(data.reference, data.query,
                                          fp64_config(12));
  const auto oracle =
      compute_matrix_profile_brute_force(data.reference, data.query, 12);

  ASSERT_EQ(gpu.profile.size(), oracle.profile.size());
  std::size_t index_mismatches = 0;
  for (std::size_t e = 0; e < gpu.profile.size(); ++e) {
    EXPECT_NEAR(gpu.profile[e], oracle.profile[e], 1e-7) << "entry " << e;
    if (gpu.index[e] != oracle.index[e]) ++index_mismatches;
  }
  // Ties broken in a different summation order may flip an index on
  // exactly-equal distances; anything beyond a stray disagreement is a bug.
  EXPECT_LE(index_mismatches, gpu.profile.size() / 100);
}

TEST(MatrixProfileFp64, ProfileIsMonotoneAcrossDimensions) {
  // D''[k] is an average over the k+1 *smallest* per-dimension distances,
  // so adding dimensions can only grow each column's profile value.
  const auto data = small_dataset(200, 6, 16, 33);
  const auto r = compute_matrix_profile(data.reference, data.query,
                                        fp64_config(16));
  for (std::size_t j = 0; j < r.segments; ++j) {
    for (std::size_t k = 1; k < r.dims; ++k) {
      EXPECT_GE(r.at(j, k), r.at(j, k - 1) - 1e-12)
          << "column " << j << " dim " << k;
    }
  }
}

TEST(MatrixProfileFp64, SelfJoinWithoutExclusionIsZero) {
  // Joining a series against itself with no exclusion zone: every segment
  // matches itself at distance 0.
  const auto data = small_dataset(128, 2, 16, 5);
  const auto r = compute_matrix_profile(data.query, data.query,
                                        fp64_config(16));
  std::size_t self_indexed = 0;
  for (std::size_t j = 0; j < r.segments; ++j) {
    EXPECT_NEAR(r.at(j, 0), 0.0, 1e-6);
    if (r.index_at(j, 0) == std::int64_t(j)) ++self_indexed;
  }
  // Rounding can produce a sub-1e-7 distance to a *different* segment for
  // a handful of columns; the vast majority must still match themselves.
  EXPECT_GT(double(self_indexed) / double(r.segments), 0.95);
}

TEST(MatrixProfileFp64, ExclusionZoneSuppressesTrivialMatches) {
  const auto data = small_dataset(128, 2, 16, 6);
  auto config = fp64_config(16);
  config.exclusion = 8;  // m/2, the usual self-join exclusion
  const auto r = compute_matrix_profile(data.query, data.query, config);
  for (std::size_t j = 0; j < r.segments; ++j) {
    for (std::size_t k = 0; k < r.dims; ++k) {
      const auto idx = r.index_at(j, k);
      ASSERT_GE(idx, 0);
      EXPECT_GE(std::llabs(idx - std::int64_t(j)), 8)
          << "trivial match at column " << j;
    }
  }
  // And the CPU reference agrees under the same exclusion.
  CpuReferenceConfig cpu_config;
  cpu_config.window = 16;
  cpu_config.exclusion = 8;
  const auto cpu = compute_matrix_profile_cpu(data.query, data.query,
                                              cpu_config);
  EXPECT_EQ(r.profile, cpu.profile);
  EXPECT_EQ(r.index, cpu.index);
}

class MultiTileEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(MultiTileEquivalence, Fp64TilingPreservesResults) {
  const int ntiles = GetParam();
  const auto data = small_dataset(220, 3, 16, 44);
  const auto single = compute_matrix_profile(data.reference, data.query,
                                             fp64_config(16));
  auto config = fp64_config(16);
  config.tiles = ntiles;
  const auto tiled =
      compute_matrix_profile(data.reference, data.query, config);

  ASSERT_EQ(tiled.profile.size(), single.profile.size());
  std::size_t index_mismatches = 0;
  for (std::size_t e = 0; e < single.profile.size(); ++e) {
    // Tile-local precalculation restarts the cumulative sums, so FP64
    // values may differ in the last ulps; indices must stay put except on
    // exact ties.
    EXPECT_NEAR(tiled.profile[e], single.profile[e],
                1e-9 * (1.0 + std::fabs(single.profile[e])))
        << "entry " << e;
    if (tiled.index[e] != single.index[e]) ++index_mismatches;
  }
  EXPECT_LE(index_mismatches, single.profile.size() / 100);
}

INSTANTIATE_TEST_SUITE_P(TileCounts, MultiTileEquivalence,
                         ::testing::Values(2, 3, 4, 7, 16, 25));

TEST(MultiTile, MultiDeviceMatchesSingleDevice) {
  const auto data = small_dataset(200, 2, 16, 55);
  auto config = fp64_config(16);
  config.tiles = 8;
  config.devices = 1;
  const auto one = compute_matrix_profile(data.reference, data.query, config);
  config.devices = 4;
  const auto four = compute_matrix_profile(data.reference, data.query, config);
  EXPECT_EQ(one.profile, four.profile);
  EXPECT_EQ(one.index, four.index);
}

TEST(MultiTile, StreamCountDoesNotChangeResults) {
  const auto data = small_dataset(150, 2, 16, 66);
  auto config = fp64_config(16);
  config.tiles = 6;
  config.streams_per_device = 1;
  const auto serial = compute_matrix_profile(data.reference, data.query,
                                             config);
  config.streams_per_device = 16;
  const auto streamed = compute_matrix_profile(data.reference, data.query,
                                               config);
  EXPECT_EQ(serial.profile, streamed.profile);
  EXPECT_EQ(serial.index, streamed.index);
}

TEST(MatrixProfile, AsymmetricReferenceAndQueryLengths) {
  SyntheticSpec spec;
  spec.segments = 300;
  spec.dims = 2;
  spec.window = 16;
  spec.injections_per_dim = 1;
  const auto data = make_synthetic_dataset(spec);
  const TimeSeries shorter = data.reference.slice(0, 120 + 16 - 1);
  const auto r = compute_matrix_profile(shorter, data.query, fp64_config(16));
  EXPECT_EQ(r.segments, data.query.segment_count(16));
  for (std::size_t e = 0; e < r.index.size(); ++e) {
    EXPECT_GE(r.index[e], 0);
    EXPECT_LT(r.index[e], 120);
  }
  const auto oracle =
      compute_matrix_profile_brute_force(shorter, data.query, 16);
  for (std::size_t e = 0; e < r.profile.size(); ++e) {
    EXPECT_NEAR(r.profile[e], oracle.profile[e], 1e-7);
  }
}

TEST(MatrixProfile, IndicesAlwaysInReferenceRange) {
  const auto data = small_dataset(180, 3, 16, 77);
  auto config = fp64_config(16);
  config.tiles = 9;
  const auto r = compute_matrix_profile(data.reference, data.query, config);
  const auto nr = std::int64_t(data.reference.segment_count(16));
  for (const auto idx : r.index) {
    EXPECT_GE(idx, 0);
    EXPECT_LT(idx, nr);
  }
}

TEST(MatrixProfile, ValidatesConfiguration) {
  const auto data = small_dataset(128, 2, 16, 88);
  MatrixProfileConfig config;
  config.window = 2;  // too small
  EXPECT_THROW(compute_matrix_profile(data.reference, data.query, config),
               ConfigError);
  config.window = 16;
  config.tiles = 0;
  EXPECT_THROW(compute_matrix_profile(data.reference, data.query, config),
               ConfigError);
  config.tiles = 1;
  config.streams_per_device = 17;
  EXPECT_THROW(compute_matrix_profile(data.reference, data.query, config),
               ConfigError);
  config.streams_per_device = 16;
  config.window = 100000;
  EXPECT_THROW(compute_matrix_profile(data.reference, data.query, config),
               ConfigError);

  TimeSeries mismatched(data.query.length(), data.query.dims() + 1);
  config.window = 16;
  EXPECT_THROW(compute_matrix_profile(data.reference, mismatched, config),
               ConfigError);
}

TEST(MatrixProfile, BreakdownContainsAllFourKernels) {
  const auto data = small_dataset(100, 2, 16, 99);
  const auto r = compute_matrix_profile(data.reference, data.query,
                                        fp64_config(16));
  std::set<std::string> names;
  for (const auto& entry : r.breakdown) names.insert(entry.name);
  EXPECT_TRUE(names.count("precalculation"));
  EXPECT_TRUE(names.count("dist_calc"));
  EXPECT_TRUE(names.count("sort_&_incl_scan"));
  EXPECT_TRUE(names.count("update_mat_prof"));
  EXPECT_TRUE(names.count("memcpy_h2d"));
  EXPECT_GT(r.modeled_device_seconds, 0.0);
  EXPECT_GT(r.wall_seconds, 0.0);
}

TEST(MatrixProfileFp64, SingleDimensionFastPathSkipsSortKernel) {
  // d = 1: sorting one value per column is the identity, so the engine
  // drops the kernel (the paper's turbine case study setting).  Results
  // must still match the CPU reference bit-for-bit.
  const auto data = small_dataset(200, 1, 16, 3);
  const auto gpu = compute_matrix_profile(data.reference, data.query,
                                          fp64_config(16));
  for (const auto& entry : gpu.breakdown) {
    EXPECT_NE(entry.name, "sort_&_incl_scan") << "d=1 must skip the sort";
  }
  CpuReferenceConfig cpu_config;
  cpu_config.window = 16;
  const auto cpu =
      compute_matrix_profile_cpu(data.reference, data.query, cpu_config);
  EXPECT_EQ(gpu.profile, cpu.profile);
  EXPECT_EQ(gpu.index, cpu.index);
}

TEST(CpuReference, ThreadCountDoesNotChangeResults) {
  const auto data = small_dataset(160, 3, 16, 12);
  CpuReferenceConfig one;
  one.window = 16;
  one.threads = 1;
  CpuReferenceConfig two;
  two.window = 16;
  two.threads = 2;
  const auto a = compute_matrix_profile_cpu(data.reference, data.query, one);
  const auto b = compute_matrix_profile_cpu(data.reference, data.query, two);
  EXPECT_EQ(a.profile, b.profile);
  EXPECT_EQ(a.index, b.index);
}

TEST(CpuReference, ModeledTimeScalesQuadraticallyWithSegments) {
  const double t1 = modeled_cpu_seconds(1 << 12, 1 << 12, 16, 64);
  const double t2 = modeled_cpu_seconds(1 << 13, 1 << 13, 16, 64);
  EXPECT_NEAR(t2 / t1, 4.0, 0.3);
}

TEST(BruteForce, ZnormDistanceBasics) {
  // Identical segments: distance 0; anti-correlated: sqrt(4m).
  std::vector<double> a{1, 2, 3, 4, 3, 2, 1, 2};
  std::vector<double> b(a);
  EXPECT_NEAR(znormalized_distance(a.data(), b.data(), a.size()), 0.0, 1e-9);
  std::vector<double> c(a.size());
  for (std::size_t t = 0; t < a.size(); ++t) c[t] = -a[t];
  EXPECT_NEAR(znormalized_distance(a.data(), c.data(), a.size()),
              std::sqrt(4.0 * double(a.size())), 1e-9);
  // Scale/offset invariance of z-normalisation.
  std::vector<double> scaled(a.size());
  for (std::size_t t = 0; t < a.size(); ++t) scaled[t] = 5.0 * a[t] + 100.0;
  EXPECT_NEAR(znormalized_distance(a.data(), scaled.data(), a.size()), 0.0,
              1e-7);
}

}  // namespace
}  // namespace mpsim::mp
