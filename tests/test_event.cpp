// Tests for Event-based cross-stream synchronisation, self-join API and
// the z-normalisation utilities.
#include <gtest/gtest.h>

#include <atomic>

#include "gpusim/event.hpp"
#include "mp/matrix_profile.hpp"
#include "tsdata/synthetic.hpp"
#include "tsdata/znorm.hpp"

namespace mpsim {
namespace {

TEST(Event, HostSynchronizeWaitsForStreamWork) {
  gpusim::Device device(gpusim::a100(), 0, 1);
  gpusim::Stream stream(device);
  std::atomic<int> value{0};
  stream.enqueue([&] { value = 7; });
  gpusim::Event event;
  event.record(stream);
  event.synchronize();
  EXPECT_EQ(value.load(), 7);
  EXPECT_TRUE(event.query());
}

TEST(Event, QueryFalseBeforeRecordExecutes) {
  gpusim::Event event;
  EXPECT_FALSE(event.query());
}

TEST(Event, CrossStreamDependencyOrdersWork) {
  gpusim::Device device(gpusim::a100(), 0, 2);
  gpusim::Stream producer(device);
  gpusim::Stream consumer(device);

  std::atomic<int> stage{0};
  gpusim::Event ready;
  producer.enqueue([&] {
    // Simulated long-running upload.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    stage = 1;
  });
  ready.record(producer);
  ready.wait(consumer);
  std::atomic<int> observed{-1};
  consumer.enqueue([&] { observed = stage.load(); });
  consumer.synchronize();
  EXPECT_EQ(observed.load(), 1);  // consumer saw the producer's result
}

TEST(Event, ReRecordingReArms) {
  gpusim::Device device(gpusim::a100(), 0, 1);
  gpusim::Stream stream(device);
  gpusim::Event event;
  event.record(stream);
  event.synchronize();
  EXPECT_TRUE(event.query());
  event.record(stream);  // new marker
  event.synchronize();
  EXPECT_TRUE(event.query());
}

TEST(SelfJoin, DefaultsToHalfWindowExclusion) {
  SyntheticSpec spec;
  spec.segments = 200;
  spec.dims = 2;
  spec.window = 16;
  spec.injections_per_dim = 1;
  const auto data = make_synthetic_dataset(spec);

  mp::MatrixProfileConfig config;
  config.window = 16;
  const auto r = mp::compute_self_join(data.query, config);
  for (std::size_t j = 0; j < r.segments; ++j) {
    const auto idx = r.index_at(j, 0);
    ASSERT_GE(idx, 0);
    EXPECT_GE(std::llabs(idx - std::int64_t(j)), 8);
  }

  // An explicit exclusion radius is respected instead.
  config.exclusion = 3;
  const auto tight = mp::compute_self_join(data.query, config);
  for (std::size_t j = 0; j < tight.segments; ++j) {
    EXPECT_GE(std::llabs(tight.index_at(j, 0) - std::int64_t(j)), 3);
  }
}

TEST(Znorm, SlidingStatsMatchDirect) {
  const std::vector<double> x{1, 2, 3, 4, 5, 4, 3, 2};
  const auto stats = sliding_stats(x, 4);
  ASSERT_EQ(stats.mean.size(), 5u);
  EXPECT_DOUBLE_EQ(stats.mean[0], 2.5);
  EXPECT_DOUBLE_EQ(stats.mean[4], 3.5);
  // norm of {1,2,3,4} around 2.5: sqrt(2.25+0.25+0.25+2.25) = sqrt(5).
  EXPECT_DOUBLE_EQ(stats.norm[0], std::sqrt(5.0));
}

TEST(Znorm, SegmentNormalisation) {
  const std::vector<double> x{10, 20, 30, 40};
  const auto z = znormalize_segment(x, 0, 4);
  double sum = 0.0, ssq = 0.0;
  for (double v : z) {
    sum += v;
    ssq += v * v;
  }
  EXPECT_NEAR(sum, 0.0, 1e-12);
  EXPECT_NEAR(ssq, 1.0, 1e-12);

  const std::vector<double> flat{5, 5, 5, 5};
  const auto zf = znormalize_segment(flat, 0, 4);
  for (double v : zf) EXPECT_DOUBLE_EQ(v, 0.0);

  EXPECT_THROW(znormalize_segment(x, 2, 4), Error);
}

TEST(Znorm, ScaleAndOffsetInvariance) {
  // Two affinely related segments z-normalise identically.
  const std::vector<double> a{1.0, 3.0, 2.0, 5.0, 4.0, 1.5};
  std::vector<double> b(a.size());
  for (std::size_t t = 0; t < a.size(); ++t) b[t] = 7.0 * a[t] - 100.0;
  const auto za = znormalize_segment(a, 0, a.size());
  const auto zb = znormalize_segment(b, 0, b.size());
  for (std::size_t t = 0; t < a.size(); ++t) {
    EXPECT_NEAR(za[t], zb[t], 1e-12);
  }
}

}  // namespace
}  // namespace mpsim
