// Tests for the FFT, MASS, and the STAMP-style oracle built on them —
// the algorithmically independent third validation path.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/rng.hpp"
#include "mp/brute_force.hpp"
#include "mp/mass.hpp"
#include "mp/matrix_profile.hpp"
#include "tsdata/synthetic.hpp"

namespace mpsim::mp {
namespace {

TEST(Fft, RoundTripRecoversInput) {
  Rng rng(1);
  std::vector<std::complex<double>> data(256);
  std::vector<std::complex<double>> original(256);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = {rng.normal(), rng.normal()};
    original[i] = data[i];
  }
  fft(data, false);
  fft(data, true);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real(), original[i].real(), 1e-10);
    EXPECT_NEAR(data[i].imag(), original[i].imag(), 1e-10);
  }
}

TEST(Fft, MatchesDftOnKnownSignals) {
  // Impulse: flat spectrum of ones.
  std::vector<std::complex<double>> impulse(8, 0.0);
  impulse[0] = 1.0;
  fft(impulse, false);
  for (const auto& x : impulse) {
    EXPECT_NEAR(x.real(), 1.0, 1e-12);
    EXPECT_NEAR(x.imag(), 0.0, 1e-12);
  }
  // Pure tone: a single spectral line of magnitude n.
  const std::size_t n = 64;
  std::vector<std::complex<double>> tone(n);
  for (std::size_t t = 0; t < n; ++t) {
    tone[t] = std::cos(2.0 * std::numbers::pi * 5.0 * double(t) / double(n));
  }
  fft(tone, false);
  for (std::size_t f = 0; f < n; ++f) {
    const double expected = (f == 5 || f == n - 5) ? double(n) / 2.0 : 0.0;
    EXPECT_NEAR(std::abs(tone[f]), expected, 1e-9) << "bin " << f;
  }
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<std::complex<double>> data(12);
  EXPECT_THROW(fft(data, false), Error);
}

TEST(SlidingDots, MatchesDirectComputation) {
  Rng rng(2);
  std::vector<double> series(300), query(24);
  for (auto& v : series) v = rng.normal();
  for (auto& v : query) v = rng.normal();
  const auto dots = sliding_dot_products(series, query);
  ASSERT_EQ(dots.size(), series.size() - query.size() + 1);
  for (std::size_t i = 0; i < dots.size(); ++i) {
    double direct = 0.0;
    for (std::size_t t = 0; t < query.size(); ++t) {
      direct += series[i + t] * query[t];
    }
    EXPECT_NEAR(dots[i], direct, 1e-8) << "alignment " << i;
  }
}

TEST(Mass, MatchesBruteForceZnormDistances) {
  Rng rng(3);
  const std::size_t m = 16;
  std::vector<double> series(200), segment(m);
  for (auto& v : series) v = rng.normal();
  for (auto& v : segment) v = rng.normal();
  const auto distances = mass(series, segment);
  for (std::size_t i = 0; i < distances.size(); ++i) {
    const double expected =
        znormalized_distance(series.data() + i, segment.data(), m);
    EXPECT_NEAR(distances[i], expected, 1e-7) << "segment " << i;
  }
}

TEST(Mass, SelfMatchIsZeroAndFlatIsSqrt2m) {
  std::vector<double> series(100);
  Rng rng(4);
  for (auto& v : series) v = rng.normal();
  std::vector<double> segment(series.begin() + 10, series.begin() + 26);
  const auto distances = mass(series, segment);
  EXPECT_NEAR(distances[10], 0.0, 1e-7);

  const std::vector<double> flat(16, 3.0);
  const auto vs_flat = mass(series, flat);
  for (const double dist : vs_flat) {
    EXPECT_NEAR(dist, std::sqrt(32.0), 1e-9);
  }
}

TEST(Stamp, MatchesStreamingEngineAndBruteForce) {
  SyntheticSpec spec;
  spec.segments = 160;
  spec.dims = 3;
  spec.window = 16;
  spec.injections_per_dim = 1;
  const auto data = make_synthetic_dataset(spec);

  const auto stamp =
      compute_matrix_profile_stamp(data.reference, data.query, 16);
  MatrixProfileConfig config;
  config.window = 16;
  const auto stomp = compute_matrix_profile(data.reference, data.query,
                                            config);
  const auto oracle =
      compute_matrix_profile_brute_force(data.reference, data.query, 16);

  ASSERT_EQ(stamp.profile.size(), stomp.profile.size());
  for (std::size_t e = 0; e < stamp.profile.size(); ++e) {
    // Three independent algorithms (FFT, streaming recurrence, direct
    // scan) agree on the profile.
    EXPECT_NEAR(stamp.profile[e], stomp.profile[e], 1e-6) << e;
    EXPECT_NEAR(stamp.profile[e], oracle.profile[e], 1e-6) << e;
  }
}

}  // namespace
}  // namespace mpsim::mp
