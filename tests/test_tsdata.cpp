// Tests for the time-series container, pattern primitives and all four
// dataset generators (synthetic stress test, HPC telemetry, genome,
// turbine), plus CSV I/O.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <set>

#include "common/error.hpp"
#include "tsdata/genome.hpp"
#include "tsdata/hpc_telemetry.hpp"
#include "tsdata/io.hpp"
#include "tsdata/patterns.hpp"
#include "tsdata/repair.hpp"
#include "tsdata/synthetic.hpp"
#include "tsdata/time_series.hpp"
#include "tsdata/turbine.hpp"

namespace mpsim {
namespace {

TEST(TimeSeries, DimensionMajorLayout) {
  TimeSeries ts(4, 3);
  ts.at(1, 2) = 42.0;
  EXPECT_DOUBLE_EQ(ts.raw()[2 * 4 + 1], 42.0);
  EXPECT_DOUBLE_EQ(ts.dim(2)[1], 42.0);
  EXPECT_EQ(ts.dim(0).size(), 4u);
}

TEST(TimeSeries, SegmentCount) {
  TimeSeries ts(100, 1);
  EXPECT_EQ(ts.segment_count(10), 91u);
  EXPECT_EQ(ts.segment_count(100), 1u);
  EXPECT_EQ(ts.segment_count(101), 0u);
}

TEST(TimeSeries, SliceCopiesAllDimensions) {
  TimeSeries ts(10, 2);
  for (std::size_t k = 0; k < 2; ++k) {
    for (std::size_t t = 0; t < 10; ++t) ts.at(t, k) = double(10 * k + t);
  }
  const TimeSeries s = ts.slice(3, 4);
  EXPECT_EQ(s.length(), 4u);
  EXPECT_DOUBLE_EQ(s.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(s.at(3, 1), 16.0);
  EXPECT_THROW(ts.slice(8, 5), Error);
}

TEST(TimeSeries, MinMaxNormalize) {
  TimeSeries ts(5, 2);
  for (std::size_t t = 0; t < 5; ++t) {
    ts.at(t, 0) = double(t);      // 0..4
    ts.at(t, 1) = 7.0;            // constant dimension
  }
  ts.min_max_normalize(0.0, 100.0);
  EXPECT_DOUBLE_EQ(ts.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(ts.at(4, 0), 100.0);
  EXPECT_DOUBLE_EQ(ts.at(2, 0), 50.0);
  EXPECT_DOUBLE_EQ(ts.at(3, 1), 0.0);  // constant maps to lo
}

TEST(TimeSeries, RejectsMismatchedData) {
  EXPECT_THROW(TimeSeries(4, 2, std::vector<double>(7)), Error);
  EXPECT_THROW(TimeSeries(4, 0), Error);
}

class PatternShapes : public ::testing::TestWithParam<int> {};

TEST_P(PatternShapes, BoundedAndNonConstant) {
  const auto shape = PatternShape(GetParam());
  const auto samples = sample_pattern(shape, 128);
  ASSERT_EQ(samples.size(), 128u);
  double lo = 1e9, hi = -1e9;
  for (double v : samples) {
    EXPECT_GE(v, -1.0 - 1e-12);
    EXPECT_LE(v, 1.0 + 1e-12);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_GT(hi - lo, 0.5) << "pattern " << pattern_name(shape)
                          << " is too flat to detect";
}

TEST_P(PatternShapes, HasDistinctName) {
  const auto shape = PatternShape(GetParam());
  EXPECT_NE(std::string(pattern_name(shape)), "invalid");
}

INSTANTIATE_TEST_SUITE_P(AllEight, PatternShapes,
                         ::testing::Range(0, int(kPatternCount)));

TEST(Patterns, ShapesAreMutuallyDistinct) {
  // Z-normalisation aside, the eight primitives must differ pairwise.
  for (int a = 0; a < int(kPatternCount); ++a) {
    for (int b = a + 1; b < int(kPatternCount); ++b) {
      const auto sa = sample_pattern(PatternShape(a), 64);
      const auto sb = sample_pattern(PatternShape(b), 64);
      double diff = 0.0;
      for (std::size_t t = 0; t < 64; ++t) diff += std::fabs(sa[t] - sb[t]);
      EXPECT_GT(diff, 1.0) << a << " vs " << b;
    }
  }
}

TEST(Synthetic, ShapesAndDeterminism) {
  SyntheticSpec spec;
  spec.segments = 512;
  spec.dims = 4;
  spec.window = 32;
  spec.injections_per_dim = 3;
  const auto d1 = make_synthetic_dataset(spec);
  const auto d2 = make_synthetic_dataset(spec);
  EXPECT_EQ(d1.reference.length(), spec.series_length());
  EXPECT_EQ(d1.reference.dims(), 4u);
  EXPECT_EQ(d1.injections.size(), 12u);
  EXPECT_EQ(d1.reference.raw(), d2.reference.raw());  // same seed
  spec.seed = 43;
  const auto d3 = make_synthetic_dataset(spec);
  EXPECT_NE(d1.reference.raw(), d3.reference.raw());
}

TEST(Synthetic, InjectionsAreInRangeAndSpaced) {
  SyntheticSpec spec;
  spec.segments = 1024;
  spec.dims = 2;
  spec.window = 32;
  spec.injections_per_dim = 8;
  const auto data = make_synthetic_dataset(spec);
  for (const auto& inj : data.injections) {
    EXPECT_LT(inj.query_position, spec.segments);
    EXPECT_LT(inj.reference_position, spec.segments);
  }
  // Per dimension, query positions must be spaced by >= 2 windows.
  for (std::size_t k = 0; k < spec.dims; ++k) {
    std::vector<std::size_t> q;
    for (const auto& inj : data.injections) {
      if (inj.dim == k) q.push_back(inj.query_position);
    }
    std::sort(q.begin(), q.end());
    for (std::size_t i = 1; i < q.size(); ++i) {
      EXPECT_GE(q[i] - q[i - 1], 2 * spec.window);
    }
  }
}

TEST(Synthetic, InjectedPatternIsPresentInSeries) {
  SyntheticSpec spec;
  spec.segments = 512;
  spec.dims = 1;
  spec.window = 64;
  spec.injections_per_dim = 1;
  spec.noise_sigma = 0.1;
  spec.shape = PatternShape::kSquare;
  const auto data = make_synthetic_dataset(spec);
  const auto& inj = data.injections.front();
  const auto pattern = sample_pattern(spec.shape, spec.window);
  double err = 0.0;
  for (std::size_t t = 0; t < spec.window; ++t) {
    err += std::fabs(data.query.at(inj.query_position + t, 0) - pattern[t]);
  }
  EXPECT_LT(err / double(spec.window), 0.1);  // only residual noise
}

TEST(Synthetic, RejectsImpossiblePlacements) {
  SyntheticSpec spec;
  spec.segments = 300;
  spec.window = 64;
  spec.dims = 1;
  spec.injections_per_dim = 50;  // cannot fit with 2-window spacing
  EXPECT_THROW(make_synthetic_dataset(spec), Error);
}

TEST(NoiseSeries, MomentsMatch) {
  const auto ts = make_noise_series(20000, 2, 0.5, 9);
  for (std::size_t k = 0; k < 2; ++k) {
    double sum = 0.0, sumsq = 0.0;
    for (double v : ts.dim(k)) {
      sum += v;
      sumsq += v * v;
    }
    const double mean = sum / double(ts.length());
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(sumsq / double(ts.length()) - mean * mean, 0.25, 0.02);
  }
}

TEST(RandomWalk, AccumulatesSteps) {
  const auto walk = make_random_walk_series(5000, 2, 1.0, 21);
  // A walk wanders: the terminal displacement should be of order
  // sqrt(length), far beyond white noise's O(1).
  double max_abs = 0.0;
  for (double v : walk.dim(0)) max_abs = std::max(max_abs, std::fabs(v));
  EXPECT_GT(max_abs, 10.0);
  // Steps are the configured size.
  double step_sq = 0.0;
  const auto d0 = walk.dim(0);
  for (std::size_t t = 1; t < walk.length(); ++t) {
    const double s = d0[t] - d0[t - 1];
    step_sq += s * s;
  }
  EXPECT_NEAR(step_sq / double(walk.length() - 1), 1.0, 0.1);
}

TEST(HpcTelemetry, LabelsCoverTimelineAndClasses) {
  HpcTelemetrySpec spec;
  spec.length = 8192;
  const auto data = make_hpc_telemetry(spec);
  EXPECT_EQ(data.series.length(), spec.length);
  EXPECT_EQ(data.series.dims(), 16u);
  EXPECT_EQ(data.labels.size(), spec.length);
  std::set<int> seen(data.labels.begin(), data.labels.end());
  EXPECT_GE(seen.size(), 4u);  // idle + several applications
  for (int label : data.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, int(kHpcAppClassCount));
  }
}

TEST(HpcTelemetry, ClassSignaturesAreSeparable) {
  // Mean sensor level during a phase must differ between classes —
  // otherwise the nearest-neighbour classifier cannot work even at FP64.
  HpcTelemetrySpec spec;
  spec.length = 16384;
  spec.noise_sigma = 0.0;
  const auto data = make_hpc_telemetry(spec);
  std::vector<double> mean(kHpcAppClassCount, 0.0);
  std::vector<int> count(kHpcAppClassCount, 0);
  for (std::size_t t = 0; t < spec.length; ++t) {
    mean[std::size_t(data.labels[t])] += data.series.at(t, 0);
    count[std::size_t(data.labels[t])] += 1;
  }
  std::vector<double> levels;
  for (std::size_t c = 0; c < kHpcAppClassCount; ++c) {
    if (count[c] > 100) levels.push_back(mean[c] / count[c]);
  }
  ASSERT_GE(levels.size(), 3u);
  std::sort(levels.begin(), levels.end());
  for (std::size_t i = 1; i < levels.size(); ++i) {
    EXPECT_GT(levels[i] - levels[i - 1], 1e-3);
  }
}

TEST(HpcTelemetry, ClassNames) {
  EXPECT_STREQ(hpc_app_class_name(HpcAppClass::kNone), "None");
  EXPECT_STREQ(hpc_app_class_name(HpcAppClass::kQuicksilver), "Quicksilver");
}

TEST(Genome, EncodingMatchesPaper) {
  // A->1, C->2, T->3, G->4 (§VI-B).
  EXPECT_DOUBLE_EQ(encode_base('A'), 1.0);
  EXPECT_DOUBLE_EQ(encode_base('C'), 2.0);
  EXPECT_DOUBLE_EQ(encode_base('T'), 3.0);
  EXPECT_DOUBLE_EQ(encode_base('G'), 4.0);
  EXPECT_DOUBLE_EQ(encode_base('g'), 4.0);
  EXPECT_THROW(encode_base('N'), Error);
  const auto enc = encode_genome("ACTG");
  EXPECT_EQ(enc, (std::vector<double>{1.0, 2.0, 3.0, 4.0}));
}

TEST(Genome, DatasetSharesSubstringsBetweenRefAndQuery) {
  GenomeSpec spec;
  spec.length = 4096;
  spec.chromosomes = 2;
  spec.shared_fraction = 1.0;  // every block copied
  spec.mutation_rate = 0.0;
  const auto data = make_genome_dataset(spec);
  // With pure copying and no mutations, every query block must appear
  // verbatim in the reference.
  const auto& ref = data.reference_bases[0];
  const auto& qry = data.query_bases[0];
  const std::string probe = qry.substr(100, 64);
  EXPECT_NE(ref.find(probe), std::string::npos);
  // Encoded series uses only the values 1..4.
  for (double v : data.query.dim(0)) {
    EXPECT_TRUE(v == 1.0 || v == 2.0 || v == 3.0 || v == 4.0);
  }
}

TEST(Genome, MutationRateControlsDivergence) {
  GenomeSpec spec;
  spec.length = 8192;
  spec.chromosomes = 1;
  spec.shared_fraction = 1.0;
  spec.mutation_rate = 0.5;
  const auto noisy = make_genome_dataset(spec);
  spec.mutation_rate = 0.0;
  const auto clean = make_genome_dataset(spec);
  // Clean copies: long verbatim matches exist; mutated: they mostly don't.
  const std::string probe_clean = clean.query_bases[0].substr(0, 64);
  EXPECT_NE(clean.reference_bases[0].find(probe_clean), std::string::npos);
  const std::string probe_noisy = noisy.query_bases[0].substr(0, 64);
  EXPECT_EQ(noisy.reference_bases[0].find(probe_noisy), std::string::npos);
}

TEST(Turbine, StartupShapesRiseToNominal) {
  for (auto shape : {StartupShape::kP1, StartupShape::kP2}) {
    EXPECT_LT(startup_value(shape, 0.0), 0.1);
    EXPECT_GT(startup_value(shape, 1.0), 0.9);
    // Monotone non-decreasing within tolerance.
    double prev = -1.0;
    for (int i = 0; i <= 100; ++i) {
      const double v = startup_value(shape, i / 100.0);
      EXPECT_GE(v, prev - 0.02);
      prev = v;
    }
  }
}

TEST(Turbine, P1HasIgnitionPlateauP2DoesNot) {
  // P1's staged startup holds near 20% mid-ramp; P2 passes through
  // smoothly — this is what makes the two classes distinguishable.
  const double p1_mid = startup_value(StartupShape::kP1, 0.4);
  EXPECT_NEAR(p1_mid, 0.21, 0.03);
  const double p2_mid = startup_value(StartupShape::kP2, 0.4);
  EXPECT_LT(p2_mid, 0.45);
  EXPECT_GT(startup_value(StartupShape::kP2, 0.6), 0.7);
}

TEST(Turbine, SeriesEmbedsRequestedEvents) {
  TurbineSpec spec;
  spec.segments = 4096;
  spec.window = 256;
  const auto t = make_turbine_series(spec, 1, 3, 2);
  EXPECT_EQ(t.p1_starts.size(), 3u);
  EXPECT_EQ(t.p2_starts.size(), 2u);
  EXPECT_EQ(t.series.dims(), 1u);
  // Min-max normalised to [0, 1] (avoids FP16 overflow, §VI-C).
  const auto [mn, mx] = std::minmax_element(t.series.dim(0).begin(),
                                            t.series.dim(0).end());
  EXPECT_DOUBLE_EQ(*mn, 0.0);
  EXPECT_DOUBLE_EQ(*mx, 1.0);
  // A startup event actually reaches high speed near its end.
  const std::size_t pos = t.p1_starts.front();
  double peak = 0.0;
  for (std::size_t u = 0; u < spec.window; ++u) {
    peak = std::max(peak, t.series.at(pos + u, 0));
  }
  EXPECT_GT(peak, 0.8);
}

TEST(Turbine, DifferentTurbinesDiffer) {
  TurbineSpec spec;
  spec.segments = 2048;
  spec.window = 128;
  const auto t1 = make_turbine_series(spec, 1, 2, 2);
  const auto t2 = make_turbine_series(spec, 2, 2, 2);
  EXPECT_NE(t1.series.raw(), t2.series.raw());
}

TEST(Repair, InterpolatesNonFiniteRuns) {
  TimeSeries ts(8, 2);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  // dim 0: 0 1 NaN NaN 4 5 inf 7  -> linear fills
  const double v0[] = {0, 1, nan, nan, 4, 5, inf, 7};
  // dim 1: NaN 2 3 4 5 6 7 NaN   -> edge extrapolation
  const double v1[] = {nan, 2, 3, 4, 5, 6, 7, nan};
  for (std::size_t t = 0; t < 8; ++t) {
    ts.at(t, 0) = v0[t];
    ts.at(t, 1) = v1[t];
  }
  const std::size_t fixed = repair_non_finite(ts);
  EXPECT_EQ(fixed, 5u);
  EXPECT_DOUBLE_EQ(ts.at(2, 0), 2.0);
  EXPECT_DOUBLE_EQ(ts.at(3, 0), 3.0);
  EXPECT_DOUBLE_EQ(ts.at(6, 0), 6.0);
  EXPECT_DOUBLE_EQ(ts.at(0, 1), 2.0);  // left edge copies neighbour
  EXPECT_DOUBLE_EQ(ts.at(7, 1), 7.0);  // right edge copies neighbour
  for (std::size_t k = 0; k < 2; ++k) {
    for (std::size_t t = 0; t < 8; ++t) {
      EXPECT_TRUE(std::isfinite(ts.at(t, k)));
    }
  }
}

TEST(Repair, AllNonFiniteDimensionZeroFills) {
  TimeSeries ts(4, 1);
  for (std::size_t t = 0; t < 4; ++t) {
    ts.at(t, 0) = std::numeric_limits<double>::quiet_NaN();
  }
  EXPECT_EQ(repair_non_finite(ts), 4u);
  for (std::size_t t = 0; t < 4; ++t) EXPECT_DOUBLE_EQ(ts.at(t, 0), 0.0);
}

TEST(Repair, CleanSeriesUntouched) {
  TimeSeries ts(6, 2);
  for (std::size_t k = 0; k < 2; ++k) {
    for (std::size_t t = 0; t < 6; ++t) ts.at(t, k) = double(t + k);
  }
  const TimeSeries before = ts;
  EXPECT_EQ(repair_non_finite(ts), 0u);
  EXPECT_EQ(ts.raw(), before.raw());
}

TEST(CsvIo, RoundTrip) {
  TimeSeries ts(16, 3);
  for (std::size_t k = 0; k < 3; ++k) {
    for (std::size_t t = 0; t < 16; ++t) {
      ts.at(t, k) = double(k) * 100.0 + double(t) * 0.125;
    }
  }
  const auto path =
      (std::filesystem::temp_directory_path() / "mpsim_io_test.csv").string();
  write_csv(path, ts);
  const TimeSeries back = read_csv(path);
  EXPECT_EQ(back.length(), 16u);
  EXPECT_EQ(back.dims(), 3u);
  EXPECT_EQ(back.raw(), ts.raw());
  std::remove(path.c_str());
}

TEST(CsvIo, HeaderlessAndErrors) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto path = (dir / "mpsim_io_noheader.csv").string();
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("1.5,2.5\n3.5,4.5\n", f);
    std::fclose(f);
  }
  const TimeSeries ts = read_csv(path);
  EXPECT_EQ(ts.length(), 2u);
  EXPECT_DOUBLE_EQ(ts.at(1, 1), 4.5);
  std::remove(path.c_str());
  EXPECT_THROW(read_csv((dir / "does_not_exist.csv").string()), Error);
}

TEST(CsvIo, CrlfLineEndingsAndBlankLines) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto path = (dir / "mpsim_io_crlf.csv").string();
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    // CRLF file: header row, a blank CRLF-only line mid-file, data rows.
    std::fputs("alpha,beta\r\n1.5,2.5\r\n\r\n3.5,4.5\r\n", f);
    std::fclose(f);
  }
  const TimeSeries ts = read_csv(path);
  EXPECT_EQ(ts.length(), 2u);
  EXPECT_EQ(ts.dims(), 2u);
  EXPECT_DOUBLE_EQ(ts.at(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(ts.at(1, 1), 4.5);
  std::remove(path.c_str());
}

TEST(CsvIo, TrailingCommaIsAnErrorWithLineNumber) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto path = (dir / "mpsim_io_trailing.csv").string();
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("1.0,2.0\n3.0,4.0,\n", f);
    std::fclose(f);
  }
  // The trailing comma makes row 2 a three-cell row: it must be rejected
  // (not silently read as two cells), and the error names the line.
  try {
    read_csv(path);
    FAIL() << "trailing comma did not raise";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(":2:"), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(CsvIo, NonNumericCellReportsLineNumber) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto path = (dir / "mpsim_io_nonnum.csv").string();
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("1.0,2.0\n3.0,oops\n", f);
    std::fclose(f);
  }
  try {
    read_csv(path);
    FAIL() << "non-numeric cell did not raise";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(":2:"), std::string::npos) << what;
    EXPECT_NE(what.find("oops"), std::string::npos) << what;
  }
  std::remove(path.c_str());
}

TEST(CsvIo, HeaderOnlyFileIsAnError) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto path = (dir / "mpsim_io_headeronly.csv").string();
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("alpha,beta\n", f);
    std::fclose(f);
  }
  EXPECT_THROW(read_csv(path), Error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mpsim
