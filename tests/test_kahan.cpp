// Tests for the accumulation policies: Kahan compensation must beat plain
// summation in reduced precision, and both must agree in exact cases.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "precision/float16.hpp"
#include "precision/kahan.hpp"

namespace mpsim {
namespace {

TEST(Kahan, ExactForSmallIntegerSums) {
  KahanAccumulator<double> acc;
  for (int i = 1; i <= 100; ++i) acc.add(double(i));
  EXPECT_DOUBLE_EQ(acc.value(), 5050.0);
}

TEST(Kahan, RecoversLostLowOrderBitsInDouble) {
  // 1 + 1e-16 * N: plain double summation loses every tiny addend;
  // Kahan keeps them.
  KahanAccumulator<double> kahan;
  PlainAccumulator<double> plain;
  kahan.add(1.0);
  plain.add(1.0);
  for (int i = 0; i < 10000; ++i) {
    kahan.add(1e-16);
    plain.add(1e-16);
  }
  EXPECT_DOUBLE_EQ(plain.value(), 1.0);  // all addends lost
  EXPECT_NEAR(kahan.value(), 1.0 + 1e-12, 1e-15);
}

TEST(Kahan, Float32CumulativeSumBeatsPlain) {
  Rng rng(5);
  std::vector<float> xs(20000);
  double exact = 0.0;
  for (auto& x : xs) {
    x = float(rng.uniform(0.0, 1.0));
    exact += double(x);
  }
  KahanAccumulator<float> kahan;
  PlainAccumulator<float> plain;
  for (float x : xs) {
    kahan.add(x);
    plain.add(x);
  }
  const double kahan_err = std::fabs(double(kahan.value()) - exact);
  const double plain_err = std::fabs(double(plain.value()) - exact);
  EXPECT_LT(kahan_err, plain_err);
  EXPECT_LT(kahan_err, 1e-3);
}

TEST(Kahan, Float16SummationErrorIsBounded) {
  // Summing 8192 halves of ~1.0: plain FP16 freezes once the running sum
  // reaches 4096 (ulp = 4 swallows every increment), losing half the
  // total; the compensated accumulator keeps tracking.  This is the
  // precalculation failure mode that motivates FP16C (§III-C).
  KahanAccumulator<float16> kahan;
  PlainAccumulator<float16> plain;
  double exact = 0.0;
  Rng rng(17);
  for (int i = 0; i < 8192; ++i) {
    const float16 x{rng.uniform(0.9, 1.1)};
    kahan.add(x);
    plain.add(x);
    exact += double(x);
  }
  const double kahan_err = std::fabs(double(kahan.value()) - exact) / exact;
  const double plain_err = std::fabs(double(plain.value()) - exact) / exact;
  EXPECT_LT(kahan_err, 0.05);
  EXPECT_GT(plain_err, 0.3);
}

TEST(Kahan, ResetRestoresInitialState) {
  KahanAccumulator<double> acc;
  acc.add(5.0);
  acc.reset(2.0);
  EXPECT_DOUBLE_EQ(acc.value(), 2.0);
  EXPECT_DOUBLE_EQ(acc.compensation(), 0.0);
  acc.add(3.0);
  EXPECT_DOUBLE_EQ(acc.value(), 5.0);
}

TEST(PlainAccumulator, MatchesNaiveLoop) {
  PlainAccumulator<double> acc(1.5);
  double naive = 1.5;
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal();
    acc.add(x);
    naive += x;
  }
  EXPECT_DOUBLE_EQ(acc.value(), naive);
}

}  // namespace
}  // namespace mpsim
