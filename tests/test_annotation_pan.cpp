// Tests for annotation vectors / corrected matrix profile and the pan
// matrix profile.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "mp/analysis.hpp"
#include "mp/annotation.hpp"
#include "mp/matrix_profile.hpp"
#include "mp/pan_profile.hpp"
#include "tsdata/patterns.hpp"
#include "tsdata/synthetic.hpp"

namespace mpsim::mp {
namespace {

TEST(ComplexityAnnotation, FlatRegionsGetLowDesirability) {
  // Noise everywhere except a flat stretch in the middle.
  TimeSeries series(300, 1);
  Rng rng(3);
  for (std::size_t t = 0; t < 300; ++t) series.at(t, 0) = rng.normal();
  for (std::size_t t = 120; t < 180; ++t) series.at(t, 0) = 2.0;

  const auto av = complexity_annotation(series, 32);
  ASSERT_EQ(av.size(), series.segment_count(32));
  for (const double v : av) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  // A segment fully inside the flat stretch scores near zero; a noisy
  // one scores high.
  EXPECT_LT(av[140], 0.05);
  EXPECT_GT(av[20], 0.3);
}

TEST(MaskAnnotation, SuppressesOverlappingSegments) {
  const auto av = mask_annotation(100, 16, {{30, 40}});
  // Segments [15, 40) overlap samples [30, 40).
  EXPECT_DOUBLE_EQ(av[14], 1.0);
  EXPECT_DOUBLE_EQ(av[15], 0.0);
  EXPECT_DOUBLE_EQ(av[39], 0.0);
  EXPECT_DOUBLE_EQ(av[40], 1.0);
  EXPECT_THROW(mask_annotation(100, 16, {{50, 40}}), Error);
}

TEST(CorrectedProfile, SteersMotifsAwayFromSuppressedRegions) {
  // Two identical motif pairs; suppress the better one and the corrected
  // profile must promote the other.
  const std::size_t m = 32;
  TimeSeries reference(600, 1), query(600, 1);
  Rng rng(8);
  for (std::size_t t = 0; t < 600; ++t) {
    reference.at(t, 0) = rng.normal();
    query.at(t, 0) = rng.normal();
  }
  const auto pattern = sample_pattern(PatternShape::kChirp, m);
  // Pair A at query 100 (exact copy), pair B at query 400 (noisier copy).
  for (std::size_t t = 0; t < m; ++t) {
    reference.at(50 + t, 0) = 3.0 * pattern[t];
    query.at(100 + t, 0) = 3.0 * pattern[t];
    reference.at(300 + t, 0) = 3.0 * pattern[t];
    query.at(400 + t, 0) = 3.0 * pattern[t] + 0.2 * rng.normal();
  }

  MatrixProfileConfig config;
  config.window = m;
  auto result = compute_matrix_profile(reference, query, config);
  const auto before = top_motifs(result, 0, 1, m);
  ASSERT_EQ(before.size(), 1u);
  EXPECT_NEAR(double(before[0].query_segment), 100.0, 2.0);

  const auto av = mask_annotation(result.segments, m, {{90, 140}});
  apply_annotation(result, av);
  const auto after = top_motifs(result, 0, 1, m);
  ASSERT_EQ(after.size(), 1u);
  EXPECT_NEAR(double(after[0].query_segment), 400.0, 2.0);
}

TEST(CorrectedProfile, FullDesirabilityIsANoop) {
  SyntheticSpec spec;
  spec.segments = 200;
  spec.dims = 2;
  spec.window = 16;
  spec.injections_per_dim = 1;
  const auto data = make_synthetic_dataset(spec);
  MatrixProfileConfig config;
  config.window = 16;
  auto result = compute_matrix_profile(data.reference, data.query, config);
  const auto original = result.profile;
  apply_annotation(result, std::vector<double>(result.segments, 1.0));
  EXPECT_EQ(result.profile, original);

  EXPECT_THROW(apply_annotation(result, {0.5}), Error);
  EXPECT_THROW(
      apply_annotation(result, std::vector<double>(result.segments, 1.5)),
      Error);
}

TEST(PanProfile, FindsTheTruePatternLength) {
  // Embed a pattern of length 64; the pan profile's best window for that
  // location should be (close to) 64, not the far-off rungs.
  const std::size_t true_m = 64;
  TimeSeries reference(800, 1), query(800, 1);
  Rng rng(9);
  for (std::size_t t = 0; t < 800; ++t) {
    reference.at(t, 0) = rng.normal();
    query.at(t, 0) = rng.normal();
  }
  const auto pattern = sample_pattern(PatternShape::kChirp, true_m);
  for (std::size_t t = 0; t < true_m; ++t) {
    reference.at(200 + t, 0) = 4.0 * pattern[t];
    query.at(500 + t, 0) = 4.0 * pattern[t];
  }

  const auto pan =
      compute_pan_profile(reference, query, {16, 32, 64, 128});
  ASSERT_EQ(pan.windows.size(), 4u);
  const auto best = best_window_for_segment(pan, 500);
  // The embedded length (or the rung just below, which still fits inside
  // the pattern) must win over the far-off ones.
  EXPECT_TRUE(best.window == 64 || best.window == 32) << best.window;
  EXPECT_LT(best.normalized_distance, 0.2);
}

TEST(PanProfile, NormalisationMakesWindowsComparable) {
  const auto series = make_noise_series(500, 1, 1.0, 10);
  const auto pan = compute_pan_profile(series, series, {16, 32, 64},
                                       /*exclusion=*/32);
  for (std::size_t w = 0; w < pan.windows.size(); ++w) {
    for (std::size_t j = 0; j < pan.segments; ++j) {
      const double v = pan.normalized[w][j];
      if (!std::isfinite(v)) continue;  // padding of larger windows
      EXPECT_GE(v, 0.0);
      // Uncorrelated level is 1; anti-correlation caps at sqrt(2).
      EXPECT_LE(v, std::sqrt(2.0) + 1e-9);
    }
  }
  EXPECT_THROW(compute_pan_profile(series, series, {}), Error);
}

}  // namespace
}  // namespace mpsim::mp
