// Tests for the automatic tile-count tuner (§III-B's "careful selection
// of the number of tiles", implemented).
#include <gtest/gtest.h>

#include "metrics/accuracy.hpp"
#include "mp/cpu_reference.hpp"
#include "mp/matrix_profile.hpp"
#include "mp/tuning.hpp"
#include "tsdata/synthetic.hpp"

namespace mpsim::mp {
namespace {

TileTuningRequest paper_request(PrecisionMode mode) {
  TileTuningRequest request;
  request.n_r = request.n_q = 1 << 16;
  request.dims = 1 << 6;
  request.window = 1 << 6;
  request.mode = mode;
  request.devices = 1;
  return request;
}

TEST(TileTuner, Fp64NeedsNoExtraTilesAtPaperScale) {
  const auto result = suggest_tiles(paper_request(PrecisionMode::FP64),
                                    gpusim::a100());
  EXPECT_EQ(result.tiles, 1);
  EXPECT_FALSE(result.accuracy_limited);
  EXPECT_FALSE(result.memory_limited);
}

TEST(TileTuner, Fp16BoundsTheRecurrenceLength) {
  // Fig. 7 finds hundreds of (square) tiles the FP16 sweet spot at
  // n=2^16; the tuner reaches the same per-tile recurrence bound more
  // cheaply with row-strip tilings, so assert the binding quantity: the
  // rows per tile obey the diffusive error bound (tol/eps)^2 ~ 3777.
  const auto result = suggest_tiles(paper_request(PrecisionMode::FP16),
                                    gpusim::a100());
  EXPECT_TRUE(result.accuracy_limited);
  EXPECT_GT(result.tiles, 1);
  EXPECT_LE(result.tile_rows, 3800u);
  // And the bound actually required splitting: one tile would be 2^16.
  EXPECT_LT(result.tile_rows, std::size_t(1) << 16);
}

TEST(TileTuner, MemoryConstraintForcesTilingForHugeProblems) {
  TileTuningRequest request;
  request.n_r = request.n_q = 1 << 23;  // 8M segments
  request.dims = 1 << 6;
  request.window = 1 << 7;
  request.mode = PrecisionMode::FP64;
  request.devices = 4;
  const auto result = suggest_tiles(request, gpusim::a100());
  EXPECT_TRUE(result.memory_limited);
  EXPECT_GT(result.tiles, 4);
  // The chosen tiling's working set actually fits the device.
  EXPECT_LT(double(result.tile_bytes), 0.8 * double(40ull << 30));
}

TEST(TileTuner, TileCountIsMultipleOfDeviceCount) {
  for (int devices : {1, 3, 4, 7}) {
    auto request = paper_request(PrecisionMode::FP16);
    request.devices = devices;
    const auto result = suggest_tiles(request, gpusim::a100());
    EXPECT_EQ(result.tiles % devices, 0) << devices;
  }
}

TEST(TileTuner, TighterToleranceMeansMoreTiles) {
  auto request = paper_request(PrecisionMode::FP16);
  request.correlation_tolerance = 0.05;
  const int loose = suggest_tiles(request, gpusim::a100()).tiles;
  request.correlation_tolerance = 0.01;
  const int tight = suggest_tiles(request, gpusim::a100()).tiles;
  EXPECT_GT(tight, loose);
}

TEST(TileTuner, WorkingSetGrowsWithEveryDimension) {
  const std::size_t base = tile_working_set_bytes(1024, 1024, 8, 64,
                                                  PrecisionMode::FP64);
  EXPECT_GT(tile_working_set_bytes(2048, 1024, 8, 64, PrecisionMode::FP64),
            base);
  EXPECT_GT(tile_working_set_bytes(1024, 2048, 8, 64, PrecisionMode::FP64),
            base);
  EXPECT_GT(tile_working_set_bytes(1024, 1024, 16, 64, PrecisionMode::FP64),
            base);
  // Half precision halves the (dominant) storage-typed parts.
  EXPECT_LT(tile_working_set_bytes(1024, 1024, 8, 64, PrecisionMode::FP16),
            base);
}

TEST(TileTuner, SuggestedTilingDeliversAccuracyEndToEnd) {
  // Close the loop: run FP16 with the tuner's suggestion on real data and
  // check the recall beats the untiled run.
  SyntheticSpec spec;
  spec.segments = 1024;
  spec.dims = 4;
  spec.window = 32;
  spec.injections_per_dim = 2;
  const auto data = make_synthetic_dataset(spec);
  CpuReferenceConfig cpu;
  cpu.window = 32;
  const auto exact =
      compute_matrix_profile_cpu(data.reference, data.query, cpu);

  TileTuningRequest request;
  request.n_r = request.n_q = 1024;
  request.dims = 4;
  request.window = 32;
  request.mode = PrecisionMode::FP16;
  request.correlation_tolerance = 0.005;  // n=1024 binds only when tight
  const auto tuned = suggest_tiles(request, gpusim::a100());
  ASSERT_GT(tuned.tiles, 1);

  MatrixProfileConfig config;
  config.window = 32;
  config.mode = PrecisionMode::FP16;
  config.tiles = 1;
  const auto untiled =
      compute_matrix_profile(data.reference, data.query, config);
  config.tiles = tuned.tiles;
  const auto tiled =
      compute_matrix_profile(data.reference, data.query, config);

  EXPECT_GE(metrics::recall_rate(tiled.index, exact.index) + 0.01,
            metrics::recall_rate(untiled.index, exact.index));
}

TEST(TileTuner, RejectsImpossibleRequests) {
  TileTuningRequest request;
  request.n_r = 0;
  EXPECT_THROW(suggest_tiles(request, gpusim::a100()), Error);
}

}  // namespace
}  // namespace mpsim::mp
