// Golden bit-exactness regression for the end-to-end pipeline.
//
// The execution fast path (table-driven float16 conversion, restructured
// kernel bodies, allocation-free parallel_for, staged input conversion,
// parallel tile merge) is pure plumbing: it must not move a single output
// bit in ANY precision mode.  These checksums were pinned from the
// pre-optimization engine on a fixed synthetic dataset; any drift means an
// optimization silently changed arithmetic, operation order, or rounding.
//
// Two configurations are pinned: multi-tile/multi-device (exercises tile
// staging, scheduling and the merge) and single-tile/single-device (the
// pure kernel path).  FP16C shares Mixed's checksum by design: compensated
// precalculation only changes results when cancellation occurs, which this
// dataset's scale avoids.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "gpusim/faults.hpp"
#include "mp/kernels.hpp"
#include "mp/matrix_profile.hpp"
#include "precision/modes.hpp"
#include "tsdata/synthetic.hpp"

namespace mpsim {
namespace {

std::uint64_t fnv1a(const unsigned char* p, std::size_t n, std::uint64_t h) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t result_checksum(const mp::MatrixProfileResult& r) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = fnv1a(reinterpret_cast<const unsigned char*>(r.profile.data()),
            r.profile.size() * sizeof(double), h);
  h = fnv1a(reinterpret_cast<const unsigned char*>(r.index.data()),
            r.index.size() * sizeof(std::int64_t), h);
  return h;
}

struct GoldenEntry {
  PrecisionMode mode;
  std::uint64_t checksum;
};

void check_goldens(int tiles, int devices, const GoldenEntry (&golden)[5]) {
  SyntheticSpec spec;
  spec.segments = 400;
  spec.dims = 4;
  spec.window = 32;
  spec.injections_per_dim = 2;
  spec.seed = 77;
  const auto data = make_synthetic_dataset(spec);

  for (const GoldenEntry& entry : golden) {
    // Both per-row execution paths must hit the pinned checksum: the fused
    // pipeline is bit-identical to the cooperative kernels by contract.
    for (const mp::RowPath path :
         {mp::RowPath::kFused, mp::RowPath::kCooperative}) {
      mp::MatrixProfileConfig config;
      config.window = 32;
      config.mode = entry.mode;
      config.tiles = tiles;
      config.devices = devices;
      config.row_path = path;
      const auto r =
          mp::compute_matrix_profile(data.reference, data.query, config);
      EXPECT_EQ(result_checksum(r), entry.checksum)
          << to_string(entry.mode) << " tiles=" << tiles
          << " devices=" << devices << " row_path=" << to_string(path);
    }
  }
}

// The FP16 dist_calc row may take a hand-written 8-wide F16C loop.  Pin it
// bit-for-bit against the scalar float16 operator sequence it claims to
// mirror, over data laced with infinities and NaNs (NaN blocks must fall
// back to the scalar operators' deterministic propagation rule).
TEST(GoldenChecksums, Fp16DistCalcRowMatchesScalarOperators) {
  using Traits = PrecisionTraits<PrecisionMode::FP16>;
  const std::size_t w = 257, d = 3, nr = 64, m = 32;  // w not a lane multiple
  Rng rng(99);
  auto fill = [&](std::vector<float16>& v, double scale) {
    for (auto& h : v) {
      const double r = rng.uniform(0.0, 1.0);
      if (r < 0.01) {
        h = float16::from_bits(std::uint16_t(rng.uniform_index(1u << 16)));
      } else if (r < 0.02) {
        h = float16::infinity();
      } else {
        h = float16(rng.normal(0.0, scale));
      }
    }
  };
  std::vector<float16> qt_row(w * d), qt_col(nr * d), df_r(nr * d),
      dg_r(nr * d), inv_r(nr * d), df_q(w * d), dg_q(w * d), inv_q(w * d),
      prev(w * d), next(w * d), dist(w * d);
  fill(qt_row, 1.0);
  fill(qt_col, 1.0);
  fill(df_r, 0.05);
  fill(dg_r, 0.05);
  fill(inv_r, 0.2);
  fill(df_q, 0.05);
  fill(dg_q, 0.05);
  fill(inv_q, 0.2);
  fill(prev, 1.0);

  const std::size_t i = 7;
  mp::dist_calc_body<Traits>(0, std::int64_t(w * d), i, w, m, qt_row.data(),
                             qt_col.data(), nr, df_r.data(), dg_r.data(),
                             inv_r.data(), df_q.data(), dg_q.data(),
                             inv_q.data(), prev.data(), next.data(),
                             dist.data());

  const float16 two_m{double(2 * m)};
  for (std::size_t k = 0; k < d; ++k) {
    const std::size_t row = k * nr + i;
    for (std::size_t j = 0; j < w; ++j) {
      const std::size_t x = k * w + j;
      const float16 qt =
          j == 0 ? qt_col[row]
                 : float16(prev[x - 1] + df_r[row] * dg_q[x] +
                           dg_r[row] * df_q[x]);
      const float16 ref_dist =
          mp::qt_to_distance(qt, inv_r[row], inv_q[x], two_m);
      ASSERT_EQ(next[x].bits(), qt.bits()) << "qt k=" << k << " j=" << j;
      ASSERT_EQ(dist[x].bits(), ref_dist.bits()) << "d k=" << k << " j=" << j;
    }
  }
}

TEST(GoldenChecksums, MultiTileMultiDeviceAllModes) {
  static constexpr GoldenEntry kGolden[5] = {
      {PrecisionMode::FP64, 0x53105cb97409fa7cull},
      {PrecisionMode::FP32, 0xfc23296d1a8a09e0ull},
      {PrecisionMode::FP16, 0x7140c9a9f531c464ull},
      {PrecisionMode::Mixed, 0x1370ffadf92d84abull},
      {PrecisionMode::FP16C, 0x1370ffadf92d84abull},
  };
  check_goldens(/*tiles=*/4, /*devices=*/2, kGolden);
}

TEST(GoldenChecksums, SingleTileSingleDeviceAllModes) {
  static constexpr GoldenEntry kGolden[5] = {
      {PrecisionMode::FP64, 0x6edd781ef9d5e2f1ull},
      {PrecisionMode::FP32, 0x549dcb185e474610ull},
      {PrecisionMode::FP16, 0xb921390f9787adb1ull},
      {PrecisionMode::Mixed, 0x7d29ecfcb7b60248ull},
      {PrecisionMode::FP16C, 0x7d29ecfcb7b60248ull},
  };
  check_goldens(/*tiles=*/1, /*devices=*/1, kGolden);
}

// ---- Fused-vs-cooperative path equality ----------------------------------

std::uint64_t run_with_path(const TimeSeries& reference,
                            const TimeSeries& query, PrecisionMode mode,
                            mp::RowPath path, const char* fault_spec) {
  mp::MatrixProfileConfig config;
  config.window = 32;
  config.mode = mode;
  config.tiles = 1;  // single stream: deterministic fault-injection order
  config.devices = 1;
  gpusim::FaultInjector injector;
  if (fault_spec != nullptr) {
    injector.configure(fault_spec);
    config.fault_injector = &injector;
  }
  config.row_path = path;
  return result_checksum(mp::compute_matrix_profile(reference, query, config));
}

void check_paths_equal(std::size_t dims, const char* fault_spec) {
  SyntheticSpec spec;
  spec.segments = 300;
  spec.dims = dims;
  spec.window = 32;
  spec.injections_per_dim = 2;
  spec.seed = 123;
  const auto data = make_synthetic_dataset(spec);
  for (const PrecisionMode mode : kAllPrecisionModes) {
    const auto fused = run_with_path(data.reference, data.query, mode,
                                     mp::RowPath::kFused, fault_spec);
    const auto coop = run_with_path(data.reference, data.query, mode,
                                    mp::RowPath::kCooperative, fault_spec);
    EXPECT_EQ(fused, coop) << to_string(mode) << " dims=" << dims
                           << (fault_spec ? fault_spec : " clean");
  }
}

TEST(RowPathEquality, PaddedNonPowerOfTwoDims) { check_paths_equal(3, nullptr); }

TEST(RowPathEquality, PowerOfTwoDims) { check_paths_equal(4, nullptr); }

TEST(RowPathEquality, FiveDimsGenericPadding) { check_paths_equal(5, nullptr); }

TEST(RowPathEquality, SingleDimSkipSortPath) { check_paths_equal(1, nullptr); }

TEST(RowPathEquality, NanPoisonedDistanceRows) {
  // Staged-input NaN corruption (fault-injector path): the poison reaches
  // the distance rows, exercising the fused sort's blend-moves-NaN stages
  // and the f16 vector scan's scalar NaN fallback.  Identical injector
  // seed + single stream means both paths see identical corrupted bytes.
  check_paths_equal(4, "seed=9,nan@0:at=1:frac=0.05");
  check_paths_equal(3, "seed=9,nan@0:at=1:frac=0.10");
}

TEST(RowPathEquality, KernelFaultRetryPath) {
  // A transient kernel fault mid-tile: the attempt restarts, and both
  // paths must emit the same fault_point sequence so the Nth launch fails
  // in both (and the retried result stays bit-identical).
  check_paths_equal(4, "seed=3,kernel@0:at=2");
}

}  // namespace
}  // namespace mpsim
