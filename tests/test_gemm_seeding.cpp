// GEMM-blocked QT seeding (mp/gemm.hpp) against the naive per-column
// centered_dot loop it replaced.  The contract is BIT-identity, not
// closeness: the blocked driver hoists the fixed-side subtractions and
// streams SIMD panels over output columns, but every column's reduction
// replays the scalar operation sequence, so the seeds may not move by a
// single ULP in any precision mode, at any dispatch level, with either
// operand order (seed row passes the fixed segment first, seed column the
// sliding one), and NaN-poisoned inputs (fault-injector staging
// corruption) must round-trip through the NaN-redo path to the naive
// bits too.  The end-to-end leg checks both row paths consume the seeds
// identically.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "gpusim/faults.hpp"
#include "mp/gemm.hpp"
#include "mp/matrix_profile.hpp"
#include "mp/precalc.hpp"
#include "mp/simd/dispatch.hpp"
#include "precision/modes.hpp"
#include "tsdata/synthetic.hpp"

namespace mpsim::mp {
namespace {

// Restores auto dispatch however a test exits.
struct DispatchGuard {
  ~DispatchGuard() { simd::clear_override(); }
};

/// The naive seeding loop gemm_sliding_dots replaced: one centered_dot
/// call per output column, in the caller's original operand order.
template <typename Traits>
std::vector<typename Traits::Storage> naive_seeds(
    const typename Traits::Storage* fixed, typename Traits::Storage fmu,
    const typename Traits::Storage* slide,
    const typename Traits::Storage* smu, std::size_t m, std::size_t n,
    bool slide_first) {
  std::vector<typename Traits::Storage> out(n);
  for (std::size_t j = 0; j < n; ++j) {
    out[j] = slide_first
                 ? centered_dot<Traits>(slide + j, fixed, m, smu[j], fmu)
                 : centered_dot<Traits>(fixed, slide + j, m, fmu, smu[j]);
  }
  return out;
}

/// Bitwise comparison of storage words — EXPECT_EQ would treat NaN
/// payloads as unordered and -0.0 == +0.0.
template <typename ST>
void expect_bits_equal(const std::vector<ST>& got,
                       const std::vector<ST>& want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t j = 0; j < got.size(); ++j) {
    EXPECT_EQ(std::memcmp(&got[j], &want[j], sizeof(ST)), 0)
        << what << " column " << j;
  }
}

/// Quantizes a fresh random series to ST, optionally NaN-poisons it with
/// the fault injector (the same staging-corruption machinery the engine
/// uses), computes real sliding means, and checks gemm_sliding_dots ==
/// naive seeding for both operand orders at every dispatch level the
/// host supports.
template <typename Traits>
void check_seed_equality(bool poison) {
  using ST = typename Traits::Storage;
  DispatchGuard guard;
  const std::size_t m = 48, nseg = 300, len = nseg + m - 1;
  Rng rng(17);
  std::vector<ST> slide(len), fixed(m);
  for (auto& v : slide) v = ST(rng.normal(0.0, 1.0));
  for (auto& v : fixed) v = ST(rng.normal(0.0, 1.0));
  if (poison) {
    gpusim::FaultInjector injector;
    injector.configure("seed=9,nan@0:at=1:frac=0.05,nan@0:at=2:frac=0.1");
    injector.corrupt_span(0, slide.data(), slide.size());
    injector.corrupt_span(0, fixed.data(), fixed.size());
  }
  std::vector<ST> smu(nseg), inv(nseg), df(nseg), dg(nseg);
  precalc_dimension<Traits>(slide.data(), m, nseg, smu.data(), inv.data(),
                            df.data(), dg.data());
  ST fmu;
  {
    std::vector<ST> fstats(4);  // mu of the fixed segment via the same path
    precalc_dimension<Traits>(fixed.data(), m, 1, fstats.data(),
                              fstats.data() + 1, fstats.data() + 2,
                              fstats.data() + 3);
    fmu = fstats[0];
  }

  const simd::Level top = simd::detected_level();
  for (const bool slide_first : {false, true}) {
    const auto want = naive_seeds<Traits>(fixed.data(), fmu, slide.data(),
                                          smu.data(), m, nseg, slide_first);
    for (int lv = simd::kScalar; lv <= top; ++lv) {
      simd::set_override(simd::Level(lv));
      std::vector<ST> got(nseg);
      gemm_sliding_dots<Traits>(fixed.data(), fmu, slide.data(), smu.data(),
                                m, 0, nseg, slide_first, got.data());
      expect_bits_equal(got, want,
                        slide_first ? "slide_first" : "fixed_first");
    }
  }
}

using Fp64 = PrecisionTraits<PrecisionMode::FP64>;
using Fp32 = PrecisionTraits<PrecisionMode::FP32>;
using Fp16 = PrecisionTraits<PrecisionMode::FP16>;
using Mixed = PrecisionTraits<PrecisionMode::Mixed>;
using Fp16c = PrecisionTraits<PrecisionMode::FP16C>;

TEST(GemmSeeding, MatchesNaiveFp64) { check_seed_equality<Fp64>(false); }
TEST(GemmSeeding, MatchesNaiveFp32) { check_seed_equality<Fp32>(false); }
TEST(GemmSeeding, MatchesNaiveFp16) { check_seed_equality<Fp16>(false); }
TEST(GemmSeeding, MatchesNaiveMixed) { check_seed_equality<Mixed>(false); }
TEST(GemmSeeding, MatchesNaiveFp16c) { check_seed_equality<Fp16c>(false); }

TEST(GemmSeeding, MatchesNaiveNanPoisonedFp64) {
  check_seed_equality<Fp64>(true);
}
TEST(GemmSeeding, MatchesNaiveNanPoisonedFp32) {
  check_seed_equality<Fp32>(true);
}
TEST(GemmSeeding, MatchesNaiveNanPoisonedFp16) {
  check_seed_equality<Fp16>(true);
}
TEST(GemmSeeding, MatchesNaiveNanPoisonedMixed) {
  check_seed_equality<Mixed>(true);
}
TEST(GemmSeeding, MatchesNaiveNanPoisonedFp16c) {
  check_seed_equality<Fp16c>(true);
}

TEST(GemmSeeding, PartialRangeMatchesFullRange) {
  // Sub-tile splits re-seed partial column ranges [j0, j1): the blocked
  // panels must produce the same bits whatever range boundary they start
  // from (panel alignment must not leak into the values).
  using ST = Fp16::Storage;
  const std::size_t m = 32, nseg = 200, len = nseg + m - 1;
  Rng rng(23);
  std::vector<ST> slide(len), fixed(m);
  for (auto& v : slide) v = ST(rng.normal(0.0, 1.0));
  for (auto& v : fixed) v = ST(rng.normal(0.0, 1.0));
  std::vector<ST> smu(nseg), inv(nseg), df(nseg), dg(nseg);
  precalc_dimension<Fp16>(slide.data(), m, nseg, smu.data(), inv.data(),
                          df.data(), dg.data());
  const ST fmu = smu[0];
  std::vector<ST> full(nseg), pieces(nseg);
  gemm_sliding_dots<Fp16>(fixed.data(), fmu, slide.data(), smu.data(), m, 0,
                          nseg, false, full.data());
  for (const std::size_t split : {1ul, 7ul, 64ul, 133ul}) {
    gemm_sliding_dots<Fp16>(fixed.data(), fmu, slide.data(), smu.data(), m,
                            0, split, false, pieces.data());
    gemm_sliding_dots<Fp16>(fixed.data(), fmu, slide.data(), smu.data(), m,
                            split, nseg, false, pieces.data());
    expect_bits_equal(pieces, full, "split range");
  }
}

TEST(GemmSeeding, RowPathsConsumeSeedsIdentically) {
  // End-to-end: the GEMM seeds feed both row executions; fused and
  // cooperative must agree bit-for-bit in every paper mode, clean and
  // NaN-poisoned.
  SyntheticSpec spec;
  spec.segments = 280;
  spec.dims = 3;
  spec.window = 32;
  spec.injections_per_dim = 2;
  spec.seed = 77;
  const auto data = make_synthetic_dataset(spec);
  for (const PrecisionMode mode : kAllPrecisionModes) {
    for (const char* fault_spec :
         {(const char*)nullptr, "seed=9,nan@0:at=1:frac=0.05"}) {
      MatrixProfileResult results[2];
      int slot = 0;
      for (const RowPath path : {RowPath::kFused, RowPath::kCooperative}) {
        MatrixProfileConfig config;
        config.window = 32;
        config.mode = mode;
        config.tiles = 1;
        config.row_path = path;
        gpusim::FaultInjector injector;
        if (fault_spec != nullptr) {
          injector.configure(fault_spec);
          config.fault_injector = &injector;
        }
        results[slot++] =
            compute_matrix_profile(data.reference, data.query, config);
      }
      ASSERT_EQ(results[0].profile.size(), results[1].profile.size());
      for (std::size_t e = 0; e < results[0].profile.size(); ++e) {
        EXPECT_EQ(std::memcmp(&results[0].profile[e], &results[1].profile[e],
                              sizeof(double)),
                  0)
            << to_string(mode) << " entry " << e
            << (fault_spec ? " poisoned" : " clean");
        EXPECT_EQ(results[0].index[e], results[1].index[e])
            << to_string(mode) << " entry " << e;
      }
    }
  }
}

}  // namespace
}  // namespace mpsim::mp
