// Tests for the precision-mode enum, traits and runtime dispatch.
#include <gtest/gtest.h>

#include <type_traits>

#include "common/error.hpp"
#include "precision/modes.hpp"

namespace mpsim {
namespace {

TEST(Modes, NamesRoundTrip) {
  for (PrecisionMode mode : kAllPrecisionModes) {
    EXPECT_EQ(parse_precision_mode(to_string(mode)), mode);
  }
  EXPECT_EQ(parse_precision_mode("fp16c"), PrecisionMode::FP16C);
  EXPECT_THROW(parse_precision_mode("FP8"), ConfigError);
}

TEST(Modes, StorageBytes) {
  EXPECT_EQ(storage_bytes(PrecisionMode::FP64), 8u);
  EXPECT_EQ(storage_bytes(PrecisionMode::FP32), 4u);
  EXPECT_EQ(storage_bytes(PrecisionMode::FP16), 2u);
  EXPECT_EQ(storage_bytes(PrecisionMode::Mixed), 2u);
  EXPECT_EQ(storage_bytes(PrecisionMode::FP16C), 2u);
}

TEST(Modes, UnitRoundoffOrdering) {
  EXPECT_LT(unit_roundoff(PrecisionMode::FP64),
            unit_roundoff(PrecisionMode::FP32));
  EXPECT_LT(unit_roundoff(PrecisionMode::FP32),
            unit_roundoff(PrecisionMode::FP16));
  EXPECT_DOUBLE_EQ(unit_roundoff(PrecisionMode::FP16), 0x1.0p-11);
}

TEST(ModeTraits, StorageAndComputeTypes) {
  using F64 = PrecisionTraits<PrecisionMode::FP64>;
  using F32 = PrecisionTraits<PrecisionMode::FP32>;
  using F16 = PrecisionTraits<PrecisionMode::FP16>;
  using Mix = PrecisionTraits<PrecisionMode::Mixed>;
  using F16C = PrecisionTraits<PrecisionMode::FP16C>;

  EXPECT_TRUE((std::is_same_v<F64::Storage, double>));
  EXPECT_TRUE((std::is_same_v<F32::Storage, float>));
  EXPECT_TRUE((std::is_same_v<F16::Storage, float16>));
  EXPECT_TRUE((std::is_same_v<Mix::Storage, float16>));
  EXPECT_TRUE((std::is_same_v<F16C::Storage, float16>));

  // Mixed and FP16C lift only the precalculation to FP32.
  EXPECT_TRUE((std::is_same_v<Mix::Compute, float16>));
  EXPECT_TRUE((std::is_same_v<Mix::PrecalcCompute, float>));
  EXPECT_TRUE((std::is_same_v<F16C::PrecalcCompute, float>));
  EXPECT_TRUE((std::is_same_v<F16::PrecalcCompute, float16>));

  // Only FP16C compensates.
  EXPECT_FALSE(Mix::kCompensatedPrecalc);
  EXPECT_TRUE(F16C::kCompensatedPrecalc);
  EXPECT_FALSE(F64::kCompensatedPrecalc);
}

TEST(ModeDispatch, ReachesMatchingTraits) {
  for (PrecisionMode mode : kAllPrecisionModes) {
    const PrecisionMode seen = dispatch_precision(
        mode, []<typename Traits>() { return Traits::kMode; });
    EXPECT_EQ(seen, mode);
  }
}

TEST(ModeDispatch, ReturnsValuesThrough) {
  const std::size_t bytes = dispatch_precision(
      PrecisionMode::Mixed,
      []<typename Traits>() { return sizeof(typename Traits::Storage); });
  EXPECT_EQ(bytes, 2u);
}

}  // namespace
}  // namespace mpsim
