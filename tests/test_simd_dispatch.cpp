// Bit-equality of the runtime SIMD dispatch levels.
//
// Every kernel variant in src/mp/simd/ claims bit-identity with the
// templated scalar bodies; this suite enforces it by running the SAME
// end-to-end computation at every dispatch level (scalar / f16c / avx2,
// clamped to what the host supports) and across the diagonal-batched and
// unbatched row executions, then comparing FNV checksums of the full
// profile + index output.  NaN-poisoned runs (fault-injector staging
// corruption) are included: they drive the kernels' NaN fallbacks, where
// operand-order-dependent hardware NaN propagation would diverge from the
// emulated operators if the screens were wrong.
//
// The dispatch plumbing itself (parse/clamp/env) and the grained
// parallel_for the batched executor relies on are covered at the bottom.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "gpusim/faults.hpp"
#include "mp/matrix_profile.hpp"
#include "mp/simd/dispatch.hpp"
#include "mp/tuning.hpp"
#include "precision/modes.hpp"
#include "tsdata/synthetic.hpp"

namespace mpsim {
namespace {

std::uint64_t fnv1a(const unsigned char* p, std::size_t n, std::uint64_t h) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t result_checksum(const mp::MatrixProfileResult& r) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = fnv1a(reinterpret_cast<const unsigned char*>(r.profile.data()),
            r.profile.size() * sizeof(double), h);
  h = fnv1a(reinterpret_cast<const unsigned char*>(r.index.data()),
            r.index.size() * sizeof(std::int64_t), h);
  return h;
}

// Restores auto dispatch + auto batching however a test exits.
struct DispatchGuard {
  ~DispatchGuard() {
    mp::simd::clear_override();
    mp::set_row_batch_override(0);
  }
};

std::uint64_t run_once(const TimeSeries& reference, const TimeSeries& query,
                       PrecisionMode mode, mp::RowPath path,
                       const char* fault_spec) {
  mp::MatrixProfileConfig config;
  config.window = 32;
  config.mode = mode;
  config.tiles = 1;  // single stream: deterministic fault-injection order
  config.devices = 1;
  gpusim::FaultInjector injector;
  if (fault_spec != nullptr) {
    injector.configure(fault_spec);
    config.fault_injector = &injector;
  }
  config.row_path = path;
  return result_checksum(mp::compute_matrix_profile(reference, query, config));
}

// For each precision mode and row path, the checksum must be invariant
// across every dispatch level the host can run.  `modes` lets the soft
// formats (outside kAllPrecisionModes) reuse the harness.
template <std::size_t N>
void check_levels_equal(const PrecisionMode (&modes)[N], std::size_t dims,
                        const char* fault_spec) {
  DispatchGuard guard;
  SyntheticSpec spec;
  spec.segments = 300;
  spec.dims = dims;
  spec.window = 32;
  spec.injections_per_dim = 2;
  spec.seed = 123;
  const auto data = make_synthetic_dataset(spec);
  const mp::simd::Level top = mp::simd::detected_level();
  for (const PrecisionMode mode : modes) {
    for (const mp::RowPath path :
         {mp::RowPath::kFused, mp::RowPath::kCooperative}) {
      mp::simd::set_override(mp::simd::kScalar);
      const std::uint64_t scalar_sum =
          run_once(data.reference, data.query, mode, path, fault_spec);
      for (int lv = mp::simd::kF16C; lv <= top; ++lv) {
        mp::simd::set_override(mp::simd::Level(lv));
        const std::uint64_t got =
            run_once(data.reference, data.query, mode, path, fault_spec);
        EXPECT_EQ(got, scalar_sum)
            << to_string(mode) << " path=" << to_string(path)
            << " level=" << mp::simd::to_string(mp::simd::Level(lv))
            << " dims=" << dims << " "
            << (fault_spec ? fault_spec : "clean");
      }
    }
  }
}

TEST(SimdDispatchEquality, PaperModesClean) {
  check_levels_equal(kAllPrecisionModes, 4, nullptr);
  check_levels_equal(kAllPrecisionModes, 3, nullptr);
}

TEST(SimdDispatchEquality, PaperModesNanPoisoned) {
  // Staged-input NaN corruption reaches the distance rows: the vector
  // kernels must break to the scalar operators exactly where they would
  // see a NaN, or the payload/sign rules drift.
  check_levels_equal(kAllPrecisionModes, 4, "seed=9,nan@0:at=1:frac=0.05");
  check_levels_equal(kAllPrecisionModes, 3, "seed=9,nan@0:at=1:frac=0.10");
}

TEST(SimdDispatchEquality, SoftFormatsCleanAndPoisoned) {
  static constexpr PrecisionMode kSoft[] = {PrecisionMode::BF16,
                                            PrecisionMode::TF32};
  check_levels_equal(kSoft, 4, nullptr);
  check_levels_equal(kSoft, 4, "seed=9,nan@0:at=1:frac=0.05");
}

TEST(SimdDispatchEquality, KernelFaultRetrySequence) {
  // The dispatch level must not perturb the fault_point sequence: the Nth
  // launch fails at every level and the retried result stays identical.
  check_levels_equal(kAllPrecisionModes, 4, "seed=3,kernel@0:at=2");
}

// The diagonal-batched executor (row batches over parallel_for_grained)
// against forced bt=1, at the top dispatch level and scalar, clean and
// poisoned: batching is pure scheduling, so the bits cannot move.
TEST(SimdDispatchEquality, BatchedVersusUnbatchedRows) {
  DispatchGuard guard;
  SyntheticSpec spec;
  spec.segments = 300;
  spec.dims = 4;
  spec.window = 32;
  spec.injections_per_dim = 2;
  spec.seed = 123;
  const auto data = make_synthetic_dataset(spec);
  for (const char* fault_spec :
       {(const char*)nullptr, "seed=9,nan@0:at=1:frac=0.05",
        "seed=3,kernel@0:at=2"}) {
    for (const mp::simd::Level lv :
         {mp::simd::kScalar, mp::simd::detected_level()}) {
      mp::simd::set_override(lv);
      for (const PrecisionMode mode : kExtendedPrecisionModes) {
        mp::set_row_batch_override(1);
        const std::uint64_t unbatched = run_once(
            data.reference, data.query, mode, mp::RowPath::kFused, fault_spec);
        mp::set_row_batch_override(16);
        const std::uint64_t batched = run_once(
            data.reference, data.query, mode, mp::RowPath::kFused, fault_spec);
        EXPECT_EQ(batched, unbatched)
            << to_string(mode) << " level=" << mp::simd::to_string(lv) << " "
            << (fault_spec ? fault_spec : "clean");
      }
    }
  }
}

// --- Dispatch plumbing ----------------------------------------------------

TEST(SimdDispatch, ParseAndClamp) {
  using namespace mp::simd;
  DispatchGuard guard;
  EXPECT_EQ(parse_level("scalar"), kScalar);
  EXPECT_EQ(parse_level("f16c"), kF16C);
  EXPECT_EQ(parse_level("avx2"), kAvx2);
  EXPECT_THROW(parse_level("sse9"), ConfigError);
  EXPECT_THROW(apply_option("bogus"), ConfigError);

  // A request above the hardware clamps; at or below it sticks.
  apply_option("avx2");
  EXPECT_EQ(active_level(), detected_level() < kAvx2 ? detected_level()
                                                     : kAvx2);
  apply_option("scalar");
  EXPECT_EQ(active_level(), kScalar);
  apply_option("auto");
  EXPECT_EQ(active_level(), detected_level());
}

// The grained parallel_for the batched executor dispatches rows with:
// every index covered exactly once, chunks never smaller than the grain
// (except the last), on a multi-worker pool.
TEST(SimdDispatch, ParallelForGrainedCoverage) {
  ThreadPool pool(4);
  for (const std::size_t n : {1ul, 7ul, 64ul, 1000ul}) {
    for (const std::size_t grain : {1ul, 3ul, 16ul, 128ul}) {
      std::vector<std::atomic<int>> hits(n);
      std::atomic<int> short_chunks{0};
      pool.parallel_for_grained(
          n, grain, [&](std::size_t begin, std::size_t end) {
            ASSERT_LT(begin, end);
            ASSERT_LE(end, n);
            if (end - begin < std::min(grain, n)) short_chunks.fetch_add(1);
            for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
          });
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "n=" << n << " grain=" << grain
                                     << " i=" << i;
      }
      // At most the final remainder chunk may run short of the grain.
      EXPECT_LE(short_chunks.load(), 1) << "n=" << n << " grain=" << grain;
    }
  }
}

}  // namespace
}  // namespace mpsim
