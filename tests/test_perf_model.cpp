// Tests for the roofline performance model: monotonicity, the memory vs
// compute bound crossover, barrier accounting, and the device specs.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "gpusim/perf_model.hpp"
#include "gpusim/spec.hpp"

namespace mpsim::gpusim {
namespace {

TEST(Specs, PaperHardwareNumbers) {
  const auto v = v100();
  EXPECT_EQ(v.sm_count, 80);
  EXPECT_DOUBLE_EQ(v.mem_bandwidth_gbs, 900.0);
  EXPECT_DOUBLE_EQ(v.fp64_tflops, 7.8);
  EXPECT_EQ(v.memory_capacity_bytes, std::size_t(32) << 30);

  const auto a = a100();
  EXPECT_EQ(a.sm_count, 108);
  EXPECT_DOUBLE_EQ(a.mem_bandwidth_gbs, 1555.0);
  EXPECT_DOUBLE_EQ(a.fp64_tflops, 9.7);
  EXPECT_EQ(a.memory_capacity_bytes, std::size_t(40) << 30);
}

TEST(Specs, LookupByName) {
  EXPECT_EQ(spec_by_name("V100").name, "V100");
  EXPECT_EQ(spec_by_name("a100").name, "A100");
  EXPECT_EQ(spec_by_name("cpu").name, "CPU");
  EXPECT_THROW(spec_by_name("H100"), Error);
}

TEST(Specs, PeakFlopsByWidth) {
  const auto a = a100();
  EXPECT_DOUBLE_EQ(a.peak_tflops(8), 9.7);
  EXPECT_DOUBLE_EQ(a.peak_tflops(4), 19.5);
  EXPECT_DOUBLE_EQ(a.peak_tflops(2), 39.0);
}

TEST(Roofline, MemoryBoundKernelScalesWithBytes) {
  const auto spec = a100();
  KernelCost c1;
  c1.bytes_read = 1LL << 30;
  KernelCost c2 = c1;
  c2.bytes_read *= 2;
  const double t1 = modeled_seconds(spec, c1);
  const double t2 = modeled_seconds(spec, c2);
  EXPECT_GT(t2, t1);
  // Double the traffic ~ double the time (launch overhead is small here).
  EXPECT_NEAR(t2 / t1, 2.0, 0.05);
}

TEST(Roofline, ComputeBoundWhenFlopsDominate) {
  const auto spec = a100();
  KernelCost c;
  c.bytes_read = 1024;          // negligible traffic
  c.flops = 1LL << 40;          // ~160 s of FP64 compute
  c.flop_width_bytes = 8;
  const double t = modeled_seconds(spec, c);
  const double compute_time =
      double(c.flops) / (spec.fp64_tflops * 1e12 * spec.compute_efficiency);
  EXPECT_NEAR(t, compute_time, compute_time * 0.01);
}

TEST(Roofline, ReducedPrecisionHalvesMemoryTime) {
  const auto spec = a100();
  KernelCost fp64;
  fp64.bytes_read = 8LL << 30;
  fp64.flop_width_bytes = 8;
  KernelCost fp16 = fp64;
  fp16.bytes_read = 2LL << 30;  // same element count, quarter the bytes
  fp16.flop_width_bytes = 2;
  EXPECT_NEAR(modeled_seconds(spec, fp64) / modeled_seconds(spec, fp16), 4.0,
              0.1);
}

TEST(Roofline, BarrierRoundsAddFixedCost) {
  const auto spec = a100();
  KernelCost c;
  c.barrier_rounds = 1000;
  const double t = modeled_seconds(spec, c);
  EXPECT_NEAR(t, spec.kernel_launch_overhead_us * 1e-6 +
                     1000 * spec.barrier_round_cost_us * 1e-6,
              1e-9);
}

TEST(Roofline, BarrierCostIsPrecisionIndependent) {
  // The paper: sort_&_incl_scan barely speeds up in reduced precision
  // because synchronisation dominates.  A barrier-heavy kernel must model
  // nearly the same time at FP64 and FP16.
  const auto spec = v100();
  KernelCost c;
  c.bytes_read = 64LL << 20;
  c.barrier_rounds = 2'000'000;
  KernelCost ch = c;
  ch.bytes_read /= 4;
  ch.flop_width_bytes = 2;
  const double t64 = modeled_seconds(spec, c);
  const double t16 = modeled_seconds(spec, ch);
  EXPECT_LT(t64 / t16, 1.1);
}

TEST(Roofline, CopyModel) {
  const auto spec = a100();
  const double t = modeled_copy_seconds(spec, 12LL * 1000 * 1000 * 1000);
  EXPECT_NEAR(t, 1.0 + spec.copy_latency_us * 1e-6, 1e-3);
  // The CPU spec has no interconnect: copies are free.
  EXPECT_DOUBLE_EQ(modeled_copy_seconds(skylake_cpu16(), 1 << 30), 0.0);
}

TEST(Roofline, DramUtilizationForStreamingKernel) {
  const auto spec = a100();
  KernelCost c;
  c.bytes_read = 8LL << 30;
  c.bytes_written = 4LL << 30;
  const double util = modeled_dram_utilization(spec, c);
  // A purely streaming kernel sustains ~bw_efficiency of peak.
  EXPECT_GT(util, 0.6);
  EXPECT_LE(util, spec.bw_efficiency + 0.01);
}

TEST(Ledger, AccumulatesAndResets) {
  KernelLedger ledger;
  KernelCost c;
  c.bytes_read = 100;
  ledger.record("a", c, 1.5);
  ledger.record("a", c, 0.5);
  ledger.record("b", c, 1.0);
  EXPECT_EQ(ledger.stats("a").launches, 2);
  EXPECT_DOUBLE_EQ(ledger.stats("a").modeled_seconds, 2.0);
  EXPECT_EQ(ledger.stats("a").cost.bytes_read, 200);
  EXPECT_DOUBLE_EQ(ledger.total_modeled_seconds(), 3.0);
  EXPECT_EQ(ledger.all().size(), 2u);
  ledger.reset();
  EXPECT_EQ(ledger.stats("a").launches, 0);
}

TEST(Ledger, MergeFromCombines) {
  KernelLedger a, b;
  KernelCost c;
  c.flops = 10;
  a.record("k", c, 1.0, 0.25);
  b.record("k", c, 2.0, 0.75);
  b.record("other", c, 3.0);
  a.merge_from(b);
  EXPECT_EQ(a.stats("k").launches, 2);
  EXPECT_DOUBLE_EQ(a.stats("k").modeled_seconds, 3.0);
  EXPECT_DOUBLE_EQ(a.stats("k").measured_seconds, 1.0);
  EXPECT_DOUBLE_EQ(a.stats("other").modeled_seconds, 3.0);
}

TEST(Occupancy, TunedConfigsFillResidentCapacity) {
  // §IV: 163,840 threads on V100 and 221,184 on A100 exactly fill the
  // resident-thread capacity (2048 per SM; A100's tuned config uses 64
  // warps = 2048 threads per SM).
  const auto v = v100();
  const auto a = a100();
  EXPECT_EQ(v.resident_thread_capacity(), 163840);
  EXPECT_EQ(a.resident_thread_capacity(), 221184);
}

TEST(Occupancy, LowOccupancySlowsMemoryBoundKernels) {
  const auto spec = a100();
  KernelCost full;
  full.bytes_read = 8LL << 30;
  full.occupancy = 1.0;
  KernelCost quarter = full;
  quarter.occupancy = 0.25;  // half of the saturation point
  const double t_full = modeled_seconds(spec, full);
  const double t_quarter = modeled_seconds(spec, quarter);
  EXPECT_NEAR(t_quarter / t_full, 2.0, 0.05);
}

TEST(Occupancy, BandwidthSaturatesAtHalfOccupancy) {
  const auto spec = a100();
  KernelCost half;
  half.bytes_read = 8LL << 30;
  half.occupancy = 0.5;
  KernelCost full = half;
  full.occupancy = 1.0;
  EXPECT_NEAR(modeled_seconds(spec, half), modeled_seconds(spec, full),
              1e-9);
}

TEST(Occupancy, ComputeScalesLinearly) {
  const auto spec = v100();
  KernelCost c;
  c.flops = 1LL << 40;
  c.occupancy = 0.5;
  KernelCost f = c;
  f.occupancy = 1.0;
  EXPECT_NEAR(modeled_seconds(spec, c) / modeled_seconds(spec, f), 2.0,
              0.05);
}

TEST(Roofline, CpuIsSlowerThanGpusOnSameTraffic) {
  KernelCost c;
  c.bytes_read = 1LL << 34;
  const double cpu = modeled_seconds(skylake_cpu16(), c);
  const double v = modeled_seconds(v100(), c);
  const double a = modeled_seconds(a100(), c);
  EXPECT_GT(cpu, v);
  EXPECT_GT(v, a);
}

}  // namespace
}  // namespace mpsim::gpusim
