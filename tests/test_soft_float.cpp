// Tests for the generic soft_float formats (bfloat16, TF32) and the
// extended precision modes built on them (paper §VII future work).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "metrics/accuracy.hpp"
#include "mp/cpu_reference.hpp"
#include "mp/matrix_profile.hpp"
#include "precision/modes.hpp"
#include "precision/soft_float.hpp"
#include "tsdata/synthetic.hpp"

namespace mpsim {
namespace {

TEST(Bfloat16, BasicEncodings) {
  EXPECT_EQ(bfloat16(0.0).bits(), 0u);
  // bfloat16 is truncated binary32: 1.0 = 0x3f80, -2.0 = 0xc000.
  EXPECT_EQ(bfloat16(1.0).bits(), 0x3f80u);
  EXPECT_EQ(bfloat16(-2.0).bits(), 0xc000u);
  EXPECT_DOUBLE_EQ(double(bfloat16(1.0)), 1.0);
  EXPECT_TRUE(isnan(bfloat16(std::nan(""))));
  EXPECT_TRUE(isinf(bfloat16(1e40)));
}

TEST(Bfloat16, MatchesTruncatedFloat32UpToRounding) {
  // Every bfloat16 value is a binary32 value with a zero low mantissa;
  // round-tripping through the format must preserve exactly those.
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    const float f = float(rng.normal(0.0, 100.0));
    const std::uint32_t fbits = std::bit_cast<std::uint32_t>(f);
    const float truncated = std::bit_cast<float>(fbits & 0xffff0000u);
    const bfloat16 b{double(truncated)};
    EXPECT_EQ(float(double(b)), truncated);
  }
}

TEST(Bfloat16, RangeVsResolutionTradeoff) {
  // Wide exponent: no overflow where FP16 overflows...
  EXPECT_FALSE(isinf(bfloat16(1e30)));
  EXPECT_TRUE(isinf(float16(70000.0)));
  // ...but coarse resolution: ulp(256) = 2 in bfloat16, 0.25 in FP16.
  EXPECT_DOUBLE_EQ(double(bfloat16(257.0)), 256.0);
  EXPECT_DOUBLE_EQ(double(float16(257.0)), 257.0);
}

TEST(Tfloat32, MatchesFp16MantissaWithFp32Range) {
  // Same significand as binary16: in the FP16 normal range (and away
  // from FP16 subnormals), rounding matches FP16 exactly.
  Rng rng(4);
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.normal(0.0, 10.0);
    if (std::fabs(v) < 0x1.0p-14) continue;
    EXPECT_DOUBLE_EQ(double(tfloat32(v)), double(float16(v))) << v;
  }
  // ...but it survives far beyond the FP16 range.
  EXPECT_FALSE(isinf(tfloat32(1e6)));
  EXPECT_NEAR(double(tfloat32(1e6)), 1e6, 500.0);
}

TEST(SoftFloat, RoundToNearestEvenTies) {
  // bfloat16 around 1.0: ulp = 2^-7; tie at 1 + 2^-8 rounds to even (1.0).
  EXPECT_DOUBLE_EQ(double(bfloat16(1.0 + 0x1.0p-8)), 1.0);
  EXPECT_DOUBLE_EQ(double(bfloat16(1.0 + 3 * 0x1.0p-8)), 1.0 + 0x1.0p-6);
  EXPECT_DOUBLE_EQ(double(bfloat16(1.0 + 0x1.0p-8 + 0x1.0p-20)),
                   1.0 + 0x1.0p-7);
}

TEST(SoftFloat, SubnormalsRoundTrip) {
  using TinyFloat = soft_float<3, 4>;  // tiny format exercises the edges
  // All 256 bit patterns: decode -> encode must round-trip (modulo NaN).
  for (std::uint32_t b = 0; b < 256; ++b) {
    const TinyFloat f = TinyFloat::from_bits(b);
    if (std::isnan(double(f))) continue;
    EXPECT_EQ(TinyFloat::encode(double(f)), b) << "bits=" << b;
  }
}

TEST(SoftFloat, ArithmeticRoundsPerOperation) {
  // bfloat16: 256 + 1 = 256 (ulp = 2).
  EXPECT_DOUBLE_EQ(double(bfloat16(256.0) + bfloat16(1.0)), 256.0);
  EXPECT_DOUBLE_EQ(double(bfloat16(256.0) + bfloat16(2.0)), 258.0);
  EXPECT_DOUBLE_EQ(double(sqrt(tfloat32(4.0))), 2.0);
  EXPECT_DOUBLE_EQ(double(abs(bfloat16(-3.0))), 3.0);
}

TEST(ExtendedModes, NamesAndSizes) {
  EXPECT_EQ(to_string(PrecisionMode::BF16), "BF16");
  EXPECT_EQ(to_string(PrecisionMode::TF32), "TF32");
  EXPECT_EQ(parse_precision_mode("bf16"), PrecisionMode::BF16);
  EXPECT_EQ(parse_precision_mode("TF32"), PrecisionMode::TF32);
  EXPECT_EQ(storage_bytes(PrecisionMode::BF16), 2u);
  EXPECT_EQ(storage_bytes(PrecisionMode::TF32), 4u);
  EXPECT_DOUBLE_EQ(unit_roundoff(PrecisionMode::BF16), 0x1.0p-8);
  EXPECT_DOUBLE_EQ(unit_roundoff(PrecisionMode::TF32), 0x1.0p-11);
}

TEST(ExtendedModes, DispatchReachesNewTraits) {
  EXPECT_EQ(dispatch_precision(PrecisionMode::BF16,
                               []<typename T>() { return T::kMode; }),
            PrecisionMode::BF16);
  EXPECT_EQ(dispatch_precision(PrecisionMode::TF32,
                               []<typename T>() { return T::kMode; }),
            PrecisionMode::TF32);
}

class ExtendedModePipeline : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticSpec spec;
    spec.segments = 512;
    spec.dims = 4;
    spec.window = 32;
    spec.injections_per_dim = 3;
    data_ = new SyntheticDataset(make_synthetic_dataset(spec));
    mp::CpuReferenceConfig config;
    config.window = 32;
    reference_ = new mp::CpuReferenceResult(
        mp::compute_matrix_profile_cpu(data_->reference, data_->query,
                                       config));
  }
  static void TearDownTestSuite() {
    delete data_;
    delete reference_;
  }
  static const SyntheticDataset* data_;
  static const mp::CpuReferenceResult* reference_;
};

const SyntheticDataset* ExtendedModePipeline::data_ = nullptr;
const mp::CpuReferenceResult* ExtendedModePipeline::reference_ = nullptr;

TEST_F(ExtendedModePipeline, Tf32MatchesFp16WithoutOverflow) {
  // Same significand, wider range: on well-scaled data the two modes must
  // produce identical indices.
  mp::MatrixProfileConfig config;
  config.window = 32;
  config.mode = PrecisionMode::TF32;
  const auto tf32 =
      mp::compute_matrix_profile(data_->reference, data_->query, config);
  config.mode = PrecisionMode::FP16;
  const auto fp16 =
      mp::compute_matrix_profile(data_->reference, data_->query, config);
  EXPECT_EQ(tf32.index, fp16.index);
}

TEST_F(ExtendedModePipeline, Bf16TradesAccuracyForRange) {
  mp::MatrixProfileConfig config;
  config.window = 32;
  config.mode = PrecisionMode::BF16;
  const auto bf16 =
      mp::compute_matrix_profile(data_->reference, data_->query, config);
  config.mode = PrecisionMode::FP16;
  const auto fp16 =
      mp::compute_matrix_profile(data_->reference, data_->query, config);

  // Coarser mantissa: numerically worse than FP16 on in-range data...
  EXPECT_LT(metrics::relative_accuracy(bf16.profile, reference_->profile),
            metrics::relative_accuracy(fp16.profile, reference_->profile));
  // ...yet pattern detection still works (practical accuracy).
  const double recall = metrics::embedded_motif_recall(
      bf16.index, bf16.segments, data_->injections, 32, 0.10);
  EXPECT_GE(recall, 0.6);
}

TEST(ExtendedModePipelineOverflow, Bf16SurvivesWhereFp16Overflows) {
  // Large-magnitude data: FP16 cumulative sums overflow (the turbine
  // study's motivation for min-max normalisation); BF16's binary32 range
  // absorbs it.
  TimeSeries ref(512 + 31, 1), qry(512 + 31, 1);
  Rng rng(5);
  for (std::size_t t = 0; t < ref.length(); ++t) {
    ref.at(t, 0) = 3000.0 + 100.0 * rng.normal();
    qry.at(t, 0) = 3000.0 + 100.0 * rng.normal();
  }
  mp::CpuReferenceConfig cpu;
  cpu.window = 32;
  const auto reference = mp::compute_matrix_profile_cpu(ref, qry, cpu);

  mp::MatrixProfileConfig config;
  config.window = 32;
  config.mode = PrecisionMode::FP16;
  const auto fp16 = mp::compute_matrix_profile(ref, qry, config);
  config.mode = PrecisionMode::BF16;
  const auto bf16 = mp::compute_matrix_profile(ref, qry, config);
  config.mode = PrecisionMode::TF32;
  const auto tf32 = mp::compute_matrix_profile(ref, qry, config);

  // FP16's streaming sums overflow: the profile is unusable (A ~ 0).
  // The binary32-range formats keep meaningful (if coarse) values.
  const double a16 =
      metrics::relative_accuracy(fp16.profile, reference.profile);
  EXPECT_GT(metrics::relative_accuracy(bf16.profile, reference.profile),
            a16 + 0.3);
  EXPECT_GT(metrics::relative_accuracy(tf32.profile, reference.profile),
            a16 + 0.3);
}

}  // namespace
}  // namespace mpsim
