#!/usr/bin/env bash
# Chaos soak: mpsim_cli must survive seeded randomized fault storms —
# transient kernel faults, minute-long hangs rescued by the watchdog,
# probabilistic slowdowns, and a mid-run kill resumed from its checkpoint
# — and still emit a byte-identical profile CSV to the clean run every
# time.  Driven by CTest; $1 = build dir with the tools.
set -euo pipefail
BUILD=$1
WORK=$(mktemp -d)
CLI="$BUILD/tools/mpsim_cli"

cleanup() {
  status=$?
  if [ "$status" -ne 0 ]; then
    echo "chaos_soak_test FAILED (exit $status) at line ${FAILED_LINE:-?}" >&2
    for f in "$WORK"/*.log; do
      [ -f "$f" ] || continue
      echo "--- $f:" >&2
      cat "$f" >&2
    done
  fi
  rm -rf "$WORK"
  exit "$status"
}
trap 'FAILED_LINE=$LINENO' ERR
trap cleanup EXIT

awk 'BEGIN {
  srand(11); print "a,b";
  for (t = 0; t < 600; ++t) {
    a = sin(t / 7.0) + (rand() - 0.5) * 0.4;
    b = cos(t / 11.0) + (rand() - 0.5) * 0.4;
    printf "%.6f,%.6f\n", a, b;
  }
}' > "$WORK/ref.csv"

COMMON=(--reference="$WORK/ref.csv" --self-join --window=32 --tiles=6
        --devices=2 --motifs=0)

"$CLI" "${COMMON[@]}" --output="$WORK/clean.csv" > "$WORK/clean.log"

# --- Leg 1: mid-run kill + resume (with a transient kernel fault on top).
# The in-process kill behaves exactly like SIGTERM: graceful checkpoint
# flush and exit 130.  A fast run may commit everything before the monitor
# observes the request, in which case it exits 0 with a complete journal —
# both are valid chaos outcomes, and the resumed run must converge to the
# clean bytes either way.
status=0
"$CLI" "${COMMON[@]}" --checkpoint="$WORK/run.ckpt" --checkpoint-interval=1 \
    --kill-after-tiles=3 --faults="seed=2,kernel@0:at=4" \
    > "$WORK/killed.log" || status=$?
if [ "$status" -ne 0 ] && [ "$status" -ne 130 ]; then
  echo "kill leg: expected exit 0 or 130, got $status" >&2
  exit 1
fi
[ -f "$WORK/run.ckpt" ]

"$CLI" "${COMMON[@]}" --resume="$WORK/run.ckpt" --checkpoint="$WORK/run.ckpt" \
    --output="$WORK/resumed.csv" > "$WORK/resumed.log"
cmp "$WORK/clean.csv" "$WORK/resumed.csv"
grep -Eq "durability: [1-9][0-9]* tile\(s\) resumed" "$WORK/resumed.log"

# --- Leg 2: seeded fault storms under the watchdog.  Each seed mixes
# deterministic hangs (rescued by speculative re-execution), transient
# kernel faults and probabilistic slowdowns; the profile bytes must never
# change.
for seed in 3 5 9; do
  "$CLI" "${COMMON[@]}" --watchdog --output="$WORK/chaos$seed.csv" \
      --faults="seed=$seed,hang@1:at=3:ms=60000,kernel@0:at=7,slow@0:p=0.2:ms=5" \
      > "$WORK/chaos$seed.log"
  cmp "$WORK/clean.csv" "$WORK/chaos$seed.csv"
done

# --- Leg 3: kill during a fault storm, then resume under the watchdog.
status=0
"$CLI" "${COMMON[@]}" --watchdog --checkpoint="$WORK/storm.ckpt" \
    --checkpoint-interval=1 --kill-after-tiles=2 \
    --faults="seed=4,kernel@1:at=6,slow@0:p=0.3:ms=5" \
    > "$WORK/storm_killed.log" || status=$?
if [ "$status" -ne 0 ] && [ "$status" -ne 130 ]; then
  echo "storm kill leg: expected exit 0 or 130, got $status" >&2
  exit 1
fi
"$CLI" "${COMMON[@]}" --watchdog --resume="$WORK/storm.ckpt" \
    --output="$WORK/storm_resumed.csv" > "$WORK/storm_resumed.log"
cmp "$WORK/clean.csv" "$WORK/storm_resumed.csv"

# --- Leg 4: node chaos.  A node crash mid-tile (the dying node never
# flushes its side journal) followed by a resume on *fewer* nodes, and a
# steal storm where every tile start on node 0 stutters — the elastic
# coordinator must converge to the clean bytes in both shapes.
status=0
"$CLI" "${COMMON[@]}" --nodes=3 --node-faults="seed=8,node_crash@2:at=1" \
    --checkpoint="$WORK/node.ckpt" --checkpoint-interval=1 \
    --slice-rows=16 --kill-after-slices=3 \
    > "$WORK/node_killed.log" || status=$?
if [ "$status" -ne 0 ] && [ "$status" -ne 130 ]; then
  echo "node kill leg: expected exit 0 or 130, got $status" >&2
  exit 1
fi
[ -f "$WORK/node.ckpt" ]
"$CLI" "${COMMON[@]}" --nodes=2 --resume="$WORK/node.ckpt" \
    --output="$WORK/node_resumed.csv" > "$WORK/node_resumed.log"
cmp "$WORK/clean.csv" "$WORK/node_resumed.csv"

for seed in 6 12; do
  "$CLI" "${COMMON[@]}" --nodes=2 --watchdog \
      --node-faults="seed=$seed,node_slow@0:every=1:ms=15" \
      --output="$WORK/steal$seed.csv" > "$WORK/steal$seed.log"
  cmp "$WORK/clean.csv" "$WORK/steal$seed.csv"
done

echo "chaos soak OK"
