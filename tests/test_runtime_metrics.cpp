// Tests for the runtime observability layer (common/metrics.hpp):
// counter/gauge/histogram semantics, concurrent recording, disabled-mode
// no-ops, JSON serialisation and the wall-clock event recorder.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/metrics.hpp"

namespace mpsim {
namespace {

TEST(RuntimeMetrics, CounterCountsWhenEnabled) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  Counter& c = registry.counter("test.counter");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name resolves to the same instrument.
  EXPECT_EQ(&registry.counter("test.counter"), &c);
}

TEST(RuntimeMetrics, DisabledRegistryRecordsNothing) {
  MetricsRegistry registry;  // disabled by default
  Counter& c = registry.counter("test.counter");
  Gauge& g = registry.gauge("test.gauge");
  Histogram& h = registry.histogram("test.hist");
  c.add(7);
  g.set(3.5);
  h.record(1.0);
  { ScopedEvent span(registry, "noop", 0, "lane"); }
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_TRUE(registry.timeline().events().empty());

  // Flipping the switch arms the existing instrument references.
  registry.set_enabled(true);
  c.add(7);
  EXPECT_EQ(c.value(), 7u);
}

TEST(RuntimeMetrics, ConcurrentCounterIncrementsAreLossless) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  Counter& c = registry.counter("test.concurrent");
  Histogram& h = registry.histogram("test.concurrent_hist");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &h] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add();
        h.record(1.0);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), std::uint64_t(kThreads) * kPerThread);
  EXPECT_EQ(h.count(), std::uint64_t(kThreads) * kPerThread);
  EXPECT_EQ(h.sum(), double(kThreads) * kPerThread);
  EXPECT_EQ(h.min(), 1.0);
  EXPECT_EQ(h.max(), 1.0);
}

TEST(RuntimeMetrics, HistogramBucketing) {
  // Bucket b covers [2^(b + kMinExponent), 2^(b + 1 + kMinExponent)).
  EXPECT_EQ(Histogram::bucket_index(1.0), std::size_t(-Histogram::kMinExponent));
  EXPECT_EQ(Histogram::bucket_index(2.0),
            std::size_t(-Histogram::kMinExponent) + 1);
  EXPECT_EQ(Histogram::bucket_index(3.9),
            std::size_t(-Histogram::kMinExponent) + 1);
  EXPECT_EQ(Histogram::bucket_index(0.5),
            std::size_t(-Histogram::kMinExponent) - 1);
  // Extremes clamp to the edge buckets instead of overflowing.
  EXPECT_EQ(Histogram::bucket_index(0.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1e300), Histogram::kBucketCount - 1);
  EXPECT_EQ(Histogram::bucket_floor(std::size_t(-Histogram::kMinExponent)),
            1.0);

  MetricsRegistry registry;
  registry.set_enabled(true);
  Histogram& h = registry.histogram("test.buckets");
  h.record(1.0);
  h.record(1.5);
  h.record(8.0);
  h.record(-1.0);                                        // ignored
  h.record(std::numeric_limits<double>::quiet_NaN());    // ignored
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), 1.0);
  EXPECT_EQ(h.max(), 8.0);
  EXPECT_EQ(h.sum(), 10.5);
  EXPECT_EQ(h.bucket(Histogram::bucket_index(1.0)), 2u);
  EXPECT_EQ(h.bucket(Histogram::bucket_index(8.0)), 1u);
}

TEST(RuntimeMetrics, NameCollisionAcrossKindsThrows) {
  MetricsRegistry registry;
  registry.counter("shared.name");
  EXPECT_THROW(registry.gauge("shared.name"), Error);
  EXPECT_THROW(registry.histogram("shared.name"), Error);
}

TEST(RuntimeMetrics, SnapshotAndJson) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  registry.counter("c.one").add(3);
  registry.gauge("g.one").set(2.25);
  registry.histogram("h.one").record(4.0);

  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].first, "c.one");
  EXPECT_EQ(snap.counters[0].second, 3u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second, 2.25);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1u);
  EXPECT_EQ(snap.histograms[0].mean(), 4.0);

  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"schema\": \"mpsim-metrics-v2\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"c.one\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"h.one\""), std::string::npos) << json;
}

TEST(RuntimeMetrics, ScopedEventRecordsTimelineSpan) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  Histogram& seconds = registry.histogram("span.seconds");
  {
    ScopedEvent span(registry, "unit-span", 2, "test-lane", &seconds);
  }
  const auto timeline = registry.timeline();
  ASSERT_EQ(timeline.events().size(), 1u);
  const auto& e = timeline.events()[0];
  EXPECT_EQ(e.name, "unit-span");
  EXPECT_EQ(e.device, 2);
  EXPECT_EQ(e.lane, "test-lane");
  EXPECT_GE(e.start_seconds, 0.0);
  EXPECT_GE(e.duration_seconds, 0.0);
  EXPECT_EQ(seconds.count(), 1u);

  const std::string chrome = timeline.to_chrome_json();
  EXPECT_NE(chrome.find("\"ph\""), std::string::npos) << chrome;
  EXPECT_NE(chrome.find("unit-span"), std::string::npos) << chrome;
}

TEST(RuntimeMetrics, ResetZeroesInstrumentsAndTimeline) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  Counter& c = registry.counter("reset.counter");
  Histogram& h = registry.histogram("reset.hist");
  c.add(5);
  h.record(1.0);
  { ScopedEvent span(registry, "span", 0, "lane"); }
  registry.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), std::numeric_limits<double>::infinity());
  EXPECT_TRUE(registry.timeline().events().empty());
  // Instrument references stay valid and usable after reset.
  c.add(2);
  EXPECT_EQ(c.value(), 2u);
}

TEST(RuntimeMetrics, GlobalRegistryIsDisabledByDefault) {
  // The process-wide instance must not record unless explicitly armed
  // (production code runs with it off).  Restore state for other tests.
  MetricsRegistry& reg = MetricsRegistry::global();
  const bool was_enabled = reg.enabled();
  reg.set_enabled(false);
  Counter& c = reg.counter("test.global_default_off");
  c.add();
  EXPECT_EQ(c.value(), 0u);
  reg.set_enabled(was_enabled);
}

}  // namespace
}  // namespace mpsim
