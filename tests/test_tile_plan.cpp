// Tests for the tiling planner: grid factorisation, coverage, balance and
// Round-robin device assignment.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "common/error.hpp"
#include "mp/tile_plan.hpp"

namespace mpsim::mp {
namespace {

TEST(TileGrid, SquareFactorisationWithRowBias) {
  EXPECT_EQ(choose_tile_grid(1).rows, 1);
  EXPECT_EQ(choose_tile_grid(1).cols, 1);
  EXPECT_EQ(choose_tile_grid(4).rows, 2);
  EXPECT_EQ(choose_tile_grid(4).cols, 2);
  EXPECT_EQ(choose_tile_grid(8).rows, 4);
  EXPECT_EQ(choose_tile_grid(8).cols, 2);
  EXPECT_EQ(choose_tile_grid(16).rows, 4);
  EXPECT_EQ(choose_tile_grid(16).cols, 4);
  EXPECT_EQ(choose_tile_grid(1024).rows, 32);
  EXPECT_EQ(choose_tile_grid(1024).cols, 32);
  // Primes degenerate to row strips (rows >= cols always).
  EXPECT_EQ(choose_tile_grid(7).rows, 7);
  EXPECT_EQ(choose_tile_grid(7).cols, 1);
  EXPECT_THROW(choose_tile_grid(0), Error);
}

class TileCoverage : public ::testing::TestWithParam<int> {};

TEST_P(TileCoverage, TilesPartitionTheMatrixExactly) {
  const int ntiles = GetParam();
  const std::size_t nr = 1000, nq = 777;
  const auto tiles = compute_tile_list(nr, nq, ntiles);

  // Every (i, j) cell covered exactly once.
  std::size_t covered = 0;
  for (const auto& t : tiles) covered += t.r_count * t.q_count;
  EXPECT_EQ(covered, nr * nq);

  // Ranges stay in bounds and are non-empty.
  for (const auto& t : tiles) {
    EXPECT_GT(t.r_count, 0u);
    EXPECT_GT(t.q_count, 0u);
    EXPECT_LE(t.r_begin + t.r_count, nr);
    EXPECT_LE(t.q_begin + t.q_count, nq);
  }

  // No two tiles overlap (check pairwise rectangles).
  for (std::size_t a = 0; a < tiles.size(); ++a) {
    for (std::size_t b = a + 1; b < tiles.size(); ++b) {
      const bool row_disjoint =
          tiles[a].r_begin + tiles[a].r_count <= tiles[b].r_begin ||
          tiles[b].r_begin + tiles[b].r_count <= tiles[a].r_begin;
      const bool col_disjoint =
          tiles[a].q_begin + tiles[a].q_count <= tiles[b].q_begin ||
          tiles[b].q_begin + tiles[b].q_count <= tiles[a].q_begin;
      EXPECT_TRUE(row_disjoint || col_disjoint);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Counts, TileCoverage,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 16, 17, 64, 256));

TEST(TileList, BalancedWithinOneElement) {
  const auto tiles = compute_tile_list(1001, 500, 16);  // 4x4 grid
  std::size_t min_r = SIZE_MAX, max_r = 0;
  for (const auto& t : tiles) {
    min_r = std::min(min_r, t.r_count);
    max_r = std::max(max_r, t.r_count);
  }
  EXPECT_LE(max_r - min_r, 1u);
}

TEST(TileList, ClampsGridForTinyInputs) {
  // 3 segments cannot be split into 8 row blocks; the planner must not
  // emit empty tiles.
  const auto tiles = compute_tile_list(3, 2, 64);
  for (const auto& t : tiles) {
    EXPECT_GT(t.r_count, 0u);
    EXPECT_GT(t.q_count, 0u);
  }
  std::size_t covered = 0;
  for (const auto& t : tiles) covered += t.r_count * t.q_count;
  EXPECT_EQ(covered, 6u);
}

TEST(RoundRobin, BalancedAssignmentWhenDivisible) {
  auto tiles = compute_tile_list(1024, 1024, 16);
  assign_tiles_round_robin(tiles, 4);
  std::vector<int> per_device(4, 0);
  for (const auto& t : tiles) per_device[std::size_t(t.device)] += 1;
  for (int c : per_device) EXPECT_EQ(c, 4);
}

TEST(RoundRobin, ImbalanceWithOddDeviceCounts) {
  // The paper observes inefficiency with odd GPU counts because 16 tiles
  // don't divide by 3: one device gets 6, the others 5.
  auto tiles = compute_tile_list(1024, 1024, 16);
  assign_tiles_round_robin(tiles, 3);
  std::vector<int> per_device(3, 0);
  for (const auto& t : tiles) per_device[std::size_t(t.device)] += 1;
  std::sort(per_device.begin(), per_device.end());
  EXPECT_EQ(per_device[0], 5);
  EXPECT_EQ(per_device[2], 6);
}

TEST(RoundRobin, AllDevicesUsedWhenEnoughTiles) {
  auto tiles = compute_tile_list(4096, 4096, 64);
  assign_tiles_round_robin(tiles, 8);
  std::set<int> devices;
  for (const auto& t : tiles) devices.insert(t.device);
  EXPECT_EQ(devices.size(), 8u);
}

TEST(LptAssignment, EqualTilesMatchRoundRobinMakespan) {
  // The planner emits equal-sized tiles, so LPT cannot beat Round-robin —
  // the ceil(T/G) quantisation is the only imbalance (the paper's
  // odd-GPU-count observation).
  auto rr = compute_tile_list(4096, 4096, 16);
  auto lpt = rr;
  assign_tiles_round_robin(rr, 3);
  assign_tiles_lpt(lpt, 3);
  EXPECT_EQ(assignment_makespan(rr, 3), assignment_makespan(lpt, 3));
}

TEST(LptAssignment, BeatsRoundRobinOnUnevenTiles) {
  // Hand-built uneven tiling: one huge tile and several small ones.
  // Round-robin by id pairs the huge tile with others on device 0; LPT
  // isolates it.
  std::vector<Tile> tiles{
      {0, 1000, 0, 1000, 0, 0},  // area 1,000,000
      {0, 100, 0, 100, 0, 1},    // area 10,000
      {0, 100, 0, 100, 0, 2},
      {0, 100, 0, 100, 0, 3},
  };
  auto rr = tiles;
  auto lpt = tiles;
  assign_tiles_round_robin(rr, 2);
  assign_tiles_lpt(lpt, 2);
  // RR: device 0 gets tiles {0, 2} = 1,010,000. LPT: the huge tile sits
  // alone, the three small ones share the other device.
  EXPECT_EQ(assignment_makespan(rr, 2), 1'010'000u);
  EXPECT_EQ(assignment_makespan(lpt, 2), 1'000'000u);
}

TEST(LptAssignment, DeterministicAndInRange) {
  auto tiles = compute_tile_list(777, 555, 12);
  auto again = tiles;
  assign_tiles_lpt(tiles, 5);
  assign_tiles_lpt(again, 5);
  for (std::size_t i = 0; i < tiles.size(); ++i) {
    EXPECT_EQ(tiles[i].device, again[i].device);
    EXPECT_GE(tiles[i].device, 0);
    EXPECT_LT(tiles[i].device, 5);
  }
}

TEST(AssignmentMakespan, ValidatesDeviceRange) {
  auto tiles = compute_tile_list(100, 100, 4);
  assign_tiles_round_robin(tiles, 4);
  EXPECT_THROW(assignment_makespan(tiles, 2), Error);
}

TEST(TileList, IdsAreSequentialRowMajor) {
  const auto tiles = compute_tile_list(100, 100, 4);
  for (std::size_t i = 0; i < tiles.size(); ++i) {
    EXPECT_EQ(tiles[i].id, int(i));
  }
  // Row-major: the second tile shares the row block of the first.
  EXPECT_EQ(tiles[0].r_begin, tiles[1].r_begin);
  EXPECT_NE(tiles[0].q_begin, tiles[1].q_begin);
}

}  // namespace
}  // namespace mpsim::mp
