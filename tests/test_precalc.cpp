// Tests for the precalculation step: sliding statistics, streaming
// coefficients and QT seeds, across precision traits.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "mp/precalc.hpp"

namespace mpsim::mp {
namespace {

using Fp64 = PrecisionTraits<PrecisionMode::FP64>;
using Fp16 = PrecisionTraits<PrecisionMode::FP16>;
using Mixed = PrecisionTraits<PrecisionMode::Mixed>;
using Fp16c = PrecisionTraits<PrecisionMode::FP16C>;

struct DirectStats {
  std::vector<double> mu, inv;
};

DirectStats direct_stats(const std::vector<double>& x, std::size_t m) {
  const std::size_t nseg = x.size() - m + 1;
  DirectStats s;
  s.mu.resize(nseg);
  s.inv.resize(nseg);
  for (std::size_t i = 0; i < nseg; ++i) {
    double sum = 0.0;
    for (std::size_t t = 0; t < m; ++t) sum += x[i + t];
    s.mu[i] = sum / double(m);
    double ssq = 0.0;
    for (std::size_t t = 0; t < m; ++t) {
      const double c = x[i + t] - s.mu[i];
      ssq += c * c;
    }
    s.inv[i] = ssq > 0.0 ? 1.0 / std::sqrt(ssq) : 0.0;
  }
  return s;
}

std::vector<double> random_series(std::size_t len, std::uint64_t seed,
                                  double sigma = 1.0) {
  Rng rng(seed);
  std::vector<double> x(len);
  for (auto& v : x) v = rng.normal(0.0, sigma);
  return x;
}

TEST(PrecalcFp64, SlidingStatsMatchDirectComputation) {
  const std::size_t m = 16, nseg = 200;
  const auto x = random_series(nseg + m - 1, 1);
  std::vector<double> mu(nseg), inv(nseg), df(nseg), dg(nseg);
  precalc_dimension<Fp64>(x.data(), m, nseg, mu.data(), inv.data(), df.data(),
                          dg.data());
  const auto direct = direct_stats(x, m);
  for (std::size_t i = 0; i < nseg; ++i) {
    EXPECT_NEAR(mu[i], direct.mu[i], 1e-12) << i;
    EXPECT_NEAR(inv[i], direct.inv[i], 1e-9 * direct.inv[i]) << i;
  }
}

TEST(PrecalcFp64, CoefficientsMatchScampDefinitions) {
  const std::size_t m = 8, nseg = 50;
  const auto x = random_series(nseg + m - 1, 2);
  std::vector<double> mu(nseg), inv(nseg), df(nseg), dg(nseg);
  precalc_dimension<Fp64>(x.data(), m, nseg, mu.data(), inv.data(), df.data(),
                          dg.data());
  EXPECT_DOUBLE_EQ(df[0], 0.0);
  EXPECT_DOUBLE_EQ(dg[0], 0.0);
  for (std::size_t i = 1; i < nseg; ++i) {
    EXPECT_NEAR(df[i], (x[i + m - 1] - x[i - 1]) * 0.5, 1e-14);
    EXPECT_NEAR(dg[i], (x[i + m - 1] - mu[i]) + (x[i - 1] - mu[i - 1]),
                1e-12);
  }
}

TEST(PrecalcFp64, StreamingUpdateReproducesDirectDots) {
  // The point of df/dg: QT[i,j] = QT[i-1,j-1] + df_r[i]*dg_q[j] +
  // dg_r[i]*df_q[j] must equal the direct mean-centred dot product.
  const std::size_t m = 12, nseg = 60;
  const auto r = random_series(nseg + m - 1, 3);
  const auto q = random_series(nseg + m - 1, 4);
  std::vector<double> mu_r(nseg), inv_r(nseg), df_r(nseg), dg_r(nseg);
  std::vector<double> mu_q(nseg), inv_q(nseg), df_q(nseg), dg_q(nseg);
  precalc_dimension<Fp64>(r.data(), m, nseg, mu_r.data(), inv_r.data(),
                          df_r.data(), dg_r.data());
  precalc_dimension<Fp64>(q.data(), m, nseg, mu_q.data(), inv_q.data(),
                          df_q.data(), dg_q.data());

  auto direct_dot = [&](std::size_t i, std::size_t j) {
    double dot = 0.0;
    for (std::size_t t = 0; t < m; ++t) {
      dot += (r[i + t] - mu_r[i]) * (q[j + t] - mu_q[j]);
    }
    return dot;
  };

  // Walk a few diagonals.
  for (std::size_t delta : {0ul, 3ul, 17ul}) {
    double qt = direct_dot(0, delta);
    for (std::size_t i = 1; i + delta < nseg; ++i) {
      const std::size_t j = i + delta;
      qt = qt + df_r[i] * dg_q[j] + dg_r[i] * df_q[j];
      EXPECT_NEAR(qt, direct_dot(i, j), 1e-9) << "i=" << i << " j=" << j;
    }
  }
}

TEST(Precalc, CenteredDotMatchesDirect) {
  const std::size_t m = 32;
  const auto r = random_series(m, 5);
  const auto q = random_series(m, 6);
  double mu_r = 0.0, mu_q = 0.0;
  for (std::size_t t = 0; t < m; ++t) {
    mu_r += r[t];
    mu_q += q[t];
  }
  mu_r /= double(m);
  mu_q /= double(m);
  const double got = centered_dot<Fp64>(r.data(), q.data(), m, mu_r, mu_q);
  double expected = 0.0;
  for (std::size_t t = 0; t < m; ++t) {
    expected += (r[t] - mu_r) * (q[t] - mu_q);
  }
  EXPECT_NEAR(got, expected, 1e-10);
}

TEST(Precalc, FlatSegmentsGetZeroInverseNorm) {
  const std::size_t m = 8, nseg = 10;
  std::vector<double> x(nseg + m - 1, 3.25);  // constant series
  std::vector<double> mu(nseg), inv(nseg), df(nseg), dg(nseg);
  precalc_dimension<Fp64>(x.data(), m, nseg, mu.data(), inv.data(), df.data(),
                          dg.data());
  for (std::size_t i = 0; i < nseg; ++i) {
    EXPECT_DOUBLE_EQ(mu[i], 3.25);
    EXPECT_DOUBLE_EQ(inv[i], 0.0);  // SCAMP convention, no inf/NaN
  }
}

TEST(PrecalcFp16, LongSeriesSufferCancellation) {
  // FP16 cumulative sums lose the sliding mean accuracy as the series
  // grows — the §V-B failure mode.  Mixed (FP32 precalc) must stay close
  // to FP64 on the same data.
  const std::size_t m = 32, nseg = 4000;
  const auto x = random_series(nseg + m - 1, 7, 0.25);
  std::vector<float16> x16(x.size());
  for (std::size_t t = 0; t < x.size(); ++t) x16[t] = float16{x[t]};

  std::vector<double> mu64(nseg), inv64(nseg), df64(nseg), dg64(nseg);
  precalc_dimension<Fp64>(x.data(), m, nseg, mu64.data(), inv64.data(),
                          df64.data(), dg64.data());

  std::vector<float16> mu16(nseg), inv16(nseg), df16(nseg), dg16(nseg);
  precalc_dimension<Fp16>(x16.data(), m, nseg, mu16.data(), inv16.data(),
                          df16.data(), dg16.data());

  std::vector<float16> mu_mx(nseg), inv_mx(nseg), df_mx(nseg), dg_mx(nseg);
  precalc_dimension<Mixed>(x16.data(), m, nseg, mu_mx.data(), inv_mx.data(),
                           df_mx.data(), dg_mx.data());

  double err16 = 0.0, err_mx = 0.0;
  for (std::size_t i = 0; i < nseg; ++i) {
    err16 += std::fabs(double(mu16[i]) - mu64[i]);
    err_mx += std::fabs(double(mu_mx[i]) - mu64[i]);
  }
  EXPECT_LT(err_mx, err16 * 0.5)
      << "FP32 precalculation must beat FP16 cumulative sums";
}

TEST(PrecalcFp16c, TracksMixedAndBothBeatFp16) {
  // The paper finds FP16C "promises similar accuracy ... to the Mixed
  // mode" (§III-C): the Kahan compensation corrects the *running* sums,
  // but the stored prefix values are still individually rounded to FP32,
  // so differencing them bounds both variants alike.  What both must beat
  // decisively is plain FP16 precalculation, whose cumulative sums
  // overflow outright on large-offset data.
  const std::size_t m = 64, nseg = 8000;
  Rng rng(8);
  std::vector<double> x(nseg + m - 1);
  for (auto& v : x) {
    // Quantize to half precision first so every variant sees identical
    // samples.
    v = double(float16{100.0 + rng.normal(0.0, 1.0)});
  }
  std::vector<float16> x16(x.size());
  for (std::size_t t = 0; t < x.size(); ++t) x16[t] = float16{x[t]};

  std::vector<double> mu64(nseg), inv64(nseg), df64(nseg), dg64(nseg);
  precalc_dimension<Fp64>(x.data(), m, nseg, mu64.data(), inv64.data(),
                          df64.data(), dg64.data());

  auto inv_error = [&](const std::vector<float16>& inv) {
    double err = 0.0;
    std::size_t counted = 0;
    for (std::size_t i = 0; i < nseg; ++i) {
      if (inv64[i] == 0.0) continue;
      err += std::fabs(double(inv[i]) - inv64[i]) / inv64[i];
      ++counted;
    }
    return err / double(counted);
  };

  std::vector<float16> mu(nseg), inv_16(nseg), inv_mx(nseg), inv_c(nseg),
      df(nseg), dg(nseg);
  precalc_dimension<Fp16>(x16.data(), m, nseg, mu.data(), inv_16.data(),
                          df.data(), dg.data());
  precalc_dimension<Mixed>(x16.data(), m, nseg, mu.data(), inv_mx.data(),
                           df.data(), dg.data());
  precalc_dimension<Fp16c>(x16.data(), m, nseg, mu.data(), inv_c.data(),
                           df.data(), dg.data());

  const double e16 = inv_error(inv_16);
  const double emx = inv_error(inv_mx);
  const double ec = inv_error(inv_c);
  EXPECT_GT(e16, 0.9);  // FP16 cumulative sums overflow: inv flushed to 0
  EXPECT_LT(emx, e16 * 0.5);
  EXPECT_LT(ec, e16 * 0.5);
  EXPECT_LE(ec, emx);  // compensation never hurts, and usually wins
}

TEST(PrecalcArraysStruct, ResizeInitializesAll) {
  PrecalcArrays<Fp64> arrays;
  arrays.resize(10, 3);
  EXPECT_EQ(arrays.mu.size(), 30u);
  EXPECT_EQ(arrays.inv.size(), 30u);
  EXPECT_EQ(arrays.df.size(), 30u);
  EXPECT_EQ(arrays.dg.size(), 30u);
  EXPECT_EQ(arrays.segments, 10u);
  EXPECT_EQ(arrays.dims, 3u);
}

}  // namespace
}  // namespace mpsim::mp
