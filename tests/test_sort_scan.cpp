// Property tests for the Bitonic sort and fan-in inclusive-scan primitives
// shared by the GPU kernel and the CPU reference.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "mp/kernels.hpp"
#include "mp/sort_scan.hpp"
#include "precision/float16.hpp"
#include "precision/modes.hpp"

namespace mpsim::mp {
namespace {

TEST(Pow2Helpers, NextPow2AndLog) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(64), 64u);
  EXPECT_EQ(next_pow2(65), 128u);
  EXPECT_EQ(log2_pow2(1), 0);
  EXPECT_EQ(log2_pow2(64), 6);
}

TEST(Pow2Helpers, BitTwiddledBoundaryValues) {
  // next_pow2 must keep the historical loop semantics on every boundary,
  // including n = 0 (the loop returned 1 there).
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(4), 4u);
  EXPECT_EQ(next_pow2(5), 8u);
  EXPECT_EQ(next_pow2(7), 8u);
  EXPECT_EQ(next_pow2(8), 8u);
  EXPECT_EQ(next_pow2(9), 16u);
  EXPECT_EQ(next_pow2(1023), 1024u);
  EXPECT_EQ(next_pow2(1024), 1024u);
  EXPECT_EQ(next_pow2(1025), 2048u);
  EXPECT_EQ(next_pow2((std::size_t(1) << 31) - 1), std::size_t(1) << 31);
  EXPECT_EQ(next_pow2((std::size_t(1) << 31) + 1), std::size_t(1) << 32);
  EXPECT_EQ(next_pow2(std::size_t(1) << 62), std::size_t(1) << 62);

  // log2_pow2 is ceil(log2(n)) for any n >= 1, like the old loop.
  EXPECT_EQ(log2_pow2(0), 0);
  EXPECT_EQ(log2_pow2(2), 1);
  EXPECT_EQ(log2_pow2(3), 2);
  EXPECT_EQ(log2_pow2(4), 2);
  EXPECT_EQ(log2_pow2(5), 3);
  EXPECT_EQ(log2_pow2(7), 3);
  EXPECT_EQ(log2_pow2(8), 3);
  EXPECT_EQ(log2_pow2(9), 4);
  EXPECT_EQ(log2_pow2(1024), 10);
  EXPECT_EQ(log2_pow2(1025), 11);
  EXPECT_EQ(log2_pow2(std::size_t(1) << 62), 62);
}

TEST(BitonicStages, CountFormula) {
  EXPECT_EQ(bitonic_stage_count(1), 0);
  EXPECT_EQ(bitonic_stage_count(2), 1);
  EXPECT_EQ(bitonic_stage_count(8), 6);
  EXPECT_EQ(bitonic_stage_count(64), 21);   // log=6 -> 21 (O(log^2 d))
  EXPECT_EQ(bitonic_stage_count(256), 36);
}

TEST(ScanSteps, CountFormula) {
  EXPECT_EQ(scan_step_count(1), 0);
  EXPECT_EQ(scan_step_count(2), 1);
  EXPECT_EQ(scan_step_count(8), 3);
  EXPECT_EQ(scan_step_count(9), 4);
  EXPECT_EQ(scan_step_count(64), 6);        // O(log d) fan-in
}

class BitonicSortSizes : public ::testing::TestWithParam<int> {};

TEST_P(BitonicSortSizes, MatchesStdSortOnRandomDoubles) {
  const std::size_t d = std::size_t(GetParam());
  const std::size_t p2 = next_pow2(d);
  Rng rng(1000 + d);
  for (int rep = 0; rep < 50; ++rep) {
    std::vector<double> buf(p2, std::numeric_limits<double>::infinity());
    for (std::size_t i = 0; i < d; ++i) buf[i] = rng.normal(0.0, 10.0);
    std::vector<double> expected(buf.begin(), buf.begin() + std::ptrdiff_t(d));
    std::sort(expected.begin(), expected.end());
    bitonic_sort(buf.data(), p2);
    for (std::size_t i = 0; i < d; ++i) EXPECT_DOUBLE_EQ(buf[i], expected[i]);
    // Padding stays at the top.
    for (std::size_t i = d; i < p2; ++i) EXPECT_TRUE(std::isinf(buf[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(PowersAndOddSizes, BitonicSortSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 13, 16, 27, 32,
                                           64, 100, 128));

TEST(BitonicSort, SortsFloat16WithInfinityPadding) {
  Rng rng(7);
  const std::size_t d = 12, p2 = 16;
  std::vector<float16> buf(p2, std::numeric_limits<float16>::infinity());
  for (std::size_t i = 0; i < d; ++i) buf[i] = float16{rng.normal(0.0, 5.0)};
  bitonic_sort(buf.data(), p2);
  for (std::size_t i = 1; i < d; ++i) {
    EXPECT_LE(double(buf[i - 1]), double(buf[i]));
  }
}

TEST(BitonicSort, BarrierCountMatchesStageFormula) {
  const std::size_t p2 = 64;
  std::vector<double> buf(p2, 0.0);
  std::int64_t barriers = 0;
  bitonic_sort(buf.data(), p2, [&] { ++barriers; });
  EXPECT_EQ(barriers, bitonic_stage_count(p2));
}

TEST(BitonicSort, HandlesDuplicatesAndSortedInput) {
  std::vector<double> dup{3, 1, 3, 1, 3, 1, 2, 2};
  bitonic_sort(dup.data(), 8);
  EXPECT_TRUE(std::is_sorted(dup.begin(), dup.end()));
  std::vector<double> sorted{1, 2, 3, 4, 5, 6, 7, 8};
  bitonic_sort(sorted.data(), 8);
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
  std::vector<double> reversed{8, 7, 6, 5, 4, 3, 2, 1};
  bitonic_sort(reversed.data(), 8);
  EXPECT_TRUE(std::is_sorted(reversed.begin(), reversed.end()));
}

class ScanSizes : public ::testing::TestWithParam<int> {};

TEST_P(ScanSizes, MatchesPrefixAverageInDouble) {
  const std::size_t d = std::size_t(GetParam());
  Rng rng(2000 + d);
  std::vector<double> x(d), scratch(d);
  std::vector<double> original(d);
  for (std::size_t i = 0; i < d; ++i) {
    x[i] = rng.uniform(0.0, 10.0);
    original[i] = x[i];
  }
  inclusive_scan_average(x.data(), scratch.data(), d);
  double running = 0.0;
  for (std::size_t i = 0; i < d; ++i) {
    running += original[i];
    EXPECT_NEAR(x[i], running / double(i + 1), 1e-12) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(VariousLengths, ScanSizes,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 15, 16, 33, 64));

TEST(Scan, BarrierCountIsTwoPerStep) {
  const std::size_t d = 16;
  std::vector<double> x(d, 1.0), scratch(d);
  std::int64_t barriers = 0;
  inclusive_scan_average(x.data(), scratch.data(), d, [&] { ++barriers; });
  EXPECT_EQ(barriers, 2 * scan_step_count(d));
}

TEST(Scan, Float16RoundsEveryStep) {
  // 2048 + 1 + 1 + 1 in FP16: the log-step tree adds (1+1)=2 first, so the
  // result differs from sequential FP16 summation — the scan order is part
  // of the kernel contract, so pin it here.
  std::vector<float16> x{float16{2048.0}, float16{1.0}, float16{1.0},
                         float16{1.0}};
  std::vector<float16> scratch(4);
  inclusive_scan_average(x.data(), scratch.data(), 4);
  // Prefix sums (tree order): [2048, 2048(+1 lost), 2048+1+1=2050, 2051->?]
  EXPECT_DOUBLE_EQ(double(x[0]), 2048.0);
  EXPECT_DOUBLE_EQ(double(x[1]), 1024.0);  // 2048 / 2 after lost +1
  // x[2]: step1: x2 = 1+1 = 2; step2: x2 += x0 = 2050; avg = 683.3->half
  EXPECT_NEAR(double(x[2]), 2050.0 / 3.0, 0.5);
}

TEST(Scan, IdenticalOrderForCpuAndKernelUse) {
  // The helper is deterministic: same input, same output, across calls
  // (this is what guarantees FP64 CPU == GPU equality).
  Rng rng(3);
  std::vector<double> a(64), b(64), scratch(64);
  for (std::size_t i = 0; i < 64; ++i) a[i] = b[i] = rng.normal();
  inclusive_scan_average(a.data(), scratch.data(), 64);
  inclusive_scan_average(b.data(), scratch.data(), 64);
  EXPECT_EQ(a, b);
}

// ---- Fixed-network / fused-block bit-equality ----------------------------

// Fills a padded column with a mix of normals, infinities and raw-bit NaNs
// (exercising payload preservation), padding [d, p2) with +inf.
template <typename T>
void fill_column(Rng& rng, T* vals, std::size_t d, std::size_t p2) {
  for (std::size_t i = 0; i < d; ++i) {
    const double r = rng.uniform(0.0, 1.0);
    if (r < 0.06) {
      vals[i] = std::numeric_limits<T>::quiet_NaN();
    } else if (r < 0.12) {
      vals[i] = std::numeric_limits<T>::infinity();
    } else {
      vals[i] = T(rng.uniform(0.0, 10.0));
    }
  }
  for (std::size_t i = d; i < p2; ++i) {
    vals[i] = std::numeric_limits<T>::infinity();
  }
}

template <typename T>
void expect_bytes_equal(const T* a, const T* b, std::size_t n,
                        const char* what) {
  EXPECT_EQ(std::memcmp(a, b, n * sizeof(T)), 0) << what;
}

// sort_scan_column (fixed networks for d <= 8, generic beyond, divide-by-1
// for d == 1) must be byte-identical to the generic
// bitonic_sort + inclusive_scan_average sequence — NaN payloads included.
template <typename T>
void check_column_matches_generic(std::size_t d) {
  const std::size_t p2 = next_pow2(d);
  Rng rng(4000 + d);
  for (int rep = 0; rep < 200; ++rep) {
    std::vector<T> fixed(p2), generic(p2), scratch(p2);
    fill_column(rng, generic.data(), d, p2);
    fixed = generic;
    sort_scan_column(fixed.data(), d);
    bitonic_sort(generic.data(), p2);
    inclusive_scan_average(generic.data(), scratch.data(), d);
    expect_bytes_equal(fixed.data(), generic.data(), d, "sort_scan_column");
  }
}

class FixedNetworkSizes : public ::testing::TestWithParam<int> {};

TEST_P(FixedNetworkSizes, ColumnMatchesGenericDouble) {
  check_column_matches_generic<double>(std::size_t(GetParam()));
}

TEST_P(FixedNetworkSizes, ColumnMatchesGenericFloat16) {
  check_column_matches_generic<float16>(std::size_t(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(AllSmallAndGenericSizes, FixedNetworkSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 12, 13,
                                           16, 64));

// The fused engine's block sort/scan (row-wise networks, F16C vector path
// for float16, scalar fallback for the other emulated types) must be
// byte-identical, column for column, to sort_scan_column — on a block
// width that is not a lane multiple and with NaN/inf-laced rows.
template <typename T>
void check_block_matches_columns(std::size_t d) {
  const std::size_t p2 = next_pow2(d);
  const std::size_t bn = 101;  // not a multiple of the 8-wide f16 groups
  Rng rng(5000 + d);
  std::vector<T> blk(p2 * bn);
  for (std::size_t jj = 0; jj < bn; ++jj) {
    std::vector<T> col(p2);
    fill_column(rng, col.data(), d, p2);
    for (std::size_t l = 0; l < p2; ++l) blk[l * bn + jj] = col[l];
  }
  std::vector<T> expect_blk = blk;

  sort_scan_block(blk.data(), bn, bn, d);

  for (std::size_t jj = 0; jj < bn; ++jj) {
    std::vector<T> col(p2);
    for (std::size_t l = 0; l < p2; ++l) col[l] = expect_blk[l * bn + jj];
    sort_scan_column(col.data(), d);
    for (std::size_t l = 0; l < d; ++l) {
      expect_bytes_equal(&blk[l * bn + jj], &col[l], 1, "sort_scan_block");
    }
  }
}

class FusedBlockSizes : public ::testing::TestWithParam<int> {};

TEST_P(FusedBlockSizes, MatchesPerColumnDouble) {
  check_block_matches_columns<double>(std::size_t(GetParam()));
}

TEST_P(FusedBlockSizes, MatchesPerColumnFloat) {
  check_block_matches_columns<float>(std::size_t(GetParam()));
}

TEST_P(FusedBlockSizes, MatchesPerColumnFloat16) {
  check_block_matches_columns<float16>(std::size_t(GetParam()));
}

TEST_P(FusedBlockSizes, MatchesPerColumnBfloat16) {
  using BT = PrecisionTraits<PrecisionMode::BF16>::Storage;
  check_block_matches_columns<BT>(std::size_t(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(PaddedAndPowerSizes, FusedBlockSizes,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8, 12, 16));

TEST(ScanAverageColumn, MatchesScratchVersion) {
  // The in-place descending update must reproduce the scratch round-trip
  // version byte for byte (it feeds the f16 NaN fallback and the generic
  // column path).
  for (std::size_t d : {1u, 2u, 3u, 5u, 8u, 13u, 64u}) {
    Rng rng(6000 + d);
    std::vector<double> a(d), b(d), scratch(d);
    for (std::size_t i = 0; i < d; ++i) a[i] = b[i] = rng.uniform(0.0, 10.0);
    scan_average_column(a.data(), d);
    inclusive_scan_average(b.data(), scratch.data(), d);
    expect_bytes_equal(a.data(), b.data(), d, "scan_average_column");
  }
}

}  // namespace
}  // namespace mpsim::mp
