// Genome similarity search (paper §VI-B): encode base sequences as time
// series (A=1, C=2, T=3, G=4) and use the multi-dimensional matrix profile
// to locate query substrings that also occur in a reference genome —
// with reduced precision and tiling for scale.
//
//   $ ./genome_analysis [--length=4096] [--chromosomes=8] [--window=64]
//                       [--mode=FP16] [--tiles=16]
//
// Reports how many query segments found (near-)exact reference matches
// and compares the reduced-precision index against the FP64 reference.
#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "metrics/accuracy.hpp"
#include "mp/cpu_reference.hpp"
#include "mp/matrix_profile.hpp"
#include "tsdata/genome.hpp"

int main(int argc, char** argv) {
  using namespace mpsim;
  CliArgs args(argc, argv);
  args.check_known({"length", "chromosomes", "window", "mode", "tiles"});

  GenomeSpec spec;
  spec.length = std::size_t(args.get_int("length", 4096));
  spec.chromosomes = std::size_t(args.get_int("chromosomes", 8));
  const std::size_t window = std::size_t(args.get_int("window", 64));
  const auto data = make_genome_dataset(spec);
  std::printf("genome: %zu chromosomes x %zu bases; ~%.0f%% of the query "
              "copied from the reference with %.1f%% point mutations\n\n",
              spec.chromosomes, spec.length, spec.shared_fraction * 100.0,
              spec.mutation_rate * 100.0);

  mp::MatrixProfileConfig config;
  config.window = window;
  config.mode = parse_precision_mode(args.get_string("mode", "FP16"));
  config.tiles = int(args.get_int("tiles", 16));
  const auto result =
      mp::compute_matrix_profile(data.reference, data.query, config);

  // Conserved-region report: query segments with near-zero distance found
  // a (possibly mutated) copy of themselves in the reference.
  std::size_t conserved = 0;
  for (std::size_t j = 0; j < result.segments; ++j) {
    if (result.at(j, 0) < 0.5) ++conserved;
  }
  std::printf("%zu of %zu query segments (%.1f%%) have a conserved match "
              "in the reference (mode %s, %d tiles)\n",
              conserved, result.segments,
              100.0 * double(conserved) / double(result.segments),
              to_string(config.mode).c_str(), config.tiles);

  // Accuracy of the reduced-precision index vs the FP64 reference.
  mp::CpuReferenceConfig cpu_config;
  cpu_config.window = window;
  const auto reference =
      mp::compute_matrix_profile_cpu(data.reference, data.query, cpu_config);
  std::printf("index recall vs FP64 reference: %.1f%%; profile accuracy: "
              "%.1f%%\n",
              100.0 * metrics::recall_rate(result.index, reference.index),
              100.0 * metrics::relative_accuracy(result.profile,
                                                 reference.profile));
  std::printf("host wall %.2f s; modeled A100 %.3f s\n", result.wall_seconds,
              result.modeled_total_seconds());
  return 0;
}
