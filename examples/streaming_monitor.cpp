// Live monitoring with the streaming matrix profile: telemetry arrives
// sample by sample, every completed segment is immediately matched
// against a reference recording, and anomalies (discord-level distances)
// are flagged on arrival — the deployment mode the paper's HPC and
// turbine case studies point toward.
//
//   $ ./streaming_monitor [--window=64] [--threshold=4.0]
#include <cmath>
#include <cstdio>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "mp/streaming.hpp"
#include "tsdata/time_series.hpp"

int main(int argc, char** argv) {
  using namespace mpsim;
  CliArgs args(argc, argv);
  args.check_known({"window", "threshold"});
  const std::size_t window = std::size_t(args.get_int("window", 64));
  const double threshold = args.get_double("threshold", 4.0);

  // Reference: known-good operation — strongly structured periodic
  // telemetry (each sensor oscillates at its own rate) with mild noise,
  // so normal segments always find close matches.
  const std::size_t dims = 4;
  const std::size_t length = 1024 + window - 1;
  Rng rng(77);
  auto make_operation = [&](double phase) {
    TimeSeries series(length, dims);
    for (std::size_t k = 0; k < dims; ++k) {
      const double period = 24.0 + 10.0 * double(k);
      for (std::size_t t = 0; t < length; ++t) {
        series.at(t, k) =
            std::sin(6.28318530718 * (double(t) / period) + phase) +
            rng.normal(0.0, 0.05);
      }
    }
    return series;
  };
  const TimeSeries reference = make_operation(0.0);
  mp::StreamingMatrixProfile monitor(reference, window);

  // Live stream: the same kind of operation (other phase) with an
  // anomalous flat-line fault spliced into every sensor.
  TimeSeries live = make_operation(1.3);
  const std::size_t anomaly_at = 700;
  for (std::size_t t = 0; t < window; ++t) {
    for (std::size_t k = 0; k < dims; ++k) {
      live.at(anomaly_at + t, k) = 0.1 + rng.normal(0.0, 0.05);  // stuck
    }
  }

  std::printf("streaming %zu samples (window %zu, alert threshold mean + "
              "%.1f sigma)\n\n",
              live.length(), window, threshold);
  std::vector<double> sample(live.dims());
  std::size_t alerts = 0;
  // Adaptive baseline: running mean/variance of the full-dimensional
  // profile distance (normal operation); alerts fire on outliers.
  double mean = 0.0, m2 = 0.0;
  std::size_t seen = 0;
  const std::size_t warmup = 100;
  for (std::size_t t = 0; t < live.length(); ++t) {
    for (std::size_t k = 0; k < live.dims(); ++k) sample[k] = live.at(t, k);
    const std::size_t before = monitor.segments();
    monitor.append(sample);
    if (monitor.segments() == before) continue;  // no new segment yet

    const std::size_t j = monitor.segments() - 1;
    // Alert on the full-dimensional profile: a segment whose best match
    // across ALL sensors is still distant is anomalous everywhere.
    const double dist = monitor.at(j, monitor.dims() - 1);
    const double stddev = seen > 1 ? std::sqrt(m2 / double(seen - 1)) : 0.0;
    if (seen >= warmup && dist > mean + threshold * stddev) {
      ++alerts;
      if (alerts <= 5) {
        std::printf("ALERT at sample %zu: segment %zu has no good match "
                    "(distance %.2f vs baseline %.2f +- %.2f)\n",
                    t, j, dist, mean, stddev);
      }
    } else {
      // Welford update with normal-looking segments only.
      ++seen;
      const double delta = dist - mean;
      mean += delta / double(seen);
      m2 += delta * (dist - mean);
    }
  }
  std::printf("\n%zu alerts over %zu segments; anomaly was injected at "
              "segment %zu\n",
              alerts, monitor.segments(), anomaly_at);
  return 0;
}
