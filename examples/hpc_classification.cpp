// Application classification from HPC monitoring telemetry (paper §VI-A):
// label the applications running on a cluster by nearest-neighbour lookup
// through the multi-dimensional matrix profile index.
//
//   $ ./hpc_classification [--length=6000] [--window=32] [--mode=Mixed]
//
// Pipeline: generate labelled 16-sensor telemetry, split into a reference
// half (with known labels) and a query half, compute the matrix profile,
// transfer labels through the index, score precision / recall / F per
// application class.
#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "metrics/classifier.hpp"
#include "mp/matrix_profile.hpp"
#include "tsdata/hpc_telemetry.hpp"

int main(int argc, char** argv) {
  using namespace mpsim;
  CliArgs args(argc, argv);
  args.check_known({"length", "window", "mode", "tiles"});

  HpcTelemetrySpec spec;
  spec.length = std::size_t(args.get_int("length", 6000));
  const std::size_t window = std::size_t(args.get_int("window", 32));
  const auto data = make_hpc_telemetry(spec);

  const std::size_t half = spec.length / 2;
  const TimeSeries reference = data.series.slice(0, half);
  const TimeSeries query = data.series.slice(half, spec.length - half);
  const std::vector<int> ref_labels(data.labels.begin(),
                                    data.labels.begin() + std::ptrdiff_t(half));
  const std::vector<int> qry_labels(data.labels.begin() + std::ptrdiff_t(half),
                                    data.labels.end());

  mp::MatrixProfileConfig config;
  config.window = window;
  config.mode = parse_precision_mode(args.get_string("mode", "Mixed"));
  config.tiles = int(args.get_int("tiles", 16));
  std::printf("telemetry: %zu samples x %zu sensors; window=%zu; mode=%s, "
              "%d tiles\n\n",
              spec.length, data.series.dims(), window,
              to_string(config.mode).c_str(), config.tiles);

  const auto result = mp::compute_matrix_profile(reference, query, config);
  const auto predicted = metrics::nn_classify(result, 0, ref_labels, window);
  const auto truth = metrics::segment_labels(qry_labels, result.segments,
                                             window, /*pure_only=*/true);
  const auto report = metrics::evaluate_classification(
      predicted, truth, int(kHpcAppClassCount));

  Table table({"class", "precision", "recall", "F1"});
  for (const auto& score : report.per_class) {
    if (score.true_positives + score.false_negatives == 0) continue;
    table.add_row({hpc_app_class_name(HpcAppClass(score.cls)),
                   fmt_fixed(score.precision), fmt_fixed(score.recall),
                   fmt_fixed(score.f1)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("accuracy %.3f, macro F-score %.3f (host wall %.2f s, "
              "modeled A100 %.3f s)\n",
              report.accuracy, report.macro_f1, result.wall_seconds,
              result.modeled_total_seconds());
  return 0;
}
