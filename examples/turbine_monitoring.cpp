// Gas-turbine startup detection (paper §VI-C): find startup events in
// high-frequency turbine speed telemetry by matching against a reference
// recording that contains known startups — the paper's single-dimensional,
// reduced-precision-for-scale case study.
//
//   $ ./turbine_monitoring [--n=4096] [--window=256] [--mode=Mixed]
//                          [--relaxation=0.05]
//
// Prints each detected startup with its matched reference event and the
// relaxed recall per precision mode.
#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "mp/matrix_profile.hpp"
#include "tsdata/turbine.hpp"

namespace {

using namespace mpsim;

double relaxed_hits(const mp::MatrixProfileResult& r,
                    const std::vector<std::size_t>& queries,
                    const std::vector<std::size_t>& expected,
                    std::size_t window, double relaxation, bool verbose) {
  const auto tolerance = std::int64_t(relaxation * double(window));
  std::size_t hits = 0;
  for (const std::size_t q : queries) {
    const std::int64_t found = r.index[q];
    bool hit = false;
    for (const std::size_t e : expected) {
      if (std::llabs(found - std::int64_t(e)) <= tolerance) {
        hit = true;
        break;
      }
    }
    hits += hit;
    if (verbose) {
      std::printf("  startup at t=%zu -> reference t=%lld (%s, distance "
                  "%.4f)\n",
                  q, (long long)found, hit ? "match" : "MISS", r.at(q, 0));
    }
  }
  return queries.empty() ? 1.0 : double(hits) / double(queries.size());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mpsim;
  CliArgs args(argc, argv);
  args.check_known({"n", "window", "mode", "relaxation"});

  TurbineSpec spec;
  spec.segments = std::size_t(args.get_int("n", 4096));
  spec.window = std::size_t(args.get_int("window", 256));
  const double relaxation = args.get_double("relaxation", 0.05);

  // GT1's history (reference) contains both startup modes; GT2's current
  // telemetry (query) contains P1 startups to be detected.
  const auto reference = make_turbine_series(spec, 1, 3, 3);
  const auto query = make_turbine_series(spec, 2, 4, 0);
  std::printf("reference (GT1): %zu P1 + %zu P2 startups; query (GT2): %zu "
              "P1 startups; window m=%zu\n\n",
              reference.p1_starts.size(), reference.p2_starts.size(),
              query.p1_starts.size(), spec.window);

  // Detailed detections with the requested mode.
  mp::MatrixProfileConfig config;
  config.window = spec.window;
  config.mode = parse_precision_mode(args.get_string("mode", "Mixed"));
  const auto detailed =
      mp::compute_matrix_profile(reference.series, query.series, config);
  std::printf("detections (%s):\n", to_string(config.mode).c_str());
  relaxed_hits(detailed, query.p1_starts, reference.p1_starts, spec.window,
               relaxation, /*verbose=*/true);

  // Relaxed recall across all modes.
  Table table({"mode", "relaxed recall (r=5%)", "modeled A100 [s]"});
  for (PrecisionMode mode : kAllPrecisionModes) {
    config.mode = mode;
    const auto r =
        mp::compute_matrix_profile(reference.series, query.series, config);
    table.add_row({to_string(mode),
                   fmt_pct(relaxed_hits(r, query.p1_starts,
                                        reference.p1_starts, spec.window,
                                        relaxation, false)),
                   fmt_sci(r.modeled_total_seconds())});
  }
  std::printf("\n%s", table.to_string().c_str());
  return 0;
}
