// Motif discovery on multi-dimensional synthetic data — the paper's core
// use case (§II-B): find the best 1..d-dimensional matches of a query
// series in a reference series, and show how the precision modes and the
// tiling scheme trade accuracy for speed.
//
//   $ ./motif_discovery [--n=2048] [--d=8] [--m=64] [--tiles=4]
//
// Prints the top motifs per profile dimensionality, then a mode-by-mode
// comparison against the FP64 CPU reference.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "metrics/accuracy.hpp"
#include "mp/cpu_reference.hpp"
#include "mp/matrix_profile.hpp"
#include "tsdata/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace mpsim;
  CliArgs args(argc, argv);
  args.check_known({"n", "d", "m", "tiles"});

  SyntheticSpec spec;
  spec.segments = std::size_t(args.get_int("n", 2048));
  spec.dims = std::size_t(args.get_int("d", 8));
  spec.window = std::size_t(args.get_int("m", 64));
  spec.shape = PatternShape::kChirp;
  spec.injections_per_dim = 2;
  const auto data = make_synthetic_dataset(spec);
  std::printf("data: n=%zu segments, d=%zu dimensions, window m=%zu, "
              "%zu injected motif pairs\n\n",
              spec.segments, spec.dims, spec.window, data.injections.size());

  // --- FP64 matrix profile; report the best k-dimensional motifs. ---
  mp::MatrixProfileConfig config;
  config.window = spec.window;
  config.tiles = int(args.get_int("tiles", 4));
  const auto fp64 = mp::compute_matrix_profile(data.reference, data.query,
                                               config);

  std::printf("best k-dimensional motifs (FP64):\n");
  for (std::size_t k = 0; k < std::min<std::size_t>(4, fp64.dims); ++k) {
    std::size_t best = 0;
    for (std::size_t j = 1; j < fp64.segments; ++j) {
      if (fp64.at(j, k) < fp64.at(best, k)) best = j;
    }
    std::printf("  %zu-dim: query %zu -> reference %lld (distance %.4f)\n",
                k + 1, best, (long long)fp64.index_at(best, k),
                fp64.at(best, k));
  }

  // --- Reduced-precision comparison against the FP64 CPU reference. ---
  mp::CpuReferenceConfig cpu_config;
  cpu_config.window = spec.window;
  const auto reference =
      mp::compute_matrix_profile_cpu(data.reference, data.query, cpu_config);

  Table table({"mode", "accuracy A", "recall R", "motif recall",
               "modeled A100 [s]"});
  for (PrecisionMode mode : kAllPrecisionModes) {
    config.mode = mode;
    const auto r = mp::compute_matrix_profile(data.reference, data.query,
                                              config);
    table.add_row(
        {to_string(mode),
         fmt_pct(metrics::relative_accuracy(r.profile, reference.profile)),
         fmt_pct(metrics::recall_rate(r.index, reference.index)),
         fmt_pct(metrics::embedded_motif_recall(r.index, r.segments,
                                                data.injections, spec.window,
                                                0.05)),
         fmt_sci(r.modeled_total_seconds())});
  }
  std::printf("\nprecision modes vs FP64 CPU reference (%d tiles):\n%s",
              config.tiles, table.to_string().c_str());
  return 0;
}
