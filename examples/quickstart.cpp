// Quickstart: compute a multi-dimensional matrix profile on synthetic data
// and print the best motif it finds.
//
//   $ ./quickstart
//
// Steps: generate a reference/query pair with embedded sine motifs, run
// the (simulated-)GPU matrix profile in FP64 and in Mixed precision (FP16
// storage + FP32 precalculation), and compare results and timings.
#include <cstdio>

#include "metrics/accuracy.hpp"
#include "mp/matrix_profile.hpp"
#include "tsdata/synthetic.hpp"

int main() {
  using namespace mpsim;

  // 1. Data: 2048 segments, 8 dimensions, window 64, two embedded motif
  //    pairs per dimension.
  SyntheticSpec data_spec;
  data_spec.segments = 2048;
  data_spec.dims = 8;
  data_spec.window = 64;
  data_spec.injections_per_dim = 2;
  const SyntheticDataset data = make_synthetic_dataset(data_spec);

  // 2. Matrix profile in FP64 on one simulated A100 with 4 tiles.
  mp::MatrixProfileConfig config;
  config.window = data_spec.window;
  config.mode = PrecisionMode::FP64;
  config.tiles = 4;
  config.machine = "A100";
  const auto fp64 = mp::compute_matrix_profile(data.reference, data.query,
                                               config);

  // 3. Best 1-dimensional motif: the smallest entry of the k=0 profile.
  std::size_t best_j = 0;
  for (std::size_t j = 1; j < fp64.segments; ++j) {
    if (fp64.at(j, 0) < fp64.at(best_j, 0)) best_j = j;
  }
  std::printf("best motif (FP64): query segment %zu matches reference "
              "segment %lld (z-normalized distance %.4f)\n",
              best_j, (long long)fp64.index_at(best_j, 0), fp64.at(best_j, 0));
  const double recall_fp64 = metrics::embedded_motif_recall(
      fp64.index, fp64.segments, data.injections, data_spec.window, 0.05);
  std::printf("embedded-motif recall (FP64): %.1f%%\n", 100.0 * recall_fp64);

  // 4. Same computation in Mixed precision — faster on a real GPU, and
  //    still finds the motifs.
  config.mode = PrecisionMode::Mixed;
  const auto mixed = mp::compute_matrix_profile(data.reference, data.query,
                                                config);
  const double recall_mixed = metrics::embedded_motif_recall(
      mixed.index, mixed.segments, data.injections, data_spec.window, 0.05);
  std::printf("embedded-motif recall (Mixed): %.1f%%\n",
              100.0 * recall_mixed);
  std::printf("modeled A100 time: FP64 %.4f s, Mixed %.4f s\n",
              fp64.modeled_total_seconds(), mixed.modeled_total_seconds());
  return 0;
}
