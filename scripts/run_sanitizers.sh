#!/usr/bin/env bash
# Builds and tests the project under ThreadSanitizer and ASan+UBSan.
#
#   scripts/run_sanitizers.sh [thread|address]...
#
# With no arguments both sanitizers run.  Each uses its own build tree
# (build-tsan / build-asan) so the regular build/ stays untouched.
# Benchmarks are skipped: google-benchmark is rarely built with the
# sanitizer runtimes, and the unit + integration tests cover the
# concurrency paths (streams, resilient scheduler) the sanitizers exist
# to check.
set -euo pipefail
cd "$(dirname "$0")/.."

run_one() {
  local kind=$1 dir flags
  case "$kind" in
    thread)  dir=build-tsan ;;
    address) dir=build-asan ;;
    *) echo "unknown sanitizer '$kind' (want thread or address)" >&2
       exit 2 ;;
  esac
  echo "=== $kind sanitizer -> $dir ==="
  cmake -B "$dir" -S . \
      -DMPSIM_SANITIZE="$kind" \
      -DMPSIM_BUILD_BENCH=OFF \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$dir" -j "$(nproc)"
  ctest --test-dir "$dir" --output-on-failure -j "$(nproc)"
  # The explicit SIMD kernels do raw intrinsic loads/stores and the
  # diagonal-batched executor claims row chunks across pool workers; run
  # the dispatch bit-equality suite once per MPSIM_SIMD level so the env
  # request path and every kernel variant sit under the sanitizer (the
  # level clamps to the host, so this is safe on any machine).
  for level in scalar f16c avx2; do
    MPSIM_SIMD=$level "$dir"/tests/test_simd_dispatch \
        --gtest_filter='SimdDispatchEquality.PaperModesNanPoisoned:SimdDispatchEquality.BatchedVersusUnbatchedRows'
  done
  if [ "$kind" = thread ]; then
    # Hammer the lock-free metrics registry beyond the single CTest pass:
    # repeated runs of the concurrent-recording tests give TSan many more
    # thread interleavings of the relaxed-atomic hot path to inspect.
    "$dir"/tests/test_runtime_metrics \
        --gtest_filter='RuntimeMetrics.Concurrent*' --gtest_repeat=25
    # The watchdog/speculation/cancellation machinery is the raciest code
    # in the tree (monitor thread + per-device workers + first-finisher
    # commits); soak it repeatedly under TSan, then run the full chaos
    # script against the sanitized CLI.
    "$dir"/tests/test_faults \
        --gtest_filter='ResilientScheduler.Watchdog*:ResilientScheduler.RepeatedHangs*' \
        --gtest_repeat=5
    bash tests/chaos_soak_test.sh "$dir"
    # The elastic coordinator runs a monitor thread plus one shard
    # scheduler (monitor + device workers) per simulated node; soak the
    # cross-node recovery paths and the full multi-node identity leg.
    "$dir"/tests/test_cluster --gtest_filter='ElasticCoordinator.*' \
        --gtest_repeat=3
    bash tests/cli_cluster_test.sh "$dir"
    # The serve daemon adds accept/connection/executor threads on top of
    # the scheduler; soak the in-process server end-to-end, the SIGTERM
    # drain-vs-admission race, and the full concurrent-client shell leg
    # under TSan.
    "$dir"/tests/test_serve --gtest_filter='ServeServer.*' --gtest_repeat=5
    "$dir"/tests/test_serve \
        --gtest_filter='ServeJobQueue.ConcurrentDrain*' --gtest_repeat=10
    if command -v python3 >/dev/null; then
      bash tests/cli_serve_test.sh "$dir"
    fi
  fi
}

if [ $# -eq 0 ]; then
  set -- thread address
fi
for kind in "$@"; do
  run_one "$kind"
done
echo "all sanitizer runs passed"
