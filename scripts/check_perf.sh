#!/usr/bin/env bash
# Guard the execution fast path against silent throughput regressions.
#
# Builds Release (unless --build-dir already holds the bench binary), runs
# bench/micro_engine_throughput with JSON output, and compares every counter
# tracked in BENCH_micro_engine.json against its committed "after" value.
# Any counter more than --threshold (default 20%) below baseline fails the
# check.  Counters with a null baseline (added after the last pinning) are
# reported but never fail.
#
# Usage: scripts/check_perf.sh [--build-dir DIR] [--baseline FILE]
#                              [--threshold FRACTION] [--smoke]
#   --smoke   tiny-scale leg for CI (the `perf` CTest label): runs the bench
#             for ~10ms per counter and verifies every tracked counter is
#             produced, but never fails on throughput (too noisy at that
#             scale to gate on).

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build-perf
BASELINE=BENCH_micro_engine.json
THRESHOLD=0.20
SMOKE=0
MIN_TIME=0.2

while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir) BUILD_DIR=$2; shift 2 ;;
    --baseline) BASELINE=$2; shift 2 ;;
    --threshold) THRESHOLD=$2; shift 2 ;;
    --smoke) SMOKE=1; MIN_TIME=0.01; shift ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

BENCH=$BUILD_DIR/bench/micro_engine_throughput
if [[ ! -x $BENCH ]]; then
  cmake -S . -B "$BUILD_DIR" -DCMAKE_BUILD_TYPE=Release -DMPSIM_BUILD_BENCH=ON
  cmake --build "$BUILD_DIR" --target micro_engine_throughput -j"$(nproc)"
fi

OUT=$(mktemp)
trap 'rm -f "$OUT"' EXIT
"$BENCH" --benchmark_format=json --benchmark_min_time="$MIN_TIME" > "$OUT"

python3 - "$BASELINE" "$OUT" "$THRESHOLD" "$SMOKE" <<'PY'
import json, sys

baseline_path, head_path, threshold, smoke = sys.argv[1:5]
threshold = float(threshold)
smoke = smoke == "1"

base = json.load(open(baseline_path))
head = {b["name"]: b.get("items_per_second", 0.0)
        for b in json.load(open(head_path))["benchmarks"]}

failures = []
for entry in base["micro"]["benchmarks"]:
    name, ref = entry["name"], entry["after"]
    got = head.get(name)
    if got is None:
        failures.append(f"{name}: missing from HEAD run")
        continue
    got /= 1e6
    verdict = "ok"
    if ref is not None and got < ref * (1.0 - threshold):
        verdict = f"REGRESSED (>{threshold:.0%} below baseline)"
        if not smoke:
            failures.append(f"{name}: {got:.2f} M/s vs baseline {ref:.2f} M/s")
    ref_str = "new" if ref is None else f"{ref:.2f}"
    print(f"  {name:36s} baseline {ref_str:>8} M/s  head {got:8.2f} M/s  {verdict}")

if failures:
    print("check_perf: FAIL")
    for f in failures:
        print("  " + f)
    sys.exit(1)
print("check_perf: PASS" + (" (smoke)" if smoke else ""))
PY

# ---- Runtime-metrics counter diff -----------------------------------------
# The observability counters of a fully deterministic scenario (fixed CSV,
# fixed tiling, at=-triggered fault) are exact machine-independent numbers:
# any drift in staging traffic or retry behaviour is a functional change,
# so they are diffed exactly against the "metrics" baseline in the
# committed BENCH file (smoke and full legs both gate on this — it is not
# a throughput number, so it is never noisy).
CLI=$BUILD_DIR/tools/mpsim_cli
if [[ ! -x $CLI ]]; then
  cmake --build "$BUILD_DIR" --target mpsim_cli -j"$(nproc)"
fi
WORK=$(mktemp -d)
trap 'rm -f "$OUT"; rm -rf "$WORK"' EXIT
awk 'BEGIN {
  srand(5); print "a,b";
  for (t = 0; t < 500; ++t) {
    a = sin(t / 9.0) + (rand() - 0.5) * 0.4;
    b = cos(t / 13.0) + (rand() - 0.5) * 0.4;
    printf "%.6f,%.6f\n", a, b;
  }
}' > "$WORK/ref.csv"
# --simd=scalar pins the simd.<stage>.<variant> dispatch counters to the
# scalar column, making the diff exact on hosts without F16C/AVX2 too.
"$CLI" --reference="$WORK/ref.csv" --self-join --window=32 --mode=Mixed \
    --tiles=4 --faults="seed=3,kernel@0:at=2" --simd=scalar \
    --metrics-out="$WORK/metrics.json" --motifs=0 > /dev/null

python3 - "$BASELINE" "$WORK/metrics.json" <<'PY'
import json, sys

baseline_path, metrics_path = sys.argv[1:3]
base = json.load(open(baseline_path)).get("metrics", {}).get("counters", {})
head = json.load(open(metrics_path))["counters"]

failures = []
for name, ref in sorted(base.items()):
    got = head.get(name)
    verdict = "ok"
    if got != ref:
        verdict = "CHANGED"
        failures.append(f"{name}: {got} vs baseline {ref}")
    print(f"  {name:36s} baseline {ref:>12}  head {got!s:>12}  {verdict}")

if failures:
    print("check_perf metrics diff: FAIL")
    for f in failures:
        print("  " + f)
    sys.exit(1)
print("check_perf metrics diff: PASS")
PY

# ---- Sketch-prefilter decision diff ----------------------------------------
# The prefilter's block decisions are seeded and profile-driven, both
# deterministic, so its counters (and the miss-rate gauge) are exact
# numbers on a fixed workload — pinned in the "metrics_prefilter" baseline
# section.  The sketch scoring is plain scalar float code and the kernel
# outputs are bit-identical across dispatch levels, so no --simd pin is
# needed here.
python3 - > "$WORK/smooth.csv" <<'PY'
import math, random
random.seed(101)
seg = 911
white = [random.gauss(0, 1.0) for _ in range(seg + 200)]
kern = [math.exp(-0.5 * (t / 15.0) ** 2) for t in range(-100, 100)]
base = [sum(w * k for w, k in zip(white[t:t + 200], kern))
        for t in range(seg)]
mean = sum(base) / seg
sd = (sum((v - mean) ** 2 for v in base) / seg) ** 0.5
base = [(v - mean) / sd for v in base]
print("a,b")
for rep in range(3):
    for t in range(seg):
        a = base[t] + random.gauss(0, 0.005)
        b = base[(t + 307) % seg] + random.gauss(0, 0.005)
        print("%.6f,%.6f" % (a, b))
PY
"$CLI" --reference="$WORK/smooth.csv" --self-join --window=400 --mode=FP16 \
    --exclusion=100 --prefilter=sketch --prefilter-budget=0.05 \
    --metrics-out="$WORK/prefilter_metrics.json" --motifs=0 > /dev/null

python3 - "$BASELINE" "$WORK/prefilter_metrics.json" <<'PY'
import json, sys

baseline_path, metrics_path = sys.argv[1:3]
base = json.load(open(baseline_path)).get("metrics_prefilter", {}).get("counters", {})
head_doc = json.load(open(metrics_path))
head = dict(head_doc["counters"])
head["prefilter.miss_rate"] = head_doc["gauges"]["prefilter.miss_rate"]

failures = []
for name, ref in sorted(base.items()):
    got = head.get(name)
    verdict = "ok"
    if got != ref:
        verdict = "CHANGED"
        failures.append(f"{name}: {got} vs baseline {ref}")
    print(f"  {name:36s} baseline {ref!s:>12}  head {got!s:>12}  {verdict}")

if failures:
    print("check_perf prefilter diff: FAIL")
    for f in failures:
        print("  " + f)
    sys.exit(1)
print("check_perf prefilter diff: PASS")
PY

# ---- Elastic coordinator counter diff --------------------------------------
# A fault-free 2-node run with stealing off is fully deterministic: static
# round-robin sharding dispatches every tile exactly once and each node
# commits its own tiles exactly once, so the coordinator.* / node.*
# counters (and the coordinator.nodes gauge) are exact numbers — pinned in
# the "metrics_cluster" baseline section.  Drift means the dispatch or
# commit-arbitration logic changed.  Reuses the srand(5) CSV from the
# metrics leg above.
"$CLI" --reference="$WORK/ref.csv" --self-join --window=32 --mode=Mixed \
    --tiles=4 --nodes=2 --steal=off --simd=scalar \
    --metrics-out="$WORK/cluster_metrics.json" --motifs=0 > /dev/null

python3 - "$BASELINE" "$WORK/cluster_metrics.json" <<'PY'
import json, sys

baseline_path, metrics_path = sys.argv[1:3]
base = json.load(open(baseline_path)).get("metrics_cluster", {}).get("counters", {})
head_doc = json.load(open(metrics_path))
head = dict(head_doc["counters"])
head["coordinator.nodes"] = head_doc["gauges"]["coordinator.nodes"]

failures = []
for name, ref in sorted(base.items()):
    got = head.get(name)
    verdict = "ok"
    if got != ref:
        verdict = "CHANGED"
        failures.append(f"{name}: {got} vs baseline {ref}")
    print(f"  {name:36s} baseline {ref!s:>12}  head {got!s:>12}  {verdict}")

if failures:
    print("check_perf cluster diff: FAIL")
    for f in failures:
        print("  " + f)
    sys.exit(1)
print("check_perf cluster diff: PASS")
PY
