#!/usr/bin/env bash
# Full reproduction pipeline: configure, build, test, regenerate every
# paper figure into results/.  Usage: scripts/reproduce.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${1:-build}
cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"

ctest --test-dir "$BUILD" --output-on-failure

mkdir -p results
for bench in "$BUILD"/bench/*; do
  [ -f "$bench" ] && [ -x "$bench" ] || continue
  name=$(basename "$bench")
  echo "=== $name ==="
  "$bench" | tee "results/$name.txt"
done

echo "All figures regenerated under results/."
