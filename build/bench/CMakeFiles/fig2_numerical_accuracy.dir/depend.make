# Empty dependencies file for fig2_numerical_accuracy.
# This may be replaced when dependencies are built.
