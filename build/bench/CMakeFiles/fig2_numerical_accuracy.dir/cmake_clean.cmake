file(REMOVE_RECURSE
  "CMakeFiles/fig2_numerical_accuracy.dir/fig2_numerical_accuracy.cpp.o"
  "CMakeFiles/fig2_numerical_accuracy.dir/fig2_numerical_accuracy.cpp.o.d"
  "fig2_numerical_accuracy"
  "fig2_numerical_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_numerical_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
