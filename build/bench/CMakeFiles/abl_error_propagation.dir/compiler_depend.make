# Empty compiler generated dependencies file for abl_error_propagation.
# This may be replaced when dependencies are built.
