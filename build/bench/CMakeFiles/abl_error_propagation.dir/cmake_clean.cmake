file(REMOVE_RECURSE
  "CMakeFiles/abl_error_propagation.dir/abl_error_propagation.cpp.o"
  "CMakeFiles/abl_error_propagation.dir/abl_error_propagation.cpp.o.d"
  "abl_error_propagation"
  "abl_error_propagation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_error_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
