file(REMOVE_RECURSE
  "CMakeFiles/fig7_tile_tradeoff.dir/fig7_tile_tradeoff.cpp.o"
  "CMakeFiles/fig7_tile_tradeoff.dir/fig7_tile_tradeoff.cpp.o.d"
  "fig7_tile_tradeoff"
  "fig7_tile_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_tile_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
