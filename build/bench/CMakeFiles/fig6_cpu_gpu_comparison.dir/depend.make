# Empty dependencies file for fig6_cpu_gpu_comparison.
# This may be replaced when dependencies are built.
