file(REMOVE_RECURSE
  "CMakeFiles/fig6_cpu_gpu_comparison.dir/fig6_cpu_gpu_comparison.cpp.o"
  "CMakeFiles/fig6_cpu_gpu_comparison.dir/fig6_cpu_gpu_comparison.cpp.o.d"
  "fig6_cpu_gpu_comparison"
  "fig6_cpu_gpu_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_cpu_gpu_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
