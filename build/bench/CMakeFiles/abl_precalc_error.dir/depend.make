# Empty dependencies file for abl_precalc_error.
# This may be replaced when dependencies are built.
