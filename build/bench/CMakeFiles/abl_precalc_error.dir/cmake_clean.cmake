file(REMOVE_RECURSE
  "CMakeFiles/abl_precalc_error.dir/abl_precalc_error.cpp.o"
  "CMakeFiles/abl_precalc_error.dir/abl_precalc_error.cpp.o.d"
  "abl_precalc_error"
  "abl_precalc_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_precalc_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
