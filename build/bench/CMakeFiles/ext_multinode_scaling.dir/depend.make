# Empty dependencies file for ext_multinode_scaling.
# This may be replaced when dependencies are built.
