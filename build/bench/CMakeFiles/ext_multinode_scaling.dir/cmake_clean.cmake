file(REMOVE_RECURSE
  "CMakeFiles/ext_multinode_scaling.dir/ext_multinode_scaling.cpp.o"
  "CMakeFiles/ext_multinode_scaling.dir/ext_multinode_scaling.cpp.o.d"
  "ext_multinode_scaling"
  "ext_multinode_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_multinode_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
