file(REMOVE_RECURSE
  "CMakeFiles/micro_engine_throughput.dir/micro_engine_throughput.cpp.o"
  "CMakeFiles/micro_engine_throughput.dir/micro_engine_throughput.cpp.o.d"
  "micro_engine_throughput"
  "micro_engine_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_engine_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
