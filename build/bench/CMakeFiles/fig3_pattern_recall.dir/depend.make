# Empty dependencies file for fig3_pattern_recall.
# This may be replaced when dependencies are built.
