file(REMOVE_RECURSE
  "CMakeFiles/fig3_pattern_recall.dir/fig3_pattern_recall.cpp.o"
  "CMakeFiles/fig3_pattern_recall.dir/fig3_pattern_recall.cpp.o.d"
  "fig3_pattern_recall"
  "fig3_pattern_recall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_pattern_recall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
