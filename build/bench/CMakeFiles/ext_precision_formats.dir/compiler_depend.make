# Empty compiler generated dependencies file for ext_precision_formats.
# This may be replaced when dependencies are built.
