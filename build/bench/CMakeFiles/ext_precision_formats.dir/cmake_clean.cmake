file(REMOVE_RECURSE
  "CMakeFiles/ext_precision_formats.dir/ext_precision_formats.cpp.o"
  "CMakeFiles/ext_precision_formats.dir/ext_precision_formats.cpp.o.d"
  "ext_precision_formats"
  "ext_precision_formats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_precision_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
