# Empty compiler generated dependencies file for fig12_turbine_detection.
# This may be replaced when dependencies are built.
