file(REMOVE_RECURSE
  "CMakeFiles/fig12_turbine_detection.dir/fig12_turbine_detection.cpp.o"
  "CMakeFiles/fig12_turbine_detection.dir/fig12_turbine_detection.cpp.o.d"
  "fig12_turbine_detection"
  "fig12_turbine_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_turbine_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
