# Empty dependencies file for fig5_multigpu_scaling.
# This may be replaced when dependencies are built.
