file(REMOVE_RECURSE
  "CMakeFiles/fig10_genome_tiles.dir/fig10_genome_tiles.cpp.o"
  "CMakeFiles/fig10_genome_tiles.dir/fig10_genome_tiles.cpp.o.d"
  "fig10_genome_tiles"
  "fig10_genome_tiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_genome_tiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
