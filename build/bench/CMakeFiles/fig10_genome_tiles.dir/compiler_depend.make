# Empty compiler generated dependencies file for fig10_genome_tiles.
# This may be replaced when dependencies are built.
