file(REMOVE_RECURSE
  "CMakeFiles/abl_sort_strategies.dir/abl_sort_strategies.cpp.o"
  "CMakeFiles/abl_sort_strategies.dir/abl_sort_strategies.cpp.o.d"
  "abl_sort_strategies"
  "abl_sort_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_sort_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
