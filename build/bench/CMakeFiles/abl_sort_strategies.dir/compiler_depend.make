# Empty compiler generated dependencies file for abl_sort_strategies.
# This may be replaced when dependencies are built.
