# Empty compiler generated dependencies file for abl_launch_config.
# This may be replaced when dependencies are built.
