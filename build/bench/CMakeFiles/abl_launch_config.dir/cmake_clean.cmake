file(REMOVE_RECURSE
  "CMakeFiles/abl_launch_config.dir/abl_launch_config.cpp.o"
  "CMakeFiles/abl_launch_config.dir/abl_launch_config.cpp.o.d"
  "abl_launch_config"
  "abl_launch_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_launch_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
