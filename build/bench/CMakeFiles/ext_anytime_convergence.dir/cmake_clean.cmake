file(REMOVE_RECURSE
  "CMakeFiles/ext_anytime_convergence.dir/ext_anytime_convergence.cpp.o"
  "CMakeFiles/ext_anytime_convergence.dir/ext_anytime_convergence.cpp.o.d"
  "ext_anytime_convergence"
  "ext_anytime_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_anytime_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
