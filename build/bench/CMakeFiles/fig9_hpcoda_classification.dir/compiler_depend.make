# Empty compiler generated dependencies file for fig9_hpcoda_classification.
# This may be replaced when dependencies are built.
