file(REMOVE_RECURSE
  "CMakeFiles/fig9_hpcoda_classification.dir/fig9_hpcoda_classification.cpp.o"
  "CMakeFiles/fig9_hpcoda_classification.dir/fig9_hpcoda_classification.cpp.o.d"
  "fig9_hpcoda_classification"
  "fig9_hpcoda_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_hpcoda_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
