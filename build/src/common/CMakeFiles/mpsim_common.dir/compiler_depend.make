# Empty compiler generated dependencies file for mpsim_common.
# This may be replaced when dependencies are built.
