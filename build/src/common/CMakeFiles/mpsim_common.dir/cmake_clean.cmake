file(REMOVE_RECURSE
  "CMakeFiles/mpsim_common.dir/cli.cpp.o"
  "CMakeFiles/mpsim_common.dir/cli.cpp.o.d"
  "CMakeFiles/mpsim_common.dir/table.cpp.o"
  "CMakeFiles/mpsim_common.dir/table.cpp.o.d"
  "CMakeFiles/mpsim_common.dir/thread_pool.cpp.o"
  "CMakeFiles/mpsim_common.dir/thread_pool.cpp.o.d"
  "libmpsim_common.a"
  "libmpsim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpsim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
