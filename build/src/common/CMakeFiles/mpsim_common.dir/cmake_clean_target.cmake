file(REMOVE_RECURSE
  "libmpsim_common.a"
)
