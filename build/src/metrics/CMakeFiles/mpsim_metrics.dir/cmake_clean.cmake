file(REMOVE_RECURSE
  "CMakeFiles/mpsim_metrics.dir/accuracy.cpp.o"
  "CMakeFiles/mpsim_metrics.dir/accuracy.cpp.o.d"
  "CMakeFiles/mpsim_metrics.dir/classifier.cpp.o"
  "CMakeFiles/mpsim_metrics.dir/classifier.cpp.o.d"
  "libmpsim_metrics.a"
  "libmpsim_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpsim_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
