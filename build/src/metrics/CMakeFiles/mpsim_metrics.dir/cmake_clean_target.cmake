file(REMOVE_RECURSE
  "libmpsim_metrics.a"
)
