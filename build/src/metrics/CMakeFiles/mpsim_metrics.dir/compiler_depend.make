# Empty compiler generated dependencies file for mpsim_metrics.
# This may be replaced when dependencies are built.
