file(REMOVE_RECURSE
  "CMakeFiles/mpsim_mp.dir/analysis.cpp.o"
  "CMakeFiles/mpsim_mp.dir/analysis.cpp.o.d"
  "CMakeFiles/mpsim_mp.dir/annotation.cpp.o"
  "CMakeFiles/mpsim_mp.dir/annotation.cpp.o.d"
  "CMakeFiles/mpsim_mp.dir/anytime.cpp.o"
  "CMakeFiles/mpsim_mp.dir/anytime.cpp.o.d"
  "CMakeFiles/mpsim_mp.dir/brute_force.cpp.o"
  "CMakeFiles/mpsim_mp.dir/brute_force.cpp.o.d"
  "CMakeFiles/mpsim_mp.dir/chains.cpp.o"
  "CMakeFiles/mpsim_mp.dir/chains.cpp.o.d"
  "CMakeFiles/mpsim_mp.dir/cpu_reference.cpp.o"
  "CMakeFiles/mpsim_mp.dir/cpu_reference.cpp.o.d"
  "CMakeFiles/mpsim_mp.dir/mass.cpp.o"
  "CMakeFiles/mpsim_mp.dir/mass.cpp.o.d"
  "CMakeFiles/mpsim_mp.dir/matrix_profile.cpp.o"
  "CMakeFiles/mpsim_mp.dir/matrix_profile.cpp.o.d"
  "CMakeFiles/mpsim_mp.dir/model.cpp.o"
  "CMakeFiles/mpsim_mp.dir/model.cpp.o.d"
  "CMakeFiles/mpsim_mp.dir/pan_profile.cpp.o"
  "CMakeFiles/mpsim_mp.dir/pan_profile.cpp.o.d"
  "CMakeFiles/mpsim_mp.dir/streaming.cpp.o"
  "CMakeFiles/mpsim_mp.dir/streaming.cpp.o.d"
  "CMakeFiles/mpsim_mp.dir/tile_plan.cpp.o"
  "CMakeFiles/mpsim_mp.dir/tile_plan.cpp.o.d"
  "CMakeFiles/mpsim_mp.dir/tuning.cpp.o"
  "CMakeFiles/mpsim_mp.dir/tuning.cpp.o.d"
  "libmpsim_mp.a"
  "libmpsim_mp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpsim_mp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
