file(REMOVE_RECURSE
  "libmpsim_mp.a"
)
