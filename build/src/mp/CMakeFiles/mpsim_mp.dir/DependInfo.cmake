
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mp/analysis.cpp" "src/mp/CMakeFiles/mpsim_mp.dir/analysis.cpp.o" "gcc" "src/mp/CMakeFiles/mpsim_mp.dir/analysis.cpp.o.d"
  "/root/repo/src/mp/annotation.cpp" "src/mp/CMakeFiles/mpsim_mp.dir/annotation.cpp.o" "gcc" "src/mp/CMakeFiles/mpsim_mp.dir/annotation.cpp.o.d"
  "/root/repo/src/mp/anytime.cpp" "src/mp/CMakeFiles/mpsim_mp.dir/anytime.cpp.o" "gcc" "src/mp/CMakeFiles/mpsim_mp.dir/anytime.cpp.o.d"
  "/root/repo/src/mp/brute_force.cpp" "src/mp/CMakeFiles/mpsim_mp.dir/brute_force.cpp.o" "gcc" "src/mp/CMakeFiles/mpsim_mp.dir/brute_force.cpp.o.d"
  "/root/repo/src/mp/chains.cpp" "src/mp/CMakeFiles/mpsim_mp.dir/chains.cpp.o" "gcc" "src/mp/CMakeFiles/mpsim_mp.dir/chains.cpp.o.d"
  "/root/repo/src/mp/cpu_reference.cpp" "src/mp/CMakeFiles/mpsim_mp.dir/cpu_reference.cpp.o" "gcc" "src/mp/CMakeFiles/mpsim_mp.dir/cpu_reference.cpp.o.d"
  "/root/repo/src/mp/mass.cpp" "src/mp/CMakeFiles/mpsim_mp.dir/mass.cpp.o" "gcc" "src/mp/CMakeFiles/mpsim_mp.dir/mass.cpp.o.d"
  "/root/repo/src/mp/matrix_profile.cpp" "src/mp/CMakeFiles/mpsim_mp.dir/matrix_profile.cpp.o" "gcc" "src/mp/CMakeFiles/mpsim_mp.dir/matrix_profile.cpp.o.d"
  "/root/repo/src/mp/model.cpp" "src/mp/CMakeFiles/mpsim_mp.dir/model.cpp.o" "gcc" "src/mp/CMakeFiles/mpsim_mp.dir/model.cpp.o.d"
  "/root/repo/src/mp/pan_profile.cpp" "src/mp/CMakeFiles/mpsim_mp.dir/pan_profile.cpp.o" "gcc" "src/mp/CMakeFiles/mpsim_mp.dir/pan_profile.cpp.o.d"
  "/root/repo/src/mp/streaming.cpp" "src/mp/CMakeFiles/mpsim_mp.dir/streaming.cpp.o" "gcc" "src/mp/CMakeFiles/mpsim_mp.dir/streaming.cpp.o.d"
  "/root/repo/src/mp/tile_plan.cpp" "src/mp/CMakeFiles/mpsim_mp.dir/tile_plan.cpp.o" "gcc" "src/mp/CMakeFiles/mpsim_mp.dir/tile_plan.cpp.o.d"
  "/root/repo/src/mp/tuning.cpp" "src/mp/CMakeFiles/mpsim_mp.dir/tuning.cpp.o" "gcc" "src/mp/CMakeFiles/mpsim_mp.dir/tuning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mpsim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/precision/CMakeFiles/mpsim_precision.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/mpsim_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/tsdata/CMakeFiles/mpsim_tsdata.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
