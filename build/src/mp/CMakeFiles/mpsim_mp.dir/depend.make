# Empty dependencies file for mpsim_mp.
# This may be replaced when dependencies are built.
