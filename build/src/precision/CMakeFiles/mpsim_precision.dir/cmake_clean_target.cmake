file(REMOVE_RECURSE
  "libmpsim_precision.a"
)
