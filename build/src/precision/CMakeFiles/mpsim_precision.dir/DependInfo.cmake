
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/precision/float16.cpp" "src/precision/CMakeFiles/mpsim_precision.dir/float16.cpp.o" "gcc" "src/precision/CMakeFiles/mpsim_precision.dir/float16.cpp.o.d"
  "/root/repo/src/precision/modes.cpp" "src/precision/CMakeFiles/mpsim_precision.dir/modes.cpp.o" "gcc" "src/precision/CMakeFiles/mpsim_precision.dir/modes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mpsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
