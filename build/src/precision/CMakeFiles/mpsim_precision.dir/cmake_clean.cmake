file(REMOVE_RECURSE
  "CMakeFiles/mpsim_precision.dir/float16.cpp.o"
  "CMakeFiles/mpsim_precision.dir/float16.cpp.o.d"
  "CMakeFiles/mpsim_precision.dir/modes.cpp.o"
  "CMakeFiles/mpsim_precision.dir/modes.cpp.o.d"
  "libmpsim_precision.a"
  "libmpsim_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpsim_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
