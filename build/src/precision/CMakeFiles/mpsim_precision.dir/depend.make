# Empty dependencies file for mpsim_precision.
# This may be replaced when dependencies are built.
