
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tsdata/genome.cpp" "src/tsdata/CMakeFiles/mpsim_tsdata.dir/genome.cpp.o" "gcc" "src/tsdata/CMakeFiles/mpsim_tsdata.dir/genome.cpp.o.d"
  "/root/repo/src/tsdata/hpc_telemetry.cpp" "src/tsdata/CMakeFiles/mpsim_tsdata.dir/hpc_telemetry.cpp.o" "gcc" "src/tsdata/CMakeFiles/mpsim_tsdata.dir/hpc_telemetry.cpp.o.d"
  "/root/repo/src/tsdata/io.cpp" "src/tsdata/CMakeFiles/mpsim_tsdata.dir/io.cpp.o" "gcc" "src/tsdata/CMakeFiles/mpsim_tsdata.dir/io.cpp.o.d"
  "/root/repo/src/tsdata/patterns.cpp" "src/tsdata/CMakeFiles/mpsim_tsdata.dir/patterns.cpp.o" "gcc" "src/tsdata/CMakeFiles/mpsim_tsdata.dir/patterns.cpp.o.d"
  "/root/repo/src/tsdata/synthetic.cpp" "src/tsdata/CMakeFiles/mpsim_tsdata.dir/synthetic.cpp.o" "gcc" "src/tsdata/CMakeFiles/mpsim_tsdata.dir/synthetic.cpp.o.d"
  "/root/repo/src/tsdata/time_series.cpp" "src/tsdata/CMakeFiles/mpsim_tsdata.dir/time_series.cpp.o" "gcc" "src/tsdata/CMakeFiles/mpsim_tsdata.dir/time_series.cpp.o.d"
  "/root/repo/src/tsdata/turbine.cpp" "src/tsdata/CMakeFiles/mpsim_tsdata.dir/turbine.cpp.o" "gcc" "src/tsdata/CMakeFiles/mpsim_tsdata.dir/turbine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mpsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
