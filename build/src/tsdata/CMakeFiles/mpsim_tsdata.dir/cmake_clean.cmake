file(REMOVE_RECURSE
  "CMakeFiles/mpsim_tsdata.dir/genome.cpp.o"
  "CMakeFiles/mpsim_tsdata.dir/genome.cpp.o.d"
  "CMakeFiles/mpsim_tsdata.dir/hpc_telemetry.cpp.o"
  "CMakeFiles/mpsim_tsdata.dir/hpc_telemetry.cpp.o.d"
  "CMakeFiles/mpsim_tsdata.dir/io.cpp.o"
  "CMakeFiles/mpsim_tsdata.dir/io.cpp.o.d"
  "CMakeFiles/mpsim_tsdata.dir/patterns.cpp.o"
  "CMakeFiles/mpsim_tsdata.dir/patterns.cpp.o.d"
  "CMakeFiles/mpsim_tsdata.dir/synthetic.cpp.o"
  "CMakeFiles/mpsim_tsdata.dir/synthetic.cpp.o.d"
  "CMakeFiles/mpsim_tsdata.dir/time_series.cpp.o"
  "CMakeFiles/mpsim_tsdata.dir/time_series.cpp.o.d"
  "CMakeFiles/mpsim_tsdata.dir/turbine.cpp.o"
  "CMakeFiles/mpsim_tsdata.dir/turbine.cpp.o.d"
  "libmpsim_tsdata.a"
  "libmpsim_tsdata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpsim_tsdata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
