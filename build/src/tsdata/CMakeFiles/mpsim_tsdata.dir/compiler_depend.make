# Empty compiler generated dependencies file for mpsim_tsdata.
# This may be replaced when dependencies are built.
