file(REMOVE_RECURSE
  "libmpsim_tsdata.a"
)
