file(REMOVE_RECURSE
  "libmpsim_cluster.a"
)
