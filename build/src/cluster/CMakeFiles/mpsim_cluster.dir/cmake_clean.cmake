file(REMOVE_RECURSE
  "CMakeFiles/mpsim_cluster.dir/cluster.cpp.o"
  "CMakeFiles/mpsim_cluster.dir/cluster.cpp.o.d"
  "libmpsim_cluster.a"
  "libmpsim_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpsim_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
