# Empty compiler generated dependencies file for mpsim_cluster.
# This may be replaced when dependencies are built.
