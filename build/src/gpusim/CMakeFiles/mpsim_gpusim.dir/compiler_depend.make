# Empty compiler generated dependencies file for mpsim_gpusim.
# This may be replaced when dependencies are built.
