file(REMOVE_RECURSE
  "libmpsim_gpusim.a"
)
