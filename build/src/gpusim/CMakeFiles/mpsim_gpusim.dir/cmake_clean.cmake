file(REMOVE_RECURSE
  "CMakeFiles/mpsim_gpusim.dir/device.cpp.o"
  "CMakeFiles/mpsim_gpusim.dir/device.cpp.o.d"
  "CMakeFiles/mpsim_gpusim.dir/perf_model.cpp.o"
  "CMakeFiles/mpsim_gpusim.dir/perf_model.cpp.o.d"
  "CMakeFiles/mpsim_gpusim.dir/spec.cpp.o"
  "CMakeFiles/mpsim_gpusim.dir/spec.cpp.o.d"
  "CMakeFiles/mpsim_gpusim.dir/stream.cpp.o"
  "CMakeFiles/mpsim_gpusim.dir/stream.cpp.o.d"
  "CMakeFiles/mpsim_gpusim.dir/trace.cpp.o"
  "CMakeFiles/mpsim_gpusim.dir/trace.cpp.o.d"
  "CMakeFiles/mpsim_gpusim.dir/utilization.cpp.o"
  "CMakeFiles/mpsim_gpusim.dir/utilization.cpp.o.d"
  "libmpsim_gpusim.a"
  "libmpsim_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpsim_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
