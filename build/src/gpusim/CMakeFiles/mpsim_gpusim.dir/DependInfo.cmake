
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpusim/device.cpp" "src/gpusim/CMakeFiles/mpsim_gpusim.dir/device.cpp.o" "gcc" "src/gpusim/CMakeFiles/mpsim_gpusim.dir/device.cpp.o.d"
  "/root/repo/src/gpusim/perf_model.cpp" "src/gpusim/CMakeFiles/mpsim_gpusim.dir/perf_model.cpp.o" "gcc" "src/gpusim/CMakeFiles/mpsim_gpusim.dir/perf_model.cpp.o.d"
  "/root/repo/src/gpusim/spec.cpp" "src/gpusim/CMakeFiles/mpsim_gpusim.dir/spec.cpp.o" "gcc" "src/gpusim/CMakeFiles/mpsim_gpusim.dir/spec.cpp.o.d"
  "/root/repo/src/gpusim/stream.cpp" "src/gpusim/CMakeFiles/mpsim_gpusim.dir/stream.cpp.o" "gcc" "src/gpusim/CMakeFiles/mpsim_gpusim.dir/stream.cpp.o.d"
  "/root/repo/src/gpusim/trace.cpp" "src/gpusim/CMakeFiles/mpsim_gpusim.dir/trace.cpp.o" "gcc" "src/gpusim/CMakeFiles/mpsim_gpusim.dir/trace.cpp.o.d"
  "/root/repo/src/gpusim/utilization.cpp" "src/gpusim/CMakeFiles/mpsim_gpusim.dir/utilization.cpp.o" "gcc" "src/gpusim/CMakeFiles/mpsim_gpusim.dir/utilization.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mpsim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/precision/CMakeFiles/mpsim_precision.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
