file(REMOVE_RECURSE
  "CMakeFiles/test_matrix_profile.dir/test_matrix_profile.cpp.o"
  "CMakeFiles/test_matrix_profile.dir/test_matrix_profile.cpp.o.d"
  "test_matrix_profile"
  "test_matrix_profile.pdb"
  "test_matrix_profile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_matrix_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
