# Empty compiler generated dependencies file for test_matrix_profile.
# This may be replaced when dependencies are built.
