# Empty compiler generated dependencies file for test_tsdata.
# This may be replaced when dependencies are built.
