file(REMOVE_RECURSE
  "CMakeFiles/test_tsdata.dir/test_tsdata.cpp.o"
  "CMakeFiles/test_tsdata.dir/test_tsdata.cpp.o.d"
  "test_tsdata"
  "test_tsdata.pdb"
  "test_tsdata[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tsdata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
