file(REMOVE_RECURSE
  "CMakeFiles/test_kahan.dir/test_kahan.cpp.o"
  "CMakeFiles/test_kahan.dir/test_kahan.cpp.o.d"
  "test_kahan"
  "test_kahan.pdb"
  "test_kahan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kahan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
