# Empty dependencies file for test_kahan.
# This may be replaced when dependencies are built.
