# Empty dependencies file for test_precalc.
# This may be replaced when dependencies are built.
