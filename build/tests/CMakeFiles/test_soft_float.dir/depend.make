# Empty dependencies file for test_soft_float.
# This may be replaced when dependencies are built.
