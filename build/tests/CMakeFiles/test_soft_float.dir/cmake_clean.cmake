file(REMOVE_RECURSE
  "CMakeFiles/test_soft_float.dir/test_soft_float.cpp.o"
  "CMakeFiles/test_soft_float.dir/test_soft_float.cpp.o.d"
  "test_soft_float"
  "test_soft_float.pdb"
  "test_soft_float[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_soft_float.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
