file(REMOVE_RECURSE
  "CMakeFiles/test_sort_scan.dir/test_sort_scan.cpp.o"
  "CMakeFiles/test_sort_scan.dir/test_sort_scan.cpp.o.d"
  "test_sort_scan"
  "test_sort_scan.pdb"
  "test_sort_scan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sort_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
