# Empty dependencies file for test_sort_scan.
# This may be replaced when dependencies are built.
