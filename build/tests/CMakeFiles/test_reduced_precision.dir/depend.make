# Empty dependencies file for test_reduced_precision.
# This may be replaced when dependencies are built.
