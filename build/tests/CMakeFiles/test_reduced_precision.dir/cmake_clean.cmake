file(REMOVE_RECURSE
  "CMakeFiles/test_reduced_precision.dir/test_reduced_precision.cpp.o"
  "CMakeFiles/test_reduced_precision.dir/test_reduced_precision.cpp.o.d"
  "test_reduced_precision"
  "test_reduced_precision.pdb"
  "test_reduced_precision[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reduced_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
