# Empty dependencies file for test_annotation_pan.
# This may be replaced when dependencies are built.
