file(REMOVE_RECURSE
  "CMakeFiles/test_annotation_pan.dir/test_annotation_pan.cpp.o"
  "CMakeFiles/test_annotation_pan.dir/test_annotation_pan.cpp.o.d"
  "test_annotation_pan"
  "test_annotation_pan.pdb"
  "test_annotation_pan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_annotation_pan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
