file(REMOVE_RECURSE
  "CMakeFiles/test_tile_plan.dir/test_tile_plan.cpp.o"
  "CMakeFiles/test_tile_plan.dir/test_tile_plan.cpp.o.d"
  "test_tile_plan"
  "test_tile_plan.pdb"
  "test_tile_plan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tile_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
