file(REMOVE_RECURSE
  "CMakeFiles/test_mass.dir/test_mass.cpp.o"
  "CMakeFiles/test_mass.dir/test_mass.cpp.o.d"
  "test_mass"
  "test_mass.pdb"
  "test_mass[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
