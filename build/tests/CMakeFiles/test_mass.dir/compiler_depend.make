# Empty compiler generated dependencies file for test_mass.
# This may be replaced when dependencies are built.
