# Empty compiler generated dependencies file for turbine_monitoring.
# This may be replaced when dependencies are built.
