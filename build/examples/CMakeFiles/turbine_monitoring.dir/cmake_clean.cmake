file(REMOVE_RECURSE
  "CMakeFiles/turbine_monitoring.dir/turbine_monitoring.cpp.o"
  "CMakeFiles/turbine_monitoring.dir/turbine_monitoring.cpp.o.d"
  "turbine_monitoring"
  "turbine_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turbine_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
