file(REMOVE_RECURSE
  "CMakeFiles/genome_analysis.dir/genome_analysis.cpp.o"
  "CMakeFiles/genome_analysis.dir/genome_analysis.cpp.o.d"
  "genome_analysis"
  "genome_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genome_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
