# Empty dependencies file for genome_analysis.
# This may be replaced when dependencies are built.
