# Empty compiler generated dependencies file for hpc_classification.
# This may be replaced when dependencies are built.
