file(REMOVE_RECURSE
  "CMakeFiles/hpc_classification.dir/hpc_classification.cpp.o"
  "CMakeFiles/hpc_classification.dir/hpc_classification.cpp.o.d"
  "hpc_classification"
  "hpc_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpc_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
