# Empty compiler generated dependencies file for mpsim_cli.
# This may be replaced when dependencies are built.
