file(REMOVE_RECURSE
  "CMakeFiles/mpsim_cli.dir/mpsim_cli.cpp.o"
  "CMakeFiles/mpsim_cli.dir/mpsim_cli.cpp.o.d"
  "mpsim_cli"
  "mpsim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
