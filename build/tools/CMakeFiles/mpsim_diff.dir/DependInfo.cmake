
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/mpsim_diff.cpp" "tools/CMakeFiles/mpsim_diff.dir/mpsim_diff.cpp.o" "gcc" "tools/CMakeFiles/mpsim_diff.dir/mpsim_diff.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mpsim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/precision/CMakeFiles/mpsim_precision.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/mpsim_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/tsdata/CMakeFiles/mpsim_tsdata.dir/DependInfo.cmake"
  "/root/repo/build/src/mp/CMakeFiles/mpsim_mp.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/mpsim_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
