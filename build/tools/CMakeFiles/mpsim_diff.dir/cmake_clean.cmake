file(REMOVE_RECURSE
  "CMakeFiles/mpsim_diff.dir/mpsim_diff.cpp.o"
  "CMakeFiles/mpsim_diff.dir/mpsim_diff.cpp.o.d"
  "mpsim_diff"
  "mpsim_diff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpsim_diff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
