# Empty compiler generated dependencies file for mpsim_diff.
# This may be replaced when dependencies are built.
