// mpsim_diff — compare two profile CSVs written by mpsim_cli --output.
//
//   mpsim_diff --baseline=fp64.csv --test=fp16.csv [--top=5]
//
// Prints the paper's numerical accuracy metrics (relative accuracy A and
// index recall R) per dimension plane plus the largest per-segment
// deviations — the workflow for judging whether a reduced-precision (or
// re-tiled) run is acceptable against a stored baseline.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/table.hpp"
#include "metrics/accuracy.hpp"
#include "tsdata/io.hpp"

namespace {

using namespace mpsim;

struct ProfileFile {
  std::size_t segments = 0;
  std::size_t dims = 0;
  std::vector<double> profile;          // [k * segments + j]
  std::vector<std::int64_t> index;
};

/// Reads the profile_k,index_k column layout mpsim_cli writes.
ProfileFile read_profile_csv(const std::string& path) {
  const TimeSeries raw = read_csv(path);
  MPSIM_CHECK(raw.dims() % 2 == 0,
              "'" << path << "' is not a profile CSV (odd column count)");
  ProfileFile out;
  out.segments = raw.length();
  out.dims = raw.dims() / 2;
  out.profile.resize(out.segments * out.dims);
  out.index.resize(out.segments * out.dims);
  for (std::size_t k = 0; k < out.dims; ++k) {
    for (std::size_t j = 0; j < out.segments; ++j) {
      out.profile[k * out.segments + j] = raw.at(j, 2 * k);
      out.index[k * out.segments + j] =
          std::int64_t(std::llround(raw.at(j, 2 * k + 1)));
    }
  }
  return out;
}

int run(int argc, char** argv) {
  CliArgs args(argc, argv);
  args.check_known({"baseline", "test", "top", "help"});
  if (args.get_bool("help", false) || !args.has("baseline") ||
      !args.has("test")) {
    std::printf("usage: mpsim_diff --baseline=a.csv --test=b.csv "
                "[--top=5]\n");
    return args.has("baseline") && args.has("test") ? 0 : 2;
  }

  const auto baseline = read_profile_csv(args.get_string("baseline", ""));
  const auto test = read_profile_csv(args.get_string("test", ""));
  MPSIM_CHECK(baseline.segments == test.segments &&
                  baseline.dims == test.dims,
              "profiles have different shapes: "
                  << baseline.segments << "x" << baseline.dims << " vs "
                  << test.segments << "x" << test.dims);

  Table table({"dim plane", "relative accuracy A", "index recall R",
               "max |diff|"});
  for (std::size_t k = 0; k < baseline.dims; ++k) {
    const std::size_t begin = k * baseline.segments;
    const std::vector<double> bp(baseline.profile.begin() +
                                     std::ptrdiff_t(begin),
                                 baseline.profile.begin() +
                                     std::ptrdiff_t(begin +
                                                    baseline.segments));
    const std::vector<double> tp(
        test.profile.begin() + std::ptrdiff_t(begin),
        test.profile.begin() + std::ptrdiff_t(begin + baseline.segments));
    const std::vector<std::int64_t> bi(
        baseline.index.begin() + std::ptrdiff_t(begin),
        baseline.index.begin() + std::ptrdiff_t(begin + baseline.segments));
    const std::vector<std::int64_t> ti(
        test.index.begin() + std::ptrdiff_t(begin),
        test.index.begin() + std::ptrdiff_t(begin + baseline.segments));
    double max_diff = 0.0;
    for (std::size_t j = 0; j < baseline.segments; ++j) {
      if (std::isfinite(bp[j]) && std::isfinite(tp[j])) {
        max_diff = std::max(max_diff, std::fabs(bp[j] - tp[j]));
      }
    }
    table.add_row({std::to_string(k + 1) + "-dim",
                   fmt_pct(metrics::relative_accuracy(tp, bp)),
                   fmt_pct(metrics::recall_rate(ti, bi)),
                   fmt_fixed(max_diff, 4)});
  }
  std::printf("%s\n", table.to_string().c_str());

  // Worst per-segment deviations on the 1-dimensional plane.
  const auto top = std::size_t(args.get_int("top", 5));
  std::vector<std::size_t> order(baseline.segments);
  for (std::size_t j = 0; j < order.size(); ++j) order[j] = j;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double da = std::fabs(baseline.profile[a] - test.profile[a]);
    const double db = std::fabs(baseline.profile[b] - test.profile[b]);
    return da > db;
  });
  Table worst({"segment", "baseline", "test", "baseline idx", "test idx"});
  for (std::size_t r = 0; r < std::min(top, order.size()); ++r) {
    const std::size_t j = order[r];
    worst.add_row({std::to_string(j), fmt_fixed(baseline.profile[j], 4),
                   fmt_fixed(test.profile[j], 4),
                   std::to_string(baseline.index[j]),
                   std::to_string(test.index[j])});
  }
  std::printf("largest 1-dim deviations:\n%s", worst.to_string().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mpsim_diff: %s\n", e.what());
    return 1;
  }
}
