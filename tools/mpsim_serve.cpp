// mpsim_serve — long-running matrix-profile-as-a-service daemon.
//
//   mpsim_serve --socket=/tmp/mpsim.sock [--port=0] [--executors=2]
//               [--max-queue=64] [--metrics-out=FILE.json]
//               [--trace-out=FILE.json] [--simd=auto|scalar|f16c|avx2]
//
// Accepts newline-delimited requests over a unix-domain socket and/or a
// loopback TCP port (see src/serve/protocol.hpp and docs/API.md for the
// protocol).  Query responses are byte-identical to the profile CSV the
// one-shot `mpsim_cli --output` writes for the same flags; repeated
// queries are served from the fingerprint-keyed profile cache, repeated
// inputs reuse loaded series and staged reduced-precision conversions.
//
// SIGINT/SIGTERM (or the `shutdown` verb) begin a graceful drain:
// admitted queries complete and their responses are written, new work is
// refused, metrics/trace files are flushed, and the process exits with
// the conventional 128+signo (130 for SIGINT, 143 for SIGTERM).
#include <cstdio>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/shutdown.hpp"
#include "mp/simd/dispatch.hpp"
#include "serve/server.hpp"

namespace {

using namespace mpsim;

int run(int argc, char** argv) {
  CliArgs args(argc, argv);
  args.check_known({"socket", "port", "executors", "max-queue", "nodes",
                    "metrics-out", "trace-out", "simd", "help"});
  if (args.get_bool("help", false) ||
      (!args.has("socket") && !args.has("port"))) {
    std::printf(
        "usage: mpsim_serve --socket=PATH and/or --port=N\n"
        "                   [--executors=2] [--max-queue=64] [--nodes=N]\n"
        "                   [--metrics-out=FILE.json] "
        "[--trace-out=FILE.json]\n"
        "                   [--simd=auto|scalar|f16c|avx2]\n"
        "protocol (newline-delimited; see docs/API.md \"Serving\"):\n"
        "  query --reference=ref.csv [--query=q.csv|--self-join]\n"
        "        [--window=M] [--mode=FP64] [--tiles=N] [--devices=N]\n"
        "        [--machine=A100] [--exclusion=R] [--row-path=auto]\n"
        "        [--id=TOKEN]\n"
        "  ping | stats | shutdown\n"
        "responses: one JSON header line {\"status\", \"id\", \"bytes\","
        " ...}\n"
        "  followed by exactly `bytes` payload bytes (profile CSV,\n"
        "  byte-identical to the one-shot mpsim_cli --output file)\n"
        "--port binds 127.0.0.1 only; --port=0 picks an ephemeral port\n"
        "  (printed on startup)\n");
    return args.has("socket") || args.has("port") ? 0 : 2;
  }

  // A daemon's registry is always on: the stats verb and the shutdown
  // flush are part of the product, not a debugging opt-in.
  MetricsRegistry::global().reset();
  MetricsRegistry::global().set_enabled(true);
  mp::simd::apply_option(args.get_string("simd", "auto"));

  serve::ServerOptions options;
  options.unix_socket = args.get_string("socket", "");
  options.tcp_port = args.has("port") ? int(args.get_int("port", 0)) : -1;
  options.executors = std::size_t(args.get_int("executors", 2));
  options.max_queue = std::size_t(args.get_int("max-queue", 64));
  // >1 routes every query through the elastic multi-node coordinator —
  // byte-identical responses, a wider simulated fleet.
  options.nodes = int(args.get_int("nodes", 1));

  install_signal_handlers();
  serve::Server server(std::move(options));
  server.start();
  if (!args.get_string("socket", "").empty()) {
    std::printf("mpsim_serve: listening on unix socket %s\n",
                args.get_string("socket", "").c_str());
  }
  if (server.tcp_port() >= 0) {
    std::printf("mpsim_serve: listening on 127.0.0.1:%d\n",
                server.tcp_port());
  }
  std::fflush(stdout);
  server.wait();

  std::printf("mpsim_serve: drained after %llu job(s)\n",
              (unsigned long long)server.jobs_completed());
  if (args.has("metrics-out")) {
    const auto path = args.get_string("metrics-out", "");
    MetricsRegistry::global().write_json(path);
    std::printf("metrics written to %s\n", path.c_str());
  }
  if (args.has("trace-out")) {
    const auto path = args.get_string("trace-out", "");
    MetricsRegistry::global().timeline().write_chrome_json(path);
    std::printf("trace written to %s\n", path.c_str());
  }
  return shutdown_requested() ? shutdown_exit_code() : 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mpsim_serve: %s\n", e.what());
    return 1;
  }
}
