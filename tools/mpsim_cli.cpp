// mpsim_cli — run the matrix profile on CSV time series from the shell.
//
//   mpsim_cli --reference=ref.csv --query=query.csv --window=64
//             [--mode=FP64|FP32|FP16|Mixed|FP16C|BF16|TF32]
//             [--tiles=16] [--devices=1] [--machine=A100|V100]
//             [--self-join] [--exclusion=<radius>]
//             [--output=profile.csv] [--motifs=K] [--discords=K]
//
// Input CSVs: one column per dimension, one row per sample (a header row
// is detected automatically).  With --self-join the reference file is
// joined against itself (exclusion defaults to window/2).
// The output CSV has 2*d columns: profile_k, index_k for each dimension.
#include <cstdio>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/shutdown.hpp"
#include "common/table.hpp"
#include "cluster/coordinator.hpp"
#include "gpusim/faults.hpp"
#include "mp/analysis.hpp"
#include "mp/chains.hpp"
#include "mp/simd/dispatch.hpp"
#include "mp/tuning.hpp"
#include "mp/matrix_profile.hpp"
#include "serve/render.hpp"
#include "tsdata/io.hpp"
#include "tsdata/repair.hpp"

namespace {

using namespace mpsim;

int run(int argc, char** argv) {
  CliArgs args(argc, argv);
  args.check_known({"reference", "query", "window", "mode", "tiles",
                    "devices", "machine", "self-join", "exclusion", "output",
                    "motifs", "discords", "repair", "auto-tiles", "chains",
                    "faults", "max-retries", "escalate-precision",
                    "metrics-out", "trace-out", "row-path", "simd",
                    "prefilter", "prefilter-budget",
                    "checkpoint",
                    "resume", "checkpoint-interval", "kill-after-tiles",
                    "slice-rows", "kill-after-slices",
                    "nodes", "node-faults", "steal",
                    "watchdog", "watchdog-slack", "device-memory-mb",
                    "help"});
  if (args.get_bool("help", false) || !args.has("reference")) {
    std::printf(
        "usage: mpsim_cli --reference=ref.csv [--query=query.csv] "
        "--window=M\n"
        "                 [--mode=FP64] [--tiles=1] [--devices=1]\n"
        "                 [--machine=A100] [--self-join] [--exclusion=R]\n"
        "                 [--output=profile.csv] [--motifs=K] "
        "[--discords=K] [--repair]\n"
        "                 [--auto-tiles] [--chains]\n"
        "                 [--faults=SPEC] [--max-retries=N] "
        "[--escalate-precision]\n"
        "                 [--metrics-out=FILE.json] [--trace-out=FILE.json]\n"
        "                 [--row-path=auto|fused|cooperative]\n"
        "                 [--simd=auto|scalar|f16c|avx2]\n"
        "                 [--prefilter=off|sketch] [--prefilter-budget=B]\n"
        "                 [--checkpoint=FILE.ckpt] [--resume=FILE.ckpt]\n"
        "                 [--checkpoint-interval=K] [--slice-rows=R]\n"
        "                 [--kill-after-slices=N] [--watchdog]\n"
        "                 [--watchdog-slack=S] [--device-memory-mb=M]\n"
        "                 [--nodes=N] [--node-faults=SPEC] [--steal=on|off]\n"
        "fault spec: comma-separated kind[@device][:key=value]... with kind\n"
        "  kernel|copy|offline|nan|bitflip|hang|slow and keys at=N, every=N,\n"
        "  p=P, frac=F, ms=D, plus an optional seed=S clause, e.g.\n"
        "  --faults=seed=7,kernel@0:at=5,offline@1:at=12,hang@0:at=3:ms=60000\n"
        "observability: --metrics-out writes the runtime metrics registry\n"
        "  (counters/gauges/histograms, mpsim-metrics-v2 JSON) and\n"
        "  --trace-out writes the measured wall-clock timeline as\n"
        "  Chrome-tracing JSON (load in Perfetto / chrome://tracing)\n"
        "durability: --checkpoint journals completed tiles every K commits\n"
        "  (atomic write; SIGINT/SIGTERM flush it before exit, status 130)\n"
        "  and --resume restores them, skipping finished tiles; --watchdog\n"
        "  re-executes hung tiles speculatively on another device\n"
        "approximation: --prefilter=sketch gates the exact recurrence with\n"
        "  FP16 random-projection sketches (fused row path only; default\n"
        "  off = bit-exact); --prefilter-budget bounds the acceptable miss\n"
        "  rate, measured by a verify sample and reported as prefilter.*\n"
        "  counters + the prefilter.miss_rate gauge in --metrics-out\n"
        "multi-node: --nodes=N shards the tile grid across N simulated\n"
        "  nodes (bit-identical to --nodes=1); --steal=off disables\n"
        "  cross-node work stealing; --node-faults injects node-level\n"
        "  chaos (node_crash|node_stall|node_slow, \"@k\" selects a node);\n"
        "  --slice-rows=R journals mid-tile row slices every R rows so a\n"
        "  kill mid-tile resumes without recomputing the covered rows\n");
    return args.has("reference") ? 0 : 2;
  }

  // Observability must be armed before any instrumented work runs.
  const bool want_metrics = args.has("metrics-out") || args.has("trace-out");
  if (want_metrics) {
    MetricsRegistry::global().reset();
    MetricsRegistry::global().set_enabled(true);
  }

  TimeSeries reference = read_csv(args.get_string("reference", ""));
  const bool self_join = args.get_bool("self-join", false);
  MPSIM_CHECK(self_join || args.has("query"),
              "--query is required unless --self-join is given");
  TimeSeries query =
      self_join ? reference : read_csv(args.get_string("query", ""));
  if (args.get_bool("repair", false)) {
    const std::size_t fixed =
        repair_non_finite(reference) + (self_join ? 0 : repair_non_finite(query));
    if (fixed > 0) {
      std::printf("repaired %zu non-finite samples by interpolation\n",
                  fixed);
    }
  }

  mp::MatrixProfileConfig config;
  config.window = std::size_t(args.get_int("window", 64));
  config.mode = parse_precision_mode(args.get_string("mode", "FP64"));
  config.tiles = int(args.get_int("tiles", 1));
  config.devices = int(args.get_int("devices", 1));
  config.machine = args.get_string("machine", "A100");
  config.exclusion = args.get_int(
      "exclusion", self_join ? std::int64_t(config.window / 2) : 0);
  config.resilience.max_retries =
      int(args.get_int("max-retries", config.resilience.max_retries));
  config.resilience.escalate_precision =
      args.get_bool("escalate-precision", false);
  config.row_path = mp::parse_row_path(args.get_string("row-path", "auto"));
  config.prefilter.mode =
      mp::parse_prefilter_mode(args.get_string("prefilter", "off"));
  config.prefilter.budget =
      args.get_double("prefilter-budget", config.prefilter.budget);
  // SIMD kernel dispatch is a process-wide executor knob, not a per-run
  // config field: every mode/path produces bit-identical output under any
  // level, so it never changes results — only throughput.
  mp::simd::apply_option(args.get_string("simd", "auto"));
  config.checkpoint.write_path = args.get_string("checkpoint", "");
  config.checkpoint.resume_path = args.get_string("resume", "");
  config.checkpoint.interval_tiles = int(args.get_int(
      "checkpoint-interval", config.checkpoint.interval_tiles));
  config.checkpoint.kill_after_tiles =
      int(args.get_int("kill-after-tiles", 0));
  config.checkpoint.slice_rows = int(args.get_int("slice-rows", 0));
  config.checkpoint.kill_after_slices =
      int(args.get_int("kill-after-slices", 0));
  cluster::ElasticClusterConfig elastic;
  elastic.nodes = int(args.get_int("nodes", 1));
  elastic.node_faults = args.get_string("node-faults", "");
  const std::string steal = args.get_string("steal", "on");
  MPSIM_CHECK(steal == "on" || steal == "off",
              "--steal must be on or off, got '" << steal << "'");
  elastic.steal = steal == "on";
  config.resilience.watchdog = args.get_bool("watchdog", false);
  config.resilience.watchdog_slack = args.get_double(
      "watchdog-slack", config.resilience.watchdog_slack);
  config.device_memory_bytes =
      std::size_t(args.get_int("device-memory-mb", 0)) << 20;
  gpusim::FaultInjector injector;
  if (args.has("faults")) {
    injector.configure(args.get_string("faults", ""));
    config.fault_injector = &injector;
  }

  if (args.get_bool("auto-tiles", false)) {
    mp::TileTuningRequest request;
    request.n_r = reference.segment_count(config.window);
    request.n_q = query.segment_count(config.window);
    request.dims = reference.dims();
    request.window = config.window;
    request.mode = config.mode;
    request.devices = config.devices;
    const auto tuned =
        mp::suggest_tiles(request, gpusim::spec_by_name(config.machine));
    config.tiles = tuned.tiles;
    std::printf("auto-tiles: %d tiles (%zu x %zu segments per tile%s%s)\n",
                tuned.tiles, tuned.tile_rows, tuned.tile_cols,
                tuned.accuracy_limited ? ", accuracy-limited" : "",
                tuned.memory_limited ? ", memory-limited" : "");
  }

  std::printf("reference: %zu samples x %zu dims; query: %zu samples; "
              "window=%zu mode=%s tiles=%d devices=%d\n",
              reference.length(), reference.dims(), query.length(),
              config.window, to_string(config.mode).c_str(), config.tiles,
              config.devices);

  // Observability must flush on every exit path — an interrupted run's
  // metrics and trace are exactly what a post-mortem needs.
  const auto flush_observability = [&] {
    if (!want_metrics) return;
    const auto snap = MetricsRegistry::global().snapshot();
    Table counters({"counter", "value"});
    for (const auto& [name, value] : snap.counters) {
      if (value == 0) continue;  // keep the summary to what happened
      counters.add_row({name, std::to_string(value)});
    }
    std::printf("\nruntime metrics (counters):\n%s",
                counters.to_string().c_str());
    Table histograms({"histogram", "count", "mean", "min", "max"});
    for (const auto& h : snap.histograms) {
      if (h.count == 0) continue;
      histograms.add_row({h.name, std::to_string(h.count),
                          fmt_sci(h.mean()), fmt_sci(h.min),
                          fmt_sci(h.max)});
    }
    std::printf("\nruntime metrics (histograms):\n%s",
                histograms.to_string().c_str());
    if (args.has("metrics-out")) {
      const auto path = args.get_string("metrics-out", "");
      MetricsRegistry::global().write_json(path);
      std::printf("metrics written to %s\n", path.c_str());
    }
    if (args.has("trace-out")) {
      const auto path = args.get_string("trace-out", "");
      MetricsRegistry::global().timeline().write_chrome_json(path);
      std::printf("trace written to %s (open in Perfetto or "
                  "chrome://tracing)\n", path.c_str());
    }
  };

  // SIGINT/SIGTERM request a graceful stop: the scheduler flushes its
  // checkpoint and unwinds with InterruptedError, we flush observability
  // and exit 128+signo — 130 for SIGINT, 143 for SIGTERM, plain 130 for a
  // signal-free programmatic kill (--kill-after-tiles) — so orchestrators
  // can tell an operator interrupt from a supervisor stop (a second
  // signal exits immediately with the same convention).
  install_signal_handlers();
  mp::MatrixProfileResult result;
  try {
    // --nodes=1 without node faults routes straight to the single-node
    // scheduler inside compute_matrix_profile_elastic.
    result = cluster::compute_matrix_profile_elastic(reference, query,
                                                     config, elastic);
  } catch (const InterruptedError& e) {
    std::printf("%s\n", e.what());
    flush_observability();
    return shutdown_exit_code();
  }
  std::printf("computed %zu x %zu profile in %.2f s (modeled %s time: "
              "%.4f s)\n",
              result.segments, result.dims, result.wall_seconds,
              config.machine.c_str(), result.modeled_total_seconds());
  if (config.fault_injector != nullptr || result.health.degraded ||
      result.health.resumed_tiles > 0 || result.health.partial_slices > 0 ||
      result.health.slices_discarded > 0 ||
      result.health.resume_fallbacks > 0 ||
      !result.health.escalations.empty()) {
    std::printf("%s", result.health.summary().c_str());
  }

  if (args.has("output")) {
    const auto path = args.get_string("output", "");
    // Shared with the serve daemon: its query responses byte-match this
    // file for the same flags.
    serve::write_profile_csv(path, result);
    std::printf("profile written to %s\n", path.c_str());
  }

  flush_observability();

  const auto k_motifs = std::size_t(args.get_int("motifs", 3));
  if (k_motifs > 0) {
    Table table({"rank", "query segment", "matches reference", "distance"});
    const auto motifs =
        mp::top_motifs(result, 0, k_motifs, config.window);
    for (std::size_t i = 0; i < motifs.size(); ++i) {
      table.add_row({std::to_string(i + 1),
                     std::to_string(motifs[i].query_segment),
                     std::to_string(motifs[i].match_segment),
                     fmt_fixed(motifs[i].distance, 4)});
    }
    std::printf("\ntop motifs (1-dimensional profile):\n%s",
                table.to_string().c_str());
  }
  if (args.get_bool("chains", false)) {
    MPSIM_CHECK(self_join, "--chains requires --self-join");
    const auto lr = mp::compute_left_right_profiles(reference, config.window,
                                                    config.exclusion);
    const auto chain = mp::longest_chain(lr, 0);
    if (chain.size() < 2) {
      std::printf("\nno time-series chain found\n");
    } else {
      std::printf("\nlongest time-series chain (%zu links):", chain.size());
      for (const auto node : chain) {
        std::printf(" %lld", (long long)node);
      }
      std::printf("\n");
    }
  }

  const auto k_discords = std::size_t(args.get_int("discords", 0));
  if (k_discords > 0) {
    Table table({"rank", "query segment", "distance"});
    const auto discords =
        mp::top_discords(result, result.dims - 1, k_discords, config.window);
    for (std::size_t i = 0; i < discords.size(); ++i) {
      table.add_row({std::to_string(i + 1),
                     std::to_string(discords[i].query_segment),
                     fmt_fixed(discords[i].distance, 4)});
    }
    std::printf("\ntop discords (%zu-dimensional profile):\n%s",
                result.dims, table.to_string().c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mpsim_cli: %s\n", e.what());
    return 1;
  }
}
