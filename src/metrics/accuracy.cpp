#include "metrics/accuracy.hpp"

#include <cmath>
#include <cstdlib>

#include "common/error.hpp"

namespace mpsim::metrics {

double recall_rate(const std::vector<std::int64_t>& test,
                   const std::vector<std::int64_t>& reference) {
  MPSIM_CHECK(test.size() == reference.size(),
              "index vectors differ in size: " << test.size() << " vs "
                                               << reference.size());
  if (test.empty()) return 1.0;
  std::size_t matches = 0;
  for (std::size_t e = 0; e < test.size(); ++e) {
    if (test[e] == reference[e]) ++matches;
  }
  return double(matches) / double(test.size());
}

double relative_accuracy(const std::vector<double>& test,
                         const std::vector<double>& reference) {
  MPSIM_CHECK(test.size() == reference.size(),
              "profile vectors differ in size");
  if (test.empty()) return 1.0;
  double err = 0.0;
  double norm = 0.0;
  for (std::size_t e = 0; e < test.size(); ++e) {
    const double r = reference[e];
    const double t = test[e];
    if (!std::isfinite(r)) continue;  // undefined reference entry
    norm += std::fabs(r);
    err += std::isfinite(t) ? std::fabs(t - r) : std::fabs(r);
  }
  if (norm == 0.0) return err == 0.0 ? 1.0 : 0.0;
  const double relative_error = err / norm;
  return relative_error >= 1.0 ? 0.0 : 1.0 - relative_error;
}

double embedded_motif_recall(const std::vector<std::int64_t>& index,
                             std::size_t segments,
                             const std::vector<Injection>& injections,
                             std::size_t window, double relaxation) {
  if (injections.empty()) return 1.0;
  const auto tolerance = std::int64_t(relaxation * double(window));
  std::size_t hits = 0;
  for (const auto& inj : injections) {
    MPSIM_CHECK(inj.query_position < segments,
                "injection outside the profile");
    const std::int64_t found = index[inj.query_position];  // k = 0 plane
    if (found < 0) continue;
    for (const auto& candidate : injections) {
      const auto expected = std::int64_t(candidate.reference_position);
      if (std::llabs(found - expected) <= tolerance) {
        ++hits;
        break;
      }
    }
  }
  return double(hits) / double(injections.size());
}

double relaxed_recall(const std::vector<std::int64_t>& index,
                      std::size_t segments,
                      const std::vector<std::size_t>& query_positions,
                      const std::vector<std::size_t>& expected_positions,
                      std::size_t window, double relaxation) {
  MPSIM_CHECK(query_positions.size() == expected_positions.size(),
              "positions vectors differ in size");
  if (query_positions.empty()) return 1.0;
  const auto tolerance = std::int64_t(relaxation * double(window));
  std::size_t hits = 0;
  for (std::size_t e = 0; e < query_positions.size(); ++e) {
    MPSIM_CHECK(query_positions[e] < segments,
                "query position outside the profile");
    const std::int64_t found = index[query_positions[e]];
    if (found < 0) continue;
    if (std::llabs(found - std::int64_t(expected_positions[e])) <= tolerance) {
      ++hits;
    }
  }
  return double(hits) / double(query_positions.size());
}

double prefilter_miss_rate(const mp::PrefilterStats& stats) {
  if (stats.cols_verified == 0) return 0.0;
  return double(stats.cols_missed) / double(stats.cols_verified);
}

bool prefilter_within_budget(const mp::PrefilterStats& stats,
                             double budget) {
  return prefilter_miss_rate(stats) <= budget;
}

}  // namespace mpsim::metrics
