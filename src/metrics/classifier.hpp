// Nearest-neighbour classification on top of the matrix profile index
// (paper §VI-A): each query segment inherits the label of its matching
// reference segment, and the classifier is scored with precision / recall
// / F-score per class (macro-averaged F-score is the headline metric of
// Fig. 9).
#pragma once

#include <cstdint>
#include <vector>

#include "mp/options.hpp"

namespace mpsim::metrics {

struct ClassScore {
  int cls = 0;
  std::int64_t true_positives = 0;
  std::int64_t false_positives = 0;
  std::int64_t false_negatives = 0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

struct ClassificationReport {
  double accuracy = 0.0;   ///< fraction of correctly labelled segments
  double macro_f1 = 0.0;   ///< unweighted mean of per-class F1 (F-score)
  std::vector<ClassScore> per_class;
};

/// Labels each query segment with the label of the reference segment its
/// matrix profile index points at (using the k_dim-dimensional profile;
/// pass dims-1 to match on all dimensions).  Reference labels are
/// per-sample; a segment's label is read at its centre sample.  Segments
/// with no match (index < 0) get label -1.
std::vector<int> nn_classify(const mp::MatrixProfileResult& result,
                             std::size_t k_dim,
                             const std::vector<int>& reference_labels,
                             std::size_t window);

/// Same label-at-segment-centre reduction for ground-truth comparison.
/// With `pure_only`, segments whose window spans a phase boundary (mixed
/// sample labels) get -1 — their class is ill-defined, and the paper's
/// per-segment evaluation is only meaningful on single-phase segments.
std::vector<int> segment_labels(const std::vector<int>& sample_labels,
                                std::size_t segments, std::size_t window,
                                bool pure_only = false);

/// Scores predictions against ground truth over classes [0, n_classes).
/// Entries with negative truth labels (ill-defined ground truth) are
/// excluded from every statistic.
ClassificationReport evaluate_classification(
    const std::vector<int>& predicted, const std::vector<int>& truth,
    int n_classes);

}  // namespace mpsim::metrics
