// Accuracy metrics of the paper (§V-A "Accuracy Metrics").
//
// Numerical accuracy (reduced-precision result vs FP64 reference):
//   * recall rate R — fraction of matrix profile indices that match the
//     reference exactly;
//   * relative accuracy A = 1 - E, with E the relative discrepancy of the
//     matrix profile values (norm-wise relative error).
//
// Practical accuracy:
//   * R_embedded — recall of embedded motifs: fraction of injected query
//     patterns whose matrix profile index points at the injected reference
//     location;
//   * R^r_embedded — the relaxed variant with relaxation factor r: a
//     detection within r * window of the expected location counts.
#pragma once

#include <cstdint>
#include <vector>

#include "mp/options.hpp"
#include "tsdata/synthetic.hpp"

namespace mpsim::metrics {

/// Fraction of exactly matching indices (R). Ranges [0, 1].
double recall_rate(const std::vector<std::int64_t>& test,
                   const std::vector<std::int64_t>& reference);

/// Relative accuracy A = 1 - E with E = ||test - ref||_1 / ||ref||_1,
/// clamped into [0, 1].  Non-finite entries in either operand count as
/// maximal error for that entry.
double relative_accuracy(const std::vector<double>& test,
                         const std::vector<double>& reference);

/// Embedded-motif recall over a set of injections, checked on the
/// 1-dimensional profile (k = 0), which selects the best-matching
/// dimension automatically.  An injected query pattern counts as detected
/// when its matrix profile index lands within relaxation * window of ANY
/// injected reference location — all injections embed the same repeating
/// pattern, so every injected copy is a true match (the z-normalised
/// distance cannot distinguish them).
///
/// `index` is the dimension-major matrix profile index with `segments`
/// columns; `relaxation` = 0 demands an exact location.
double embedded_motif_recall(const std::vector<std::int64_t>& index,
                             std::size_t segments,
                             const std::vector<Injection>& injections,
                             std::size_t window, double relaxation = 0.0);

/// Relaxed recall against explicit expected positions (turbine case study,
/// §VI-C): detection i succeeds when |index[q_i] - expected_i| <=
/// relaxation * window.
double relaxed_recall(const std::vector<std::int64_t>& index,
                      std::size_t segments,
                      const std::vector<std::size_t>& query_positions,
                      const std::vector<std::size_t>& expected_positions,
                      std::size_t window, double relaxation);

/// Realized miss rate of the sketch prefilter's verify sample: the
/// fraction of verify-block columns whose exact execution updated a
/// profile entry the sketch had declared update-free.  0 when nothing
/// was verified (an exact run, or one where no block ever skipped).
double prefilter_miss_rate(const mp::PrefilterStats& stats);

/// True when the measured miss rate stays within the configured budget —
/// the acceptance check the statistical prefilter tests (and users of
/// `prefilter.miss_rate` in --metrics-out) apply.  Vacuously true with an
/// empty verify sample.
bool prefilter_within_budget(const mp::PrefilterStats& stats,
                             double budget);

}  // namespace mpsim::metrics
