#include "metrics/classifier.hpp"

#include "common/error.hpp"

namespace mpsim::metrics {

std::vector<int> nn_classify(const mp::MatrixProfileResult& result,
                             std::size_t k_dim,
                             const std::vector<int>& reference_labels,
                             std::size_t window) {
  MPSIM_CHECK(k_dim < result.dims,
              "k_dim " << k_dim << " out of range for " << result.dims
                       << "-dimensional profile");
  std::vector<int> out(result.segments, -1);
  for (std::size_t j = 0; j < result.segments; ++j) {
    const std::int64_t match = result.index_at(j, k_dim);
    if (match < 0) continue;
    const std::size_t centre = std::size_t(match) + window / 2;
    MPSIM_CHECK(centre < reference_labels.size(),
                "matrix profile index " << match
                                        << " outside the labelled reference");
    out[j] = reference_labels[centre];
  }
  return out;
}

std::vector<int> segment_labels(const std::vector<int>& sample_labels,
                                std::size_t segments, std::size_t window,
                                bool pure_only) {
  MPSIM_CHECK(segments + window - 1 <= sample_labels.size() + 0,
              "segment range exceeds labelled samples");
  std::vector<int> out(segments);
  for (std::size_t j = 0; j < segments; ++j) {
    out[j] = sample_labels[j + window / 2];
    if (pure_only) {
      for (std::size_t t = 1; t < window; ++t) {
        if (sample_labels[j + t] != sample_labels[j]) {
          out[j] = -1;  // window spans a phase boundary
          break;
        }
      }
    }
  }
  return out;
}

ClassificationReport evaluate_classification(const std::vector<int>& predicted,
                                             const std::vector<int>& truth,
                                             int n_classes) {
  MPSIM_CHECK(predicted.size() == truth.size(),
              "prediction/truth size mismatch");
  MPSIM_CHECK(n_classes >= 1, "need at least one class");

  ClassificationReport report;
  report.per_class.resize(std::size_t(n_classes));
  for (int c = 0; c < n_classes; ++c) report.per_class[std::size_t(c)].cls = c;

  std::int64_t correct = 0;
  std::int64_t scored = 0;
  for (std::size_t e = 0; e < truth.size(); ++e) {
    const int t = truth[e];
    if (t < 0) continue;  // ill-defined ground truth: excluded
    const int p = predicted[e];
    ++scored;
    if (t == p) ++correct;
    if (t < n_classes) {
      if (p == t) {
        report.per_class[std::size_t(t)].true_positives += 1;
      } else {
        report.per_class[std::size_t(t)].false_negatives += 1;
      }
    }
    if (p >= 0 && p < n_classes && p != t) {
      report.per_class[std::size_t(p)].false_positives += 1;
    }
  }
  report.accuracy = scored == 0 ? 1.0 : double(correct) / double(scored);

  double f1_sum = 0.0;
  int f1_classes = 0;
  for (auto& score : report.per_class) {
    const auto tp = score.true_positives;
    const auto fp = score.false_positives;
    const auto fn = score.false_negatives;
    if (tp + fn == 0) continue;  // class absent from the ground truth
    score.precision = tp + fp == 0 ? 0.0 : double(tp) / double(tp + fp);
    score.recall = double(tp) / double(tp + fn);
    score.f1 = score.precision + score.recall == 0.0
                   ? 0.0
                   : 2.0 * score.precision * score.recall /
                         (score.precision + score.recall);
    f1_sum += score.f1;
    ++f1_classes;
  }
  report.macro_f1 = f1_classes == 0 ? 0.0 : f1_sum / double(f1_classes);
  return report;
}

}  // namespace mpsim::metrics
