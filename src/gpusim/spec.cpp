#include "gpusim/spec.hpp"

#include "common/error.hpp"

namespace mpsim::gpusim {

double MachineSpec::peak_tflops(std::size_t flop_width_bytes) const {
  switch (flop_width_bytes) {
    case 8:
      return fp64_tflops;
    case 4:
      return fp32_tflops;
    case 2:
      return fp16_tflops;
    default:
      return fp64_tflops;
  }
}

double MachineSpec::tensor_peak_tflops(TensorFormat format) const {
  switch (format) {
    case TensorFormat::kFp16:
      return tensor_fp16_tflops;
    case TensorFormat::kBf16:
      return tensor_bf16_tflops;
    case TensorFormat::kTf32:
      return tensor_tf32_tflops;
    case TensorFormat::kFp64:
      return tensor_fp64_tflops;
    case TensorFormat::kNone:
      break;
  }
  return 0.0;
}

MachineSpec v100() {
  MachineSpec s;
  s.name = "V100";
  s.sm_count = 80;
  s.warps_per_sm = 64;
  s.mem_bandwidth_gbs = 900.0;
  s.fp64_tflops = 7.8;
  s.fp32_tflops = 15.7;
  s.fp16_tflops = 31.4;
  s.tensor_fp16_tflops = 125.0;  // first-generation tensor cores: FP16 only
  s.barrier_round_cost_us = 0.06;
  s.shared_mem_per_sm_bytes = std::size_t(96) << 10;   // V100: 96 KiB
  s.memory_capacity_bytes = std::size_t(32) << 30;
  return s;
}

MachineSpec a100() {
  MachineSpec s;
  s.name = "A100";
  s.sm_count = 108;
  s.warps_per_sm = 64;
  s.mem_bandwidth_gbs = 1555.0;
  s.fp64_tflops = 9.7;
  s.fp32_tflops = 19.5;
  s.fp16_tflops = 39.0;
  s.tensor_fp16_tflops = 312.0;  // third-generation tensor cores
  s.tensor_bf16_tflops = 312.0;
  s.tensor_tf32_tflops = 156.0;
  s.tensor_fp64_tflops = 19.5;   // DMMA
  s.barrier_round_cost_us = 0.05;
  s.shared_mem_per_sm_bytes = std::size_t(164) << 10;  // A100: 164 KiB
  s.memory_capacity_bytes = std::size_t(40) << 30;
  return s;
}

MachineSpec skylake_cpu16() {
  MachineSpec s;
  s.name = "CPU";
  s.sm_count = 16;  // cores
  s.warps_per_sm = 2;
  s.threads_per_warp = 1;
  // Six-channel DDR4-2666 peaks near 128 GB/s; the (MP)^N working set mixes
  // streaming updates with per-column sorts, which in practice sustain a
  // small fraction of that on CPUs (the paper calls the workload
  // memory-bound and measures the GPU at 41.6-54x).
  s.mem_bandwidth_gbs = 128.0;
  s.bw_efficiency = 0.12;
  s.fp64_tflops = 1.2;
  s.fp32_tflops = 2.4;
  s.fp16_tflops = 2.4;  // no native FP16; emulated at FP32 rate
  s.compute_efficiency = 0.35;
  s.kernel_launch_overhead_us = 0.0;
  s.barrier_round_cost_us = 0.0;  // no device-wide sync rounds on the CPU
  s.copy_bandwidth_gbs = 0.0;     // data already resides in host memory
  s.copy_latency_us = 0.0;
  s.memory_capacity_bytes = 0;  // host memory treated as unlimited
  return s;
}

MachineSpec spec_by_name(const std::string& name) {
  if (name == "V100" || name == "v100") return v100();
  if (name == "A100" || name == "a100") return a100();
  if (name == "CPU" || name == "cpu") return skylake_cpu16();
  throw ConfigError("unknown machine spec '" + name +
                    "' (expected V100|A100|CPU)");
}

}  // namespace mpsim::gpusim
