#include "gpusim/device.hpp"

#include <algorithm>
#include <thread>

#include "gpusim/faults.hpp"

namespace mpsim::gpusim {

Device::Device(MachineSpec spec, int index, std::size_t workers)
    : spec_(std::move(spec)), index_(index), pool_(workers) {}

void Device::allocate_bytes(std::size_t bytes) {
  const std::size_t now = bytes_in_use_.fetch_add(bytes) + bytes;
  if (spec_.memory_capacity_bytes != 0 && now > spec_.memory_capacity_bytes) {
    bytes_in_use_.fetch_sub(bytes);
    throw DeviceMemoryError(
        "device " + spec_.name + "[" + std::to_string(index_) +
        "]: allocation of " + std::to_string(bytes) + " bytes exceeds " +
        std::to_string(spec_.memory_capacity_bytes) + "-byte capacity (" +
        std::to_string(now - bytes) + " in use); use more tiles");
  }
  std::size_t peak = peak_bytes_.load();
  while (now > peak && !peak_bytes_.compare_exchange_weak(peak, now)) {
  }
}

void Device::free_bytes(std::size_t bytes) { bytes_in_use_.fetch_sub(bytes); }

void Device::fault_point(FaultSite site, const std::string& detail,
                         const CancellationToken* cancel) {
  FaultInjector* injector = fault_injector_.load();
  if (injector != nullptr) injector->fire(site, index_, detail, cancel);
}

System::System(const MachineSpec& device_spec, int device_count,
               std::size_t total_workers, int index_base) {
  MPSIM_CHECK(device_count >= 1, "a system needs at least one device");
  if (total_workers == 0) {
    total_workers =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  const std::size_t per_device = std::max<std::size_t>(
      1, total_workers / std::size_t(device_count));
  devices_.reserve(std::size_t(device_count));
  for (int i = 0; i < device_count; ++i) {
    devices_.push_back(
        std::make_unique<Device>(device_spec, index_base + i, per_device));
  }
}

void System::attach_fault_injector(FaultInjector* injector) {
  for (auto& d : devices_) d->attach_fault_injector(injector);
}

double System::total_modeled_seconds() const {
  double total = 0.0;
  for (const auto& d : devices_) total += d->ledger().total_modeled_seconds();
  return total;
}

}  // namespace mpsim::gpusim
