// Deterministic fault injection for the simulated GPU substrate.
//
// A FaultInjector is attached to the Devices of a System (see
// Device::attach_fault_injector) and fires faults at well-defined sites:
//
//  * kernel-launch failures   — a TransientFaultError thrown at the start
//    of a kernel launch (the CUDA analogue of a sporadic launch error),
//  * copy failures            — a TransientFaultError thrown by an
//    h2d/d2h transfer,
//  * permanent device loss    — a DeviceFailedError; once a device has
//    gone offline every subsequent launch/copy on it fails too,
//  * value corruption         — NaN poisoning or bit flips applied to the
//    staged (reduced-precision) input buffers of a tile, modelling FP16
//    overflow and memory corruption,
//  * hangs and slowdowns      — the kernel-launch event stalls in a
//    cancellable sleep (`ms` long; a hang defaults to effectively forever,
//    a slowdown to a short stutter) and then proceeds *successfully*.
//    Nothing throws, so only a liveness mechanism — the resilient
//    scheduler's deadline watchdog — can detect it; cancelling the
//    attempt's CancellationToken unwinds the sleeper with CancelledError.
//
// Rules trigger either at exact per-device event counts (`at`, `every` —
// fully deterministic, used by the fault-tolerance tests) or with a seeded
// per-event probability (`probability` — deterministic for a fixed thread
// interleaving).  Every injected fault is recorded and exposed through
// events(), which the resilient scheduler folds into its RunHealth report.
//
// The textual spec accepted by parse_fault_spec (the CLI's --faults= flag)
// is a comma-separated list of clauses:
//
//   seed=S
//   kind[@device][:key=value]...
//
// with kind in {kernel, copy, offline, nan, bitflip, hang, slow,
// node_crash, node_stall, node_slow}, device an integer (default: any
// device), and keys at=N, every=N, p=P, frac=F, ms=D (hang/slow stall
// duration in milliseconds).  Example:
//
//   --faults=seed=7,kernel@0:at=5,offline@1:at=12,nan@0:at=1:frac=0.05
//   --faults=hang@0:at=3:ms=60000,slow@1:p=0.01:ms=50
//
// The node_* kinds fire at the coordinator's per-node kNodeTile site (the
// "@device" selector addresses a *node* there): node_crash throws
// NodeFailedError and takes the whole simulated node down, node_stall
// and node_slow stall the node's tile start in the same cancellable
// sleep as hang/slow.  They are used with --node-faults=, whose injector
// is separate from the per-device one.
#pragma once

#include <cstdint>
#include <cstring>
#include <limits>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace mpsim::gpusim {

class CancellationToken;

/// Where in the execution a fault hook is being evaluated.
enum class FaultSite : int {
  kKernelLaunch,
  kCopyH2D,
  kCopyD2H,
  kStaging,
  kNodeTile,  ///< a node is about to start executing a tile (coordinator)
};

/// What kind of fault a rule injects.
enum class FaultKind : int {
  kKernelLaunch,  ///< transient kernel-launch failure
  kCopy,          ///< transient h2d/d2h copy failure
  kDeviceOffline, ///< permanent device loss (fires on a kernel-launch event)
  kNaNPoison,     ///< overwrite staged values with quiet NaNs
  kBitFlip,       ///< flip one random bit per selected staged value
  kHang,          ///< kernel-launch stalls (cancellable sleep), then proceeds
  kSlowdown,      ///< kernel-launch stutters briefly, then proceeds
  kNodeCrash,     ///< whole-node loss (throws NodeFailedError at kNodeTile)
  kNodeStall,     ///< node stalls ~forever before a tile (cancellable sleep)
  kNodeSlow,      ///< node stutters briefly before a tile, then proceeds
};

std::string to_string(FaultKind kind);

/// One injection rule.  Event counters are kept per (site class, device);
/// a rule fires when its trigger matches the counter value (`at` is
/// 1-based, `every` fires on every multiple) or its seeded coin comes up.
struct FaultRule {
  FaultKind kind = FaultKind::kKernelLaunch;
  int device = -1;             ///< target device index, -1 = any
  std::uint64_t at = 0;        ///< fire on exactly the Nth matching event
  std::uint64_t every = 0;     ///< fire on every Nth matching event
  double probability = 0.0;    ///< seeded per-event probability
  double fraction = 0.0;       ///< corruption: fraction of elements hit
  double delay_ms = -1.0;      ///< hang/slow stall (<0 = kind's default)
};

/// A fault that actually fired.
struct FaultEvent {
  FaultKind kind = FaultKind::kKernelLaunch;
  int device = -1;
  std::string site;            ///< kernel name / copy direction / "staging"
  std::uint64_t sequence = 0;  ///< per-device event count when it fired
  std::size_t corrupted = 0;   ///< elements poisoned (corruption only)
};

/// Parsed form of a --faults= specification.
struct FaultSpec {
  std::uint64_t seed = 0x5eedfa17ULL;
  std::vector<FaultRule> rules;
};

/// Parses the textual fault spec described above; throws ConfigError on
/// malformed input.
FaultSpec parse_fault_spec(const std::string& spec);

class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed = 0x5eedfa17ULL);

  void add_rule(const FaultRule& rule);
  void configure(const FaultSpec& spec);
  void configure(const std::string& spec) { configure(parse_fault_spec(spec)); }

  /// Hook called by kernel launches and copies when their work executes.
  /// Throws DeviceFailedError if `device` is offline (or goes offline on
  /// this event) and TransientFaultError when a transient rule fires.
  /// A matching hang/slowdown rule stalls in a cancellable sleep (outside
  /// the injector lock, so only this attempt blocks) and then returns
  /// normally; when `cancel` flips mid-stall the sleeper unwinds with
  /// CancelledError.
  void fire(FaultSite site, int device, const std::string& detail,
            const CancellationToken* cancel = nullptr);

  /// Applies any matching corruption rule to a staged buffer; returns the
  /// number of elements corrupted.  T must be trivially copyable (all the
  /// storage formats are).
  template <typename T>
  std::size_t corrupt_span(int device, T* data, std::size_t count) {
    const CorruptionPlan plan = plan_corruption(device, count);
    for (std::size_t idx = 0; idx < plan.indices.size(); ++idx) {
      const std::size_t e = plan.indices[idx];
      if (plan.kind == FaultKind::kNaNPoison) {
        data[e] = T(std::numeric_limits<double>::quiet_NaN());
      } else {
        unsigned char bytes[sizeof(T)];
        std::memcpy(bytes, &data[e], sizeof(T));
        const std::size_t bit = plan.bits[idx] % (8 * sizeof(T));
        bytes[bit / 8] ^= static_cast<unsigned char>(1u << (bit % 8));
        std::memcpy(&data[e], bytes, sizeof(T));
      }
    }
    return plan.indices.size();
  }

  bool device_offline(int device) const;

  /// Snapshot of every fault fired so far (thread-safe copy).
  std::vector<FaultEvent> events() const;
  std::size_t fault_count() const;

 private:
  struct CorruptionPlan {
    FaultKind kind = FaultKind::kNaNPoison;
    std::vector<std::size_t> indices;  ///< elements to corrupt
    std::vector<std::size_t> bits;     ///< bit choice per element (bit flips)
  };

  /// Decides (under the lock, with the seeded Rng) which elements of a
  /// staged span get corrupted; empty plan = no rule fired.
  CorruptionPlan plan_corruption(int device, std::size_t count);

  static int site_class(FaultSite site);
  bool rule_fires(const FaultRule& rule, std::uint64_t sequence);

  mutable std::mutex mutex_;
  Rng rng_;
  std::vector<FaultRule> rules_;
  std::vector<FaultEvent> events_;
  // Per (site class, device) event counters; device -1 never occurs here.
  std::vector<std::vector<std::uint64_t>> counters_;
  std::set<int> offline_;
};

}  // namespace mpsim::gpusim
