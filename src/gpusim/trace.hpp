// Execution-timeline tracing for the modelled schedule.
//
// The ledger aggregates per-kernel totals; a Timeline keeps the
// individual intervals — which device, which engine lane (compute or
// copy), when — and serialises them in the Chrome tracing format
// (chrome://tracing, Perfetto, speedscope all read it), the standard way
// GPU schedules are inspected.  mp::model_timeline() builds one for a
// multi-tile run without executing anything.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mpsim::gpusim {

struct TraceEvent {
  std::string name;     ///< e.g. "tile 3 dist_calc"
  int device = 0;       ///< pid in the trace
  std::string lane;     ///< tid: "compute" or "copy"
  double start_seconds = 0.0;
  double duration_seconds = 0.0;

  double end_seconds() const { return start_seconds + duration_seconds; }
};

class Timeline {
 public:
  void add(TraceEvent event);

  const std::vector<TraceEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  /// Latest event end across all devices and lanes.
  double makespan_seconds() const;

  /// End of the last event on one device's lane (0 if none).
  double lane_end_seconds(int device, const std::string& lane) const;

  /// Chrome tracing JSON (an array of "X" complete events; timestamps in
  /// microseconds as the format requires).
  std::string to_chrome_json() const;

  /// Writes the JSON to a file; throws on I/O failure.
  void write_chrome_json(const std::string& path) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace mpsim::gpusim
