// Execution-timeline tracing for the modelled schedule.
//
// The implementation moved to common/trace.hpp so the runtime metrics
// layer (common/metrics.hpp) can record measured wall-clock events into
// the same Timeline type the modelled schedule uses — real runs and
// modelled schedules serialize to the same Chrome-tracing JSON.  This
// header keeps the historical mpsim::gpusim spelling working.
#pragma once

#include "common/trace.hpp"

namespace mpsim::gpusim {

using mpsim::TraceEvent;
using mpsim::Timeline;

}  // namespace mpsim::gpusim
