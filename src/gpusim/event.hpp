// CUDA-event analogue for cross-stream synchronisation.
//
// record(stream) enqueues a completion marker on a stream; other streams
// can wait(stream) on it (stream-side dependency) and the host can
// synchronize() on it.  The multi-tile scheduler doesn't need events —
// tiles are independent — but downstream users composing custom pipelines
// on the substrate (e.g. double-buffered H2D + compute chains) do, and
// the paper's implicit-synchronisation design (§III-B) is expressed in
// exactly these primitives on real CUDA.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>

#include "gpusim/stream.hpp"

namespace mpsim::gpusim {

class Event {
 public:
  Event() : state_(std::make_shared<State>()) {}

  /// Enqueues a completion marker: the event fires when every task
  /// enqueued on `stream` before this call has finished.
  void record(Stream& stream) {
    auto state = state_;
    {
      std::lock_guard lock(state->mutex);
      state->fired = false;  // re-recording re-arms the event
    }
    stream.enqueue([state] {
      {
        std::lock_guard lock(state->mutex);
        state->fired = true;
      }
      state->cv.notify_all();
    });
  }

  /// Makes `stream` wait: tasks enqueued on it after this call run only
  /// once the event has fired.
  void wait(Stream& stream) {
    auto state = state_;
    stream.enqueue([state] {
      std::unique_lock lock(state->mutex);
      state->cv.wait(lock, [&] { return state->fired; });
    });
  }

  /// Host-side wait.
  void synchronize() {
    std::unique_lock lock(state_->mutex);
    state_->cv.wait(lock, [&] { return state_->fired; });
  }

  /// True once the recorded marker has executed (false if never recorded).
  bool query() const {
    std::lock_guard lock(state_->mutex);
    return state_->fired;
  }

 private:
  struct State {
    mutable std::mutex mutex;
    std::condition_variable cv;
    bool fired = false;
  };
  std::shared_ptr<State> state_;
};

}  // namespace mpsim::gpusim
