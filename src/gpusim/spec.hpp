// Machine specifications consumed by the roofline performance model.
//
// The paper evaluates on NVIDIA V100 (DGX-1) and A100 (Raven) GPUs and an
// Intel 16-core Skylake CPU.  This environment has none of that hardware,
// so kernels execute on a simulated device (gpusim::Device) and their
// *modelled* execution time is derived from these published specs:
//
//   V100:  80 SMs, 900 GB/s HBM2, 7.8 FP64 TFLOP/s, 32 GB    [paper §V-A]
//   A100: 108 SMs, 1555 GB/s HBM2, 9.7 FP64 TFLOP/s, 40 GB   [paper §V-A]
//
// The efficiency factors and overhead constants are first-principles
// estimates for memory-bound streaming kernels (the paper reports >80%
// DRAM throughput for dist_calc/update, and a synchronisation-dominated
// sort kernel), not values fitted to the paper's results; EXPERIMENTS.md
// compares what the model produces against what the paper reports.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace mpsim::gpusim {

/// Tensor-core input format of a launch's inner loop (kNone = the kernel
/// has no matmul structure and rides the regular FMA pipeline).  Kept as
/// an explicit format rather than a byte width because eligibility is
/// format-specific: V100 tensor cores accept FP16 only, A100 adds
/// BF16/TF32 and FP64 (DMMA), and no generation accepts plain FP32.
enum class TensorFormat : std::uint8_t { kNone, kFp16, kBf16, kTf32, kFp64 };

struct MachineSpec {
  std::string name;

  // Compute organisation (informational; drives launch-config defaults).
  int sm_count = 0;            ///< streaming multiprocessors (or CPU cores)
  int warps_per_sm = 64;       ///< resident warps per SM used by the paper
  int threads_per_warp = 32;
  int max_threads_per_sm = 2048;  ///< hardware resident-thread limit
  std::size_t shared_mem_per_sm_bytes = 96 << 10;  ///< scratchpad per SM

  // Roofline inputs.
  double mem_bandwidth_gbs = 0.0;  ///< peak DRAM/HBM bandwidth, GB/s
  double bw_efficiency = 0.8;      ///< achievable fraction for streaming
  double fp64_tflops = 0.0;        ///< peak FP64 throughput
  double fp32_tflops = 0.0;
  double fp16_tflops = 0.0;
  double compute_efficiency = 0.7;

  // Tensor-core peaks (dense-matmul TFLOP/s) per input format; 0 = the
  // machine has no tensor path for that format and the launch falls back
  // to the regular peak of its flop width.  Published numbers: V100 FP16
  // 125; A100 FP16/BF16 312, TF32 156, FP64 DMMA 19.5.
  double tensor_fp16_tflops = 0.0;
  double tensor_bf16_tflops = 0.0;
  double tensor_tf32_tflops = 0.0;
  double tensor_fp64_tflops = 0.0;

  // Fixed overheads.
  double kernel_launch_overhead_us = 5.0;  ///< per kernel launch
  double barrier_round_cost_us = 0.0;      ///< per device-wide cooperative
                                           ///< synchronisation round
  double copy_bandwidth_gbs = 12.0;        ///< host<->device interconnect
  double copy_latency_us = 10.0;           ///< per transfer

  std::size_t memory_capacity_bytes = 0;   ///< device memory (0 = unlimited)

  /// Total logical threads of the tuned launch configuration the paper
  /// uses (e.g. 221,184 on A100 = 108 SMs * 64 warps * 32 threads).
  std::int64_t default_thread_count() const {
    return std::int64_t(sm_count) * warps_per_sm * threads_per_warp;
  }

  /// Occupancy waves a cooperative launch of `logical_threads` needs: the
  /// resident threads can only host one wave at a time, so device-wide
  /// synchronisation rounds repeat once per wave.
  std::int64_t wave_count(std::int64_t logical_threads) const {
    const std::int64_t resident = default_thread_count();
    if (resident <= 0) return 1;
    return std::max<std::int64_t>(
        1, (logical_threads + resident - 1) / resident);
  }

  /// Hardware resident-thread capacity (sm_count * max_threads_per_sm).
  /// The paper's tuned launch configurations fill exactly this (§IV:
  /// 163,840 threads on V100 = 80 SMs * 2048; 221,184 on A100 uses 64
  /// warps/SM of the 2048-thread limit).
  std::int64_t resident_thread_capacity() const {
    return std::int64_t(sm_count) * max_threads_per_sm;
  }

  double peak_tflops(std::size_t flop_width_bytes) const;

  /// Tensor-core peak for the format (0 when the machine has none).
  double tensor_peak_tflops(TensorFormat format) const;
};

/// NVIDIA Tesla V100 (DGX-1 node at LRZ) — paper §V-A.
MachineSpec v100();
/// NVIDIA A100 (Raven at MPCDF) — paper §V-A.
MachineSpec a100();
/// Intel 16-core Skylake CPU node used for the (MP)^N baseline in Fig. 6.
MachineSpec skylake_cpu16();

/// Lookup by name ("V100" | "A100" | "CPU"); throws ConfigError otherwise.
MachineSpec spec_by_name(const std::string& name);

}  // namespace mpsim::gpusim
