#include "gpusim/stream.hpp"

namespace mpsim::gpusim {

Stream::Stream(Device& device) : device_(device) {
  drainer_ = std::thread([this] { drain_loop(); });
}

Stream::~Stream() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  drainer_.join();
}

void Stream::enqueue(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_all();
}

void Stream::synchronize() {
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [this] { return queue_.empty() && !busy_; });
  if (pending_error_) {
    auto error = pending_error_;
    pending_error_ = nullptr;
    std::rethrow_exception(error);
  }
}

void Stream::drain_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      busy_ = true;
    }
    try {
      task();
    } catch (...) {
      std::lock_guard lock(mutex_);
      if (!pending_error_) pending_error_ = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      busy_ = false;
    }
    cv_.notify_all();
  }
}

StreamPool::StreamPool(Device& device, int stream_count) {
  MPSIM_CHECK(stream_count >= 1, "stream pool needs at least one stream");
  streams_.reserve(std::size_t(stream_count));
  for (int i = 0; i < stream_count; ++i) {
    streams_.push_back(std::make_unique<Stream>(device));
  }
}

Stream& StreamPool::next() {
  return *streams_[cursor_.fetch_add(1) % streams_.size()];
}

void StreamPool::synchronize_all() {
  for (auto& s : streams_) s->synchronize();
}

}  // namespace mpsim::gpusim
