// Resource-utilisation reporting — the simulator's counterpart of the
// paper's Nsight Compute profiling (§V-C "Resource Utilization"): for
// each kernel in a ledger, the fraction of peak DRAM bandwidth and peak
// compute throughput the modelled execution sustains, and the share of
// its time spent in synchronisation.
#pragma once

#include <string>
#include <vector>

#include "gpusim/perf_model.hpp"
#include "gpusim/spec.hpp"

namespace mpsim::gpusim {

struct KernelUtilization {
  std::string kernel;
  double modeled_seconds = 0.0;
  double dram_fraction = 0.0;     ///< achieved bytes/s over peak bandwidth
  double compute_fraction = 0.0;  ///< achieved flop/s over peak throughput
  double sync_share = 0.0;        ///< barrier time / modelled time
};

/// Per-kernel utilisation of all launches recorded in `ledger` on `spec`.
std::vector<KernelUtilization> utilization(const KernelLedger& ledger,
                                           const MachineSpec& spec);

/// Human-readable table (used by the fig4 bench and the CLI tool).
std::string utilization_report(const KernelLedger& ledger,
                               const MachineSpec& spec);

}  // namespace mpsim::gpusim
