// Roofline performance model and per-kernel accounting ledger.
//
// Every simulated kernel launch (and every host<->device copy) reports a
// KernelCost describing the DRAM traffic, floating-point work and
// device-wide cooperative synchronisation rounds it performs.  The model
// converts that into seconds on a MachineSpec:
//
//   t = launch_overhead
//     + max( bytes / (BW * bw_eff),  flops / (peak(width) * compute_eff) )
//     + barrier_rounds * barrier_round_cost
//
// This is the standard roofline for memory-bound kernels with an additive
// synchronisation term; the paper's own profiling (§V-C "Resource
// Utilization": dist_calc/update at >80% DRAM throughput, sort dominated by
// "repeating synchronization overheads") motivates exactly these terms.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "gpusim/spec.hpp"

namespace mpsim::gpusim {

struct KernelCost {
  std::int64_t bytes_read = 0;
  std::int64_t bytes_written = 0;
  std::int64_t flops = 0;
  std::int64_t barrier_rounds = 0;  ///< device-wide sync rounds (sort/scan)
  std::size_t flop_width_bytes = 8;  ///< arithmetic width: 8, 4 or 2
  /// Tensor-core input format of the launch's inner loop (kNone for
  /// kernels without matmul structure).  When the machine publishes a
  /// tensor peak for the format, the compute roof uses it instead of the
  /// regular flop-width peak — this is how the blocked-GEMM precalc
  /// (mp/gemm.hpp) earns V100/A100 tensor-core throughput in the model.
  TensorFormat tensor_format = TensorFormat::kNone;
  /// Launch occupancy in (0, 1]: the share of resident threads the launch
  /// configuration keeps busy.  GPUs saturate DRAM bandwidth around half
  /// occupancy; below that, achievable bandwidth and compute shrink
  /// proportionally (the §IV launch-tuning effect).
  double occupancy = 1.0;

  std::int64_t total_bytes() const { return bytes_read + bytes_written; }

  KernelCost& operator+=(const KernelCost& o);
};

/// Modelled execution time of one launch with the given cost, in seconds.
double modeled_seconds(const MachineSpec& spec, const KernelCost& cost);

/// Modelled host<->device transfer time for `bytes`, in seconds.
double modeled_copy_seconds(const MachineSpec& spec, std::int64_t bytes);

/// Fraction of peak DRAM bandwidth the launch sustains under the model
/// (the §V-C utilisation numbers).
double modeled_dram_utilization(const MachineSpec& spec,
                                const KernelCost& cost);

/// Aggregated modelled statistics for one kernel name.
struct KernelStats {
  std::int64_t launches = 0;
  KernelCost cost;               ///< summed over launches
  double modeled_seconds = 0.0;  ///< summed modelled time
  double measured_seconds = 0.0; ///< summed host wall time (diagnostics)
};

/// Thread-safe per-device ledger of kernel launches and copies.
class KernelLedger {
 public:
  void record(const std::string& kernel, const KernelCost& cost,
              double seconds, double measured_seconds = 0.0);

  /// Stats for one kernel (zeros if never launched).
  KernelStats stats(const std::string& kernel) const;

  /// All kernels, sorted by name.
  std::vector<std::pair<std::string, KernelStats>> all() const;

  /// Total modelled seconds across all recorded launches.
  double total_modeled_seconds() const;

  void reset();

  /// Merges another ledger's records into this one.
  void merge_from(const KernelLedger& other);

 private:
  mutable std::mutex mutex_;
  std::map<std::string, KernelStats> stats_;
};

}  // namespace mpsim::gpusim
