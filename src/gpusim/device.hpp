// Simulated GPU device: a MachineSpec, a worker pool that actually executes
// kernel bodies, a device-memory allocator with capacity accounting, and a
// KernelLedger accumulating modelled execution time.
//
// The simulation is *functionally real*: kernels run genuine arithmetic on
// host threads (so every accuracy result in the paper's figures is
// reproduced by computation, not by a model), while time is accounted via
// the roofline model in perf_model.hpp.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "gpusim/perf_model.hpp"
#include "gpusim/spec.hpp"

namespace mpsim::gpusim {

class FaultInjector;
class CancellationToken;
enum class FaultSite : int;

class Device {
 public:
  /// `workers` = host threads backing this device's kernel execution
  /// (0 = one per hardware thread).
  explicit Device(MachineSpec spec, int index = 0, std::size_t workers = 0);

  const MachineSpec& spec() const { return spec_; }
  int index() const { return index_; }
  ThreadPool& pool() { return pool_; }
  KernelLedger& ledger() { return ledger_; }
  const KernelLedger& ledger() const { return ledger_; }

  /// Raw device-memory bookkeeping (used by DeviceBuffer).
  void allocate_bytes(std::size_t bytes);
  void free_bytes(std::size_t bytes);
  std::size_t bytes_in_use() const { return bytes_in_use_.load(); }
  std::size_t peak_bytes() const { return peak_bytes_.load(); }

  /// Attaches (or detaches, with nullptr) a fault injector.  The injector
  /// is not owned and must outlive any work on the device.
  void attach_fault_injector(FaultInjector* injector) {
    fault_injector_.store(injector);
  }
  FaultInjector* fault_injector() const { return fault_injector_.load(); }

  /// Fault hook evaluated when a kernel launch or copy executes.  Throws
  /// TransientFaultError / DeviceFailedError when an attached injector
  /// fires; a no-op without an injector.  `cancel` (optional) lets an
  /// injected hang/slowdown stall unwind early with CancelledError.
  void fault_point(FaultSite site, const std::string& detail,
                   const CancellationToken* cancel = nullptr);

 private:
  MachineSpec spec_;
  int index_;
  ThreadPool pool_;
  KernelLedger ledger_;
  std::atomic<std::size_t> bytes_in_use_{0};
  std::atomic<std::size_t> peak_bytes_{0};
  std::atomic<FaultInjector*> fault_injector_{nullptr};
};

/// RAII device-memory allocation of `count` elements of T.  The storage is
/// host memory (this is a simulator), but the allocation is charged against
/// the device's modelled capacity so out-of-memory behaviour is faithful.
template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;

  DeviceBuffer(Device& device, std::size_t count)
      : device_(&device), data_(count) {
    device_->allocate_bytes(count * sizeof(T));
  }

  ~DeviceBuffer() { release(); }

  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;

  DeviceBuffer(DeviceBuffer&& o) noexcept
      : device_(o.device_), data_(std::move(o.data_)) {
    o.device_ = nullptr;
    o.data_.clear();
  }

  DeviceBuffer& operator=(DeviceBuffer&& o) noexcept {
    if (this != &o) {
      release();
      device_ = o.device_;
      data_ = std::move(o.data_);
      o.device_ = nullptr;
      o.data_.clear();
    }
    return *this;
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

 private:
  void release() {
    if (device_ != nullptr && !data_.empty()) {
      device_->free_bytes(data_.size() * sizeof(T));
    }
    device_ = nullptr;
  }

  Device* device_ = nullptr;
  std::vector<T> data_;
};

/// A multi-GPU node (e.g. the paper's DGX-1 with 8 V100s, or a Raven node
/// with 4 A100s).  Owns the devices; worker threads are divided evenly.
class System {
 public:
  /// `index_base` offsets the devices' global indices: node k of a
  /// multi-node cluster builds its fleet with base k*devices so device
  /// ids (in traces, health reports, checkpoint journals) are globally
  /// unique.  System::device(i) stays positional (0-based) either way.
  System(const MachineSpec& device_spec, int device_count,
         std::size_t total_workers = 0, int index_base = 0);

  int device_count() const { return int(devices_.size()); }
  Device& device(int i) { return *devices_.at(std::size_t(i)); }
  const Device& device(int i) const { return *devices_.at(std::size_t(i)); }

  /// Attaches the injector to every device (nullptr detaches).
  void attach_fault_injector(FaultInjector* injector);

  /// Sum of all devices' modelled kernel seconds.
  double total_modeled_seconds() const;

 private:
  std::vector<std::unique_ptr<Device>> devices_;
};

}  // namespace mpsim::gpusim
