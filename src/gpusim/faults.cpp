#include "gpusim/faults.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "common/metrics.hpp"
#include "gpusim/cancel.hpp"

namespace mpsim::gpusim {

namespace {

constexpr int kSiteClassCount = 4;  // kernel, copy, staging, node

/// Counts every fault that actually fired, by kind, in the global metrics
/// registry (alongside the FaultInjector's own event list, which carries
/// the full detail).
void count_fault(FaultKind kind, std::size_t corrupted_elements) {
  struct FaultMetrics {
    Counter& injected;
    Counter& kernel;
    Counter& copy;
    Counter& offline;
    Counter& corruption;
    Counter& corrupted_elements;
    Counter& hangs;
    Counter& slowdowns;
    Counter& node_crashes;
    Counter& node_stalls;

    static FaultMetrics& get() {
      auto& reg = MetricsRegistry::global();
      static FaultMetrics m{reg.counter("faults.injected"),
                            reg.counter("faults.kernel_launch"),
                            reg.counter("faults.copy"),
                            reg.counter("faults.device_offline"),
                            reg.counter("faults.corruption"),
                            reg.counter("faults.corrupted_elements"),
                            reg.counter("faults.hangs"),
                            reg.counter("faults.slowdowns"),
                            reg.counter("faults.node_crashes"),
                            reg.counter("faults.node_stalls")};
      return m;
    }
  };
  FaultMetrics& m = FaultMetrics::get();
  m.injected.add();
  switch (kind) {
    case FaultKind::kKernelLaunch: m.kernel.add(); break;
    case FaultKind::kCopy: m.copy.add(); break;
    case FaultKind::kDeviceOffline: m.offline.add(); break;
    case FaultKind::kNaNPoison:
    case FaultKind::kBitFlip:
      m.corruption.add();
      m.corrupted_elements.add(corrupted_elements);
      break;
    case FaultKind::kHang: m.hangs.add(); break;
    case FaultKind::kSlowdown: m.slowdowns.add(); break;
    case FaultKind::kNodeCrash: m.node_crashes.add(); break;
    case FaultKind::kNodeStall:
    case FaultKind::kNodeSlow: m.node_stalls.add(); break;
  }
}

FaultKind parse_kind(const std::string& word) {
  if (word == "kernel") return FaultKind::kKernelLaunch;
  if (word == "copy") return FaultKind::kCopy;
  if (word == "offline") return FaultKind::kDeviceOffline;
  if (word == "nan") return FaultKind::kNaNPoison;
  if (word == "bitflip") return FaultKind::kBitFlip;
  if (word == "hang") return FaultKind::kHang;
  if (word == "slow") return FaultKind::kSlowdown;
  if (word == "node_crash") return FaultKind::kNodeCrash;
  if (word == "node_stall") return FaultKind::kNodeStall;
  if (word == "node_slow") return FaultKind::kNodeSlow;
  throw ConfigError("unknown fault kind '" + word +
                    "' (expected kernel|copy|offline|nan|bitflip|hang|slow|"
                    "node_crash|node_stall|node_slow)");
}

/// Stall a matching hang/slowdown rule injects, in milliseconds.  A hang
/// defaults to "forever" on the scale of any test or run (the watchdog or
/// a cancellation is the only way out); a slowdown to a visible stutter.
double rule_delay_ms(const FaultRule& rule) {
  if (rule.delay_ms >= 0.0) return rule.delay_ms;
  if (rule.kind == FaultKind::kHang || rule.kind == FaultKind::kNodeStall) {
    return 3600e3;
  }
  return 100.0;
}

std::uint64_t parse_u64(const std::string& text, const std::string& what) {
  char* end = nullptr;
  const std::uint64_t value = std::strtoull(text.c_str(), &end, 10);
  if (text.empty() || end != text.c_str() + text.size()) {
    throw ConfigError("fault spec: '" + text + "' is not a valid " + what);
  }
  return value;
}

double parse_real(const std::string& text, const std::string& what) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (text.empty() || end != text.c_str() + text.size()) {
    throw ConfigError("fault spec: '" + text + "' is not a valid " + what);
  }
  return value;
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t end = text.find(sep, begin);
    if (end == std::string::npos) {
      parts.push_back(text.substr(begin));
      break;
    }
    parts.push_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
  return parts;
}

}  // namespace

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kKernelLaunch: return "kernel-launch";
    case FaultKind::kCopy: return "copy";
    case FaultKind::kDeviceOffline: return "device-offline";
    case FaultKind::kNaNPoison: return "nan-poison";
    case FaultKind::kBitFlip: return "bit-flip";
    case FaultKind::kHang: return "hang";
    case FaultKind::kSlowdown: return "slowdown";
    case FaultKind::kNodeCrash: return "node-crash";
    case FaultKind::kNodeStall: return "node-stall";
    case FaultKind::kNodeSlow: return "node-slow";
  }
  return "unknown";
}

FaultSpec parse_fault_spec(const std::string& spec) {
  FaultSpec parsed;
  for (const std::string& clause : split(spec, ',')) {
    if (clause.empty()) continue;
    const auto fields = split(clause, ':');
    // Bare `seed=S` clause.
    if (fields.size() == 1 && fields[0].rfind("seed=", 0) == 0) {
      parsed.seed = parse_u64(fields[0].substr(5), "seed");
      continue;
    }
    FaultRule rule;
    std::string head = fields[0];
    const auto amp = head.find('@');
    if (amp != std::string::npos) {
      const std::string dev = head.substr(amp + 1);
      if (dev != "*") rule.device = int(parse_u64(dev, "device index"));
      head = head.substr(0, amp);
    }
    rule.kind = parse_kind(head);
    for (std::size_t f = 1; f < fields.size(); ++f) {
      const auto eq = fields[f].find('=');
      MPSIM_CHECK(eq != std::string::npos,
                  "fault option '" << fields[f] << "' is not key=value");
      const std::string key = fields[f].substr(0, eq);
      const std::string value = fields[f].substr(eq + 1);
      if (key == "at") {
        rule.at = parse_u64(value, "event count");
      } else if (key == "every") {
        rule.every = parse_u64(value, "event count");
      } else if (key == "p") {
        rule.probability = parse_real(value, "probability");
      } else if (key == "frac") {
        rule.fraction = parse_real(value, "fraction");
      } else if (key == "ms") {
        rule.delay_ms = parse_real(value, "delay in milliseconds");
      } else {
        throw ConfigError("unknown fault option '" + key +
                          "' (expected at|every|p|frac|ms)");
      }
    }
    if (rule.at == 0 && rule.every == 0 && rule.probability <= 0.0) {
      throw ConfigError("fault clause '" + clause +
                        "' has no trigger (use at=, every= or p=)");
    }
    if (rule.kind == FaultKind::kDeviceOffline && rule.device < 0) {
      throw ConfigError("offline fault needs a target device (offline@N)");
    }
    parsed.rules.push_back(rule);
  }
  return parsed;
}

FaultInjector::FaultInjector(std::uint64_t seed)
    : rng_(seed), counters_(kSiteClassCount) {}

void FaultInjector::add_rule(const FaultRule& rule) {
  std::lock_guard lock(mutex_);
  rules_.push_back(rule);
}

void FaultInjector::configure(const FaultSpec& spec) {
  std::lock_guard lock(mutex_);
  rng_.reseed(spec.seed);
  rules_.insert(rules_.end(), spec.rules.begin(), spec.rules.end());
}

int FaultInjector::site_class(FaultSite site) {
  switch (site) {
    case FaultSite::kKernelLaunch: return 0;
    case FaultSite::kCopyH2D:
    case FaultSite::kCopyD2H: return 1;
    case FaultSite::kStaging: return 2;
    case FaultSite::kNodeTile: return 3;
  }
  return 0;
}

bool FaultInjector::rule_fires(const FaultRule& rule, std::uint64_t sequence) {
  if (rule.at != 0 && sequence == rule.at) return true;
  if (rule.every != 0 && sequence % rule.every == 0) return true;
  if (rule.probability > 0.0 && rng_.uniform() < rule.probability) return true;
  return false;
}

void FaultInjector::fire(FaultSite site, int device,
                         const std::string& detail,
                         const CancellationToken* cancel) {
  double stall_ms = -1.0;
  {
    std::unique_lock lock(mutex_);
    if (offline_.count(device) != 0) {
      if (site == FaultSite::kNodeTile) {
        throw NodeFailedError("node " + std::to_string(device) +
                              " is down (injected fault)");
      }
      throw DeviceFailedError("device " + std::to_string(device) +
                              " is offline (injected fault)");
    }
    const int cls = site_class(site);
    auto& per_device = counters_[std::size_t(cls)];
    if (per_device.size() <= std::size_t(device)) {
      per_device.resize(std::size_t(device) + 1, 0);
    }
    const std::uint64_t n = ++per_device[std::size_t(device)];

    for (const FaultRule& rule : rules_) {
      if (rule.device >= 0 && rule.device != device) continue;
      const bool kind_matches =
          (cls == 0 && (rule.kind == FaultKind::kKernelLaunch ||
                        rule.kind == FaultKind::kDeviceOffline ||
                        rule.kind == FaultKind::kHang ||
                        rule.kind == FaultKind::kSlowdown)) ||
          (cls == 1 && rule.kind == FaultKind::kCopy) ||
          (cls == 3 && (rule.kind == FaultKind::kNodeCrash ||
                        rule.kind == FaultKind::kNodeStall ||
                        rule.kind == FaultKind::kNodeSlow));
      if (!kind_matches) continue;
      if (!rule_fires(rule, n)) continue;

      events_.push_back(FaultEvent{rule.kind, device, detail, n, 0});
      count_fault(rule.kind, 0);
      if (rule.kind == FaultKind::kDeviceOffline) {
        offline_.insert(device);
        throw DeviceFailedError("device " + std::to_string(device) +
                                " went offline at " + detail + " (event " +
                                std::to_string(n) + ")");
      }
      if (rule.kind == FaultKind::kNodeCrash) {
        // At the kNodeTile site `device` is a node id.  The node stays
        // "offline" so every later fire on it crashes too — a dead node
        // does not come back within a run.
        offline_.insert(device);
        throw NodeFailedError("node " + std::to_string(device) +
                              " crashed at " + detail + " (event " +
                              std::to_string(n) + ")");
      }
      if (rule.kind == FaultKind::kHang ||
          rule.kind == FaultKind::kSlowdown ||
          rule.kind == FaultKind::kNodeStall ||
          rule.kind == FaultKind::kNodeSlow) {
        // Stall outside the lock: a hang must pin only this attempt, not
        // every other device's fault points.
        stall_ms = rule_delay_ms(rule);
        break;
      }
      throw TransientFaultError("injected " + to_string(rule.kind) +
                                " fault on device " + std::to_string(device) +
                                " at " + detail + " (event " +
                                std::to_string(n) + ")");
    }
  }
  if (stall_ms < 0.0) return;

  // Cancellable stall: nothing fails here — the launch just takes `ms`
  // longer, which only a deadline watchdog can notice.  Poll the token so
  // a cancelled attempt unwinds within one poll period.
  using clock = std::chrono::steady_clock;
  const auto until =
      clock::now() + std::chrono::duration_cast<clock::duration>(
                         std::chrono::duration<double, std::milli>(stall_ms));
  constexpr auto kPoll = std::chrono::milliseconds(2);
  for (;;) {
    if (cancel != nullptr && cancel->cancelled()) {
      throw CancelledError("injected stall at " + detail +
                           " on device " + std::to_string(device) +
                           " cancelled");
    }
    const auto now = clock::now();
    if (now >= until) break;
    std::this_thread::sleep_for(std::min<clock::duration>(kPoll, until - now));
  }
}

FaultInjector::CorruptionPlan FaultInjector::plan_corruption(
    int device, std::size_t count) {
  CorruptionPlan plan;
  if (count == 0) return plan;
  std::unique_lock lock(mutex_);
  if (offline_.count(device) != 0) return plan;
  auto& per_device = counters_[std::size_t(site_class(FaultSite::kStaging))];
  if (per_device.size() <= std::size_t(device)) {
    per_device.resize(std::size_t(device) + 1, 0);
  }
  const std::uint64_t n = ++per_device[std::size_t(device)];

  for (const FaultRule& rule : rules_) {
    if (rule.device >= 0 && rule.device != device) continue;
    if (rule.kind != FaultKind::kNaNPoison && rule.kind != FaultKind::kBitFlip)
      continue;
    if (!rule_fires(rule, n)) continue;

    plan.kind = rule.kind;
    const double fraction = rule.fraction > 0.0 ? rule.fraction : 0.0;
    std::size_t hits = fraction > 0.0
                           ? std::size_t(double(count) * fraction)
                           : 1;
    hits = std::max<std::size_t>(1, std::min(hits, count));
    std::set<std::size_t> chosen;
    while (chosen.size() < hits) {
      chosen.insert(std::size_t(rng_.uniform_index(count)));
    }
    plan.indices.assign(chosen.begin(), chosen.end());
    plan.bits.reserve(plan.indices.size());
    for (std::size_t i = 0; i < plan.indices.size(); ++i) {
      plan.bits.push_back(std::size_t(rng_.uniform_index(64)));
    }
    events_.push_back(
        FaultEvent{rule.kind, device, "staging", n, plan.indices.size()});
    count_fault(rule.kind, plan.indices.size());
    return plan;  // first matching rule wins for this event
  }
  return plan;
}

bool FaultInjector::device_offline(int device) const {
  std::lock_guard lock(mutex_);
  return offline_.count(device) != 0;
}

std::vector<FaultEvent> FaultInjector::events() const {
  std::lock_guard lock(mutex_);
  return events_;
}

std::size_t FaultInjector::fault_count() const {
  std::lock_guard lock(mutex_);
  return events_.size();
}

}  // namespace mpsim::gpusim
