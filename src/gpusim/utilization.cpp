#include "gpusim/utilization.hpp"

#include <sstream>

#include "common/table.hpp"

namespace mpsim::gpusim {

std::vector<KernelUtilization> utilization(const KernelLedger& ledger,
                                           const MachineSpec& spec) {
  std::vector<KernelUtilization> out;
  for (const auto& [name, stats] : ledger.all()) {
    if (stats.modeled_seconds <= 0.0) continue;
    KernelUtilization u;
    u.kernel = name;
    u.modeled_seconds = stats.modeled_seconds;
    u.dram_fraction = double(stats.cost.total_bytes()) /
                      (stats.modeled_seconds * spec.mem_bandwidth_gbs * 1e9);
    const double peak =
        spec.peak_tflops(stats.cost.flop_width_bytes) * 1e12;
    u.compute_fraction =
        peak > 0.0 ? double(stats.cost.flops) / (stats.modeled_seconds * peak)
                   : 0.0;
    u.sync_share = double(stats.cost.barrier_rounds) *
                   spec.barrier_round_cost_us * 1e-6 / stats.modeled_seconds;
    out.push_back(u);
  }
  return out;
}

std::string utilization_report(const KernelLedger& ledger,
                               const MachineSpec& spec) {
  Table table({"kernel", "modeled [s]", "DRAM util", "compute util",
               "sync share"});
  for (const auto& u : utilization(ledger, spec)) {
    table.add_row({u.kernel, fmt_sci(u.modeled_seconds),
                   fmt_pct(u.dram_fraction), fmt_pct(u.compute_fraction),
                   fmt_pct(u.sync_share)});
  }
  std::ostringstream os;
  os << "Resource utilization on " << spec.name << " (modelled):\n"
     << table.to_string();
  return os.str();
}

}  // namespace mpsim::gpusim
