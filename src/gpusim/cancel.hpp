// Cooperative cancellation of in-flight simulated-device work.
//
// A CancellationToken is owned by whoever supervises an attempt (the
// resilient scheduler's watchdog) and observed by the work itself: kernel
// launches, copies and the tile engine's row loop poll `cancelled()` at
// natural checkpoints and unwind with CancelledError.  This mirrors how a
// real GPU port cancels a straggler — the host stops feeding the stream
// and the in-flight kernel's result is discarded — and is exactly the
// mechanism speculative re-execution needs: first finisher wins, losers
// observe their token and abandon the tile.
//
// The token is a single relaxed atomic; polling it on a per-row cadence is
// free next to the row's arithmetic, and cancellation latency is bounded
// by one row (or, inside an injected hang, by the injector's poll period).
#pragma once

#include <atomic>
#include <string>

#include "common/error.hpp"

namespace mpsim::gpusim {

class CancellationToken {
 public:
  CancellationToken() = default;

  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Re-arms a token for reuse across attempts of the same slot.
  void reset() { cancelled_.store(false, std::memory_order_relaxed); }

  /// Throws CancelledError when the token has been cancelled; `where`
  /// names the checkpoint for the discard log line.
  void poll(const char* where) const {
    if (cancelled()) {
      throw CancelledError(std::string("attempt cancelled at ") + where);
    }
  }

 private:
  std::atomic<bool> cancelled_{false};
};

}  // namespace mpsim::gpusim
