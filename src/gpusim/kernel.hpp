// Kernel-launch API of the simulated device.
//
// Two launch shapes cover everything the paper's four kernels need:
//
//  * launch_grid_stride — an embarrassingly parallel kernel over an index
//    space [0, n).  On hardware each logical thread strides by
//    grid*block over the space ("grid-stride loop", §III-A); in the
//    simulator the space is split into contiguous chunks across the
//    device's worker pool, which preserves exactly the per-element
//    computation (there are no inter-element dependencies by contract).
//
//  * launch_cooperative — groups of threads that cooperate with barriers
//    (the Bitonic sort + inclusive-scan kernel, §III-A "coarse-grained
//    synchronization" via cooperative groups).  Each group's body receives
//    a GroupContext whose for_each_lane() runs the per-lane work of one
//    stage and whose barrier() separates stages.  Lanes of a stage must
//    write disjoint locations (true for Bitonic compare-exchange networks
//    and fan-in scans), so sequential in-group execution is semantically
//    identical to lockstep execution with barriers.  Barrier rounds are
//    counted and fed to the roofline model's synchronisation term.
//
// Both shapes record their KernelCost and modelled time in the device
// ledger, and optionally run asynchronously on a Stream.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "common/stopwatch.hpp"
#include "gpusim/cancel.hpp"
#include "gpusim/device.hpp"
#include "gpusim/faults.hpp"
#include "gpusim/stream.hpp"

namespace mpsim::gpusim {

/// CUDA-style launch configuration.  The simulator honours it for the
/// modelled occupancy record; functional execution uses the host pool.
struct LaunchConfig {
  std::int64_t grid_size = 64;
  std::int64_t block_size = 1024;

  std::int64_t total_threads() const { return grid_size * block_size; }

  /// The tuned configuration the paper uses on a given machine (§IV:
  /// grid 64 x block 2560 on V100, 64 x 3456 on A100).
  static LaunchConfig tuned_for(const MachineSpec& spec) {
    return LaunchConfig{64, spec.default_thread_count() / 64};
  }

  /// Fraction of the device's resident-thread capacity this configuration
  /// keeps busy.  Under-sized launches starve SMs and sustain a
  /// correspondingly smaller share of the bandwidth/compute roofs —
  /// which is why the paper tunes grid and block sizes to the hardware
  /// (§IV: "these configurations provide the best performance").
  double occupancy(const MachineSpec& spec) const {
    const double capacity = double(spec.resident_thread_capacity());
    if (capacity <= 0.0) return 1.0;
    return std::min(1.0, double(total_threads()) / capacity);
  }
};

/// Context handed to each cooperative group's body.
class GroupContext {
 public:
  GroupContext(std::int64_t group_index, std::int64_t lane_count)
      : group_index_(group_index), lane_count_(lane_count) {}

  std::int64_t group_index() const { return group_index_; }
  std::int64_t lane_count() const { return lane_count_; }

  /// Runs fn(lane) for every lane of the group (one parallel stage).
  template <typename Fn>
  void for_each_lane(Fn&& fn) {
    for (std::int64_t lane = 0; lane < lane_count_; ++lane) fn(lane);
  }

  /// Group-wide synchronisation point between stages.
  void barrier() { ++barriers_; }

  std::int64_t barrier_count() const { return barriers_; }

 private:
  std::int64_t group_index_;
  std::int64_t lane_count_;
  std::int64_t barriers_ = 0;
};

namespace detail {

inline void record_launch(Device& device, const std::string& name,
                          const KernelCost& cost, KernelLedger* extra,
                          double measured_seconds) {
  const double seconds = modeled_seconds(device.spec(), cost);
  device.ledger().record(name, cost, seconds, measured_seconds);
  if (extra != nullptr) {
    extra->record(name, cost, seconds, measured_seconds);
  }
}

}  // namespace detail

/// Validates that a cooperative launch's per-group scratchpad fits the
/// device's shared memory: groups resident per SM = resident threads /
/// lanes, all holding their buffers simultaneously.  Throws like a failed
/// CUDA launch otherwise.  Shared by launch_cooperative and the engine's
/// fused row pipeline, which replaces the launch but models (and must
/// reject) the same kernel.
inline void validate_group_shared_mem(const Device& device,
                                      const std::string& name,
                                      std::int64_t lane_count,
                                      std::size_t shared_bytes_per_group) {
  if (shared_bytes_per_group == 0) return;
  const auto& spec = device.spec();
  const std::size_t groups_per_sm = std::max<std::size_t>(
      1, std::size_t(spec.max_threads_per_sm) /
             std::size_t(std::max<std::int64_t>(1, lane_count)));
  const std::size_t needed = groups_per_sm * shared_bytes_per_group;
  MPSIM_CHECK(needed <= spec.shared_mem_per_sm_bytes,
              "cooperative kernel '"
                  << name << "' needs " << needed
                  << " bytes of shared memory per SM but " << spec.name
                  << " provides " << spec.shared_mem_per_sm_bytes
                  << "; reduce the group size or dimensionality");
}

/// Records a logical kernel launch that was executed as part of a fused
/// host pass rather than through launch_grid_stride/launch_cooperative:
/// the ledger entry (modeled seconds from `cost`, measured share of the
/// fused pass's wall clock) is indistinguishable from an unfused launch,
/// which keeps perf-model figures and metrics/trace span shapes stable
/// across execution paths.  `cost.barrier_rounds` must be pre-filled by
/// the caller for cooperative kernels (the fused pass runs no simulated
/// barriers to measure).
inline void record_fused_launch(Device& device, const std::string& name,
                                const LaunchConfig& config, KernelCost cost,
                                KernelLedger* extra_ledger,
                                double measured_seconds) {
  cost.occupancy = config.occupancy(device.spec());
  detail::record_launch(device, name, cost, extra_ledger, measured_seconds);
}

/// Launches an embarrassingly parallel kernel over [0, n).
/// `body(begin, end)` processes a contiguous chunk; it is invoked
/// concurrently from the device pool.  If `stream` is non-null, the launch
/// is enqueued asynchronously; otherwise it runs synchronously.
/// `extra_ledger` (optional) additionally receives the launch record —
/// the multi-tile scheduler uses it for per-tile makespan accounting.
/// `cancel` (optional) is polled when the launch's work starts: a
/// cancelled attempt unwinds with CancelledError instead of executing.
inline void launch_grid_stride(
    Device& device, Stream* stream, const std::string& name,
    LaunchConfig config, std::int64_t n, KernelCost cost,
    std::function<void(std::int64_t, std::int64_t)> body,
    KernelLedger* extra_ledger = nullptr,
    const CancellationToken* cancel = nullptr) {
  cost.occupancy = config.occupancy(device.spec());
  auto run = [&device, name, cost, n, body = std::move(body), extra_ledger,
              cancel] {
    if (cancel != nullptr) cancel->poll(name.c_str());
    device.fault_point(FaultSite::kKernelLaunch, name, cancel);
    Stopwatch watch;
    device.pool().parallel_for(
        std::size_t(n), [&body](std::size_t begin, std::size_t end) {
          body(std::int64_t(begin), std::int64_t(end));
        });
    detail::record_launch(device, name, cost, extra_ledger, watch.seconds());
  };
  if (stream != nullptr) {
    stream->enqueue(std::move(run));
  } else {
    run();
  }
}

/// Launches a cooperative kernel with `group_count` groups of `lane_count`
/// lanes.  `cost.barrier_rounds` should be left zero: the actual number of
/// device-wide barrier rounds is measured from the groups' barrier() calls
/// (max across groups, as groups of one round synchronise concurrently).
/// `shared_bytes_per_group` models the scratchpad the group's sort/scan
/// buffers occupy (§IV "exploit shared memory in thread block"); a launch
/// whose resident groups cannot fit in an SM's shared memory is rejected,
/// exactly as a CUDA launch would fail.
inline void launch_cooperative(
    Device& device, Stream* stream, const std::string& name,
    LaunchConfig config, std::int64_t group_count, std::int64_t lane_count,
    KernelCost cost, std::function<void(GroupContext&)> body,
    KernelLedger* extra_ledger = nullptr,
    std::size_t shared_bytes_per_group = 0,
    const CancellationToken* cancel = nullptr) {
  validate_group_shared_mem(device, name, lane_count, shared_bytes_per_group);
  cost.occupancy = config.occupancy(device.spec());
  auto run = [&device, name, cost, group_count, lane_count,
              body = std::move(body), extra_ledger, cancel]() mutable {
    if (cancel != nullptr) cancel->poll(name.c_str());
    device.fault_point(FaultSite::kKernelLaunch, name, cancel);
    Stopwatch watch;
    std::atomic<std::int64_t> max_barriers{0};
    device.pool().parallel_for(
        std::size_t(group_count),
        [&](std::size_t begin, std::size_t end) {
          std::int64_t local_max = 0;
          for (std::size_t g = begin; g < end; ++g) {
            GroupContext ctx(std::int64_t(g), lane_count);
            body(ctx);
            local_max = std::max(local_max, ctx.barrier_count());
          }
          std::int64_t seen = max_barriers.load();
          while (local_max > seen &&
                 !max_barriers.compare_exchange_weak(seen, local_max)) {
          }
        });
    // Device-wide synchronisation repeats once per occupancy wave: a
    // launch with more logical threads than the device holds resident
    // pays its barrier rounds once per wave (mirrored in mp/model.cpp).
    cost.barrier_rounds =
        max_barriers.load() *
        device.spec().wave_count(group_count * lane_count);
    detail::record_launch(device, name, cost, extra_ledger, watch.seconds());
  };
  if (stream != nullptr) {
    stream->enqueue(std::move(run));
  } else {
    run();
  }
}

/// Models (and performs) a host->device copy of `count` elements.
template <typename T>
void async_copy_h2d(Device& device, Stream* stream, const T* host,
                    DeviceBuffer<T>& dst, std::size_t count,
                    KernelLedger* extra_ledger = nullptr,
                    const CancellationToken* cancel = nullptr) {
  auto run = [&device, host, &dst, count, extra_ledger, cancel] {
    if (cancel != nullptr) cancel->poll("memcpy_h2d");
    device.fault_point(FaultSite::kCopyH2D, "memcpy_h2d", cancel);
    MPSIM_CHECK(count <= dst.size(), "h2d copy overruns device buffer");
    std::copy(host, host + count, dst.data());
    const auto bytes = std::int64_t(count * sizeof(T));
    KernelCost cost;
    cost.bytes_written = bytes;
    const double seconds = modeled_copy_seconds(device.spec(), bytes);
    device.ledger().record("memcpy_h2d", cost, seconds);
    if (extra_ledger != nullptr) {
      extra_ledger->record("memcpy_h2d", cost, seconds);
    }
  };
  if (stream != nullptr) {
    stream->enqueue(std::move(run));
  } else {
    run();
  }
}

/// Models (and performs) a device->host copy of `count` elements.
template <typename T>
void async_copy_d2h(Device& device, Stream* stream, const DeviceBuffer<T>& src,
                    T* host, std::size_t count,
                    KernelLedger* extra_ledger = nullptr,
                    const CancellationToken* cancel = nullptr) {
  auto run = [&device, &src, host, count, extra_ledger, cancel] {
    if (cancel != nullptr) cancel->poll("memcpy_d2h");
    device.fault_point(FaultSite::kCopyD2H, "memcpy_d2h", cancel);
    MPSIM_CHECK(count <= src.size(), "d2h copy overruns device buffer");
    std::copy(src.data(), src.data() + count, host);
    const auto bytes = std::int64_t(count * sizeof(T));
    KernelCost cost;
    cost.bytes_read = bytes;
    const double seconds = modeled_copy_seconds(device.spec(), bytes);
    device.ledger().record("memcpy_d2h", cost, seconds);
    if (extra_ledger != nullptr) {
      extra_ledger->record("memcpy_d2h", cost, seconds);
    }
  };
  if (stream != nullptr) {
    stream->enqueue(std::move(run));
  } else {
    run();
  }
}

}  // namespace mpsim::gpusim
