// CUDA-stream analogue: a FIFO work queue bound to a device.
//
// Tasks enqueued on one stream execute strictly in order on a dedicated
// drainer thread; tasks on different streams run concurrently (bounded by
// the device's worker pool, which kernel bodies use via parallel_for).
// This mirrors the paper's use of up to 16 non-blocking CUDA streams per
// GPU for implicit synchronisation between tile transfers and kernels.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>

#include "gpusim/device.hpp"

namespace mpsim::gpusim {

class Stream {
 public:
  explicit Stream(Device& device);
  ~Stream();

  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  Device& device() { return device_; }

  /// Enqueue a task; returns immediately.  Tasks run FIFO on this stream.
  /// An exception thrown by a task is stored and rethrown by the next
  /// synchronize() call; subsequent tasks still run (as CUDA streams keep
  /// accepting work after an async error is recorded).
  void enqueue(std::function<void()> task);

  /// Blocks until all previously enqueued tasks have finished; rethrows the
  /// first stored task exception, if any.
  void synchronize();

 private:
  void drain_loop();

  Device& device_;
  std::thread drainer_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool busy_ = false;
  std::exception_ptr pending_error_;
};

/// Pool of streams on one device, handed out round-robin — the paper caps
/// concurrency at 16 non-blocking streams per GPU (§IV).
class StreamPool {
 public:
  StreamPool(Device& device, int stream_count);

  Stream& next();
  int size() const { return int(streams_.size()); }
  Stream& stream(int i) { return *streams_.at(std::size_t(i)); }

  /// Synchronizes every stream in the pool.
  void synchronize_all();

 private:
  std::vector<std::unique_ptr<Stream>> streams_;
  std::atomic<std::size_t> cursor_{0};
};

}  // namespace mpsim::gpusim
