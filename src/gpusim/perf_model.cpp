#include "gpusim/perf_model.hpp"

#include <algorithm>

namespace mpsim::gpusim {

KernelCost& KernelCost::operator+=(const KernelCost& o) {
  bytes_read += o.bytes_read;
  bytes_written += o.bytes_written;
  flops += o.flops;
  barrier_rounds += o.barrier_rounds;
  flop_width_bytes = o.flop_width_bytes;  // launches of one kernel share it
  occupancy = o.occupancy;                // ... and its launch configuration
  tensor_format = o.tensor_format;
  return *this;
}

double modeled_seconds(const MachineSpec& spec, const KernelCost& cost) {
  // DRAM bandwidth saturates near half occupancy; compute scales with
  // occupancy until full.
  const double occ = std::clamp(cost.occupancy, 1e-6, 1.0);
  const double bw_scale = std::min(1.0, occ / 0.5);
  const double compute_scale = occ;

  const double bw =
      spec.mem_bandwidth_gbs * 1e9 * spec.bw_efficiency * bw_scale;
  const double mem_time = bw > 0 ? double(cost.total_bytes()) / bw : 0.0;

  // Tensor-eligible launches (matmul-structured inner loops) ride the
  // tensor-core roof when the machine has one for the input format;
  // everything else — including tensor-shaped work on machines without
  // that format's tensor path — uses the regular flop-width peak.
  double peak_tf = spec.peak_tflops(cost.flop_width_bytes);
  if (cost.tensor_format != TensorFormat::kNone) {
    const double tensor = spec.tensor_peak_tflops(cost.tensor_format);
    if (tensor > 0.0) peak_tf = tensor;
  }
  const double peak = peak_tf * 1e12 * spec.compute_efficiency * compute_scale;
  const double compute_time = peak > 0 ? double(cost.flops) / peak : 0.0;

  return spec.kernel_launch_overhead_us * 1e-6 +
         std::max(mem_time, compute_time) +
         double(cost.barrier_rounds) * spec.barrier_round_cost_us * 1e-6;
}

double modeled_copy_seconds(const MachineSpec& spec, std::int64_t bytes) {
  if (spec.copy_bandwidth_gbs <= 0.0) return 0.0;
  return spec.copy_latency_us * 1e-6 +
         double(bytes) / (spec.copy_bandwidth_gbs * 1e9);
}

double modeled_dram_utilization(const MachineSpec& spec,
                                const KernelCost& cost) {
  const double t = modeled_seconds(spec, cost);
  if (t <= 0.0) return 0.0;
  const double achieved = double(cost.total_bytes()) / t;
  return achieved / (spec.mem_bandwidth_gbs * 1e9);
}

void KernelLedger::record(const std::string& kernel, const KernelCost& cost,
                          double seconds, double measured_seconds) {
  std::lock_guard lock(mutex_);
  auto& s = stats_[kernel];
  s.launches += 1;
  s.cost += cost;
  s.modeled_seconds += seconds;
  s.measured_seconds += measured_seconds;
}

KernelStats KernelLedger::stats(const std::string& kernel) const {
  std::lock_guard lock(mutex_);
  const auto it = stats_.find(kernel);
  return it == stats_.end() ? KernelStats{} : it->second;
}

std::vector<std::pair<std::string, KernelStats>> KernelLedger::all() const {
  std::lock_guard lock(mutex_);
  return {stats_.begin(), stats_.end()};
}

double KernelLedger::total_modeled_seconds() const {
  std::lock_guard lock(mutex_);
  double total = 0.0;
  for (const auto& [name, s] : stats_) {
    (void)name;
    total += s.modeled_seconds;
  }
  return total;
}

void KernelLedger::reset() {
  std::lock_guard lock(mutex_);
  stats_.clear();
}

void KernelLedger::merge_from(const KernelLedger& other) {
  const auto snapshot = other.all();
  std::lock_guard lock(mutex_);
  for (const auto& [name, s] : snapshot) {
    auto& mine = stats_[name];
    mine.launches += s.launches;
    mine.cost += s.cost;
    mine.modeled_seconds += s.modeled_seconds;
    mine.measured_seconds += s.measured_seconds;
  }
}

}  // namespace mpsim::gpusim
