#include "tsdata/synthetic.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "tsdata/placement.hpp"

namespace mpsim {

SyntheticDataset make_synthetic_dataset(const SyntheticSpec& spec) {
  MPSIM_CHECK(spec.window >= 4, "window must be at least 4 samples");
  MPSIM_CHECK(spec.segments >= 4 * spec.window,
              "need segments >= 4*window for meaningful injections");

  const std::size_t len = spec.series_length();
  SyntheticDataset out;
  out.reference = TimeSeries(len, spec.dims);
  out.query = TimeSeries(len, spec.dims);

  Rng rng(spec.seed);
  for (std::size_t k = 0; k < spec.dims; ++k) {
    for (std::size_t t = 0; t < len; ++t) {
      out.reference.at(t, k) = rng.normal(0.0, spec.noise_sigma);
      out.query.at(t, k) = rng.normal(0.0, spec.noise_sigma);
    }
  }

  // Injection sites must leave room for a whole window.
  const std::size_t limit = spec.segments;  // valid segment starts
  const auto pattern = sample_pattern(spec.shape, spec.window);
  for (std::size_t k = 0; k < spec.dims; ++k) {
    const auto q_pos = place_non_overlapping(rng, spec.injections_per_dim,
                                             limit, spec.window);
    const auto r_pos = place_non_overlapping(rng, spec.injections_per_dim,
                                             limit, spec.window);
    for (std::size_t i = 0; i < spec.injections_per_dim; ++i) {
      for (std::size_t t = 0; t < spec.window; ++t) {
        // The pattern dominates the noise; residual noise keeps the two
        // copies similar-but-not-identical, as in real data.
        out.query.at(q_pos[i] + t, k) =
            spec.pattern_amplitude * pattern[t] +
            rng.normal(0.0, spec.noise_sigma * 0.1);
        out.reference.at(r_pos[i] + t, k) =
            spec.pattern_amplitude * pattern[t] +
            rng.normal(0.0, spec.noise_sigma * 0.1);
      }
      out.injections.push_back({k, q_pos[i], r_pos[i]});
    }
  }
  return out;
}

TimeSeries make_noise_series(std::size_t length, std::size_t dims,
                             double sigma, std::uint64_t seed) {
  TimeSeries series(length, dims);
  Rng rng(seed);
  for (std::size_t k = 0; k < dims; ++k) {
    for (std::size_t t = 0; t < length; ++t) {
      series.at(t, k) = rng.normal(0.0, sigma);
    }
  }
  return series;
}

TimeSeries make_random_walk_series(std::size_t length, std::size_t dims,
                                   double step_sigma, std::uint64_t seed) {
  TimeSeries series(length, dims);
  Rng rng(seed);
  for (std::size_t k = 0; k < dims; ++k) {
    double level = 0.0;
    for (std::size_t t = 0; t < length; ++t) {
      level += rng.normal(0.0, step_sigma);
      series.at(t, k) = level;
    }
  }
  return series;
}

}  // namespace mpsim
