// Input repair for real-world data: sensors drop out and logs contain
// NaN/inf samples, which would otherwise poison every segment that
// overlaps them (a non-finite sample makes its segments' statistics
// non-finite).  repair_non_finite() linearly interpolates over non-finite
// runs per dimension, the standard pragmatic preprocessing for
// matrix-profile pipelines; used by mpsim_cli's --repair flag.
#pragma once

#include <cmath>
#include <cstddef>

#include "tsdata/time_series.hpp"

namespace mpsim {

/// Replaces non-finite samples by linear interpolation between the
/// nearest finite neighbours (constant extrapolation at the edges).
/// Returns the number of repaired samples.  A dimension with no finite
/// samples at all is zero-filled.
inline std::size_t repair_non_finite(TimeSeries& series) {
  std::size_t repaired = 0;
  for (std::size_t k = 0; k < series.dims(); ++k) {
    auto d = series.dim(k);
    const std::size_t n = d.size();
    std::size_t t = 0;
    while (t < n) {
      if (std::isfinite(d[t])) {
        ++t;
        continue;
      }
      // Non-finite run [t, end).
      std::size_t end = t;
      while (end < n && !std::isfinite(d[end])) ++end;
      const bool has_left = t > 0;
      const bool has_right = end < n;
      for (std::size_t u = t; u < end; ++u) {
        if (has_left && has_right) {
          const double left = d[t - 1];
          const double right = d[end];
          const double frac = double(u - t + 1) / double(end - t + 1);
          d[u] = left + (right - left) * frac;
        } else if (has_left) {
          d[u] = d[t - 1];
        } else if (has_right) {
          d[u] = d[end];
        } else {
          d[u] = 0.0;  // entire dimension was non-finite
        }
        ++repaired;
      }
      t = end;
    }
  }
  return repaired;
}

}  // namespace mpsim
