#include "tsdata/patterns.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace mpsim {
namespace {
constexpr double kTwoPi = 6.283185307179586476925286766559;
}

const char* pattern_name(PatternShape shape) {
  switch (shape) {
    case PatternShape::kSine:
      return "P0-sine";
    case PatternShape::kSquare:
      return "P1-square";
    case PatternShape::kTriangle:
      return "P2-triangle";
    case PatternShape::kSawtooth:
      return "P3-sawtooth";
    case PatternShape::kGaussianBump:
      return "P4-gauss";
    case PatternShape::kStep:
      return "P5-step";
    case PatternShape::kChirp:
      return "P6-chirp";
    case PatternShape::kDoubleBump:
      return "P7-double-bump";
    case PatternShape::kCount:
      break;
  }
  return "invalid";
}

double pattern_value(PatternShape shape, double x01) {
  const double x = x01 - std::floor(x01);  // wrap into [0, 1)
  switch (shape) {
    case PatternShape::kSine:
      return std::sin(kTwoPi * x);
    case PatternShape::kSquare:
      return x < 0.5 ? 1.0 : -1.0;
    case PatternShape::kTriangle:
      return x < 0.5 ? 4.0 * x - 1.0 : 3.0 - 4.0 * x;
    case PatternShape::kSawtooth:
      return 2.0 * x - 1.0;
    case PatternShape::kGaussianBump: {
      const double t = (x - 0.5) / 0.15;
      return 2.0 * std::exp(-0.5 * t * t) - 1.0;
    }
    case PatternShape::kStep:
      return x < 0.5 ? -1.0 : 1.0;
    case PatternShape::kChirp:
      // Instantaneous frequency rises from 1 to 4 cycles over the window.
      return std::sin(kTwoPi * (x + 1.5 * x * x));
    case PatternShape::kDoubleBump: {
      const double t1 = (x - 0.3) / 0.08;
      const double t2 = (x - 0.7) / 0.12;
      const double v = 2.0 * (std::exp(-0.5 * t1 * t1) +
                              0.6 * std::exp(-0.5 * t2 * t2)) -
                       1.0;
      return std::clamp(v, -1.0, 1.0);  // bump tails overlap slightly
    }
    case PatternShape::kCount:
      break;
  }
  throw ConfigError("invalid pattern shape");
}

std::vector<double> sample_pattern(PatternShape shape, std::size_t m) {
  std::vector<double> out(m);
  for (std::size_t t = 0; t < m; ++t) {
    out[t] = pattern_value(shape, double(t) / double(m));
  }
  return out;
}

}  // namespace mpsim
