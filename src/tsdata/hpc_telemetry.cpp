#include "tsdata/hpc_telemetry.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace mpsim {
namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

/// Per-class, per-sensor signature.  Matrix-profile matching works on
/// z-normalised segments, so mean levels are invisible — classes are
/// separated by waveform *shape*: iteration period, harmonic content and
/// wave family (smooth vs switching), mimicking how solver iterations of
/// HPL / AMG / LAMMPS etc. leave different periodic footprints in
/// hardware counters.  Deterministic per (class, sensor) so reference and
/// query timelines from different seeds share signatures.
struct Signature {
  double level;
  double amplitude;
  double period;
  double harmonic;  ///< weight of the 2nd harmonic
  bool square;      ///< switching (square-ish) counter vs smooth
  double phase;
};

Signature signature_for(HpcAppClass cls, std::size_t sensor) {
  const auto s = double(sensor);
  if (cls == HpcAppClass::kNone) {
    // Idle: almost flat; z-normalised segments are noise-dominated.
    return {0.05 + 0.01 * s, 0.02, 40.0 + 3.0 * s, 0.0, false, 0.0};
  }
  static constexpr double kPeriod[6] = {16.0, 24.0, 36.0, 52.0, 74.0, 100.0};
  static constexpr double kHarmonic[6] = {0.0, 0.6, 0.0, 0.5, 0.25, 0.8};
  static constexpr bool kSquare[6] = {false, false, true, false, true, false};
  const int c = int(cls) - 1;
  const double level = 0.3 + 0.1 * double(c) + 0.02 * s;
  const double amplitude = 0.35 + 0.03 * std::fmod(s * 1.7, 3.0);
  const double period = kPeriod[c] + 0.3 * s;
  const double phase = 0.5 * double(c) + 0.2 * s;
  return {level, amplitude, period, kHarmonic[c], kSquare[c], phase};
}

double signature_value(const Signature& sig, std::size_t t) {
  const double w = kTwoPi * double(t) / sig.period;
  double base = std::sin(w + sig.phase);
  if (sig.square) base = base >= 0.0 ? 1.0 : -1.0;
  const double osc =
      base + sig.harmonic * std::sin(2.0 * w + 1.3 * sig.phase);
  return sig.level + sig.amplitude * osc;
}

}  // namespace

const char* hpc_app_class_name(HpcAppClass cls) {
  switch (cls) {
    case HpcAppClass::kNone:
      return "None";
    case HpcAppClass::kKripke:
      return "Kripke";
    case HpcAppClass::kLammps:
      return "LAMMPS";
    case HpcAppClass::kLinpack:
      return "linpack";
    case HpcAppClass::kAmg:
      return "AMG";
    case HpcAppClass::kPennant:
      return "PENNANT";
    case HpcAppClass::kQuicksilver:
      return "Quicksilver";
    case HpcAppClass::kCount:
      break;
  }
  return "invalid";
}

HpcTelemetry make_hpc_telemetry(const HpcTelemetrySpec& spec) {
  MPSIM_CHECK(spec.min_phase >= 8 && spec.max_phase >= spec.min_phase,
              "invalid phase length range");
  HpcTelemetry out;
  out.series = TimeSeries(spec.length, spec.sensors);
  out.labels.assign(spec.length, int(HpcAppClass::kNone));

  Rng rng(spec.seed);
  std::size_t t = 0;
  bool idle = true;  // alternate idle gaps and application runs
  // Application classes are drawn by cycling through shuffled
  // permutations of all six benchmarks, so any reasonably long timeline
  // (and both halves of a reference/query split) covers every class —
  // the property the nearest-neighbour classifier of §VI-A needs.
  std::vector<int> class_cycle;
  std::size_t cycle_pos = 0;
  auto next_class = [&] {
    if (cycle_pos == class_cycle.size()) {
      class_cycle.resize(kHpcAppClassCount - 1);
      for (std::size_t c = 0; c < class_cycle.size(); ++c) {
        class_cycle[c] = int(c) + 1;
      }
      for (std::size_t c = class_cycle.size(); c > 1; --c) {
        std::swap(class_cycle[c - 1], class_cycle[rng.uniform_index(c)]);
      }
      cycle_pos = 0;
    }
    return HpcAppClass(class_cycle[cycle_pos++]);
  };
  while (t < spec.length) {
    const std::size_t span =
        spec.min_phase +
        rng.uniform_index(spec.max_phase - spec.min_phase + 1);
    const std::size_t end = std::min(spec.length, t + (idle ? span / 4 : span));
    const HpcAppClass cls = idle ? HpcAppClass::kNone : next_class();
    for (std::size_t k = 0; k < spec.sensors; ++k) {
      const Signature sig = signature_for(cls, k);
      for (std::size_t u = t; u < end; ++u) {
        out.series.at(u, k) =
            signature_value(sig, u) + rng.normal(0.0, spec.noise_sigma);
      }
    }
    for (std::size_t u = t; u < end; ++u) out.labels[u] = int(cls);
    t = end;
    idle = !idle;
  }
  return out;
}

}  // namespace mpsim
