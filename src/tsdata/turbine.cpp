#include "tsdata/turbine.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "tsdata/placement.hpp"

namespace mpsim {

const char* startup_shape_name(StartupShape shape) {
  return shape == StartupShape::kP1 ? "P1" : "P2";
}

double startup_value(StartupShape shape, double x01) {
  const double x = std::clamp(x01, 0.0, 1.0);
  if (shape == StartupShape::kP1) {
    // Staged startup: crank to 20%, hold for ignition, then steep ramp.
    if (x < 0.25) return 0.8 * x;                    // purge crank to 20%
    if (x < 0.55) return 0.20 + 0.05 * (x - 0.25);   // ignition plateau
    const double r = (x - 0.55) / 0.35;
    return std::min(1.0, 0.215 + 0.785 * r);         // main ramp to nominal
  }
  // P2: smooth s-curve (logistic) from idle to nominal speed.
  const double t = (x - 0.45) / 0.12;
  return 1.0 / (1.0 + std::exp(-t));
}

TurbineSeries make_turbine_series(const TurbineSpec& spec, int turbine_id,
                                  std::size_t p1_events,
                                  std::size_t p2_events) {
  const std::size_t length = spec.segments + spec.window - 1;
  TurbineSeries out;
  out.series = TimeSeries(length, 1);

  Rng rng(spec.seed + std::uint64_t(turbine_id) * 0x9e3779b9ULL);

  // Idle operation background.
  for (std::size_t t = 0; t < length; ++t) {
    out.series.at(t, 0) = spec.idle_level + rng.normal(0.0, spec.noise_sigma);
  }

  const auto positions = place_non_overlapping(
      rng, p1_events + p2_events, spec.segments, spec.window);
  // Interleave shapes over the drawn positions deterministically.
  // Machine-specific character: each turbine ramps marginally differently.
  const double machine_skew = 1.0 + 0.02 * double(turbine_id);
  std::size_t p1_left = p1_events;
  for (std::size_t idx = 0; idx < positions.size(); ++idx) {
    const bool use_p1 = p1_left > 0 && (idx % 2 == 0 || idx >= 2 * p2_events);
    const StartupShape shape = use_p1 ? StartupShape::kP1 : StartupShape::kP2;
    if (use_p1) --p1_left;
    const std::size_t pos = positions[idx];
    for (std::size_t t = 0; t < spec.window; ++t) {
      const double x = double(t) / double(spec.window - 1) * machine_skew;
      out.series.at(pos + t, 0) =
          startup_value(shape, x) + rng.normal(0.0, spec.noise_sigma);
    }
    (shape == StartupShape::kP1 ? out.p1_starts : out.p2_starts).push_back(pos);
  }

  // The paper min-max normalises turbine speed to avoid overflow in
  // reduced-precision computation (Fig. 11).  [0, 1] keeps the streaming
  // dot products (~ m * variance) comfortably inside the FP16 range even
  // for long windows; a [0, 100] scale would overflow them (m * 50^2 >>
  // 65504).  Fig. 11's percent axis is presentation only.
  out.series.min_max_normalize(0.0, 1.0);
  return out;
}

}  // namespace mpsim
