// Synthetic HPC monitoring telemetry standing in for the HPC-ODA dataset
// (paper §VI-A).  HPC-ODA is public but not available offline here, so we
// generate labelled multi-sensor telemetry with the same structure: 16
// performance sensors sampled at 1 Hz while a sequence of benchmark
// applications (Kripke, LAMMPS, linpack, AMG, PENNANT, Quicksilver, plus
// idle "None" gaps) runs on the machine.  Each application class has a
// distinctive per-sensor signature (level + periodicity), so segments of
// the same class are mutual nearest neighbours — which is exactly the
// property the paper's nearest-neighbour classifier exploits.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tsdata/time_series.hpp"

namespace mpsim {

enum class HpcAppClass {
  kNone = 0,
  kKripke,
  kLammps,
  kLinpack,
  kAmg,
  kPennant,
  kQuicksilver,
  kCount
};

inline constexpr std::size_t kHpcAppClassCount =
    std::size_t(HpcAppClass::kCount);

const char* hpc_app_class_name(HpcAppClass cls);

struct HpcTelemetrySpec {
  std::size_t length = 1 << 13;  ///< total samples (paper: one day at 1 Hz)
  std::size_t sensors = 16;      ///< paper selects 16 distinct sensors
  std::size_t min_phase = 120;   ///< shortest application run, samples
  std::size_t max_phase = 320;   ///< longest application run, samples
  double noise_sigma = 0.08;
  std::uint64_t seed = 7;
};

struct HpcTelemetry {
  TimeSeries series;           ///< sensors-by-time telemetry
  std::vector<int> labels;     ///< per-sample ground-truth class id
};

/// Generates one labelled telemetry timeline.
HpcTelemetry make_hpc_telemetry(const HpcTelemetrySpec& spec);

}  // namespace mpsim
