// The eight primitive pattern shapes P0..P7 of the paper's stress tests
// (Fig. 3): patterns of varying complexity plotted over x in [0, m) with
// normalised values y in [-1, 1].  The exact shapes are not specified in
// the text, so we use eight standard primitives of increasing complexity.
#pragma once

#include <cstddef>
#include <vector>

namespace mpsim {

enum class PatternShape {
  kSine = 0,        // P0: one sine period
  kSquare,          // P1: square wave
  kTriangle,        // P2: triangle wave
  kSawtooth,        // P3: rising sawtooth
  kGaussianBump,    // P4: centred Gaussian bump
  kStep,            // P5: single step edge
  kChirp,           // P6: linearly increasing frequency
  kDoubleBump,      // P7: two unequal Gaussian bumps
  kCount
};

inline constexpr std::size_t kPatternCount =
    std::size_t(PatternShape::kCount);

const char* pattern_name(PatternShape shape);

/// Value of a pattern at normalised position x01 in [0, 1); range [-1, 1].
double pattern_value(PatternShape shape, double x01);

/// Samples a pattern into `m` points.
std::vector<double> sample_pattern(PatternShape shape, std::size_t m);

}  // namespace mpsim
