// Multi-dimensional time series with the dimension-wise data layout the
// paper uses on the GPU (§III-A "Data Layout"): consecutive samples of one
// dimension are contiguous in memory, i.e. the buffer is dimension-major.
// Host data is kept in binary64; reduced-precision storage happens when a
// series is copied to a simulated device.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace mpsim {

class TimeSeries {
 public:
  TimeSeries() = default;

  /// Zero-filled series of `length` samples in `dims` dimensions.
  TimeSeries(std::size_t length, std::size_t dims)
      : length_(length), dims_(dims), data_(length * dims, 0.0) {
    MPSIM_CHECK(dims >= 1, "time series needs at least one dimension");
  }

  /// Wraps existing dimension-major data (size must be length*dims).
  TimeSeries(std::size_t length, std::size_t dims, std::vector<double> data)
      : length_(length), dims_(dims), data_(std::move(data)) {
    MPSIM_CHECK(data_.size() == length_ * dims_,
                "data size " << data_.size() << " != length*dims "
                             << length_ * dims_);
  }

  std::size_t length() const { return length_; }
  std::size_t dims() const { return dims_; }
  bool empty() const { return data_.empty(); }

  double& at(std::size_t t, std::size_t k) { return data_[k * length_ + t]; }
  double at(std::size_t t, std::size_t k) const {
    return data_[k * length_ + t];
  }

  /// Contiguous samples of one dimension.
  std::span<double> dim(std::size_t k) {
    return {data_.data() + k * length_, length_};
  }
  std::span<const double> dim(std::size_t k) const {
    return {data_.data() + k * length_, length_};
  }

  const std::vector<double>& raw() const { return data_; }
  std::vector<double>& raw() { return data_; }

  /// Number of length-m segments: length - m + 1 (0 if m > length).
  std::size_t segment_count(std::size_t m) const {
    return m > length_ ? 0 : length_ - m + 1;
  }

  /// Copies samples [t0, t0+count) of every dimension into a new series.
  TimeSeries slice(std::size_t t0, std::size_t count) const;

  /// Per-dimension min-max normalisation into [lo, hi] (used by the turbine
  /// case study to avoid FP16 overflow, §VI-C Fig. 11).
  void min_max_normalize(double lo = 0.0, double hi = 1.0);

 private:
  std::size_t length_ = 0;
  std::size_t dims_ = 0;
  std::vector<double> data_;  // dimension-major: data_[k * length_ + t]
};

}  // namespace mpsim
