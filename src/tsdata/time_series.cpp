#include "tsdata/time_series.hpp"

#include <algorithm>

namespace mpsim {

TimeSeries TimeSeries::slice(std::size_t t0, std::size_t count) const {
  MPSIM_CHECK(t0 + count <= length_,
              "slice [" << t0 << ", " << t0 + count << ") exceeds length "
                        << length_);
  TimeSeries out(count, dims_);
  for (std::size_t k = 0; k < dims_; ++k) {
    const auto src = dim(k);
    std::copy(src.begin() + std::ptrdiff_t(t0),
              src.begin() + std::ptrdiff_t(t0 + count), out.dim(k).begin());
  }
  return out;
}

void TimeSeries::min_max_normalize(double lo, double hi) {
  for (std::size_t k = 0; k < dims_; ++k) {
    auto d = dim(k);
    const auto [mn_it, mx_it] = std::minmax_element(d.begin(), d.end());
    // Copy the extremes before mutating: the iterators alias the data.
    const double mn = *mn_it;
    const double range = *mx_it - mn;
    if (range == 0.0) {
      std::fill(d.begin(), d.end(), lo);
      continue;
    }
    // Normalise the fraction first so the extremes map to lo and hi
    // exactly (range/range == 1.0).
    for (auto& v : d) v = lo + (hi - lo) * ((v - mn) / range);
  }
}

}  // namespace mpsim
