// Synthetic genome sequences standing in for the Genome-in-a-Bottle (GIAB)
// case study (paper §VI-B).  GIAB's Chinese-trio data is not available
// offline, so we synthesise base sequences over {A, C, G, T} in which the
// query shares long (mutated) substrings with the reference — the structure
// that makes matrix-profile-based similarity search on genomes meaningful.
// Encoding follows the paper exactly: A→1, C→2, T→3, G→4, one
// "chromosome" per dimension, interpreted as a time series by index.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tsdata/time_series.hpp"

namespace mpsim {

/// Encodes one base character; throws ConfigError for non-ACGT input.
double encode_base(char base);

/// Encodes a base string into the paper's 1/2/3/4 series representation.
std::vector<double> encode_genome(const std::string& bases);

struct GenomeSpec {
  std::size_t length = 1 << 13;      ///< bases per chromosome
  std::size_t chromosomes = 1 << 4;  ///< d = 16 in the paper's experiments
  /// Fraction of the query produced by copying reference substrings
  /// (with point mutations) rather than drawing random bases.
  double shared_fraction = 0.5;
  double mutation_rate = 0.02;       ///< per-base flip probability in copies
  std::size_t copy_block = 512;      ///< length of each copied substring
  std::uint64_t seed = 1234;
};

struct GenomeDataset {
  TimeSeries reference;          ///< encoded reference chromosomes
  TimeSeries query;              ///< encoded query chromosomes
  std::vector<std::string> reference_bases;  ///< raw sequences, per dim
  std::vector<std::string> query_bases;
};

/// Generates a reference/query chromosome set with shared substructure.
GenomeDataset make_genome_dataset(const GenomeSpec& spec);

}  // namespace mpsim
