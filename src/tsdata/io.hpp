// CSV import/export for time series: one column per dimension, one row per
// sample, optional header.  Used by the example applications so users can
// run the library on their own data.
#pragma once

#include <string>

#include "tsdata/time_series.hpp"

namespace mpsim {

/// Writes `series` as CSV.  With `header`, the first row is dim0,dim1,...
void write_csv(const std::string& path, const TimeSeries& series,
               bool header = true);

/// Reads a CSV written by write_csv (or any numeric CSV with consistent
/// column counts).  A non-numeric first row is treated as a header.
TimeSeries read_csv(const std::string& path);

}  // namespace mpsim
