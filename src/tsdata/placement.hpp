// Non-overlapping random placement of embedded events.
//
// Divides the valid position range into equal slots, one per event, and
// jitters the event inside its slot so that any two placements stay at
// least two windows apart.  Unlike rejection sampling this cannot fail
// spuriously: it either succeeds or proves the series too short.
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace mpsim {

/// Returns `count` window-start positions in [0, limit), pairwise at least
/// 2*window apart, in increasing order.
inline std::vector<std::size_t> place_non_overlapping(Rng& rng,
                                                      std::size_t count,
                                                      std::size_t limit,
                                                      std::size_t window) {
  MPSIM_CHECK(count >= 1, "need at least one placement");
  const std::size_t slot = limit / count;
  MPSIM_CHECK(slot >= 2 * window + 1,
              "cannot place " << count << " events of window " << window
                              << " in " << limit
                              << " positions; use a longer series");
  std::vector<std::size_t> positions;
  positions.reserve(count);
  const std::size_t jitter_range = slot - 2 * window;
  for (std::size_t i = 0; i < count; ++i) {
    positions.push_back(i * slot + rng.uniform_index(jitter_range));
  }
  return positions;
}

}  // namespace mpsim
