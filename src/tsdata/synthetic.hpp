// Synthetic stress-test dataset generator (paper §V-A): random noise with
// repeating patterns injected at randomly chosen locations.  The same
// pattern instance is embedded once in the reference and once in the query
// series (per injection), so the ground-truth nearest neighbour of each
// injected query segment is known and the embedded-motif recall metrics
// (R_embedded, relaxed R^r_embedded) can be evaluated.
#pragma once

#include <cstdint>
#include <vector>

#include "tsdata/patterns.hpp"
#include "tsdata/time_series.hpp"

namespace mpsim {

struct SyntheticSpec {
  std::size_t segments = 1 << 12;  ///< n = number of segments per series
  std::size_t dims = 1 << 4;       ///< d
  std::size_t window = 1 << 6;     ///< m (segment/subsequence length)
  PatternShape shape = PatternShape::kSine;
  std::size_t injections_per_dim = 8;  ///< pattern pairs per dimension
  double pattern_amplitude = 1.0;
  double noise_sigma = 0.25;
  std::uint64_t seed = 42;

  std::size_t series_length() const { return segments + window - 1; }
};

/// One injected pattern pair: the query segment starting at
/// `query_position` (dimension `dim`) matches the reference segment at
/// `reference_position`.
struct Injection {
  std::size_t dim = 0;
  std::size_t query_position = 0;
  std::size_t reference_position = 0;
};

struct SyntheticDataset {
  TimeSeries reference;
  TimeSeries query;
  std::vector<Injection> injections;
};

/// Generates a reference/query pair with matching embedded patterns.
/// Injection sites are non-overlapping (separated by at least one window)
/// so ground-truth matches are unambiguous.
SyntheticDataset make_synthetic_dataset(const SyntheticSpec& spec);

/// Pure noise series (no injections) for numerical-accuracy stress tests.
TimeSeries make_noise_series(std::size_t length, std::size_t dims,
                             double sigma, std::uint64_t seed);

/// Random-walk series (cumulative Gaussian steps) — the matrix profile
/// literature's standard hard case: walks drift, so segment means vary
/// wildly and the precalculation's cancellation-prone statistics get a
/// genuine workout (unlike white noise, whose means hover near zero).
TimeSeries make_random_walk_series(std::size_t length, std::size_t dims,
                                   double step_sigma, std::uint64_t seed);

}  // namespace mpsim
