#include "tsdata/io.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>

#include "common/error.hpp"

namespace mpsim {
namespace {

// Splits on ',' keeping empty cells — including a trailing one, which
// istringstream+getline silently drops ("1,2," must be three cells so the
// width check can reject it instead of mis-parsing the row).
std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::size_t begin = 0;
  while (true) {
    const std::size_t end = line.find(',', begin);
    if (end == std::string::npos) {
      cells.push_back(line.substr(begin));
      break;
    }
    cells.push_back(line.substr(begin, end - begin));
    begin = end + 1;
  }
  return cells;
}

bool looks_numeric(const std::string& cell) {
  char* end = nullptr;
  std::strtod(cell.c_str(), &end);
  return end != cell.c_str();
}

}  // namespace

void write_csv(const std::string& path, const TimeSeries& series,
               bool header) {
  std::ofstream out(path);
  MPSIM_CHECK(out.good(), "cannot open '" << path << "' for writing");
  out.precision(17);
  if (header) {
    for (std::size_t k = 0; k < series.dims(); ++k) {
      out << (k == 0 ? "" : ",") << "dim" << k;
    }
    out << '\n';
  }
  for (std::size_t t = 0; t < series.length(); ++t) {
    for (std::size_t k = 0; k < series.dims(); ++k) {
      out << (k == 0 ? "" : ",") << series.at(t, k);
    }
    out << '\n';
  }
  MPSIM_CHECK(out.good(), "write to '" << path << "' failed");
}

TimeSeries read_csv(const std::string& path) {
  std::ifstream in(path);
  MPSIM_CHECK(in.good(), "cannot open '" << path << "' for reading");

  std::vector<std::vector<double>> rows;
  std::string line;
  bool first = true;
  std::size_t dims = 0;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // getline splits on '\n' only; strip the '\r' of CRLF files so blank
    // lines are recognised and the last cell does not carry a stray '\r'.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const auto cells = split_csv_line(line);
    if (first) {
      first = false;
      dims = cells.size();
      if (!looks_numeric(cells[0])) continue;  // header
    }
    MPSIM_CHECK(cells.size() == dims,
                path << ":" << line_no << ": row with " << cells.size()
                     << " cells in a " << dims << "-column file: '" << line
                     << "'");
    std::vector<double> row;
    row.reserve(dims);
    for (const auto& cell : cells) {
      char* end = nullptr;
      const double v = std::strtod(cell.c_str(), &end);
      MPSIM_CHECK(end != cell.c_str(),
                  path << ":" << line_no << ": non-numeric cell '" << cell
                       << "'");
      row.push_back(v);
    }
    rows.push_back(std::move(row));
  }
  MPSIM_CHECK(!rows.empty(), "'" << path << "' contains no data rows");

  TimeSeries series(rows.size(), dims);
  for (std::size_t t = 0; t < rows.size(); ++t) {
    for (std::size_t k = 0; k < dims; ++k) series.at(t, k) = rows[t][k];
  }
  return series;
}

}  // namespace mpsim
