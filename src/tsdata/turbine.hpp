// Synthetic heavy-duty gas-turbine speed telemetry (paper §VI-C).  The
// original data comes from two turbines operated by a municipal power
// provider and is proprietary; we generate the same structure: long
// single-dimensional speed series containing startup events of two shapes
// (Fig. 11) embedded in low-level operational noise, min-max normalised to
// avoid FP16 overflow.
//
//   P1 — staged startup: purge crank, ignition plateau, steep ramp to
//        full speed (the "more complex" blue pattern).
//   P2 — smooth s-curve startup (single ramp mode).
//
// Series pairs are combined into the four categories of Table I
// (P1-P1, P2-P2, both-P1, both-P2) per turbine and across turbines.
#pragma once

#include <cstdint>
#include <vector>

#include "tsdata/time_series.hpp"

namespace mpsim {

enum class StartupShape { kP1 = 0, kP2 = 1 };

const char* startup_shape_name(StartupShape shape);

/// Value of a startup pattern at normalised position x01 in [0, 1];
/// range [0, 1] (fraction of nominal speed).
double startup_value(StartupShape shape, double x01);

struct TurbineSpec {
  std::size_t segments = 1 << 12;  ///< n (paper: 2^16)
  std::size_t window = 1 << 8;     ///< m = startup duration (paper: 2^11)
  double idle_level = 0.02;        ///< normalised idle speed
  double noise_sigma = 0.01;
  std::uint64_t seed = 99;
};

struct TurbineSeries {
  TimeSeries series;                    ///< d = 1
  std::vector<std::size_t> p1_starts;   ///< embedded P1 event positions
  std::vector<std::size_t> p2_starts;   ///< embedded P2 event positions
};

/// Generates one turbine speed series containing `p1_events` P1 startups
/// and `p2_events` P2 startups at non-overlapping random positions.
/// `turbine_id` perturbs the machine-specific shape details slightly, as
/// two physical turbines never behave identically.
TurbineSeries make_turbine_series(const TurbineSpec& spec, int turbine_id,
                                  std::size_t p1_events,
                                  std::size_t p2_events);

}  // namespace mpsim
