#include "tsdata/genome.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace mpsim {
namespace {

constexpr char kBases[4] = {'A', 'C', 'T', 'G'};  // encoded 1, 2, 3, 4

char random_base(Rng& rng) { return kBases[rng.uniform_index(4)]; }

}  // namespace

double encode_base(char base) {
  switch (base) {
    case 'A':
    case 'a':
      return 1.0;
    case 'C':
    case 'c':
      return 2.0;
    case 'T':
    case 't':
      return 3.0;
    case 'G':
    case 'g':
      return 4.0;
    default:
      throw ConfigError(std::string("cannot encode base '") + base +
                        "' (expected A, C, G or T)");
  }
}

std::vector<double> encode_genome(const std::string& bases) {
  std::vector<double> out;
  out.reserve(bases.size());
  for (char b : bases) out.push_back(encode_base(b));
  return out;
}

GenomeDataset make_genome_dataset(const GenomeSpec& spec) {
  MPSIM_CHECK(spec.length >= spec.copy_block,
              "chromosome length must be >= copy_block");
  GenomeDataset out;
  out.reference = TimeSeries(spec.length, spec.chromosomes);
  out.query = TimeSeries(spec.length, spec.chromosomes);
  out.reference_bases.resize(spec.chromosomes);
  out.query_bases.resize(spec.chromosomes);

  Rng rng(spec.seed);
  for (std::size_t k = 0; k < spec.chromosomes; ++k) {
    auto& ref = out.reference_bases[k];
    ref.resize(spec.length);
    for (auto& b : ref) b = random_base(rng);

    auto& qry = out.query_bases[k];
    qry.resize(spec.length);
    std::size_t t = 0;
    while (t < spec.length) {
      const bool copy = rng.uniform() < spec.shared_fraction;
      const std::size_t block =
          std::min(spec.copy_block, spec.length - t);
      if (copy) {
        // Copy a reference substring with point mutations.
        const std::size_t src =
            rng.uniform_index(spec.length - block + 1);
        for (std::size_t u = 0; u < block; ++u) {
          qry[t + u] = rng.uniform() < spec.mutation_rate ? random_base(rng)
                                                          : ref[src + u];
        }
      } else {
        for (std::size_t u = 0; u < block; ++u) qry[t + u] = random_base(rng);
      }
      t += block;
    }

    const auto ref_encoded = encode_genome(ref);
    const auto qry_encoded = encode_genome(qry);
    std::copy(ref_encoded.begin(), ref_encoded.end(),
              out.reference.dim(k).begin());
    std::copy(qry_encoded.begin(), qry_encoded.end(),
              out.query.dim(k).begin());
  }
  return out;
}

}  // namespace mpsim
