// Z-normalisation utilities: sliding segment statistics and explicit
// z-normalised segments.  The optimised engines never materialise these
// (they use the streaming formulation), but downstream users inspecting
// matched motifs — and the brute-force oracle — need them.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace mpsim {

struct SlidingStats {
  std::vector<double> mean;  ///< per segment
  std::vector<double> norm;  ///< || segment - mean || per segment
};

/// Two-pass (numerically robust) mean and centred norm of every length-m
/// segment of x.
inline SlidingStats sliding_stats(std::span<const double> x, std::size_t m) {
  MPSIM_CHECK(m >= 1 && m <= x.size(), "invalid window for sliding stats");
  const std::size_t nseg = x.size() - m + 1;
  SlidingStats s;
  s.mean.resize(nseg);
  s.norm.resize(nseg);
  for (std::size_t i = 0; i < nseg; ++i) {
    double sum = 0.0;
    for (std::size_t t = 0; t < m; ++t) sum += x[i + t];
    s.mean[i] = sum / double(m);
    double ssq = 0.0;
    for (std::size_t t = 0; t < m; ++t) {
      const double c = x[i + t] - s.mean[i];
      ssq += c * c;
    }
    s.norm[i] = std::sqrt(ssq);
  }
  return s;
}

/// The z-normalised copy of segment [start, start+m): zero mean, unit
/// centred norm.  Flat segments return all zeros (SCAMP convention).
inline std::vector<double> znormalize_segment(std::span<const double> x,
                                              std::size_t start,
                                              std::size_t m) {
  MPSIM_CHECK(start + m <= x.size(), "segment out of range");
  double sum = 0.0;
  for (std::size_t t = 0; t < m; ++t) sum += x[start + t];
  const double mean = sum / double(m);
  double ssq = 0.0;
  for (std::size_t t = 0; t < m; ++t) {
    const double c = x[start + t] - mean;
    ssq += c * c;
  }
  std::vector<double> out(m, 0.0);
  if (ssq == 0.0) return out;
  const double inv = 1.0 / std::sqrt(ssq);
  for (std::size_t t = 0; t < m; ++t) out[t] = (x[start + t] - mean) * inv;
  return out;
}

}  // namespace mpsim
