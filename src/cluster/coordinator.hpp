// Elastic multi-node coordinator: shards the tile grid across N simulated
// nodes and survives nodes joining, leaving, crashing and straggling —
// with byte-identical output to the single-node run.
//
// Each node (cluster/node.hpp) is a full gpusim::System fleet running the
// resilient scheduler as one *shard* (mp::run_resilient_shard): retries,
// per-device blacklisting, the hang watchdog, in-node speculation and
// row-slice journalling all work unchanged one level down.  The
// coordinator owns the global tile grid and arbitrates through the
// ShardHooks:
//
//  * shard ownership — tiles are statically assigned to nodes up front
//    (round-robin or LPT over nodes, then the shard assigns to devices);
//    a node's claim on an *unstarted* tile can be revoked at any time;
//  * cross-node work stealing — an idle node takes an unstarted tile
//    from the most-loaded live peer (--steal=off disables this, but not
//    the recovery pool below);
//  * node crash recovery — a node lost to an injected node_crash (or one
//    that exits early with uncommitted work) has its tiles released into
//    a recovery pool that every live node drains; if every node dies the
//    coordinator finishes the remainder on the CPU reference path;
//  * straggler re-execution — a coordinator monitor (gated on
//    resilience.watchdog, like the in-node watchdog) tracks an EWMA of
//    per-tile commit wall time and re-dispatches overdue started tiles to
//    a second node; first commit wins, the loser is cancelled;
//  * commit ordering — on_commit is the single serialization point: the
//    first node to commit a tile copies its result into the coordinator's
//    global arrays under the coordinator lock, every later finisher of
//    the same tile is dropped (node.commit_conflicts).
//
// Durability: every node journals its own commits and row-slice
// snapshots to `<write_path>.node<k>`; the coordinator writes the merged
// *base* journal (complete tiles + the merged event history) at
// interruption and completion.  Resume reads the base journal plus every
// readable side journal and re-keys the slices onto the current grid
// (mp::restore_from_journals), so a run killed at any point resumes onto
// a different node count — or a different tile grid — bit-identically.
//
// Bit-identity argument: a tile's output bits depend only on its seed
// origin and column range, never on which node/device computed it, how
// often it was retried or duplicated, or how its rows were sliced for
// journalling.  on_commit's first-wins arbitration keeps exactly one
// result per tile, and the final column merge (assemble_tile_results)
// consumes the tiles in grid order — so N nodes, M≠N-node resumes and
// regridded resumes all reproduce the single-node bytes.
#pragma once

#include <string>

#include "mp/matrix_profile.hpp"

namespace mpsim::cluster {

/// Knobs of the elastic multi-node run (the mpsim_cli --nodes /
/// --node-faults / --steal surface).
struct ElasticClusterConfig {
  /// Simulated nodes.  1 (with no node faults) routes straight to the
  /// single-node mp::compute_matrix_profile.  Capped at 64 — resume
  /// probes that many per-node side journals.
  int nodes = 1;

  /// Cross-node stealing of unstarted tiles.  Off still leaves the
  /// recovery pool active (crashed nodes' tiles are always re-dispatched).
  bool steal = true;

  /// Fault spec for the coordinator-owned node-level injector
  /// (gpusim::parse_fault_spec; node_crash / node_stall / node_slow fire
  /// at the per-node kNodeTile site, "@device" selects the *node*).
  /// Separate from config.fault_injector, which keeps addressing the
  /// devices (by global index) across every node's fleet.
  std::string node_faults;
};

/// Computes the matrix profile across `cluster.nodes` simulated nodes.
/// Output (profile/index bytes) is identical to the single-node run for
/// every precision mode and row path.  Throws InterruptedError after
/// flushing the merged journal when a shutdown request (or a
/// kill_after_tiles / kill_after_slices chaos kill) stops the run early.
mp::MatrixProfileResult compute_matrix_profile_elastic(
    const TimeSeries& reference, const TimeSeries& query,
    const mp::MatrixProfileConfig& config,
    const ElasticClusterConfig& cluster);

}  // namespace mpsim::cluster
