#include "cluster/coordinator.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cluster/node.hpp"
#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/shutdown.hpp"
#include "common/stopwatch.hpp"
#include "gpusim/faults.hpp"
#include "mp/checkpoint.hpp"
#include "mp/resilient.hpp"
#include "mp/tile_plan.hpp"

namespace mpsim::cluster {

namespace {

using mp::CheckpointSlice;
using mp::RunEvent;
using mp::Tile;
using mp::TileResult;

/// Coordinator instruments, registered once (additive on the v2 metrics
/// schema; all zero in single-node runs, which never construct this).
struct CoordinatorMetrics {
  Counter& tiles_dispatched;  ///< tiles a node actually started
  Counter& steals;            ///< cross-node steals of unstarted tiles
  Counter& duplicates;        ///< straggler tiles re-dispatched
  Counter& node_crashes;      ///< shards lost to NodeFailedError
  Counter& cpu_fallback_tiles;///< tiles the coordinator finished on CPU
  Counter& node_commits;      ///< winning shard commits
  Counter& node_commit_conflicts;  ///< commits that lost the global race
  Gauge& nodes;               ///< node count of the current run

  static CoordinatorMetrics& get() {
    static auto& reg = MetricsRegistry::global();
    static CoordinatorMetrics metrics{
        reg.counter("coordinator.tiles_dispatched"),
        reg.counter("coordinator.steals"),
        reg.counter("coordinator.duplicates"),
        reg.counter("coordinator.node_crashes"),
        reg.counter("coordinator.cpu_fallback_tiles"),
        reg.counter("node.commits"),
        reg.counter("node.commit_conflicts"),
        reg.gauge("coordinator.nodes")};
    return metrics;
  }
};

/// Per-tile dispatch state, all guarded by Coord::mutex.
struct TileState {
  int owner = -1;        ///< node currently responsible (-1 = pooled)
  int dup_runner = -1;   ///< second node racing a straggler (-1 = none)
  bool started = false;  ///< some node began executing it
  bool dup_issued = false;   ///< straggler duplicate already issued
  bool pooled = false;       ///< an unclaimed recovery-pool entry exists
  double start_seconds = 0.0;
};

/// Global coordinator state shared by every node's hooks, the straggler
/// monitor and the driver.  One mutex; the lock order is always
/// shard mutex → Coord::mutex (hooks run under the shard's lock).
struct Coord {
  std::mutex mutex;
  const mp::MatrixProfileConfig* config = nullptr;
  const std::vector<Tile>* tiles = nullptr;
  Stopwatch* clock = nullptr;
  bool steal = true;

  std::vector<char> committed;       ///< global commit bit per tile
  std::vector<TileState> state;
  std::vector<std::set<std::size_t>> unstarted;  ///< per node: owned, queued
  std::deque<std::size_t> pool;      ///< released / duplicated tiles
  std::vector<char> node_alive;
  std::size_t outstanding = 0;
  std::uint64_t total_commits = 0;

  // Global result arrays (what assemble_tile_results consumes).
  std::vector<TileResult> results;
  std::vector<int> executed_device;
  std::vector<PrecisionMode> final_mode;
  std::vector<char> result_valid;

  std::vector<RunEvent> events;  ///< coordinator-level lifecycle events
  int steals = 0;
  int duplicates = 0;
  int crashes = 0;
  int commit_conflicts = 0;

  /// EWMA of started→committed wall seconds, the straggler baseline.
  double wall_ewma = 0.0;
};

/// Builds the ShardHooks of node `k` — the entire cross-node protocol.
mp::ShardHooks make_hooks(Coord& coord, int k,
                          gpusim::FaultInjector* node_injector) {
  mp::ShardHooks hooks;

  hooks.should_run = [&coord, k](std::size_t t) {
    std::lock_guard lock(coord.mutex);
    if (coord.committed[t]) return false;
    TileState& ts = coord.state[t];
    if (ts.owner != k && ts.dup_runner != k) return false;  // claim revoked
    if (!ts.started) {
      ts.started = true;
      ts.start_seconds = coord.clock->seconds();
      coord.unstarted[std::size_t(k)].erase(t);
      CoordinatorMetrics::get().tiles_dispatched.add();
    }
    return true;
  };

  hooks.on_commit = [&coord, k](std::size_t t, TileResult& result, int device,
                                PrecisionMode mode) {
    (void)k;
    bool kill_due = false;
    {
      std::lock_guard lock(coord.mutex);
      if (coord.committed[t]) {
        coord.commit_conflicts += 1;
        CoordinatorMetrics::get().node_commit_conflicts.add();
        return false;
      }
      coord.committed[t] = 1;
      coord.outstanding -= 1;
      coord.total_commits += 1;
      TileResult& slot = coord.results[t];
      slot.profile = result.profile;  // copy: the shard keeps its own for
      slot.index = result.index;      // its side journal
      slot.ledger.reset();
      slot.ledger.merge_from(result.ledger);
      slot.prefilter = result.prefilter;
      coord.executed_device[t] = device;
      coord.final_mode[t] = mode;
      coord.result_valid[t] = 1;
      TileState& ts = coord.state[t];
      if (ts.started) {
        const double elapsed = coord.clock->seconds() - ts.start_seconds;
        coord.wall_ewma = coord.wall_ewma <= 0.0
                              ? elapsed
                              : 0.7 * coord.wall_ewma + 0.3 * elapsed;
      }
      CoordinatorMetrics::get().node_commits.add();
      kill_due = coord.config->checkpoint.kill_after_tiles > 0 &&
                 coord.total_commits ==
                     std::uint64_t(coord.config->checkpoint.kill_after_tiles);
    }
    if (kill_due) request_shutdown();
    return true;
  };

  hooks.committed_elsewhere = [&coord](std::size_t t) {
    std::lock_guard lock(coord.mutex);
    return coord.committed[t] != 0;
  };

  hooks.all_done = [&coord] {
    std::lock_guard lock(coord.mutex);
    return coord.outstanding == 0;
  };

  hooks.acquire_more = [&coord, k]() -> std::optional<std::size_t> {
    std::lock_guard lock(coord.mutex);
    // Recovery pool first — released tiles of crashed nodes and straggler
    // duplicates.  Always active, --steal=off only disables peer stealing.
    const std::size_t scan = coord.pool.size();
    for (std::size_t i = 0; i < scan; ++i) {
      const std::size_t t = coord.pool.front();
      coord.pool.pop_front();
      TileState& ts = coord.state[t];
      ts.pooled = false;
      if (coord.committed[t]) continue;  // stale entry, drop
      if (ts.started) {
        // Straggler duplicate: must land on a node other than the one
        // already running it.
        if (ts.dup_runner != -1) continue;  // already claimed, drop
        if (ts.owner == k) {
          coord.pool.push_back(t);  // leave it for another node
          ts.pooled = true;
          continue;
        }
        ts.dup_runner = k;
        coord.duplicates += 1;
        CoordinatorMetrics::get().duplicates.add();
        coord.events.push_back(
            {RunEvent::Kind::kNodeDuplicated, (*coord.tiles)[t].id, k,
             "owner node " + std::to_string(ts.owner) + " overdue"});
        return t;
      }
      // Unstarted release (crashed or early-exited owner): plain reclaim.
      ts.owner = k;
      coord.unstarted[std::size_t(k)].insert(t);
      return t;
    }
    if (!coord.steal) return std::nullopt;
    // Steal one unstarted tile from the most-loaded live peer.
    int victim = -1;
    std::size_t best = 0;
    for (int j = 0; j < int(coord.unstarted.size()); ++j) {
      if (j == k || coord.node_alive[std::size_t(j)] == 0) continue;
      if (coord.unstarted[std::size_t(j)].size() > best) {
        best = coord.unstarted[std::size_t(j)].size();
        victim = j;
      }
    }
    if (victim < 0) return std::nullopt;
    auto& set = coord.unstarted[std::size_t(victim)];
    auto it = std::prev(set.end());
    const std::size_t t = *it;
    set.erase(it);
    coord.state[t].owner = k;
    coord.unstarted[std::size_t(k)].insert(t);
    coord.steals += 1;
    CoordinatorMetrics::get().steals.add();
    coord.events.push_back({RunEvent::Kind::kNodeStolen,
                            (*coord.tiles)[t].id, k,
                            "from node " + std::to_string(victim)});
    return t;
  };

  hooks.on_tile_start = [&coord, k, node_injector](
                            std::size_t t,
                            const gpusim::CancellationToken* token) {
    if (node_injector == nullptr) return;
    node_injector->fire(gpusim::FaultSite::kNodeTile, k,
                        "tile " + std::to_string((*coord.tiles)[t].id),
                        token);
  };

  return hooks;
}

/// Marks node `k` dead and releases its uncommitted claims into the
/// recovery pool (promoting a live duplicate runner to owner when one
/// exists).  Called by the node-runner thread the moment its shard
/// returns, so recovery overlaps the surviving nodes' execution.
void release_node(Coord& coord, int k) {
  std::lock_guard lock(coord.mutex);
  coord.node_alive[std::size_t(k)] = 0;
  for (std::size_t t = 0; t < coord.state.size(); ++t) {
    if (coord.committed[t]) continue;
    TileState& ts = coord.state[t];
    if (ts.dup_runner == k) {
      ts.dup_runner = -1;
      ts.dup_issued = false;  // the monitor may re-duplicate
    }
    if (ts.owner != k) continue;
    if (ts.dup_runner != -1 &&
        coord.node_alive[std::size_t(ts.dup_runner)] != 0) {
      ts.owner = ts.dup_runner;  // promote the backup runner
      ts.dup_runner = -1;
      continue;
    }
    ts.owner = -1;
    ts.started = false;
    ts.dup_issued = false;
    if (!ts.pooled) {
      ts.pooled = true;
      coord.pool.push_back(t);
    }
  }
  coord.unstarted[std::size_t(k)].clear();
}

/// Writes the merged base journal: every globally committed tile as a
/// complete slice, plus the merged event history.  The per-node side
/// journals supply mid-run durability; this is the authoritative record
/// a later --resume starts from.
void write_base_journal(const Coord& coord,
                        const mp::MatrixProfileConfig& config,
                        std::uint64_t fingerprint, std::size_t dims,
                        const std::vector<RunEvent>& events) {
  mp::CheckpointData data;
  data.fingerprint = fingerprint;
  data.tile_count = coord.tiles->size();
  for (std::size_t t = 0; t < coord.tiles->size(); ++t) {
    if (coord.committed[t] == 0 || coord.result_valid[t] == 0) continue;
    const Tile& tile = (*coord.tiles)[t];
    CheckpointSlice slice;
    slice.tile_index = t;
    slice.tile_id = tile.id;
    slice.device = coord.executed_device[t];
    slice.node = coord.executed_device[t] >= 0
                     ? coord.executed_device[t] / config.devices
                     : -1;
    slice.complete = 1;
    slice.mode = coord.final_mode[t];
    slice.r_begin = tile.r_begin;
    slice.r_count = tile.r_count;
    slice.q_begin = tile.q_begin;
    slice.q_count = tile.q_count;
    slice.dims = dims;
    slice.profile = coord.results[t].profile;
    slice.index = coord.results[t].index;
    slice.prefilter = coord.results[t].prefilter;
    data.slices.push_back(std::move(slice));
  }
  data.events = events;
  mp::write_checkpoint(config.checkpoint.write_path, data);
}

}  // namespace

mp::MatrixProfileResult compute_matrix_profile_elastic(
    const TimeSeries& reference, const TimeSeries& query,
    const mp::MatrixProfileConfig& config,
    const ElasticClusterConfig& cluster) {
  if (cluster.nodes < 1) {
    throw ConfigError("nodes must be >= 1");
  }
  if (cluster.nodes > 64) {
    throw ConfigError(
        "nodes must be <= 64 (resume probes that many side journals)");
  }
  if (cluster.nodes == 1 && cluster.node_faults.empty()) {
    return mp::compute_matrix_profile(reference, query, config);
  }
  mp::validate_config(reference, query, config);

  // The node-level injector is coordinator-owned and separate from the
  // per-device config.fault_injector (which keeps addressing devices by
  // their global indices across every node's fleet).
  gpusim::FaultInjector node_injector;
  gpusim::FaultInjector* node_faults = nullptr;
  if (!cluster.node_faults.empty()) {
    node_injector.configure(cluster.node_faults);
    node_faults = &node_injector;
  }

  const std::size_t m = config.window;
  const std::size_t d = reference.dims();
  const std::size_t n_q = query.segment_count(m);

  Stopwatch wall;
  auto& registry = MetricsRegistry::global();
  ScopedEvent run_span(registry, "coordinator", -1, "cpu");
  CoordinatorMetrics::get().nodes.set(double(cluster.nodes));

  // Two-level assignment: tiles → nodes here (the Tile::device field
  // holds the owning *node*); the shard scheduler spreads a node's tiles
  // over its devices.  Assignment never affects output bits.
  auto tiles = mp::compute_tile_list(reference.segment_count(m), n_q,
                                     config.tiles);
  if (config.assignment == mp::TileAssignment::kLpt) {
    mp::assign_tiles_lpt(tiles, cluster.nodes);
  } else {
    mp::assign_tiles_round_robin(tiles, cluster.nodes);
  }

  const std::uint64_t fingerprint =
      mp::checkpoint_fingerprint(reference, query, config);

  Coord coord;
  coord.config = &config;
  coord.tiles = &tiles;
  coord.clock = &wall;
  coord.steal = cluster.steal;
  coord.committed.assign(tiles.size(), 0);
  coord.state.assign(tiles.size(), TileState{});
  coord.unstarted.assign(std::size_t(cluster.nodes), {});
  coord.node_alive.assign(std::size_t(cluster.nodes), 1);
  coord.results = std::vector<TileResult>(tiles.size());
  coord.executed_device.assign(tiles.size(), -1);
  coord.final_mode.assign(tiles.size(), config.mode);
  coord.result_valid.assign(tiles.size(), 0);

  mp::RunHealth health;

  // ---- Elastic resume: re-key journalled slices onto this grid. ----
  std::vector<CheckpointSlice> prefixes(tiles.size());
  if (!config.checkpoint.resume_path.empty()) {
    mp::RestoredState restored = mp::restore_from_journals(
        config.checkpoint.resume_path, fingerprint, tiles, d, config);
    health.events = std::move(restored.events);
    for (std::size_t t = 0; t < tiles.size(); ++t) {
      if (!restored.committed[t]) continue;
      coord.committed[t] = 1;
      coord.result_valid[t] = 1;
      coord.results[t].profile = std::move(restored.results[t].profile);
      coord.results[t].index = std::move(restored.results[t].index);
      coord.results[t].prefilter = restored.results[t].prefilter;
      coord.executed_device[t] = restored.executed_device[t];
      coord.final_mode[t] = restored.final_mode[t];
    }
    prefixes = std::move(restored.prefixes);
    coord.total_commits = restored.resumed;
    health.resumed_tiles = int(restored.resumed);
    health.partial_slices = int(restored.partial);
    health.resume_fallbacks = int(restored.fallbacks);
    health.slices_discarded = int(restored.discarded);
    registry.counter("resilient.tiles_resumed").add(restored.resumed);
    registry.counter("resilient.slices_partial").add(restored.partial);
    registry.counter("resilient.resume_fallback").add(restored.fallbacks);
    registry.counter("resilient.slices_discarded").add(restored.discarded);
    for (RunEvent& event : restored.log) {
      coord.events.push_back(std::move(event));
    }
    if (restored.resumed > 0 || restored.partial > 0) {
      coord.events.push_back(
          {RunEvent::Kind::kResumed, -1, -1,
           std::to_string(restored.resumed) + "/" +
               std::to_string(tiles.size()) + " tiles (+" +
               std::to_string(restored.partial) + " partial) from " +
               config.checkpoint.resume_path});
    }
  }
  coord.outstanding = tiles.size() - std::size_t(coord.total_commits);

  // ---- Per-node fleets + initial shard ownership. ----
  std::vector<std::unique_ptr<ClusterNode>> nodes;
  std::vector<std::vector<std::size_t>> initial(std::size_t(cluster.nodes));
  for (int k = 0; k < cluster.nodes; ++k) {
    nodes.push_back(std::make_unique<ClusterNode>(k, cluster.nodes, config));
    if (config.fault_injector != nullptr) {
      nodes.back()->system().attach_fault_injector(config.fault_injector);
    }
    coord.events.push_back(
        {RunEvent::Kind::kNodeJoined, -1, k,
         std::to_string(config.devices) + " device(s), global ids " +
             std::to_string(k * config.devices) + ".." +
             std::to_string((k + 1) * config.devices - 1)});
  }
  struct DetachGuard {
    std::vector<std::unique_ptr<ClusterNode>>& nodes;
    ~DetachGuard() {
      for (auto& node : nodes) node->system().attach_fault_injector(nullptr);
    }
  } detach_guard{nodes};
  for (std::size_t t = 0; t < tiles.size(); ++t) {
    if (coord.committed[t]) continue;
    const int owner = tiles[t].device;  // node id from the assignment
    coord.state[t].owner = owner;
    coord.unstarted[std::size_t(owner)].insert(t);
    initial[std::size_t(owner)].push_back(t);
  }

  // ---- Straggler monitor (opt-in with the watchdog, like in-node
  // speculation).  Re-dispatches an overdue started tile to the recovery
  // pool once; the claiming node races the owner, first commit wins. ----
  std::atomic<bool> stop_monitor{false};
  std::thread monitor;
  if (config.resilience.watchdog && config.resilience.speculate &&
      cluster.nodes > 1) {
    monitor = std::thread([&coord, &config, &wall, &stop_monitor] {
      const auto poll = std::chrono::duration<double, std::milli>(
          config.resilience.watchdog_poll_ms);
      while (!stop_monitor.load(std::memory_order_relaxed)) {
        {
          std::lock_guard lock(coord.mutex);
          // Duplicate only once calibrated: the EWMA needs at least one
          // cluster commit before "overdue" means anything.
          if (coord.wall_ewma > 0.0) {
            const double deadline = std::max(
                coord.wall_ewma * config.resilience.watchdog_slack,
                config.resilience.watchdog_min_deadline_ms / 1000.0);
            const double now = wall.seconds();
            for (std::size_t t = 0; t < coord.state.size(); ++t) {
              TileState& ts = coord.state[t];
              if (coord.committed[t] || !ts.started || ts.dup_issued ||
                  ts.pooled || ts.dup_runner != -1) {
                continue;
              }
              if (now - ts.start_seconds <= deadline) continue;
              ts.dup_issued = true;
              ts.pooled = true;
              coord.pool.push_back(t);
            }
          }
        }
        std::this_thread::sleep_for(poll);
      }
    });
  }

  // ---- Run the shards, one thread per node.  Each thread releases its
  // node's claims the moment the shard returns, so crash recovery
  // overlaps the survivors' execution. ----
  std::vector<mp::ShardOutcome> outcomes(std::size_t(cluster.nodes));
  std::vector<std::thread> runners;
  runners.reserve(std::size_t(cluster.nodes));
  for (int k = 0; k < cluster.nodes; ++k) {
    runners.emplace_back([&, k] {
      ScopedEvent span(MetricsRegistry::global(),
                       "node " + std::to_string(k), k, "node");
      mp::ShardHooks hooks = make_hooks(coord, k, node_faults);
      outcomes[std::size_t(k)] =
          nodes[std::size_t(k)]->run(reference, query, tiles,
                                     initial[std::size_t(k)], hooks,
                                     &prefixes, fingerprint);
      if (outcomes[std::size_t(k)].crashed) {
        std::lock_guard lock(coord.mutex);
        coord.crashes += 1;
        CoordinatorMetrics::get().node_crashes.add();
        coord.events.push_back(
            {RunEvent::Kind::kNodeCrashed, -1, k,
             outcomes[std::size_t(k)].crash_reason});
      }
      release_node(coord, k);
    });
  }
  for (auto& runner : runners) runner.join();
  stop_monitor.store(true, std::memory_order_relaxed);
  if (monitor.joinable()) monitor.join();

  // ---- Merge the shards' health reports. ----
  bool any_interrupted = false;
  for (int k = 0; k < cluster.nodes; ++k) {
    mp::ShardOutcome& outcome = outcomes[std::size_t(k)];
    any_interrupted = any_interrupted || outcome.interrupted;
    mp::RunHealth& h = outcome.health;
    health.retries += h.retries;
    health.reassigned_tiles += h.reassigned_tiles;
    health.blacklist_events += h.blacklist_events;
    health.cpu_fallback_tiles += h.cpu_fallback_tiles;
    health.checkpoint_writes += h.checkpoint_writes;
    health.watchdog_fires += h.watchdog_fires;
    health.speculative_wins += h.speculative_wins;
    health.speculative_losses += h.speculative_losses;
    health.tile_splits += h.tile_splits;
    health.slice_commits += h.slice_commits;
    for (auto& escalation : h.escalations) {
      health.escalations.push_back(escalation);
    }
    for (auto& device : h.devices) health.devices.push_back(device);
  }
  {
    std::lock_guard lock(coord.mutex);
    health.node_crashes = coord.crashes;
    health.node_steals = coord.steals;
    health.node_duplicates = coord.duplicates;
    for (RunEvent& event : coord.events) {
      health.events.push_back(std::move(event));
    }
  }
  for (int k = 0; k < cluster.nodes; ++k) {
    for (RunEvent& event : outcomes[std::size_t(k)].health.events) {
      health.events.push_back(std::move(event));
    }
  }

  // ---- Interruption: flush the merged journal and unwind, exactly like
  // the single-node scheduler. ----
  const bool interrupted = coord.outstanding > 0 &&
                           config.resilience.honor_shutdown &&
                           (any_interrupted || shutdown_requested());
  if (interrupted) {
    if (config.checkpoint.enabled()) {
      write_base_journal(coord, config, fingerprint, d, health.events);
    }
    std::string what = "run interrupted: " +
                       std::to_string(coord.total_commits) + "/" +
                       std::to_string(tiles.size()) + " tiles committed";
    if (config.checkpoint.enabled()) {
      what += "; checkpoint flushed to " + config.checkpoint.write_path +
              " (resume with --resume=" + config.checkpoint.write_path + ")";
    }
    throw InterruptedError(what);
  }

  // ---- Last resort: every node is gone, finish on the CPU. ----
  if (coord.outstanding > 0) {
    if (!config.resilience.cpu_fallback) {
      throw Error("all nodes failed and the CPU fallback is disabled (" +
                  std::to_string(coord.outstanding) + " tiles incomplete)");
    }
    for (std::size_t t = 0; t < tiles.size(); ++t) {
      if (coord.committed[t]) continue;
      const Tile& tile = tiles[t];
      {
        ScopedEvent span(registry,
                         "tile " + std::to_string(tile.id) + " cpu-fallback",
                         -1, "cpu");
        mp::compute_tile_on_cpu(reference, query, m, tile, config.exclusion,
                                coord.results[t]);
      }
      coord.committed[t] = 1;
      coord.result_valid[t] = 1;
      coord.outstanding -= 1;
      coord.total_commits += 1;
      coord.executed_device[t] = -1;
      coord.final_mode[t] = PrecisionMode::FP64;
      health.cpu_fallback_tiles += 1;
      CoordinatorMetrics::get().cpu_fallback_tiles.add();
      health.events.push_back({RunEvent::Kind::kCpuFallback, tile.id, -1,
                               "on the coordinator"});
    }
  }

  // ---- Final merged journal + assembly. ----
  if (config.checkpoint.enabled()) {
    health.checkpoint_writes += 1;
    health.events.push_back(
        {RunEvent::Kind::kCheckpointWritten, -1, -1,
         std::to_string(coord.total_commits) + "/" +
             std::to_string(tiles.size()) + " tiles (merged) -> " +
             config.checkpoint.write_path});
    write_base_journal(coord, config, fingerprint, d, health.events);
  }

  mp::MatrixProfileResult out = mp::assemble_tile_results(
      tiles, coord.results, coord.executed_device, n_q, d,
      config.streams_per_device);
  out.health = std::move(health);
  if (config.fault_injector != nullptr) {
    out.health.faults_injected = int(config.fault_injector->fault_count());
  }
  if (node_faults != nullptr) {
    out.health.faults_injected += int(node_faults->fault_count());
  }
  out.health.degraded =
      out.health.blacklist_events > 0 || out.health.cpu_fallback_tiles > 0 ||
      out.health.retries > 0 || out.health.reassigned_tiles > 0 ||
      out.health.watchdog_fires > 0 || out.health.tile_splits > 0 ||
      out.health.node_crashes > 0;
  out.wall_seconds = wall.seconds();
  return out;
}

}  // namespace mpsim::cluster
