// Multi-node execution of the multi-tile matrix profile — the paper's
// proposed extension "to multiple nodes (e.g., using MPI)" (§VII).
//
// The tiling scheme already decouples tiles from devices, so scaling out
// only needs (a) a two-level tile assignment (node, then device within
// node) and (b) a reduction of the per-node partial profiles.  This
// module implements both on the simulator:
//
//  * functionally, tiles execute on nodes*devices_per_node simulated
//    devices and partial profiles min-merge exactly as MPI ranks would —
//    results are identical to single-node execution (tested);
//  * the performance model adds the interconnect: per-node makespans from
//    the roofline model, plus a binomial-tree reduction of the
//    (n_q * d)-entry profile/index arrays over the network
//    (ceil(log2 nodes) rounds of latency + bytes/bandwidth), plus the
//    per-round CPU merge cost.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mp/matrix_profile.hpp"

namespace mpsim::cluster {

/// Inter-node network characteristics (defaults: 200 Gb/s-class HDR
/// InfiniBand with a few microseconds of latency).
struct InterconnectSpec {
  double bandwidth_gbs = 25.0;  ///< usable GB/s per link
  double latency_us = 2.0;      ///< per message
};

struct ClusterConfig {
  int nodes = 1;
  int devices_per_node = 4;       ///< e.g. a Raven node has 4 A100s
  std::string machine = "A100";
  InterconnectSpec interconnect;

  std::size_t window = 64;
  PrecisionMode mode = PrecisionMode::FP64;
  int tiles = 16;                 ///< total tiles across the cluster
  int streams_per_device = 16;
  std::size_t workers = 0;        ///< host threads for the simulation
};

struct ClusterResult {
  mp::MatrixProfileResult result;      ///< the actual computed profile
  double modeled_compute_seconds = 0;  ///< slowest node's device makespan
  double modeled_merge_seconds = 0;    ///< local + reduction-round merges
  double modeled_network_seconds = 0;  ///< binomial-tree profile reduction
  double modeled_total_seconds() const {
    return modeled_compute_seconds + modeled_merge_seconds +
           modeled_network_seconds;
  }
};

/// Computes the matrix profile across a simulated multi-node cluster.
ClusterResult compute_matrix_profile_cluster(const TimeSeries& reference,
                                             const TimeSeries& query,
                                             const ClusterConfig& config);

/// Analytic model of the cluster run (no execution) for paper-scale
/// problem sizes; mirrors compute_matrix_profile_cluster's accounting.
struct ClusterModelReport {
  double compute_seconds = 0;
  double merge_seconds = 0;
  double network_seconds = 0;
  double total_seconds() const {
    return compute_seconds + merge_seconds + network_seconds;
  }
};

ClusterModelReport model_cluster(std::size_t n_r, std::size_t n_q,
                                 std::size_t dims, std::size_t window,
                                 const ClusterConfig& config);

}  // namespace mpsim::cluster
