#include "cluster/node.hpp"

#include <algorithm>
#include <string>
#include <thread>

#include "gpusim/spec.hpp"

namespace mpsim::cluster {

namespace {

mp::MatrixProfileConfig node_config(int id,
                                    const mp::MatrixProfileConfig& base) {
  mp::MatrixProfileConfig config = base;
  if (!config.checkpoint.write_path.empty()) {
    config.checkpoint.write_path += ".node" + std::to_string(id);
  }
  config.checkpoint.resume_path.clear();
  config.checkpoint.kill_after_tiles = 0;  // the coordinator counts globally
  config.staging_cache = nullptr;
  return config;
}

gpusim::MachineSpec node_spec(const mp::MatrixProfileConfig& base) {
  gpusim::MachineSpec spec = gpusim::spec_by_name(base.machine);
  if (base.device_memory_bytes != 0) {
    spec.memory_capacity_bytes = base.device_memory_bytes;
  }
  return spec;
}

std::size_t node_workers(int total_nodes,
                         const mp::MatrixProfileConfig& base) {
  std::size_t total = base.workers;
  if (total == 0) {
    total = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  return std::max<std::size_t>(
      1, total / std::size_t(std::max(1, total_nodes)));
}

}  // namespace

ClusterNode::ClusterNode(int id, int total_nodes,
                         const mp::MatrixProfileConfig& base)
    : id_(id),
      config_(node_config(id, base)),
      system_(node_spec(base), base.devices, node_workers(total_nodes, base),
              /*index_base=*/id * base.devices) {}

mp::ShardOutcome ClusterNode::run(
    const TimeSeries& reference, const TimeSeries& query,
    const std::vector<mp::Tile>& tiles,
    const std::vector<std::size_t>& initial, const mp::ShardHooks& hooks,
    const std::vector<mp::CheckpointSlice>* prefixes,
    std::uint64_t fingerprint) {
  return mp::run_resilient_shard(system_, reference, query, config_, tiles,
                                 initial, id_, device_base(), hooks, prefixes,
                                 fingerprint);
}

}  // namespace mpsim::cluster
