// One simulated node of the elastic multi-node coordinator (see
// cluster/coordinator.hpp).
//
// A node is a private gpusim::System fleet — `config.devices` devices
// whose *global* indices live in [id*devices, (id+1)*devices) — plus the
// node-local copy of the run configuration its shard scheduler executes
// under.  The node copy differs from the base config only in ways that
// cannot change output bits:
//
//  * the checkpoint journal is redirected to `<write_path>.node<id>` (the
//    per-node side journal restore_from_journals probes on resume),
//  * resume_path is cleared — restore is done once, coordinator-global,
//  * kill_after_tiles is zeroed — the coordinator counts commits globally
//    so a chaos kill fires at the Nth *cluster* commit, not the Nth
//    commit of whichever node got there first,
//  * the caller's staging cache is dropped — each node stages its own
//    reduced-precision conversions (staged bytes are identical either
//    way, the cache is a cross-run serve optimisation).
#pragma once

#include <cstdint>
#include <vector>

#include "gpusim/device.hpp"
#include "mp/resilient.hpp"

namespace mpsim::cluster {

class ClusterNode {
 public:
  /// `total_nodes` splits the host worker budget: each node's System gets
  /// an equal share of config.workers (or of the hardware threads when 0).
  ClusterNode(int id, int total_nodes, const mp::MatrixProfileConfig& base);

  int id() const { return id_; }
  int device_base() const { return id_ * config_.devices; }
  gpusim::System& system() { return system_; }
  const mp::MatrixProfileConfig& config() const { return config_; }

  /// Runs this node's shard (blocking; the coordinator calls it from a
  /// dedicated per-node thread).  Never throws InterruptedError — a
  /// shutdown or node crash is reported in the outcome.
  mp::ShardOutcome run(const TimeSeries& reference, const TimeSeries& query,
                       const std::vector<mp::Tile>& tiles,
                       const std::vector<std::size_t>& initial,
                       const mp::ShardHooks& hooks,
                       const std::vector<mp::CheckpointSlice>* prefixes,
                       std::uint64_t fingerprint);

 private:
  int id_;
  mp::MatrixProfileConfig config_;
  gpusim::System system_;
};

}  // namespace mpsim::cluster
