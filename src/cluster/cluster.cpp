#include "cluster/cluster.hpp"

#include <cmath>

#include "gpusim/spec.hpp"
#include "mp/model.hpp"

namespace mpsim::cluster {
namespace {

/// Reduction rounds of a binomial tree over `nodes` ranks.
int reduction_rounds(int nodes) {
  int rounds = 0;
  while ((1 << rounds) < nodes) ++rounds;
  return rounds;
}

/// Bytes of one partial-profile message: the full (n_q * d) profile and
/// index arrays (profile in binary64 after D2H conversion, index int64).
std::int64_t message_bytes(std::size_t n_q, std::size_t dims) {
  return std::int64_t(n_q * dims) * (8 + 8);
}

double network_seconds(const InterconnectSpec& net, std::int64_t bytes,
                       int nodes) {
  if (nodes <= 1) return 0.0;
  const double per_round =
      net.latency_us * 1e-6 + double(bytes) / (net.bandwidth_gbs * 1e9);
  return double(reduction_rounds(nodes)) * per_round;
}

/// CPU merge cost of the reduction rounds (each round min-merges one full
/// partial profile into the local one).
double reduction_merge_seconds(std::size_t n_q, std::size_t dims,
                               int nodes) {
  if (nodes <= 1) return 0.0;
  return double(reduction_rounds(nodes)) *
         mp::model_merge_seconds(1, n_q, dims);
}

}  // namespace

ClusterResult compute_matrix_profile_cluster(const TimeSeries& reference,
                                             const TimeSeries& query,
                                             const ClusterConfig& config) {
  MPSIM_CHECK(config.nodes >= 1, "need at least one node");
  MPSIM_CHECK(config.devices_per_node >= 1,
              "need at least one device per node");

  // Functional execution: the tile scheduler treats the cluster's GPUs as
  // one flat device list (Round-robin over devices == Round-robin over
  // nodes when devices are enumerated node-major), and min-merge is
  // associative, so a single merge is equivalent to the hierarchical one.
  mp::MatrixProfileConfig run;
  run.window = config.window;
  run.mode = config.mode;
  run.tiles = config.tiles;
  run.devices = config.nodes * config.devices_per_node;
  run.machine = config.machine;
  run.streams_per_device = config.streams_per_device;
  run.workers = config.workers;

  ClusterResult out;
  out.result = mp::compute_matrix_profile(reference, query, run);

  // Performance model on top of the executed run's accounting.
  out.modeled_compute_seconds = out.result.modeled_device_seconds;
  const std::size_t n_q = out.result.segments;
  const std::size_t dims = out.result.dims;
  out.modeled_merge_seconds =
      out.result.modeled_merge_seconds / double(config.nodes) +
      reduction_merge_seconds(n_q, dims, config.nodes);
  out.modeled_network_seconds = network_seconds(
      config.interconnect, message_bytes(n_q, dims), config.nodes);
  return out;
}

ClusterModelReport model_cluster(std::size_t n_r, std::size_t n_q,
                                 std::size_t dims, std::size_t window,
                                 const ClusterConfig& config) {
  mp::ModelConfig model;
  model.spec = gpusim::spec_by_name(config.machine);
  model.n_r = n_r;
  model.n_q = n_q;
  model.dims = dims;
  model.window = window;
  model.mode = config.mode;
  model.tiles = config.tiles;
  model.devices = config.nodes * config.devices_per_node;
  model.streams_per_device = config.streams_per_device;
  const auto report = mp::model_matrix_profile(model);

  ClusterModelReport out;
  out.compute_seconds = report.device_seconds;
  // Tile merges spread across the nodes; reduction rounds add the
  // network-side merges.
  out.merge_seconds = report.merge_seconds / double(config.nodes) +
                      reduction_merge_seconds(n_q, dims, config.nodes);
  out.network_seconds = network_seconds(
      config.interconnect, message_bytes(n_q, dims), config.nodes);
  return out;
}

}  // namespace mpsim::cluster
