// Deterministic random number generation for reproducible experiments.
//
// xoshiro256** by Blackman & Vigna (public domain reference implementation,
// re-expressed here): fast, high-quality, and — unlike std::mt19937 +
// std::distributions — bit-identical across standard libraries, which keeps
// every accuracy experiment reproducible on any platform.
#pragma once

#include <cstdint>
#include <cmath>
#include <limits>

namespace mpsim {

/// xoshiro256** PRNG with splitmix64 seeding.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 expansion of the scalar seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  std::uint64_t operator()() { return next_u64(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n) without modulo bias (Lemire's method).
  std::uint64_t uniform_index(std::uint64_t n) {
    if (n == 0) return 0;
    while (true) {
      const std::uint64_t x = next_u64();
      const std::uint64_t r = x % n;
      if (x - r <= std::numeric_limits<std::uint64_t>::max() - (n - 1)) {
        return r;
      }
    }
  }

  /// Standard normal via Box–Muller (deterministic, no cached spare).
  double normal() {
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    constexpr double two_pi = 6.283185307179586476925286766559;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(two_pi * u2);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace mpsim
