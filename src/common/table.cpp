#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/error.hpp"

namespace mpsim {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  MPSIM_CHECK(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  MPSIM_CHECK(row.size() == header_.size(),
              "row arity " << row.size() << " != header arity "
                           << header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::left << std::setw(int(width[c]))
         << row[c];
    }
    os << '\n';
  };

  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string fmt_fixed(double value, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value;
  return os.str();
}

std::string fmt_sci(double value, int digits) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(digits) << value;
  return os.str();
}

std::string fmt_pct(double fraction01, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << fraction01 * 100.0 << "%";
  return os.str();
}

}  // namespace mpsim
