// Execution-timeline tracing shared by the modelled schedule and the
// runtime observability layer.
//
// A Timeline keeps individual intervals — which device, which engine lane
// (compute or copy), when — and serialises them in the Chrome tracing
// format (chrome://tracing, Perfetto, speedscope all read it), the
// standard way GPU schedules are inspected.  Two producers fill one:
// mp::model_timeline() builds a *modelled* schedule without executing
// anything, and MetricsRegistry (common/metrics.hpp) records *measured*
// wall-clock events from real runs — both serialize to the same JSON, so
// the two can be compared side by side in the same viewer.
//
// Historically this lived in gpusim/trace.hpp; that header now aliases
// these types into mpsim::gpusim for existing call sites.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mpsim {

struct TraceEvent {
  std::string name;     ///< e.g. "tile 3 dist_calc"
  int device = 0;       ///< pid in the trace
  std::string lane;     ///< tid: "compute" or "copy"
  double start_seconds = 0.0;
  double duration_seconds = 0.0;

  double end_seconds() const { return start_seconds + duration_seconds; }
};

class Timeline {
 public:
  void add(TraceEvent event);

  const std::vector<TraceEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  /// Latest event end across all devices and lanes.
  double makespan_seconds() const;

  /// End of the last event on one device's lane (0 if none).
  double lane_end_seconds(int device, const std::string& lane) const;

  /// Chrome tracing JSON (an array of "X" complete events; timestamps in
  /// microseconds as the format requires).
  std::string to_chrome_json() const;

  /// Writes the JSON to a file; throws on I/O failure.
  void write_chrome_json(const std::string& path) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace mpsim
