#include "common/metrics.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/json.hpp"

namespace mpsim {

namespace {

// min/max start at +/-inf (construction and reset) so the first recorded
// value wins unconditionally; CAS loops converge them under contention.
constexpr double kInf = std::numeric_limits<double>::infinity();

void atomic_min(std::atomic<double>& slot, double value) {
  double seen = slot.load(std::memory_order_relaxed);
  while (value < seen &&
         !slot.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& slot, double value) {
  double seen = slot.load(std::memory_order_relaxed);
  while (value > seen &&
         !slot.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::record(double value) {
  if (!enabled_->load(std::memory_order_relaxed)) return;
  if (!(value >= 0.0)) return;  // negatives and NaN carry no information
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  atomic_min(min_, value);
  atomic_max(max_, value);
}

double Histogram::bucket_floor(std::size_t b) {
  return std::ldexp(1.0, int(b) + kMinExponent);
}

std::size_t Histogram::bucket_index(double value) {
  if (value < bucket_floor(0)) return 0;  // zero and subnormal-small values
  const int exponent = std::ilogb(value) - kMinExponent;
  if (exponent < 0) return 0;
  if (std::size_t(exponent) >= kBucketCount) return kBucketCount - 1;
  return std::size_t(exponent);
}

void Histogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(kInf, std::memory_order_relaxed);
  max_.store(-kInf, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry instance;
  return instance;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  MPSIM_CHECK(gauges_.count(name) == 0 && histograms_.count(name) == 0,
              "metric '" << name << "' already registered as another kind");
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counter_storage_.emplace_back(&enabled_);
    it = counters_.emplace(name, &counter_storage_.back()).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  MPSIM_CHECK(counters_.count(name) == 0 && histograms_.count(name) == 0,
              "metric '" << name << "' already registered as another kind");
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauge_storage_.emplace_back(&enabled_);
    it = gauges_.emplace(name, &gauge_storage_.back()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard lock(mutex_);
  MPSIM_CHECK(counters_.count(name) == 0 && gauges_.count(name) == 0,
              "metric '" << name << "' already registered as another kind");
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    histogram_storage_.emplace_back(&enabled_);
    it = histograms_.emplace(name, &histogram_storage_.back()).first;
  }
  return *it->second;
}

void MetricsRegistry::record_event(TraceEvent event) {
  if (!enabled()) return;
  std::lock_guard lock(mutex_);
  timeline_.add(std::move(event));
}

Timeline MetricsRegistry::timeline() const {
  std::lock_guard lock(mutex_);
  return timeline_;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramData data;
    data.name = name;
    data.count = h->count();
    data.sum = h->sum();
    data.min = data.count > 0 ? h->min() : 0.0;
    data.max = data.count > 0 ? h->max() : 0.0;
    for (std::size_t b = 0; b < Histogram::kBucketCount; ++b) {
      const std::uint64_t n = h->bucket(b);
      if (n > 0) data.buckets.emplace_back(Histogram::bucket_floor(b), n);
    }
    snap.histograms.push_back(std::move(data));
  }
  return snap;
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream os;
  os.precision(17);
  os << "{\n  \"schema\": \"mpsim-metrics-v2\",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    os << (first ? "\n" : ",\n") << "    \"";
    append_json_escaped(os, name);
    os << "\": " << value;
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    os << (first ? "\n" : ",\n") << "    \"";
    append_json_escaped(os, name);
    os << "\": " << value;
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& h : histograms) {
    os << (first ? "\n" : ",\n") << "    \"";
    append_json_escaped(os, h.name);
    os << "\": {\"count\": " << h.count << ", \"sum\": " << h.sum
       << ", \"min\": " << h.min << ", \"max\": " << h.max
       << ", \"buckets\": [";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      os << (b == 0 ? "" : ", ") << "{\"ge\": " << h.buckets[b].first
         << ", \"count\": " << h.buckets[b].second << "}";
    }
    os << "]}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

void MetricsRegistry::write_json(const std::string& path) const {
  std::ofstream out(path);
  MPSIM_CHECK(out.good(), "cannot open '" << path << "' for writing");
  out << snapshot().to_json();
  MPSIM_CHECK(out.good(), "write to '" << path << "' failed");
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& c : counter_storage_) c.reset();
  for (auto& g : gauge_storage_) g.reset();
  for (auto& h : histogram_storage_) h.reset();
  timeline_ = Timeline();
  epoch_.reset();
}

}  // namespace mpsim
