// Minimal --key=value flag parser shared by the bench and example binaries.
// Only long options are supported; unknown flags raise ConfigError so typos
// in experiment sweeps fail loudly instead of silently using defaults.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace mpsim {

class CliArgs {
 public:
  /// Parses argv of the form `--name=value` or bare `--name` (value "1").
  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Throws ConfigError if any parsed flag is not in `known` (comma-free
  /// names). Call after all get_* lookups are declared.
  void check_known(std::initializer_list<const char*> known) const;

 private:
  std::map<std::string, std::string> values_;
};

/// Parses `text` as a base-10 integer, requiring the whole string to be
/// consumed: "--tiles=abc" and "--window=64garbage" both throw Error
/// naming `flag` instead of silently becoming 0 / 64.  Used by
/// CliArgs::get_int and the serve request parser.
std::int64_t parse_int_flag(const std::string& flag, const std::string& text);

/// Same full-consumption contract for floating-point values.
double parse_double_flag(const std::string& flag, const std::string& text);

}  // namespace mpsim
