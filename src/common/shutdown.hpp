// Process-wide graceful-shutdown flag.
//
// Signal handlers must not touch files or locks, so the SIGINT/SIGTERM
// handlers installed by install_signal_handlers() only set an atomic
// flag (and hard-exit on a second signal, so a stuck run can still be
// killed interactively).  Long-running work — the resilient scheduler —
// polls shutdown_requested(), cancels its in-flight attempts, flushes its
// checkpoint and unwinds with InterruptedError; the CLI then flushes
// metrics/trace output and exits with the conventional 130.
//
// Tests drive the same path deterministically through request_shutdown()
// (no signal involved); clear_shutdown() re-arms the process for the next
// run in the same test binary.
#pragma once

namespace mpsim {

/// Installs SIGINT/SIGTERM handlers that request a graceful shutdown.
/// Idempotent.  A second signal after the first exits immediately (130).
void install_signal_handlers();

/// True once a shutdown has been requested (signal or request_shutdown).
bool shutdown_requested();

/// Requests a graceful shutdown programmatically (what the handlers do).
void request_shutdown();

/// Clears the flag (between runs in one process, e.g. tests).
void clear_shutdown();

}  // namespace mpsim
