// Process-wide graceful-shutdown flag.
//
// Signal handlers must not touch files or locks, so the SIGINT/SIGTERM
// handlers installed by install_signal_handlers() only set an atomic
// flag and record which signal fired (and hard-exit on a second signal,
// so a stuck run can still be killed interactively).  Long-running work
// — the resilient scheduler, the serve daemon — polls
// shutdown_requested(), cancels or drains its in-flight work, flushes
// its durable state and unwinds; the tools then flush metrics/trace
// output and exit with shutdown_exit_code().
//
// Exit codes follow the shell convention 128+signo on BOTH the graceful
// and the forced (second-signal) path — 130 for SIGINT, 143 for SIGTERM
// — so orchestrators can tell an operator interrupt from a supervisor
// stop.  A programmatic request_shutdown() (tests, --kill-after-tiles)
// records no signal and keeps the historical 130.
//
// Tests drive the same path deterministically through request_shutdown()
// (no signal involved); clear_shutdown() re-arms the process for the next
// run in the same test binary.
#pragma once

namespace mpsim {

/// Installs SIGINT/SIGTERM handlers that request a graceful shutdown.
/// Idempotent.  A second signal after the first exits immediately with
/// 128+signo of the second signal.
void install_signal_handlers();

/// True once a shutdown has been requested (signal or request_shutdown).
bool shutdown_requested();

/// The signal that requested the shutdown (SIGINT/SIGTERM), or 0 when no
/// signal was involved (programmatic request, or no shutdown yet).
int shutdown_signal();

/// Conventional process exit status for the requested shutdown:
/// 128+shutdown_signal() when a signal was recorded, 130 otherwise.
int shutdown_exit_code();

/// Requests a graceful shutdown programmatically (what the handlers do,
/// minus the signal record).
void request_shutdown();

/// Clears the flag and the recorded signal (between runs in one process,
/// e.g. tests).
void clear_shutdown();

}  // namespace mpsim
