// Minimal JSON string escaping shared by every JSON writer in the tree
// (metrics snapshots, Chrome-trace timelines, the serve protocol).
//
// Each writer used to carry its own escaper — or none: trace.cpp
// interpolated event names verbatim, so a quote or backslash in a kernel
// name produced an invalid document.  This helper is the one escaping
// rule: ", \ and control characters (including \n) are escaped exactly as
// RFC 8259 requires, everything else passes through byte-for-byte (the
// writers emit UTF-8 as-is).
#pragma once

#include <ostream>
#include <string>
#include <string_view>

namespace mpsim {

/// Appends `text` to `os` with JSON string escaping (no surrounding
/// quotes; the caller writes those).
void append_json_escaped(std::ostream& os, std::string_view text);

/// Returns the escaped form of `text` (no surrounding quotes).
std::string json_escape(std::string_view text);

}  // namespace mpsim
