#include "common/json.hpp"

#include <cstdio>
#include <sstream>

namespace mpsim {

void append_json_escaped(std::ostream& os, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

std::string json_escape(std::string_view text) {
  std::ostringstream os;
  append_json_escaped(os, text);
  return os.str();
}

}  // namespace mpsim
