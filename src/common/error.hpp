// Error handling primitives shared by every mpsim module.
//
// The library throws `mpsim::Error` (a std::runtime_error) for all
// recoverable failures: bad user configuration, capacity exhaustion on a
// simulated device, malformed input files.  Internal invariant violations
// use MPSIM_ASSERT and abort in debug builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace mpsim {

/// Base exception for all errors raised by the mpsim library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when a requested allocation exceeds a simulated device's memory.
class DeviceMemoryError : public Error {
 public:
  explicit DeviceMemoryError(const std::string& what) : Error(what) {}
};

/// Raised for invalid user-supplied configuration (sizes, modes, tilings).
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

/// Raised when a simulated device has failed permanently (gone offline).
/// Work must not be retried on the device; the resilient scheduler
/// blacklists it and reassigns its tiles to healthy devices.
class DeviceFailedError : public Error {
 public:
  explicit DeviceFailedError(const std::string& what) : Error(what) {}
};

/// Raised for transient, retryable faults (a failed kernel launch or copy
/// injected by a FaultInjector, or any hiccup that a bounded retry with
/// backoff is expected to clear).
class TransientFaultError : public Error {
 public:
  explicit TransientFaultError(const std::string& what) : Error(what) {}
};

/// Raised when in-flight work observes its cooperative cancellation token.
/// Not a fault: the scheduler cancels attempts it no longer needs (a
/// speculative race was lost, a hung device was blacklisted, the run is
/// shutting down) and the unwound attempt is simply discarded.
class CancelledError : public Error {
 public:
  explicit CancelledError(const std::string& what) : Error(what) {}
};

/// Raised when a run stops early because shutdown was requested (SIGINT /
/// SIGTERM or an injected kill).  The scheduler flushes its checkpoint
/// before throwing; callers flush observability output and exit.
class InterruptedError : public Error {
 public:
  explicit InterruptedError(const std::string& what) : Error(what) {}
};

/// Raised when a checkpoint journal cannot be read (truncated, corrupt,
/// wrong version, or written for different inputs).  Resume treats it as
/// "no checkpoint" after reporting the reason; a fresh run proceeds.
/// The machine-readable `reason()` distinguishes the three fallback
/// classes the scheduler reports separately (satellite of the elastic
/// resume work): the file does not exist at all, the file exists but is
/// damaged or not a journal, or it is a valid journal for *different*
/// inputs/configuration.
class CheckpointError : public Error {
 public:
  enum class Reason { kMissing, kCorrupt, kMismatch };

  explicit CheckpointError(const std::string& what,
                           Reason reason = Reason::kCorrupt)
      : Error(what), reason_(reason) {}

  Reason reason() const { return reason_; }

 private:
  Reason reason_;
};

/// Raised when a whole simulated *node* (a device fleet running its own
/// resilient scheduler) crashes via an injected `node_crash` fault.  The
/// coordinator marks the node dead and re-shards its uncommitted tiles;
/// within the node the error unwinds the shard without flushing its
/// journal — exactly what a real process crash would leave behind.
class NodeFailedError : public Error {
 public:
  explicit NodeFailedError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "MPSIM_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace mpsim

/// Runtime check that throws mpsim::Error on failure (always enabled).
#define MPSIM_CHECK(expr, msg)                                              \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::mpsim::detail::throw_check_failure(#expr, __FILE__, __LINE__,       \
                                           (::std::ostringstream{} << msg) \
                                               .str());                     \
    }                                                                       \
  } while (0)
