#include "common/cli.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <string_view>

#include "common/error.hpp"

namespace mpsim {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    MPSIM_CHECK(arg.substr(0, 2) == "--",
                "unexpected positional argument '" << arg << "'");
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    // insert_or_assign with explicit string temporaries sidesteps GCC 12's
    // -Wrestrict false positive (PR 105651) on operator[]-assignments.
    if (eq == std::string_view::npos) {
      values_.insert_or_assign(std::string(arg), std::string("1"));
    } else {
      values_.insert_or_assign(std::string(arg.substr(0, eq)),
                               std::string(arg.substr(eq + 1)));
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  return values_.count(name) != 0;
}

std::string CliArgs::get_string(const std::string& name,
                                const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name,
                              std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return parse_int_flag(name, it->second);
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return parse_double_flag(name, it->second);
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second != "0" && it->second != "false";
}

std::int64_t parse_int_flag(const std::string& flag, const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  // Full consumption, and no leading whitespace (strtoll skips it).
  MPSIM_CHECK(!text.empty() &&
                  !std::isspace(static_cast<unsigned char>(text.front())) &&
                  end == text.c_str() + text.size(),
              "--" << flag << "=" << text << " is not an integer");
  MPSIM_CHECK(errno != ERANGE,
              "--" << flag << "=" << text << " is out of integer range");
  return value;
}

double parse_double_flag(const std::string& flag, const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  MPSIM_CHECK(!text.empty() &&
                  !std::isspace(static_cast<unsigned char>(text.front())) &&
                  end == text.c_str() + text.size(),
              "--" << flag << "=" << text << " is not a number");
  MPSIM_CHECK(errno != ERANGE,
              "--" << flag << "=" << text << " is out of range");
  return value;
}

void CliArgs::check_known(std::initializer_list<const char*> known) const {
  for (const auto& [name, value] : values_) {
    (void)value;
    const bool ok = std::any_of(known.begin(), known.end(),
                                [&](const char* k) { return name == k; });
    MPSIM_CHECK(ok, "unknown flag --" << name);
  }
}

}  // namespace mpsim
