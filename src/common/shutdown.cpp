#include "common/shutdown.hpp"

#include <atomic>
#include <csignal>
#include <cstdlib>

namespace mpsim {

namespace {

std::atomic<bool> g_shutdown{false};

void handle_signal(int) {
  // Second signal: the graceful path is stuck (or the user is impatient);
  // bail out the only async-signal-safe way.
  if (g_shutdown.exchange(true)) _Exit(130);
}

}  // namespace

void install_signal_handlers() {
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
}

bool shutdown_requested() {
  return g_shutdown.load(std::memory_order_relaxed);
}

void request_shutdown() { g_shutdown.store(true); }

void clear_shutdown() { g_shutdown.store(false); }

}  // namespace mpsim
