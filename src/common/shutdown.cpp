#include "common/shutdown.hpp"

#include <atomic>
#include <csignal>
#include <cstdlib>

namespace mpsim {

namespace {

std::atomic<bool> g_shutdown{false};
std::atomic<int> g_signal{0};

void handle_signal(int signo) {
  g_signal.store(signo, std::memory_order_relaxed);
  // Second signal: the graceful path is stuck (or the user is impatient);
  // bail out the only async-signal-safe way, with the conventional code.
  if (g_shutdown.exchange(true)) _Exit(128 + signo);
}

}  // namespace

void install_signal_handlers() {
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
}

bool shutdown_requested() {
  return g_shutdown.load(std::memory_order_relaxed);
}

int shutdown_signal() { return g_signal.load(std::memory_order_relaxed); }

int shutdown_exit_code() {
  const int signo = shutdown_signal();
  return signo > 0 ? 128 + signo : 130;
}

void request_shutdown() { g_shutdown.store(true); }

void clear_shutdown() {
  g_shutdown.store(false);
  g_signal.store(0);
}

}  // namespace mpsim
