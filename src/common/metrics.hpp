// Runtime observability: a low-overhead, thread-safe metrics registry
// plus a structured wall-clock event recorder.
//
// The modelled schedule has always been observable (gpusim::KernelLedger,
// mp::model_timeline), but the *actual* execution path — the resilient
// scheduler's retries and escalations, the staging cache, the thread-pool
// dispatch — was not.  This registry closes that gap with three
// instrument kinds:
//
//   * Counter   — monotonically increasing u64 (events, bytes, retries),
//   * Gauge     — last-written double (queue depth, hit rate),
//   * Histogram — fixed log2-bucket distribution of non-negative doubles
//                 (tile seconds, dispatch sizes); bucket b counts values
//                 in [2^(b+kMinExponent), 2^(b+1+kMinExponent)).
//
// Hot-path contract: recording is a handful of relaxed atomics, performs
// ZERO heap allocation, and degenerates to one relaxed bool load when the
// registry is disabled (the default), so instrumented code pays nothing
// in production-off builds.  Instrument registration (by name) allocates
// and takes a mutex — do it once at setup, keep the returned reference.
//
// Wall-clock events reuse the Timeline type of the modelled schedule
// (common/trace.hpp), so `--trace-out` of a real run and a modelled
// schedule load into the same Chrome-tracing/Perfetto view.
//
// The process-wide instance is MetricsRegistry::global(), disabled until
// someone (e.g. mpsim_cli --metrics-out) enables it.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/stopwatch.hpp"
#include "common/trace.hpp"

namespace mpsim {

class MetricsRegistry;

/// Monotonic event counter.  add() is wait-free and allocation-free.
/// Instruments are created by (and belong to) a MetricsRegistry; the
/// constructors are public only because container emplacement needs them.
class Counter {
 public:
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  void add(std::uint64_t n = 1) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  void reset() { value_.store(0, std::memory_order_relaxed); }

  const std::atomic<bool>* enabled_;
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written value.  set() is wait-free and allocation-free.
class Gauge {
 public:
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  void set(double v) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.store(v, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

  const std::atomic<bool>* enabled_;
  std::atomic<double> value_{0.0};
};

/// Distribution over fixed log2 buckets.  record() is lock-free and
/// allocation-free (a bucket index plus four relaxed atomics).
class Histogram {
 public:
  /// Bucket 0 starts at 2^kMinExponent (~9.3e-10: sub-nanosecond seconds
  /// and sub-element counts both land in bucket 0); 64 buckets reach
  /// 2^34 ≈ 1.7e10, far beyond any duration or size recorded here.
  static constexpr int kMinExponent = -30;
  static constexpr std::size_t kBucketCount = 64;

  explicit Histogram(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  void record(double value);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const { return min_.load(std::memory_order_relaxed); }
  double max() const { return max_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(std::size_t b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

  /// Lower edge of bucket b (2^(b + kMinExponent)).
  static double bucket_floor(std::size_t b);
  /// Bucket a value falls into (clamped to [0, kBucketCount)).
  static std::size_t bucket_index(double value);

 private:
  friend class MetricsRegistry;
  void reset();

  const std::atomic<bool>* enabled_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
};

/// Point-in-time copy of every instrument, for reporting.
struct MetricsSnapshot {
  struct HistogramData {
    std::string name;
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    /// (bucket floor, count) for every non-empty bucket, ascending.
    std::vector<std::pair<double, std::uint64_t>> buckets;

    double mean() const { return count > 0 ? sum / double(count) : 0.0; }
  };

  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramData> histograms;

  /// Versioned JSON document ("mpsim-metrics-v2"; v2 added the
  /// resilient.checkpoint_* / watchdog / speculation / tile-split
  /// counters — purely additive, v1 consumers only need to accept the
  /// new schema string).  See docs/API.md.
  std::string to_json() const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every built-in instrumentation site uses.
  /// Disabled by default.
  static MetricsRegistry& global();

  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Look up or create an instrument.  Takes the registry mutex and may
  /// allocate; returned references stay valid for the registry's
  /// lifetime.  Looking up one name as two different kinds throws.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Appends a measured wall-clock event (no-op when disabled).
  /// start_seconds is relative to the registry's epoch (see now_seconds).
  void record_event(TraceEvent event);

  /// Seconds since the registry's monotonic epoch (construction or the
  /// last reset()); the time base of every recorded event.
  double now_seconds() const { return epoch_.seconds(); }

  /// Copy of the recorded wall-clock timeline (Chrome-tracing
  /// serialisable, same format as mp::model_timeline's output).
  Timeline timeline() const;

  MetricsSnapshot snapshot() const;

  /// snapshot().to_json() written to `path`; throws on I/O failure.
  void write_json(const std::string& path) const;

  /// Zeroes every instrument, clears the timeline and restarts the epoch.
  /// Instrument references stay valid.
  void reset();

 private:
  std::atomic<bool> enabled_{false};

  mutable std::mutex mutex_;
  // Deques give stable element addresses across registration.
  std::deque<Counter> counter_storage_;
  std::deque<Gauge> gauge_storage_;
  std::deque<Histogram> histogram_storage_;
  std::map<std::string, Counter*> counters_;
  std::map<std::string, Gauge*> gauges_;
  std::map<std::string, Histogram*> histograms_;
  Timeline timeline_;
  Stopwatch epoch_;
};

/// RAII wall-clock span: records a TraceEvent (and optionally a seconds
/// histogram sample) over its lifetime.  When the registry is disabled at
/// construction the whole object is inert — no strings are copied.
class ScopedEvent {
 public:
  ScopedEvent(MetricsRegistry& registry, std::string name, int device,
              std::string lane, Histogram* seconds_histogram = nullptr)
      : registry_(registry.enabled() ? &registry : nullptr),
        histogram_(seconds_histogram) {
    if (registry_ == nullptr) return;
    name_ = std::move(name);
    lane_ = std::move(lane);
    device_ = device;
    start_ = registry_->now_seconds();
  }

  ScopedEvent(const ScopedEvent&) = delete;
  ScopedEvent& operator=(const ScopedEvent&) = delete;

  ~ScopedEvent() {
    if (registry_ == nullptr) return;
    const double duration = registry_->now_seconds() - start_;
    if (histogram_ != nullptr) histogram_->record(duration);
    registry_->record_event(
        {std::move(name_), device_, std::move(lane_), start_, duration});
  }

 private:
  MetricsRegistry* registry_;
  Histogram* histogram_;
  std::string name_;
  std::string lane_;
  int device_ = 0;
  double start_ = 0.0;
};

}  // namespace mpsim
