#include "common/trace.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/json.hpp"

namespace mpsim {

void Timeline::add(TraceEvent event) {
  MPSIM_CHECK(event.duration_seconds >= 0.0, "negative event duration");
  events_.push_back(std::move(event));
}

double Timeline::makespan_seconds() const {
  double end = 0.0;
  for (const auto& e : events_) end = std::max(end, e.end_seconds());
  return end;
}

double Timeline::lane_end_seconds(int device, const std::string& lane) const {
  double end = 0.0;
  for (const auto& e : events_) {
    if (e.device == device && e.lane == lane) {
      end = std::max(end, e.end_seconds());
    }
  }
  return end;
}

std::string Timeline::to_chrome_json() const {
  std::ostringstream os;
  os << "[\n";
  bool first = true;
  for (const auto& e : events_) {
    if (!first) os << ",\n";
    first = false;
    os << "  {\"name\": \"";
    append_json_escaped(os, e.name);
    os << "\", \"ph\": \"X\", \"pid\": " << e.device << ", \"tid\": \"";
    append_json_escaped(os, e.lane);
    os << "\", \"ts\": " << e.start_seconds * 1e6
       << ", \"dur\": " << e.duration_seconds * 1e6 << "}";
  }
  os << "\n]\n";
  return os.str();
}

void Timeline::write_chrome_json(const std::string& path) const {
  std::ofstream out(path);
  MPSIM_CHECK(out.good(), "cannot open '" << path << "' for writing");
  out << to_chrome_json();
  MPSIM_CHECK(out.good(), "write to '" << path << "' failed");
}

}  // namespace mpsim
