#include "common/thread_pool.hpp"

#include <algorithm>

#include "common/metrics.hpp"

namespace mpsim {

namespace {

/// parallel_for dispatch instruments, registered once (registration takes
/// a lock; the per-call cost is relaxed atomics only, nothing when the
/// global registry is disabled).
struct DispatchMetrics {
  Counter& dispatches;
  Counter& inline_runs;
  Counter& chunks;
  Histogram& items;
  Histogram& caller_share;

  static DispatchMetrics& get() {
    static DispatchMetrics m{
        MetricsRegistry::global().counter("thread_pool.parallel_for.dispatches"),
        MetricsRegistry::global().counter("thread_pool.parallel_for.inline_runs"),
        MetricsRegistry::global().counter("thread_pool.parallel_for.chunks"),
        MetricsRegistry::global().histogram("thread_pool.parallel_for.items"),
        MetricsRegistry::global().histogram(
            "thread_pool.parallel_for.caller_chunk_share")};
    return m;
  }
};

}  // namespace

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

bool ThreadPool::claim_chunk_locked(ParallelJob* own, ParallelJob*& job,
                                    std::size_t& chunk) {
  ParallelJob* candidate = own != nullptr ? own : job_head_;
  while (candidate != nullptr) {
    if (own != nullptr && !candidate->linked) return false;
    const std::size_t c =
        candidate->next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (c < candidate->chunk_count) {
      if (c + 1 == candidate->chunk_count) unlink_job_locked(candidate);
      job = candidate;
      chunk = c;
      return true;
    }
    // Exhausted (a racing claimer got the last chunk): drop it from the
    // list so sleeping workers stop seeing it, then look further.
    unlink_job_locked(candidate);
    candidate = own != nullptr ? nullptr : job_head_;
  }
  return false;
}

void ThreadPool::unlink_job_locked(ParallelJob* job) {
  if (!job->linked) return;
  ParallelJob** slot = &job_head_;
  while (*slot != nullptr && *slot != job) slot = &(*slot)->next;
  if (*slot == job) {
    *slot = job->next;
    if (job_tail_ == job) {
      job_tail_ = job_head_;
      while (job_tail_ != nullptr && job_tail_->next != nullptr) {
        job_tail_ = job_tail_->next;
      }
    }
  }
  job->linked = false;
  job->next = nullptr;
}

void ThreadPool::run_chunk(ParallelJob* job, std::size_t chunk) {
  const std::size_t begin = chunk * job->chunk_size;
  const std::size_t end = std::min(job->n, begin + job->chunk_size);
  try {
    (*job->body)(begin, end);
  } catch (...) {
    std::lock_guard lock(job->done_mutex);
    if (!job->error) job->error = std::current_exception();
  }
  // Completion countdown: the last chunk signals the owner under the
  // job's mutex, after which the job may be destroyed — nothing below
  // touches it past the notify.
  if (job->unfinished.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard lock(job->done_mutex);
    job->done = true;
    job->done_cv.notify_all();
  }
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body) {
  parallel_for_grained(n, 1, body);
}

void ThreadPool::parallel_for_grained(
    std::size_t n, std::size_t min_grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  if (min_grain == 0) min_grain = 1;
  DispatchMetrics& metrics = DispatchMetrics::get();
  metrics.items.record(double(n));
  const std::size_t workers = worker_count();
  if (n <= kInlineMax || workers == 1 || n <= min_grain) {
    metrics.inline_runs.add();
    body(0, n);
    return;
  }
  metrics.dispatches.add();

  ParallelJob job;
  job.body = &body;
  job.n = n;
  const std::size_t target_chunks = std::min(n, kOverDecompose * workers);
  job.chunk_size =
      std::max(min_grain, (n + target_chunks - 1) / target_chunks);
  job.chunk_count = (n + job.chunk_size - 1) / job.chunk_size;
  job.unfinished.store(job.chunk_count, std::memory_order_relaxed);

  {
    std::lock_guard lock(mutex_);
    job.linked = true;
    job.next = nullptr;
    if (job_tail_ != nullptr) {
      job_tail_->next = &job;
    } else {
      job_head_ = &job;
    }
    job_tail_ = &job;
  }
  cv_.notify_all();

  // The caller works its own job down alongside the pool: claim chunks
  // until none remain, then wait out stragglers on the completion latch.
  std::size_t caller_chunks = 0;
  for (;;) {
    ParallelJob* claimed = nullptr;
    std::size_t chunk = 0;
    {
      std::lock_guard lock(mutex_);
      if (!claim_chunk_locked(&job, claimed, chunk)) break;
    }
    run_chunk(claimed, chunk);
    ++caller_chunks;
  }
  {
    std::unique_lock lock(job.done_mutex);
    job.done_cv.wait(lock, [&job] { return job.done; });
  }
  // Imbalance signal: the share of chunks the caller had to absorb.  A
  // healthy pool leaves the caller ~1/(workers+1); a starved or skewed
  // pool pushes it toward 100%.
  metrics.chunks.add(job.chunk_count);
  metrics.caller_share.record(100.0 * double(caller_chunks) /
                              double(job.chunk_count));
  if (job.error) std::rethrow_exception(job.error);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    ParallelJob* job = nullptr;
    std::size_t chunk = 0;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] {
        return stopping_ || !queue_.empty() || job_head_ != nullptr;
      });
      if (claim_chunk_locked(nullptr, job, chunk)) {
        // fall through with the claimed chunk
      } else if (!queue_.empty()) {
        task = std::move(queue_.front());
        queue_.pop_front();
      } else if (stopping_) {
        return;
      } else {
        continue;  // raced: another thread drained the work
      }
    }
    if (job != nullptr) {
      run_chunk(job, chunk);
    } else {
      task();  // exceptions propagate through the packaged_task's future
    }
  }
}

}  // namespace mpsim
