#include "common/thread_pool.hpp"

#include <algorithm>
#include <exception>

namespace mpsim {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t workers = worker_count();
  if (n == 1 || workers == 1) {
    body(0, n);
    return;
  }
  const std::size_t chunks = std::min(workers, n);
  const std::size_t chunk = (n + chunks - 1) / chunks;

  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    futures.push_back(submit([&body, begin, end] { body(begin, end); }));
  }

  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::worker_loop() {
  while (true) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // exceptions propagate through the packaged_task's future
  }
}

}  // namespace mpsim
