// Plain-text table formatting for the benchmark harnesses: every bench
// binary prints the rows/series of the paper figure it regenerates, and a
// consistent table format keeps EXPERIMENTS.md diffs readable.
#pragma once

#include <string>
#include <vector>

namespace mpsim {

/// Column-aligned text table with a header row.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Renders with column alignment and a separator under the header.
  std::string to_string() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision float formatting helpers used for table cells.
std::string fmt_fixed(double value, int digits = 3);
std::string fmt_sci(double value, int digits = 3);
std::string fmt_pct(double fraction01, int digits = 1);

}  // namespace mpsim
