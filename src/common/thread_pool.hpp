// A fixed-size worker pool used as the execution engine behind each
// simulated GPU device (gpusim) and the parallel CPU reference (mp).
//
// Two entry points:
//   * submit()       — enqueue an arbitrary task, get a std::future.
//   * parallel_for() — split [0, n) into contiguous chunks, run the body on
//                      all workers, and block until every chunk finished.
//                      This mirrors how a grid-stride kernel covers an index
//                      space with a bounded number of hardware threads.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace mpsim {

class ThreadPool {
 public:
  /// Creates `workers` threads; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return threads_.size(); }

  /// Enqueue a task for asynchronous execution.
  std::future<void> submit(std::function<void()> task);

  /// Run body(begin, end) over contiguous chunks covering [0, n); blocks
  /// until all chunks complete. `body` must be safe to call concurrently.
  /// Exceptions thrown by the body are rethrown (first one wins).
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  std::deque<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace mpsim
