// A fixed-size worker pool used as the execution engine behind each
// simulated GPU device (gpusim) and the parallel CPU reference (mp).
//
// Two entry points:
//   * submit()       — enqueue an arbitrary task, get a std::future.
//   * parallel_for() — split [0, n) into contiguous chunks, run the body on
//                      all workers, and block until every chunk finished.
//                      This mirrors how a grid-stride kernel covers an index
//                      space with a bounded number of hardware threads.
//
// parallel_for is the hot dispatch path (it runs three times per tile row),
// so it is allocation-free: the job descriptor lives on the caller's stack,
// is linked into an intrusive list under the pool mutex, and workers claim
// over-decomposed chunks from it with a single atomic fetch_add each.  The
// caller participates in chunk execution (so a busy pool can never deadlock
// a waiting caller) and blocks on the job's own latch-style completion
// condition variable.  Chunks are over-decomposed ~4x beyond the worker
// count so one expensive chunk (cost-skewed sort groups) cannot idle every
// other worker for the tail of the launch.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace mpsim {

class ThreadPool {
 public:
  /// Creates `workers` threads; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return threads_.size(); }

  /// Chunks per worker a parallel_for over-decomposes into, so claiming
  /// rebalances around cost-skewed chunks instead of pinning one oversized
  /// chunk per worker.
  static constexpr std::size_t kOverDecompose = 4;

  /// Index spaces up to this size run inline in the caller: the work is too
  /// small to amortise waking a worker.
  static constexpr std::size_t kInlineMax = 4;

  /// Enqueue a task for asynchronous execution.
  std::future<void> submit(std::function<void()> task);

  /// Run body(begin, end) over contiguous chunks covering [0, n); blocks
  /// until all chunks complete. `body` must be safe to call concurrently.
  /// Exceptions thrown by the body are rethrown (first one wins); the
  /// remaining chunks still run.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& body);

  /// parallel_for with a minimum chunk granularity: every chunk spans at
  /// least `min_grain` consecutive indices (the last one may be shorter).
  /// Used by callers whose items carry per-chunk setup cost (the
  /// diagonal-batched row executor re-derives its band geometry per
  /// chunk), and to keep an index space from being split finer than a
  /// correctness-relevant unit.  min_grain == 1 is exactly parallel_for.
  void parallel_for_grained(
      std::size_t n, std::size_t min_grain,
      const std::function<void(std::size_t, std::size_t)>& body);

 private:
  /// Stack-allocated parallel_for job: an atomic cursor hands out chunk
  /// indices, a countdown of unfinished chunks gates completion.
  struct ParallelJob {
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    std::size_t n = 0;
    std::size_t chunk_size = 0;
    std::size_t chunk_count = 0;
    std::atomic<std::size_t> next_chunk{0};
    std::atomic<std::size_t> unfinished{0};

    // Completion latch; also guards `error` (first one wins).
    std::mutex done_mutex;
    std::condition_variable done_cv;
    bool done = false;
    std::exception_ptr error;

    ParallelJob* next = nullptr;  ///< intrusive list link, guarded by pool
    bool linked = false;          ///< still reachable from the pool list
  };

  void worker_loop();

  /// Claims the next chunk of the head job (or of `own` when given).
  /// Returns false when no chunk is available.  Caller holds the lock;
  /// jobs whose chunks are all claimed are unlinked here, so a job pointer
  /// obtained under the lock while linked is always alive.
  bool claim_chunk_locked(ParallelJob* own, ParallelJob*& job,
                          std::size_t& chunk);

  void unlink_job_locked(ParallelJob* job);

  /// Runs one claimed chunk and performs completion accounting.  After the
  /// countdown hits zero the job may be destroyed by its owner; the job is
  /// not touched past that point.
  static void run_chunk(ParallelJob* job, std::size_t chunk);

  std::vector<std::thread> threads_;
  std::deque<std::packaged_task<void()>> queue_;
  ParallelJob* job_head_ = nullptr;
  ParallelJob* job_tail_ = nullptr;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace mpsim
