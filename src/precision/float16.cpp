#include "precision/float16.hpp"

#include <ostream>

namespace mpsim {

std::ostream& operator<<(std::ostream& os, float16 value) {
  return os << double(value);
}

}  // namespace mpsim
