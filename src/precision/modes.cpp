#include "precision/modes.hpp"

#include "common/error.hpp"

namespace mpsim {

std::string to_string(PrecisionMode mode) {
  switch (mode) {
    case PrecisionMode::FP64:
      return "FP64";
    case PrecisionMode::FP32:
      return "FP32";
    case PrecisionMode::FP16:
      return "FP16";
    case PrecisionMode::Mixed:
      return "Mixed";
    case PrecisionMode::FP16C:
      return "FP16C";
    case PrecisionMode::BF16:
      return "BF16";
    case PrecisionMode::TF32:
      return "TF32";
  }
  return "unknown";
}

PrecisionMode parse_precision_mode(const std::string& name) {
  if (name == "FP64" || name == "fp64") return PrecisionMode::FP64;
  if (name == "FP32" || name == "fp32") return PrecisionMode::FP32;
  if (name == "FP16" || name == "fp16") return PrecisionMode::FP16;
  if (name == "Mixed" || name == "mixed") return PrecisionMode::Mixed;
  if (name == "FP16C" || name == "fp16c") return PrecisionMode::FP16C;
  if (name == "BF16" || name == "bf16") return PrecisionMode::BF16;
  if (name == "TF32" || name == "tf32") return PrecisionMode::TF32;
  throw ConfigError("unknown precision mode '" + name +
                    "' (expected FP64|FP32|FP16|Mixed|FP16C|BF16|TF32)");
}

std::size_t storage_bytes(PrecisionMode mode) {
  switch (mode) {
    case PrecisionMode::FP64:
      return 8;
    case PrecisionMode::FP32:
      return 4;
    case PrecisionMode::FP16:
    case PrecisionMode::Mixed:
    case PrecisionMode::FP16C:
    case PrecisionMode::BF16:
      return 2;
    case PrecisionMode::TF32:
      return 4;  // stored as 32-bit words on hardware
  }
  return 8;
}

PrecisionMode escalated_precision(PrecisionMode mode) {
  switch (mode) {
    case PrecisionMode::FP16:
      return PrecisionMode::Mixed;
    case PrecisionMode::Mixed:
    case PrecisionMode::FP16C:
    case PrecisionMode::BF16:
    case PrecisionMode::TF32:
      return PrecisionMode::FP32;
    case PrecisionMode::FP32:
      return PrecisionMode::FP64;
    case PrecisionMode::FP64:
      return PrecisionMode::FP64;
  }
  return PrecisionMode::FP64;
}

double unit_roundoff(PrecisionMode mode) {
  switch (mode) {
    case PrecisionMode::FP64:
      return 0x1.0p-53;
    case PrecisionMode::FP32:
      return 0x1.0p-24;
    case PrecisionMode::FP16:
    case PrecisionMode::Mixed:
    case PrecisionMode::FP16C:
    case PrecisionMode::TF32:
      return 0x1.0p-11;
    case PrecisionMode::BF16:
      return 0x1.0p-8;
  }
  return 0x1.0p-53;
}

}  // namespace mpsim
