// Software IEEE 754 binary16 ("half precision").
//
// The paper's FP16 / Mixed / FP16C modes run on CUDA `__half` hardware.
// This environment has no GPU, so we reproduce the numerics exactly in
// software: a 16-bit storage type whose every arithmetic operation computes
// in a wider format (binary64, or binary32 on the F16C hardware path — both
// yield the identical result, see below) and rounds once to binary16 with
// round-to-nearest-even (matching per-operation `__half` arithmetic, which
// is correctly rounded).
//
// Correctness notes:
//  * double -> half conversion is implemented directly on the binary64
//    value, never via an intermediate float, to avoid double rounding;
//  * subnormal halves, signed zero, infinities and NaN all follow
//    IEEE 754-2019 binary16 semantics;
//  * because binary64 has 53 significand bits, the intermediate results of
//    +, -, * on 11-bit half significands are exact, so rounding once at the
//    end yields the correctly rounded half result;
//  * division and square root are inexact in binary64, but double rounding
//    is innocuous here by Figueroa's theorem (rounding p-bit operations
//    through a format with >= 2p+2 significand bits preserves correct
//    rounding; 53 >= 2*11+2), so every operator below is correctly
//    rounded.
//
// Fast paths: conversions dominate the emulated-FP16 kernels, so the hot
// half->double direction is a single load from a 65536-entry table and the
// double->half direction is a branch-free table-driven rounder
// (encode_fast).  Both tables are constexpr (built at compile time from
// the reference decode()/encode() semantics), so there is no init-order
// hazard and no per-call guard; decode()/encode() remain as the reference
// bit-twiddling implementations and the exhaustive equivalence tests in
// tests/test_float16.cpp pin the fast paths bit-exact against them.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <iosfwd>
#include <limits>

// Hardware half<->single conversion when the build enables it (-mf16c,
// see MPSIM_ENABLE_F16C).  Used in exactly two bit-safe places: decode
// (vcvtph2ps is an exact widening) and rounding the binary32 result of an
// arithmetic operator (innocuous double rounding, 24 >= 2*11+2).  General
// binary64 -> binary16 conversion still goes through the software tables —
// see the double-rounding note above encode_fast.
#if defined(__F16C__) && (defined(__x86_64__) || defined(__i386__))
#define MPSIM_FLOAT16_HW 1
#include <immintrin.h>
#endif

namespace mpsim {

class float16 {
 public:
  constexpr float16() = default;

  // Implicit construction from the numeric types the kernels mix with,
  // mirroring how __half converts; conversion rounds to nearest-even.
  // Defined after the conversion tables below (it routes through
  // encode_fast, which is bit-identical to encode()).
  float16(double value);                                   // NOLINT(google-explicit-constructor)
  float16(float value) : float16(double(value)) {}         // NOLINT(google-explicit-constructor)
  float16(int value) : float16(double(value)) {}           // NOLINT(google-explicit-constructor)
  float16(long value) : float16(double(value)) {}          // NOLINT(google-explicit-constructor)
  float16(long long value) : float16(double(value)) {}     // NOLINT(google-explicit-constructor)
  float16(unsigned value) : float16(double(value)) {}      // NOLINT(google-explicit-constructor)
  float16(unsigned long value) : float16(double(value)) {} // NOLINT(google-explicit-constructor)

  /// Reinterpret raw binary16 bits (no conversion).
  static constexpr float16 from_bits(std::uint16_t bits) {
    float16 h;
    h.bits_ = bits;
    return h;
  }

  constexpr std::uint16_t bits() const { return bits_; }

  /// Exact widening conversions (table lookup; defined after the tables).
  operator double() const;  // NOLINT(google-explicit-constructor)
  explicit operator float() const;

  // Arithmetic: each operation computes in a wider format and rounds once
  // to binary16.  The software path widens to binary64.  With F16C the
  // operands widen to binary32 (exact) and vcvtps2ph rounds the binary32
  // result; that double rounding is innocuous for the results of +, -, *,
  // / and sqrt on 11-bit significands (Figueroa: 24 >= 2*11+2), so both
  // paths produce the identical correctly rounded half — the exhaustive
  // operator tests in tests/test_float16.cpp pin them against each other.
  // finish_binop makes NaN results deterministic (see below), since the
  // compiler may commute the wide operation and x86 NaN propagation is
  // operand-order dependent.
#ifdef MPSIM_FLOAT16_HW
  friend float16 operator+(float16 a, float16 b) {
    return finish_binop(raw_arith(dec_arith(a) + dec_arith(b)), a, b);
  }
  friend float16 operator-(float16 a, float16 b) {
    return finish_binop(raw_arith(dec_arith(a) - dec_arith(b)), a, b);
  }
  friend float16 operator*(float16 a, float16 b) {
    return finish_binop(raw_arith(dec_arith(a) * dec_arith(b)), a, b);
  }
  friend float16 operator/(float16 a, float16 b) {
    return finish_binop(raw_arith(dec_arith(a) / dec_arith(b)), a, b);
  }
#else
  friend float16 operator+(float16 a, float16 b) {
    return finish_binop(float16(double(a) + double(b)), a, b);
  }
  friend float16 operator-(float16 a, float16 b) {
    return finish_binop(float16(double(a) - double(b)), a, b);
  }
  friend float16 operator*(float16 a, float16 b) {
    return finish_binop(float16(double(a) * double(b)), a, b);
  }
  friend float16 operator/(float16 a, float16 b) {
    return finish_binop(float16(double(a) / double(b)), a, b);
  }
#endif
  friend float16 operator-(float16 a) {
    return from_bits(std::uint16_t(a.bits_ ^ 0x8000u));
  }

  float16& operator+=(float16 o) { return *this = *this + o; }
  float16& operator-=(float16 o) { return *this = *this - o; }
  float16& operator*=(float16 o) { return *this = *this * o; }
  float16& operator/=(float16 o) { return *this = *this / o; }

  // Comparisons follow IEEE semantics.  operator< / > run on the bit
  // representation (they dominate the Bitonic sort kernel); the integer
  // mapping below is total-ordered over non-NaN halves with +0 == -0.
  friend bool operator==(float16 a, float16 b) {
    if (is_nan_bits(a.bits_) || is_nan_bits(b.bits_)) return false;
    if (((a.bits_ | b.bits_) & 0x7fffu) == 0) return true;  // +-0 == +-0
    return a.bits_ == b.bits_;
  }
  friend bool operator!=(float16 a, float16 b) {
    if (is_nan_bits(a.bits_) || is_nan_bits(b.bits_)) return true;
    return !(a == b);
  }
  friend bool operator<(float16 a, float16 b) {
    if (is_nan_bits(a.bits_) || is_nan_bits(b.bits_)) return false;
    return order_key(a.bits_) < order_key(b.bits_);
  }
  friend bool operator>(float16 a, float16 b) { return b < a; }
  friend bool operator<=(float16 a, float16 b) {
    if (is_nan_bits(a.bits_) || is_nan_bits(b.bits_)) return false;
    return order_key(a.bits_) <= order_key(b.bits_);
  }
  friend bool operator>=(float16 a, float16 b) { return b <= a; }

  /// Branch-free table-driven double -> binary16 rounding; bit-identical
  /// to encode() over every input (exhaustively tested) but with the
  /// per-exponent classification folded into three 2048-entry tables.
  /// This is what the float16(double) constructor — every emulated FP16
  /// operation's final rounding — actually runs.
  static std::uint16_t encode_fast(double value);

  /// Round a binary64 value to binary16 (round-to-nearest, ties-to-even).
  /// Reference implementation, directly on the binary64 bit representation
  /// — no intermediate binary32, hence no double rounding.  constexpr so
  /// the encode_fast tables can be checked against it at compile time.
  static constexpr std::uint16_t encode(double value) {
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(value);
    const auto sign = std::uint16_t((bits >> 48) & 0x8000u);
    const int exp_field = int((bits >> 52) & 0x7ff);
    const std::uint64_t mant = bits & 0xfffffffffffffULL;

    if (exp_field == 0x7ff) {  // inf or NaN
      return std::uint16_t(sign | 0x7c00u | (mant != 0 ? 0x0200u : 0u));
    }
    // Zeros, and binary64 subnormals (< 2^-1022, far below half's
    // underflow threshold), round to signed zero.
    if (exp_field == 0) return sign;

    int e = exp_field - 1023;                 // unbiased exponent
    std::uint64_t sig = (1ULL << 52) | mant;  // 53-bit significand

    if (e >= -14) {
      // Candidate normal half: keep 11 significand bits, round the rest.
      std::uint64_t keep = sig >> 42;
      const std::uint64_t rem = sig & ((1ULL << 42) - 1);
      const std::uint64_t half = 1ULL << 41;
      // Branchless round-to-nearest-even increment (the branchy form
      // mispredicts on real data and dominates emulated-FP16 kernels).
      keep += std::uint64_t((rem > half) | ((rem == half) & (keep & 1)));
      if (keep == (1ULL << 11)) {  // rounding carried into the exponent
        keep >>= 1;
        ++e;
      }
      if (e > 15) return std::uint16_t(sign | 0x7c00u);  // overflow -> inf
      return std::uint16_t(sign | std::uint16_t((e + 15) << 10) |
                           std::uint16_t(keep & 0x03ffu));
    }

    // Subnormal half: the value rounds to a multiple of 2^-24.
    if (e < -25) return sign;          // below half the smallest subnormal
    const int shift = 42 + (-14 - e);  // in [43, 53]
    std::uint64_t keep = sig >> shift;
    const std::uint64_t rem = sig & ((1ULL << shift) - 1);
    const std::uint64_t half = 1ULL << (shift - 1);
    keep += std::uint64_t((rem > half) | ((rem == half) & (keep & 1)));
    // keep == 1024 rounds up to the smallest normal; the encoding is
    // continuous there so sign | keep is still the right bit pattern.
    return std::uint16_t(sign | std::uint16_t(keep));
  }

  /// Exact binary16 -> binary64.  Reference implementation; the hot
  /// conversion operator reads the precomputed 65536-entry table instead
  /// (built from this function at compile time).
  static constexpr double decode(std::uint16_t bits) {
    const std::uint64_t sign = std::uint64_t(bits & 0x8000u) << 48;
    const int exp_field = (bits & 0x7c00u) >> 10;
    const std::uint64_t mant = bits & 0x03ffu;

    if (exp_field == 0x1f) {  // inf / NaN
      const std::uint64_t payload = mant == 0 ? 0 : (0x8ULL << 48);
      return std::bit_cast<double>(sign | (0x7ffULL << 52) | payload);
    }
    if (exp_field == 0) {
      // Subnormal or zero: exactly mant * 2^-24 (power-of-two multiply).
      const double magnitude = double(mant) * 0x1.0p-24;
      return (bits & 0x8000u) ? -magnitude : magnitude;
    }
    const auto exp_d = std::uint64_t(exp_field - 15 + 1023);
    return std::bit_cast<double>(sign | (exp_d << 52) | (mant << 42));
  }

  static constexpr float16 infinity() { return from_bits(0x7c00); }
  static constexpr float16 quiet_nan() { return from_bits(0x7e00); }
  static constexpr float16 max() { return from_bits(0x7bff); }      // 65504
  static constexpr float16 min_normal() { return from_bits(0x0400); }  // 2^-14
  static constexpr float16 denorm_min() { return from_bits(0x0001); }  // 2^-24
  /// Unit roundoff for round-to-nearest binary16 arithmetic.
  static constexpr double epsilon() { return 0x1.0p-11; }  // 2^-11 = half ulp of 1

  /// NaN classification on a raw half bit pattern.  Public for the SIMD
  /// layer (src/mp/simd/), which screens raw lanes for NaN before deciding
  /// between vector and emulated-operator execution.
  static constexpr bool nan_bits(std::uint16_t b) { return is_nan_bits(b); }

 private:
#ifdef MPSIM_FLOAT16_HW
  friend float16 sqrt(float16 x);

  /// Raw vcvtph2ps widening for arithmetic operands.  Unlike operator
  /// float it does NOT canonicalise NaN payloads — the payload rides
  /// through the binary32 operation and finish_binop canonicalises the
  /// result once, which is one never-taken branch per operation instead
  /// of one per operand decode.
  static float dec_arith(float16 h) { return _cvtsh_ss(h.bits_); }

  /// Round a binary32 arithmetic result to binary16 (RNE) with vcvtps2ph.
  /// Only valid for operation RESULTS whose operands were halves — an
  /// arbitrary binary64 value must go through encode_fast instead (see the
  /// double-rounding note above encode_fast).
  static float16 raw_arith(float result) {
    return from_bits(std::uint16_t(
        _cvtss_sh(result, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC)));
  }
#endif

  /// Pin NaN results of binary operations to a deterministic bit pattern:
  /// sign of the first NaN operand (quiet, canonical payload), or — for
  /// hardware-generated NaNs like inf - inf and 0 / 0 — the default
  /// QNaN's sign, which the ISA fixes.  Without this the result would
  /// depend on which operand the compiler placed in src1 of the SSE
  /// instruction (x86 propagates src1's NaN and the compiler may commute),
  /// so the software and F16C paths could disagree.  One predicted
  /// never-taken branch on clean data.
  static float16 finish_binop(float16 r, float16 a, float16 b) {
    if (is_nan_bits(r.bits_)) [[unlikely]] {
      std::uint16_t sign = std::uint16_t(r.bits_ & 0x8000u);
      if (is_nan_bits(a.bits_)) {
        sign = std::uint16_t(a.bits_ & 0x8000u);
      } else if (is_nan_bits(b.bits_)) {
        sign = std::uint16_t(b.bits_ & 0x8000u);
      }
      r.bits_ = std::uint16_t(sign | 0x7e00u);
    }
    return r;
  }
  static constexpr bool is_nan_bits(std::uint16_t b) {
    return (b & 0x7fffu) > 0x7c00u;
  }
  /// Monotonic integer image of the value ordering: negative halves map
  /// below positives, and +0 / -0 share the key 0x8000.
  static constexpr std::uint16_t order_key(std::uint16_t b) {
    if ((b & 0x7fffu) == 0) return 0x8000u;  // both zeros
    return (b & 0x8000u) ? std::uint16_t(~b)
                         : std::uint16_t(b | 0x8000u);
  }

  std::uint16_t bits_ = 0;
};

namespace detail {

/// Conversion tables of the float16 fast paths.
///
///  * decode[b]    — the binary64 value of half bit pattern b (all 65536).
///  * enc_shift[f] / enc_base[f] / enc_nan[f] — per binary64 exponent
///    field f: how many significand bits to shift away, the magnitude
///    bias to add, and the quiet bit to OR in for NaNs.  The half
///    encoding is continuous across the subnormal/normal boundary and
///    the implicit bit of a shifted normal significand lands on the
///    exponent field, so `base + (sig >> shift) + round` is the correct
///    RNE result in every class: rounding carries propagate from the
///    mantissa into the exponent (and from the top normal into infinity)
///    by plain integer addition.
struct Float16Tables {
  double decode[1 << 16] = {};
  std::uint16_t enc_base[1 << 11] = {};
  std::uint8_t enc_shift[1 << 11] = {};
  std::uint16_t enc_nan[1 << 11] = {};
};

constexpr Float16Tables make_float16_tables() {
  Float16Tables t;
  for (std::uint32_t b = 0; b < (1u << 16); ++b) {
    t.decode[b] = float16::decode(std::uint16_t(b));
  }
  for (std::uint32_t f = 0; f < (1u << 11); ++f) {
    const int e = int(f) - 1023;  // unbiased binary64 exponent
    std::uint8_t shift = 63;      // sig >> 63 == 0: rounds to signed zero
    std::uint16_t base = 0;
    std::uint16_t nan = 0;
    if (f == 0x7ff) {             // binary64 inf / NaN
      base = 0x7c00;
      nan = 0x0200;
    } else if (f != 0 && e > 15) {  // overflow -> inf
      base = 0x7c00;
    } else if (f != 0 && e >= -14) {  // candidate normal half
      shift = 42;
      base = std::uint16_t((e + 14) << 10);  // implicit bit folds in
    } else if (f != 0 && e >= -25) {  // subnormal half (or sticky zero)
      shift = std::uint8_t(28 - e);   // = 42 + (-14 - e), in [43, 53]
    }
    t.enc_shift[f] = shift;
    t.enc_base[f] = base;
    t.enc_nan[f] = nan;
  }
  return t;
}

inline constexpr Float16Tables kFloat16Tables = make_float16_tables();

}  // namespace detail

#ifdef MPSIM_FLOAT16_HW

// Hardware decode: vcvtph2ps is an exact widening, identical to the table
// for every non-NaN pattern.  decode() canonicalises NaN payloads where
// the hardware would preserve them, so NaNs (only reachable via fault
// injection or overflow) branch to the canonical constant — never taken
// on clean data, perfectly predicted.
inline float16::operator double() const {
  if (is_nan_bits(bits_)) {
    return std::bit_cast<double>((std::uint64_t(bits_ & 0x8000u) << 48) |
                                 0x7ff8000000000000ULL);
  }
  return double(_cvtsh_ss(bits_));
}

inline float16::operator float() const {
  if (is_nan_bits(bits_)) {
    return std::bit_cast<float>((std::uint32_t(bits_ & 0x8000u) << 16) |
                                0x7fc00000u);
  }
  return _cvtsh_ss(bits_);
}

#else  // software decode: the 65536-entry constexpr table

inline float16::operator double() const {
  return detail::kFloat16Tables.decode[bits_];
}

inline float16::operator float() const {
  return float(detail::kFloat16Tables.decode[bits_]);
}

#endif  // MPSIM_FLOAT16_HW

// Note: double -> half ALWAYS takes the table rounder below, never the
// hardware vcvtps2ph.  The hardware converts binary32, and rounding an
// arbitrary binary64 value through binary32 first is NOT innocuous double
// rounding (a value epsilon away from a half-rounding midpoint collapses
// onto the midpoint in binary32 and then ties the wrong way).  Only the
// arithmetic operators may use the hardware instruction, because there the
// binary32 value is itself the correctly rounded result of an elementary
// operation on half operands, where Figueroa's 2p+2 theorem applies.
inline std::uint16_t float16::encode_fast(double value) {
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(value);
  const auto f = unsigned(bits >> 52) & 0x7ffu;
  const auto sign = std::uint16_t((bits >> 48) & 0x8000u);
  const std::uint64_t mant = bits & 0xfffffffffffffULL;
  // The implicit bit is OR'd in unconditionally: for the classes where it
  // is wrong (zeros, binary64 subnormals, inf/NaN) the table entry shifts
  // the whole significand away, so it never reaches the result.
  const std::uint64_t sig = mant | (1ULL << 52);
  const unsigned shift = detail::kFloat16Tables.enc_shift[f];
  const std::uint64_t keep = sig >> shift;
  const std::uint64_t rem = sig & ((1ULL << shift) - 1ULL);
  const std::uint64_t half = 1ULL << (shift - 1);
  const std::uint64_t round =
      std::uint64_t((rem > half) | ((rem == half) & (keep & 1)));
  std::uint32_t mag = std::uint32_t(detail::kFloat16Tables.enc_base[f]) +
                      std::uint32_t(keep + round);
  mag |= std::uint32_t(detail::kFloat16Tables.enc_nan[f]) &
         std::uint32_t(-std::int32_t(mant != 0));
  return std::uint16_t(sign | mag);
}

inline float16::float16(double value) : bits_(encode_fast(value)) {}

#ifdef MPSIM_FLOAT16_HW
inline float16 sqrt(float16 x) {
  // sqrt of an 11-bit significand rounded in binary32 then binary16 is
  // correctly rounded (24 >= 2*11+2).  finish_binop(r, x, x) canonicalises
  // a NaN result exactly like the software path: operand NaN keeps its
  // sign, sqrt-of-negative yields the ISA-fixed default QNaN sign.
  return float16::finish_binop(
      float16::raw_arith(std::sqrt(float16::dec_arith(x))), x, x);
}
#else
inline float16 sqrt(float16 x) { return float16(std::sqrt(double(x))); }
#endif
inline float16 abs(float16 x) {
  return float16::from_bits(std::uint16_t(x.bits() & 0x7fffu));
}
inline float16 fma(float16 a, float16 b, float16 c) {
  // Fused multiply-add: exact product + addend in binary64, single rounding.
  return float16(double(a) * double(b) + double(c));
}
inline bool isnan(float16 x) { return std::isnan(double(x)); }
inline bool isinf(float16 x) { return std::isinf(double(x)); }
inline bool isfinite(float16 x) { return std::isfinite(double(x)); }

std::ostream& operator<<(std::ostream& os, float16 value);

}  // namespace mpsim

// numeric_limits so generic code (sort padding, reductions) can treat
// float16 like the built-in floating types.
template <>
class std::numeric_limits<mpsim::float16> {
 public:
  static constexpr bool is_specialized = true;
  static constexpr bool is_signed = true;
  static constexpr bool is_integer = false;
  static constexpr bool is_exact = false;
  static constexpr bool has_infinity = true;
  static constexpr bool has_quiet_NaN = true;
  static constexpr int digits = 11;
  static constexpr int max_exponent = 16;
  static constexpr int min_exponent = -13;

  static constexpr mpsim::float16 infinity() {
    return mpsim::float16::infinity();
  }
  static constexpr mpsim::float16 quiet_NaN() {
    return mpsim::float16::quiet_nan();
  }
  static constexpr mpsim::float16 max() { return mpsim::float16::max(); }
  static constexpr mpsim::float16 lowest() {
    return mpsim::float16::from_bits(0xfbff);  // -65504
  }
  static constexpr mpsim::float16 min() {
    return mpsim::float16::min_normal();
  }
  static constexpr mpsim::float16 denorm_min() {
    return mpsim::float16::denorm_min();
  }
  static constexpr mpsim::float16 epsilon() {
    return mpsim::float16::from_bits(0x1400);  // 2^-10
  }
};
