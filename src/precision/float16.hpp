// Software IEEE 754 binary16 ("half precision").
//
// The paper's FP16 / Mixed / FP16C modes run on CUDA `__half` hardware.
// This environment has no GPU, so we reproduce the numerics exactly in
// software: a 16-bit storage type whose every arithmetic operation computes
// in binary64 and rounds the result to binary16 with round-to-nearest-even
// (matching per-operation `__half` arithmetic, which is correctly rounded).
//
// Correctness notes:
//  * double -> half conversion is implemented directly on the binary64
//    value, never via an intermediate float, to avoid double rounding;
//  * subnormal halves, signed zero, infinities and NaN all follow
//    IEEE 754-2019 binary16 semantics;
//  * because binary64 has 53 significand bits, the intermediate results of
//    +, -, * on 11-bit half significands are exact, so rounding once at the
//    end yields the correctly rounded half result;
//  * division and square root are inexact in binary64, but double rounding
//    is innocuous here by Figueroa's theorem (rounding p-bit operations
//    through a format with >= 2p+2 significand bits preserves correct
//    rounding; 53 >= 2*11+2), so every operator below is correctly
//    rounded.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <iosfwd>
#include <limits>

namespace mpsim {

class float16 {
 public:
  constexpr float16() = default;

  // Implicit construction from the numeric types the kernels mix with,
  // mirroring how __half converts; conversion rounds to nearest-even.
  float16(double value) : bits_(encode(value)) {}          // NOLINT(google-explicit-constructor)
  float16(float value) : float16(double(value)) {}         // NOLINT(google-explicit-constructor)
  float16(int value) : float16(double(value)) {}           // NOLINT(google-explicit-constructor)
  float16(long value) : float16(double(value)) {}          // NOLINT(google-explicit-constructor)
  float16(long long value) : float16(double(value)) {}     // NOLINT(google-explicit-constructor)
  float16(unsigned value) : float16(double(value)) {}      // NOLINT(google-explicit-constructor)
  float16(unsigned long value) : float16(double(value)) {} // NOLINT(google-explicit-constructor)

  /// Reinterpret raw binary16 bits (no conversion).
  static constexpr float16 from_bits(std::uint16_t bits) {
    float16 h;
    h.bits_ = bits;
    return h;
  }

  constexpr std::uint16_t bits() const { return bits_; }

  /// Exact widening conversions.
  operator double() const { return decode(bits_); }  // NOLINT(google-explicit-constructor)
  explicit operator float() const { return float(decode(bits_)); }

  // Arithmetic: compute in binary64, round once to binary16.
  friend float16 operator+(float16 a, float16 b) {
    return float16(double(a) + double(b));
  }
  friend float16 operator-(float16 a, float16 b) {
    return float16(double(a) - double(b));
  }
  friend float16 operator*(float16 a, float16 b) {
    return float16(double(a) * double(b));
  }
  friend float16 operator/(float16 a, float16 b) {
    return float16(double(a) / double(b));
  }
  friend float16 operator-(float16 a) {
    return from_bits(std::uint16_t(a.bits_ ^ 0x8000u));
  }

  float16& operator+=(float16 o) { return *this = *this + o; }
  float16& operator-=(float16 o) { return *this = *this - o; }
  float16& operator*=(float16 o) { return *this = *this * o; }
  float16& operator/=(float16 o) { return *this = *this / o; }

  // Comparisons follow IEEE semantics.  operator< / > run on the bit
  // representation (they dominate the Bitonic sort kernel); the integer
  // mapping below is total-ordered over non-NaN halves with +0 == -0.
  friend bool operator==(float16 a, float16 b) {
    if (is_nan_bits(a.bits_) || is_nan_bits(b.bits_)) return false;
    if (((a.bits_ | b.bits_) & 0x7fffu) == 0) return true;  // +-0 == +-0
    return a.bits_ == b.bits_;
  }
  friend bool operator!=(float16 a, float16 b) {
    if (is_nan_bits(a.bits_) || is_nan_bits(b.bits_)) return true;
    return !(a == b);
  }
  friend bool operator<(float16 a, float16 b) {
    if (is_nan_bits(a.bits_) || is_nan_bits(b.bits_)) return false;
    return order_key(a.bits_) < order_key(b.bits_);
  }
  friend bool operator>(float16 a, float16 b) { return b < a; }
  friend bool operator<=(float16 a, float16 b) {
    if (is_nan_bits(a.bits_) || is_nan_bits(b.bits_)) return false;
    return order_key(a.bits_) <= order_key(b.bits_);
  }
  friend bool operator>=(float16 a, float16 b) { return b <= a; }

  /// Round a binary64 value to binary16 (round-to-nearest, ties-to-even).
  /// Implemented directly on the binary64 bit representation — no
  /// intermediate binary32, hence no double rounding — and inline because
  /// it sits on the hot path of every emulated FP16 operation.
  static std::uint16_t encode(double value) {
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(value);
    const auto sign = std::uint16_t((bits >> 48) & 0x8000u);
    const int exp_field = int((bits >> 52) & 0x7ff);
    const std::uint64_t mant = bits & 0xfffffffffffffULL;

    if (exp_field == 0x7ff) {  // inf or NaN
      return std::uint16_t(sign | 0x7c00u | (mant != 0 ? 0x0200u : 0u));
    }
    // Zeros, and binary64 subnormals (< 2^-1022, far below half's
    // underflow threshold), round to signed zero.
    if (exp_field == 0) return sign;

    int e = exp_field - 1023;                 // unbiased exponent
    std::uint64_t sig = (1ULL << 52) | mant;  // 53-bit significand

    if (e >= -14) {
      // Candidate normal half: keep 11 significand bits, round the rest.
      std::uint64_t keep = sig >> 42;
      const std::uint64_t rem = sig & ((1ULL << 42) - 1);
      const std::uint64_t half = 1ULL << 41;
      // Branchless round-to-nearest-even increment (the branchy form
      // mispredicts on real data and dominates emulated-FP16 kernels).
      keep += std::uint64_t((rem > half) | ((rem == half) & (keep & 1)));
      if (keep == (1ULL << 11)) {  // rounding carried into the exponent
        keep >>= 1;
        ++e;
      }
      if (e > 15) return std::uint16_t(sign | 0x7c00u);  // overflow -> inf
      return std::uint16_t(sign | std::uint16_t((e + 15) << 10) |
                           std::uint16_t(keep & 0x03ffu));
    }

    // Subnormal half: the value rounds to a multiple of 2^-24.
    if (e < -25) return sign;          // below half the smallest subnormal
    const int shift = 42 + (-14 - e);  // in [43, 53]
    std::uint64_t keep = sig >> shift;
    const std::uint64_t rem = sig & ((1ULL << shift) - 1);
    const std::uint64_t half = 1ULL << (shift - 1);
    keep += std::uint64_t((rem > half) | ((rem == half) & (keep & 1)));
    // keep == 1024 rounds up to the smallest normal; the encoding is
    // continuous there so sign | keep is still the right bit pattern.
    return std::uint16_t(sign | std::uint16_t(keep));
  }

  /// Exact binary16 -> binary64.
  static double decode(std::uint16_t bits) {
    const std::uint64_t sign = std::uint64_t(bits & 0x8000u) << 48;
    const int exp_field = (bits & 0x7c00u) >> 10;
    const std::uint64_t mant = bits & 0x03ffu;

    if (exp_field == 0x1f) {  // inf / NaN
      const std::uint64_t payload = mant == 0 ? 0 : (0x8ULL << 48);
      return std::bit_cast<double>(sign | (0x7ffULL << 52) | payload);
    }
    if (exp_field == 0) {
      // Subnormal or zero: exactly mant * 2^-24 (power-of-two multiply).
      const double magnitude = double(mant) * 0x1.0p-24;
      return (bits & 0x8000u) ? -magnitude : magnitude;
    }
    const auto exp_d = std::uint64_t(exp_field - 15 + 1023);
    return std::bit_cast<double>(sign | (exp_d << 52) | (mant << 42));
  }

  static constexpr float16 infinity() { return from_bits(0x7c00); }
  static constexpr float16 quiet_nan() { return from_bits(0x7e00); }
  static constexpr float16 max() { return from_bits(0x7bff); }      // 65504
  static constexpr float16 min_normal() { return from_bits(0x0400); }  // 2^-14
  static constexpr float16 denorm_min() { return from_bits(0x0001); }  // 2^-24
  /// Unit roundoff for round-to-nearest binary16 arithmetic.
  static constexpr double epsilon() { return 0x1.0p-11; }  // 2^-11 = half ulp of 1

 private:
  static constexpr bool is_nan_bits(std::uint16_t b) {
    return (b & 0x7fffu) > 0x7c00u;
  }
  /// Monotonic integer image of the value ordering: negative halves map
  /// below positives, and +0 / -0 share the key 0x8000.
  static constexpr std::uint16_t order_key(std::uint16_t b) {
    if ((b & 0x7fffu) == 0) return 0x8000u;  // both zeros
    return (b & 0x8000u) ? std::uint16_t(~b)
                         : std::uint16_t(b | 0x8000u);
  }

  std::uint16_t bits_ = 0;
};

inline float16 sqrt(float16 x) { return float16(std::sqrt(double(x))); }
inline float16 abs(float16 x) {
  return float16::from_bits(std::uint16_t(x.bits() & 0x7fffu));
}
inline float16 fma(float16 a, float16 b, float16 c) {
  // Fused multiply-add: exact product + addend in binary64, single rounding.
  return float16(double(a) * double(b) + double(c));
}
inline bool isnan(float16 x) { return std::isnan(double(x)); }
inline bool isinf(float16 x) { return std::isinf(double(x)); }
inline bool isfinite(float16 x) { return std::isfinite(double(x)); }

std::ostream& operator<<(std::ostream& os, float16 value);

}  // namespace mpsim

// numeric_limits so generic code (sort padding, reductions) can treat
// float16 like the built-in floating types.
template <>
class std::numeric_limits<mpsim::float16> {
 public:
  static constexpr bool is_specialized = true;
  static constexpr bool is_signed = true;
  static constexpr bool is_integer = false;
  static constexpr bool is_exact = false;
  static constexpr bool has_infinity = true;
  static constexpr bool has_quiet_NaN = true;
  static constexpr int digits = 11;
  static constexpr int max_exponent = 16;
  static constexpr int min_exponent = -13;

  static constexpr mpsim::float16 infinity() {
    return mpsim::float16::infinity();
  }
  static constexpr mpsim::float16 quiet_NaN() {
    return mpsim::float16::quiet_nan();
  }
  static constexpr mpsim::float16 max() { return mpsim::float16::max(); }
  static constexpr mpsim::float16 lowest() {
    return mpsim::float16::from_bits(0xfbff);  // -65504
  }
  static constexpr mpsim::float16 min() {
    return mpsim::float16::min_normal();
  }
  static constexpr mpsim::float16 denorm_min() {
    return mpsim::float16::denorm_min();
  }
  static constexpr mpsim::float16 epsilon() {
    return mpsim::float16::from_bits(0x1400);  // 2^-10
  }
};
