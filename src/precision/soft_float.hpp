// Generic software reduced-precision floating-point type.
//
// The paper's conclusion names TF32 and BFLOAT16 as the natural follow-up
// precision modes (§VII).  Both are truncated-binary32 formats:
//
//   bfloat16: 1 sign, 8 exponent, 7 mantissa bits  (same range as FP32)
//   TF32:     1 sign, 8 exponent, 10 mantissa bits (FP16's resolution,
//             FP32's range; A100 tensor-core input format)
//
// soft_float<MantissaBits, ExponentBits> implements round-to-nearest-even
// conversion from binary64 directly on the bit representation (the same
// algorithm as mpsim::float16, parameterised), with subnormals, signed
// zero, infinities and NaN.  Arithmetic computes in binary64 and rounds
// once — exact for +, -, * since 2*(MantissaBits+1) + carry fits well
// inside binary64's 53-bit significand for every format used here.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

namespace mpsim {

template <int kMantissaBits, int kExponentBits>
class soft_float {
  static_assert(kMantissaBits >= 1 && kMantissaBits <= 23);
  static_assert(kExponentBits >= 2 && kExponentBits <= 10);

 public:
  static constexpr int kBias = (1 << (kExponentBits - 1)) - 1;
  static constexpr int kExpMax = (1 << kExponentBits) - 1;  // inf/NaN field
  static constexpr std::uint32_t kMantMask = (1u << kMantissaBits) - 1;
  static constexpr std::uint32_t kSignBit =
      1u << (kMantissaBits + kExponentBits);

  constexpr soft_float() = default;
  soft_float(double value) : bits_(encode(value)) {}  // NOLINT
  soft_float(float value) : soft_float(double(value)) {}  // NOLINT
  soft_float(int value) : soft_float(double(value)) {}    // NOLINT
  soft_float(long value) : soft_float(double(value)) {}   // NOLINT
  soft_float(unsigned long value) : soft_float(double(value)) {}  // NOLINT

  static constexpr soft_float from_bits(std::uint32_t bits) {
    soft_float f;
    f.bits_ = bits;
    return f;
  }
  constexpr std::uint32_t bits() const { return bits_; }

  operator double() const { return decode(bits_); }  // NOLINT
  explicit operator float() const { return float(decode(bits_)); }

  friend soft_float operator+(soft_float a, soft_float b) {
    return soft_float(double(a) + double(b));
  }
  friend soft_float operator-(soft_float a, soft_float b) {
    return soft_float(double(a) - double(b));
  }
  friend soft_float operator*(soft_float a, soft_float b) {
    return soft_float(double(a) * double(b));
  }
  friend soft_float operator/(soft_float a, soft_float b) {
    return soft_float(double(a) / double(b));
  }
  friend soft_float operator-(soft_float a) {
    return from_bits(a.bits_ ^ kSignBit);
  }

  friend bool operator==(soft_float a, soft_float b) {
    return double(a) == double(b);
  }
  friend bool operator!=(soft_float a, soft_float b) {
    return double(a) != double(b);
  }
  friend bool operator<(soft_float a, soft_float b) {
    return double(a) < double(b);
  }
  friend bool operator>(soft_float a, soft_float b) {
    return double(a) > double(b);
  }
  friend bool operator<=(soft_float a, soft_float b) {
    return double(a) <= double(b);
  }
  friend bool operator>=(soft_float a, soft_float b) {
    return double(a) >= double(b);
  }

  /// Round-to-nearest-even binary64 -> this format.
  static std::uint32_t encode(double value) {
    const std::uint64_t dbits = std::bit_cast<std::uint64_t>(value);
    const std::uint32_t sign = (dbits >> 63) ? kSignBit : 0u;
    const int exp_field = int((dbits >> 52) & 0x7ff);
    const std::uint64_t mant = dbits & 0xfffffffffffffULL;

    if (exp_field == 0x7ff) {  // inf or NaN
      const std::uint32_t payload =
          mant != 0 ? (1u << (kMantissaBits - 1)) : 0u;
      return sign | (std::uint32_t(kExpMax) << kMantissaBits) | payload;
    }
    if (exp_field == 0) return sign;  // zero / binary64 subnormal

    int e = exp_field - 1023;
    std::uint64_t sig = (1ULL << 52) | mant;

    const int emin = 1 - kBias;  // smallest normal exponent
    if (e >= emin) {
      const int shift = 52 - kMantissaBits;
      std::uint64_t keep = sig >> shift;
      const std::uint64_t rem = sig & ((1ULL << shift) - 1);
      const std::uint64_t half = 1ULL << (shift - 1);
      keep += std::uint64_t((rem > half) | ((rem == half) & (keep & 1)));
      if (keep == (1ULL << (kMantissaBits + 1))) {
        keep >>= 1;
        ++e;
      }
      if (e > kBias) {  // overflow -> inf
        return sign | (std::uint32_t(kExpMax) << kMantissaBits);
      }
      return sign |
             (std::uint32_t(e + kBias) << kMantissaBits) |
             (std::uint32_t(keep) & kMantMask);
    }

    // Subnormal target: multiples of 2^(emin - kMantissaBits).
    const int sub_shift = (52 - kMantissaBits) + (emin - e);
    if (sub_shift > 52 + 1) return sign;  // below half the smallest subnormal
    std::uint64_t keep = sig >> sub_shift;
    const std::uint64_t rem = sig & ((1ULL << sub_shift) - 1);
    const std::uint64_t half = 1ULL << (sub_shift - 1);
    keep += std::uint64_t((rem > half) | ((rem == half) & (keep & 1)));
    // A carry into the normal range keeps a continuous encoding.
    return sign | std::uint32_t(keep);
  }

  /// Exact conversion to binary64.
  static double decode(std::uint32_t bits) {
    const bool negative = (bits & kSignBit) != 0;
    const int exp_field = int((bits >> kMantissaBits) & std::uint32_t(kExpMax));
    const std::uint32_t mant = bits & kMantMask;

    double magnitude;
    if (exp_field == kExpMax) {
      magnitude = mant == 0 ? std::numeric_limits<double>::infinity()
                            : std::numeric_limits<double>::quiet_NaN();
    } else if (exp_field == 0) {
      magnitude = std::ldexp(double(mant), 1 - kBias - kMantissaBits);
    } else {
      magnitude = std::ldexp(double((1u << kMantissaBits) | mant),
                             exp_field - kBias - kMantissaBits);
    }
    return negative ? -magnitude : magnitude;
  }

  static constexpr soft_float infinity() {
    return from_bits(std::uint32_t(kExpMax) << kMantissaBits);
  }
  static constexpr soft_float quiet_nan() {
    return from_bits((std::uint32_t(kExpMax) << kMantissaBits) |
                     (1u << (kMantissaBits - 1)));
  }
  /// Unit roundoff: 2^-(MantissaBits + 1).
  static constexpr double epsilon() {
    return 1.0 / double(2ULL << kMantissaBits);
  }

 private:
  std::uint32_t bits_ = 0;
};

/// Google Brain bfloat16: binary32 range with an 8-bit significand.
using bfloat16 = soft_float<7, 8>;
/// NVIDIA TensorFloat-32: binary32 range with binary16's significand.
using tfloat32 = soft_float<10, 8>;

template <int M, int E>
soft_float<M, E> sqrt(soft_float<M, E> x) {
  return soft_float<M, E>(std::sqrt(double(x)));
}
template <int M, int E>
soft_float<M, E> abs(soft_float<M, E> x) {
  return soft_float<M, E>::from_bits(x.bits() &
                                     ~soft_float<M, E>::kSignBit);
}
template <int M, int E>
bool isnan(soft_float<M, E> x) {
  return std::isnan(double(x));
}
template <int M, int E>
bool isinf(soft_float<M, E> x) {
  return std::isinf(double(x));
}

}  // namespace mpsim

// numeric_limits so the kernels' generic padding/reduction code works.
template <int M, int E>
class std::numeric_limits<mpsim::soft_float<M, E>> {
 public:
  static constexpr bool is_specialized = true;
  static constexpr bool has_infinity = true;
  static constexpr int digits = M + 1;
  static constexpr mpsim::soft_float<M, E> infinity() {
    return mpsim::soft_float<M, E>::infinity();
  }
  static constexpr mpsim::soft_float<M, E> quiet_NaN() {
    return mpsim::soft_float<M, E>::quiet_nan();
  }
};
