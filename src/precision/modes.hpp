// The five precision modes of the paper (§III-C) and their static traits.
//
//   FP64  — binary64 storage and arithmetic everywhere (reference).
//   FP32  — binary32 storage and arithmetic everywhere.
//   FP16  — binary16 storage and arithmetic everywhere (fastest, least
//           accurate).
//   Mixed — binary16 main loop, but the precalculation kernel computes in
//           binary32.
//   FP16C — like Mixed, additionally using Kahan compensated summation for
//           the cumulative sums inside precalculation.
//
// Kernels are templated on a Traits struct so the mode choice is a
// compile-time decision per instantiation; run-time dispatch happens once
// at the public API boundary.
#pragma once

#include <cstddef>
#include <string>

#include "precision/float16.hpp"
#include "precision/soft_float.hpp"

namespace mpsim {

/// The paper's five modes (§III-C) plus the two extension formats its
/// conclusion proposes (§VII): BFLOAT16 and TF32.
enum class PrecisionMode { FP64, FP32, FP16, Mixed, FP16C, BF16, TF32 };

/// The paper's modes, in the order its figures list them.
inline constexpr PrecisionMode kAllPrecisionModes[] = {
    PrecisionMode::FP64, PrecisionMode::FP32, PrecisionMode::FP16,
    PrecisionMode::Mixed, PrecisionMode::FP16C};

/// Paper modes plus the future-work formats.
inline constexpr PrecisionMode kExtendedPrecisionModes[] = {
    PrecisionMode::FP64,  PrecisionMode::FP32, PrecisionMode::FP16,
    PrecisionMode::Mixed, PrecisionMode::FP16C, PrecisionMode::BF16,
    PrecisionMode::TF32};

std::string to_string(PrecisionMode mode);
PrecisionMode parse_precision_mode(const std::string& name);

/// Bytes used to store one matrix-profile scalar in the given mode
/// (drives the roofline performance model: the workload is memory-bound,
/// so modelled kernel time scales with storage width).
std::size_t storage_bytes(PrecisionMode mode);

/// Unit roundoff of the mode's main-loop arithmetic (2^-53 / 2^-24 / 2^-11).
double unit_roundoff(PrecisionMode mode);

/// One rung up the precision-escalation ladder used by the resilient
/// scheduler's numerical self-healing: FP16 → Mixed → FP32 → FP64; the
/// compensated / alternative formats (FP16C, BF16, TF32) escalate to FP32.
/// FP64 is the top rung and returns itself.
PrecisionMode escalated_precision(PrecisionMode mode);

/// Compile-time traits consumed by the templated kernels.
template <PrecisionMode M>
struct PrecisionTraits;

template <>
struct PrecisionTraits<PrecisionMode::FP64> {
  using Storage = double;       // element type of QT, df, dg, D, P
  using Compute = double;       // arithmetic type of the main loop
  using PrecalcCompute = double;  // arithmetic type of precalculation
  static constexpr bool kCompensatedPrecalc = false;
  static constexpr PrecisionMode kMode = PrecisionMode::FP64;
};

template <>
struct PrecisionTraits<PrecisionMode::FP32> {
  using Storage = float;
  using Compute = float;
  using PrecalcCompute = float;
  static constexpr bool kCompensatedPrecalc = false;
  static constexpr PrecisionMode kMode = PrecisionMode::FP32;
};

template <>
struct PrecisionTraits<PrecisionMode::FP16> {
  using Storage = float16;
  using Compute = float16;
  using PrecalcCompute = float16;
  static constexpr bool kCompensatedPrecalc = false;
  static constexpr PrecisionMode kMode = PrecisionMode::FP16;
};

template <>
struct PrecisionTraits<PrecisionMode::Mixed> {
  using Storage = float16;
  using Compute = float16;
  using PrecalcCompute = float;  // higher-precision precalculation
  static constexpr bool kCompensatedPrecalc = false;
  static constexpr PrecisionMode kMode = PrecisionMode::Mixed;
};

template <>
struct PrecisionTraits<PrecisionMode::FP16C> {
  using Storage = float16;
  using Compute = float16;
  using PrecalcCompute = float;  // higher precision + Kahan compensation
  static constexpr bool kCompensatedPrecalc = true;
  static constexpr PrecisionMode kMode = PrecisionMode::FP16C;
};

template <>
struct PrecisionTraits<PrecisionMode::BF16> {
  // bfloat16 everywhere: binary32's exponent range (no overflow in the
  // cumulative sums) but only 8 significand bits.
  using Storage = bfloat16;
  using Compute = bfloat16;
  using PrecalcCompute = bfloat16;
  static constexpr bool kCompensatedPrecalc = false;
  static constexpr PrecisionMode kMode = PrecisionMode::BF16;
};

template <>
struct PrecisionTraits<PrecisionMode::TF32> {
  // TF32: binary16's resolution with binary32's range; stored in 32 bits
  // as on A100 hardware, so it saves compute width but not memory.
  using Storage = tfloat32;
  using Compute = tfloat32;
  using PrecalcCompute = tfloat32;
  static constexpr bool kCompensatedPrecalc = false;
  static constexpr PrecisionMode kMode = PrecisionMode::TF32;
};

/// Invokes `fn.template operator()<Traits>()` for the runtime mode value.
template <typename Fn>
decltype(auto) dispatch_precision(PrecisionMode mode, Fn&& fn) {
  switch (mode) {
    case PrecisionMode::FP64:
      return fn.template operator()<PrecisionTraits<PrecisionMode::FP64>>();
    case PrecisionMode::FP32:
      return fn.template operator()<PrecisionTraits<PrecisionMode::FP32>>();
    case PrecisionMode::FP16:
      return fn.template operator()<PrecisionTraits<PrecisionMode::FP16>>();
    case PrecisionMode::Mixed:
      return fn.template operator()<PrecisionTraits<PrecisionMode::Mixed>>();
    case PrecisionMode::FP16C:
      return fn.template operator()<PrecisionTraits<PrecisionMode::FP16C>>();
    case PrecisionMode::BF16:
      return fn.template operator()<PrecisionTraits<PrecisionMode::BF16>>();
    case PrecisionMode::TF32:
    default:
      return fn.template operator()<PrecisionTraits<PrecisionMode::TF32>>();
  }
}

}  // namespace mpsim
