// Kahan compensated summation (Kahan 1965), used by the FP16C precision
// mode in the precalculation kernel to stop cancellation errors in the
// cumulative sums from propagating into the main iteration, per §III-C of
// the paper.
//
// The accumulator is templated on the arithmetic type so the same code
// path serves FP64/FP32 reference accumulation and the compensated FP32
// accumulation inside FP16C.
#pragma once

namespace mpsim {

template <typename T>
class KahanAccumulator {
 public:
  KahanAccumulator() = default;
  explicit KahanAccumulator(T initial) : sum_(initial) {}

  /// Adds `value`, tracking the low-order bits lost by the addition.
  void add(T value) {
    const T y = value - compensation_;
    const T t = sum_ + y;
    compensation_ = (t - sum_) - y;
    sum_ = t;
  }

  T value() const { return sum_; }
  T compensation() const { return compensation_; }

  void reset(T initial = T(0)) {
    sum_ = initial;
    compensation_ = T(0);
  }

 private:
  T sum_{};
  T compensation_{};
};

/// Plain (uncompensated) accumulator with the same interface, so the
/// precalculation kernel can be templated on the accumulation policy.
template <typename T>
class PlainAccumulator {
 public:
  PlainAccumulator() = default;
  explicit PlainAccumulator(T initial) : sum_(initial) {}

  void add(T value) { sum_ = sum_ + value; }
  T value() const { return sum_; }
  void reset(T initial = T(0)) { sum_ = initial; }

 private:
  T sum_{};
};

}  // namespace mpsim
