// Public configuration and result types of the matrix-profile library.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "precision/modes.hpp"

namespace mpsim::mp {

/// Tile-to-device assignment policy.  The paper uses static Round-robin
/// (Pseudocode 2); LPT (longest processing time first) mitigates the
/// imbalance it observes at odd device counts.
enum class TileAssignment { kRoundRobin, kLpt };

/// User-facing configuration of one matrix-profile computation
/// (the knobs of Pseudocode 1 + Pseudocode 2).
struct MatrixProfileConfig {
  std::size_t window = 64;     ///< m — segment (subsequence) length
  PrecisionMode mode = PrecisionMode::FP64;

  int tiles = 1;               ///< n_tiles of the multi-tile algorithm
  int devices = 1;             ///< n_gpu
  std::string machine = "A100";  ///< simulated device spec (V100|A100)
  int streams_per_device = 16;   ///< paper uses at most 16 CUDA streams
  TileAssignment assignment = TileAssignment::kRoundRobin;

  /// Trivial-match exclusion radius for self-joins (0 = AB-join, the
  /// paper's reference-vs-query setting).
  std::int64_t exclusion = 0;

  /// Host worker threads backing the simulated devices (0 = all cores).
  std::size_t workers = 0;
};

struct KernelBreakdownEntry {
  std::string name;
  std::int64_t launches = 0;
  double modeled_seconds = 0.0;   ///< roofline model on the device spec
  double measured_seconds = 0.0;  ///< host wall time inside the simulator
};

/// Result of a matrix-profile computation.
///
/// profile/index are dimension-major: entry [k*segments + j] is the
/// (k+1)-dimensional matrix profile of query segment j — the smallest
/// progressive average over the k+1 best-matching dimensions (Eq. 2/3).
struct MatrixProfileResult {
  std::size_t segments = 0;  ///< number of query segments (n_q - m + 1)
  std::size_t dims = 0;      ///< d
  std::vector<double> profile;       ///< z-normalised Euclidean distances
  std::vector<std::int64_t> index;   ///< nearest-neighbour segment in ref

  double wall_seconds = 0.0;            ///< measured host execution time
  double modeled_device_seconds = 0.0;  ///< roofline makespan across GPUs
  double modeled_merge_seconds = 0.0;   ///< CPU-side tile merge (model)
  std::vector<KernelBreakdownEntry> breakdown;  ///< per-kernel model time

  double modeled_total_seconds() const {
    return modeled_device_seconds + modeled_merge_seconds;
  }

  double at(std::size_t j, std::size_t k) const {
    return profile[k * segments + j];
  }
  std::int64_t index_at(std::size_t j, std::size_t k) const {
    return index[k * segments + j];
  }
};

}  // namespace mpsim::mp
