// Public configuration and result types of the matrix-profile library.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "precision/modes.hpp"

namespace mpsim::gpusim {
class FaultInjector;
}

namespace mpsim::mp {

class StagingCache;

/// Tile-to-device assignment policy.  The paper uses static Round-robin
/// (Pseudocode 2); LPT (longest processing time first) mitigates the
/// imbalance it observes at odd device counts.
enum class TileAssignment { kRoundRobin, kLpt };

/// Execution path of the single-tile engine's per-row pipeline.
///
///  * kCooperative — three separate kernels per tile row (dist_calc,
///    cooperative sort_&_incl_scan, update_mat_prof), distance and scan
///    rows round-tripping through device buffers.  The literal Pseudocode
///    1 structure.
///  * kFused — one column-blocked pass per row computing distances, the
///    small-d Bitonic network + scan-average, and the profile merge while
///    the block is register/cache resident.  Bit-identical outputs; the
///    three logical kernels are still modeled and recorded individually.
///  * kAuto — fused whenever the dimensionality supports it (the default).
enum class RowPath { kAuto, kFused, kCooperative };

inline std::string to_string(RowPath path) {
  switch (path) {
    case RowPath::kAuto: return "auto";
    case RowPath::kFused: return "fused";
    case RowPath::kCooperative: return "cooperative";
  }
  return "auto";
}

inline RowPath parse_row_path(const std::string& name) {
  if (name == "auto") return RowPath::kAuto;
  if (name == "fused") return RowPath::kFused;
  if (name == "cooperative") return RowPath::kCooperative;
  throw ConfigError("unknown row path '" + name +
                    "' (expected auto|fused|cooperative)");
}

/// Candidate prefilter in front of the exact per-row pipeline.
///
///  * kOff — every column runs the exact dist/sort/merge pipeline (the
///    default; output bits match the golden checksums).
///  * kSketch — FP16 random-projection sketches score column blocks per
///    row; blocks whose correlation upper bound proves no profile update
///    is possible run a QT-only recurrence update instead of the full
///    pipeline.  A deterministic sample of skippable blocks is executed
///    exactly anyway ("verify" blocks) to measure the miss rate.
enum class PrefilterMode { kOff, kSketch };

inline std::string to_string(PrefilterMode mode) {
  switch (mode) {
    case PrefilterMode::kOff: return "off";
    case PrefilterMode::kSketch: return "sketch";
  }
  return "off";
}

inline PrefilterMode parse_prefilter_mode(const std::string& name) {
  if (name == "off") return PrefilterMode::kOff;
  if (name == "sketch") return PrefilterMode::kSketch;
  throw ConfigError("unknown prefilter '" + name +
                    "' (expected off|sketch)");
}

/// Knobs of the approximate sketch prefilter (see PrefilterMode::kSketch).
struct PrefilterConfig {
  PrefilterMode mode = PrefilterMode::kOff;

  /// Target miss-rate bound: the acceptable probability that a column
  /// inside a skipped block would have updated the profile.  Smaller
  /// budgets widen the sketch guard band (fewer skips, fewer misses).
  double budget = 0.01;

  bool enabled() const { return mode != PrefilterMode::kOff; }
};

/// Per-tile (and, aggregated, per-run) decision accounting of the sketch
/// prefilter.  Pure sums, so sub-tile merges and the run-level aggregate
/// are plain additions; all counts are exact mode-independent block/column
/// tallies, not samples — only `cols_missed` comes from the verify sample.
struct PrefilterStats {
  std::uint64_t blocks_total = 0;    ///< (row, block) decisions scored
  std::uint64_t blocks_skipped = 0;  ///< ran the QT-only recurrence
  std::uint64_t blocks_verified = 0; ///< skippable but executed exactly
  std::uint64_t cols_skipped = 0;    ///< columns inside skipped blocks
  std::uint64_t cols_verified = 0;   ///< columns inside verify blocks
  std::uint64_t cols_missed = 0;     ///< verify columns this row updated

  void merge_from(const PrefilterStats& other) {
    blocks_total += other.blocks_total;
    blocks_skipped += other.blocks_skipped;
    blocks_verified += other.blocks_verified;
    cols_skipped += other.cols_skipped;
    cols_verified += other.cols_verified;
    cols_missed += other.cols_missed;
  }

  bool any() const { return blocks_total != 0; }
};

/// Fault-tolerance knobs of the resilient multi-tile scheduler.
struct ResilienceConfig {
  /// Bounded retries of a tile on one device after transient faults
  /// (TransientFaultError, DeviceMemoryError, ...), with exponential
  /// backoff between attempts.
  int max_retries = 3;

  /// A device with this many *consecutive* failed tile attempts is
  /// blacklisted; its remaining tiles are work-stolen by healthy devices.
  int blacklist_after = 3;

  /// Base of the exponential retry backoff (doubles per attempt).
  double backoff_ms = 1.0;

  /// Numerical self-healing: after a tile completes, re-run it one
  /// precision rung up (FP16 → Mixed → FP32 → FP64) when the fraction of
  /// non-finite profile entries exceeds `non_finite_threshold`.  Off by
  /// default so reduced-precision results match the paper's unguarded
  /// modes; enable via the CLI's --escalate-precision.
  bool escalate_precision = false;
  double non_finite_threshold = 0.01;

  /// When every device has failed, finish the remaining tiles on the CPU
  /// reference path instead of aborting the run.
  bool cpu_fallback = true;

  /// Hung-tile watchdog: a monitor thread gives every in-flight attempt a
  /// deadline of `watchdog_slack` × the tile's modelled seconds × a
  /// wall-per-modelled ratio calibrated from completed attempts (floored
  /// at `watchdog_min_deadline_ms`).  An overdue attempt triggers a
  /// speculative backup on another healthy device (first finisher wins,
  /// the loser's cancellation token unwinds it); repeated fires on one
  /// device feed the blacklist exactly like failed tiles.  Off by default:
  /// without injected hangs it only adds a sleeping thread, but the knob
  /// stays opt-in like the rest of the fault-tolerance surface.
  bool watchdog = false;
  double watchdog_slack = 8.0;
  double watchdog_min_deadline_ms = 100.0;
  double watchdog_poll_ms = 10.0;
  /// Launch speculative backups for overdue attempts (requires watchdog).
  bool speculate = true;

  /// React to a process-wide shutdown request (common/shutdown) by
  /// cancelling in-flight attempts, flushing the checkpoint and unwinding
  /// with InterruptedError — the right behaviour for a one-shot CLI run.
  /// The serve daemon sets this false: a drain must let admitted queries
  /// run to completion, the daemon itself stops accepting new work.
  bool honor_shutdown = true;

  /// Memory-pressure degradation: when a tile's working set exceeds the
  /// device's capacity, split it along the row axis (each half restarts
  /// from its own precalculation) up to this many times before giving up
  /// and treating the allocation failure like any other fault.
  int max_tile_splits = 8;
};

/// Durable checkpoint/resume of the resilient scheduler.  The journal
/// (format `mpsim-ckpt-v3`, see mp/checkpoint.hpp) records every
/// completed tile's merged profile slice — and, with `slice_rows > 0`,
/// mid-tile row-slice snapshots — plus the RunEvent history; it is
/// written atomically (temp + rename) every `interval_tiles` completed
/// tiles, at the end of the run, and when a shutdown is requested.
struct CheckpointConfig {
  std::string write_path;   ///< journal destination ("" = checkpointing off)
  std::string resume_path;  ///< journal to restore from ("" = fresh run)
  int interval_tiles = 4;   ///< K — commit cadence of the journal

  /// Chaos hook: request a shutdown after this many tile commits, exactly
  /// as SIGTERM would (0 = never).  Gives tests and the chaos soak a
  /// deterministic mid-run kill.
  int kill_after_tiles = 0;

  /// Mid-tile durability: journal a partial row-slice snapshot of every
  /// in-flight tile each time this many rows complete (0 = whole-tile
  /// commits only).  Resume replays the covered rows QT-only, so a
  /// sliced resume is bit-identical to the uninterrupted run.
  int slice_rows = 0;

  /// Chaos hook: request a shutdown after this many journalled row-slice
  /// snapshots (0 = never) — the mid-tile analogue of kill_after_tiles.
  int kill_after_slices = 0;

  bool enabled() const { return !write_path.empty(); }
};

/// User-facing configuration of one matrix-profile computation
/// (the knobs of Pseudocode 1 + Pseudocode 2).
struct MatrixProfileConfig {
  std::size_t window = 64;     ///< m — segment (subsequence) length
  PrecisionMode mode = PrecisionMode::FP64;

  int tiles = 1;               ///< n_tiles of the multi-tile algorithm
  int devices = 1;             ///< n_gpu
  std::string machine = "A100";  ///< simulated device spec (V100|A100)
  int streams_per_device = 16;   ///< paper uses at most 16 CUDA streams
  TileAssignment assignment = TileAssignment::kRoundRobin;

  /// Trivial-match exclusion radius for self-joins (0 = AB-join, the
  /// paper's reference-vs-query setting).
  std::int64_t exclusion = 0;

  /// Host worker threads backing the simulated devices (0 = all cores).
  std::size_t workers = 0;

  /// Per-row execution path of the tile engine (see RowPath).  Outputs are
  /// bit-identical across paths; this is a performance/debugging knob.
  RowPath row_path = RowPath::kAuto;

  /// Approximate candidate prefilter (off by default; kSketch trades a
  /// bounded miss rate for skipped per-row work — see PrefilterConfig).
  /// Unlike row_path/simd this CAN change results, so it participates in
  /// the checkpoint/serve-cache fingerprint.
  PrefilterConfig prefilter;

  /// Fault-tolerance policy of the resilient scheduler.
  ResilienceConfig resilience;

  /// Durable checkpoint/resume policy (off unless write_path/resume_path
  /// are set).
  CheckpointConfig checkpoint;

  /// Overrides every device's memory capacity in bytes (0 = the machine
  /// spec's capacity).  Exists to exercise memory-pressure tile splitting
  /// at test scale; only honoured by the entry points that construct the
  /// System themselves.
  std::size_t device_memory_bytes = 0;

  /// Optional fault injector (not owned; must outlive the computation).
  /// Attached to every device of the system the run executes on.
  gpusim::FaultInjector* fault_injector = nullptr;

  /// Optional cross-run staging cache (not owned; must outlive the
  /// computation and be bound to the *same* reference/query series passed
  /// to compute_matrix_profile).  When set, the resilient scheduler reuses
  /// its reduced-precision conversions instead of converting per run — the
  /// serve daemon shares one per input pair across queries.  Staged bytes
  /// are identical either way, so results do not change.
  StagingCache* staging_cache = nullptr;
};

/// One typed scheduler event of a resilient run (what used to be a free-
/// form log string).  Machine-readable — the CLI's metrics/trace outputs
/// and tests consume the fields; to_string() renders the human line.
struct RunEvent {
  enum class Kind {
    kRetry,             ///< transient failure, retrying on the same device
    kRetriesExhausted,  ///< retry budget spent on one device
    kReassigned,        ///< tile moved to another device's queue
    kStolen,            ///< tile work-stolen from a blacklisted device
    kBlacklisted,       ///< device removed from scheduling
    kDeferredToCpu,     ///< no healthy device left for this tile
    kCpuFallback,       ///< tile completed on the CPU reference path
    kEscalated,         ///< tile re-run one precision rung up
    kWatchdogFired,     ///< in-flight attempt exceeded its deadline
    kSpeculated,        ///< backup attempt launched on another device
    kSpeculationWon,    ///< backup finished first; primary cancelled
    kSpeculationLost,   ///< backup cancelled; primary finished first
    kTileSplit,         ///< tile split into row sub-tiles (memory pressure)
    kResumed,           ///< tile restored from a checkpoint journal
    kCheckpointWritten, ///< journal flushed to disk
    kInterrupted,       ///< shutdown requested; run stopped early
    // v3 additions — appended so the int32 wire encoding of the kinds
    // above stays frozen.
    kResumeFallback,    ///< --resume journal unusable; fresh run instead
    kSliceRestored,     ///< tile seeded from a journalled row-slice prefix
    kSliceDiscarded,    ///< journalled slice unusable on the current grid
    kNodeJoined,        ///< node's shard scheduler came up (device = node)
    kNodeCrashed,       ///< node lost to an injected crash (device = node)
    kNodeStolen,        ///< tile stolen across nodes (device = thief node)
    kNodeDuplicated,    ///< straggler tile re-dispatched to another node
  };

  Kind kind = Kind::kRetry;
  int tile_id = -1;    ///< -1 when the event is device- not tile-scoped
  int device = -1;     ///< -1 = none / CPU
  std::string detail;  ///< error text, retry budget, modes, ...

  /// The chronological-log line this event renders as.
  std::string to_string() const;
};

/// Health report of one resilient run: every injected fault, retry,
/// blacklist event and precision escalation, plus per-device status.
struct RunHealth {
  struct DeviceStatus {
    int device = 0;
    int tiles_completed = 0;   ///< tiles whose final result this device ran
    int faults = 0;            ///< failed tile attempts observed here
    bool blacklisted = false;  ///< removed from scheduling mid-run
    bool offline = false;      ///< permanent injected device loss
  };
  struct Escalation {
    int tile_id = 0;
    PrecisionMode from = PrecisionMode::FP64;
    PrecisionMode to = PrecisionMode::FP64;
    double non_finite_fraction = 0.0;  ///< what triggered the escalation
  };

  int faults_injected = 0;     ///< events recorded by the FaultInjector
  int retries = 0;             ///< tile attempts repeated after a fault
  int reassigned_tiles = 0;    ///< tiles moved off their assigned device
  int blacklist_events = 0;    ///< devices removed mid-run
  int cpu_fallback_tiles = 0;  ///< tiles completed on the CPU reference
  int resumed_tiles = 0;       ///< tiles restored from a checkpoint journal
  int checkpoint_writes = 0;   ///< journal flushes this run
  int watchdog_fires = 0;      ///< attempts that exceeded their deadline
  int speculative_wins = 0;    ///< tiles won by a backup attempt
  int speculative_losses = 0;  ///< backups cancelled by the primary
  int tile_splits = 0;         ///< memory-pressure row splits
  int resume_fallbacks = 0;    ///< --resume journals rejected (missing/...)
  int partial_slices = 0;      ///< tiles seeded from a row-slice prefix
  int slices_discarded = 0;    ///< journalled slices unusable on this grid
  int slice_commits = 0;       ///< mid-tile row-slice snapshots journalled
  int node_crashes = 0;        ///< simulated nodes lost mid-run
  int node_steals = 0;         ///< tiles stolen across nodes
  int node_duplicates = 0;     ///< straggler tiles re-dispatched cross-node
  std::vector<Escalation> escalations;
  std::vector<DeviceStatus> devices;
  std::vector<RunEvent> events;  ///< chronological typed scheduler events
  bool degraded = false;  ///< run survived faults / lost devices

  /// Multi-line human-readable report (what mpsim_cli prints).
  std::string summary() const;
};

struct KernelBreakdownEntry {
  std::string name;
  std::int64_t launches = 0;
  double modeled_seconds = 0.0;   ///< roofline model on the device spec
  double measured_seconds = 0.0;  ///< host wall time inside the simulator
};

/// Result of a matrix-profile computation.
///
/// profile/index are dimension-major: entry [k*segments + j] is the
/// (k+1)-dimensional matrix profile of query segment j — the smallest
/// progressive average over the k+1 best-matching dimensions (Eq. 2/3).
struct MatrixProfileResult {
  std::size_t segments = 0;  ///< number of query segments (n_q - m + 1)
  std::size_t dims = 0;      ///< d
  std::vector<double> profile;       ///< z-normalised Euclidean distances
  std::vector<std::int64_t> index;   ///< nearest-neighbour segment in ref

  double wall_seconds = 0.0;            ///< measured host execution time
  double modeled_device_seconds = 0.0;  ///< roofline makespan across GPUs
  double modeled_merge_seconds = 0.0;   ///< CPU-side tile merge (model)
  std::vector<KernelBreakdownEntry> breakdown;  ///< per-kernel model time

  RunHealth health;  ///< fault-tolerance report of the resilient scheduler

  /// Aggregated sketch-prefilter decision accounting (all zero when the
  /// prefilter is off or every tile ran the exact CPU reference).
  PrefilterStats prefilter;

  double modeled_total_seconds() const {
    return modeled_device_seconds + modeled_merge_seconds;
  }

  double at(std::size_t j, std::size_t k) const {
    return profile[k * segments + j];
  }
  std::int64_t index_at(std::size_t j, std::size_t k) const {
    return index[k * segments + j];
  }
};

}  // namespace mpsim::mp
