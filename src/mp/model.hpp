// Analytic performance model of the full multi-tile matrix-profile run.
//
// The simulator executes kernels for real, so its wall time limits the
// problem sizes it can run — but the roofline model itself is closed-form.
// This module evaluates exactly the accounting the execution path performs
// (same per-launch costs, same barrier-round counts, same stream-overlap
// and merge rules) without executing anything, which is how the benches
// report the paper's full-scale figures (n = 2^16..2^18) next to the
// executed-and-measured scaled runs.
#pragma once

#include <map>
#include <string>

#include "gpusim/spec.hpp"
#include "gpusim/trace.hpp"
#include "mp/options.hpp"
#include "precision/modes.hpp"

namespace mpsim::mp {

struct ModelConfig {
  gpusim::MachineSpec spec;        ///< device spec (v100() / a100())
  std::size_t n_r = 0;             ///< reference segments
  std::size_t n_q = 0;             ///< query segments
  std::size_t dims = 1;            ///< d
  std::size_t window = 64;         ///< m
  PrecisionMode mode = PrecisionMode::FP64;
  int tiles = 1;
  int devices = 1;
  int streams_per_device = 16;
  TileAssignment assignment = TileAssignment::kRoundRobin;
};

struct ModelReport {
  double device_seconds = 0.0;  ///< makespan across devices
  double merge_seconds = 0.0;   ///< CPU-side tile merge
  std::map<std::string, double> kernel_seconds;  ///< summed per kernel

  double total_seconds() const { return device_seconds + merge_seconds; }
};

/// Evaluates the roofline model for a full run of the given shape.
ModelReport model_matrix_profile(const ModelConfig& config);

/// Builds the modelled execution timeline of the run: per device, a
/// "copy" lane (H2D/D2H transfers) and a "compute" lane (the per-tile
/// kernel phases), with stream-overlapped scheduling.  Export with
/// Timeline::write_chrome_json for chrome://tracing / Perfetto.
gpusim::Timeline model_timeline(const ModelConfig& config);

/// Modelled CPU-side merge cost of a tile set (shared with the execution
/// path in resilient.cpp).
double model_merge_seconds(std::size_t tile_count,
                           std::size_t q_count_per_tile, std::size_t dims);

struct Tile;

/// Modelled device seconds (kernels + copies) of one tile — the same
/// accounting model_matrix_profile sums per device.  The resilient
/// scheduler's watchdog derives per-tile deadlines from it: modelled
/// seconds × a calibrated wall-per-modelled ratio × a slack factor.
double model_tile_seconds(const gpusim::MachineSpec& spec, const Tile& tile,
                          std::size_t dims, std::size_t window,
                          PrecisionMode mode);

}  // namespace mpsim::mp
