#include "mp/tuning.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/error.hpp"
#include "mp/kernels.hpp"
#include "mp/tile_plan.hpp"

namespace mpsim::mp {

namespace {
/// Diagonal-batching knobs: target work items per dispatch round (matches
/// the over-decomposition sweet spot of ThreadPool::parallel_for) and the
/// row cap bounding the per-batch scan buffer.
constexpr std::size_t kBatchTargetItems = 4096;
constexpr std::size_t kMaxBatchRows = 64;
std::atomic<std::size_t> g_row_batch_override{0};
}  // namespace

std::size_t row_batch_rows(std::size_t tile_cols, std::size_t tile_rows) {
  const std::size_t ov = g_row_batch_override.load(std::memory_order_relaxed);
  if (ov != 0) return std::max<std::size_t>(1, std::min(ov, tile_rows));
  if (tile_cols == 0 || tile_rows == 0) return 1;
  const std::size_t bt = std::clamp<std::size_t>(
      kBatchTargetItems / std::max<std::size_t>(1, tile_cols), 1,
      kMaxBatchRows);
  return std::min(bt, tile_rows);
}

void set_row_batch_override(std::size_t rows) {
  g_row_batch_override.store(std::min(rows, kMaxBatchRows),
                             std::memory_order_relaxed);
}

bool use_fused_row_path(RowPath requested, std::size_t dims) {
  if (requested == RowPath::kCooperative) return false;
  // kAuto and kFused: the fused block pipeline supports every mode and
  // every d up to its stack-block cap; beyond that only the cooperative
  // path works, so both requests resolve to it.
  return dims <= kMaxFusedRowDims;
}

std::size_t tile_working_set_bytes(std::size_t tile_rows,
                                   std::size_t tile_cols, std::size_t dims,
                                   std::size_t window, PrecisionMode mode) {
  const std::size_t es = storage_bytes(mode);
  // Mirrors SingleTileEngine's DeviceBuffer allocations:
  //   input slices: (rows+m-1 + cols+m-1) * d
  //   per-row coefficient arrays: 4 per side + QT seeds (row + col)
  //   row buffers: qt_a, qt_b, dist, scan (4 * cols * d)
  //   profile (es) + index (8 bytes).
  const std::size_t inputs =
      (tile_rows + window - 1 + tile_cols + window - 1) * dims * es;
  const std::size_t coefficients =
      (4 * tile_rows + 4 * tile_cols + tile_cols + tile_rows) * dims * es;
  const std::size_t rows = 4 * tile_cols * dims * es;
  const std::size_t outputs = tile_cols * dims * (es + 8);
  return inputs + coefficients + rows + outputs;
}

TileTuningResult suggest_tiles(const TileTuningRequest& request,
                               const gpusim::MachineSpec& spec) {
  MPSIM_CHECK(request.n_r >= 1 && request.n_q >= 1,
              "empty segment ranges cannot be tuned");
  MPSIM_CHECK(request.devices >= 1, "need at least one device");

  TileTuningResult out;

  // --- Accuracy constraint: bound the recurrence length (tile rows). ---
  // The deterministic bound on the QT recurrence error after k streaming
  // steps is ~ k * eps (§V-B), but per-step rounding errors are
  // mean-zero, so they accumulate diffusively in practice: e ~ sqrt(k) *
  // eps.  Demanding sqrt(k) * eps <= tol gives k <= (tol/eps)^2 — for
  // FP16 (eps = 2^-11) and tol = 1% that is ~420 rows per tile, which at
  // n = 2^16 lands at a few hundred tiles: precisely the paper's Fig. 7
  // sweet spot (256 tiles).
  std::size_t max_rows = request.n_r;
  const double eps = unit_roundoff(request.mode);
  if (eps > 0x1.0p-24 * 1.5) {  // only the half-precision families bind
    const double ratio = request.correlation_tolerance / eps;
    const double k_limit = ratio * ratio;
    if (k_limit < double(request.n_r)) {
      max_rows = std::max<std::size_t>(1, std::size_t(k_limit));
      out.accuracy_limited = true;
    }
  }

  // --- Memory constraint: concurrent tiles must fit the device. ---
  // The scheduler runs up to streams_per_device tiles concurrently; be
  // conservative and require that many working sets plus 20% headroom.
  const std::size_t capacity = spec.memory_capacity_bytes;

  auto feasible = [&](int tiles) {
    const TileGrid grid = choose_tile_grid(tiles);
    const std::size_t rows =
        (request.n_r + std::size_t(grid.rows) - 1) / std::size_t(grid.rows);
    const std::size_t cols =
        (request.n_q + std::size_t(grid.cols) - 1) / std::size_t(grid.cols);
    if (out.accuracy_limited && rows > max_rows) return false;
    if (capacity != 0) {
      const std::size_t ws = tile_working_set_bytes(
          rows, cols, request.dims, request.window, request.mode);
      const std::size_t concurrent =
          std::min<std::size_t>(std::size_t(request.streams_per_device),
                                (std::size_t(tiles) +
                                 std::size_t(request.devices) - 1) /
                                    std::size_t(request.devices));
      if (double(ws) * double(std::max<std::size_t>(1, concurrent)) >
          0.8 * double(capacity)) {
        return false;
      }
    }
    return true;
  };

  // Grow the tile count (multiples of the device count) until feasible.
  int tiles = request.devices;
  while (!feasible(tiles)) {
    MPSIM_CHECK(std::size_t(tiles) < request.n_r * request.n_q,
                "no feasible tiling: a single-segment tile still violates "
                "the constraints; relax correlation_tolerance");
    tiles += request.devices;
    // Accelerate for huge problems: jump multiplicatively once large.
    if (tiles > 64 * request.devices) tiles *= 2;
  }

  // Determine whether memory (rather than accuracy) forced the growth.
  if (tiles > request.devices && capacity != 0) {
    const TileGrid grid = choose_tile_grid(request.devices);
    const std::size_t rows = (request.n_r + std::size_t(grid.rows) - 1) /
                             std::size_t(grid.rows);
    const std::size_t cols = (request.n_q + std::size_t(grid.cols) - 1) /
                             std::size_t(grid.cols);
    const std::size_t ws = tile_working_set_bytes(
        rows, cols, request.dims, request.window, request.mode);
    if (double(ws) > 0.8 * double(capacity)) out.memory_limited = true;
  }

  const TileGrid grid = choose_tile_grid(tiles);
  out.tiles = tiles;
  out.tile_rows =
      (request.n_r + std::size_t(grid.rows) - 1) / std::size_t(grid.rows);
  out.tile_cols =
      (request.n_q + std::size_t(grid.cols) - 1) / std::size_t(grid.cols);
  out.tile_bytes = tile_working_set_bytes(out.tile_rows, out.tile_cols,
                                          request.dims, request.window,
                                          request.mode);
  return out;
}

}  // namespace mpsim::mp
