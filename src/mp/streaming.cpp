#include "mp/streaming.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "mp/kernels.hpp"
#include "mp/sort_scan.hpp"

namespace mpsim::mp {

StreamingMatrixProfile::StreamingMatrixProfile(const TimeSeries& reference,
                                               std::size_t window)
    : window_(window),
      dims_(reference.dims()),
      n_r_(reference.segment_count(window)),
      len_r_(reference.length()) {
  MPSIM_CHECK(window_ >= 4, "window must be at least 4 samples");
  MPSIM_CHECK(n_r_ >= 1, "window longer than the reference series");

  reference_ = reference.raw();
  pre_r_.resize(n_r_, dims_);
  for (std::size_t k = 0; k < dims_; ++k) {
    precalc_dimension<Fp64>(reference_.data() + k * len_r_, window_, n_r_,
                            pre_r_.mu.data() + k * n_r_,
                            pre_r_.inv.data() + k * n_r_,
                            pre_r_.df.data() + k * n_r_,
                            pre_r_.dg.data() + k * n_r_);
  }
  query_.resize(dims_);
  col_profile_.resize(dims_);
  col_index_.resize(dims_);
  cum1_.assign(dims_, {0.0});
  cum2_.assign(dims_, {0.0});
  qt_prev_.assign(dims_, {});
  mu_prev_.assign(dims_, 0.0);
}

void StreamingMatrixProfile::append(const std::vector<double>& sample) {
  MPSIM_CHECK(sample.size() == dims_,
              "sample has " << sample.size() << " dimensions, expected "
                            << dims_);
  for (std::size_t k = 0; k < dims_; ++k) {
    const double v = sample[k];
    query_[k].push_back(v);
    cum1_[k].push_back(cum1_[k].back() + v);
    cum2_[k].push_back(cum2_[k].back() + v * v);
  }
  ++samples_;
  if (samples_ >= window_) complete_segment();
}

void StreamingMatrixProfile::append_series(const TimeSeries& samples) {
  std::vector<double> sample(dims_);
  for (std::size_t t = 0; t < samples.length(); ++t) {
    for (std::size_t k = 0; k < dims_; ++k) sample[k] = samples.at(t, k);
    append(sample);
  }
}

void StreamingMatrixProfile::complete_segment() {
  const std::size_t j = segments_;
  const std::size_t m = window_;
  const double two_m = double(2 * m);
  const double inv_m = 1.0 / double(m);

  // Per-dimension: extend the QT column and compute this segment's
  // sliding statistics with the same expressions (and evaluation order)
  // as precalc_dimension, so results match the batch FP64 engines
  // bit-for-bit.
  std::vector<double> inv_q(dims_);
  std::vector<std::vector<double>> qt_new(dims_);
  for (std::size_t k = 0; k < dims_; ++k) {
    const double* q = query_[k].data();
    const double* r = reference_.data() + k * len_r_;
    const double* mu_r = pre_r_.mu.data() + k * n_r_;
    const double* df_r = pre_r_.df.data() + k * n_r_;
    const double* dg_r = pre_r_.dg.data() + k * n_r_;

    // Prefix-difference sliding statistics: identical expressions (and
    // prefix chains) to precalc_dimension, hence bit-exact vs the batch
    // engines.
    const double mu = (cum1_[k][j + m] - cum1_[k][j]) * inv_m;
    const double ssq =
        (cum2_[k][j + m] - cum2_[k][j]) - double(m) * mu * mu;
    inv_q[k] = ssq > 0.0 ? 1.0 / std::sqrt(ssq) : 0.0;

    double df_qj = 0.0, dg_qj = 0.0;
    if (j > 0) {
      const double hi = q[j + m - 1];
      const double lo = q[j - 1];
      df_qj = (hi - lo) * 0.5;
      dg_qj = (hi - mu) + (lo - mu_prev_[k]);
    }

    auto& column = qt_new[k];
    column.resize(n_r_);
    column[0] = centered_dot<Fp64>(r, q + j, m, mu_r[0], mu);
    if (j == 0) {
      for (std::size_t i = 1; i < n_r_; ++i) {
        column[i] = centered_dot<Fp64>(r + i, q, m, mu_r[i], mu);
      }
    } else {
      const auto& prev = qt_prev_[k];
      for (std::size_t i = 1; i < n_r_; ++i) {
        column[i] = prev[i - 1] + df_r[i] * dg_qj + dg_r[i] * df_qj;
      }
    }
    mu_prev_[k] = mu;
  }

  // Column j of the profile: per reference row, gather the d distances,
  // sort, progressive-average, and min-merge.  sort_scan_column is the
  // batch engines' shared Bitonic network + scan (small d dispatches to
  // the fixed networks) — padded to the next power of two with +inf — not
  // std::sort: the network's compare-exchanges stay deterministic when a
  // distance is NaN, whereas NaN violates std::sort's strict-weak-ordering
  // contract (UB), and the batch engines' ordering of NaN columns is
  // reproduced exactly.
  const std::size_t p2 = next_pow2(dims_);
  std::vector<double> best(dims_, std::numeric_limits<double>::infinity());
  std::vector<std::int64_t> best_idx(dims_, -1);
  std::vector<double> dists(p2);
  for (std::size_t i = 0; i < n_r_; ++i) {
    for (std::size_t k = 0; k < dims_; ++k) {
      dists[k] = qt_to_distance(qt_new[k][i], double(pre_r_.inv[k * n_r_ + i]),
                                inv_q[k], two_m);
    }
    for (std::size_t k = dims_; k < p2; ++k) {
      dists[k] = std::numeric_limits<double>::infinity();
    }
    sort_scan_column(dists.data(), dims_);
    for (std::size_t k = 0; k < dims_; ++k) {
      if (dists[k] < best[k]) {
        best[k] = dists[k];
        best_idx[k] = std::int64_t(i);
      }
    }
  }

  // Append the new column to the per-dimension growable arrays — O(d)
  // amortised, instead of reallocating and copying the whole flat
  // dimension-major layout every segment (O(segments * d), i.e. O(n^2)
  // over a stream).  The flat view is materialised lazily on demand.
  for (std::size_t k = 0; k < dims_; ++k) {
    col_profile_[k].push_back(best[k]);
    col_index_[k].push_back(best_idx[k]);
  }
  flat_dirty_ = true;
  for (std::size_t k = 0; k < dims_; ++k) qt_prev_[k] = std::move(qt_new[k]);
  ++segments_;
}

void StreamingMatrixProfile::materialize() const {
  if (!flat_dirty_) return;
  flat_profile_.resize(segments_ * dims_);
  flat_index_.resize(segments_ * dims_);
  for (std::size_t k = 0; k < dims_; ++k) {
    std::copy(col_profile_[k].begin(), col_profile_[k].end(),
              flat_profile_.begin() + std::ptrdiff_t(k * segments_));
    std::copy(col_index_[k].begin(), col_index_[k].end(),
              flat_index_.begin() + std::ptrdiff_t(k * segments_));
  }
  flat_dirty_ = false;
}

}  // namespace mpsim::mp
