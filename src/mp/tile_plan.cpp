#include "mp/tile_plan.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"

namespace mpsim::mp {

TileGrid choose_tile_grid(int n_tiles) {
  MPSIM_CHECK(n_tiles >= 1, "tile count must be positive");
  // Largest factor pair (rows >= cols) closest to square.
  int best_cols = 1;
  for (int c = 1; c * c <= n_tiles; ++c) {
    if (n_tiles % c == 0) best_cols = c;
  }
  return TileGrid{n_tiles / best_cols, best_cols};
}

namespace {

/// Splits `total` into `parts` contiguous ranges differing by at most one.
std::vector<std::pair<std::size_t, std::size_t>> split_range(
    std::size_t total, int parts) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  const std::size_t base = total / std::size_t(parts);
  const std::size_t extra = total % std::size_t(parts);
  std::size_t begin = 0;
  for (int p = 0; p < parts; ++p) {
    const std::size_t count = base + (std::size_t(p) < extra ? 1 : 0);
    out.emplace_back(begin, count);
    begin += count;
  }
  return out;
}

}  // namespace

std::vector<Tile> compute_tile_list(std::size_t n_r, std::size_t n_q,
                                    int n_tiles) {
  MPSIM_CHECK(n_r >= 1 && n_q >= 1, "empty segment ranges cannot be tiled");
  TileGrid grid = choose_tile_grid(n_tiles);
  // Never produce empty tiles for tiny inputs.
  if (std::size_t(grid.rows) > n_r) grid.rows = int(n_r);
  if (std::size_t(grid.cols) > n_q) grid.cols = int(n_q);

  const auto row_ranges = split_range(n_r, grid.rows);
  const auto col_ranges = split_range(n_q, grid.cols);

  std::vector<Tile> tiles;
  tiles.reserve(row_ranges.size() * col_ranges.size());
  int id = 0;
  for (const auto& [r0, rc] : row_ranges) {
    for (const auto& [q0, qc] : col_ranges) {
      tiles.push_back(Tile{r0, rc, q0, qc, 0, id++});
    }
  }
  return tiles;
}

void assign_tiles_round_robin(std::vector<Tile>& tiles, int n_devices) {
  MPSIM_CHECK(n_devices >= 1, "need at least one device");
  for (std::size_t i = 0; i < tiles.size(); ++i) {
    tiles[i].device = int(i % std::size_t(n_devices));
  }
}

void assign_tiles_lpt(std::vector<Tile>& tiles, int n_devices) {
  MPSIM_CHECK(n_devices >= 1, "need at least one device");
  // Sort tile references by area, largest first (stable by id for
  // determinism), then greedily assign each to the least-loaded device.
  std::vector<std::size_t> order(tiles.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const std::size_t area_a = tiles[a].r_count * tiles[a].q_count;
    const std::size_t area_b = tiles[b].r_count * tiles[b].q_count;
    if (area_a != area_b) return area_a > area_b;
    return tiles[a].id < tiles[b].id;
  });
  std::vector<std::size_t> load(std::size_t(n_devices), 0);
  for (const std::size_t t : order) {
    int best = 0;
    for (int dev = 1; dev < n_devices; ++dev) {
      if (load[std::size_t(dev)] < load[std::size_t(best)]) best = dev;
    }
    tiles[t].device = best;
    load[std::size_t(best)] += tiles[t].r_count * tiles[t].q_count;
  }
}

SliceFit classify_slice(std::size_t slice_r_begin, std::size_t slice_r_count,
                        std::size_t slice_q_begin, std::size_t slice_q_count,
                        std::size_t slice_dims, const Tile& tile,
                        std::size_t dims) {
  // Dimensional or column mismatch: the slice's profile entries cover a
  // different column set (or a different number of values per column)
  // than the tile merges — there is no bit-safe sub-range to extract,
  // because trimming columns would not reproduce the tile's own merge.
  if (slice_dims != dims) return SliceFit::kNone;
  if (slice_q_begin != tile.q_begin || slice_q_count != tile.q_count) {
    return SliceFit::kNone;
  }
  // Row-origin mismatch: the journalled rows were produced by a QT
  // recurrence seeded at slice_r_begin; a tile seeded elsewhere computes
  // different (both valid) bits for the same absolute rows.
  if (slice_r_begin != tile.r_begin) return SliceFit::kNone;
  if (slice_r_count == 0) return SliceFit::kNone;
  if (slice_r_count == tile.r_count) return SliceFit::kComplete;
  // More rows than the tile: the slice's profile is already min-merged
  // over rows past the tile's end — row contributions cannot be
  // un-merged, so a longer slice is unusable for a shorter tile.
  if (slice_r_count > tile.r_count) return SliceFit::kNone;
  return SliceFit::kPrefix;
}

std::size_t assignment_makespan(const std::vector<Tile>& tiles,
                                int n_devices) {
  MPSIM_CHECK(n_devices >= 1, "need at least one device");
  std::vector<std::size_t> load(std::size_t(n_devices), 0);
  for (const auto& tile : tiles) {
    MPSIM_CHECK(tile.device >= 0 && tile.device < n_devices,
                "tile assigned outside the device range");
    load[std::size_t(tile.device)] += tile.r_count * tile.q_count;
  }
  return *std::max_element(load.begin(), load.end());
}

}  // namespace mpsim::mp
