#include "mp/mass.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

#include "common/error.hpp"
#include "mp/sort_scan.hpp"
#include "tsdata/znorm.hpp"

namespace mpsim::mp {

void fft(std::vector<std::complex<double>>& data, bool inverse) {
  const std::size_t n = data.size();
  MPSIM_CHECK(n != 0 && (n & (n - 1)) == 0, "FFT size must be a power of 2");

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  // Butterflies.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        2.0 * std::numbers::pi / double(len) * (inverse ? 1.0 : -1.0);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    const double scale = 1.0 / double(n);
    for (auto& x : data) x *= scale;
  }
}

std::vector<double> sliding_dot_products(const std::vector<double>& series,
                                         const std::vector<double>& query) {
  const std::size_t n = series.size();
  const std::size_t m = query.size();
  MPSIM_CHECK(m >= 1 && m <= n, "query must fit inside the series");

  const std::size_t p2 = next_pow2(2 * n);
  std::vector<std::complex<double>> a(p2), b(p2);
  for (std::size_t t = 0; t < n; ++t) a[t] = series[t];
  // Time-reversed query: convolution turns into correlation.
  for (std::size_t t = 0; t < m; ++t) b[t] = query[m - 1 - t];

  fft(a, false);
  fft(b, false);
  for (std::size_t t = 0; t < p2; ++t) a[t] *= b[t];
  fft(a, true);

  // Alignment i's dot product sits at convolution index i + m - 1.
  std::vector<double> out(n - m + 1);
  for (std::size_t i = 0; i + m <= n; ++i) {
    out[i] = a[i + m - 1].real();
  }
  return out;
}

std::vector<double> mass(const std::vector<double>& series,
                         const std::vector<double>& query_segment) {
  const std::size_t m = query_segment.size();
  const auto dots = sliding_dot_products(series, query_segment);
  const auto stats = sliding_stats(
      std::span<const double>(series.data(), series.size()), m);

  double q_sum = 0.0;
  for (const double v : query_segment) q_sum += v;
  const double q_mean = q_sum / double(m);
  double q_ssq = 0.0;
  for (const double v : query_segment) {
    const double c = v - q_mean;
    q_ssq += c * c;
  }
  const double q_norm = std::sqrt(q_ssq);

  std::vector<double> out(dots.size());
  for (std::size_t i = 0; i < dots.size(); ++i) {
    if (q_norm == 0.0 || stats.norm[i] == 0.0) {
      out[i] = std::sqrt(2.0 * double(m));  // flat segment: correlation 0
      continue;
    }
    // Centred dot product from the raw one:
    // sum (x - mu_x)(q - mu_q) = dot - m * mu_x * mu_q.
    const double centred = dots[i] - double(m) * stats.mean[i] * q_mean;
    const double corr = centred / (stats.norm[i] * q_norm);
    const double val = 2.0 * double(m) * (1.0 - corr);
    out[i] = val > 0.0 ? std::sqrt(val) : 0.0;
  }
  return out;
}

StampResult compute_matrix_profile_stamp(const TimeSeries& reference,
                                         const TimeSeries& query,
                                         std::size_t window) {
  MPSIM_CHECK(reference.dims() == query.dims(), "dimension mismatch");
  const std::size_t d = reference.dims();
  const std::size_t n_r = reference.segment_count(window);
  const std::size_t n_q = query.segment_count(window);
  MPSIM_CHECK(n_r >= 1 && n_q >= 1, "window longer than an input series");

  StampResult out;
  out.segments = n_q;
  out.dims = d;
  out.profile.assign(n_q * d, std::numeric_limits<double>::infinity());
  out.index.assign(n_q * d, -1);

  // STAMP iterates over query segments; each needs one MASS pass per
  // dimension, then the mSTAMP sort + inclusive average across dims.
  std::vector<std::vector<double>> columns(d);
  std::vector<double> dists(d), scratch(d);
  std::vector<double> ref_dim, query_segment(window);
  for (std::size_t j = 0; j < n_q; ++j) {
    for (std::size_t k = 0; k < d; ++k) {
      const auto qdim = query.dim(k);
      std::copy(qdim.begin() + std::ptrdiff_t(j),
                qdim.begin() + std::ptrdiff_t(j + window),
                query_segment.begin());
      const auto rdim = reference.dim(k);
      ref_dim.assign(rdim.begin(), rdim.end());
      columns[k] = mass(ref_dim, query_segment);
    }
    for (std::size_t i = 0; i < n_r; ++i) {
      for (std::size_t k = 0; k < d; ++k) dists[k] = columns[k][i];
      std::sort(dists.begin(), dists.end());
      inclusive_scan_average(dists.data(), scratch.data(), d);
      for (std::size_t k = 0; k < d; ++k) {
        const std::size_t e = k * n_q + j;
        if (dists[k] < out.profile[e]) {
          out.profile[e] = dists[k];
          out.index[e] = std::int64_t(i);
        }
      }
    }
  }
  return out;
}

}  // namespace mpsim::mp
