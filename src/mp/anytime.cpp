#include "mp/anytime.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "mp/kernels.hpp"
#include "mp/sort_scan.hpp"

namespace mpsim::mp {

AnytimeMatrixProfile::AnytimeMatrixProfile(const TimeSeries& reference,
                                           const TimeSeries& query,
                                           std::size_t window,
                                           std::uint64_t seed)
    : window_(window),
      dims_(reference.dims()),
      n_r_(reference.segment_count(window)),
      n_q_(query.segment_count(window)),
      len_r_(reference.length()),
      len_q_(query.length()) {
  MPSIM_CHECK(reference.dims() == query.dims(), "dimension mismatch");
  MPSIM_CHECK(window_ >= 4, "window must be at least 4 samples");
  MPSIM_CHECK(n_r_ >= 1 && n_q_ >= 1, "window longer than an input series");

  reference_ = reference.raw();
  query_ = query.raw();
  pre_r_.resize(n_r_, dims_);
  pre_q_.resize(n_q_, dims_);
  for (std::size_t k = 0; k < dims_; ++k) {
    precalc_dimension<Fp64>(reference_.data() + k * len_r_, window_, n_r_,
                            pre_r_.mu.data() + k * n_r_,
                            pre_r_.inv.data() + k * n_r_,
                            pre_r_.df.data() + k * n_r_,
                            pre_r_.dg.data() + k * n_r_);
    precalc_dimension<Fp64>(query_.data() + k * len_q_, window_, n_q_,
                            pre_q_.mu.data() + k * n_q_,
                            pre_q_.inv.data() + k * n_q_,
                            pre_q_.df.data() + k * n_q_,
                            pre_q_.dg.data() + k * n_q_);
  }

  // Shuffled diagonal order (deltas j - i in [-(n_r-1), n_q-1]).
  order_.reserve(n_r_ + n_q_ - 1);
  for (std::int64_t delta = -(std::int64_t(n_r_) - 1);
       delta <= std::int64_t(n_q_) - 1; ++delta) {
    order_.push_back(delta);
  }
  Rng rng(seed == 0 ? 0x5C12ED1A5ULL : seed);
  for (std::size_t i = order_.size(); i > 1; --i) {
    std::swap(order_[i - 1], order_[rng.uniform_index(i)]);
  }

  profile_.assign(n_q_ * dims_, std::numeric_limits<double>::infinity());
  index_.assign(n_q_ * dims_, -1);
}

double AnytimeMatrixProfile::step(std::size_t diagonal_count) {
  double improvement = 0.0;
  std::size_t updates = 0;
  const std::size_t end = std::min(order_.size(), next_ + diagonal_count);
  while (next_ < end) {
    process_diagonal(order_[next_], &improvement, &updates);
    ++next_;
  }
  return updates == 0 ? 0.0 : improvement / double(updates);
}

void AnytimeMatrixProfile::process_diagonal(std::int64_t delta,
                                            double* improvement,
                                            std::size_t* updates) {
  const std::size_t m = window_;
  const double two_m = double(2 * m);
  std::size_t i = delta >= 0 ? 0 : std::size_t(-delta);
  std::size_t j = delta >= 0 ? std::size_t(delta) : 0;
  const std::size_t steps = std::min(n_r_ - i, n_q_ - j);

  std::vector<double> qt(dims_), dists(dims_), scratch(dims_);
  for (std::size_t t = 0; t < steps; ++t, ++i, ++j) {
    for (std::size_t k = 0; k < dims_; ++k) {
      const double* r = reference_.data() + k * len_r_;
      const double* q = query_.data() + k * len_q_;
      if (t == 0) {
        qt[k] = centered_dot<Fp64>(r + i, q + j, m, pre_r_.mu[k * n_r_ + i],
                                   pre_q_.mu[k * n_q_ + j]);
      } else {
        qt[k] = qt[k] +
                pre_r_.df[k * n_r_ + i] * pre_q_.dg[k * n_q_ + j] +
                pre_r_.dg[k * n_r_ + i] * pre_q_.df[k * n_q_ + j];
      }
      dists[k] = qt_to_distance(qt[k], pre_r_.inv[k * n_r_ + i],
                                pre_q_.inv[k * n_q_ + j], two_m);
    }
    std::sort(dists.begin(), dists.end());
    inclusive_scan_average(dists.data(), scratch.data(), dims_);
    for (std::size_t k = 0; k < dims_; ++k) {
      const std::size_t e = k * n_q_ + j;
      const double d = dists[k];
      // Same tie rule as everywhere: smaller distance wins, then smaller
      // reference index, so the completed result is order-independent.
      if (d < profile_[e] ||
          (d == profile_[e] &&
           (index_[e] < 0 || std::int64_t(i) < index_[e]))) {
        if (std::isfinite(profile_[e])) {
          *improvement += profile_[e] - d;
          ++(*updates);
        } else {
          // First touch: count as a full-profile-magnitude improvement.
          *improvement += d;
          ++(*updates);
        }
        profile_[e] = d;
        index_[e] = std::int64_t(i);
      }
    }
  }
}

}  // namespace mpsim::mp
