#include "mp/cpu_reference.hpp"

#include <algorithm>
#include <limits>

#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"
#include "gpusim/spec.hpp"
#include "mp/kernels.hpp"
#include "mp/precalc.hpp"
#include "mp/sort_scan.hpp"

namespace mpsim::mp {
namespace {

using Fp64 = PrecisionTraits<PrecisionMode::FP64>;

struct LocalProfile {
  std::vector<double> profile;
  std::vector<std::int64_t> index;

  explicit LocalProfile(std::size_t entries)
      : profile(entries, std::numeric_limits<double>::infinity()),
        index(entries, -1) {}

  void update(std::size_t e, double dist, std::int64_t row) {
    if (dist < profile[e] ||
        (dist == profile[e] && (index[e] < 0 || row < index[e]))) {
      profile[e] = dist;
      index[e] = row;
    }
  }
};

}  // namespace

CpuReferenceResult compute_matrix_profile_cpu(
    const TimeSeries& reference, const TimeSeries& query,
    const CpuReferenceConfig& config) {
  const std::size_t m = config.window;
  const std::size_t d = reference.dims();
  MPSIM_CHECK(reference.dims() == query.dims(), "dimension mismatch");
  const std::size_t nr = reference.segment_count(m);
  const std::size_t nq = query.segment_count(m);
  MPSIM_CHECK(nr >= 1 && nq >= 1, "window longer than an input series");

  Stopwatch wall;

  // ---- Precalculation: identical arithmetic to the GPU FP64 engine. ----
  PrecalcArrays<Fp64> pre_r, pre_q;
  pre_r.resize(nr, d);
  pre_q.resize(nq, d);
  for (std::size_t k = 0; k < d; ++k) {
    precalc_dimension<Fp64>(reference.dim(k).data(), m, nr,
                            pre_r.mu.data() + k * nr,
                            pre_r.inv.data() + k * nr,
                            pre_r.df.data() + k * nr,
                            pre_r.dg.data() + k * nr);
    precalc_dimension<Fp64>(query.dim(k).data(), m, nq,
                            pre_q.mu.data() + k * nq,
                            pre_q.inv.data() + k * nq,
                            pre_q.df.data() + k * nq,
                            pre_q.dg.data() + k * nq);
  }

  // ---- Diagonal-parallel main loop. ----
  // Diagonal delta = j - i covers [-(nr-1), nq-1]; each diagonal is an
  // independent run of the QT recurrence, so threads own disjoint blocks
  // of diagonals and merge their local profiles afterwards ((MP)^N-style).
  const std::int64_t delta_min = -(std::int64_t(nr) - 1);
  const std::int64_t delta_max = std::int64_t(nq) - 1;
  const std::size_t delta_count = std::size_t(delta_max - delta_min + 1);

  ThreadPool pool(config.threads);
  const std::size_t block_count =
      std::min(delta_count, pool.worker_count() * 4);
  std::vector<LocalProfile> locals;
  locals.reserve(block_count);
  for (std::size_t b = 0; b < block_count; ++b) locals.emplace_back(nq * d);

  const double two_m = double(2 * m);
  pool.parallel_for(block_count, [&](std::size_t bbegin, std::size_t bend) {
    std::vector<double> qt(d), dists(d), scratch(d);
    for (std::size_t b = bbegin; b < bend; ++b) {
      LocalProfile& local = locals[b];
      const std::size_t d0 = b * delta_count / block_count;
      const std::size_t d1 = (b + 1) * delta_count / block_count;
      for (std::size_t di = d0; di < d1; ++di) {
        const std::int64_t delta = delta_min + std::int64_t(di);
        std::size_t i = delta >= 0 ? 0 : std::size_t(-delta);
        std::size_t j = delta >= 0 ? std::size_t(delta) : 0;
        const std::size_t steps = std::min(nr - i, nq - j);
        for (std::size_t t = 0; t < steps; ++t, ++i, ++j) {
          for (std::size_t k = 0; k < d; ++k) {
            if (t == 0) {
              // Seed with the naive mean-centred dot product — the same
              // arithmetic the GPU precalculation uses for QT seeds.
              qt[k] = centered_dot<Fp64>(
                  reference.dim(k).data() + i, query.dim(k).data() + j, m,
                  pre_r.mu[k * nr + i], pre_q.mu[k * nq + j]);
            } else {
              qt[k] = qt[k] + pre_r.df[k * nr + i] * pre_q.dg[k * nq + j] +
                      pre_r.dg[k * nr + i] * pre_q.df[k * nq + j];
            }
            dists[k] = qt_to_distance(qt[k], pre_r.inv[k * nr + i],
                                      pre_q.inv[k * nq + j], two_m);
          }
          if (config.exclusion > 0) {
            const std::int64_t row = config.r_offset + std::int64_t(i);
            const std::int64_t col = config.q_offset + std::int64_t(j);
            const std::int64_t gap = row > col ? row - col : col - row;
            if (gap < config.exclusion) continue;
          }
          std::sort(dists.begin(), dists.end());
          inclusive_scan_average(dists.data(), scratch.data(), d);
          for (std::size_t k = 0; k < d; ++k) {
            local.update(k * nq + j, dists[k], std::int64_t(i));
          }
        }
      }
    }
  });

  // ---- Merge thread-local profiles (order-independent tie rule). ----
  CpuReferenceResult out;
  out.segments = nq;
  out.dims = d;
  out.profile.assign(nq * d, std::numeric_limits<double>::infinity());
  out.index.assign(nq * d, -1);
  for (const auto& local : locals) {
    for (std::size_t e = 0; e < nq * d; ++e) {
      const double p = local.profile[e];
      const std::int64_t idx = local.index[e];
      if (p < out.profile[e] ||
          (p == out.profile[e] && idx >= 0 &&
           (out.index[e] < 0 || idx < out.index[e]))) {
        out.profile[e] = p;
        out.index[e] = idx;
      }
    }
  }

  out.wall_seconds = wall.seconds();
  out.modeled_seconds = modeled_cpu_seconds(nr, nq, d, m);
  return out;
}

double modeled_cpu_seconds(std::size_t n_r, std::size_t n_q, std::size_t dims,
                           std::size_t window) {
  const auto cpu = gpusim::skylake_cpu16();
  // Same per-row work as the GPU engine (the algorithm is shared), costed
  // on the CPU spec; the spec's launch/barrier overheads are zero.
  gpusim::KernelCost total;
  const auto dist = dist_calc_cost<Fp64>(n_q, dims);
  const auto sort = sort_scan_cost<Fp64>(n_q, dims);
  const auto upd = update_cost<Fp64>(n_q, dims);
  for (const auto* c : {&dist, &sort, &upd}) {
    total.bytes_read += c->bytes_read * std::int64_t(n_r);
    total.bytes_written += c->bytes_written * std::int64_t(n_r);
    total.flops += c->flops * std::int64_t(n_r);
  }
  const auto pre = precalc_cost<Fp64>(n_r, n_q, dims, window);
  total.bytes_read += pre.bytes_read;
  total.bytes_written += pre.bytes_written;
  total.flops += pre.flops;
  total.flop_width_bytes = 8;
  return gpusim::modeled_seconds(cpu, total);
}

}  // namespace mpsim::mp
