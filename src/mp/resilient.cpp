#include "mp/resilient.hpp"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <utility>

#include "common/metrics.hpp"
#include "common/stopwatch.hpp"
#include "gpusim/faults.hpp"
#include "gpusim/stream.hpp"
#include "mp/cpu_reference.hpp"
#include "mp/model.hpp"
#include "mp/single_tile.hpp"
#include "mp/tile_merge.hpp"
#include "mp/tile_plan.hpp"

namespace mpsim::mp {

namespace {

/// Splits a tile ledger total into kernel vs copy seconds (the copy share
/// can overlap compute when multiple streams are configured).
struct TileTimes {
  double kernels = 0.0;
  double copies = 0.0;
};

TileTimes tile_times(const gpusim::KernelLedger& ledger) {
  TileTimes t;
  for (const auto& [name, stats] : ledger.all()) {
    if (name.rfind("memcpy", 0) == 0) {
      t.copies += stats.modeled_seconds;
    } else {
      t.kernels += stats.modeled_seconds;
    }
  }
  return t;
}

/// A unit of schedulable work: one tile at its current precision rung.
struct TileJob {
  std::size_t index = 0;       ///< into the tile/result arrays
  PrecisionMode mode = PrecisionMode::FP64;
  int retries_here = 0;        ///< attempts burned on the current device
  std::set<int> exhausted;     ///< devices whose retry budget this tile spent
};

/// Counters + histograms of the resilient scheduler, registered once in
/// the global registry (per-call cost: relaxed atomics, nothing when the
/// registry is disabled).
struct SchedulerMetrics {
  Counter& tiles_completed;
  Counter& attempts;
  Counter& retries;
  Counter& reassigned;
  Counter& blacklists;
  Counter& cpu_fallback;
  Counter& escalations;
  Histogram& tile_seconds;

  static SchedulerMetrics& get() {
    auto& reg = MetricsRegistry::global();
    static SchedulerMetrics m{reg.counter("resilient.tiles_completed"),
                              reg.counter("resilient.attempts"),
                              reg.counter("resilient.retries"),
                              reg.counter("resilient.reassigned_tiles"),
                              reg.counter("resilient.blacklist_events"),
                              reg.counter("resilient.cpu_fallback_tiles"),
                              reg.counter("resilient.escalations"),
                              reg.histogram("resilient.tile_seconds")};
    return m;
  }
};

/// Shared scheduler state, guarded by one mutex.
struct SchedulerState {
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<std::deque<TileJob>> queues;  ///< per-device work queues
  std::vector<TileJob> cpu_jobs;            ///< orphans for the CPU fallback
  std::vector<char> blacklisted;
  std::vector<int> consecutive_failed_tiles;
  std::size_t outstanding = 0;  ///< jobs neither committed nor sent to CPU
  RunHealth health;
};

void log_event(SchedulerState& st, RunEvent event) {
  st.health.events.push_back(std::move(event));
}

/// Picks the healthiest destination queue for a requeued job (fewest
/// pending tiles, skipping blacklisted devices and devices the job has
/// already exhausted); pushes to the CPU-fallback list when none remain.
/// Caller holds the lock.
void requeue_locked(SchedulerState& st, TileJob job, int tile_id) {
  int target = -1;
  std::size_t best = 0;
  for (int dev = 0; dev < int(st.queues.size()); ++dev) {
    if (st.blacklisted[std::size_t(dev)] != 0) continue;
    if (job.exhausted.count(dev) != 0) continue;
    const std::size_t depth = st.queues[std::size_t(dev)].size();
    if (target < 0 || depth < best) {
      target = dev;
      best = depth;
    }
  }
  job.retries_here = 0;
  st.health.reassigned_tiles += 1;
  SchedulerMetrics::get().reassigned.add();
  if (target < 0) {
    log_event(st, {RunEvent::Kind::kDeferredToCpu, tile_id, -1, ""});
    st.outstanding -= 1;  // leaves the device scheduler's responsibility
    st.cpu_jobs.push_back(std::move(job));
  } else {
    log_event(st, {RunEvent::Kind::kReassigned, tile_id, target, ""});
    st.queues[std::size_t(target)].push_back(std::move(job));
  }
}

/// Marks `dev` blacklisted and hands its in-hand job elsewhere.  Orphans
/// still queued on `dev` are work-stolen by the healthy workers.  Caller
/// holds the lock.
void blacklist_locked(SchedulerState& st, int dev, bool offline,
                      const std::string& why) {
  st.blacklisted[std::size_t(dev)] = 1;
  st.health.blacklist_events += 1;
  SchedulerMetrics::get().blacklists.add();
  auto& status = st.health.devices[std::size_t(dev)];
  status.blacklisted = true;
  status.offline = offline;
  log_event(st, {RunEvent::Kind::kBlacklisted, -1, dev, why});
}

/// Everything the per-device workers need to execute tiles.
struct RunContext {
  gpusim::System* system = nullptr;
  const TimeSeries* reference = nullptr;
  const TimeSeries* query = nullptr;
  const MatrixProfileConfig* config = nullptr;
  std::vector<gpusim::StreamPool*> pools;
  const std::vector<Tile>* tiles = nullptr;
  std::vector<TileResult>* results = nullptr;
  std::vector<int>* executed_device = nullptr;  ///< -1 = CPU fallback
  std::vector<PrecisionMode>* final_mode = nullptr;
  StagingCache* staging = nullptr;
};

/// Runs one attempt of a tile on `dev` as a single stream task and
/// synchronizes that stream, so any failure is attributed to this tile.
void execute_attempt(const RunContext& ctx, int dev, PrecisionMode mode,
                     const Tile& tile, TileResult& result) {
  gpusim::Device& device = ctx.system->device(dev);
  gpusim::Stream& stream = ctx.pools[std::size_t(dev)]->next();
  dispatch_precision(mode, [&]<typename Traits>() {
    SingleTileEngine<Traits>::enqueue(device, &stream, *ctx.reference,
                                      *ctx.query, ctx.config->window, tile,
                                      ctx.config->exclusion, result,
                                      ctx.staging, ctx.config->row_path);
  });
  stream.synchronize();
}

/// Per-device supervisor: pulls tiles from its own queue (or steals
/// orphans from blacklisted devices' queues), retries transient faults
/// with exponential backoff, escalates numerically poisoned tiles, and
/// exits when blacklisted or when no work can remain.
void device_worker(const RunContext& ctx, SchedulerState& st, int dev) {
  const ResilienceConfig& rc = ctx.config->resilience;
  for (;;) {
    TileJob job;
    bool stolen = false;
    {
      std::unique_lock lock(st.mutex);
      st.cv.wait(lock, [&] {
        if (st.blacklisted[std::size_t(dev)] != 0) return true;
        if (st.outstanding == 0) return true;
        if (!st.queues[std::size_t(dev)].empty()) return true;
        for (int other = 0; other < int(st.queues.size()); ++other) {
          if (st.blacklisted[std::size_t(other)] != 0 &&
              !st.queues[std::size_t(other)].empty()) {
            return true;
          }
        }
        return false;
      });
      if (st.blacklisted[std::size_t(dev)] != 0 || st.outstanding == 0) {
        return;
      }
      if (!st.queues[std::size_t(dev)].empty()) {
        job = std::move(st.queues[std::size_t(dev)].front());
        st.queues[std::size_t(dev)].pop_front();
      } else {
        for (int other = 0; other < int(st.queues.size()); ++other) {
          if (st.blacklisted[std::size_t(other)] != 0 &&
              !st.queues[std::size_t(other)].empty()) {
            job = std::move(st.queues[std::size_t(other)].front());
            st.queues[std::size_t(other)].pop_front();
            stolen = true;
            break;
          }
        }
      }
    }
    const Tile& tile = (*ctx.tiles)[job.index];
    if (stolen) {
      std::lock_guard lock(st.mutex);
      st.health.reassigned_tiles += 1;
      SchedulerMetrics::get().reassigned.add();
      log_event(st, {RunEvent::Kind::kStolen, tile.id, dev, ""});
    }

    // ---- Attempt loop: retries and precision escalations. ----
    for (;;) {
      // TileResult is pinned in place (its ledger holds a mutex); the job
      // holder has exclusive access to its slot, so attempts run directly
      // into it, clearing any partial state from a failed try first.
      TileResult& attempt = (*ctx.results)[job.index];
      attempt.profile.clear();
      attempt.index.clear();
      attempt.ledger.reset();
      try {
        // Measured wall-clock span of this attempt: the trace line every
        // Fig.4/Fig.5-style analysis of a *real* run is built from.
        ScopedEvent span(MetricsRegistry::global(),
                         "tile " + std::to_string(tile.id) + " " +
                             to_string(job.mode),
                         dev, "tile", &SchedulerMetrics::get().tile_seconds);
        SchedulerMetrics::get().attempts.add();
        execute_attempt(ctx, dev, job.mode, tile, attempt);
      } catch (const DeviceFailedError& e) {
        std::lock_guard lock(st.mutex);
        st.health.devices[std::size_t(dev)].faults += 1;
        blacklist_locked(st, dev, /*offline=*/true, e.what());
        requeue_locked(st, std::move(job), tile.id);
        st.cv.notify_all();
        return;  // this worker is done for good
      } catch (const std::exception& e) {
        std::unique_lock lock(st.mutex);
        st.health.devices[std::size_t(dev)].faults += 1;
        if (job.retries_here < rc.max_retries) {
          job.retries_here += 1;
          st.health.retries += 1;
          SchedulerMetrics::get().retries.add();
          log_event(st, {RunEvent::Kind::kRetry, tile.id, dev,
                         std::string(e.what()) + " — retry " +
                             std::to_string(job.retries_here) + "/" +
                             std::to_string(rc.max_retries)});
          lock.unlock();
          const double ms =
              rc.backoff_ms * double(1 << (job.retries_here - 1));
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(ms));
          continue;  // retry on the same device
        }
        // Retry budget spent here: the device failed this whole tile.
        st.consecutive_failed_tiles[std::size_t(dev)] += 1;
        job.exhausted.insert(dev);
        log_event(st,
                  {RunEvent::Kind::kRetriesExhausted, tile.id, dev, e.what()});
        const bool drop =
            st.consecutive_failed_tiles[std::size_t(dev)] >=
            rc.blacklist_after;
        if (drop) {
          blacklist_locked(st, dev, /*offline=*/false,
                           std::to_string(rc.blacklist_after) +
                               " consecutive failed tiles");
        }
        requeue_locked(st, std::move(job), tile.id);
        st.cv.notify_all();
        if (drop) return;
        break;  // fetch the next job
      }

      // ---- Success: numerical self-healing, then commit. ----
      const double bad = non_finite_fraction(attempt.profile);
      if (rc.escalate_precision && bad > rc.non_finite_threshold) {
        const PrecisionMode next = escalated_precision(job.mode);
        if (next != job.mode) {
          std::lock_guard lock(st.mutex);
          st.health.escalations.push_back(
              RunHealth::Escalation{tile.id, job.mode, next, bad});
          SchedulerMetrics::get().escalations.add();
          log_event(st, {RunEvent::Kind::kEscalated, tile.id, dev,
                         std::to_string(int(100.0 * bad)) +
                             "% non-finite, escalating " +
                             to_string(job.mode) + " -> " + to_string(next)});
          job.mode = next;
          continue;  // re-run one rung up
        }
      }
      {
        std::lock_guard lock(st.mutex);
        (*ctx.executed_device)[job.index] = dev;
        (*ctx.final_mode)[job.index] = job.mode;
        st.consecutive_failed_tiles[std::size_t(dev)] = 0;
        st.health.devices[std::size_t(dev)].tiles_completed += 1;
        SchedulerMetrics::get().tiles_completed.add();
        st.outstanding -= 1;
        st.cv.notify_all();
      }
      break;  // fetch the next job
    }
  }
}

/// Computes one orphaned tile on the CPU reference path.  In FP64 this is
/// bit-identical to the GPU engine (same precalculation, recurrence and
/// merge arithmetic over the same tile-local seeds).
void cpu_fallback_tile(const TimeSeries& reference, const TimeSeries& query,
                       std::size_t m, const Tile& tile,
                       std::int64_t exclusion, TileResult& result) {
  const TimeSeries sub_ref = reference.slice(tile.r_begin,
                                             tile.r_count + m - 1);
  const TimeSeries sub_query = query.slice(tile.q_begin,
                                           tile.q_count + m - 1);
  CpuReferenceConfig cc;
  cc.window = m;
  cc.exclusion = exclusion;
  cc.r_offset = std::int64_t(tile.r_begin);
  cc.q_offset = std::int64_t(tile.q_begin);
  const CpuReferenceResult cpu =
      compute_matrix_profile_cpu(sub_ref, sub_query, cc);
  result.profile = cpu.profile;
  result.ledger.reset();
  result.index.resize(cpu.index.size());
  for (std::size_t e = 0; e < cpu.index.size(); ++e) {
    // Local reference rows become global segment indices.
    result.index[e] =
        cpu.index[e] < 0 ? -1 : cpu.index[e] + std::int64_t(tile.r_begin);
  }
}

}  // namespace

std::string RunEvent::to_string() const {
  const std::string tile = "tile " + std::to_string(tile_id);
  const std::string dev = "device " + std::to_string(device);
  switch (kind) {
    case Kind::kRetry:
      return tile + ": " + detail + " on " + dev;
    case Kind::kRetriesExhausted:
      return tile + ": retries exhausted on " + dev + " (" + detail + ")";
    case Kind::kReassigned:
      return tile + ": reassigned to " + dev;
    case Kind::kStolen:
      return tile + ": stolen by " + dev;
    case Kind::kBlacklisted:
      return dev + " blacklisted: " + detail;
    case Kind::kDeferredToCpu:
      return tile + ": no healthy device left, deferring to CPU fallback";
    case Kind::kCpuFallback:
      return tile + ": completed on the CPU reference path (FP64)";
    case Kind::kEscalated:
      return tile + ": " + detail;
  }
  return detail;
}

std::string RunHealth::summary() const {
  std::ostringstream os;
  os << "run health: " << (degraded ? "DEGRADED" : "clean") << " — "
     << faults_injected << " fault(s), " << retries << " retry(ies), "
     << reassigned_tiles << " reassignment(s), " << blacklist_events
     << " blacklist(s), " << cpu_fallback_tiles << " CPU-fallback tile(s), "
     << escalations.size() << " escalation(s)\n";
  for (const auto& dev : devices) {
    os << "  device " << dev.device << ": " << dev.tiles_completed
       << " tile(s), " << dev.faults << " fault(s)"
       << (dev.offline ? ", OFFLINE" : dev.blacklisted ? ", BLACKLISTED" : "")
       << "\n";
  }
  for (const auto& esc : escalations) {
    os << "  tile " << esc.tile_id << ": escalated " << to_string(esc.from)
       << " -> " << to_string(esc.to) << " ("
       << int(100.0 * esc.non_finite_fraction) << "% non-finite)\n";
  }
  for (const auto& event : events) {
    os << "  | " << event.to_string() << "\n";
  }
  return os.str();
}

MatrixProfileResult run_resilient(gpusim::System& system,
                                  const TimeSeries& reference,
                                  const TimeSeries& query,
                                  const MatrixProfileConfig& config) {
  const std::size_t m = config.window;
  const std::size_t d = reference.dims();
  const std::size_t n_r = reference.segment_count(m);
  const std::size_t n_q = query.segment_count(m);
  MPSIM_CHECK(n_r >= 1 && n_q >= 1,
              "window " << m << " longer than the input series");

  Stopwatch wall;
  ScopedEvent run_span(MetricsRegistry::global(), "run_resilient", -1, "cpu");

  auto tiles = compute_tile_list(n_r, n_q, config.tiles);
  if (config.assignment == TileAssignment::kLpt) {
    assign_tiles_lpt(tiles, system.device_count());
  } else {
    assign_tiles_round_robin(tiles, system.device_count());
  }

  // One stream pool per device; a tile occupies one stream per attempt so
  // the stream's error capture isolates failures per tile.
  std::vector<std::unique_ptr<gpusim::StreamPool>> pools;
  for (int dev = 0; dev < system.device_count(); ++dev) {
    pools.push_back(std::make_unique<gpusim::StreamPool>(
        system.device(dev), config.streams_per_device));
  }

  std::vector<TileResult> results(tiles.size());
  std::vector<int> executed_device(tiles.size(), -1);
  std::vector<PrecisionMode> final_mode(tiles.size(), config.mode);

  SchedulerState st;
  st.queues.resize(std::size_t(system.device_count()));
  st.blacklisted.assign(std::size_t(system.device_count()), 0);
  st.consecutive_failed_tiles.assign(std::size_t(system.device_count()), 0);
  st.outstanding = tiles.size();
  for (int dev = 0; dev < system.device_count(); ++dev) {
    RunHealth::DeviceStatus status;
    status.device = dev;
    st.health.devices.push_back(status);
  }
  for (std::size_t t = 0; t < tiles.size(); ++t) {
    TileJob job;
    job.index = t;
    job.mode = config.mode;
    st.queues[std::size_t(tiles[t].device)].push_back(std::move(job));
  }

  // Shared across devices and attempts: series conversion happens once per
  // storage format for the whole run (retries/escalations reuse it too).
  StagingCache staging(reference, query);

  RunContext ctx;
  ctx.system = &system;
  ctx.reference = &reference;
  ctx.query = &query;
  ctx.config = &config;
  ctx.staging = &staging;
  for (auto& pool : pools) ctx.pools.push_back(pool.get());
  ctx.tiles = &tiles;
  ctx.results = &results;
  ctx.executed_device = &executed_device;
  ctx.final_mode = &final_mode;

  std::vector<std::thread> workers;
  workers.reserve(std::size_t(system.device_count()));
  for (int dev = 0; dev < system.device_count(); ++dev) {
    workers.emplace_back(
        [&ctx, &st, dev] { device_worker(ctx, st, dev); });
  }
  for (auto& w : workers) w.join();

  // ---- Graceful degradation: finish orphans on the CPU reference. ----
  std::vector<TileJob> leftovers = std::move(st.cpu_jobs);
  for (auto& queue : st.queues) {
    for (auto& job : queue) leftovers.push_back(std::move(job));
    queue.clear();
  }
  if (!leftovers.empty() && !config.resilience.cpu_fallback) {
    throw Error("all devices failed and the CPU fallback is disabled (" +
                std::to_string(leftovers.size()) + " tiles incomplete)");
  }
  for (auto& job : leftovers) {
    const Tile& tile = tiles[job.index];
    {
      ScopedEvent span(MetricsRegistry::global(),
                       "tile " + std::to_string(tile.id) + " cpu-fallback",
                       -1, "cpu",
                       &SchedulerMetrics::get().tile_seconds);
      cpu_fallback_tile(reference, query, m, tile, config.exclusion,
                        results[job.index]);
    }
    executed_device[job.index] = -1;
    final_mode[job.index] = PrecisionMode::FP64;
    st.health.cpu_fallback_tiles += 1;
    SchedulerMetrics::get().cpu_fallback.add();
    log_event(st, {RunEvent::Kind::kCpuFallback, tile.id, -1, ""});
  }

  // ---- CPU merge (Pseudocode 2, lines 6-8). ----
  // Parallel over output columns; bit-identical to the serial merge (each
  // column sees the tiles in the same ascending order).
  MatrixProfileResult out;
  {
    ScopedEvent span(MetricsRegistry::global(), "merge_tile_results", -1,
                     "cpu");
    ThreadPool merge_pool;
    merge_tile_results(tiles, results, n_q, d, out, &merge_pool);
  }

  // ---- Modelled makespan (grouped by the device that ran each tile). ----
  std::vector<TileTimes> device_time(std::size_t(system.device_count()));
  std::vector<int> device_tiles(std::size_t(system.device_count()), 0);
  for (std::size_t t = 0; t < tiles.size(); ++t) {
    if (executed_device[t] < 0) continue;  // CPU fallback: no device time
    const auto tt = tile_times(results[t].ledger);
    auto& acc = device_time[std::size_t(executed_device[t])];
    acc.kernels += tt.kernels;
    acc.copies += tt.copies;
    device_tiles[std::size_t(executed_device[t])] += 1;
  }
  double makespan = 0.0;
  for (std::size_t dev = 0; dev < device_time.size(); ++dev) {
    const bool overlapped =
        config.streams_per_device > 1 && device_tiles[dev] > 1;
    const double t = overlapped
                         ? std::max(device_time[dev].kernels,
                                    device_time[dev].copies)
                         : device_time[dev].kernels + device_time[dev].copies;
    makespan = std::max(makespan, t);
  }
  out.modeled_device_seconds = makespan;
  out.modeled_merge_seconds = 0.0;
  for (const auto& tile : tiles) {
    out.modeled_merge_seconds += model_merge_seconds(1, tile.q_count, d);
  }

  // ---- Per-kernel breakdown (successful attempts only). ----
  gpusim::KernelLedger merged;
  for (const auto& r : results) merged.merge_from(r.ledger);
  for (const auto& [name, stats] : merged.all()) {
    out.breakdown.push_back(KernelBreakdownEntry{
        name, stats.launches, stats.modeled_seconds, stats.measured_seconds});
  }
  // Per-kernel accounting in the registry: measured wall seconds next to
  // the roofline-modelled seconds of the same launches (registration cost
  // only here, at end of run; nothing when the registry is disabled).
  if (MetricsRegistry::global().enabled()) {
    auto& reg = MetricsRegistry::global();
    for (const auto& entry : out.breakdown) {
      reg.counter("kernel." + entry.name + ".launches")
          .add(std::uint64_t(entry.launches));
      reg.gauge("kernel." + entry.name + ".wall_seconds")
          .set(entry.measured_seconds);
      reg.gauge("kernel." + entry.name + ".modeled_seconds")
          .set(entry.modeled_seconds);
    }
  }

  // ---- Health report. ----
  out.health = std::move(st.health);
  if (gpusim::FaultInjector* injector =
          system.device(0).fault_injector()) {
    out.health.faults_injected = int(injector->fault_count());
  }
  out.health.degraded = out.health.blacklist_events > 0 ||
                        out.health.cpu_fallback_tiles > 0 ||
                        out.health.retries > 0 ||
                        out.health.reassigned_tiles > 0;

  out.wall_seconds = wall.seconds();
  return out;
}

}  // namespace mpsim::mp
