#include "mp/resilient.hpp"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <sstream>
#include <thread>
#include <utility>

#include "common/metrics.hpp"
#include "common/shutdown.hpp"
#include "common/stopwatch.hpp"
#include "gpusim/cancel.hpp"
#include "gpusim/faults.hpp"
#include "gpusim/stream.hpp"
#include "mp/checkpoint.hpp"
#include "mp/cpu_reference.hpp"
#include "mp/model.hpp"
#include "mp/single_tile.hpp"
#include "mp/tile_merge.hpp"
#include "mp/tile_plan.hpp"

namespace mpsim::mp {

namespace {

/// Splits a tile ledger total into kernel vs copy seconds (the copy share
/// can overlap compute when multiple streams are configured).
struct TileTimes {
  double kernels = 0.0;
  double copies = 0.0;
};

TileTimes tile_times(const gpusim::KernelLedger& ledger) {
  TileTimes t;
  for (const auto& [name, stats] : ledger.all()) {
    if (name.rfind("memcpy", 0) == 0) {
      t.copies += stats.modeled_seconds;
    } else {
      t.kernels += stats.modeled_seconds;
    }
  }
  return t;
}

/// A unit of schedulable work: one tile at its current precision rung.
struct TileJob {
  std::size_t index = 0;       ///< into the tile/result arrays
  PrecisionMode mode = PrecisionMode::FP64;
  int retries_here = 0;        ///< attempts burned on the current device
  bool speculative = false;    ///< watchdog-launched backup attempt
  std::set<int> exhausted;     ///< devices whose retry budget this tile spent
};

/// Counters + histograms of the resilient scheduler, registered once in
/// the global registry (per-call cost: relaxed atomics, nothing when the
/// registry is disabled).
struct SchedulerMetrics {
  Counter& tiles_completed;
  Counter& attempts;
  Counter& retries;
  Counter& reassigned;
  Counter& blacklists;
  Counter& cpu_fallback;
  Counter& escalations;
  Counter& checkpoint_writes;
  Counter& tiles_resumed;
  Counter& watchdog_fires;
  Counter& speculative_wins;
  Counter& speculative_losses;
  Counter& tile_splits;
  Counter& resume_fallback;
  Counter& slice_commits;
  Counter& slices_partial;
  Counter& slices_discarded;
  Histogram& tile_seconds;

  static SchedulerMetrics& get() {
    auto& reg = MetricsRegistry::global();
    static SchedulerMetrics m{reg.counter("resilient.tiles_completed"),
                              reg.counter("resilient.attempts"),
                              reg.counter("resilient.retries"),
                              reg.counter("resilient.reassigned_tiles"),
                              reg.counter("resilient.blacklist_events"),
                              reg.counter("resilient.cpu_fallback_tiles"),
                              reg.counter("resilient.escalations"),
                              reg.counter("resilient.checkpoint_writes"),
                              reg.counter("resilient.tiles_resumed"),
                              reg.counter("resilient.watchdog_fires"),
                              reg.counter("resilient.speculative_wins"),
                              reg.counter("resilient.speculative_losses"),
                              reg.counter("resilient.tile_splits"),
                              reg.counter("resilient.resume_fallback"),
                              reg.counter("resilient.slice_commits"),
                              reg.counter("resilient.slices_partial"),
                              reg.counter("resilient.slices_discarded"),
                              reg.histogram("resilient.tile_seconds")};
    return m;
  }
};

/// One in-flight attempt, visible to the watchdog monitor.  The token is
/// owned by the executing worker's stack frame; the record is erased
/// before that frame unwinds, so the pointer cannot dangle.
struct AttemptRecord {
  std::size_t job_index = 0;
  int tile_id = 0;
  int device = -1;
  PrecisionMode mode = PrecisionMode::FP64;
  double start_seconds = 0.0;    ///< run-clock time the attempt started
  double modeled_seconds = 0.0;  ///< perf-model estimate for the deadline
  gpusim::CancellationToken* token = nullptr;
  bool speculative = false;
  bool fired = false;            ///< watchdog already flagged this attempt
};

/// Shared scheduler state, guarded by one mutex.
struct SchedulerState {
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<std::deque<TileJob>> queues;  ///< per-device work queues
  std::vector<TileJob> cpu_jobs;            ///< orphans for the CPU fallback
  std::vector<char> blacklisted;
  std::vector<int> consecutive_failed_tiles;
  std::size_t outstanding = 0;  ///< jobs neither committed nor sent to CPU
  RunHealth health;

  // ---- Durability & liveness layer. ----
  std::vector<char> committed;       ///< per tile: result is final
  std::vector<int> backups_inflight; ///< per tile: queued/running backups
  std::vector<int> watchdog_strikes; ///< per device: deadline overruns
  std::uint64_t next_attempt_id = 0;
  std::map<std::uint64_t, AttemptRecord> inflight;
  double wall_per_modeled = 0.0;  ///< EWMA calibration of the perf model
  bool interrupted = false;       ///< shutdown observed; run is unwinding
  bool stop_monitor = false;
  std::size_t total_commits = 0;
  std::size_t commits_since_checkpoint = 0;
  std::mutex checkpoint_mutex;    ///< serialises journal writes (I/O only)

  // ---- Row-slice durability + shard-mode bookkeeping. ----
  std::vector<CheckpointSlice> partials;  ///< per tile: best snapshot so far
  std::vector<char> result_valid;  ///< per tile: results[t] holds OUR result
  std::size_t slice_commits_total = 0;
  bool shard_failed = false;       ///< NodeFailedError: shard is going down
  std::string shard_fail_reason;
};

void log_event(SchedulerState& st, RunEvent event) {
  st.health.events.push_back(std::move(event));
}

/// Picks the healthiest destination queue for a requeued job (fewest
/// pending tiles, skipping blacklisted devices and devices the job has
/// already exhausted); pushes to the CPU-fallback list when none remain.
/// Caller holds the lock.
void requeue_locked(SchedulerState& st, TileJob job, int tile_id) {
  if (st.committed[job.index]) return;  // another attempt already won
  if (job.speculative) {
    // A requeued backup becomes an ordinary job; the backup slot frees up
    // so the watchdog may speculate again if the primary stays stuck.
    st.backups_inflight[job.index] -= 1;
    job.speculative = false;
  }
  int target = -1;
  std::size_t best = 0;
  for (int dev = 0; dev < int(st.queues.size()); ++dev) {
    if (st.blacklisted[std::size_t(dev)] != 0) continue;
    if (job.exhausted.count(dev) != 0) continue;
    const std::size_t depth = st.queues[std::size_t(dev)].size();
    if (target < 0 || depth < best) {
      target = dev;
      best = depth;
    }
  }
  job.retries_here = 0;
  st.health.reassigned_tiles += 1;
  SchedulerMetrics::get().reassigned.add();
  if (target < 0) {
    for (const TileJob& queued : st.cpu_jobs) {
      if (queued.index == job.index) return;  // already deferred once
    }
    log_event(st, {RunEvent::Kind::kDeferredToCpu, tile_id, -1, ""});
    st.outstanding -= 1;  // leaves the device scheduler's responsibility
    st.cpu_jobs.push_back(std::move(job));
  } else {
    log_event(st, {RunEvent::Kind::kReassigned, tile_id, target, ""});
    st.queues[std::size_t(target)].push_back(std::move(job));
  }
}

/// Marks `dev` blacklisted and hands its in-hand job elsewhere.  Orphans
/// still queued on `dev` are work-stolen by the healthy workers.  Caller
/// holds the lock.
void blacklist_locked(SchedulerState& st, int dev, bool offline,
                      const std::string& why) {
  st.blacklisted[std::size_t(dev)] = 1;
  st.health.blacklist_events += 1;
  SchedulerMetrics::get().blacklists.add();
  auto& status = st.health.devices[std::size_t(dev)];
  status.blacklisted = true;
  status.offline = offline;
  log_event(st, {RunEvent::Kind::kBlacklisted, -1, dev, why});
}

/// Everything the per-device workers need to execute tiles.
struct RunContext {
  gpusim::System* system = nullptr;
  const TimeSeries* reference = nullptr;
  const TimeSeries* query = nullptr;
  const MatrixProfileConfig* config = nullptr;
  std::vector<gpusim::StreamPool*> pools;
  const std::vector<Tile>* tiles = nullptr;
  std::vector<TileResult>* results = nullptr;
  std::vector<int>* executed_device = nullptr;  ///< -1 = CPU fallback
  std::vector<PrecisionMode>* final_mode = nullptr;
  StagingCache* staging = nullptr;
  const Stopwatch* clock = nullptr;   ///< run clock (watchdog time base)
  std::uint64_t fingerprint = 0;      ///< checkpoint identity of this run
  std::size_t dims = 0;               ///< d (journalled with every slice)

  // ---- Shard mode (multi-node coordinator present). ----
  const ShardHooks* hooks = nullptr;  ///< nullptr = classic single-node run
  int node_id = -1;                   ///< journalled with every slice
  int device_base = 0;                ///< local dev -> global device index
  /// Per-tile restored row-slice prefixes (r_count == 0 = none); attempts
  /// at the prefix's mode resume from its last journalled row.
  const std::vector<CheckpointSlice>* prefixes = nullptr;
};

/// Runs one attempt of a tile on `dev` as a single stream task and
/// synchronizes that stream, so any failure is attributed to this tile.
void execute_attempt(const RunContext& ctx, int dev, PrecisionMode mode,
                     const Tile& tile, TileResult& result,
                     const gpusim::CancellationToken* cancel,
                     const SliceProgress* slice) {
  gpusim::Device& device = ctx.system->device(dev);
  gpusim::Stream& stream = ctx.pools[std::size_t(dev)]->next();
  dispatch_precision(mode, [&]<typename Traits>() {
    SingleTileEngine<Traits>::enqueue(device, &stream, *ctx.reference,
                                      *ctx.query, ctx.config->window, tile,
                                      ctx.config->exclusion, result,
                                      ctx.staging, ctx.config->row_path,
                                      ctx.config->prefilter, cancel, slice);
  });
  stream.synchronize();
}

/// Column-wise min/argmin fold of (src_profile, src_index) into the dst
/// arrays — the same lexicographic tie rule as merge_sub_tiles and
/// merge_tile_results (smaller distance wins; on equal distance the
/// smaller non-negative index wins; NaN never displaces).  Folding a
/// journalled row-slice prefix into the tail rows' attempt with this rule
/// reproduces the uninterrupted run's bits because the rule is exactly
/// the per-row profile update's and is associative.
void min_merge_into(std::vector<double>& dst_profile,
                    std::vector<std::int64_t>& dst_index,
                    const std::vector<double>& src_profile,
                    const std::vector<std::int64_t>& src_index) {
  for (std::size_t e = 0; e < dst_profile.size(); ++e) {
    const double p = src_profile[e];
    const std::int64_t idx = src_index[e];
    if (p < dst_profile[e] ||
        (p == dst_profile[e] && idx >= 0 &&
         (dst_index[e] < 0 || idx < dst_index[e]))) {
      dst_profile[e] = p;
      dst_index[e] = idx;
    }
  }
}

/// Column-wise min/argmin merge of row sub-tiles into their parent tile's
/// result slot.  The sub-tiles cover disjoint reference rows of the same
/// query columns, so entries align 1:1; the tie rule is exactly
/// merge_tile_results' (smaller distance wins; on equal distance the
/// smaller non-negative index wins; NaN never displaces), and because the
/// rule is a lexicographic min it is associative — merging sub-tiles here
/// and then tiles at run level is bit-identical to merging the sub-tiles
/// as planner tiles directly.
void merge_sub_tiles(const TileResult& left, const TileResult& right,
                     TileResult& out) {
  const std::size_t entries = left.profile.size();
  out.profile.assign(entries, std::numeric_limits<double>::infinity());
  out.index.assign(entries, -1);
  for (const TileResult* sub : {&left, &right}) {
    for (std::size_t e = 0; e < entries; ++e) {
      const double p = sub->profile[e];
      const std::int64_t idx = sub->index[e];
      if (p < out.profile[e] ||
          (p == out.profile[e] && idx >= 0 &&
           (out.index[e] < 0 || idx < out.index[e]))) {
        out.profile[e] = p;
        out.index[e] = idx;
      }
    }
  }
  out.ledger.reset();
  out.ledger.merge_from(left.ledger);
  out.ledger.merge_from(right.ledger);
  out.prefilter = {};
  out.prefilter.merge_from(left.prefilter);
  out.prefilter.merge_from(right.prefilter);
}

/// Executes a tile, degrading under memory pressure: when the device
/// cannot hold the tile's working set, split it along the row axis with
/// the planner's split_range boundaries (first half takes the extra row)
/// and run the halves sequentially, each restarting from its own
/// precalculation.  Recurses until the pieces fit or the split budget is
/// spent (then the DeviceMemoryError propagates like any other fault).
void execute_with_split(const RunContext& ctx, SchedulerState& st, int dev,
                        PrecisionMode mode, const Tile& tile,
                        TileResult& result,
                        const gpusim::CancellationToken* cancel, int depth,
                        const SliceProgress* slice) {
  try {
    execute_attempt(ctx, dev, mode, tile, result, cancel, slice);
    return;
  } catch (const DeviceMemoryError& e) {
    const ResilienceConfig& rc = ctx.config->resilience;
    if (depth >= rc.max_tile_splits || tile.r_count < 2) throw;
    Tile left = tile;
    Tile right = tile;
    left.r_count = tile.r_count - tile.r_count / 2;
    right.r_begin = tile.r_begin + left.r_count;
    right.r_count = tile.r_count - left.r_count;
    {
      std::lock_guard lock(st.mutex);
      st.health.tile_splits += 1;
      SchedulerMetrics::get().tile_splits.add();
      log_event(st, {RunEvent::Kind::kTileSplit, tile.id, dev,
                     "rows [" + std::to_string(tile.r_begin) + ", +" +
                         std::to_string(tile.r_count) + ") split at +" +
                         std::to_string(left.r_count) + ": " + e.what()});
    }
    TileResult left_result, right_result;
    // Sub-tiles restart from their own precalculation and cover the full
    // row ranges: no prefix resume, no snapshot emission (their row state
    // is not a prefix of the whole tile's).
    execute_with_split(ctx, st, dev, mode, left, left_result, cancel,
                       depth + 1, nullptr);
    execute_with_split(ctx, st, dev, mode, right, right_result, cancel,
                       depth + 1, nullptr);
    merge_sub_tiles(left_result, right_result, result);
  }
}

/// Snapshot of every committed tile (as a complete row slice) plus the
/// best partial row-slice of every in-flight tile + the event history,
/// written as an mpsim-ckpt-v3 journal.  The copy is taken under the
/// scheduler lock; the file I/O runs outside it (serialised by
/// checkpoint_mutex so concurrent committers cannot interleave temp
/// files).  In shard mode only tiles this node committed are journalled
/// (result_valid); the coordinator's base journal covers the rest.
void write_checkpoint_now(const RunContext& ctx, SchedulerState& st) {
  const std::string& path = ctx.config->checkpoint.write_path;
  if (path.empty()) return;
  std::lock_guard io(st.checkpoint_mutex);
  CheckpointData data;
  data.fingerprint = ctx.fingerprint;
  data.tile_count = ctx.tiles->size();
  std::size_t complete = 0;
  {
    std::lock_guard lock(st.mutex);
    for (std::size_t t = 0; t < ctx.tiles->size(); ++t) {
      const Tile& tile = (*ctx.tiles)[t];
      if (st.committed[t] && st.result_valid[t] != 0) {
        CheckpointSlice entry;
        entry.tile_index = t;
        entry.tile_id = std::int32_t(tile.id);
        entry.device = std::int32_t((*ctx.executed_device)[t]);
        entry.node = std::int32_t(ctx.node_id);
        entry.complete = 1;
        entry.mode = (*ctx.final_mode)[t];
        entry.r_begin = tile.r_begin;
        entry.r_count = tile.r_count;
        entry.q_begin = tile.q_begin;
        entry.q_count = tile.q_count;
        entry.dims = ctx.dims;
        entry.profile = (*ctx.results)[t].profile;
        entry.index = (*ctx.results)[t].index;
        entry.prefilter = (*ctx.results)[t].prefilter;
        data.slices.push_back(std::move(entry));
        complete += 1;
      } else if (!st.committed[t] && st.partials[t].r_count > 0) {
        data.slices.push_back(st.partials[t]);
      }
    }
    data.events = st.health.events;
    st.commits_since_checkpoint = 0;
  }
  write_checkpoint(path, data);
  {
    std::lock_guard lock(st.mutex);
    st.health.checkpoint_writes += 1;
    SchedulerMetrics::get().checkpoint_writes.add();
    log_event(st, {RunEvent::Kind::kCheckpointWritten, -1, -1,
                   std::to_string(complete) + "/" +
                       std::to_string(data.tile_count) + " tiles (" +
                       std::to_string(data.slices.size() - complete) +
                       " partial slices) -> " + path});
  }
}

/// SliceProgress::on_slice sink: records the snapshot of rows
/// [0, rows_done) of tile `t` as its journalled partial slice (keeping
/// the furthest snapshot when concurrent attempts race), flushes the
/// journal, and honours the kill_after_slices chaos hook.  `prefix`
/// (optional) is the restored row prefix this attempt resumed from; its
/// rows are folded in so the stored slice always covers rows from 0.
void note_slice_snapshot(const RunContext& ctx, SchedulerState& st,
                         std::size_t t, int dev,
                         const CheckpointSlice* prefix,
                         std::size_t rows_done, std::vector<double> profile,
                         std::vector<std::int64_t> index) {
  const Tile& tile = (*ctx.tiles)[t];
  if (prefix != nullptr) {
    min_merge_into(profile, index, prefix->profile, prefix->index);
  }
  bool kill_due = false;
  {
    std::lock_guard lock(st.mutex);
    if (st.committed[t] || st.interrupted) return;
    CheckpointSlice& slot = st.partials[t];
    if (slot.r_count >= rows_done) return;  // a racing attempt got further
    slot.tile_index = t;
    slot.tile_id = std::int32_t(tile.id);
    slot.device = std::int32_t(ctx.device_base + dev);
    slot.node = std::int32_t(ctx.node_id);
    slot.complete = 0;
    slot.mode = ctx.config->mode;
    slot.r_begin = tile.r_begin;
    slot.r_count = rows_done;
    slot.q_begin = tile.q_begin;
    slot.q_count = tile.q_count;
    slot.dims = ctx.dims;
    slot.profile = std::move(profile);
    slot.index = std::move(index);
    st.health.slice_commits += 1;
    SchedulerMetrics::get().slice_commits.add();
    st.slice_commits_total += 1;
    kill_due =
        ctx.config->checkpoint.kill_after_slices > 0 &&
        st.slice_commits_total ==
            std::size_t(ctx.config->checkpoint.kill_after_slices);
  }
  write_checkpoint_now(ctx, st);
  if (kill_due) request_shutdown();
}

/// Watchdog + shutdown monitor.  Wakes every watchdog_poll_ms: propagates
/// a requested shutdown to every in-flight attempt (cancel + unwind), and
/// — when the watchdog is enabled — flags attempts that overran their
/// deadline, launches speculative backups on other healthy devices, and
/// blacklists devices that keep hanging.
void monitor_thread(const RunContext& ctx, SchedulerState& st) {
  const ResilienceConfig& rc = ctx.config->resilience;
  const auto poll = std::chrono::duration<double, std::milli>(
      rc.watchdog_poll_ms);
  std::unique_lock lock(st.mutex);
  while (!st.stop_monitor) {
    st.cv.wait_for(lock, poll, [&] { return st.stop_monitor; });
    if (st.stop_monitor) break;

    if (rc.honor_shutdown && !st.interrupted && shutdown_requested()) {
      st.interrupted = true;
      log_event(st, {RunEvent::Kind::kInterrupted, -1, -1,
                     std::to_string(st.total_commits) + "/" +
                         std::to_string(ctx.tiles->size()) +
                         " tiles committed"});
      for (auto& [id, attempt] : st.inflight) attempt.token->cancel();
      st.cv.notify_all();
    }

    // Shard mode: withdraw local attempts of tiles another node already
    // committed (the cross-node analogue of the commit block's
    // first-finisher-wins cancellation).  Runs with or without the
    // watchdog — it is a liveness mechanism, not a performance one.
    if (ctx.hooks != nullptr && ctx.hooks->committed_elsewhere) {
      bool swept = false;
      for (auto& [id, attempt] : st.inflight) {
        const std::size_t t = attempt.job_index;
        if (!st.committed[t]) {
          if (!ctx.hooks->committed_elsewhere(t)) continue;
          st.committed[t] = 1;
          st.outstanding -= 1;
        }
        attempt.token->cancel();
        swept = true;
      }
      if (swept) st.cv.notify_all();
    }
    if (!rc.watchdog || st.interrupted) continue;
    if (st.wall_per_modeled <= 0.0) continue;  // no calibration yet

    const double now = ctx.clock->seconds();
    for (auto& [id, attempt] : st.inflight) {
      if (attempt.fired) continue;
      const double deadline =
          std::max(rc.watchdog_min_deadline_ms * 1e-3,
                   rc.watchdog_slack * st.wall_per_modeled *
                       attempt.modeled_seconds);
      const double elapsed = now - attempt.start_seconds;
      if (elapsed < deadline) continue;

      attempt.fired = true;
      st.health.watchdog_fires += 1;
      SchedulerMetrics::get().watchdog_fires.add();
      log_event(st, {RunEvent::Kind::kWatchdogFired, attempt.tile_id,
                     attempt.device,
                     "attempt overran its deadline (" +
                         std::to_string(elapsed) + " s vs " +
                         std::to_string(deadline) + " s)"});
      if (MetricsRegistry::global().enabled()) {
        auto& reg = MetricsRegistry::global();
        reg.record_event({"watchdog fire tile " +
                              std::to_string(attempt.tile_id),
                          attempt.device, "watchdog", reg.now_seconds(),
                          0.0});
      }

      // Repeated hangs feed the blacklist exactly like failed tiles.
      st.watchdog_strikes[std::size_t(attempt.device)] += 1;
      const bool drop =
          st.blacklisted[std::size_t(attempt.device)] == 0 &&
          st.watchdog_strikes[std::size_t(attempt.device)] >=
              rc.blacklist_after;
      if (drop) {
        blacklist_locked(st, attempt.device, /*offline=*/false,
                         std::to_string(rc.blacklist_after) +
                             " watchdog deadline overruns");
        for (auto& [other_id, other] : st.inflight) {
          if (other.device == attempt.device) other.token->cancel();
        }
      }

      // Speculative re-execution: one backup per tile at a time, on the
      // least-loaded healthy device that is not the overdue one.  With no
      // such device the overdue attempt is cancelled instead, turning the
      // hang into an ordinary retry on whatever device remains.
      if (rc.speculate && st.committed[attempt.job_index] == 0 &&
          st.backups_inflight[attempt.job_index] == 0) {
        int target = -1;
        std::size_t best = 0;
        for (int dev = 0; dev < int(st.queues.size()); ++dev) {
          if (dev == attempt.device) continue;
          if (st.blacklisted[std::size_t(dev)] != 0) continue;
          const std::size_t depth = st.queues[std::size_t(dev)].size();
          if (target < 0 || depth < best) {
            target = dev;
            best = depth;
          }
        }
        if (target >= 0) {
          TileJob backup;
          backup.index = attempt.job_index;
          backup.mode = attempt.mode;
          backup.speculative = true;
          st.backups_inflight[attempt.job_index] += 1;
          st.queues[std::size_t(target)].push_back(std::move(backup));
          log_event(st, {RunEvent::Kind::kSpeculated, attempt.tile_id,
                         target,
                         "backup of the attempt on device " +
                             std::to_string(attempt.device)});
        } else if (!drop) {
          attempt.token->cancel();
        }
      }
      st.cv.notify_all();
    }
  }
}

/// Per-device supervisor: pulls tiles from its own queue (or steals
/// orphans from blacklisted devices' queues), retries transient faults
/// with exponential backoff, escalates numerically poisoned tiles, and
/// exits when blacklisted, interrupted, or when no work can remain.
void device_worker(const RunContext& ctx, SchedulerState& st, int dev) {
  const ResilienceConfig& rc = ctx.config->resilience;
  gpusim::CancellationToken token;
  for (;;) {
    TileJob job;
    bool stolen = false;
    {
      std::unique_lock lock(st.mutex);
      if (ctx.hooks == nullptr) {
        st.cv.wait(lock, [&] {
          if (st.blacklisted[std::size_t(dev)] != 0) return true;
          if (st.outstanding == 0 || st.interrupted) return true;
          if (!st.queues[std::size_t(dev)].empty()) return true;
          for (int other = 0; other < int(st.queues.size()); ++other) {
            if (st.blacklisted[std::size_t(other)] != 0 &&
                !st.queues[std::size_t(other)].empty()) {
              return true;
            }
          }
          return false;
        });
        if (st.blacklisted[std::size_t(dev)] != 0 || st.outstanding == 0 ||
            st.interrupted) {
          return;
        }
      } else {
        // Elastic shard wait: an empty local backlog is not the end —
        // tiles may still arrive from the coordinator (released by a
        // crashed node, duplicated from a straggler, stolen from a
        // loaded peer), so idle workers poll acquire_more() and only
        // exit once every tile is committed globally (all_done).
        for (;;) {
          if (st.blacklisted[std::size_t(dev)] != 0 || st.interrupted) {
            return;
          }
          if (!st.queues[std::size_t(dev)].empty()) break;
          bool orphan = false;
          for (int other = 0; other < int(st.queues.size()); ++other) {
            if (st.blacklisted[std::size_t(other)] != 0 &&
                !st.queues[std::size_t(other)].empty()) {
              orphan = true;
              break;
            }
          }
          if (orphan) break;
          if (ctx.hooks->all_done && ctx.hooks->all_done()) return;
          if (ctx.hooks->acquire_more) {
            if (std::optional<std::size_t> extra = ctx.hooks->acquire_more()) {
              TileJob fetched;
              fetched.index = *extra;
              fetched.mode = ctx.config->mode;
              // The coordinator only hands out globally uncommitted
              // tiles, so a local committed marker here is a stale
              // revoked-claim tombstone (should_run said no earlier) —
              // clear it or the fetched job would be silently dropped.
              st.committed[*extra] = 0;
              st.queues[std::size_t(dev)].push_back(std::move(fetched));
              st.outstanding += 1;
              continue;
            }
          }
          st.cv.wait_for(lock, std::chrono::milliseconds(25));
        }
      }
      if (!st.queues[std::size_t(dev)].empty()) {
        job = std::move(st.queues[std::size_t(dev)].front());
        st.queues[std::size_t(dev)].pop_front();
      } else {
        for (int other = 0; other < int(st.queues.size()); ++other) {
          if (st.blacklisted[std::size_t(other)] != 0 &&
              !st.queues[std::size_t(other)].empty()) {
            job = std::move(st.queues[std::size_t(other)].front());
            st.queues[std::size_t(other)].pop_front();
            stolen = true;
            break;
          }
        }
      }
      // Stale work: the tile was committed (by a primary or a backup)
      // while this job sat in a queue.
      if (st.committed[job.index]) {
        if (job.speculative) st.backups_inflight[job.index] -= 1;
        continue;
      }
      // Shard mode: the coordinator gets the final say — the tile may
      // have committed on another node (or this node's duplicate claim
      // lapsed) while the job sat queued here.
      if (ctx.hooks != nullptr && ctx.hooks->should_run &&
          !ctx.hooks->should_run(job.index)) {
        if (job.speculative) st.backups_inflight[job.index] -= 1;
        st.committed[job.index] = 1;
        st.outstanding -= 1;
        continue;
      }
    }
    const Tile& tile = (*ctx.tiles)[job.index];
    if (stolen) {
      std::lock_guard lock(st.mutex);
      st.health.reassigned_tiles += 1;
      SchedulerMetrics::get().reassigned.add();
      log_event(st, {RunEvent::Kind::kStolen, tile.id, dev, ""});
    }

    // ---- Attempt loop: retries and precision escalations. ----
    bool announced = false;  ///< node-fault hook fired for this popped job
    for (;;) {
      // Attempts run into a local result so concurrent attempts of the
      // same tile (primary + speculative backup) never share state; the
      // winner moves its vectors into the pinned slot under the lock.
      TileResult attempt;
      token.reset();
      std::uint64_t attempt_id;
      const double modeled_seconds = model_tile_seconds(
          ctx.system->device(dev).spec(), tile, ctx.reference->dims(),
          ctx.config->window, job.mode);

      // Row-slice durability for this attempt.  A restored prefix only
      // applies at its own precision (escalated attempts recompute the
      // whole tile); snapshots are only emitted at the run's base mode
      // (an escalated tile's partial state would not be restorable) and
      // never under the sketch prefilter (the engine refuses anyway).
      const CheckpointSlice* prefix = nullptr;
      if (ctx.prefixes != nullptr) {
        const CheckpointSlice& p = (*ctx.prefixes)[job.index];
        if (p.r_count > 0 && p.mode == job.mode) prefix = &p;
      }
      const bool journal_slices =
          ctx.config->checkpoint.enabled() &&
          ctx.config->checkpoint.slice_rows > 0 &&
          job.mode == ctx.config->mode &&
          !ctx.config->prefilter.enabled();
      SliceProgress progress;
      const SliceProgress* slice_ptr = nullptr;
      if (prefix != nullptr || journal_slices) {
        progress.start_row =
            prefix != nullptr ? std::size_t(prefix->r_count) : 0;
        if (journal_slices) {
          progress.slice_rows =
              std::size_t(ctx.config->checkpoint.slice_rows);
          progress.on_slice = [&ctx, &st, t = job.index, dev, prefix](
                                  std::size_t rows_done,
                                  std::vector<double> profile,
                                  std::vector<std::int64_t> index) {
            note_slice_snapshot(ctx, st, t, dev, prefix, rows_done,
                                std::move(profile), std::move(index));
          };
        }
        slice_ptr = &progress;
      }

      {
        std::lock_guard lock(st.mutex);
        if (st.committed[job.index] || st.interrupted) {
          if (job.speculative) st.backups_inflight[job.index] -= 1;
          break;
        }
        attempt_id = st.next_attempt_id++;
        st.inflight.emplace(
            attempt_id,
            AttemptRecord{job.index, tile.id, dev, job.mode,
                          ctx.clock->seconds(), modeled_seconds, &token,
                          job.speculative, false});
      }
      Stopwatch attempt_wall;
      try {
        // Measured wall-clock span of this attempt: the trace line every
        // Fig.4/Fig.5-style analysis of a *real* run is built from.
        ScopedEvent span(MetricsRegistry::global(),
                         "tile " + std::to_string(tile.id) + " " +
                             to_string(job.mode) +
                             (job.speculative ? " speculative" : ""),
                         dev, "tile", &SchedulerMetrics::get().tile_seconds);
        SchedulerMetrics::get().attempts.add();
        // Node-level fault hook, once per popped job, registered in
        // inflight first so an injected node stall stays cancellable
        // (watchdog, cross-node commit sweep, shutdown).
        if (!announced && ctx.hooks != nullptr && ctx.hooks->on_tile_start) {
          announced = true;
          ctx.hooks->on_tile_start(job.index, &token);
        }
        execute_with_split(ctx, st, dev, job.mode, tile, attempt, &token, 0,
                           slice_ptr);
      } catch (const NodeFailedError& e) {
        // The simulated *node* is gone: unwind the whole shard.  Every
        // sibling attempt is cancelled; the journal is deliberately NOT
        // flushed (a crashed node does not get a last orderly write).
        std::lock_guard lock(st.mutex);
        st.inflight.erase(attempt_id);
        if (!st.shard_failed) {
          st.shard_failed = true;
          st.shard_fail_reason = e.what();
          st.interrupted = true;
          for (auto& [other_id, other] : st.inflight) other.token->cancel();
        }
        st.cv.notify_all();
        return;
      } catch (const CancelledError&) {
        // Not a fault: the scheduler itself withdrew this attempt.
        std::lock_guard lock(st.mutex);
        st.inflight.erase(attempt_id);
        if (st.committed[job.index]) {
          if (job.speculative) {
            st.backups_inflight[job.index] -= 1;
            st.health.speculative_losses += 1;
            SchedulerMetrics::get().speculative_losses.add();
            log_event(st,
                      {RunEvent::Kind::kSpeculationLost, tile.id, dev, ""});
          }
          break;  // tile done elsewhere; fetch the next job
        }
        if (ctx.hooks != nullptr && ctx.hooks->committed_elsewhere &&
            ctx.hooks->committed_elsewhere(job.index)) {
          // Cancelled because another *node* committed the tile (the
          // monitor sweep may not have marked it locally yet).
          st.committed[job.index] = 1;
          st.outstanding -= 1;
          if (job.speculative) st.backups_inflight[job.index] -= 1;
          break;
        }
        if (st.interrupted) {
          if (job.speculative) st.backups_inflight[job.index] -= 1;
          break;  // run is unwinding; the wait predicate exits the worker
        }
        if (st.blacklisted[std::size_t(dev)] != 0) {
          requeue_locked(st, std::move(job), tile.id);
          st.cv.notify_all();
          return;  // this worker is done for good
        }
        continue;  // cancelled to break a hang: retry on the same device
      } catch (const DeviceFailedError& e) {
        std::lock_guard lock(st.mutex);
        st.inflight.erase(attempt_id);
        st.health.devices[std::size_t(dev)].faults += 1;
        blacklist_locked(st, dev, /*offline=*/true, e.what());
        requeue_locked(st, std::move(job), tile.id);
        st.cv.notify_all();
        return;  // this worker is done for good
      } catch (const std::exception& e) {
        std::unique_lock lock(st.mutex);
        st.inflight.erase(attempt_id);
        st.health.devices[std::size_t(dev)].faults += 1;
        if (job.retries_here < rc.max_retries) {
          job.retries_here += 1;
          st.health.retries += 1;
          SchedulerMetrics::get().retries.add();
          log_event(st, {RunEvent::Kind::kRetry, tile.id, dev,
                         std::string(e.what()) + " — retry " +
                             std::to_string(job.retries_here) + "/" +
                             std::to_string(rc.max_retries)});
          lock.unlock();
          const double ms =
              rc.backoff_ms * double(1 << (job.retries_here - 1));
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(ms));
          continue;  // retry on the same device
        }
        // Retry budget spent here: the device failed this whole tile.
        st.consecutive_failed_tiles[std::size_t(dev)] += 1;
        job.exhausted.insert(dev);
        log_event(st,
                  {RunEvent::Kind::kRetriesExhausted, tile.id, dev, e.what()});
        const bool drop =
            st.consecutive_failed_tiles[std::size_t(dev)] >=
            rc.blacklist_after;
        if (drop) {
          blacklist_locked(st, dev, /*offline=*/false,
                           std::to_string(rc.blacklist_after) +
                               " consecutive failed tiles");
        }
        requeue_locked(st, std::move(job), tile.id);
        st.cv.notify_all();
        if (drop) return;
        break;  // fetch the next job
      }
      const double attempt_seconds = attempt_wall.seconds();

      // Fold the restored row-prefix into the tail rows' result so the
      // committed tile covers rows from 0.  A no-op after a
      // memory-pressure split (whose sub-tiles recomputed every row —
      // with identical bits, the recurrence only depends on the seed
      // origin, so re-folding the prefix is idempotent).
      if (prefix != nullptr) {
        min_merge_into(attempt.profile, attempt.index, prefix->profile,
                       prefix->index);
      }

      // ---- Success: numerical self-healing, then commit. ----
      const double bad = non_finite_fraction(attempt.profile);
      if (rc.escalate_precision && bad > rc.non_finite_threshold) {
        const PrecisionMode next = escalated_precision(job.mode);
        if (next != job.mode) {
          std::lock_guard lock(st.mutex);
          st.inflight.erase(attempt_id);
          st.health.escalations.push_back(
              RunHealth::Escalation{tile.id, job.mode, next, bad});
          SchedulerMetrics::get().escalations.add();
          log_event(st, {RunEvent::Kind::kEscalated, tile.id, dev,
                         std::to_string(int(100.0 * bad)) +
                             "% non-finite, escalating " +
                             to_string(job.mode) + " -> " + to_string(next)});
          job.mode = next;
          continue;  // re-run one rung up
        }
      }
      bool checkpoint_due = false;
      bool kill_due = false;
      {
        std::lock_guard lock(st.mutex);
        st.inflight.erase(attempt_id);
        if (job.speculative) st.backups_inflight[job.index] -= 1;
        if (st.committed[job.index]) {
          // Lost the race against a concurrent attempt of the same tile.
          if (job.speculative) {
            st.health.speculative_losses += 1;
            SchedulerMetrics::get().speculative_losses.add();
            log_event(st,
                      {RunEvent::Kind::kSpeculationLost, tile.id, dev, ""});
          }
          break;
        }
        st.committed[job.index] = 1;
        // Shard mode: first-commit-wins arbitration across nodes.  The
        // winning hook copies the result into the coordinator's global
        // arrays; a lost race drops the local result (the tile is done,
        // just not by us).
        bool won = true;
        if (ctx.hooks != nullptr && ctx.hooks->on_commit) {
          won = ctx.hooks->on_commit(job.index, attempt,
                                     ctx.device_base + dev, job.mode);
        }
        if (won) {
          TileResult& slot = (*ctx.results)[job.index];
          slot.profile = std::move(attempt.profile);
          slot.index = std::move(attempt.index);
          slot.ledger.reset();
          slot.ledger.merge_from(attempt.ledger);
          slot.prefilter = attempt.prefilter;
          (*ctx.executed_device)[job.index] = ctx.device_base + dev;
          (*ctx.final_mode)[job.index] = job.mode;
          st.result_valid[job.index] = 1;
          st.partials[job.index] = CheckpointSlice{};  // superseded
          st.health.devices[std::size_t(dev)].tiles_completed += 1;
          SchedulerMetrics::get().tiles_completed.add();
        }
        st.consecutive_failed_tiles[std::size_t(dev)] = 0;
        st.watchdog_strikes[std::size_t(dev)] = 0;
        if (job.speculative && won) {
          st.health.speculative_wins += 1;
          SchedulerMetrics::get().speculative_wins.add();
          log_event(st, {RunEvent::Kind::kSpeculationWon, tile.id, dev, ""});
        }
        // First finisher wins: withdraw every other attempt of this tile.
        for (auto& [other_id, other] : st.inflight) {
          if (other.job_index == job.index) other.token->cancel();
        }
        // Calibrate the watchdog's wall-per-modelled ratio from real
        // completions (EWMA; hung attempts never get here, so a hang
        // cannot poison the deadline upward).
        if (modeled_seconds > 0.0 && attempt_seconds > 0.0) {
          const double rate = attempt_seconds / modeled_seconds;
          st.wall_per_modeled = st.wall_per_modeled <= 0.0
                                    ? rate
                                    : 0.7 * st.wall_per_modeled + 0.3 * rate;
        }
        st.outstanding -= 1;
        if (won) {
          st.total_commits += 1;
          st.commits_since_checkpoint += 1;
          checkpoint_due =
              ctx.config->checkpoint.enabled() &&
              st.commits_since_checkpoint >=
                  std::size_t(ctx.config->checkpoint.interval_tiles);
          kill_due =
              ctx.config->checkpoint.kill_after_tiles > 0 &&
              st.total_commits ==
                  std::size_t(ctx.config->checkpoint.kill_after_tiles);
        }
        st.cv.notify_all();
      }
      if (checkpoint_due) write_checkpoint_now(ctx, st);
      if (kill_due) request_shutdown();
      break;  // fetch the next job
    }
  }
}

/// Side journals a multi-node run may have left next to the base journal
/// (one per node id); restore probes this many of them.
constexpr int kMaxNodeJournals = 64;

/// Computes one orphaned tile on the CPU reference path.  In FP64 this is
/// bit-identical to the GPU engine (same precalculation, recurrence and
/// merge arithmetic over the same tile-local seeds).
void cpu_fallback_tile(const TimeSeries& reference, const TimeSeries& query,
                       std::size_t m, const Tile& tile,
                       std::int64_t exclusion, TileResult& result) {
  const TimeSeries sub_ref = reference.slice(tile.r_begin,
                                             tile.r_count + m - 1);
  const TimeSeries sub_query = query.slice(tile.q_begin,
                                           tile.q_count + m - 1);
  CpuReferenceConfig cc;
  cc.window = m;
  cc.exclusion = exclusion;
  cc.r_offset = std::int64_t(tile.r_begin);
  cc.q_offset = std::int64_t(tile.q_begin);
  const CpuReferenceResult cpu =
      compute_matrix_profile_cpu(sub_ref, sub_query, cc);
  result.profile = cpu.profile;
  result.ledger.reset();
  result.prefilter = {};  // the CPU fallback always runs every column exact
  result.index.resize(cpu.index.size());
  for (std::size_t e = 0; e < cpu.index.size(); ++e) {
    // Local reference rows become global segment indices.
    result.index[e] =
        cpu.index[e] < 0 ? -1 : cpu.index[e] + std::int64_t(tile.r_begin);
  }
}

}  // namespace

std::string RunEvent::to_string() const {
  const std::string tile = "tile " + std::to_string(tile_id);
  const std::string dev = "device " + std::to_string(device);
  switch (kind) {
    case Kind::kRetry:
      return tile + ": " + detail + " on " + dev;
    case Kind::kRetriesExhausted:
      return tile + ": retries exhausted on " + dev + " (" + detail + ")";
    case Kind::kReassigned:
      return tile + ": reassigned to " + dev;
    case Kind::kStolen:
      return tile + ": stolen by " + dev;
    case Kind::kBlacklisted:
      return dev + " blacklisted: " + detail;
    case Kind::kDeferredToCpu:
      return tile + ": no healthy device left, deferring to CPU fallback";
    case Kind::kCpuFallback:
      return tile + ": completed on the CPU reference path (FP64)";
    case Kind::kEscalated:
      return tile + ": " + detail;
    case Kind::kWatchdogFired:
      return tile + ": watchdog fired on " + dev + " (" + detail + ")";
    case Kind::kSpeculated:
      return tile + ": speculative backup launched on " + dev + " (" +
             detail + ")";
    case Kind::kSpeculationWon:
      return tile + ": speculative backup on " + dev + " won";
    case Kind::kSpeculationLost:
      return tile + ": attempt on " + dev + " cancelled, tile won elsewhere";
    case Kind::kTileSplit:
      return tile + ": memory pressure on " + dev + ", " + detail;
    case Kind::kResumed:
      return detail.empty() ? tile + ": restored from checkpoint"
                            : "checkpoint resume: " + detail;
    case Kind::kCheckpointWritten:
      return "checkpoint written (" + detail + ")";
    case Kind::kInterrupted:
      return "shutdown requested, stopping (" + detail + ")";
    case Kind::kResumeFallback:
      return "resume fallback: " + detail;
    case Kind::kSliceRestored:
      return tile + ": " + detail;
    case Kind::kSliceDiscarded:
      return tile + ": journalled slice discarded (" + detail + ")";
    case Kind::kNodeJoined:
      return "node " + std::to_string(device) + " joined (" + detail + ")";
    case Kind::kNodeCrashed:
      return "node " + std::to_string(device) + " crashed: " + detail;
    case Kind::kNodeStolen:
      return tile + ": stolen by node " + std::to_string(device) +
             (detail.empty() ? "" : " (" + detail + ")");
    case Kind::kNodeDuplicated:
      return tile + ": straggler duplicated to node " +
             std::to_string(device) + " (" + detail + ")";
  }
  return detail;
}

std::string RunHealth::summary() const {
  std::ostringstream os;
  os << "run health: " << (degraded ? "DEGRADED" : "clean") << " — "
     << faults_injected << " fault(s), " << retries << " retry(ies), "
     << reassigned_tiles << " reassignment(s), " << blacklist_events
     << " blacklist(s), " << cpu_fallback_tiles << " CPU-fallback tile(s), "
     << escalations.size() << " escalation(s)\n";
  if (resumed_tiles > 0 || checkpoint_writes > 0 || watchdog_fires > 0 ||
      speculative_wins > 0 || speculative_losses > 0 || tile_splits > 0 ||
      slice_commits > 0 || partial_slices > 0 || resume_fallbacks > 0 ||
      slices_discarded > 0) {
    os << "  durability: " << resumed_tiles << " tile(s) resumed, "
       << checkpoint_writes << " checkpoint write(s), " << watchdog_fires
       << " watchdog fire(s), " << speculative_wins << " speculative win(s)/"
       << speculative_losses << " loss(es), " << tile_splits
       << " tile split(s), " << slice_commits << " slice commit(s), "
       << partial_slices << " partial restore(s), " << slices_discarded
       << " slice(s) discarded, " << resume_fallbacks
       << " resume fallback(s)\n";
  }
  if (node_crashes > 0 || node_steals > 0 || node_duplicates > 0) {
    os << "  cluster: " << node_crashes << " node crash(es), " << node_steals
       << " cross-node steal(s), " << node_duplicates
       << " straggler duplicate(s)\n";
  }
  for (const auto& dev : devices) {
    os << "  device " << dev.device << ": " << dev.tiles_completed
       << " tile(s), " << dev.faults << " fault(s)"
       << (dev.offline ? ", OFFLINE" : dev.blacklisted ? ", BLACKLISTED" : "")
       << "\n";
  }
  for (const auto& esc : escalations) {
    os << "  tile " << esc.tile_id << ": escalated " << to_string(esc.from)
       << " -> " << to_string(esc.to) << " ("
       << int(100.0 * esc.non_finite_fraction) << "% non-finite)\n";
  }
  for (const auto& event : events) {
    os << "  | " << event.to_string() << "\n";
  }
  return os.str();
}

RestoredState restore_from_journals(const std::string& resume_path,
                                    std::uint64_t fingerprint,
                                    const std::vector<Tile>& tiles,
                                    std::size_t dims,
                                    const MatrixProfileConfig& config) {
  RestoredState out;
  out.committed.assign(tiles.size(), 0);
  out.results = std::vector<TileResult>(tiles.size());
  out.executed_device.assign(tiles.size(), -1);
  out.final_mode.assign(tiles.size(), config.mode);
  out.prefixes.assign(tiles.size(), CheckpointSlice{});
  if (resume_path.empty()) return out;

  auto note_fallback = [&out](const std::string& why) {
    out.fallbacks += 1;
    out.log.push_back({RunEvent::Kind::kResumeFallback, -1, -1, why});
  };

  // The base journal (the single-node / coordinator one) carries the
  // prior run's event history; per-node side journals only add slices.
  std::vector<CheckpointData> journals;
  std::string base_missing;
  try {
    CheckpointData data = read_checkpoint(resume_path);
    if (data.fingerprint != fingerprint) {
      note_fallback("journal '" + resume_path +
                    "' was written for different inputs or configuration "
                    "(fingerprint mismatch), starting fresh");
    } else {
      out.events = data.events;
      journals.push_back(std::move(data));
    }
  } catch (const CheckpointError& e) {
    if (e.reason() == CheckpointError::Reason::kMissing) {
      base_missing = e.what();
    } else {
      note_fallback("journal '" + resume_path + "' is unreadable (" +
                    e.what() + "), starting fresh");
    }
  }
  for (int node = 0; node < kMaxNodeJournals; ++node) {
    const std::string path = resume_path + ".node" + std::to_string(node);
    try {
      CheckpointData data = read_checkpoint(path);
      if (data.fingerprint != fingerprint) {
        note_fallback("journal '" + path +
                      "' was written for different inputs or configuration "
                      "(fingerprint mismatch), ignoring it");
        continue;
      }
      journals.push_back(std::move(data));
    } catch (const CheckpointError& e) {
      // Absent node journals are the norm: a run with fewer nodes simply
      // wrote fewer of them (and a crashed node never flushed one).
      if (e.reason() == CheckpointError::Reason::kMissing) continue;
      note_fallback("journal '" + path + "' is unreadable (" + e.what() +
                    "), ignoring it");
    }
  }
  if (!base_missing.empty() && journals.empty()) {
    note_fallback("journal '" + resume_path + "' is missing (" +
                  base_missing + "), starting fresh");
  }

  // Re-key every journalled slice by its absolute row/column ranges
  // against the *current* grid — the journal may have been written under
  // a different tile count or node count.
  for (const CheckpointData& data : journals) {
    for (const CheckpointSlice& slice : data.slices) {
      std::size_t target = tiles.size();
      SliceFit fit = SliceFit::kNone;
      for (std::size_t t = 0; t < tiles.size(); ++t) {
        fit = classify_slice(std::size_t(slice.r_begin),
                             std::size_t(slice.r_count),
                             std::size_t(slice.q_begin),
                             std::size_t(slice.q_count),
                             std::size_t(slice.dims), tiles[t], dims);
        if (fit != SliceFit::kNone) {
          target = t;
          break;
        }
      }
      if (target == tiles.size()) {
        out.discarded += 1;
        out.log.push_back(
            {RunEvent::Kind::kSliceDiscarded, int(slice.tile_id),
             int(slice.device),
             "rows [" + std::to_string(slice.r_begin) + ", +" +
                 std::to_string(slice.r_count) + ") x cols [" +
                 std::to_string(slice.q_begin) + ", +" +
                 std::to_string(slice.q_count) +
                 ") does not fit the current tile grid"});
        continue;
      }
      if (fit == SliceFit::kComplete) {
        if (out.committed[target]) continue;  // duplicate across journals
        out.committed[target] = 1;
        out.results[target].profile = slice.profile;
        out.results[target].index = slice.index;
        out.results[target].prefilter = slice.prefilter;
        out.executed_device[target] = int(slice.device);
        out.final_mode[target] = slice.mode;
        out.resumed += 1;
        continue;
      }
      // Row prefix: only usable at the run's base precision and without
      // the prefilter — the tail attempt's QT-only replay must reproduce
      // the exact recurrence state the journalled rows were computed in.
      if (slice.mode != config.mode || config.prefilter.enabled()) {
        out.discarded += 1;
        out.log.push_back(
            {RunEvent::Kind::kSliceDiscarded, int(slice.tile_id),
             int(slice.device),
             "row prefix at " + to_string(slice.mode) +
                 " is not restorable under this configuration"});
        continue;
      }
      CheckpointSlice& best = out.prefixes[target];
      if (std::size_t(slice.r_count) > std::size_t(best.r_count)) {
        best = slice;  // keep the furthest prefix
      }
    }
  }

  for (std::size_t t = 0; t < tiles.size(); ++t) {
    if (out.committed[t]) {
      out.prefixes[t] = CheckpointSlice{};  // complete restore supersedes
      continue;
    }
    if (out.prefixes[t].r_count == 0) continue;
    out.partial += 1;
    out.log.push_back(
        {RunEvent::Kind::kSliceRestored, tiles[t].id,
         int(out.prefixes[t].device),
         "rows [0, +" + std::to_string(out.prefixes[t].r_count) + ") of " +
             std::to_string(tiles[t].r_count) +
             " restored; tail resumes after a QT-only replay"});
  }
  return out;
}

MatrixProfileResult run_resilient(gpusim::System& system,
                                  const TimeSeries& reference,
                                  const TimeSeries& query,
                                  const MatrixProfileConfig& config) {
  const std::size_t m = config.window;
  const std::size_t d = reference.dims();
  const std::size_t n_r = reference.segment_count(m);
  const std::size_t n_q = query.segment_count(m);
  MPSIM_CHECK(n_r >= 1 && n_q >= 1,
              "window " << m << " longer than the input series");

  Stopwatch wall;
  ScopedEvent run_span(MetricsRegistry::global(), "run_resilient", -1, "cpu");

  auto tiles = compute_tile_list(n_r, n_q, config.tiles);
  if (config.assignment == TileAssignment::kLpt) {
    assign_tiles_lpt(tiles, system.device_count());
  } else {
    assign_tiles_round_robin(tiles, system.device_count());
  }

  // One stream pool per device; a tile occupies one stream per attempt so
  // the stream's error capture isolates failures per tile.
  std::vector<std::unique_ptr<gpusim::StreamPool>> pools;
  for (int dev = 0; dev < system.device_count(); ++dev) {
    pools.push_back(std::make_unique<gpusim::StreamPool>(
        system.device(dev), config.streams_per_device));
  }

  std::vector<TileResult> results(tiles.size());
  std::vector<int> executed_device(tiles.size(), -1);
  std::vector<PrecisionMode> final_mode(tiles.size(), config.mode);

  SchedulerState st;
  st.queues.resize(std::size_t(system.device_count()));
  st.blacklisted.assign(std::size_t(system.device_count()), 0);
  st.consecutive_failed_tiles.assign(std::size_t(system.device_count()), 0);
  st.watchdog_strikes.assign(std::size_t(system.device_count()), 0);
  st.committed.assign(tiles.size(), 0);
  st.backups_inflight.assign(tiles.size(), 0);
  st.partials.assign(tiles.size(), CheckpointSlice{});
  st.result_valid.assign(tiles.size(), 0);
  for (int dev = 0; dev < system.device_count(); ++dev) {
    RunHealth::DeviceStatus status;
    status.device = dev;
    st.health.devices.push_back(status);
  }

  // Shared across devices and attempts: series conversion happens once per
  // storage format for the whole run (retries/escalations reuse it too).
  // A caller-provided cache (config.staging_cache, e.g. the serve daemon's
  // per-input cache) extends the reuse across whole runs.
  StagingCache local_staging(reference, query);

  RunContext ctx;
  ctx.system = &system;
  ctx.reference = &reference;
  ctx.query = &query;
  ctx.config = &config;
  ctx.staging = config.staging_cache != nullptr ? config.staging_cache
                                                : &local_staging;
  for (auto& pool : pools) ctx.pools.push_back(pool.get());
  ctx.tiles = &tiles;
  ctx.results = &results;
  ctx.executed_device = &executed_device;
  ctx.final_mode = &final_mode;
  ctx.clock = &wall;
  ctx.fingerprint = checkpoint_fingerprint(reference, query, config);
  ctx.dims = d;
  std::vector<CheckpointSlice> prefixes(tiles.size());
  ctx.prefixes = &prefixes;

  // ---- Resume: re-key journalled slices onto this run's grid. ----
  // A bad journal must never take the run down (every rejection is a
  // structured kResumeFallback event), and a journal written under a
  // different tile grid restores whatever still fits: exact-cover slices
  // whole, row prefixes partially (the tail replays QT-only), the rest
  // is discarded and recomputed.
  std::size_t resumed = 0;
  if (!config.checkpoint.resume_path.empty()) {
    RestoredState restored = restore_from_journals(
        config.checkpoint.resume_path, ctx.fingerprint, tiles, d, config);
    st.health.events = std::move(restored.events);
    for (std::size_t t = 0; t < tiles.size(); ++t) {
      if (!restored.committed[t]) continue;
      st.committed[t] = 1;
      st.result_valid[t] = 1;
      results[t].profile = std::move(restored.results[t].profile);
      results[t].index = std::move(restored.results[t].index);
      results[t].prefilter = restored.results[t].prefilter;
      executed_device[t] = restored.executed_device[t];
      final_mode[t] = restored.final_mode[t];
    }
    prefixes = std::move(restored.prefixes);
    resumed = restored.resumed;
    st.health.resumed_tiles = int(resumed);
    st.health.partial_slices = int(restored.partial);
    st.health.resume_fallbacks = int(restored.fallbacks);
    st.health.slices_discarded = int(restored.discarded);
    st.total_commits = resumed;
    SchedulerMetrics::get().tiles_resumed.add(resumed);
    SchedulerMetrics::get().slices_partial.add(restored.partial);
    SchedulerMetrics::get().resume_fallback.add(restored.fallbacks);
    SchedulerMetrics::get().slices_discarded.add(restored.discarded);
    for (RunEvent& event : restored.log) log_event(st, std::move(event));
    if (resumed > 0 || restored.partial > 0) {
      log_event(st, {RunEvent::Kind::kResumed, -1, -1,
                     std::to_string(resumed) + "/" +
                         std::to_string(tiles.size()) + " tiles (+" +
                         std::to_string(restored.partial) +
                         " partial) from " +
                         config.checkpoint.resume_path});
    }
  }

  st.outstanding = tiles.size() - resumed;
  for (std::size_t t = 0; t < tiles.size(); ++t) {
    if (st.committed[t]) continue;
    TileJob job;
    job.index = t;
    job.mode = config.mode;
    st.queues[std::size_t(tiles[t].device)].push_back(std::move(job));
  }

  if (st.outstanding > 0) {
    std::vector<std::thread> workers;
    workers.reserve(std::size_t(system.device_count()));
    for (int dev = 0; dev < system.device_count(); ++dev) {
      workers.emplace_back(
          [&ctx, &st, dev] { device_worker(ctx, st, dev); });
    }
    std::thread monitor([&ctx, &st] { monitor_thread(ctx, st); });
    for (auto& w : workers) w.join();
    {
      std::lock_guard lock(st.mutex);
      st.stop_monitor = true;
    }
    st.cv.notify_all();
    monitor.join();
  }

  // ---- Interruption: flush the journal and unwind. ----
  if (st.interrupted) {
    write_checkpoint_now(ctx, st);
    std::string what = "run interrupted: " +
                       std::to_string(st.total_commits) + "/" +
                       std::to_string(tiles.size()) + " tiles committed";
    if (config.checkpoint.enabled()) {
      what += "; checkpoint flushed to " + config.checkpoint.write_path +
              " (resume with --resume=" + config.checkpoint.write_path + ")";
    }
    throw InterruptedError(what);
  }

  // ---- Graceful degradation: finish orphans on the CPU reference. ----
  std::vector<TileJob> leftovers = std::move(st.cpu_jobs);
  for (auto& queue : st.queues) {
    for (auto& job : queue) leftovers.push_back(std::move(job));
    queue.clear();
  }
  if (!leftovers.empty() && !config.resilience.cpu_fallback) {
    throw Error("all devices failed and the CPU fallback is disabled (" +
                std::to_string(leftovers.size()) + " tiles incomplete)");
  }
  for (auto& job : leftovers) {
    if (st.committed[job.index]) continue;  // stale queue remnant
    const Tile& tile = tiles[job.index];
    {
      ScopedEvent span(MetricsRegistry::global(),
                       "tile " + std::to_string(tile.id) + " cpu-fallback",
                       -1, "cpu",
                       &SchedulerMetrics::get().tile_seconds);
      cpu_fallback_tile(reference, query, m, tile, config.exclusion,
                        results[job.index]);
    }
    st.committed[job.index] = 1;
    st.result_valid[job.index] = 1;
    st.total_commits += 1;
    executed_device[job.index] = -1;
    final_mode[job.index] = PrecisionMode::FP64;
    st.health.cpu_fallback_tiles += 1;
    SchedulerMetrics::get().cpu_fallback.add();
    log_event(st, {RunEvent::Kind::kCpuFallback, tile.id, -1, ""});
  }

  // ---- Final journal: a complete run leaves a complete checkpoint. ----
  if (config.checkpoint.enabled()) write_checkpoint_now(ctx, st);

  MatrixProfileResult out = assemble_tile_results(
      tiles, results, executed_device, n_q, d, config.streams_per_device);

  // ---- Health report. ----
  out.health = std::move(st.health);
  if (gpusim::FaultInjector* injector =
          system.device(0).fault_injector()) {
    out.health.faults_injected = int(injector->fault_count());
  }
  out.health.degraded = out.health.blacklist_events > 0 ||
                        out.health.cpu_fallback_tiles > 0 ||
                        out.health.retries > 0 ||
                        out.health.reassigned_tiles > 0 ||
                        out.health.watchdog_fires > 0 ||
                        out.health.tile_splits > 0;

  out.wall_seconds = wall.seconds();
  return out;
}

MatrixProfileResult assemble_tile_results(
    const std::vector<Tile>& tiles, std::vector<TileResult>& results,
    const std::vector<int>& executed_device, std::size_t n_q, std::size_t d,
    int streams_per_device) {
  // ---- CPU merge (Pseudocode 2, lines 6-8). ----
  // Parallel over output columns; bit-identical to the serial merge (each
  // column sees the tiles in the same ascending order).
  MatrixProfileResult out;
  {
    ScopedEvent span(MetricsRegistry::global(), "merge_tile_results", -1,
                     "cpu");
    ThreadPool merge_pool;
    merge_tile_results(tiles, results, n_q, d, out, &merge_pool);
  }

  // ---- Modelled makespan (grouped by the device that ran each tile;
  // device indices are global, so a multi-node run's makespan spans the
  // whole cluster's fleet). ----
  int device_count = 0;
  for (const int dev : executed_device) {
    device_count = std::max(device_count, dev + 1);
  }
  std::vector<TileTimes> device_time(static_cast<std::size_t>(device_count));
  std::vector<int> device_tiles(static_cast<std::size_t>(device_count), 0);
  for (std::size_t t = 0; t < tiles.size(); ++t) {
    if (executed_device[t] < 0) continue;  // CPU fallback: no device time
    const auto tt = tile_times(results[t].ledger);
    auto& acc = device_time[std::size_t(executed_device[t])];
    acc.kernels += tt.kernels;
    acc.copies += tt.copies;
    device_tiles[std::size_t(executed_device[t])] += 1;
  }
  double makespan = 0.0;
  for (std::size_t dev = 0; dev < device_time.size(); ++dev) {
    const bool overlapped = streams_per_device > 1 && device_tiles[dev] > 1;
    const double t = overlapped
                         ? std::max(device_time[dev].kernels,
                                    device_time[dev].copies)
                         : device_time[dev].kernels + device_time[dev].copies;
    makespan = std::max(makespan, t);
  }
  out.modeled_device_seconds = makespan;
  out.modeled_merge_seconds = 0.0;
  for (const auto& tile : tiles) {
    out.modeled_merge_seconds += model_merge_seconds(1, tile.q_count, d);
  }

  // ---- Per-kernel breakdown (successful attempts only). ----
  gpusim::KernelLedger merged;
  for (const auto& r : results) merged.merge_from(r.ledger);
  for (const auto& [name, stats] : merged.all()) {
    out.breakdown.push_back(KernelBreakdownEntry{
        name, stats.launches, stats.modeled_seconds, stats.measured_seconds});
  }
  // Per-kernel accounting in the registry: measured wall seconds next to
  // the roofline-modelled seconds of the same launches (registration cost
  // only here, at end of run; nothing when the registry is disabled).
  if (MetricsRegistry::global().enabled()) {
    auto& reg = MetricsRegistry::global();
    for (const auto& entry : out.breakdown) {
      reg.counter("kernel." + entry.name + ".launches")
          .add(std::uint64_t(entry.launches));
      reg.gauge("kernel." + entry.name + ".wall_seconds")
          .set(entry.measured_seconds);
      reg.gauge("kernel." + entry.name + ".modeled_seconds")
          .set(entry.modeled_seconds);
    }
  }

  // ---- Prefilter accounting (sketch runs only; exact runs stay all-zero
  // and emit nothing).  Stats survive retries, sub-tile splits, checkpoint
  // resume and the CPU fallback because every path above fills or merges
  // the per-tile PrefilterStats it commits.
  for (const auto& r : results) out.prefilter.merge_from(r.prefilter);
  if (out.prefilter.any() && MetricsRegistry::global().enabled()) {
    auto& reg = MetricsRegistry::global();
    reg.counter("prefilter.blocks_total").add(out.prefilter.blocks_total);
    reg.counter("prefilter.blocks_skipped")
        .add(out.prefilter.blocks_skipped);
    reg.counter("prefilter.blocks_verified")
        .add(out.prefilter.blocks_verified);
    reg.counter("prefilter.cols_skipped").add(out.prefilter.cols_skipped);
    reg.counter("prefilter.cols_verified").add(out.prefilter.cols_verified);
    reg.counter("prefilter.cols_missed").add(out.prefilter.cols_missed);
    reg.gauge("prefilter.miss_rate")
        .set(out.prefilter.cols_verified == 0
                 ? 0.0
                 : double(out.prefilter.cols_missed) /
                       double(out.prefilter.cols_verified));
  }
  return out;
}

void compute_tile_on_cpu(const TimeSeries& reference, const TimeSeries& query,
                         std::size_t window, const Tile& tile,
                         std::int64_t exclusion, TileResult& result) {
  cpu_fallback_tile(reference, query, window, tile, exclusion, result);
}

ShardOutcome run_resilient_shard(gpusim::System& system,
                                 const TimeSeries& reference,
                                 const TimeSeries& query,
                                 const MatrixProfileConfig& config,
                                 const std::vector<Tile>& tiles,
                                 const std::vector<std::size_t>& initial,
                                 int node_id, int device_base,
                                 const ShardHooks& hooks,
                                 const std::vector<CheckpointSlice>* prefixes,
                                 std::uint64_t fingerprint) {
  Stopwatch wall;

  std::vector<std::unique_ptr<gpusim::StreamPool>> pools;
  for (int dev = 0; dev < system.device_count(); ++dev) {
    pools.push_back(std::make_unique<gpusim::StreamPool>(
        system.device(dev), config.streams_per_device));
  }

  // Node-local result slots: the coordinator's on_commit hook copies the
  // winning results into its global arrays; the local copies back this
  // shard's journal (write_path is the coordinator-assigned per-node
  // side journal).
  std::vector<TileResult> results(tiles.size());
  std::vector<int> executed_device(tiles.size(), -1);
  std::vector<PrecisionMode> final_mode(tiles.size(), config.mode);

  SchedulerState st;
  st.queues.resize(std::size_t(system.device_count()));
  st.blacklisted.assign(std::size_t(system.device_count()), 0);
  st.consecutive_failed_tiles.assign(std::size_t(system.device_count()), 0);
  st.watchdog_strikes.assign(std::size_t(system.device_count()), 0);
  st.committed.assign(tiles.size(), 0);
  st.backups_inflight.assign(tiles.size(), 0);
  st.partials.assign(tiles.size(), CheckpointSlice{});
  st.result_valid.assign(tiles.size(), 0);
  for (int dev = 0; dev < system.device_count(); ++dev) {
    RunHealth::DeviceStatus status;
    status.device = device_base + dev;
    st.health.devices.push_back(status);
  }

  StagingCache local_staging(reference, query);

  RunContext ctx;
  ctx.system = &system;
  ctx.reference = &reference;
  ctx.query = &query;
  ctx.config = &config;
  ctx.staging = config.staging_cache != nullptr ? config.staging_cache
                                                : &local_staging;
  for (auto& pool : pools) ctx.pools.push_back(pool.get());
  ctx.tiles = &tiles;
  ctx.results = &results;
  ctx.executed_device = &executed_device;
  ctx.final_mode = &final_mode;
  ctx.clock = &wall;
  ctx.fingerprint = fingerprint;
  ctx.dims = reference.dims();
  ctx.hooks = &hooks;
  ctx.node_id = node_id;
  ctx.device_base = device_base;
  ctx.prefixes = prefixes;

  st.outstanding = initial.size();
  for (std::size_t k = 0; k < initial.size(); ++k) {
    TileJob job;
    job.index = initial[k];
    job.mode = config.mode;
    st.queues[k % st.queues.size()].push_back(std::move(job));
  }

  // Workers always start, even with an empty initial backlog: an elastic
  // shard may receive all of its work via acquire_more (steals, released
  // tiles of crashed peers) and only retires at global completion.
  std::vector<std::thread> workers;
  workers.reserve(std::size_t(system.device_count()));
  for (int dev = 0; dev < system.device_count(); ++dev) {
    workers.emplace_back([&ctx, &st, dev] { device_worker(ctx, st, dev); });
  }
  std::thread monitor([&ctx, &st] { monitor_thread(ctx, st); });
  for (auto& w : workers) w.join();
  {
    std::lock_guard lock(st.mutex);
    st.stop_monitor = true;
  }
  st.cv.notify_all();
  monitor.join();

  ShardOutcome outcome;
  outcome.crashed = st.shard_failed;
  outcome.crash_reason = st.shard_fail_reason;
  outcome.interrupted = st.interrupted && !st.shard_failed;

  // A crashed node does not get a last orderly journal write (its
  // in-memory slices die with it — exactly what elastic resume has to
  // survive).  An interrupted or completed shard flushes everything,
  // partial row-slices included.
  if (!st.shard_failed && config.checkpoint.enabled()) {
    write_checkpoint_now(ctx, st);
  }

  for (const TileJob& job : st.cpu_jobs) {
    if (!st.committed[job.index]) outcome.incomplete.push_back(job.index);
  }
  for (const auto& queue : st.queues) {
    for (const TileJob& job : queue) {
      if (!st.committed[job.index]) outcome.incomplete.push_back(job.index);
    }
  }
  outcome.health = std::move(st.health);
  return outcome;
}

}  // namespace mpsim::mp
