// Public façade of the library: compute the multi-dimensional matrix
// profile of a query series against a reference series on (simulated)
// GPUs, in any of the paper's five precision modes, with optional
// multi-tile / multi-device execution.
//
// Quick start:
//
//   mpsim::mp::MatrixProfileConfig config;
//   config.window = 64;
//   config.mode = mpsim::PrecisionMode::Mixed;
//   config.tiles = 16;
//   config.devices = 4;
//   auto result = mpsim::mp::compute_matrix_profile(ref, query, config);
//   // result.at(j, k): distance of query segment j's best (k+1)-dim match
//   // result.index_at(j, k): the matching reference segment
#pragma once

#include "gpusim/device.hpp"
#include "mp/options.hpp"
#include "tsdata/time_series.hpp"

namespace mpsim::mp {

/// Computes the matrix profile with a freshly constructed device system
/// described by `config` (machine, devices, workers).
MatrixProfileResult compute_matrix_profile(const TimeSeries& reference,
                                           const TimeSeries& query,
                                           const MatrixProfileConfig& config);

/// Same, but running on caller-provided devices — lets benches reuse one
/// System across sweeps and inspect its ledgers afterwards.
MatrixProfileResult compute_matrix_profile(gpusim::System& system,
                                           const TimeSeries& reference,
                                           const TimeSeries& query,
                                           const MatrixProfileConfig& config);

/// Self-join: the matrix profile of a series against itself, excluding
/// trivial matches.  If config.exclusion is 0, it defaults to window/2
/// (the standard exclusion-zone radius of the matrix profile literature);
/// the configured value is used otherwise.
MatrixProfileResult compute_self_join(const TimeSeries& series,
                                      MatrixProfileConfig config);

/// Validates a configuration against the input shapes; throws ConfigError
/// with an actionable message on any problem.
void validate_config(const TimeSeries& reference, const TimeSeries& query,
                     const MatrixProfileConfig& config);

}  // namespace mpsim::mp
