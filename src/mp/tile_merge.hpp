// CPU-side merge of per-tile results (Pseudocode 2, lines 6-8), shared by
// the resilient scheduler and the merge-semantics tests.
#pragma once

#include <cmath>
#include <limits>
#include <vector>

#include "mp/options.hpp"
#include "mp/single_tile.hpp"
#include "mp/tile_plan.hpp"

namespace mpsim::mp {

/// Column-wise min/argmin merge of `results[t]` (one per tile) into the
/// full profile.  Smaller distance wins; equal distances prefer the
/// earlier reference segment — the same tie rule the kernels use, so
/// multi-tile FP64 matches single-tile FP64.  Non-finite tile values
/// (NaN after an FP16 overflow or injected corruption) never displace a
/// finite entry: the strict `<` comparison is false for NaN.
inline void merge_tile_results(const std::vector<Tile>& tiles,
                               const std::vector<TileResult>& results,
                               std::size_t n_q, std::size_t d,
                               MatrixProfileResult& out) {
  out.segments = n_q;
  out.dims = d;
  out.profile.assign(n_q * d, std::numeric_limits<double>::infinity());
  out.index.assign(n_q * d, -1);
  for (std::size_t t = 0; t < tiles.size(); ++t) {
    const Tile& tile = tiles[t];
    const TileResult& r = results[t];
    for (std::size_t k = 0; k < d; ++k) {
      for (std::size_t j = 0; j < tile.q_count; ++j) {
        const std::size_t src = k * tile.q_count + j;
        const std::size_t dst = k * n_q + (tile.q_begin + j);
        const double p = r.profile[src];
        const std::int64_t idx = r.index[src];
        if (p < out.profile[dst] ||
            (p == out.profile[dst] && idx >= 0 &&
             (out.index[dst] < 0 || idx < out.index[dst]))) {
          out.profile[dst] = p;
          out.index[dst] = idx;
        }
      }
    }
  }
}

/// Fraction of non-finite (NaN or ±inf) entries in a tile profile — the
/// trigger of the resilient scheduler's precision escalation.
inline double non_finite_fraction(const std::vector<double>& profile) {
  if (profile.empty()) return 0.0;
  std::size_t bad = 0;
  for (const double p : profile) {
    if (!std::isfinite(p)) ++bad;
  }
  return double(bad) / double(profile.size());
}

}  // namespace mpsim::mp
