// CPU-side merge of per-tile results (Pseudocode 2, lines 6-8), shared by
// the resilient scheduler and the merge-semantics tests.
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/thread_pool.hpp"
#include "mp/options.hpp"
#include "mp/simd/span.hpp"
#include "mp/single_tile.hpp"
#include "mp/tile_plan.hpp"

namespace mpsim::mp {

/// Column-wise min/argmin merge of `results[t]` (one per tile) into the
/// full profile.  Smaller distance wins; equal distances prefer the
/// earlier reference segment — the same tie rule the kernels use, so
/// multi-tile FP64 matches single-tile FP64.  Non-finite tile values
/// (NaN after an FP16 overflow or injected corruption) never displace a
/// finite entry: the strict `<` comparison is false for NaN.
///
/// When `pool` is non-null the merge parallelises over disjoint output
/// column ranges.  Each output column still sees the tiles in ascending
/// tile order, so the result is bit-identical to the serial merge.
inline void merge_tile_results(const std::vector<Tile>& tiles,
                               const std::vector<TileResult>& results,
                               std::size_t n_q, std::size_t d,
                               MatrixProfileResult& out,
                               ThreadPool* pool) {
  out.segments = n_q;
  out.dims = d;
  out.profile.assign(n_q * d, std::numeric_limits<double>::infinity());
  out.index.assign(n_q * d, -1);
  auto merge_columns = [&](std::size_t col_begin, std::size_t col_end) {
    for (std::size_t t = 0; t < tiles.size(); ++t) {
      const Tile& tile = tiles[t];
      const TileResult& r = results[t];
      const std::size_t jb = std::max(col_begin, tile.q_begin);
      const std::size_t je = std::min(col_end, tile.q_begin + tile.q_count);
      if (jb >= je) continue;
      for (std::size_t k = 0; k < d; ++k) {
        // Both sides are column-contiguous over [jb, je); the vector span
        // implements the identical strict-</equal-distance-earlier-index
        // rule (NaN on either side keeps the destination), the scalar
        // loop finishes the tail.
        const std::size_t j0 = jb - tile.q_begin;
        const double* const src_p = r.profile.data() + k * tile.q_count + j0;
        const std::int64_t* const src_i =
            r.index.data() + k * tile.q_count + j0;
        double* const dst_p = out.profile.data() + k * n_q + jb;
        std::int64_t* const dst_i = out.index.data() + k * n_q + jb;
        const auto n = std::int64_t(je - jb);
        std::int64_t c = simd::merge_tile_span(src_p, src_i, dst_p, dst_i, n);
        for (; c < n; ++c) {
          const double p = src_p[c];
          const std::int64_t idx = src_i[c];
          if (p < dst_p[c] ||
              (p == dst_p[c] && idx >= 0 &&
               (dst_i[c] < 0 || idx < dst_i[c]))) {
            dst_p[c] = p;
            dst_i[c] = idx;
          }
        }
      }
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(n_q, merge_columns);
  } else {
    merge_columns(0, n_q);
  }
}

/// Serial merge (the default for tests and small runs).
inline void merge_tile_results(const std::vector<Tile>& tiles,
                               const std::vector<TileResult>& results,
                               std::size_t n_q, std::size_t d,
                               MatrixProfileResult& out) {
  merge_tile_results(tiles, results, n_q, d, out, nullptr);
}

/// Fraction of non-finite (NaN or ±inf) entries in a tile profile — the
/// trigger of the resilient scheduler's precision escalation.
inline double non_finite_fraction(const std::vector<double>& profile) {
  if (profile.empty()) return 0.0;
  std::size_t bad = 0;
  for (const double p : profile) {
    if (!std::isfinite(p)) ++bad;
  }
  return double(bad) / double(profile.size());
}

}  // namespace mpsim::mp
