#include "mp/brute_force.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace mpsim::mp {
namespace {

struct SegmentStats {
  double mean = 0.0;
  double norm = 0.0;  // || segment - mean ||
};

SegmentStats stats_of(const double* x, std::size_t m) {
  double sum = 0.0;
  for (std::size_t t = 0; t < m; ++t) sum += x[t];
  const double mean = sum / double(m);
  double ssq = 0.0;
  for (std::size_t t = 0; t < m; ++t) {
    const double c = x[t] - mean;
    ssq += c * c;
  }
  return {mean, std::sqrt(ssq)};
}

}  // namespace

double znormalized_distance(const double* a, const double* b,
                            std::size_t window) {
  const SegmentStats sa = stats_of(a, window);
  const SegmentStats sb = stats_of(b, window);
  if (sa.norm == 0.0 || sb.norm == 0.0) {
    // Flat segment: correlation defined as zero (SCAMP convention).
    return std::sqrt(2.0 * double(window));
  }
  double dot = 0.0;
  for (std::size_t t = 0; t < window; ++t) {
    dot += (a[t] - sa.mean) * (b[t] - sb.mean);
  }
  const double corr = dot / (sa.norm * sb.norm);
  const double val = 2.0 * double(window) * (1.0 - corr);
  return val > 0.0 ? std::sqrt(val) : 0.0;
}

BruteForceResult compute_matrix_profile_brute_force(
    const TimeSeries& reference, const TimeSeries& query, std::size_t window,
    std::int64_t exclusion) {
  MPSIM_CHECK(reference.dims() == query.dims(), "dimension mismatch");
  const std::size_t d = reference.dims();
  const std::size_t nr = reference.segment_count(window);
  const std::size_t nq = query.segment_count(window);
  MPSIM_CHECK(nr >= 1 && nq >= 1, "window longer than an input series");

  BruteForceResult out;
  out.segments = nq;
  out.dims = d;
  out.profile.assign(nq * d, std::numeric_limits<double>::infinity());
  out.index.assign(nq * d, -1);

  std::vector<double> dists(d);
  for (std::size_t i = 0; i < nr; ++i) {
    for (std::size_t j = 0; j < nq; ++j) {
      if (exclusion > 0) {
        const auto gap = std::llabs(std::int64_t(i) - std::int64_t(j));
        if (gap < exclusion) continue;
      }
      for (std::size_t k = 0; k < d; ++k) {
        dists[k] = znormalized_distance(reference.dim(k).data() + i,
                                        query.dim(k).data() + j, window);
      }
      std::sort(dists.begin(), dists.end());
      // Progressive inclusive average (plain sequential order — this is
      // the independent oracle, not the shared kernel helper).
      double running = 0.0;
      for (std::size_t k = 0; k < d; ++k) {
        running += dists[k];
        const double avg = running / double(k + 1);
        const std::size_t e = k * nq + j;
        if (avg < out.profile[e]) {
          out.profile[e] = avg;
          out.index[e] = std::int64_t(i);
        }
      }
    }
  }
  return out;
}

}  // namespace mpsim::mp
