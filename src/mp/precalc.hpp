// The precalculation step (paper §III-A, Pseudocode 1 line 2).
//
// For each dimension of a (tile of a) series, computes in a single pass:
//   mu[i]   — sliding mean of segment i (via cumulative sums),
//   inv[i]  — 1 / || segment_i - mu_i || (inverse centred norm),
//   df[i], dg[i] — the streaming-dot-product update coefficients,
// plus the naive (non-streaming) mean-centred dot products seeding the
// first row and first column of the QT matrix.
//
// The arithmetic type is Traits::PrecalcCompute and the accumulation
// policy is Kahan-compensated when Traits::kCompensatedPrecalc — this is
// precisely what distinguishes the paper's Mixed and FP16C modes from
// plain FP16.  Inputs and outputs are Traits::Storage (device-resident
// reduced-precision data).
//
// Cancellation note: mu and the centred sum of squares are derived from
// differences of cumulative sums — the formulation the paper inherits from
// (MP)^N.  In FP16 these differences cancel catastrophically for long
// series; in Mixed/FP16C they are computed in FP32 (+ compensation) and
// only the results are rounded to FP16 storage.
#pragma once

#include <cmath>
#include <cstddef>
#include <type_traits>
#include <vector>

#include "mp/simd/precalc_f16.hpp"
#include "precision/kahan.hpp"
#include "precision/modes.hpp"

namespace mpsim::mp {

namespace detail {

template <typename Traits>
using Accumulator = std::conditional_t<
    Traits::kCompensatedPrecalc,
    KahanAccumulator<typename Traits::PrecalcCompute>,
    PlainAccumulator<typename Traits::PrecalcCompute>>;

}  // namespace detail

/// Per-dimension precalculation outputs for one series (tile), stored in
/// the mode's storage type, dimension-major like everything else.
template <typename Traits>
struct PrecalcArrays {
  using ST = typename Traits::Storage;
  std::size_t segments = 0;
  std::size_t dims = 0;
  std::vector<ST> mu, inv, df, dg;  // each [k * segments + i]

  void resize(std::size_t segs, std::size_t d) {
    segments = segs;
    dims = d;
    mu.assign(segs * d, ST(0));
    inv.assign(segs * d, ST(0));
    df.assign(segs * d, ST(0));
    dg.assign(segs * d, ST(0));
  }
};

/// Computes mu/inv/df/dg for one dimension.
/// `x` points at len = nseg + m - 1 storage-typed samples.
template <typename Traits>
void precalc_dimension(const typename Traits::Storage* x, std::size_t m,
                       std::size_t nseg, typename Traits::Storage* mu,
                       typename Traits::Storage* inv,
                       typename Traits::Storage* df,
                       typename Traits::Storage* dg) {
  using PC = typename Traits::PrecalcCompute;
  using ST = typename Traits::Storage;
  using std::sqrt;

  // FP16 mode (plain half-precision accumulation end to end): the F16C
  // fast path replaces the emulated software-table arithmetic with raw
  // hardware conversions, bit-identically (mp/simd/precalc_f16.hpp).
  // Mixed / FP16C accumulate in binary32 (+ Kahan) and stay here.
  if constexpr (std::is_same_v<PC, float16> && std::is_same_v<ST, float16> &&
                !Traits::kCompensatedPrecalc) {
    if (simd::precalc_dimension_f16(x, m, nseg, mu, inv, df, dg)) return;
  }

  const std::size_t len = nseg + m - 1;

  // Cumulative sums of x and x^2 in the precalc compute type.
  std::vector<PC> cum1(len + 1), cum2(len + 1);
  detail::Accumulator<Traits> acc1, acc2;
  cum1[0] = PC(0);
  cum2[0] = PC(0);
  for (std::size_t t = 0; t < len; ++t) {
    const PC v = PC(x[t]);
    acc1.add(v);
    acc2.add(v * v);
    cum1[t + 1] = acc1.value();
    cum2[t + 1] = acc2.value();
  }

  const PC inv_m = PC(1) / PC(double(m));
  std::vector<PC> mu_pc(nseg);
  for (std::size_t i = 0; i < nseg; ++i) {
    mu_pc[i] = (cum1[i + m] - cum1[i]) * inv_m;
    // Centred sum of squares; the subtraction is the cancellation-prone
    // step discussed in §V-B.
    const PC ssq = (cum2[i + m] - cum2[i]) - PC(double(m)) * mu_pc[i] * mu_pc[i];
    // Flat (zero-variance) segments get inv = 0 => correlation 0, the
    // convention SCAMP uses; in reduced precision ssq may also round to
    // <= 0 for nearly-flat segments, which is a genuine FP16 artefact.
    if (ssq > PC(0)) {
      inv[i] = ST(PC(1) / sqrt(ssq));
    } else {
      inv[i] = ST(0);
    }
    mu[i] = ST(mu_pc[i]);
  }

  df[0] = ST(0);
  dg[0] = ST(0);
  for (std::size_t i = 1; i < nseg; ++i) {
    const PC hi = PC(x[i + m - 1]);
    const PC lo = PC(x[i - 1]);
    df[i] = ST((hi - lo) * PC(0.5));
    dg[i] = ST((hi - mu_pc[i]) + (lo - mu_pc[i - 1]));
  }
}

/// Naive mean-centred dot product between reference segment i and query
/// segment j (used to seed the first row / first column of QT).
template <typename Traits>
typename Traits::Storage centered_dot(
    const typename Traits::Storage* r, const typename Traits::Storage* q,
    std::size_t m, typename Traits::Storage mu_r,
    typename Traits::Storage mu_q) {
  using PC = typename Traits::PrecalcCompute;
  detail::Accumulator<Traits> acc;
  const PC mr = PC(mu_r);
  const PC mq = PC(mu_q);
  for (std::size_t t = 0; t < m; ++t) {
    acc.add((PC(r[t]) - mr) * (PC(q[t]) - mq));
  }
  return typename Traits::Storage(acc.value());
}

/// centered_dot with one side's centred samples hoisted: `a[t]` holds
/// fixed[t] - mu_fixed, computed ONCE by the caller instead of once per
/// (i, j) pair as the naive seeding loop did (each seed row/column calls
/// this for every output column against the same fixed segment).
/// Bit-identical to centered_dot: a[t] is the identical single
/// subtraction, the per-element multiply and the reduction order are
/// unchanged; `a_first` preserves the caller's original multiply operand
/// order (fixed-side first for the seed row, sliding-side first for the
/// seed column).
template <typename Traits>
typename Traits::Storage centered_dot_hoisted(
    const typename Traits::PrecalcCompute* a,
    const typename Traits::Storage* s, std::size_t m,
    typename Traits::PrecalcCompute mu_s, bool a_first) {
  using PC = typename Traits::PrecalcCompute;
  detail::Accumulator<Traits> acc;
  if (a_first) {
    for (std::size_t t = 0; t < m; ++t) acc.add(a[t] * (PC(s[t]) - mu_s));
  } else {
    for (std::size_t t = 0; t < m; ++t) acc.add((PC(s[t]) - mu_s) * a[t]);
  }
  return typename Traits::Storage(acc.value());
}

}  // namespace mpsim::mp
