// Pan matrix profile: profiles across a range of window sizes (Madrid et
// al., "Matrix Profile XX: Finding and Visualizing Time Series Motifs of
// All Lengths using the Matrix Profile").
//
// A single window length m is the matrix profile's one tunable parameter;
// the pan profile removes the need to guess it by computing the profile
// for a whole ladder of windows and normalising the distances so they are
// comparable across lengths (dividing by sqrt(2m) maps every value into
// [0, 1]: 0 = perfect match, 1 = uncorrelated).
//
// FP64 host computation via the CPU reference per window.
#pragma once

#include <cstddef>
#include <vector>

#include "tsdata/time_series.hpp"

namespace mpsim::mp {

struct PanProfile {
  std::vector<std::size_t> windows;  ///< ladder of m values, ascending
  std::size_t segments = 0;          ///< columns (of the smallest window)
  /// row w (one per window) holds the normalised profile of windows[w];
  /// columns beyond that window's segment count are +inf padded.
  std::vector<std::vector<double>> normalized;

  double at(std::size_t window_index, std::size_t j) const {
    return normalized[window_index][j];
  }
};

/// Computes the pan profile of query vs reference over `windows`
/// (self-joins: pass the same series and a positive exclusion).
PanProfile compute_pan_profile(const TimeSeries& reference,
                               const TimeSeries& query,
                               const std::vector<std::size_t>& windows,
                               std::int64_t exclusion = 0);

/// The window length (and its normalised distance) at which query
/// segment j matches best — the pan profile's window-selection answer.
struct BestWindow {
  std::size_t window = 0;
  double normalized_distance = 1.0;
};

BestWindow best_window_for_segment(const PanProfile& pan, std::size_t j);

}  // namespace mpsim::mp
