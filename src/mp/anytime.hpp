// Anytime (approximate, interruptible) multi-dimensional matrix profile,
// SCRIMP-style (Zhu et al., "SCRIMP++: time series motif discovery at
// interactive speeds" — reference [25] of the paper, whose relative-
// accuracy metric A this repository reuses).
//
// The exact computation processes every diagonal of the distance matrix;
// the anytime variant processes diagonals in random order and can be
// interrupted at any point: the profile is always a valid upper bound
// that converges monotonically to the exact result, and large motifs are
// found long before completion because every diagonal is equally likely
// to be sampled.
//
// FP64 host arithmetic, sharing the kernels' expressions, so a fully
// completed run equals the batch CPU reference bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "mp/precalc.hpp"
#include "tsdata/time_series.hpp"

namespace mpsim::mp {

class AnytimeMatrixProfile {
 public:
  AnytimeMatrixProfile(const TimeSeries& reference, const TimeSeries& query,
                       std::size_t window, std::uint64_t seed = 0);

  std::size_t segments() const { return n_q_; }
  std::size_t dims() const { return dims_; }
  /// Total diagonals of the distance matrix (n_r + n_q - 1).
  std::size_t total_diagonals() const { return order_.size(); }
  /// Diagonals processed so far.
  std::size_t processed_diagonals() const { return next_; }
  /// Fraction of the work done, in [0, 1].
  double completion() const {
    return double(next_) / double(order_.size());
  }

  /// Processes up to `diagonal_count` more random diagonals; returns the
  /// mean absolute profile improvement per updated entry of this step
  /// (a convergence signal: it decays toward zero).
  double step(std::size_t diagonal_count);

  /// Runs to completion (exact result).
  void finish() { step(order_.size()); }

  /// Current (upper-bound) profile and index, dimension-major
  /// [k * segments() + j]; unvisited columns hold +inf / -1.
  const std::vector<double>& profile() const { return profile_; }
  const std::vector<std::int64_t>& index() const { return index_; }

  double at(std::size_t j, std::size_t k) const {
    return profile_[k * n_q_ + j];
  }
  std::int64_t index_at(std::size_t j, std::size_t k) const {
    return index_[k * n_q_ + j];
  }

 private:
  void process_diagonal(std::int64_t delta, double* improvement,
                        std::size_t* updates);

  using Fp64 = PrecisionTraits<PrecisionMode::FP64>;

  std::size_t window_;
  std::size_t dims_;
  std::size_t n_r_, n_q_;
  std::size_t len_r_, len_q_;
  std::vector<double> reference_, query_;  // dimension-major copies
  PrecalcArrays<Fp64> pre_r_, pre_q_;

  std::vector<std::int64_t> order_;  // shuffled diagonal deltas
  std::size_t next_ = 0;

  std::vector<double> profile_;
  std::vector<std::int64_t> index_;
};

}  // namespace mpsim::mp
