// Shared Bitonic-sort and inclusive-scan primitives.
//
// The paper's sort_&_incl_scan kernel (§III-A) sorts the d per-dimension
// distances of each column ascending with an O(log^2 d) Bitonic network
// and then averages them progressively with an O(log d) fan-in inclusive
// scan — many thread groups cooperating, synchronised coarse-grained.
//
// Both the GPU-simulator kernel and the CPU reference use the functions in
// this header, so the floating-point *order of operations* is identical on
// both sides: FP64 results match bit-for-bit, exactly as the paper reports
// ("The FP64 mode on the GPU can generate identical results as the
// CPU-based implementation", §V-B).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>

namespace mpsim::mp {

/// Smallest power of two >= n (n >= 1).  Bit-twiddled (std::bit_ceil);
/// these helpers run inside per-group kernel bodies, so they must not
/// loop over the bit width.
inline std::size_t next_pow2(std::size_t n) { return std::bit_ceil(n); }

/// log2 of a power of two (ceil(log2(n)) for any n >= 1, matching the
/// historical loop-based behaviour for non-power inputs).
inline int log2_pow2(std::size_t p2) {
  return p2 <= 1 ? 0 : int(std::bit_width(p2 - 1));
}

/// Number of compare-exchange stages (== cooperative barrier rounds) of a
/// Bitonic network over p2 elements: log(p2) * (log(p2)+1) / 2.
inline std::int64_t bitonic_stage_count(std::size_t p2) {
  const std::int64_t lg = log2_pow2(p2);
  return lg * (lg + 1) / 2;
}

/// One Bitonic stage (size, stride): every element i with partner i^stride
/// above it compare-exchanges toward a full ascending sort.  Elements of a
/// stage touch disjoint pairs, so any execution order within the stage is
/// equivalent — which is what lets the simulator run lanes sequentially.
template <typename T>
void bitonic_stage(T* buf, std::size_t p2, std::size_t size,
                   std::size_t stride) {
  for (std::size_t i = 0; i < p2; ++i) {
    const std::size_t partner = i ^ stride;
    if (partner <= i) continue;
    const bool ascending = (i & size) == 0;
    const bool out_of_order = ascending ? (buf[partner] < buf[i])
                                        : (buf[i] < buf[partner]);
    if (out_of_order) std::swap(buf[i], buf[partner]);
  }
}

/// Full ascending Bitonic sort of buf[0..p2); p2 must be a power of two.
/// `on_barrier` is invoked after every stage (the cooperative kernel
/// forwards it to GroupContext::barrier so synchronisation rounds are
/// counted; callers that don't care pass a no-op).
template <typename T, typename BarrierFn>
void bitonic_sort(T* buf, std::size_t p2, BarrierFn&& on_barrier) {
  for (std::size_t size = 2; size <= p2; size <<= 1) {
    for (std::size_t stride = size >> 1; stride > 0; stride >>= 1) {
      bitonic_stage(buf, p2, size, stride);
      on_barrier();
    }
  }
}

template <typename T>
void bitonic_sort(T* buf, std::size_t p2) {
  bitonic_sort(buf, p2, [] {});
}

/// Number of fan-in steps (== barrier rounds) of the inclusive scan.
inline std::int64_t scan_step_count(std::size_t d) {
  std::int64_t steps = 0;
  for (std::size_t offset = 1; offset < d; offset <<= 1) ++steps;
  return steps;
}

/// Hillis–Steele inclusive scan over x[0..d) followed by the progressive
/// average of Eq. (2): on return, x[l] = (sum of the original x[0..l]) /
/// (l+1).  `scratch` must hold d elements.  The log-step summation order is
/// part of the contract (it fixes the floating-point rounding sequence).
template <typename T, typename BarrierFn>
void inclusive_scan_average(T* x, T* scratch, std::size_t d,
                            BarrierFn&& on_barrier) {
  for (std::size_t offset = 1; offset < d; offset <<= 1) {
    for (std::size_t l = 0; l < d; ++l) {
      scratch[l] = l >= offset ? T(x[l] + x[l - offset]) : x[l];
    }
    on_barrier();
    for (std::size_t l = 0; l < d; ++l) x[l] = scratch[l];
    on_barrier();
  }
  for (std::size_t l = 0; l < d; ++l) x[l] = x[l] / T(double(l + 1));
}

template <typename T>
void inclusive_scan_average(T* x, T* scratch, std::size_t d) {
  inclusive_scan_average(x, scratch, d, [] {});
}

/// Scan-average of one already-sorted column, in place and scratch-free:
/// the Hillis–Steele steps update l from high to low, so x[l - offset]
/// is still the previous step's value when x[l] reads it.  Produces the
/// same value sequence (same adds, same divides, same order) as
/// inclusive_scan_average — only the scratch round-trip is gone.
template <typename T>
inline void scan_average_column(T* x, std::size_t d) {
  for (std::size_t offset = 1; offset < d; offset <<= 1) {
    for (std::size_t l = d; l-- > offset;) x[l] = T(x[l] + x[l - offset]);
  }
  for (std::size_t l = 0; l < d; ++l) x[l] = x[l] / T(double(l + 1));
}

/// Compile-time-specialized ascending Bitonic sort of buf[0..P2).  The
/// loops are the exact loops of bitonic_sort with constexpr bounds, so
/// every column experiences the identical compare-exchange sequence; the
/// compiler fully unrolls the network for the small sizes the fused row
/// pipeline cares about.
template <std::size_t P2, typename T>
inline void bitonic_sort_fixed(T* buf) {
  static_assert(P2 >= 1 && (P2 & (P2 - 1)) == 0, "P2 must be a power of two");
  for (std::size_t size = 2; size <= P2; size <<= 1) {
    for (std::size_t stride = size >> 1; stride > 0; stride >>= 1) {
      for (std::size_t i = 0; i < P2; ++i) {
        const std::size_t partner = i ^ stride;
        if (partner <= i) continue;
        const bool ascending = (i & size) == 0;
        const bool out_of_order = ascending ? (buf[partner] < buf[i])
                                            : (buf[i] < buf[partner]);
        if (out_of_order) std::swap(buf[i], buf[partner]);
      }
    }
  }
}

/// Compile-time-specialized scan_average_column.
template <std::size_t D, typename T>
inline void inclusive_scan_average_fixed(T* x) {
  for (std::size_t offset = 1; offset < D; offset <<= 1) {
    for (std::size_t l = D; l-- > offset;) x[l] = T(x[l] + x[l - offset]);
  }
  for (std::size_t l = 0; l < D; ++l) x[l] = x[l] / T(double(l + 1));
}

/// Sort + progressive average of one column of d per-dimension distances,
/// dispatching to the fixed networks for the paper's small-d workloads
/// (d <= 8) and to the generic primitives beyond.  values[d..next_pow2(d))
/// must be pre-padded with +inf by the caller for non-power-of-two d.
/// Bit-identical to bitonic_sort + inclusive_scan_average for every d,
/// including the d == 1 divide-by-one (which canonicalises NaN payloads
/// for the emulated types and therefore must not be skipped here).
template <typename T>
inline void sort_scan_column(T* values, std::size_t d) {
  switch (d) {
    case 1:
      values[0] = values[0] / T(1.0);
      return;
    case 2:
      bitonic_sort_fixed<2>(values);
      inclusive_scan_average_fixed<2>(values);
      return;
    case 3:
      bitonic_sort_fixed<4>(values);
      inclusive_scan_average_fixed<3>(values);
      return;
    case 4:
      bitonic_sort_fixed<4>(values);
      inclusive_scan_average_fixed<4>(values);
      return;
    case 5:
      bitonic_sort_fixed<8>(values);
      inclusive_scan_average_fixed<5>(values);
      return;
    case 6:
      bitonic_sort_fixed<8>(values);
      inclusive_scan_average_fixed<6>(values);
      return;
    case 7:
      bitonic_sort_fixed<8>(values);
      inclusive_scan_average_fixed<7>(values);
      return;
    case 8:
      bitonic_sort_fixed<8>(values);
      inclusive_scan_average_fixed<8>(values);
      return;
    default:
      bitonic_sort(values, next_pow2(d));
      scan_average_column(values, d);
      return;
  }
}

}  // namespace mpsim::mp
