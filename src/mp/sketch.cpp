#include "mp/sketch.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "precision/float16.hpp"

namespace mpsim::mp {

namespace {

/// splitmix64: tiny, seedable, platform-stable — decision replay across
/// retries/resume depends on this stream, so no std:: engine (their
/// sequences are implementation-defined only up to the standard's spec,
/// and we want the exact bits pinned).
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Guard band the block score must clear below tau before a skip: wider
/// for tighter budgets.  Heuristic, scaled to the sketch estimator's
/// noise floor ~sqrt(2 / kSketchComponents) = 0.25 — the verify sample
/// measures whatever miss rate the band actually achieves.
float guard_band(double budget) {
  const double b = std::clamp(budget, 1e-6, 0.5);
  return float(std::clamp(0.05 * -std::log10(b), 0.05, 0.4));
}

}  // namespace

std::uint64_t sketch_seed(std::size_t window, std::size_t components,
                          double budget) {
  // Run-level parameters only (window, P, budget bits) — deliberately no
  // tile geometry or device index, see the determinism note in sketch.hpp.
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(budget));
  std::memcpy(&bits, &budget, sizeof(bits));
  std::uint64_t state = 0x6d70736b65746368ull;  // "mpsketch"
  state ^= splitmix64(state) ^ std::uint64_t(window);
  state ^= splitmix64(state) ^ std::uint64_t(components);
  state ^= splitmix64(state) ^ bits;
  return splitmix64(state);
}

std::vector<float> rademacher_signs(std::size_t chunks,
                                    std::size_t components,
                                    std::uint64_t seed) {
  std::vector<float> signs(components * chunks);
  std::uint64_t state = seed;
  std::uint64_t word = 0;
  int left = 0;
  for (auto& s : signs) {
    if (left == 0) {
      word = splitmix64(state);
      left = 64;
    }
    s = (word & 1u) != 0 ? 1.0f : -1.0f;
    word >>= 1;
    --left;
  }
  return signs;
}

float sketch_fp16_round(float v) { return float(float16(v)); }

void sketch_series(const float* x, std::size_t len, std::size_t nseg,
                   std::size_t m, const float* mu, const float* inv,
                   const float* signs, std::size_t components, float* out) {
  // One prefix-sum array (double: len adds of similar magnitude, no
  // cancellation surprises) shared by every segment and component.
  std::vector<double> prefix(len + 1, 0.0);
  for (std::size_t t = 0; t < len; ++t) prefix[t + 1] = prefix[t] + x[t];

  const std::size_t chunks = sketch_chunks(m);
  std::vector<float> agg(chunks, 0.0f);
  for (std::size_t j = 0; j < nseg; ++j) {
    // Chunk-aggregate of the z-normalised segment, then normalise the
    // aggregate itself: the sketch products estimate the correlation of
    // the CHUNK-AGGREGATED windows, a genuine [-1, 1] quantity at every
    // signal roughness (without this, chunking would inflate smooth
    // segments' sketches by sqrt(kSketchChunk) and deflate rough ones,
    // skewing the skip bound in opposite directions).  Float arithmetic
    // throughout the hot loops: the components get rounded to FP16
    // anyway, and the dense +-1.0f multiplies vectorise.
    const double* pj = prefix.data() + j;
    const double mu_j = double(mu[j]);
    const float inv_j = inv[j];
    float norm2 = 0.0f;
    std::size_t b = 0;
    for (std::size_t q = 0; q < chunks; ++q) {
      const std::size_t e = std::min(b + kSketchChunk, m);
      const float a = float((pj[e] - pj[b]) - mu_j * double(e - b)) * inv_j;
      agg[q] = a;
      norm2 += a * a;
      b = e;
    }
    float* sj = out + j * components;
    if (!(norm2 > 1e-20f) || !std::isfinite(norm2)) {
      // Degenerate (flat / non-finite) segment: a zero sketch scores as
      // uncorrelated; the profile threshold still governs the decision.
      for (std::size_t p = 0; p < components; ++p) sj[p] = 0.0f;
      continue;
    }
    const float scale = 1.0f / std::sqrt(norm2);
    for (std::size_t p = 0; p < components; ++p) {
      const float* g = signs + p * chunks;
      float dot = 0.0f;
      for (std::size_t q = 0; q < chunks; ++q) dot += g[q] * agg[q];
      sj[p] = sketch_fp16_round(dot * scale);
    }
  }
}

TilePrefilter::TilePrefilter(const PrefilterConfig& config, std::size_t m,
                             std::size_t d, std::size_t nr, std::size_t nq)
    : enabled_(config.enabled()), m_(m), d_(d), nr_(nr), nq_(nq) {
  if (!enabled_) return;
  eps_ = guard_band(config.budget);
  signs_ = rademacher_signs(sketch_chunks(m_), kSketchComponents,
                            sketch_seed(m_, kSketchComponents,
                                        config.budget));
  groups_ = (nq_ + kPrefilterColGroup - 1) / kPrefilterColGroup;
  row_sketch_.assign(d_ * nr_ * kSketchComponents, 0.0f);
  col_sketch_.assign(d_ * nq_ * kSketchComponents, 0.0f);
  col_lo_.assign(groups_ * d_ * kSketchComponents, 0.0f);
  col_hi_.assign(groups_ * d_ * kSketchComponents, 0.0f);
  pmax_scratch_.assign(nq_, -1.0f);
  decisions_.assign(groups_, PrefilterDecision::kRun);
}

void TilePrefilter::build_column_boxes() {
  // Static per-group component boxes over the column sketches.  Consecutive
  // columns' windows overlap by m-1 samples, so the 64-column box stays
  // close to the individual sketches — tight enough that one interval
  // product bounds the whole group.
  constexpr std::size_t P = kSketchComponents;
  for (std::size_t g = 0; g < groups_; ++g) {
    const std::size_t jb = g * kPrefilterColGroup;
    const std::size_t je = std::min(jb + kPrefilterColGroup, nq_);
    for (std::size_t k = 0; k < d_; ++k) {
      float* lo = col_lo_.data() + (g * d_ + k) * P;
      float* hi = col_hi_.data() + (g * d_ + k) * P;
      const float* first = col_sketch_.data() + (k * nq_ + jb) * P;
      for (std::size_t p = 0; p < P; ++p) lo[p] = hi[p] = first[p];
      for (std::size_t j = jb + 1; j < je; ++j) {
        const float* s = col_sketch_.data() + (k * nq_ + j) * P;
        for (std::size_t p = 0; p < P; ++p) {
          lo[p] = std::min(lo[p], s[p]);
          hi[p] = std::max(hi[p], s[p]);
        }
      }
    }
  }
}

void TilePrefilter::score_batch_scored(std::size_t i0, std::size_t rows) {
  // Per-component bounding box of the batch's row sketches, per dim.
  // Consecutive rows' windows overlap by m-1 samples, so the box is tight.
  constexpr std::size_t P = kSketchComponents;
  float rmin[/*d*/ 64 * P], rmax[64 * P];
  std::vector<float> heap_box;
  float* lo = rmin;
  float* hi = rmax;
  if (d_ > 64) {
    heap_box.assign(2 * d_ * P, 0.0f);
    lo = heap_box.data();
    hi = heap_box.data() + d_ * P;
  }
  for (std::size_t k = 0; k < d_; ++k) {
    const float* first = row_sketch_.data() + (k * nr_ + i0) * P;
    for (std::size_t p = 0; p < P; ++p) {
      lo[k * P + p] = first[p];
      hi[k * P + p] = first[p];
    }
    for (std::size_t r = 1; r < rows; ++r) {
      const float* s = row_sketch_.data() + (k * nr_ + i0 + r) * P;
      for (std::size_t p = 0; p < P; ++p) {
        lo[k * P + p] = std::min(lo[k * P + p], s[p]);
        hi[k * P + p] = std::max(hi[k * P + p], s[p]);
      }
    }
  }

  // Score every column group with ONE interval-product bound per dim:
  // ub >= corr(i, j) estimate for every (row, column) in the block, up to
  // sketch noise, which the eps guard band absorbs.  The block threshold
  // is the weakest column's tau — the correlation a new match must EXCEED
  // to beat the current profile entry (dist = sqrt(2m(1 - corr))).
  const float inv_2m = 1.0f / (2.0f * float(m_));
  const float inv_p = 1.0f / float(P);
  for (std::size_t g = 0; g < groups_; ++g) {
    const std::size_t jb = g * kPrefilterColGroup;
    const std::size_t je = std::min(jb + kPrefilterColGroup, nq_);
    // Weakest column: the largest profile distance has the LOWEST tau.
    // Negative scratch entries mark unskippable columns (unset profile).
    float pmax_weakest = 0.0f;
    bool skippable = true;
    for (std::size_t j = jb; j < je; ++j) {
      const float p = pmax_scratch_[j];
      skippable = skippable && p >= 0.0f;
      pmax_weakest = std::max(pmax_weakest, p);
    }
    if (skippable) {
      const float tau = 1.0f - pmax_weakest * pmax_weakest * inv_2m;
      float ub = -std::numeric_limits<float>::infinity();
      for (std::size_t k = 0; k < d_; ++k) {
        const float* clo = col_lo_.data() + (g * d_ + k) * P;
        const float* chi = col_hi_.data() + (g * d_ + k) * P;
        float acc = 0.0f;
        for (std::size_t p = 0; p < P; ++p) {
          const float a = lo[k * P + p] * clo[p];
          const float b = lo[k * P + p] * chi[p];
          const float c = hi[k * P + p] * clo[p];
          const float e = hi[k * P + p] * chi[p];
          acc += std::max(std::max(a, b), std::max(c, e));
        }
        ub = std::max(ub, acc * inv_p);
      }
      skippable = ub + eps_ <= tau;
    }
    ++stats_.blocks_total;
    if (!skippable) {
      decisions_[g] = PrefilterDecision::kRun;
      continue;
    }
    // Deterministic verify sampling: every kPrefilterVerifyStride-th
    // skippable block (tile-local counter, scan order) runs exactly.
    ++verify_counter_;
    if (verify_counter_ % kPrefilterVerifyStride == 0) {
      decisions_[g] = PrefilterDecision::kVerify;
      ++stats_.blocks_verified;
      stats_.cols_verified += je - jb;
    } else {
      decisions_[g] = PrefilterDecision::kSkip;
      ++stats_.blocks_skipped;
      stats_.cols_skipped += je - jb;
    }
  }
}

void TilePrefilter::note_batch_end(const std::int64_t* index,
                                   std::int64_t row_lo, std::int64_t row_hi) {
  for (std::size_t g = 0; g < decisions_.size(); ++g) {
    if (decisions_[g] != PrefilterDecision::kVerify) continue;
    const std::size_t jb = g * kPrefilterColGroup;
    const std::size_t je = std::min(jb + kPrefilterColGroup, nq_);
    for (std::size_t j = jb; j < je; ++j) {
      for (std::size_t k = 0; k < d_; ++k) {
        const std::int64_t idx = index[k * nq_ + j];
        if (idx >= row_lo && idx <= row_hi) {
          ++stats_.cols_missed;
          break;
        }
      }
    }
  }
}

}  // namespace mpsim::mp
