// FP16 random-projection sketch prefilter (PrefilterMode::kSketch).
//
// Idea (randomized sketching survives low-precision rounding — see
// PAPERS.md): project every z-normalised segment onto kSketchComponents
// shared Rademacher sign vectors.  For unit-norm windows the component
// products estimate the Pearson correlation,
//
//   corr(i, j) ~= (1/P) * sum_p s_i[p] * s_j[p],
//
// so a cheap per-column score can say "no profile update is possible
// here" before the exact pipeline runs.  The estimate is noisy (its
// variance shrinks only as 1/P) — the prefilter is therefore a STATISTICAL
// gate, not a proof: a guard band `eps` derived from the configured miss
// budget absorbs sketch variance plus the FP16 rounding of the stored
// sketches, and a deterministic sample of skippable blocks is executed
// exactly anyway (verify blocks) so the realized miss rate is measured,
// reported and testable (metrics/accuracy.hpp, prefilter.* counters).
//
// Decision geometry: rows are scored in batches of kPrefilterRowBatch
// consecutive rows and columns in groups of kPrefilterColGroup.
// Consecutive segments overlap by m-1 samples, so sketches (like the
// true correlations) move slowly along both axes — which makes
// per-component interval bounds tight: the column groups' component
// min/max boxes are computed once at build time, the row batch's box
// once per batch, and one (batch, group) block is scored with a single
// interval-product bound
//
//   ub = (1/P) * sum_p max(rlo*clo, rlo*chi, rhi*clo, rhi*chi)[p]
//
// per dimension.  The block is skipped when max_k ub_k + eps stays below
// the block's weakest threshold
//
//   tau(j) = 1 - Pmax(j)^2 / (2m),   Pmax(j) = max_k profile[k][j],
//
// the correlation a new match must exceed to beat the current profile
// entry (dist = sqrt(2m(1 - corr))).  The profile only improves during
// the run, so scoring against a stale profile is conservative.  One
// noisy comparison gates the whole block — an AND of per-column
// comparisons would make skips statistically impossible at this sketch
// width (sigma ~ sqrt(2/P) = 0.25 per column).
//
// Skipped blocks still advance the QT recurrence (qt_only_row_body /
// simd::qt_only_span) with bit-identical arithmetic, so misses only ever
// cost the skipped profile entries — they never contaminate later rows.
//
// Determinism: the Rademacher signs are seeded from run-level parameters
// only (window, component count, budget), never from tile geometry or
// device, so retries, sub-tile splits and checkpoint resume replay the
// exact same decisions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "mp/options.hpp"

namespace mpsim::mp {

/// Random-projection components per segment.  More components tighten the
/// correlation estimate (variance ~ 1/P) but scale sketch build and score
/// cost linearly.  32 puts the noise floor at sqrt(2/32) = 0.25, low
/// enough that converged profile thresholds (tau ~ 0.9) clear the guard
/// band for most uncorrelated blocks.
inline constexpr std::size_t kSketchComponents = 32;

/// The Rademacher signs are piecewise-constant over chunks of this many
/// samples, which turns each projection into sketch_chunks(m) prefix-sum
/// differences instead of m multiply-adds — the whole tile's sketches
/// build in O(n * P * m / kSketchChunk).  Chunking low-passes the
/// projection (it aggregates the window at chunk granularity), which
/// costs nothing on the smooth, slowly-decorrelating series the interval
/// bound is tight for anyway (see the geometry note above).
inline constexpr std::size_t kSketchChunk = 32;

/// Number of sign chunks covering a window of length m (the last chunk
/// may be shorter).
inline constexpr std::size_t sketch_chunks(std::size_t m) {
  return (m + kSketchChunk - 1) / kSketchChunk;
}

/// Consecutive tile rows sharing one scoring pass.  Amortises the
/// per-column score to kSketchComponents / kPrefilterRowBatch ops per
/// (row, column) pair.
inline constexpr std::size_t kPrefilterRowBatch = 16;

/// Columns per decision block.  The block threshold is its WEAKEST
/// column's tau, so wider groups skip strictly less often; 32 keeps the
/// skip/run boundary SIMD-friendly while containing that penalty.
inline constexpr std::size_t kPrefilterColGroup = 32;

/// Every kVerifyStride-th skippable block is executed exactly instead
/// (Decision kVerify) to sample the realized miss rate.
inline constexpr std::size_t kPrefilterVerifyStride = 32;

/// Seed for the shared Rademacher sign matrix, derived from run-level
/// configuration only (see determinism note above).
std::uint64_t sketch_seed(std::size_t window, std::size_t components,
                          double budget);

/// components * chunks Rademacher signs (+1.0f / -1.0f), row-major by
/// component, from a splitmix64 stream of `seed`.  One sign covers
/// kSketchChunk consecutive window samples.
std::vector<float> rademacher_signs(std::size_t chunks,
                                    std::size_t components,
                                    std::uint64_t seed);

/// Rounds through IEEE binary16 and back: the stored sketch precision.
/// (Sketches live in float words but carry only FP16 information — the
/// same wider-host-word convention the simulator uses for emulated
/// storage formats.)
float sketch_fp16_round(float v);

/// Sketches every length-m segment of `x` (nseg = len - m + 1 of them):
/// out[j * components + p] = fp16_round(inv[j] * sum_t g_p[t] *
/// (x[j + t] - mu[j])) with g_p the chunked sign pattern.  One shared
/// prefix-sum array turns each (segment, component) into
/// sketch_chunks(m) adds.
void sketch_series(const float* x, std::size_t len, std::size_t nseg,
                   std::size_t m, const float* mu, const float* inv,
                   const float* signs, std::size_t components, float* out);

/// Per-block verdict of one (row batch, column group) cell.
enum class PrefilterDecision : std::uint8_t {
  kRun = 0,     ///< exact pipeline (score can't rule an update out)
  kSkip = 1,    ///< QT-only recurrence, no profile work
  kVerify = 2,  ///< skippable, but executed exactly to measure misses
};

/// Per-tile driver: builds the segment sketches once after precalc, then
/// scores each row batch and hands the fused row loop a per-group
/// decision vector.  All methods run on the tile's stream thread; the
/// decision vector is read-only during the row's parallel_for.
class TilePrefilter {
 public:
  TilePrefilter(const PrefilterConfig& config, std::size_t m, std::size_t d,
                std::size_t nr, std::size_t nq);

  bool enabled() const { return enabled_; }
  std::size_t batch_rows() const { return kPrefilterRowBatch; }
  const PrefilterStats& stats() const { return stats_; }

  /// Builds the FP16 sketches of every reference-row and query-column
  /// segment from the staged storage-precision tile + the precalc
  /// mu/inv outputs.  Widening ST -> float goes through the mode's
  /// compute type, the same conversion the kernels use.
  template <typename Traits>
  void build(const typename Traits::Storage* host_r, std::size_t len_r,
             const typename Traits::Storage* mu_r,
             const typename Traits::Storage* inv_r,
             const typename Traits::Storage* host_q, std::size_t len_q,
             const typename Traits::Storage* mu_q,
             const typename Traits::Storage* inv_q) {
    using CT = typename Traits::Compute;
    std::vector<float> series(std::max(len_r, len_q));
    std::vector<float> mu(std::max(nr_, nq_)), inv(std::max(nr_, nq_));
    const auto one_side = [&](const typename Traits::Storage* x,
                              std::size_t len,
                              const typename Traits::Storage* mu_st,
                              const typename Traits::Storage* inv_st,
                              std::size_t nseg, float* out) {
      for (std::size_t t = 0; t < len; ++t) series[t] = float(CT(x[t]));
      for (std::size_t s = 0; s < nseg; ++s) {
        mu[s] = float(CT(mu_st[s]));
        inv[s] = float(CT(inv_st[s]));
      }
      sketch_series(series.data(), len, nseg, m_, mu.data(), inv.data(),
                    signs_.data(), kSketchComponents, out);
    };
    for (std::size_t k = 0; k < d_; ++k) {
      one_side(host_r + k * len_r, len_r, mu_r + k * nr_, inv_r + k * nr_,
               nr_, row_sketch_.data() + k * nr_ * kSketchComponents);
      one_side(host_q + k * len_q, len_q, mu_q + k * nq_, inv_q + k * nq_,
               nq_, col_sketch_.data() + k * nq_ * kSketchComponents);
    }
    build_column_boxes();
  }

  /// Refreshes the per-column skip thresholds from the current (stale —
  /// and therefore conservative) profile, then scores row batch
  /// [i0, i0 + rows) and fills the decision vector.
  template <typename Traits>
  void score_batch(const typename Traits::Storage* profile, std::size_t i0,
                   std::size_t rows) {
    using CT = typename Traits::Compute;
    for (std::size_t j = 0; j < nq_; ++j) {
      float pmax = 0.0f;
      for (std::size_t k = 0; k < d_; ++k) {
        const float p = float(CT(profile[k * nq_ + j]));
        pmax = p > pmax || !(p == p) ? p : pmax;  // NaN/inf -> not finite
      }
      // Unset (infinite) entries make the column unskippable: tau = -inf.
      pmax_scratch_[j] =
          pmax <= std::numeric_limits<float>::max() ? pmax : -1.0f;
    }
    score_batch_scored(i0, rows);
  }

  /// Invokes fn(group_begin, group_end, decision) for every decision
  /// group intersecting column range [begin, end) of the current batch.
  template <typename Fn>
  void for_groups(std::size_t begin, std::size_t end, Fn&& fn) const {
    std::size_t j = begin;
    while (j < end) {
      const std::size_t g = j / kPrefilterColGroup;
      const std::size_t ge = std::min(end, (g + 1) * kPrefilterColGroup);
      fn(j, ge, decisions_[g]);
      j = ge;
    }
  }

  /// Post-batch miss sampling: a verify-block column counts as missed if
  /// any dimension's profile index now points into the batch's global row
  /// range [row_lo, row_hi] — the exactly-executed rows updated an entry
  /// the sketch had declared update-free.
  void note_batch_end(const std::int64_t* index, std::int64_t row_lo,
                      std::int64_t row_hi);

 private:
  void build_column_boxes();
  void score_batch_scored(std::size_t i0, std::size_t rows);

  bool enabled_ = false;
  std::size_t m_ = 0, d_ = 0, nr_ = 0, nq_ = 0;
  std::size_t groups_ = 0;
  float eps_ = 0.0f;  ///< guard band from the miss budget
  std::vector<float> signs_;        // [p * m + t]
  std::vector<float> row_sketch_;   // [(k * nr + i) * P + p]
  std::vector<float> col_sketch_;   // [(k * nq + j) * P + p]
  std::vector<float> col_lo_;       // [(g * d + k) * P + p], static boxes
  std::vector<float> col_hi_;       // [(g * d + k) * P + p]
  std::vector<float> pmax_scratch_;  // [j], <0 == unskippable
  std::vector<PrefilterDecision> decisions_;  // [group]
  std::size_t verify_counter_ = 0;
  PrefilterStats stats_;
};

}  // namespace mpsim::mp
