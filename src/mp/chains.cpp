#include "mp/chains.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "mp/kernels.hpp"
#include "mp/precalc.hpp"
#include "mp/sort_scan.hpp"

namespace mpsim::mp {
namespace {

using Fp64 = PrecisionTraits<PrecisionMode::FP64>;

void update_directional(double dist, std::int64_t i, std::int64_t j,
                        std::size_t e, LeftRightProfile& out) {
  if (i < j) {
    if (dist < out.left_profile[e] ||
        (dist == out.left_profile[e] &&
         (out.left_index[e] < 0 || i < out.left_index[e]))) {
      out.left_profile[e] = dist;
      out.left_index[e] = i;
    }
  } else if (i > j) {
    if (dist < out.right_profile[e] ||
        (dist == out.right_profile[e] &&
         (out.right_index[e] < 0 || i < out.right_index[e]))) {
      out.right_profile[e] = dist;
      out.right_index[e] = i;
    }
  }
}

}  // namespace

LeftRightProfile compute_left_right_profiles(const TimeSeries& series,
                                             std::size_t window,
                                             std::int64_t exclusion) {
  MPSIM_CHECK(window >= 4, "window must be at least 4 samples");
  const std::size_t d = series.dims();
  const std::size_t n = series.segment_count(window);
  MPSIM_CHECK(n >= 2, "need at least two segments for a self-join");
  if (exclusion == 0) exclusion = std::int64_t(window / 2);

  PrecalcArrays<Fp64> pre;
  pre.resize(n, d);
  for (std::size_t k = 0; k < d; ++k) {
    precalc_dimension<Fp64>(series.dim(k).data(), window, n,
                            pre.mu.data() + k * n, pre.inv.data() + k * n,
                            pre.df.data() + k * n, pre.dg.data() + k * n);
  }

  LeftRightProfile out;
  out.segments = n;
  out.dims = d;
  out.left_profile.assign(n * d, std::numeric_limits<double>::infinity());
  out.right_profile.assign(n * d, std::numeric_limits<double>::infinity());
  out.left_index.assign(n * d, -1);
  out.right_index.assign(n * d, -1);

  const double two_m = double(2 * window);
  std::vector<double> qt(d), dists(d), scratch(d);
  // Self-join symmetry: only diagonals delta >= exclusion are needed; a
  // pair (i, j) with i < j updates j's left profile and i's right one.
  for (std::int64_t delta = exclusion; delta < std::int64_t(n); ++delta) {
    std::size_t i = 0;
    std::size_t j = std::size_t(delta);
    const std::size_t steps = n - j;
    for (std::size_t t = 0; t < steps; ++t, ++i, ++j) {
      for (std::size_t k = 0; k < d; ++k) {
        const double* x = series.dim(k).data();
        if (t == 0) {
          qt[k] = centered_dot<Fp64>(x + i, x + j, window, pre.mu[k * n + i],
                                     pre.mu[k * n + j]);
        } else {
          qt[k] = qt[k] + pre.df[k * n + i] * pre.dg[k * n + j] +
                  pre.dg[k * n + i] * pre.df[k * n + j];
        }
        dists[k] = qt_to_distance(qt[k], pre.inv[k * n + i],
                                  pre.inv[k * n + j], two_m);
      }
      std::sort(dists.begin(), dists.end());
      inclusive_scan_average(dists.data(), scratch.data(), d);
      for (std::size_t k = 0; k < d; ++k) {
        // (i, j): i < j by construction.
        update_directional(dists[k], std::int64_t(i), std::int64_t(j),
                           k * n + j, out);
        update_directional(dists[k], std::int64_t(j), std::int64_t(i),
                           k * n + i, out);
      }
    }
  }
  return out;
}

namespace {

/// Bidirectionally consistent successor of segment j (or -1).
std::int64_t chain_successor(const LeftRightProfile& p, std::size_t k,
                             std::int64_t j) {
  const std::int64_t r = p.right_index[k * p.segments + std::size_t(j)];
  if (r < 0) return -1;
  const std::int64_t back = p.left_index[k * p.segments + std::size_t(r)];
  return back == j ? r : -1;
}

}  // namespace

std::vector<std::vector<std::int64_t>> all_chains(
    const LeftRightProfile& profiles, std::size_t k_dim) {
  MPSIM_CHECK(k_dim < profiles.dims, "k_dim out of range");
  const std::size_t n = profiles.segments;

  // A segment starts a chain when nothing links into it.
  std::vector<bool> has_predecessor(n, false);
  for (std::size_t j = 0; j < n; ++j) {
    const std::int64_t s = chain_successor(profiles, k_dim, std::int64_t(j));
    if (s >= 0) has_predecessor[std::size_t(s)] = true;
  }

  std::vector<std::vector<std::int64_t>> chains;
  for (std::size_t j = 0; j < n; ++j) {
    if (has_predecessor[j]) continue;
    std::vector<std::int64_t> chain{std::int64_t(j)};
    std::int64_t cur = std::int64_t(j);
    while (true) {
      const std::int64_t next = chain_successor(profiles, k_dim, cur);
      if (next < 0) break;
      chain.push_back(next);
      cur = next;
    }
    if (chain.size() >= 2) chains.push_back(std::move(chain));
  }
  return chains;
}

std::vector<std::int64_t> longest_chain(const LeftRightProfile& profiles,
                                        std::size_t k_dim) {
  std::vector<std::int64_t> best;
  for (auto& chain : all_chains(profiles, k_dim)) {
    if (chain.size() > best.size()) best = std::move(chain);
  }
  return best;
}

}  // namespace mpsim::mp
