// Tiling scheme of the multi-tile algorithm (paper §III-B, Pseudocode 2).
//
// The (n_r x n_q) distance matrix is partitioned into a t_r x t_q grid of
// tiles; each tile is a standalone matrix profile over sub-ranges of the
// reference and query segments, later merged by column-wise min/argmin.
// Splitting the *reference* range is what bounds the error propagation of
// the iterative QT recurrence (the recurrence restarts from a fresh
// precalculation at each tile's first row), so the planner favours row
// splits: t_r >= t_q, with t_r * t_q = n_tiles.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mpsim::mp {

struct Tile {
  std::size_t r_begin = 0;  ///< first reference segment of the tile
  std::size_t r_count = 0;
  std::size_t q_begin = 0;  ///< first query segment of the tile
  std::size_t q_count = 0;
  int device = 0;           ///< assigned by assign_tiles_round_robin
  int id = 0;
};

/// Factorisation n_tiles = t_r * t_q chosen by the planner.
struct TileGrid {
  int rows = 1;  ///< t_r — splits of the reference range
  int cols = 1;  ///< t_q — splits of the query range
};

/// Picks t_r x t_q = n_tiles with tiles as square as possible and
/// t_r >= t_q (row splits bound the numerical error, §III-B).
TileGrid choose_tile_grid(int n_tiles);

/// compute_tile_list of Pseudocode 2: partitions [0,n_r) x [0,n_q) into
/// the grid, spreading remainders over the leading tiles.  Tiles are
/// returned row-major (all column tiles of row block 0 first).
std::vector<Tile> compute_tile_list(std::size_t n_r, std::size_t n_q,
                                    int n_tiles);

/// assign_tile of Pseudocode 2: static Round-robin assignment to devices.
void assign_tiles_round_robin(std::vector<Tile>& tiles, int n_devices);

/// Longest-processing-time assignment: tiles sorted by area (the modelled
/// cost driver) are greedily given to the least-loaded device.  Mitigates
/// the odd-device-count imbalance the paper observes with Round-robin
/// (§V-C: "inefficiencies when using odd numbers of GPUs"), especially
/// when tiles are unevenly sized.
void assign_tiles_lpt(std::vector<Tile>& tiles, int n_devices);

/// Makespan (in tile-area units) of an assignment — the quantity LPT
/// minimises; exposed for the scheduling ablation and tests.
std::size_t assignment_makespan(const std::vector<Tile>& tiles,
                                int n_devices);

/// How a journalled result slice (absolute [r_begin, r_begin+r_count) x
/// [q_begin, q_begin+q_count) ranges, see mp/checkpoint.hpp) relates to a
/// tile of the *current* grid.  Used by elastic resume to re-key slices
/// written under a different tile grid or node count.
enum class SliceFit {
  /// Ranges disjoint from, column-mismatched with, or dimensionally
  /// incompatible with the tile — the slice cannot seed it.
  kNone,
  /// Covers the whole tile: restore it outright and skip execution.
  kComplete,
  /// Same seed origin (r_begin, q_begin, exact column range) but fewer
  /// rows than the tile: a bit-exact prefix — execution may replay the
  /// QT recurrence through the covered rows and compute only the
  /// remainder.
  kPrefix,
};

/// Classifies a slice against a tile.  Bit-identity of the diagonal QT
/// recurrence depends only on the seed origin (r_begin, q_begin) and the
/// column extent — NOT on how many rows the tile runs — so:
///   - exact q range + same r_begin + r_count == tile rows  → kComplete
///   - exact q range + same r_begin + 0 < r_count < tile rows → kPrefix
///   - anything else (different origin, trimmed/shifted columns,
///     dims mismatch) → kNone (restarting the recurrence elsewhere
///     yields different rounding, docs/DESIGN.md).
SliceFit classify_slice(std::size_t slice_r_begin, std::size_t slice_r_count,
                        std::size_t slice_q_begin, std::size_t slice_q_count,
                        std::size_t slice_dims, const Tile& tile,
                        std::size_t dims);

}  // namespace mpsim::mp
