// Post-processing utilities on matrix-profile results: the classic
// downstream consumers of a matrix profile (Yeh et al. 2016) — motif
// discovery (recurring patterns = smallest profile entries) and discord
// discovery (anomalies = largest profile entries), with non-overlap
// handling so the top-k list isn't k shifted copies of one event.
#pragma once

#include <cstdint>
#include <vector>

#include "mp/options.hpp"
#include "tsdata/time_series.hpp"

namespace mpsim::mp {

/// One motif or discord occurrence.
struct ProfileExtreme {
  std::size_t query_segment = 0;   ///< segment index in the query series
  std::int64_t match_segment = -1; ///< its nearest neighbour in the reference
  double distance = 0.0;           ///< the profile value
};

/// The `count` best-matching (smallest-distance) query segments of the
/// k_dim-dimensional profile, at least `separation` segments apart
/// (default: one window is a sensible choice).  Unmatched segments
/// (index < 0) are skipped.
std::vector<ProfileExtreme> top_motifs(const MatrixProfileResult& result,
                                       std::size_t k_dim, std::size_t count,
                                       std::size_t separation);

/// The `count` worst-matching (largest finite-distance) query segments —
/// the discords / anomalies — with the same non-overlap rule.
std::vector<ProfileExtreme> top_discords(const MatrixProfileResult& result,
                                         std::size_t k_dim, std::size_t count,
                                         std::size_t separation);

/// K-nearest-neighbour matrix profile (SCAMP's KNN extension — the
/// paper's reference [27] supports it): for every query segment, the k
/// closest reference segments on the k_dim-dimensional distance, each at
/// least `separation` segments apart from the previously selected
/// neighbours of that query segment.  FP64 host computation, O(n_r * n_q
/// * (d + k)) — an analysis utility, not a performance path.
struct KnnEntry {
  std::int64_t segment = -1;
  double distance = 0.0;
};

/// result[j * k + rank] = rank-th nearest neighbour of query segment j.
std::vector<KnnEntry> knn_profile(const TimeSeries& reference,
                                  const TimeSeries& query,
                                  std::size_t window, std::size_t k_dim,
                                  std::size_t k, std::size_t separation,
                                  std::int64_t exclusion = 0);

/// mSTAMP's dimension recovery (Yeh et al. 2017, §"which dimensions"):
/// for a matched pair (reference segment i, query segment j), returns the
/// k_dim+1 dimensions whose per-dimension distances are smallest — the
/// subset whose average the (k_dim)-dimensional profile reports.
/// Recomputes the d z-normalised distances directly (FP64).
std::vector<std::size_t> motif_dimensions(const TimeSeries& reference,
                                          const TimeSeries& query,
                                          std::size_t window,
                                          std::size_t ref_segment,
                                          std::size_t query_segment,
                                          std::size_t k_dim);

}  // namespace mpsim::mp
