// CPU reference implementation: an mSTAMP / (MP)^N-style multi-dimensional
// matrix profile in FP64, parallelised over diagonal blocks of the distance
// matrix exactly like the state-of-the-art CPU solution the paper compares
// against (Raoofy et al. 2020).
//
// It plays two roles:
//  1. the accuracy reference for every reduced-precision experiment
//     (the paper's "CPU-based reference", §V-B), and
//  2. the CPU side of the Fig. 6 performance comparison — measured wall
//     time at the benchmark's scaled sizes, plus a roofline-modelled time
//     on the 16-core Skylake spec at the paper's full sizes.
//
// It deliberately shares the precalculation, distance and scan arithmetic
// with the GPU engine so FP64 results agree bit-for-bit, as the paper
// reports for its FP64 mode.
#pragma once

#include <cstdint>
#include <vector>

#include "tsdata/time_series.hpp"

namespace mpsim::mp {

struct CpuReferenceConfig {
  std::size_t window = 64;
  std::size_t threads = 0;        ///< 0 = all hardware threads
  std::int64_t exclusion = 0;     ///< self-join trivial-match radius

  /// Global segment offsets of the inputs, used only by the exclusion-zone
  /// test.  When the inputs are slices of larger series (the resilient
  /// scheduler's CPU fallback computes single tiles this way), these make
  /// the trivial-match gap |(r_offset+i) - (q_offset+j)| match the GPU
  /// engine's global-index semantics.
  std::int64_t r_offset = 0;
  std::int64_t q_offset = 0;
};

struct CpuReferenceResult {
  std::size_t segments = 0;
  std::size_t dims = 0;
  std::vector<double> profile;      // [k * segments + j]
  std::vector<std::int64_t> index;
  double wall_seconds = 0.0;        ///< measured
  double modeled_seconds = 0.0;     ///< roofline on the 16-core Skylake spec

  double at(std::size_t j, std::size_t k) const {
    return profile[k * segments + j];
  }
  std::int64_t index_at(std::size_t j, std::size_t k) const {
    return index[k * segments + j];
  }
};

/// Computes the multi-dimensional matrix profile on the host CPU in FP64.
CpuReferenceResult compute_matrix_profile_cpu(const TimeSeries& reference,
                                              const TimeSeries& query,
                                              const CpuReferenceConfig& config);

/// Roofline-modelled (MP)^N execution time on the paper's 16-core Skylake
/// CPU for a problem of the given shape (used by Fig. 6 at paper scale).
double modeled_cpu_seconds(std::size_t n_r, std::size_t n_q, std::size_t dims,
                           std::size_t window);

}  // namespace mpsim::mp
