// MASS — Mueen's Algorithm for Similarity Search — and the FFT it rides
// on.
//
// The STAMP algorithm (the first matrix profile method; paper §II-A)
// computes each distance-matrix row with MASS: the sliding dot products
// of one query segment against the whole reference series come from a
// single FFT-based convolution in O(n log n), independent of m.  The
// streaming STOMP/SCAMP formulation this repository's engines use is
// faster per row, but MASS is algorithmically independent — no
// cumulative sums, no recurrences — which makes it the ideal third
// cross-validation oracle next to the brute-force scan (tested against
// both).
//
// The FFT is an in-house iterative radix-2 Cooley-Tukey over
// std::complex<double> (power-of-two padding), kept deliberately simple
// and fully tested; it is a validation path, not a performance path.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "tsdata/time_series.hpp"

namespace mpsim::mp {

/// In-place iterative radix-2 FFT; size must be a power of two.
/// `inverse` applies the conjugate transform including the 1/n scale.
void fft(std::vector<std::complex<double>>& data, bool inverse);

/// Linear convolution-based sliding dot products: result[i] =
/// sum_t series[i + t] * query[t] for every alignment i in
/// [0, series.size() - query.size()].
std::vector<double> sliding_dot_products(const std::vector<double>& series,
                                         const std::vector<double>& query);

/// MASS: z-normalised Euclidean distances of `query_segment` (length m)
/// to every length-m segment of `series`.  Flat segments follow the
/// SCAMP convention (correlation 0 => distance sqrt(2m)).
std::vector<double> mass(const std::vector<double>& series,
                         const std::vector<double>& query_segment);

/// STAMP-style multi-dimensional matrix profile built entirely on MASS
/// (one FFT pass per query segment per dimension).  O(n_r log n_r * n_q
/// * d): slow, independent, exact — a validation oracle.
struct StampResult {
  std::size_t segments = 0;
  std::size_t dims = 0;
  std::vector<double> profile;      // [k * segments + j]
  std::vector<std::int64_t> index;
};

StampResult compute_matrix_profile_stamp(const TimeSeries& reference,
                                         const TimeSeries& query,
                                         std::size_t window);

}  // namespace mpsim::mp
