// 8-wide F16C kernels of the emulated-FP16 storage family (FP16 / Mixed /
// FP16C modes): the dist_calc recurrence span, the row-wise Bitonic
// compare-exchange and the block scan-average.  Moved here from
// mp/kernels.hpp when the dispatch layer (mp/simd/dispatch.hpp) was
// introduced; selection is now a runtime decision (level >= kF16C), not a
// compile-time #ifdef.
//
// Bit-identity argument, shared by every kernel in this header: scalar
// emulated-half arithmetic widens 8 halves with vcvtph2ps (exact),
// performs ONE binary32 operation, and rounds back with vcvtps2ph (RNE).
// Per lane this is the identical widen-op-round sequence the scalar
// float16 operators execute (double rounding through binary32 is
// innocuous, 24 >= 2*11+2), so the output bits match the scalar loop
// exactly — including overflow to infinity, subnormal halves and
// ISA-default generated NaNs.  Blocks containing a NaN OPERAND drop to
// the scalar operators, whose finish_binop implements the deterministic
// first-NaN-operand sign rule (x86 NaN propagation is operand-order
// dependent and the compiler may commute the wide operation).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>

#include "mp/simd/dispatch.hpp"
#include "mp/sort_scan.hpp"
#include "precision/float16.hpp"

// The F16C tier needs both the hardware half conversions and AVX.
#if defined(MPSIM_FLOAT16_HW) && defined(__AVX__) && defined(MPSIM_SIMD_X86)
#define MPSIM_SIMD_F16 1
#endif

#ifdef MPSIM_SIMD_F16

namespace mpsim::mp::simd {

/// Round every binary32 lane to binary16 and back: the vector image of one
/// emulated-FP16 operation's result rounding.
inline __m256 round_lanes_f16(__m256 v) {
  return _mm256_cvtph_ps(
      _mm256_cvtps_ph(v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC));
}

inline __m256 load_halves(const float16* p) {
  return _mm256_cvtph_ps(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
}

/// Vectorized dist_calc recurrence over `n` contiguous columns of one
/// dimension row; returns the count of columns processed (a multiple of
/// 8 — the scalar loop finishes the tail).  Pointers are span-relative:
/// lane t reads qt_prev_m1[t] (the previous QT row already shifted one
/// column left), df_q[t], ..., and writes qt_next[t] / dist[t], so the
/// distance sink may live at a different offset than the QT rows (the
/// fused row pipeline writes distances into a stack block).  qt_prev_m1
/// and qt_next carry no restrict qualifier: the diagonal-batched executor
/// updates its QT band in place (qt_next == qt_prev_m1), which is safe
/// because each 8-column block loads its operands before storing its
/// results.  Blocks containing a NaN operand stop the vector loop: NaN
/// sign propagation must follow float16::finish_binop's deterministic
/// first-NaN-operand rule, which only the scalar operators implement —
/// the scalar loop takes over from the first such block.
inline std::int64_t dist_calc_span_f16(
    std::int64_t n, float16 df_ri, float16 dg_ri, float16 inv_ri,
    float16 two_m, const float16* qt_prev_m1,
    const float16* MPSIM_SIMD_RESTRICT df_q,
    const float16* MPSIM_SIMD_RESTRICT dg_q,
    const float16* MPSIM_SIMD_RESTRICT inv_q, float16* qt_next,
    float16* MPSIM_SIMD_RESTRICT dist) {
  // A NaN row constant poisons every column — the vector loop could never
  // store a block, so hand the whole span to the scalar operators up front.
  if (float16::nan_bits(df_ri.bits()) || float16::nan_bits(dg_ri.bits()) ||
      float16::nan_bits(inv_ri.bits())) {
    return 0;
  }
  constexpr int kRne = _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC;
  const __m256 v_df_ri = _mm256_set1_ps(float(df_ri));
  const __m256 v_dg_ri = _mm256_set1_ps(float(dg_ri));
  const __m256 v_inv_ri = _mm256_set1_ps(float(inv_ri));
  const __m256 v_two_m = _mm256_set1_ps(float(two_m));
  const __m256 v_one = _mm256_set1_ps(1.0f);
  const __m256 v_zero = _mm256_setzero_ps();
  std::int64_t t = 0;
  for (; t + 8 <= n; t += 8) {
    const __m256 prev = load_halves(qt_prev_m1 + t);
    const __m256 dgq = load_halves(dg_q + t);
    const __m256 dfq = load_halves(df_q + t);
    const __m256 invq = load_halves(inv_q + t);
    // qt = (qt_prev + df_ri * dg_q) + dg_ri * df_q, rounding each step.
    const __m256 t1 = round_lanes_f16(_mm256_mul_ps(v_df_ri, dgq));
    const __m256 t2 = round_lanes_f16(_mm256_add_ps(prev, t1));
    const __m256 t3 = round_lanes_f16(_mm256_mul_ps(v_dg_ri, dfq));
    const __m128i qt_h = _mm256_cvtps_ph(_mm256_add_ps(t2, t3), kRne);
    const __m256 qt = _mm256_cvtph_ps(qt_h);
    // qt_to_distance: sqrt(two_m * (1 - qt*inv_r*inv_q)), clamped at 0.
    const __m256 c1 = round_lanes_f16(_mm256_mul_ps(qt, v_inv_ri));
    const __m256 corr = round_lanes_f16(_mm256_mul_ps(c1, invq));
    const __m256 om = round_lanes_f16(_mm256_sub_ps(v_one, corr));
    const __m256 val = round_lanes_f16(_mm256_mul_ps(v_two_m, om));
    // NaN screen on the END of the chain only: every streamed operand
    // feeds val through NaN-transparent ops (prev/dgq/dfq via qt, invq via
    // corr), so a clean val proves the whole block was NaN-free and the
    // lanes match the scalar operators bit-for-bit.  A NaN val breaks
    // BEFORE any store — hardware NaN propagation need not match
    // finish_binop for values that are thrown away — and the scalar loop
    // redoes the block with the emulated operators.
    if (_mm256_movemask_ps(_mm256_cmp_ps(val, val, _CMP_UNORD_Q)) != 0) {
      break;
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(qt_next + t), qt_h);
    // val < 0 ? 0 : val — clean lanes only by now, sqrt cannot NaN.
    const __m256 lt = _mm256_cmp_ps(val, v_zero, _CMP_LT_OQ);
    const __m256 clamped = _mm256_blendv_ps(val, v_zero, lt);
    const __m128i dist_h = _mm256_cvtps_ph(_mm256_sqrt_ps(clamped), kRne);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dist + t), dist_h);
  }
  return t;
}

/// Row-wise Bitonic compare-exchange between two block rows of emulated
/// halves, 8 columns per step.  The comparison widens to binary32
/// (vcvtph2ps is exact, so f32 `<` on the widened lanes equals the scalar
/// float16 operator< — NaN compares false, +-0 compare equal) and the
/// winning 16-bit payloads are blended RAW: no arithmetic touches the
/// values, so NaN payloads and signed zeros move verbatim, exactly like
/// the scalar std::swap.  No NaN fallback is needed here.
inline void cmpex_rows_f16(float16* MPSIM_SIMD_RESTRICT ra,
                           float16* MPSIM_SIMD_RESTRICT rb, std::size_t bn,
                           bool ascending) {
  std::size_t jj = 0;
  for (; jj + 8 <= bn; jj += 8) {
    const __m128i a16 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ra + jj));
    const __m128i b16 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(rb + jj));
    const __m256 a = _mm256_cvtph_ps(a16);
    const __m256 b = _mm256_cvtph_ps(b16);
    // Mask lanes where the pair is out of order (swap wanted).
    const __m256 m = ascending ? _mm256_cmp_ps(b, a, _CMP_LT_OQ)
                               : _mm256_cmp_ps(a, b, _CMP_LT_OQ);
    // Narrow the 32-bit lane masks to 16 bits (AVX-only: split the f32
    // mask register and saturate-pack; 0 -> 0, -1 -> -1).
    const __m128i lo = _mm_castps_si128(_mm256_castps256_ps128(m));
    const __m128i hi = _mm_castps_si128(_mm256_extractf128_ps(m, 1));
    const __m128i m16 = _mm_packs_epi32(lo, hi);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(ra + jj),
                     _mm_blendv_epi8(a16, b16, m16));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(rb + jj),
                     _mm_blendv_epi8(b16, a16, m16));
  }
  for (; jj < bn; ++jj) {
    const bool out_of_order =
        ascending ? (rb[jj] < ra[jj]) : (ra[jj] < rb[jj]);
    if (out_of_order) std::swap(ra[jj], rb[jj]);
  }
}

/// 8-bit mask of the NaN halves among the 8 starting at p.
inline unsigned nan_lanes_f16(const float16* p) {
  const __m256 v = _mm256_cvtph_ps(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
  return unsigned(_mm256_movemask_ps(_mm256_cmp_ps(v, v, _CMP_UNORD_Q)));
}

/// Scalar column fallback of the f16 block scan: gather, run the exact
/// scalar float16 scan-average (finish_binop NaN rule included), scatter.
inline void scan_column_f16(float16* blk, std::size_t bstride, std::size_t d,
                            std::size_t jj) {
  float16 vals[kMaxSortRows];
  for (std::size_t l = 0; l < d; ++l) vals[l] = blk[l * bstride + jj];
  scan_average_column(vals, d);
  for (std::size_t l = 0; l < d; ++l) blk[l * bstride + jj] = vals[l];
}

/// F16C block sort + scan-average.  The sort is blend-only (see
/// cmpex_rows_f16), so it needs no NaN fallback; the scan does arithmetic,
/// so lanes holding a NaN distance take the scalar column path
/// (finish_binop's first-NaN-operand sign rule only the scalar operators
/// implement).  The fallback is PER LANE: the poisoned columns are scanned
/// with the scalar operators into stack scratch before the vector scan
/// mutates the block, then scattered over the vector results — the 7 clean
/// neighbours of a poisoned column stay on the vector path (the old
/// group-level fallback dropped all 8).  NaN cannot APPEAR mid-scan from
/// clean inputs — distances are non-negative, so no inf - inf — which is
/// why one pre-scan of the d input rows suffices.
inline void sort_scan_rows_f16(float16* blk, std::size_t bstride,
                               std::size_t bn, std::size_t d) {
  constexpr int kRne = _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC;
  const std::size_t p2 = next_pow2(d);
  for (std::size_t size = 2; size <= p2; size <<= 1) {
    for (std::size_t stride = size >> 1; stride > 0; stride >>= 1) {
      for (std::size_t i = 0; i < p2; ++i) {
        const std::size_t partner = i ^ stride;
        if (partner <= i) continue;
        cmpex_rows_f16(blk + i * bstride, blk + partner * bstride, bn,
                       (i & size) == 0);
      }
    }
  }
  // Hoisted out of the loop: float16's zero-initializing default
  // constructor would otherwise memset this 1 KiB scratch every group.
  float16 saved[8 * kMaxSortRows];
  std::size_t jj = 0;
  for (; jj + 8 <= bn; jj += 8) {
    unsigned nan_lanes = 0;
    for (std::size_t l = 0; l < d; ++l) {
      nan_lanes |= nan_lanes_f16(blk + l * bstride + jj);
    }
    if (nan_lanes != 0) [[unlikely]] {
      for (unsigned c = 0; c < 8; ++c) {
        if ((nan_lanes & (1u << c)) == 0) continue;
        float16* vals = saved + c * kMaxSortRows;
        for (std::size_t l = 0; l < d; ++l) {
          vals[l] = blk[l * bstride + jj + c];
        }
        scan_average_column(vals, d);
      }
    }
    for (std::size_t offset = 1; offset < d; offset <<= 1) {
      for (std::size_t l = d; l-- > offset;) {
        const __m256 a = load_halves(blk + l * bstride + jj);
        const __m256 b = load_halves(blk + (l - offset) * bstride + jj);
        _mm_storeu_si128(
            reinterpret_cast<__m128i*>(blk + l * bstride + jj),
            _mm256_cvtps_ph(_mm256_add_ps(a, b), kRne));
      }
    }
    for (std::size_t l = 0; l < d; ++l) {
      const __m256 a = load_halves(blk + l * bstride + jj);
      // l+1 <= kMaxSortRows is exact in binary16, so this equals the
      // scalar divisor float16(double(l + 1)) widened to binary32.
      const __m256 divv = _mm256_set1_ps(float(l + 1));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(blk + l * bstride + jj),
                       _mm256_cvtps_ph(_mm256_div_ps(a, divv), kRne));
    }
    if (nan_lanes != 0) [[unlikely]] {
      for (unsigned c = 0; c < 8; ++c) {
        if ((nan_lanes & (1u << c)) == 0) continue;
        const float16* vals = saved + c * kMaxSortRows;
        for (std::size_t l = 0; l < d; ++l) {
          blk[l * bstride + jj + c] = vals[l];
        }
      }
    }
  }
  for (; jj < bn; ++jj) scan_column_f16(blk, bstride, d, jj);
}

}  // namespace mpsim::mp::simd

#endif  // MPSIM_SIMD_F16
