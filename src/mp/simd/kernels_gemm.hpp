// Register-blocked GEMM panels of the QT seeding step (mp/gemm.hpp): the
// first-row / first-column mean-centred sliding dot products, reformulated
// as a blocked matrix product  out[j] = sum_t a[t] * (slide[j+t] - smu[j])
// with the fixed-side centred samples a[t] hoisted into a panel by the
// driver.  Lanes run ACROSS OUTPUT COLUMNS j, never across the reduction
// index t: each lane replays the exact per-column scalar operation
// sequence (accumulator update order t = 0..m-1), so vector and scalar
// results are bit-identical for clean data by construction — the only
// reassociation is the commuted multiply a[t] * b vs b * a[t], which is
// bit-exact for non-NaN IEEE operands.  The build enables no FMA and the
// mul/add steps stay separate intrinsics, matching the scalar bodies.
//
// NaN rule: unlike the dist_calc spans these panels do not screen
// operands — sub/mul/add all propagate NaN, so a NaN anywhere in a
// column's chain is sticky in that column's final accumulator, and the
// driver (mp/gemm.hpp) re-derives every NaN output column through the
// original centered_dot call, whose deterministic scalar NaN rules are
// the reference.  Values stored from lanes that saw a NaN are therefore
// always overwritten; their payloads never escape.
//
// Variants: 4-wide f64 / 8-wide f32 AVX panels (2x column-unrolled so one
// a[t] broadcast feeds two accumulator registers), 8-wide F16C panels for
// the emulated-half family (FP16: widen-op-round per operation; Mixed:
// binary32 accumulation; FP16C: binary32 Kahan accumulation with the
// exact 4-op compensation sequence per lane), and 8-wide AVX2 payload
// panels for BF16/TF32 (one binary32 op + integer RNE re-round per
// operation, kernels_avx2.hpp's widen_soft/round_soft_lanes idiom).
#pragma once

#include <cstddef>
#include <cstdint>

#include "mp/simd/dispatch.hpp"
#include "mp/simd/kernels_avx2.hpp"
#include "mp/simd/kernels_f16.hpp"
#include "precision/float16.hpp"

#ifdef MPSIM_SIMD_NATIVE

#include <immintrin.h>

namespace mpsim::mp::simd {

/// 8-columns-per-panel f64 GEMM (two 4-wide accumulators).  `slide`,
/// `smu`, `out` are pre-offset to the first output column; returns the
/// column count handled (multiple of 8 — the driver's scalar blocked loop
/// finishes the tail).
inline std::size_t gemm_panels_f64(const double* MPSIM_SIMD_RESTRICT a,
                                   std::size_t m, const double* slide,
                                   const double* MPSIM_SIMD_RESTRICT smu,
                                   std::size_t n,
                                   double* MPSIM_SIMD_RESTRICT out) {
  std::size_t jj = 0;
  for (; jj + 8 <= n; jj += 8) {
    const __m256d sm0 = _mm256_loadu_pd(smu + jj);
    const __m256d sm1 = _mm256_loadu_pd(smu + jj + 4);
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    for (std::size_t t = 0; t < m; ++t) {
      const __m256d va = _mm256_set1_pd(a[t]);
      const __m256d b0 =
          _mm256_sub_pd(_mm256_loadu_pd(slide + jj + t), sm0);
      const __m256d b1 =
          _mm256_sub_pd(_mm256_loadu_pd(slide + jj + t + 4), sm1);
      acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(va, b0));
      acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(va, b1));
    }
    _mm256_storeu_pd(out + jj, acc0);
    _mm256_storeu_pd(out + jj + 4, acc1);
  }
  return jj;
}

/// 16-columns-per-panel f32 GEMM (two 8-wide accumulators); contract
/// identical to gemm_panels_f64.
inline std::size_t gemm_panels_f32(const float* MPSIM_SIMD_RESTRICT a,
                                   std::size_t m, const float* slide,
                                   const float* MPSIM_SIMD_RESTRICT smu,
                                   std::size_t n,
                                   float* MPSIM_SIMD_RESTRICT out) {
  std::size_t jj = 0;
  for (; jj + 16 <= n; jj += 16) {
    const __m256 sm0 = _mm256_loadu_ps(smu + jj);
    const __m256 sm1 = _mm256_loadu_ps(smu + jj + 8);
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    for (std::size_t t = 0; t < m; ++t) {
      const __m256 va = _mm256_set1_ps(a[t]);
      const __m256 b0 = _mm256_sub_ps(_mm256_loadu_ps(slide + jj + t), sm0);
      const __m256 b1 =
          _mm256_sub_ps(_mm256_loadu_ps(slide + jj + t + 8), sm1);
      acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(va, b0));
      acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(va, b1));
    }
    _mm256_storeu_ps(out + jj, acc0);
    _mm256_storeu_ps(out + jj + 8, acc1);
  }
  return jj;
}

}  // namespace mpsim::mp::simd

#endif  // MPSIM_SIMD_NATIVE

#ifdef MPSIM_SIMD_F16

namespace mpsim::mp::simd {

/// 8-wide FP16-mode GEMM panel: every operation is one binary32 op on
/// exactly widened halves rounded straight back (round_lanes_f16) — the
/// vector image of the emulated float16 operator sequence
///   b = slide[j+t] - smu[j];  p = a[t] * b;  acc = acc + p
/// per column, accumulating in binary16 like PlainAccumulator<float16>.
inline std::size_t gemm_panels_f16(const float16* MPSIM_SIMD_RESTRICT a,
                                   std::size_t m, const float16* slide,
                                   const float16* MPSIM_SIMD_RESTRICT smu,
                                   std::size_t n,
                                   float16* MPSIM_SIMD_RESTRICT out) {
  constexpr int kRne = _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC;
  std::size_t jj = 0;
  for (; jj + 8 <= n; jj += 8) {
    const __m256 sm = load_halves(smu + jj);
    __m256 acc = _mm256_setzero_ps();
    for (std::size_t t = 0; t < m; ++t) {
      const __m256 va = _mm256_set1_ps(float(a[t]));
      const __m256 b =
          round_lanes_f16(_mm256_sub_ps(load_halves(slide + jj + t), sm));
      const __m256 p = round_lanes_f16(_mm256_mul_ps(va, b));
      acc = round_lanes_f16(_mm256_add_ps(acc, p));
    }
    // acc holds exactly-widened halves, so this narrowing is exact.
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + jj),
                     _mm256_cvtps_ph(acc, kRne));
  }
  return jj;
}

/// 8-wide Mixed-mode GEMM panel: binary32 accumulation over widened
/// halves (PlainAccumulator<float>), one RNE round to binary16 at the
/// end.  vcvtps2ph on the binary32 accumulator equals the scalar
/// float16(float) conversion: the value IS binary32, so there is no
/// double rounding.
inline std::size_t gemm_panels_f16_mixed(const float* MPSIM_SIMD_RESTRICT a,
                                         std::size_t m, const float16* slide,
                                         const float16* MPSIM_SIMD_RESTRICT smu,
                                         std::size_t n,
                                         float16* MPSIM_SIMD_RESTRICT out) {
  constexpr int kRne = _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC;
  std::size_t jj = 0;
  for (; jj + 8 <= n; jj += 8) {
    const __m256 sm = load_halves(smu + jj);
    __m256 acc = _mm256_setzero_ps();
    for (std::size_t t = 0; t < m; ++t) {
      const __m256 va = _mm256_set1_ps(a[t]);
      const __m256 b = _mm256_sub_ps(load_halves(slide + jj + t), sm);
      acc = _mm256_add_ps(acc, _mm256_mul_ps(va, b));
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + jj),
                     _mm256_cvtps_ph(acc, kRne));
  }
  return jj;
}

/// 8-wide FP16C-mode GEMM panel: binary32 Kahan accumulation per lane,
/// replaying KahanAccumulator<float>::add's exact 4-operation sequence
///   y = v - c;  t = sum + y;  c = (t - sum) - y;  sum = t
/// so the compensation bits match the scalar path lane for lane.
inline std::size_t gemm_panels_f16_kahan(
    const float* MPSIM_SIMD_RESTRICT a, std::size_t m, const float16* slide,
    const float16* MPSIM_SIMD_RESTRICT smu, std::size_t n,
    float16* MPSIM_SIMD_RESTRICT out) {
  constexpr int kRne = _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC;
  std::size_t jj = 0;
  for (; jj + 8 <= n; jj += 8) {
    const __m256 sm = load_halves(smu + jj);
    __m256 sum = _mm256_setzero_ps();
    __m256 comp = _mm256_setzero_ps();
    for (std::size_t t = 0; t < m; ++t) {
      const __m256 va = _mm256_set1_ps(a[t]);
      const __m256 b = _mm256_sub_ps(load_halves(slide + jj + t), sm);
      const __m256 v = _mm256_mul_ps(va, b);
      const __m256 y = _mm256_sub_ps(v, comp);
      const __m256 t2 = _mm256_add_ps(sum, y);
      comp = _mm256_sub_ps(_mm256_sub_ps(t2, sum), y);
      sum = t2;
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + jj),
                     _mm256_cvtps_ph(sum, kRne));
  }
  return jj;
}

}  // namespace mpsim::mp::simd

#endif  // MPSIM_SIMD_F16

#ifdef MPSIM_SIMD_AVX2

#pragma GCC push_options
#pragma GCC target("avx2,f16c")

namespace mpsim::mp::simd::avx2 {

/// 8-wide BF16/TF32 GEMM panel on raw payload words: each operation is
/// one binary32 op on exactly-widened payloads re-rounded in place
/// (round_soft_lanes), accumulating in the soft format like
/// PlainAccumulator<soft_float>.  NaN payloads ride through the integer
/// re-round unchanged in NaN-ness (the bias add cannot carry out of the
/// mantissa), so column poisoning stays sticky for the driver's redo scan.
inline std::size_t gemm_panels_soft(int shift,
                                    const std::uint32_t* MPSIM_SIMD_RESTRICT a,
                                    std::size_t m, const std::uint32_t* slide,
                                    const std::uint32_t* MPSIM_SIMD_RESTRICT smu,
                                    std::size_t n,
                                    std::uint32_t* MPSIM_SIMD_RESTRICT out) {
  const __m128i cnt = _mm_cvtsi32_si128(shift);
  const __m256i bias = _mm256_set1_epi32((1 << (shift - 1)) - 1);
  const __m256i one_i = _mm256_set1_epi32(1);
  const auto rnd = [&](__m256 v) {
    return round_soft_lanes(v, cnt, bias, one_i);
  };
  std::size_t jj = 0;
  for (; jj + 8 <= n; jj += 8) {
    const __m256 sm = widen_soft(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(smu + jj)), cnt);
    __m256 acc = _mm256_setzero_ps();
    for (std::size_t t = 0; t < m; ++t) {
      const __m256 va = widen_soft(_mm256_set1_epi32(int(a[t])), cnt);
      const __m256 sl = widen_soft(
          _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(slide + jj + t)),
          cnt);
      const __m256 b = rnd(_mm256_sub_ps(sl, sm));
      const __m256 p = rnd(_mm256_mul_ps(va, b));
      acc = rnd(_mm256_add_ps(acc, p));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + jj),
                        narrow_soft(acc, cnt));
  }
  return jj;
}

}  // namespace mpsim::mp::simd::avx2

#pragma GCC pop_options

#endif  // MPSIM_SIMD_AVX2
