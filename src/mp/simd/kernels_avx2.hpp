// AVX2 kernels, compiled into a `#pragma GCC target("avx2,f16c")` region
// and runtime-gated by the cpuid probe (dispatch.hpp): the BF16/TF32
// dist_calc span and block sort/scan primitives, and the raw-payload
// merge kernels (fused-row profile merge for the emulated storage types,
// CPU-side tile merge for the f64 output profile).
//
// BF16/TF32 representation.  soft_float<M, 8> shares binary32's 8-bit
// exponent, so a payload widens EXACTLY to binary32 by `bits << shift`
// with shift = 23 - M (bf16: 16, tf32: 13) — including subnormals, whose
// ranges coincide.  Every kernel therefore works on widened binary32
// lanes and re-rounds after each operation with round_soft_lanes below:
// integer RNE on the low `shift` bits of the binary32 encoding.  The
// encoding is continuous (mantissa carries roll into the exponent,
// overflow lands exactly on the infinity pattern), so plain integer
// addition implements round-to-nearest-even across normals, subnormals,
// overflow-to-inf and the canonical NaN image.  Per Figueroa's theorem
// the f32 double rounding is innocuous (24 >= 2*8+2 for bf16, 24 >= 2*11+2
// exactly for tf32, for +,-,*,/ and sqrt, in the subnormal range too), so
// each lane reproduces the scalar soft_float operator — which computes in
// binary64 and rounds once — bit-for-bit.
//
// NaN rule (same as the native spans): soft_float::encode always
// canonicalises NaN, but signs differ, so two NaN operands in one
// operation would expose x86's operand-order-dependent propagation.  The
// dist span refuses NaN row constants and breaks on NaN operand blocks;
// the sort/scan callers (span.hpp) run poisoned columns through the
// scalar operators.  The merge kernels do no arithmetic at all (compare +
// raw blend), so they need no fallback: LT_OQ on the widened lanes is
// false for NaN exactly like the scalar operator<.
//
// These are concrete (non-template) functions on raw payload words; the
// templated glue in span.hpp casts soft_float pointers at the call
// boundary and all element access inside happens through may_alias
// intrinsic loads/stores, so no strict-aliasing violation occurs.  Scalar
// tails live in span.hpp OUTSIDE this target region, keeping every scalar
// operation on the exact same code path the cooperative kernels use.
#pragma once

#include <cstdint>

#include "mp/simd/dispatch.hpp"

#ifdef MPSIM_SIMD_AVX2

#include <immintrin.h>

#pragma GCC push_options
#pragma GCC target("avx2,f16c")

namespace mpsim::mp::simd::avx2 {

/// Widen 8 soft payloads to binary32 lanes (exact; see header comment).
inline __m256 widen_soft(__m256i payload, __m128i cnt) {
  return _mm256_castsi256_ps(_mm256_sll_epi32(payload, cnt));
}

/// Round every binary32 lane to the soft format and back (RNE), staying in
/// the binary32 encoding.  `cnt` holds the shift, `bias` = (1<<shift-1)-1,
/// `one` = 1.  The bias add never carries into the sign bit: that would
/// require all magnitude bits set, i.e. a NaN with maximal payload, which
/// neither the canonical soft NaNs nor any arithmetic result produces
/// (operand NaNs are filtered before arithmetic).
inline __m256 round_soft_lanes(__m256 v, __m128i cnt, __m256i bias,
                               __m256i one) {
  __m256i u = _mm256_castps_si256(v);
  const __m256i lsb = _mm256_and_si256(_mm256_srl_epi32(u, cnt), one);
  u = _mm256_add_epi32(_mm256_add_epi32(u, lsb), bias);
  u = _mm256_sll_epi32(_mm256_srl_epi32(u, cnt), cnt);
  return _mm256_castsi256_ps(u);
}

/// Narrow rounded-widened lanes back to payloads.
inline __m256i narrow_soft(__m256 v, __m128i cnt) {
  return _mm256_srl_epi32(_mm256_castps_si256(v), cnt);
}

/// 8-bit mask of the NaN lanes among 8 widened payloads.
inline unsigned nan_lanes(__m256 v) {
  return unsigned(_mm256_movemask_ps(_mm256_cmp_ps(v, v, _CMP_UNORD_Q)));
}

/// BF16/TF32 dist_calc span over raw payload words; the pointer contract
/// (span-relative, qt_prev_m1 pre-shifted, in-place qt band allowed)
/// matches dist_calc_span_f16.  Returns columns processed (multiple of 8;
/// 0 when a row constant is NaN).
inline std::int64_t dist_calc_span_soft(
    int shift, std::int64_t n, std::uint32_t df_ri, std::uint32_t dg_ri,
    std::uint32_t inv_ri, std::uint32_t two_m,
    const std::uint32_t* qt_prev_m1,
    const std::uint32_t* MPSIM_SIMD_RESTRICT df_q,
    const std::uint32_t* MPSIM_SIMD_RESTRICT dg_q,
    const std::uint32_t* MPSIM_SIMD_RESTRICT inv_q, std::uint32_t* qt_next,
    std::uint32_t* MPSIM_SIMD_RESTRICT dist) {
  const __m128i cnt = _mm_cvtsi32_si128(shift);
  const __m256i bias = _mm256_set1_epi32((1 << (shift - 1)) - 1);
  const __m256i one_i = _mm256_set1_epi32(1);
  const __m256 v_df_ri = widen_soft(_mm256_set1_epi32(int(df_ri)), cnt);
  const __m256 v_dg_ri = widen_soft(_mm256_set1_epi32(int(dg_ri)), cnt);
  const __m256 v_inv_ri = widen_soft(_mm256_set1_epi32(int(inv_ri)), cnt);
  const __m256 v_two_m = widen_soft(_mm256_set1_epi32(int(two_m)), cnt);
  if (nan_lanes(v_df_ri) != 0 || nan_lanes(v_dg_ri) != 0 ||
      nan_lanes(v_inv_ri) != 0) {
    return 0;
  }
  const __m256 v_one = _mm256_set1_ps(1.0f);
  const __m256 v_zero = _mm256_setzero_ps();
  const auto rnd = [&](__m256 v) {
    return round_soft_lanes(v, cnt, bias, one_i);
  };
  std::int64_t t = 0;
  for (; t + 8 <= n; t += 8) {
    const __m256 prev = widen_soft(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(qt_prev_m1 + t)),
        cnt);
    const __m256 dgq = widen_soft(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dg_q + t)), cnt);
    const __m256 dfq = widen_soft(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(df_q + t)), cnt);
    const __m256 invq = widen_soft(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(inv_q + t)), cnt);
    if ((nan_lanes(prev) | nan_lanes(dgq) | nan_lanes(dfq) |
         nan_lanes(invq)) != 0) {
      break;
    }
    // qt = (qt_prev + df_ri * dg_q) + dg_ri * df_q, rounding each step.
    const __m256 t1 = rnd(_mm256_mul_ps(v_df_ri, dgq));
    const __m256 t2 = rnd(_mm256_add_ps(prev, t1));
    const __m256 t3 = rnd(_mm256_mul_ps(v_dg_ri, dfq));
    const __m256 qt = rnd(_mm256_add_ps(t2, t3));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(qt_next + t),
                        narrow_soft(qt, cnt));
    // qt_to_distance: sqrt(two_m * (1 - qt*inv_r*inv_q)), clamped at 0.
    const __m256 c1 = rnd(_mm256_mul_ps(qt, v_inv_ri));
    const __m256 corr = rnd(_mm256_mul_ps(c1, invq));
    const __m256 om = rnd(_mm256_sub_ps(v_one, corr));
    const __m256 val = rnd(_mm256_mul_ps(v_two_m, om));
    // val < 0 ? 0 : val — ordered compare, NaN lanes keep their NaN.
    const __m256 lt = _mm256_cmp_ps(val, v_zero, _CMP_LT_OQ);
    const __m256 clamped = _mm256_blendv_ps(val, v_zero, lt);
    const __m256 dv = rnd(_mm256_sqrt_ps(clamped));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dist + t),
                        narrow_soft(dv, cnt));
  }
  return t;
}

/// Row-wise Bitonic compare-exchange between two soft payload rows, 8
/// columns per step; returns columns processed (multiple of 8 — the
/// caller's scalar tail finishes).  Widened LT_OQ equals the scalar
/// soft_float operator< (both compare the exact widened values, both
/// false on NaN), and the winning payloads blend RAW — no arithmetic, so
/// no NaN fallback, exactly like cmpex_rows_f16.
inline std::size_t cmpex_rows_soft(int shift, std::uint32_t* ra,
                                   std::uint32_t* rb, std::size_t bn,
                                   bool ascending) {
  const __m128i cnt = _mm_cvtsi32_si128(shift);
  std::size_t jj = 0;
  for (; jj + 8 <= bn; jj += 8) {
    const __m256i a32 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ra + jj));
    const __m256i b32 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rb + jj));
    const __m256 a = widen_soft(a32, cnt);
    const __m256 b = widen_soft(b32, cnt);
    const __m256 m = ascending ? _mm256_cmp_ps(b, a, _CMP_LT_OQ)
                               : _mm256_cmp_ps(a, b, _CMP_LT_OQ);
    const __m256i mi = _mm256_castps_si256(m);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(ra + jj),
                        _mm256_blendv_epi8(a32, b32, mi));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(rb + jj),
                        _mm256_blendv_epi8(b32, a32, mi));
  }
  return jj;
}

/// 8-bit NaN mask of one 8-column group across the d input rows of a soft
/// block (pre-scan poison detection for the per-lane scalar fallback).
inline unsigned scan_nan_lanes_soft(int shift, const std::uint32_t* blk,
                                    std::size_t bstride, std::size_t d,
                                    std::size_t jj) {
  const __m128i cnt = _mm_cvtsi32_si128(shift);
  unsigned mask = 0;
  for (std::size_t l = 0; l < d; ++l) {
    const __m256i p = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(blk + l * bstride + jj));
    mask |= nan_lanes(widen_soft(p, cnt));
  }
  return mask;
}

/// Vector scan-average of one 8-column group of a sorted soft block:
/// Hillis–Steele adds high-to-low, then divide row l by l+1 (exact in
/// binary32 AND in the soft format for l+1 <= kMaxSortRows, so it equals
/// the scalar divisor T(double(l + 1)) widened).  Mirrors the f16 group
/// scan in kernels_f16.hpp.
inline void scan_rows_soft_group(int shift, std::uint32_t* blk,
                                 std::size_t bstride, std::size_t d,
                                 std::size_t jj) {
  const __m128i cnt = _mm_cvtsi32_si128(shift);
  const __m256i bias = _mm256_set1_epi32((1 << (shift - 1)) - 1);
  const __m256i one_i = _mm256_set1_epi32(1);
  const auto load = [&](std::size_t l) {
    return widen_soft(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                          blk + l * bstride + jj)),
                      cnt);
  };
  const auto store = [&](std::size_t l, __m256 v) {
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(blk + l * bstride + jj),
        narrow_soft(v, cnt));
  };
  for (std::size_t offset = 1; offset < d; offset <<= 1) {
    for (std::size_t l = d; l-- > offset;) {
      const __m256 sum = _mm256_add_ps(load(l), load(l - offset));
      store(l, round_soft_lanes(sum, cnt, bias, one_i));
    }
  }
  for (std::size_t l = 0; l < d; ++l) {
    const __m256 divv = _mm256_set1_ps(float(l + 1));
    const __m256 q = _mm256_div_ps(load(l), divv);
    store(l, round_soft_lanes(q, cnt, bias, one_i));
  }
}

/// 8-wide fused-row profile merge for emulated halves: where src < prof
/// (widened LT_OQ == float16 operator<: false on NaN, +-0 equal), blend
/// the raw 16-bit payload into prof and the row into idx.  Pure
/// compare-and-blend — no arithmetic, so no NaN fallback.  Returns
/// elements processed (multiple of 8).
inline std::int64_t merge_rows_f16(const std::uint16_t* src,
                                   std::uint16_t* prof, std::int64_t* idx,
                                   std::int64_t n, long long row) {
  const __m256i vrow = _mm256_set1_epi64x(row);
  std::int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m128i s16 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + j));
    const __m128i p16 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(prof + j));
    const __m256 s = _mm256_cvtph_ps(s16);
    const __m256 p = _mm256_cvtph_ps(p16);
    const __m256 m = _mm256_cmp_ps(s, p, _CMP_LT_OQ);
    const __m128i lo = _mm_castps_si128(_mm256_castps256_ps128(m));
    const __m128i hi = _mm_castps_si128(_mm256_extractf128_ps(m, 1));
    const __m128i m16 = _mm_packs_epi32(lo, hi);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(prof + j),
                     _mm_blendv_epi8(p16, s16, m16));
    // Widen the 32-bit lane masks to the 64-bit index lanes (sign-extend:
    // -1 -> -1, 0 -> 0).
    const __m256i m64lo = _mm256_cvtepi32_epi64(lo);
    const __m256i m64hi = _mm256_cvtepi32_epi64(hi);
    const __m256i i0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + j));
    const __m256i i1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + j + 4));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(idx + j),
                        _mm256_blendv_epi8(i0, vrow, m64lo));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(idx + j + 4),
                        _mm256_blendv_epi8(i1, vrow, m64hi));
  }
  return j;
}

/// 8-wide fused-row profile merge for soft payloads; same contract as
/// merge_rows_f16 (widened LT_OQ == soft_float operator<).
inline std::int64_t merge_rows_soft(int shift, const std::uint32_t* src,
                                    std::uint32_t* prof, std::int64_t* idx,
                                    std::int64_t n, long long row) {
  const __m128i cnt = _mm_cvtsi32_si128(shift);
  const __m256i vrow = _mm256_set1_epi64x(row);
  std::int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256i s32 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + j));
    const __m256i p32 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(prof + j));
    const __m256 s = widen_soft(s32, cnt);
    const __m256 p = widen_soft(p32, cnt);
    const __m256i mi = _mm256_castps_si256(_mm256_cmp_ps(s, p, _CMP_LT_OQ));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(prof + j),
                        _mm256_blendv_epi8(p32, s32, mi));
    const __m256i m64lo = _mm256_cvtepi32_epi64(_mm256_castsi256_si128(mi));
    const __m256i m64hi = _mm256_cvtepi32_epi64(_mm256_extracti128_si256(mi, 1));
    const __m256i i0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + j));
    const __m256i i1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + j + 4));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(idx + j),
                        _mm256_blendv_epi8(i0, vrow, m64lo));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(idx + j + 4),
                        _mm256_blendv_epi8(i1, vrow, m64hi));
  }
  return j;
}

/// 4-wide CPU-side tile merge of the f64 output profile, implementing the
/// FULL tie rule of merge_tile_results:
///   take = p < dst  ||  (p == dst && src_idx >= 0 &&
///                        (dst_idx < 0 || src_idx < dst_idx))
/// NaN src lanes never win (both compares false); NaN dst lanes are never
/// displaced by an equal — only by a strictly smaller — value, exactly
/// like the scalar loop.  Returns elements processed (multiple of 4).
inline std::int64_t merge_tile_span_f64(const double* sp,
                                        const std::int64_t* si, double* dp,
                                        std::int64_t* di, std::int64_t n) {
  const __m256i zero = _mm256_setzero_si256();
  std::int64_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d p = _mm256_loadu_pd(sp + j);
    const __m256d q = _mm256_loadu_pd(dp + j);
    const __m256i is =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(si + j));
    const __m256i id =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(di + j));
    const __m256d lt = _mm256_cmp_pd(p, q, _CMP_LT_OQ);
    const __m256d eq = _mm256_cmp_pd(p, q, _CMP_EQ_OQ);
    const __m256i src_neg = _mm256_cmpgt_epi64(zero, is);   // src_idx < 0
    const __m256i dst_neg = _mm256_cmpgt_epi64(zero, id);   // dst_idx < 0
    const __m256i src_first = _mm256_cmpgt_epi64(id, is);   // src_idx < dst
    const __m256i tie = _mm256_and_si256(
        _mm256_castpd_si256(eq),
        _mm256_andnot_si256(src_neg, _mm256_or_si256(dst_neg, src_first)));
    const __m256i take = _mm256_or_si256(_mm256_castpd_si256(lt), tie);
    _mm256_storeu_pd(dp + j,
                     _mm256_blendv_pd(q, p, _mm256_castsi256_pd(take)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(di + j),
                        _mm256_blendv_epi8(id, is, take));
  }
  return j;
}

}  // namespace mpsim::mp::simd::avx2

#pragma GCC pop_options

#endif  // MPSIM_SIMD_AVX2
