// F16C fast path of the FP16-mode precalculation (PrecalcCompute ==
// Storage == float16, plain accumulation).  The emulated scalar loop pays
// the software encode tables on every operation (~24 M/s); this path
// replaces it with raw hardware conversions while reproducing the scalar
// result bit-for-bit:
//
//  * Cumulative sums are serial, so they run one element at a time — but
//    with BOTH accumulator chains (sum and sum of squares) packed into
//    one xmm register, keeping the per-element critical path to exactly
//    addps -> vcvtps2ph -> vcvtph2ps (the identical widen-op-round
//    sequence of the float16 operators, never leaving the vector
//    domain).  The addends v and round(v*v) are precomputed 8-wide per
//    block, where the input NaN screen also runs 8 lanes at a time.  A
//    NaN input sample or a NaN accumulator result (inf + -inf) bails to
//    the exact emulated-operator tail, resuming from the stored prefix —
//    only the scalar operators implement finish_binop's deterministic
//    NaN rule.
//  * The mu/inv and df/dg loops are elementwise, so they run 8-wide with
//    the same widen-op-round scheme as the dist_calc span.  Any lane
//    producing NaN sends its whole 8-block to a scalar redo with the
//    float16 operators (covers NaN inputs from corrupted staging data and
//    +-inf cancellation, where operand-order-dependent hardware NaN
//    propagation could otherwise diverge from finish_binop).
//
// For non-NaN results raw F16C and the emulated operators agree exactly
// (Figueroa, 24 >= 2*11+2, for +,-,*,/ and sqrt), so the fallbacks fire
// only on poisoned data and the clean-path output is bit-identical —
// the dispatch variant tests pin scalar vs f16c checksums equal.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "mp/simd/dispatch.hpp"
#include "mp/simd/kernels_f16.hpp"
#include "precision/float16.hpp"

namespace mpsim::mp::simd {

#ifdef MPSIM_SIMD_F16

/// FP16-mode precalc_dimension body (cumulative sums + mu/inv + df/dg of
/// one dimension).  Returns false when the active dispatch level keeps it
/// scalar — the caller then runs the reference loops.
inline bool precalc_dimension_f16(const float16* x, std::size_t m,
                                  std::size_t nseg, float16* mu,
                                  float16* inv, float16* df, float16* dg) {
  if (active_level() < kF16C) return false;
  constexpr int kRne = _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC;
  const std::size_t len = nseg + m - 1;

  // --- cumulative sums (serial; raw F16C with emulated-operator tail) ---
  // thread_local so the bench/engine steady state pays no allocator churn.
  static thread_local std::vector<float16> cum1, cum2;
  cum1.resize(len + 1);
  cum2.resize(len + 1);
  cum1[0] = float16(0);
  cum2[0] = float16(0);
  std::size_t t = 0;
  {
    // Lane 0 carries cum1, lane 1 carries cum2 — both as the exact
    // binary32 widenings of the current f16 accumulator values.
    __m128 acc = _mm_setzero_ps();
    float vbuf[8], vvbuf[8];
    bool bail = false;
    while (t < len && !bail) {
      // Prepare a block of addends off the critical path: the exact
      // widenings of x[t..t+7] and of the rounded squares, plus the
      // 8-wide input NaN screen.
      std::size_t valid = 0;
      if (len - t >= 8) {
        const __m256 v8 = load_halves(x + t);
        const unsigned nan = unsigned(
            _mm256_movemask_ps(_mm256_cmp_ps(v8, v8, _CMP_UNORD_Q)));
        _mm256_storeu_ps(vbuf, v8);
        _mm256_storeu_ps(vvbuf, round_lanes_f16(_mm256_mul_ps(v8, v8)));
        valid = 8;
        if (nan != 0) [[unlikely]] {
          valid = std::size_t(std::countr_zero(nan));
          bail = true;  // NaN input: emulated tail from that element
        }
      } else {
        for (std::size_t k = 0; k < len - t; ++k) {
          const std::uint16_t vb = x[t + k].bits();
          if (float16::nan_bits(vb)) {
            bail = true;
            break;
          }
          const float v = _cvtsh_ss(vb);
          vbuf[k] = v;
          vvbuf[k] = _cvtsh_ss(std::uint16_t(_cvtss_sh(v * v, kRne)));
          ++valid;
        }
        if (!bail && valid == len - t) bail = true;  // last block: finish
      }
      for (std::size_t k = 0; k < valid; ++k) {
        const __m128 addend = _mm_setr_ps(vbuf[k], vvbuf[k], 0.0f, 0.0f);
        const __m128i h = _mm_cvtps_ph(_mm_add_ps(acc, addend), kRne);
        const std::uint32_t bits = std::uint32_t(_mm_cvtsi128_si32(h));
        const std::uint16_t n1 = std::uint16_t(bits);
        const std::uint16_t n2 = std::uint16_t(bits >> 16);
        // A NaN accumulator result (inf + -inf) must take finish_binop's
        // sign rule: redo this step with the operators and stay there.
        if (float16::nan_bits(n1) || float16::nan_bits(n2)) [[unlikely]] {
          valid = k;
          bail = true;
          break;
        }
        acc = _mm_cvtph_ps(h);
        cum1[t + k + 1] = float16::from_bits(n1);
        cum2[t + k + 1] = float16::from_bits(n2);
      }
      t += valid;
    }
  }
  for (; t < len; ++t) {  // exact emulated-operator tail
    const float16 v = x[t];
    cum1[t + 1] = cum1[t] + v;
    cum2[t + 1] = cum2[t] + v * v;
  }

  // Scalar-computed constants (bit-exact emulated ops), widened once.
  const float16 inv_m = float16(1) / float16(double(m));
  const float16 m_h = float16(double(m));

  // --- per-segment mean and inverse norm (8-wide) -----------------------
  const auto scalar_mu_inv = [&](std::size_t i) {
    const float16 mu_pc = (cum1[i + m] - cum1[i]) * inv_m;
    const float16 ssq = (cum2[i + m] - cum2[i]) - m_h * mu_pc * mu_pc;
    if (ssq > float16(0)) {
      inv[i] = float16(1) / sqrt(ssq);
    } else {
      inv[i] = float16(0);
    }
    mu[i] = mu_pc;
  };
  const __m256 v_invm = _mm256_set1_ps(float(inv_m));
  const __m256 v_m = _mm256_set1_ps(float(m_h));
  const __m256 v_one = _mm256_set1_ps(1.0f);
  const __m256 v_zero = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= nseg; i += 8) {
    const __m256 c1m = load_halves(cum1.data() + i + m);
    const __m256 c1 = load_halves(cum1.data() + i);
    const __m256 c2m = load_halves(cum2.data() + i + m);
    const __m256 c2 = load_halves(cum2.data() + i);
    const __m256 d1 = round_lanes_f16(_mm256_sub_ps(c1m, c1));
    const __m256 mu_v = round_lanes_f16(_mm256_mul_ps(d1, v_invm));
    const __m256 d2 = round_lanes_f16(_mm256_sub_ps(c2m, c2));
    const __m256 p1 = round_lanes_f16(_mm256_mul_ps(v_m, mu_v));
    const __m256 p2 = round_lanes_f16(_mm256_mul_ps(p1, mu_v));
    const __m256 ssq = round_lanes_f16(_mm256_sub_ps(d2, p2));
    // ssq > 0 (ordered: false on NaN, false on +-0 — matches operator>).
    const __m256 gt = _mm256_cmp_ps(ssq, v_zero, _CMP_GT_OQ);
    // gt-false lanes may hold sqrt-of-negative NaNs; the blend discards
    // them.  gt-true lanes are finite positives: sqrt and the divide
    // cannot produce NaN there.
    const __m256 s = round_lanes_f16(_mm256_sqrt_ps(ssq));
    const __m256 q = round_lanes_f16(_mm256_div_ps(v_one, s));
    const __m256 inv_v = _mm256_blendv_ps(v_zero, q, gt);
    // NaN mu lanes (NaN cumulative prefix) need finish_binop's rule for
    // BOTH outputs: redo the whole block with the operators.
    if (_mm256_movemask_ps(_mm256_cmp_ps(mu_v, mu_v, _CMP_UNORD_Q)) != 0)
        [[unlikely]] {
      for (std::size_t r = 0; r < 8; ++r) scalar_mu_inv(i + r);
      continue;
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(mu + i),
                     _mm256_cvtps_ph(mu_v, kRne));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(inv + i),
                     _mm256_cvtps_ph(inv_v, kRne));
  }
  for (; i < nseg; ++i) scalar_mu_inv(i);

  // --- df / dg (8-wide over i in [1, nseg)) -----------------------------
  df[0] = float16(0);
  dg[0] = float16(0);
  const auto scalar_dfdg = [&](std::size_t r) {
    const float16 hi = x[r + m - 1];
    const float16 lo = x[r - 1];
    df[r] = (hi - lo) * float16(0.5);
    dg[r] = (hi - mu[r]) + (lo - mu[r - 1]);
  };
  const __m256 v_half = _mm256_set1_ps(0.5f);
  i = 1;
  for (; i + 8 <= nseg; i += 8) {
    const __m256 hi = load_halves(x + i + m - 1);
    const __m256 lo = load_halves(x + i - 1);
    const __m256 mu_i = load_halves(mu + i);
    const __m256 mu_p = load_halves(mu + i - 1);
    const __m256 df_v =
        round_lanes_f16(_mm256_mul_ps(round_lanes_f16(_mm256_sub_ps(hi, lo)),
                                      v_half));
    const __m256 dg_v = round_lanes_f16(
        _mm256_add_ps(round_lanes_f16(_mm256_sub_ps(hi, mu_i)),
                      round_lanes_f16(_mm256_sub_ps(lo, mu_p))));
    const __m256 nan_mask =
        _mm256_or_ps(_mm256_cmp_ps(df_v, df_v, _CMP_UNORD_Q),
                     _mm256_cmp_ps(dg_v, dg_v, _CMP_UNORD_Q));
    if (_mm256_movemask_ps(nan_mask) != 0) [[unlikely]] {
      for (std::size_t r = 0; r < 8; ++r) scalar_dfdg(i + r);
      continue;
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(df + i),
                     _mm256_cvtps_ph(df_v, kRne));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dg + i),
                     _mm256_cvtps_ph(dg_v, kRne));
  }
  for (; i < nseg; ++i) scalar_dfdg(i);
  return true;
}

#else  // !MPSIM_SIMD_F16

inline bool precalc_dimension_f16(const float16*, std::size_t, std::size_t,
                                  float16*, float16*, float16*, float16*) {
  return false;
}

#endif  // MPSIM_SIMD_F16

}  // namespace mpsim::mp::simd
