#include "mp/simd/dispatch.hpp"

#include <atomic>
#include <cstdlib>

#include "precision/float16.hpp"

namespace mpsim::mp::simd {

namespace {

Level probe() {
#ifdef MPSIM_SIMD_X86
  Level level = kScalar;
#if defined(MPSIM_FLOAT16_HW) && defined(__AVX__)
  if (__builtin_cpu_supports("avx") && __builtin_cpu_supports("f16c")) {
    level = kF16C;
  }
#endif
#ifdef MPSIM_SIMD_AVX2
  // The AVX2 tier is a superset of the F16C tier (its merge kernels use
  // the F16C conversions), so it only unlocks on top of it.
  if (level == kF16C && __builtin_cpu_supports("avx2")) level = kAvx2;
#endif
  return level;
#else
  return kScalar;
#endif
}

// -1 = no in-process override: fall back to MPSIM_SIMD, then auto.
std::atomic<int> g_override{-1};

int env_request() {
  static const int value = [] {
    const char* env = std::getenv("MPSIM_SIMD");
    if (env == nullptr || *env == '\0') return -1;
    const std::string name(env);
    if (name == "auto") return -1;
    try {
      return int(parse_level(name));
    } catch (const ConfigError&) {
      return -1;  // unknown env value: behave as auto rather than abort
    }
  }();
  return value;
}

}  // namespace

const char* to_string(Level level) {
  switch (level) {
    case kScalar: return "scalar";
    case kF16C: return "f16c";
    case kAvx2: return "avx2";
  }
  return "scalar";
}

const char* to_string(Stage stage) {
  switch (stage) {
    case Stage::kDistCalc: return "dist_calc";
    case Stage::kSortScan: return "sort_scan";
    case Stage::kMerge: return "merge";
    case Stage::kPrecalc: return "precalc";
    case Stage::kGemm: return "gemm";
  }
  return "dist_calc";
}

Level parse_level(const std::string& name) {
  if (name == "scalar") return kScalar;
  if (name == "f16c") return kF16C;
  if (name == "avx2") return kAvx2;
  throw ConfigError("unknown simd level '" + name +
                    "' (expected auto|scalar|f16c|avx2)");
}

void apply_option(const std::string& name) {
  if (name == "auto") {
    clear_override();
    return;
  }
  set_override(parse_level(name));
}

Level detected_level() {
  static const Level level = probe();
  return level;
}

Level active_level() {
  int requested = g_override.load(std::memory_order_relaxed);
  if (requested < 0) requested = env_request();
  const Level detected = detected_level();
  if (requested < 0) return detected;
  return requested < int(detected) ? Level(requested) : detected;
}

void set_override(Level level) {
  g_override.store(int(level), std::memory_order_relaxed);
}

void clear_override() { g_override.store(-1, std::memory_order_relaxed); }

}  // namespace mpsim::mp::simd
