// Runtime CPU-feature dispatch of the explicit SIMD kernel layer
// (src/mp/simd/).
//
// The row-pipeline kernels ship in up to three variants per (mode, stage):
//
//   kScalar — the templated scalar bodies (every platform),
//   kF16C   — 8-wide F16C widen-op-round kernels of the emulated-FP16
//             storage family (FP16 / Mixed / FP16C),
//   kAvx2   — the 4-wide f64 / 8-wide f32 AVX recurrence kernels, the
//             AVX2 BF16/TF32 kernels and the AVX2 merge kernels.
//
// The hardware level is cpuid-probed once (first use); the *active* level
// is min(requested, detected) — a request above the hardware silently
// clamps, so `--simd=avx2` is portable to any host.  The request comes
// from the CLI flag (--simd=auto|scalar|f16c|avx2), the MPSIM_SIMD
// environment variable (benches and script-driven tests), or
// set_override() (unit tests switching variants in-process).
//
// Every vector variant is bit-identical to the scalar bodies by
// construction (see the per-kernel proofs in kernels_*.hpp), so the knob
// is a performance/debugging control, never a correctness one — the
// variant bit-equality tests in tests/test_simd_dispatch.cpp enforce it.
#pragma once

#include <cstddef>
#include <string>

#include "common/error.hpp"

// x86 gate of the whole explicit-SIMD layer.
#if (defined(__GNUC__) || defined(__clang__)) && \
    (defined(__x86_64__) || defined(__i386__))
#define MPSIM_SIMD_X86 1
#endif

#if defined(MPSIM_SIMD_X86) && defined(__AVX__)
// Native f64/f32 spans: baseline-AVX intrinsics (the build compiles with
// -mf16c, which implies AVX).
#define MPSIM_SIMD_NATIVE 1
// BF16/TF32 and merge kernels: compiled inside a `#pragma GCC target`
// AVX2 region, runtime-gated by the cpuid probe below.
#define MPSIM_SIMD_AVX2 1
#endif

// Restrict qualifier of the kernel layer (kept separate from kernels.hpp's
// MPSIM_RESTRICT so the simd headers are self-contained).
#if defined(__GNUC__) || defined(__clang__)
#define MPSIM_SIMD_RESTRICT __restrict__
#else
#define MPSIM_SIMD_RESTRICT
#endif

namespace mpsim::mp::simd {

/// Row cap shared with the fused row pipeline: the block scans gather at
/// most this many dimension rows per column into stack scratch.  kernels.hpp
/// static_asserts its kMaxFusedRowDims equals this.
inline constexpr std::size_t kMaxSortRows = 64;

/// Dispatch level, ordered: a request of level L enables every kernel of
/// level <= L (subject to the hardware probe).
enum Level { kScalar = 0, kF16C = 1, kAvx2 = 2 };

/// Pipeline stages whose kernels have SIMD variants, as reported by the
/// per-stage metrics counters (`simd.<stage>.<variant>`).
enum class Stage { kDistCalc, kSortScan, kMerge, kPrecalc, kGemm };

const char* to_string(Level level);
const char* to_string(Stage stage);

/// Parses a --simd / MPSIM_SIMD level name; throws ConfigError on
/// anything but scalar|f16c|avx2 ("auto" is handled by apply_option).
Level parse_level(const std::string& name);

/// Applies a --simd value: "auto" clears the override, any other name
/// parses (throwing ConfigError on unknown names) and installs it.
void apply_option(const std::string& name);

/// Highest level the executing CPU supports (probed once, cached).
Level detected_level();

/// min(requested, detected): the level the kernels dispatch on.  The
/// request defaults to the MPSIM_SIMD environment variable (read once),
/// else the detected level.
Level active_level();

/// Installs / clears an in-process request.  Thread-safe (relaxed
/// atomic); takes effect on the next kernel dispatch.
void set_override(Level level);
void clear_override();

}  // namespace mpsim::mp::simd
